// Package summitscale reproduces "Learning to Scale the Summit: AI for
// Science on a Leadership Supercomputer" (Joubert et al., IPPS 2022): the
// OLCF portfolio study (Tables I-III, Figures 1-6), the §IV-B extreme-
// scale training studies, the §VI-B hardware-requirement analyses, and
// the §V AI-coordinated workflow case studies.
//
// The library lives under internal/; the entry points are the binaries in
// cmd/ (summit-repro runs everything), the runnable examples under
// examples/, and the benchmark harness in bench_test.go, which regenerates
// every table and figure of the paper.
package summitscale
