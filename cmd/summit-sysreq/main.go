// Command summit-sysreq regenerates the §VI-B hardware-requirement
// analyses: the training-input I/O study (GPFS vs node-local NVMe) and
// the allreduce communication study (ResNet-50 vs BERT-large).
//
// Usage:
//
//	summit-sysreq                      # both analyses on Summit
//	summit-sysreq -io                  # I/O only
//	summit-sysreq -comm                # communication only
//	summit-sysreq -platform frontier   # replay on another machine
//	summit-sysreq -platforms           # list registered machines
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"summitscale/internal/core"
	"summitscale/internal/platform"
)

func main() {
	io := flag.Bool("io", false, "I/O analysis only")
	comm := flag.Bool("comm", false, "communication analysis only")
	roofline := flag.Bool("roofline", false, "device roofline analysis only")
	plat := flag.String("platform", "summit", "machine to analyse ("+strings.Join(platform.Names(), ", ")+")")
	list := flag.Bool("platforms", false, "list registered platforms and exit")
	flag.Parse()

	if *list {
		for _, n := range platform.Names() {
			p := platform.MustLookup(n)
			fmt.Printf("%-16s %s (%d nodes)\n", n, p.Name, p.Nodes)
		}
		return
	}
	p, err := platform.Lookup(*plat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "summit-sysreq: %v\n", err)
		os.Exit(2)
	}

	exps := core.SysreqExperimentsOn(p) // IO1, C1, R1
	all := !*io && !*comm && !*roofline
	if *io || all {
		e := exps[0]
		fmt.Print(core.RenderResult(e, e.Run()))
		fmt.Println()
	}
	if *comm || all {
		e := exps[1]
		fmt.Print(core.RenderResult(e, e.Run()))
		fmt.Println()
	}
	if *roofline || all {
		e := exps[2]
		fmt.Print(core.RenderResult(e, e.Run()))
	}
}
