// Command summit-sysreq regenerates the §VI-B hardware-requirement
// analyses: the training-input I/O study (GPFS vs node-local NVMe) and
// the allreduce communication study (ResNet-50 vs BERT-large).
//
// Usage:
//
//	summit-sysreq         # both analyses
//	summit-sysreq -io     # I/O only
//	summit-sysreq -comm   # communication only
package main

import (
	"flag"
	"fmt"

	"summitscale/internal/core"
)

func main() {
	io := flag.Bool("io", false, "I/O analysis only")
	comm := flag.Bool("comm", false, "communication analysis only")
	roofline := flag.Bool("roofline", false, "device roofline analysis only")
	flag.Parse()

	all := !*io && !*comm && !*roofline
	if *io || all {
		e, _ := core.ByID("IO1")
		fmt.Print(core.RenderResult(e, e.Run()))
		fmt.Println()
	}
	if *comm || all {
		e, _ := core.ByID("C1")
		fmt.Print(core.RenderResult(e, e.Run()))
		fmt.Println()
	}
	if *roofline || all {
		e, _ := core.ByID("R1")
		fmt.Print(core.RenderResult(e, e.Run()))
	}
}
