// Command summit-chaos compiles an adversarial failure scenario and
// drives it across every simulator — checkpointing, collectives, staging,
// elastic training, and the cross-facility campaign — reporting how far
// each subsystem degrades and whether the graceful-degradation policies
// hold the line.
//
// Usage:
//
//	summit-chaos -list                       # builtin scenarios
//	summit-chaos -scenario rack-cascade      # run a builtin
//	summit-chaos -scenario worst-week.chaos  # run a scenario file
//	summit-chaos -scenario all -check        # every builtin + invariants
//	summit-chaos -scenario perfect-storm -seed 7 -platform frontier
//	summit-chaos -scenario perfect-storm -trace out.json -metrics
//	summit-chaos -scenario sdc-storm -sdc -j 4   # corruption ablation
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"summitscale/internal/chaos"
	"summitscale/internal/obs"
	"summitscale/internal/platform"
)

func main() {
	scenario := flag.String("scenario", "perfect-storm", "builtin scenario name, path to a scenario file, or \"all\" for every builtin")
	seed := flag.Uint64("seed", 20220523, "RNG seed; the same seed always compiles the same schedule")
	plat := flag.String("platform", "summit", "machine under test ("+strings.Join(platform.Names(), ", ")+")")
	check := flag.Bool("check", false, "run the invariant suite (replay determinism, byte conservation, monotone degradation, policies load-bearing) after each scenario")
	sdc := flag.Bool("sdc", false, "run the silent-data-corruption ablation (clean vs detection-on vs detection-off guarded training) after each scenario's report")
	jobs := flag.Int("j", 1, "ablation legs to run concurrently (-sdc); the report is identical at any value")
	list := flag.Bool("list", false, "list builtin scenarios and exit")
	traceOut := flag.String("trace", "", "write the run's simulated-clock spans as Chrome trace-event JSON to this file")
	metrics := flag.Bool("metrics", false, "print the obs metrics summary after the report")
	flag.Parse()

	if *list {
		for _, name := range chaos.Names() {
			sc, err := chaos.Builtin(name)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-16s %d nodes over %s\n", name, sc.Nodes, hours(sc))
		}
		return
	}

	p, err := platform.Lookup(*plat)
	if err != nil {
		fatal(err)
	}

	var scenarios []*chaos.Scenario
	switch {
	case *scenario == "all":
		for _, name := range chaos.Names() {
			sc, err := chaos.Builtin(name)
			if err != nil {
				fatal(err)
			}
			scenarios = append(scenarios, sc)
		}
	case looksLikeFile(*scenario):
		text, err := os.ReadFile(*scenario)
		if err != nil {
			fatal(err)
		}
		sc, err := chaos.Parse(string(text))
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *scenario, err))
		}
		scenarios = append(scenarios, sc)
	default:
		sc, err := chaos.Builtin(*scenario)
		if err != nil {
			fatal(err)
		}
		scenarios = append(scenarios, sc)
	}

	var ob *obs.Observer
	if *traceOut != "" || *metrics {
		ob = obs.New()
	}

	failed := false
	for i, sc := range scenarios {
		if i > 0 {
			fmt.Println()
		}
		rep, err := chaos.Run(sc, *seed, chaos.Config{Platform: p, Obs: ob})
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.Render())
		if *sdc {
			srep, err := chaos.RunSDC(sc, *seed, chaos.SDCConfig{Jobs: *jobs, Obs: ob})
			if err != nil {
				fatal(err)
			}
			fmt.Print(srep.Render())
		}
		if *check {
			if err := chaos.CheckInvariants(sc, *seed, chaos.Config{Platform: p}); err != nil {
				fmt.Printf("  INVARIANT VIOLATION: %v\n", err)
				failed = true
			} else {
				fmt.Println("  invariants: ok")
			}
		}
	}

	if *traceOut != "" {
		if err := ob.WriteChromeTrace(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Printf("summit-chaos: wrote trace to %s\n", *traceOut)
	}
	if *metrics {
		fmt.Print(ob.Trace.Summary())
		fmt.Print(ob.Metrics.Render())
	}
	if failed {
		os.Exit(1)
	}
}

// looksLikeFile treats anything with a path separator or extension as a
// scenario file, so builtin names never shadow files and vice versa.
func looksLikeFile(s string) bool {
	return strings.ContainsAny(s, "/\\.") || fileExists(s)
}

func fileExists(s string) bool {
	st, err := os.Stat(s)
	return err == nil && !st.IsDir()
}

func hours(sc *chaos.Scenario) string {
	return fmt.Sprintf("%gh", float64(sc.Horizon)/3600)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "summit-chaos: %v\n", err)
	os.Exit(2)
}
