// Command summit-mlperf runs the MLPerf-HPC-style benchmark campaign
// suite: the registered science workloads (CosmoFlow, DeepCAM,
// OpenCatalyst) priced as closed-division time-to-train, swept across
// strong/weak scaling, and scheduled as concurrent campaign instances
// onto the machine's node pool — singly ("mixed") or as N identical
// instances ("throughput mode"). Every report is a pure function of
// (platform, campaign, seed): any -j replays byte-identically, which is
// exactly what the CI mlperf-smoke gate checks.
//
// Usage:
//
//	summit-mlperf                              # mixed suite on summit
//	summit-mlperf -platform frontier -sweep cosmoflow
//	summit-mlperf -workload deepcam -instances 4   # throughput mode
//	summit-mlperf -scenario campaign-storm         # chaos replay, ckpt policy on vs off
//	summit-mlperf -j 4 -metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"summitscale/internal/bench"
	"summitscale/internal/chaos"
	"summitscale/internal/obs"
	"summitscale/internal/platform"
)

func main() {
	plat := flag.String("platform", "summit", "benchmark machine ("+strings.Join(platform.Names(), ", ")+")")
	seed := flag.Uint64("seed", 42, "RNG seed for the chaos schedule")
	workers := flag.Int("j", 0, "instance-evaluator cap (0 = all cores); cannot change any output byte")
	workload := flag.String("workload", "", "throughput mode: run -instances copies of this workload ("+strings.Join(bench.Names(), ", ")+")")
	instances := flag.Int("instances", 4, "throughput mode: number of concurrent instances")
	sweep := flag.String("sweep", "", "print strong/weak scaling sweeps for this workload instead of a campaign")
	scenario := flag.String("scenario", "", "replay a chaos scenario against the campaign: \"campaign-storm\", a builtin name, or a scenario file")
	metrics := flag.Bool("metrics", false, "print the obs metrics summary after the report")
	flag.Parse()

	p, err := platform.Lookup(*plat)
	if err != nil {
		fatal(err)
	}
	var ob *obs.Observer
	if *metrics {
		ob = obs.New()
	}

	switch {
	case *sweep != "":
		w, ok := bench.Lookup(*sweep)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q (have %s)", *sweep, strings.Join(bench.Names(), ", ")))
		}
		ladder := bench.SweepNodes(p, 8)
		fmt.Print(bench.RenderSweep(w, bench.WeakScaling, bench.Sweep(p, w, bench.WeakScaling, ladder)))
		fmt.Print(bench.RenderSweep(w, bench.StrongScaling, bench.Sweep(p, w, bench.StrongScaling, ladder)))

	case *scenario != "":
		sc, err := loadScenario(*scenario)
		if err != nil {
			fatal(err)
		}
		rep, err := chaos.RunCampaign(p, sc, *seed, campaign(p, *workload, *instances), *workers, ob)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.Render())

	default:
		rep, err := bench.RunCampaign(p, campaign(p, *workload, *instances), *workers, ob)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.Render())
	}

	if *metrics {
		fmt.Print(ob.Metrics.Render())
	}
}

// campaign resolves the campaign to run: the mixed suite by default, or
// throughput mode when a workload is named.
func campaign(p platform.Platform, workload string, instances int) bench.Campaign {
	if workload == "" {
		return bench.DefaultCampaign(p)
	}
	return bench.ThroughputCampaign(p, workload, instances)
}

// loadScenario resolves -scenario: the campaign reference scenario, a
// builtin name, or a scenario file.
func loadScenario(s string) (*chaos.Scenario, error) {
	if s == "campaign-storm" {
		return chaos.CampaignStorm(), nil
	}
	if strings.ContainsAny(s, "/\\.") {
		text, err := os.ReadFile(s)
		if err != nil {
			return nil, err
		}
		return chaos.Parse(string(text))
	}
	return chaos.Builtin(s)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "summit-mlperf: %v\n", err)
	os.Exit(2)
}
