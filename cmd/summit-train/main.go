// Command summit-train runs a real distributed data-parallel training job
// on this machine: goroutine ranks, a real ring allreduce of gradients,
// and the large-batch optimizers of the paper's scale-out studies.
//
// Usage:
//
//	summit-train -model cnn -ranks 4 -epochs 10 -opt lamb
//	summit-train -model mlp -ranks 8 -opt lars -fp16
//	summit-train -model bert -ranks 2 -steps 30
//	summit-train -model mlp -ranks 4 -trace train.json -metrics
//	summit-train -model mlp -store ckpts/   # tiered versioned store
//	summit-train -verify-ckpt model.ckpt    # per-parameter CRC audit
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"summitscale/internal/autograd"
	"summitscale/internal/checkpoint"
	"summitscale/internal/data"
	"summitscale/internal/ddl"
	"summitscale/internal/mp"
	"summitscale/internal/nn"
	"summitscale/internal/obs"
	"summitscale/internal/optim"
	"summitscale/internal/platform"
	"summitscale/internal/stats"
	"summitscale/internal/tensor"
)

func buildOptimizer(name string, lr float64) optim.Optimizer {
	switch name {
	case "sgd":
		return optim.NewSGD(lr)
	case "momentum":
		return optim.NewMomentumSGD(lr, 0.9)
	case "adam":
		return optim.NewAdam(lr)
	case "lars":
		return optim.NewLARS(lr)
	case "lamb":
		return optim.NewLAMB(lr)
	default:
		fmt.Fprintf(os.Stderr, "summit-train: unknown optimizer %q\n", name)
		os.Exit(2)
		return nil
	}
}

func main() {
	model := flag.String("model", "cnn", "cnn | mlp | bert | wavenet")
	ranks := flag.Int("ranks", 4, "data-parallel ranks (goroutines)")
	epochs := flag.Int("epochs", 10, "epochs (cnn/mlp)")
	steps := flag.Int("steps", 30, "steps (bert)")
	optName := flag.String("opt", "momentum", "sgd | momentum | adam | lars | lamb")
	lr := flag.Float64("lr", 0.05, "learning rate")
	fp16 := flag.Bool("fp16", false, "fp16 gradient compression")
	accum := flag.Int("accum", 1, "gradient accumulation steps")
	hier := flag.Int("hier", 0, "hierarchical allreduce island size (0 = flat ring, -1 = platform GPUs/node)")
	plat := flag.String("platform", "summit", "machine whose node shape sizes -hier -1 islands")
	ckpt := flag.String("ckpt", "", "checkpoint path: save after training, load first if present")
	storeDir := flag.String("store", "", "tiered checkpoint store root (nvme/replica/gpfs subdirs): restore the newest restorable version first, commit a new version and drain it to every tier afterwards")
	verifyCkpt := flag.String("verify-ckpt", "", "verify a checkpoint file's per-parameter CRC sections and exit (non-zero when any section is corrupt)")
	seed := flag.Uint64("seed", 1, "seed")
	traceOut := flag.String("trace", "", "write per-rank step/allreduce spans as Chrome trace-event JSON to this file (simulated step clock: 1 s per step)")
	metrics := flag.Bool("metrics", false, "print the obs metrics summary after training")
	flag.Parse()

	if *verifyCkpt != "" {
		verifyCheckpoint(*verifyCkpt)
		return
	}

	p, err := platform.Lookup(*plat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "summit-train: %v\n", err)
		os.Exit(2)
	}
	if *hier < 0 {
		if p.Node.GPUs <= 0 {
			fmt.Fprintf(os.Stderr, "summit-train: -hier -1 needs a platform with GPUs per node, %s has none\n", p.Name)
			os.Exit(2)
		}
		*hier = p.Node.GPUs
	}
	if *hier > 0 && *ranks%*hier != 0 {
		fmt.Fprintf(os.Stderr, "summit-train: %d ranks not divisible by island size %d (%s has %d GPUs/node); pick -ranks as a multiple\n",
			*ranks, *hier, p.Name, p.Node.GPUs)
		os.Exit(2)
	}

	cfg := ddl.Config{AccumSteps: *accum}
	if *fp16 {
		cfg.Compression = ddl.FP16
	}
	var ob *obs.Observer
	if *traceOut != "" || *metrics {
		ob = obs.New()
		cfg.Obs = ob
		// One simulated second per step puts every rank's step/allreduce
		// spans on a common clock regardless of real execution speed.
		cfg.StepTime = 1
	}
	if *hier > 0 {
		group := *hier
		cfg.Allreduce = func(c *mp.Comm, g []float64) []float64 {
			return c.AllReduceHierarchical(g, group)
		}
	}
	ckptPath = *ckpt
	if *storeDir != "" {
		st, err := checkpoint.NewStore([]checkpoint.TierDir{
			{Name: "nvme", Dir: filepath.Join(*storeDir, "nvme")},
			{Name: "replica", Dir: filepath.Join(*storeDir, "replica")},
			{Name: "gpfs", Dir: filepath.Join(*storeDir, "gpfs")},
		}, 4)
		if err != nil {
			fmt.Fprintf(os.Stderr, "summit-train: store: %v\n", err)
			os.Exit(2)
		}
		defer st.Close()
		ckptStore = st
	}

	switch *model {
	case "cnn":
		trainCNN(*ranks, *epochs, *optName, *lr, cfg, *seed)
	case "mlp":
		trainMLP(*ranks, *epochs, *optName, *lr, cfg, *seed)
	case "bert":
		trainBERT(*ranks, *steps, *optName, *lr, cfg, *seed)
	case "wavenet":
		trainWaveNet(*ranks, *epochs, *optName, *lr, cfg, *seed)
	default:
		fmt.Fprintf(os.Stderr, "summit-train: unknown model %q\n", *model)
		os.Exit(2)
	}

	if *traceOut != "" {
		if err := ob.WriteChromeTrace(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "summit-train: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote trace to %s\n", *traceOut)
	}
	if *metrics {
		fmt.Print(ob.Trace.Summary())
		fmt.Print(ob.Metrics.Render())
	}
}

// ckptPath, when non-empty, makes rank 0 load the model before training
// (if the file exists) and save it afterwards. ckptStore is the tiered
// alternative (-store): restores prefer the shallowest healthy copy and
// saves commit a fresh version drained to every tier.
var (
	ckptPath  string
	ckptStore *checkpoint.Store
)

// verifyCheckpoint audits a checkpoint file's per-parameter CRC sections
// and exits non-zero when any section fails its checksum.
func verifyCheckpoint(path string) {
	sections, err := checkpoint.Verify(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "summit-train: verify: %v\n", err)
		os.Exit(1)
	}
	bad := 0
	for _, s := range sections {
		status := "ok"
		if !s.OK {
			status = "CORRUPT"
			bad++
		}
		fmt.Printf("  %-24s %8d elems  %s\n", s.Name, s.Elems, status)
	}
	fmt.Printf("%s: %d section(s), %d corrupt\n", path, len(sections), bad)
	if bad > 0 {
		os.Exit(1)
	}
}

// maybeLoad restores the model from the checkpoint when one exists. Every
// rank loads, so replicas stay identical.
func maybeLoad(c *mp.Comm, m nn.Module) {
	if ckptStore != nil {
		info, err := ckptStore.Restore(m)
		if err != nil {
			// A store with no committed versions is a fresh start, not a
			// failure.
			if strings.Contains(err.Error(), "no versions") {
				return
			}
			fmt.Fprintf(os.Stderr, "summit-train: store restore: %v\n", err)
			os.Exit(1)
		}
		if c.Rank() == 0 {
			report("restored checkpoint v%d from %s tier", info.Version, info.TierName)
		}
		return
	}
	if ckptPath == "" {
		return
	}
	if _, err := os.Stat(ckptPath); err != nil {
		return
	}
	if err := checkpoint.Load(m, ckptPath); err != nil {
		fmt.Fprintf(os.Stderr, "summit-train: checkpoint load: %v\n", err)
		os.Exit(1)
	}
	if c.Rank() == 0 {
		report("restored checkpoint %s", ckptPath)
	}
}

// maybeSave persists the model from rank 0.
func maybeSave(c *mp.Comm, m nn.Module) {
	if c.Rank() != 0 {
		return
	}
	if ckptStore != nil {
		v := ckptStore.Newest() + 1
		if v < 1 {
			v = 1
		}
		if err := ckptStore.Save(m, v); err != nil {
			fmt.Fprintf(os.Stderr, "summit-train: store save: %v\n", err)
			os.Exit(1)
		}
		if err := ckptStore.DrainAll(v); err != nil {
			fmt.Fprintf(os.Stderr, "summit-train: store drain: %v\n", err)
			os.Exit(1)
		}
		report("committed checkpoint v%d and drained it to every tier", v)
		return
	}
	if ckptPath == "" {
		return
	}
	if err := checkpoint.Save(m, ckptPath); err != nil {
		fmt.Fprintf(os.Stderr, "summit-train: checkpoint save: %v\n", err)
		os.Exit(1)
	}
	report("saved checkpoint %s", ckptPath)
}

// report serializes per-rank progress lines.
var reportMu sync.Mutex

func report(format string, args ...any) {
	reportMu.Lock()
	defer reportMu.Unlock()
	fmt.Printf(format+"\n", args...)
}

func trainCNN(ranks, epochs int, optName string, lr float64, cfg ddl.Config, seed uint64) {
	src := data.NewClimateImages(seed, 64, 1, 8)
	w := mp.NewWorld(ranks)
	w.Run(func(c *mp.Comm) {
		m := nn.NewSmallCNN(stats.NewRNG(seed+100), nn.SmallCNNConfig{
			InChannels: 1, ImageSize: 8, Channels: []int{8}, Classes: 2,
		})
		maybeLoad(c, m)
		r := ddl.NewRank(c, m, buildOptimizer(optName, lr), cfg)
		for epoch := 0; epoch < epochs; epoch++ {
			idx := data.ShardedEpoch(seed, epoch, src.Len(), c.Size(), c.Rank())
			var loss float64
			for _, batch := range data.Batches(idx, 4) {
				x, labels := data.BatchImages(src, batch)
				loss = r.Step(func(int) *autograd.Value {
					return autograd.SoftmaxCrossEntropy(m.Forward(autograd.Constant(x)), labels)
				})
			}
			if c.Rank() == 0 {
				report("epoch %2d  loss %.4f", epoch, loss)
			}
		}
		if c.Rank() == 0 {
			// Training accuracy over the whole set.
			correct := 0
			for i := 0; i < src.Len(); i += 8 {
				hi := i + 8
				if hi > src.Len() {
					hi = src.Len()
				}
				idx := make([]int, hi-i)
				for k := range idx {
					idx[k] = i + k
				}
				x, labels := data.BatchImages(src, idx)
				pred := m.Forward(autograd.Constant(x)).Data.ArgMaxRows()
				for k, p := range pred {
					if p == labels[k] {
						correct++
					}
				}
			}
			report("accuracy %.1f%%  (bytes allreduced: %d)",
				100*float64(correct)/float64(src.Len()), w.BytesSent())
		}
		if !ddl.ReplicasConsistent(c, m, 1e-9) {
			report("WARNING: replicas diverged")
		}
		maybeSave(c, m)
	})
}

func trainMLP(ranks, epochs int, optName string, lr float64, cfg ddl.Config, seed uint64) {
	// Waveform parameter regression (Khan et al. in miniature).
	src := data.NewWaveforms(seed, 128, 64, 0.02)
	w := mp.NewWorld(ranks)
	w.Run(func(c *mp.Comm) {
		m := nn.NewResidualMLP(stats.NewRNG(seed+200), 64, 32, 2, 2)
		maybeLoad(c, m)
		r := ddl.NewRank(c, m, buildOptimizer(optName, lr), cfg)
		for epoch := 0; epoch < epochs; epoch++ {
			idx := data.ShardedEpoch(seed, epoch, src.Len(), c.Size(), c.Rank())
			var loss float64
			for _, batch := range data.Batches(idx, 8) {
				x := tensor.New(len(batch), 64)
				y := tensor.New(len(batch), 2)
				for bi, si := range batch {
					series, params := src.Sample(si)
					copy(x.Data()[bi*64:(bi+1)*64], series)
					y.Set(params[0], bi, 0)
					y.Set(params[1], bi, 1)
				}
				loss = r.Step(func(int) *autograd.Value {
					return autograd.MSE(m.Forward(autograd.Constant(x)), y)
				})
			}
			if c.Rank() == 0 {
				report("epoch %2d  mse %.5f", epoch, loss)
			}
		}
		maybeSave(c, m)
	})
}

// trainWaveNet regresses chirp parameters with a dilated causal
// convolution stack (Khan et al.'s architecture family).
func trainWaveNet(ranks, epochs int, optName string, lr float64, cfg ddl.Config, seed uint64) {
	const seqLen = 32
	src := data.NewWaveforms(seed, 64, seqLen, 0.02)
	w := mp.NewWorld(ranks)
	w.Run(func(c *mp.Comm) {
		m := nn.NewWaveNetStack(stats.NewRNG(seed+400), 6, 3, 2)
		maybeLoad(c, m)
		r := ddl.NewRank(c, m, buildOptimizer(optName, lr), cfg)
		for epoch := 0; epoch < epochs; epoch++ {
			idx := data.ShardedEpoch(seed, epoch, src.Len(), c.Size(), c.Rank())
			var loss float64
			for _, batch := range data.Batches(idx, 8) {
				x := tensor.New(len(batch), 1, seqLen)
				y := tensor.New(len(batch), 2)
				for bi, si := range batch {
					series, params := src.Sample(si)
					copy(x.Data()[bi*seqLen:(bi+1)*seqLen], series)
					y.Set(params[0], bi, 0)
					y.Set(params[1], bi, 1)
				}
				loss = r.Step(func(int) *autograd.Value {
					return autograd.MSE(m.Forward(autograd.Constant(x)), y)
				})
			}
			if c.Rank() == 0 && epoch%5 == 0 {
				report("epoch %2d  mse %.5f  (receptive field %d)", epoch, loss, m.ReceptiveField())
			}
		}
		maybeSave(c, m)
	})
}

func trainBERT(ranks, steps int, optName string, lr float64, cfg ddl.Config, seed uint64) {
	src := data.NewSMILESSequences(seed, 256, 16)
	w := mp.NewWorld(ranks)
	w.Run(func(c *mp.Comm) {
		m := nn.NewMiniBERT(stats.NewRNG(seed+300), nn.MiniBERTConfig{
			Vocab: src.Vocab(), SeqLen: 16, Dim: 32, Heads: 4, FFDim: 64, Layers: 2,
		})
		maybeLoad(c, m)
		r := ddl.NewRank(c, m, buildOptimizer(optName, lr), cfg)
		rng := stats.NewRNG(seed + uint64(c.Rank()))
		for s := 0; s < steps; s++ {
			loss := r.Step(func(int) *autograd.Value {
				i := rng.Intn(src.Len())
				input, target, _ := src.MaskedSample(i, 0.15)
				return autograd.SoftmaxCrossEntropy(m.Forward(input), target)
			})
			if c.Rank() == 0 && s%5 == 0 {
				report("step %3d  masked-LM loss %.4f", s, loss)
			}
		}
		maybeSave(c, m)
	})
}
