// Command summit-topo explores the fat-tree fabric model: topology sizes,
// routing paths, and congestion under the collective traffic patterns of
// §VI-B (neighbour rings vs incast), with adaptive vs static routing.
//
// Usage:
//
//	summit-topo -radix 16                 # topology summary + traffic study
//	summit-topo -radix 8 -route 0,100     # show the path between two hosts
//	summit-topo -platform frontier        # fluid model at another machine's rates
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"summitscale/internal/netsim"
	"summitscale/internal/platform"
	"summitscale/internal/stats"
	"summitscale/internal/topology"
	"summitscale/internal/units"
)

// bwLabel renders a link rate compactly ("25 GB/s", not "25.00 GB/s").
func bwLabel(bw units.BytesPerSecond) string {
	return strings.Replace(bw.String(), ".00 ", " ", 1)
}

func main() {
	radix := flag.Int("radix", 16, "fat-tree switch radix (even)")
	route := flag.String("route", "", "src,dst host pair to trace")
	plat := flag.String("platform", "summit", "machine whose link rates drive the fluid model ("+strings.Join(platform.Names(), ", ")+")")
	flag.Parse()

	p, err := platform.Lookup(*plat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "summit-topo: %v\n", err)
		os.Exit(2)
	}

	ft := topology.NewFatTree(*radix)
	fmt.Printf("k=%d fat tree: %d hosts, %d pods, %d edge+%d agg per pod, %d core switches\n",
		ft.Radix, ft.HostCount, ft.PodCount, ft.EdgePerPod, ft.AggPerPod, ft.CoreCount)

	if *route != "" {
		parts := strings.Split(*route, ",")
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "summit-topo: -route wants src,dst")
			os.Exit(2)
		}
		src, err1 := strconv.Atoi(parts[0])
		dst, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			fmt.Fprintln(os.Stderr, "summit-topo: bad -route hosts")
			os.Exit(2)
		}
		path := ft.Route(src, dst, true)
		fmt.Printf("adaptive route %d -> %d (%d links):", src, dst, len(path)-1)
		for _, v := range path {
			fmt.Printf(" %v", v)
		}
		fmt.Println()
		return
	}

	// Traffic study: ring vs permutation vs incast, adaptive vs static.
	fmt.Println("\nmax link load under collective traffic patterns:")
	fmt.Println("  pattern           static  adaptive")
	ringS := ft.RingNeighborTraffic(ft.HostCount, false)
	ringA := ft.RingNeighborTraffic(ft.HostCount, true)
	fmt.Printf("  neighbour ring   %7d  %8d\n", ringS, ringA)

	rng := stats.NewRNG(1)
	perm := rng.Perm(ft.HostCount)
	measure := func(adaptive bool) int {
		ft.ResetLoad()
		for s, d := range perm {
			if s != d {
				ft.AddFlow(s, d, adaptive)
			}
		}
		return ft.MaxLinkLoad()
	}
	fmt.Printf("  permutation      %7d  %8d\n", measure(false), measure(true))

	ft.ResetLoad()
	for s := 1; s < ft.HostCount; s++ {
		ft.AddFlow(s, 0, true)
	}
	fmt.Printf("  incast to host 0 %7d  (inherent)\n", ft.MaxLinkLoad())

	// Fluid-model timings for a ring allreduce step at the selected
	// machine's injection rate and network latency.
	chunk := units.Bytes(10 * units.MB)
	tm := netsim.RingStepTime(topology.NewFatTree(*radix), ft.HostCount, chunk,
		p.Node.InjectionBW, p.NetworkLatency)
	fmt.Printf("\nring step of %v/host on %s links: %v\n", chunk, bwLabel(p.Node.InjectionBW), tm)
}
