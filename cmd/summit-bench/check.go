package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Regression gate: `summit-bench -check old.json` parses a fresh
// benchmark stream from stdin and compares it against a committed
// baseline document, failing when a hot path slows down or allocates
// beyond tolerance. Benchmark timings on shared CI runners are noisy, so
// the threshold is deliberately wide (±30%); allocs/op is deterministic
// and uses the same bound only to tolerate size-class changes.

// checkTolerance is the fractional regression allowed before failing.
const checkTolerance = 0.30

// minParallelSpeedup is the floor on BenchmarkRunAllSequential /
// BenchmarkRunAllParallel: the DAG engine's memoized parallel path must
// beat the flat sequential baseline by at least this factor, or the
// scheduler refactor has regressed to recomputing shared work. Unlike the
// pairwise tolerances, this is a ratio within ONE fresh run, so runner
// speed cancels out and the rule can gate strictly.
const minParallelSpeedup = 1.5

// checkSpeedupRatio enforces minParallelSpeedup on a fresh document. Both
// benchmarks absent is fine (a partial bench sweep); exactly one present
// is reported as a failure, since the pair only means anything together.
func checkSpeedupRatio(fresh *document) (line string, ok bool) {
	var seq, par *result
	for i := range fresh.Benchmarks {
		r := &fresh.Benchmarks[i]
		switch strings.TrimRight(r.Name, "-0123456789") { // strip -<GOMAXPROCS>
		case "BenchmarkRunAllSequential":
			seq = r
		case "BenchmarkRunAllParallel":
			par = r
		}
	}
	if seq == nil && par == nil {
		return "", true
	}
	if seq == nil || par == nil || par.NsPerOp == 0 {
		return fmt.Sprintf("  RunAllSequential/RunAllParallel ratio: pair incomplete (seq=%v par=%v)",
			seq != nil, par != nil), false
	}
	ratio := seq.NsPerOp / par.NsPerOp
	ok = ratio >= minParallelSpeedup
	status := "ok"
	if !ok {
		status = "REGRESSION"
	}
	return fmt.Sprintf("  RunAllSequential/RunAllParallel ratio %38.2fx (floor %.1fx)  [%s]",
		ratio, minParallelSpeedup, status), ok
}

// compareDoc diffs fresh against old benchmark-by-benchmark and returns
// human-readable report lines plus the names of failing benchmarks.
func compareDoc(old, fresh *document) (lines []string, failed []string) {
	baseline := make(map[string]result, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		baseline[r.Name] = r
	}
	seen := make(map[string]bool, len(fresh.Benchmarks))
	for _, r := range fresh.Benchmarks {
		seen[r.Name] = true
		b, ok := baseline[r.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("  %-52s new benchmark (no baseline)", r.Name))
			continue
		}
		fail := false
		nsDelta := relDelta(b.NsPerOp, r.NsPerOp)
		if nsDelta > checkTolerance {
			fail = true
		}
		allocDelta := relDelta(b.AllocsPerOp, r.AllocsPerOp)
		if allocDelta > checkTolerance && r.AllocsPerOp-b.AllocsPerOp > 0.5 {
			fail = true
		}
		status := "ok"
		if fail {
			status = "REGRESSION"
			failed = append(failed, r.Name)
		}
		lines = append(lines, fmt.Sprintf("  %-52s ns/op %12.0f -> %12.0f (%+6.1f%%)  allocs/op %6.0f -> %6.0f  [%s]",
			r.Name, b.NsPerOp, r.NsPerOp, 100*nsDelta, b.AllocsPerOp, r.AllocsPerOp, status))
	}
	var missing []string
	for name := range baseline {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		lines = append(lines, fmt.Sprintf("  %-52s MISSING from fresh run", name))
		failed = append(failed, name)
	}
	return lines, failed
}

// relDelta is (fresh-old)/old; an old value of zero only regresses when
// fresh is nonzero.
func relDelta(old, fresh float64) float64 {
	if old == 0 {
		if fresh == 0 {
			return 0
		}
		return 1 // appeared from nothing: treat as a full regression
	}
	return (fresh - old) / old
}

// runCheck loads the baseline, parses fresh results from doc, prints the
// comparison, and exits nonzero on regression.
func runCheck(baselinePath string, fresh *document) {
	b, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "summit-bench:", err)
		os.Exit(1)
	}
	var old document
	if err := json.Unmarshal(b, &old); err != nil {
		fmt.Fprintf(os.Stderr, "summit-bench: parsing %s: %v\n", baselinePath, err)
		os.Exit(1)
	}
	lines, failed := compareDoc(&old, fresh)
	if line, ok := checkSpeedupRatio(fresh); line != "" {
		lines = append(lines, line)
		if !ok {
			failed = append(failed, "RunAllSequential/RunAllParallel")
		}
	}
	fmt.Printf("benchmark check vs %s (tolerance +-%.0f%%):\n", baselinePath, 100*checkTolerance)
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "summit-bench: %d benchmark(s) regressed beyond %.0f%%: %v\n",
			len(failed), 100*checkTolerance, failed)
		os.Exit(1)
	}
	fmt.Println("summit-bench: no regressions")
}
