package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Regression gate: `summit-bench -check old.json` parses a fresh
// benchmark stream from stdin and compares it against a committed
// baseline document, failing when a hot path slows down or allocates
// beyond tolerance. Benchmark timings on shared CI runners are noisy, so
// the threshold is deliberately wide (±30%); allocs/op is deterministic
// and uses the same bound only to tolerate size-class changes.

// checkTolerance is the fractional regression allowed before failing.
const checkTolerance = 0.30

// Parallel-kernel floor rules. Like minParallelSpeedup these are ratios
// within ONE fresh run, so runner speed cancels out; unlike it they only
// mean anything when there are cores to fan out over, so the speedup
// floors are skipped below kernelFloorMinProcs. The allocation floor is
// deterministic and applies at any core count.
const (
	// minGemmSpeedup floors GemmRowStream256 / GemmParallel256: the
	// packed parallel GEMM must beat the serial row-stream kernel 2x.
	minGemmSpeedup = 2.0
	// minMDSpeedup floors MDForces/serial / MDForces/parallel: the
	// persistent-pool force kernel must actually beat serial.
	minMDSpeedup = 1.2
	// minServeBatchSpeedup floors ServeHotPath unbatched/batched: the
	// serving layer's micro-batched inference must process the same rows
	// at least 2x faster than single-row dispatch — it amortizes per-call
	// overhead and fans rows out over the pool.
	minServeBatchSpeedup = 2.0
	// minCampaignSpeedup floors CampaignHotPath serial/parallel: the
	// benchmark-campaign harness must evaluate instances (TTT pricing +
	// proxy training) concurrently, not in a serial loop. Each proxy run
	// already holds a small rank-world of goroutines, so the fan-out
	// margin is thinner than a pure kernel's.
	minCampaignSpeedup = 1.2
	// minCheckpointDrainSpeedup floors CheckpointDrain sync/async: the
	// asynchronous tier drain must overlap its deep-tier copies with the
	// training steps a synchronous drain would stall, so the async path
	// finishes the same step+commit+drain workload at least 1.5x faster.
	minCheckpointDrainSpeedup = 1.5
	// kernelFloorMinProcs is the recorded GOMAXPROCS below which the
	// speedup floors are skipped (reported, not enforced).
	kernelFloorMinProcs = 4
	// maxTrainStepAllocs caps TrainStepAlloc/scratch allocs/op: the
	// arena + persistent-pool training step must stay allocation-flat.
	maxTrainStepAllocs = 45
)

// ratioRule is one within-run speedup floor: numerator ns/op over
// denominator ns/op must reach floor. Rules live in a table so every rule
// is evaluated — and every violation reported — before the gate exits
// nonzero; adding a floor is one line here plus a constant above.
type ratioRule struct {
	label    string
	num, den string // benchmark names as recorded in the document
	floor    float64
}

// ratioRules is the floor table -check and -floors enforce.
var ratioRules = []ratioRule{
	{"GemmRowStream256/GemmParallel256",
		"BenchmarkGemmRowStream256", "BenchmarkGemmParallel256", minGemmSpeedup},
	{"MDForces serial/parallel",
		"BenchmarkMDForces/serial", "BenchmarkMDForces/parallel", minMDSpeedup},
	{"ServeHotPath unbatched/batched",
		"BenchmarkServeHotPath/unbatched", "BenchmarkServeHotPath/batched", minServeBatchSpeedup},
	{"CampaignHotPath serial/parallel",
		"BenchmarkCampaignHotPath/serial", "BenchmarkCampaignHotPath/parallel", minCampaignSpeedup},
	{"CheckpointDrain sync/async",
		"BenchmarkCheckpointDrain/sync", "BenchmarkCheckpointDrain/async", minCheckpointDrainSpeedup},
}

// checkKernelFloors enforces the alloc ceiling and every table rule on a
// fresh document. Absent benchmarks are fine (a partial sweep skips their
// rules); a present pair is enforced, and all violations are collected
// rather than stopping at the first.
func checkKernelFloors(fresh *document) (lines []string, failed []string) {
	find := func(name string) *result {
		for i := range fresh.Benchmarks {
			if fresh.Benchmarks[i].Name == name {
				return &fresh.Benchmarks[i]
			}
		}
		return nil
	}
	if r := find("BenchmarkTrainStepAlloc/scratch"); r != nil {
		status := "ok"
		if r.AllocsPerOp > maxTrainStepAllocs {
			status = "REGRESSION"
			failed = append(failed, "TrainStepAlloc/scratch allocs")
		}
		lines = append(lines, fmt.Sprintf("  TrainStepAlloc/scratch allocs/op %30.0f (ceiling %d)  [%s]",
			r.AllocsPerOp, maxTrainStepAllocs, status))
	}
	for _, rule := range ratioRules {
		nr, dr := find(rule.num), find(rule.den)
		if nr == nil && dr == nil {
			continue
		}
		if nr == nil || dr == nil || dr.NsPerOp == 0 {
			lines = append(lines, fmt.Sprintf("  %s: pair incomplete", rule.label))
			failed = append(failed, rule.label)
			continue
		}
		if fresh.Gomaxprocs < kernelFloorMinProcs {
			lines = append(lines, fmt.Sprintf("  %s floor %.1fx skipped (gomaxprocs %d < %d)",
				rule.label, rule.floor, fresh.Gomaxprocs, kernelFloorMinProcs))
			continue
		}
		got := nr.NsPerOp / dr.NsPerOp
		status := "ok"
		if got < rule.floor {
			status = "REGRESSION"
			failed = append(failed, rule.label)
		}
		lines = append(lines, fmt.Sprintf("  %s ratio %.2fx (floor %.1fx)  [%s]", rule.label, got, rule.floor, status))
	}
	return lines, failed
}

// runFloors evaluates only the within-run kernel floor rules — no
// baseline document needed, so it works on any runner regardless of
// what core count the committed baseline was measured at (`make
// bench-floors`, the CI perf-smoke job).
func runFloors(fresh *document) {
	lines, failed := checkKernelFloors(fresh)
	fmt.Printf("kernel floor check (gomaxprocs %d):\n", fresh.Gomaxprocs)
	if len(lines) == 0 {
		fmt.Fprintln(os.Stderr, "summit-bench: no kernel-floor benchmarks in stream (need Gemm*, MDForces, ServeHotPath, CampaignHotPath, CheckpointDrain, TrainStepAlloc)")
		os.Exit(1)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "summit-bench: %d kernel floor(s) breached: %v\n", len(failed), failed)
		os.Exit(1)
	}
	fmt.Println("summit-bench: kernel floors hold")
}

// minParallelSpeedup is the floor on BenchmarkRunAllSequential /
// BenchmarkRunAllParallel: the DAG engine's memoized parallel path must
// beat the flat sequential baseline by at least this factor, or the
// scheduler refactor has regressed to recomputing shared work. Unlike the
// pairwise tolerances, this is a ratio within ONE fresh run, so runner
// speed cancels out and the rule can gate strictly.
const minParallelSpeedup = 1.5

// checkSpeedupRatio enforces minParallelSpeedup on a fresh document. Both
// benchmarks absent is fine (a partial bench sweep); exactly one present
// is reported as a failure, since the pair only means anything together.
func checkSpeedupRatio(fresh *document) (line string, ok bool) {
	var seq, par *result
	for i := range fresh.Benchmarks {
		r := &fresh.Benchmarks[i]
		switch strings.TrimRight(r.Name, "-0123456789") { // strip -<GOMAXPROCS>
		case "BenchmarkRunAllSequential":
			seq = r
		case "BenchmarkRunAllParallel":
			par = r
		}
	}
	if seq == nil && par == nil {
		return "", true
	}
	if seq == nil || par == nil || par.NsPerOp == 0 {
		return fmt.Sprintf("  RunAllSequential/RunAllParallel ratio: pair incomplete (seq=%v par=%v)",
			seq != nil, par != nil), false
	}
	ratio := seq.NsPerOp / par.NsPerOp
	ok = ratio >= minParallelSpeedup
	status := "ok"
	if !ok {
		status = "REGRESSION"
	}
	return fmt.Sprintf("  RunAllSequential/RunAllParallel ratio %38.2fx (floor %.1fx)  [%s]",
		ratio, minParallelSpeedup, status), ok
}

// compareDoc diffs fresh against old benchmark-by-benchmark and returns
// human-readable report lines plus the names of failing benchmarks.
func compareDoc(old, fresh *document) (lines []string, failed []string) {
	baseline := make(map[string]result, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		baseline[r.Name] = r
	}
	seen := make(map[string]bool, len(fresh.Benchmarks))
	for _, r := range fresh.Benchmarks {
		seen[r.Name] = true
		b, ok := baseline[r.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("  %-52s new benchmark (no baseline)", r.Name))
			continue
		}
		fail := false
		nsDelta := relDelta(b.NsPerOp, r.NsPerOp)
		if nsDelta > checkTolerance {
			fail = true
		}
		allocDelta := relDelta(b.AllocsPerOp, r.AllocsPerOp)
		if allocDelta > checkTolerance && r.AllocsPerOp-b.AllocsPerOp > 0.5 {
			fail = true
		}
		status := "ok"
		if fail {
			status = "REGRESSION"
			failed = append(failed, r.Name)
		}
		lines = append(lines, fmt.Sprintf("  %-52s ns/op %12.0f -> %12.0f (%+6.1f%%)  allocs/op %6.0f -> %6.0f  [%s]",
			r.Name, b.NsPerOp, r.NsPerOp, 100*nsDelta, b.AllocsPerOp, r.AllocsPerOp, status))
	}
	var missing []string
	for name := range baseline {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		lines = append(lines, fmt.Sprintf("  %-52s MISSING from fresh run", name))
		failed = append(failed, name)
	}
	return lines, failed
}

// relDelta is (fresh-old)/old; an old value of zero only regresses when
// fresh is nonzero.
func relDelta(old, fresh float64) float64 {
	if old == 0 {
		if fresh == 0 {
			return 0
		}
		return 1 // appeared from nothing: treat as a full regression
	}
	return (fresh - old) / old
}

// runCheck loads the baseline, parses fresh results from doc, prints the
// comparison, and exits nonzero on regression.
func runCheck(baselinePath string, fresh *document) {
	b, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "summit-bench:", err)
		os.Exit(1)
	}
	var old document
	if err := json.Unmarshal(b, &old); err != nil {
		fmt.Fprintf(os.Stderr, "summit-bench: parsing %s: %v\n", baselinePath, err)
		os.Exit(1)
	}
	oldProcs := old.Gomaxprocs
	if oldProcs == 0 {
		oldProcs = 1 // documents predating the field were 1-core runs
	}
	if oldProcs != fresh.Gomaxprocs {
		fmt.Fprintf(os.Stderr,
			"summit-bench: refusing to compare: baseline %s was measured at gomaxprocs=%d, this run at %d — parallel-kernel timings from different core counts are not comparable; regenerate the baseline on a matching machine\n",
			baselinePath, oldProcs, fresh.Gomaxprocs)
		os.Exit(1)
	}
	lines, failed := compareDoc(&old, fresh)
	if kl, kf := checkKernelFloors(fresh); len(kl) > 0 {
		lines = append(lines, kl...)
		failed = append(failed, kf...)
	}
	if line, ok := checkSpeedupRatio(fresh); line != "" {
		lines = append(lines, line)
		if !ok {
			failed = append(failed, "RunAllSequential/RunAllParallel")
		}
	}
	fmt.Printf("benchmark check vs %s (tolerance +-%.0f%%):\n", baselinePath, 100*checkTolerance)
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "summit-bench: %d benchmark(s) regressed beyond %.0f%%: %v\n",
			len(failed), 100*checkTolerance, failed)
		os.Exit(1)
	}
	fmt.Println("summit-bench: no regressions")
}
