// Command summit-bench converts `go test -bench -benchmem` output read
// from stdin into a stable JSON document, one record per benchmark line.
// It exists so `make bench-json` can commit hot-path numbers
// (BENCH_hotpath.json) in a form diffs and dashboards can consume.
//
// With -check it instead compares the fresh stream against a committed
// baseline JSON and exits nonzero when a hot path regresses beyond ±30%
// in ns/op or allocs/op (`make bench-check`).
//
// Usage:
//
//	go test -run '^$' -bench 'RunAll|MDForces|TrainStepAlloc|ObsHotPath' -benchmem ./... | summit-bench
//	go test -run '^$' -bench '...' -benchmem ./... | summit-bench -check BENCH_hotpath.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// document is the emitted JSON root.
type document struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	check := flag.String("check", "", "baseline JSON to diff the fresh results against; exit 1 on regression")
	flag.Parse()
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "summit-bench:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "summit-bench: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *check != "" {
		runCheck(*check, doc)
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "summit-bench:", err)
		os.Exit(1)
	}
}

// parse consumes the benchmark stream. Header lines (goos/goarch/cpu/pkg)
// set context; `BenchmarkX  N  v unit  v unit ...` lines become records;
// everything else (PASS, ok, logs) is ignored.
func parse(sc *bufio.Scanner) (*document, error) {
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	doc := &document{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a log line that happens to start with "Benchmark"
		}
		r := result{Name: fields[0], Package: pkg, Iterations: iters}
		// The remainder is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			case "MB/s":
				r.MBPerS = v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	return doc, sc.Err()
}
