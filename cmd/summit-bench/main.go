// Command summit-bench converts `go test -bench -benchmem` output read
// from stdin into a stable JSON document, one record per benchmark line.
// It exists so `make bench-json` can commit hot-path numbers
// (BENCH_hotpath.json) in a form diffs and dashboards can consume.
//
// With -check it instead compares the fresh stream against a committed
// baseline JSON and exits nonzero when a hot path regresses beyond ±30%
// in ns/op or allocs/op (`make bench-check`). With -floors it evaluates
// only the within-run kernel floor rules — no baseline, so it runs on
// any machine (`make bench-floors`, CI's perf-smoke job).
//
// Usage:
//
//	go test -run '^$' -bench 'RunAll|MDForces|TrainStepAlloc|ObsHotPath' -benchmem ./... | summit-bench
//	go test -run '^$' -bench '...' -benchmem ./... | summit-bench -check BENCH_hotpath.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// document is the emitted JSON root. Gomaxprocs records the worker
// budget the run was measured at: parallel-kernel numbers from different
// core counts are not comparable, so -check refuses mismatched documents
// outright instead of reporting bogus regressions.
type document struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Gomaxprocs int      `json:"gomaxprocs,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	check := flag.String("check", "", "baseline JSON to diff the fresh results against; exit 1 on regression")
	floors := flag.Bool("floors", false, "evaluate only the within-run kernel floor rules (no baseline); exit 1 on breach")
	flag.Parse()
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "summit-bench:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "summit-bench: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *floors {
		runFloors(doc)
		return
	}
	if *check != "" {
		runCheck(*check, doc)
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "summit-bench:", err)
		os.Exit(1)
	}
}

// parse consumes the benchmark stream. Header lines (goos/goarch/cpu/pkg)
// set context; `BenchmarkX  N  v unit  v unit ...` lines become records;
// everything else (PASS, ok, logs) is ignored.
func parse(sc *bufio.Scanner) (*document, error) {
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	doc := &document{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a log line that happens to start with "Benchmark"
		}
		// `go test` suffixes every benchmark name with "-GOMAXPROCS" when
		// it differs from 1. Strip the suffix into the document header so
		// names compare across machines and the core count is recorded
		// exactly once. (No current sub-benchmark name ends in "-<int>",
		// so the heuristic cannot misfire on this suite.)
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
				name = name[:i]
				if n > doc.Gomaxprocs {
					doc.Gomaxprocs = n
				}
			}
		}
		r := result{Name: name, Package: pkg, Iterations: iters}
		// The remainder is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			case "MB/s":
				r.MBPerS = v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if doc.Gomaxprocs == 0 {
		doc.Gomaxprocs = 1 // go test omits the suffix at GOMAXPROCS=1
	}
	return doc, sc.Err()
}
