package main

import (
	"bufio"
	"strings"
	"testing"
)

func doc(benchmarks ...result) *document {
	return &document{Benchmarks: benchmarks}
}

func TestCompareWithinTolerance(t *testing.T) {
	old := doc(result{Name: "BenchmarkRunAll", NsPerOp: 1000, AllocsPerOp: 10})
	fresh := doc(result{Name: "BenchmarkRunAll", NsPerOp: 1250, AllocsPerOp: 10})
	_, failed := compareDoc(old, fresh)
	if len(failed) != 0 {
		t.Fatalf("+25%% ns/op flagged as regression: %v", failed)
	}
}

func TestCompareNsRegression(t *testing.T) {
	old := doc(result{Name: "BenchmarkRunAll", NsPerOp: 1000})
	fresh := doc(result{Name: "BenchmarkRunAll", NsPerOp: 1400})
	_, failed := compareDoc(old, fresh)
	if len(failed) != 1 {
		t.Fatalf("+40%% ns/op not flagged: %v", failed)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	old := doc(result{Name: "BenchmarkTrainStepAlloc", NsPerOp: 100, AllocsPerOp: 4})
	fresh := doc(result{Name: "BenchmarkTrainStepAlloc", NsPerOp: 100, AllocsPerOp: 9})
	_, failed := compareDoc(old, fresh)
	if len(failed) != 1 {
		t.Fatalf("alloc doubling not flagged: %v", failed)
	}
}

func TestCompareZeroAllocsStayZero(t *testing.T) {
	old := doc(result{Name: "BenchmarkMDForces", NsPerOp: 100, AllocsPerOp: 0})
	fresh := doc(result{Name: "BenchmarkMDForces", NsPerOp: 100, AllocsPerOp: 0})
	if _, failed := compareDoc(old, fresh); len(failed) != 0 {
		t.Fatalf("0 -> 0 allocs flagged: %v", failed)
	}
	// A formerly allocation-free loop that starts allocating regresses.
	fresh = doc(result{Name: "BenchmarkMDForces", NsPerOp: 100, AllocsPerOp: 2})
	if _, failed := compareDoc(old, fresh); len(failed) != 1 {
		t.Fatalf("0 -> 2 allocs not flagged: %v", failed)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	old := doc(result{Name: "BenchmarkRunAll", NsPerOp: 1000},
		result{Name: "BenchmarkGone", NsPerOp: 500})
	fresh := doc(result{Name: "BenchmarkRunAll", NsPerOp: 1000},
		result{Name: "BenchmarkNew", NsPerOp: 1})
	lines, failed := compareDoc(old, fresh)
	if len(failed) != 1 || failed[0] != "BenchmarkGone" {
		t.Fatalf("missing baseline benchmark not flagged: %v", failed)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "new benchmark") || !strings.Contains(joined, "MISSING") {
		t.Fatalf("report lines incomplete:\n%s", joined)
	}
}

func TestSpeedupRatio(t *testing.T) {
	// 2x speedup clears the 1.5x floor; the -8 GOMAXPROCS suffix must not
	// hide the pair.
	fresh := doc(result{Name: "BenchmarkRunAllSequential-8", NsPerOp: 2000},
		result{Name: "BenchmarkRunAllParallel-8", NsPerOp: 1000})
	if line, ok := checkSpeedupRatio(fresh); !ok {
		t.Fatalf("2x speedup failed the floor: %s", line)
	}
	// 1.2x is below the floor.
	fresh = doc(result{Name: "BenchmarkRunAllSequential", NsPerOp: 1200},
		result{Name: "BenchmarkRunAllParallel", NsPerOp: 1000})
	if line, ok := checkSpeedupRatio(fresh); ok {
		t.Fatalf("1.2x speedup passed the floor: %s", line)
	}
	// Neither present: not this sweep's concern.
	if line, ok := checkSpeedupRatio(doc(result{Name: "BenchmarkOther", NsPerOp: 1})); !ok || line != "" {
		t.Fatalf("absent pair reported: %q", line)
	}
	// Half the pair present: the rule cannot be evaluated — fail loudly.
	fresh = doc(result{Name: "BenchmarkRunAllParallel", NsPerOp: 1000})
	if _, ok := checkSpeedupRatio(fresh); ok {
		t.Fatal("incomplete pair passed")
	}
}

func TestParseBenchStream(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: summitscale/internal/core
cpu: Test CPU
BenchmarkRunAll-8   	      10	 110000000 ns/op	  500000 B/op	    9000 allocs/op
PASS
ok  	summitscale/internal/core	2.0s
`
	d, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks", len(d.Benchmarks))
	}
	r := d.Benchmarks[0]
	if r.Name != "BenchmarkRunAll" || r.NsPerOp != 110000000 || r.AllocsPerOp != 9000 {
		t.Fatalf("parsed %+v", r)
	}
	if d.Goos != "linux" || d.CPU != "Test CPU" {
		t.Fatalf("header lost: %+v", d)
	}
	if d.Gomaxprocs != 8 {
		t.Fatalf("GOMAXPROCS suffix not lifted into header: %+v", d)
	}
}

func TestParseGomaxprocsDefaultsToOne(t *testing.T) {
	in := "BenchmarkMDForces/serial   	 100	 4000000 ns/op\n"
	d, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if d.Gomaxprocs != 1 {
		t.Fatalf("suffix-free run recorded gomaxprocs %d, want 1", d.Gomaxprocs)
	}
	if d.Benchmarks[0].Name != "BenchmarkMDForces/serial" {
		t.Fatalf("non-numeric name mangled: %q", d.Benchmarks[0].Name)
	}
}

func TestKernelFloorsGatedOnProcs(t *testing.T) {
	// At 1 recorded core the speedup floors are reported but not enforced.
	fresh := doc(result{Name: "BenchmarkGemmRowStream256", NsPerOp: 1000},
		result{Name: "BenchmarkGemmParallel256", NsPerOp: 950})
	fresh.Gomaxprocs = 1
	if _, failed := checkKernelFloors(fresh); len(failed) != 0 {
		t.Fatalf("speedup floor enforced at 1 core: %v", failed)
	}
	// At 8 cores a 1.05x packed "speedup" is a failure against the 2x floor.
	fresh.Gomaxprocs = 8
	if _, failed := checkKernelFloors(fresh); len(failed) != 1 {
		t.Fatalf("below-floor Gemm ratio not flagged at 8 cores: %v", failed)
	}
	// 2.5x clears it.
	fresh = doc(result{Name: "BenchmarkGemmRowStream256", NsPerOp: 2500},
		result{Name: "BenchmarkGemmParallel256", NsPerOp: 1000})
	fresh.Gomaxprocs = 8
	if _, failed := checkKernelFloors(fresh); len(failed) != 0 {
		t.Fatalf("2.5x Gemm ratio failed the 2x floor: %v", failed)
	}
}

func TestKernelFloorMDAndAllocs(t *testing.T) {
	fresh := doc(result{Name: "BenchmarkMDForces/serial", NsPerOp: 1000},
		result{Name: "BenchmarkMDForces/parallel", NsPerOp: 900},
		result{Name: "BenchmarkTrainStepAlloc/scratch", NsPerOp: 1, AllocsPerOp: 46})
	fresh.Gomaxprocs = 8
	_, failed := checkKernelFloors(fresh)
	// 1.11x misses the 1.2x MD floor AND 46 allocs breaches the 45 ceiling.
	if len(failed) != 2 {
		t.Fatalf("want MD-floor + alloc-ceiling failures, got %v", failed)
	}
	// The alloc ceiling applies even at 1 core.
	fresh.Gomaxprocs = 1
	if _, failed := checkKernelFloors(fresh); len(failed) != 1 {
		t.Fatalf("alloc ceiling not enforced at 1 core: %v", failed)
	}
}

func TestKernelFloorIncompletePairFails(t *testing.T) {
	fresh := doc(result{Name: "BenchmarkGemmParallel256", NsPerOp: 1000})
	fresh.Gomaxprocs = 8
	if _, failed := checkKernelFloors(fresh); len(failed) != 1 {
		t.Fatalf("half a floor pair passed: %v", failed)
	}
}

func TestServeBatchingFloor(t *testing.T) {
	// 3x unbatched/batched clears the 2x serving floor.
	fresh := doc(result{Name: "BenchmarkServeHotPath/unbatched", NsPerOp: 3000},
		result{Name: "BenchmarkServeHotPath/batched", NsPerOp: 1000})
	fresh.Gomaxprocs = 8
	if _, failed := checkKernelFloors(fresh); len(failed) != 0 {
		t.Fatalf("3x serve batching speedup failed the 2x floor: %v", failed)
	}
	// 1.5x misses it.
	fresh = doc(result{Name: "BenchmarkServeHotPath/unbatched", NsPerOp: 1500},
		result{Name: "BenchmarkServeHotPath/batched", NsPerOp: 1000})
	fresh.Gomaxprocs = 8
	lines, failed := checkKernelFloors(fresh)
	if len(failed) != 1 || failed[0] != "ServeHotPath unbatched/batched" {
		t.Fatalf("below-floor serve ratio not flagged: %v", failed)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "ServeHotPath") {
		t.Fatalf("serve floor missing from report lines:\n%s", strings.Join(lines, "\n"))
	}
	// Like the kernel floors, it is reported but not enforced on 1 core.
	fresh.Gomaxprocs = 1
	if _, failed := checkKernelFloors(fresh); len(failed) != 0 {
		t.Fatalf("serve floor enforced at 1 core: %v", failed)
	}
}

// TestKernelFloorsReportAllViolations pins the gate's contract that every
// violated floor is listed before the nonzero exit — a run that breaches
// the Gemm, MD, serve, and alloc rules at once must surface all four, not
// stop at the first.
func TestKernelFloorsReportAllViolations(t *testing.T) {
	fresh := doc(
		result{Name: "BenchmarkGemmRowStream256", NsPerOp: 1000},
		result{Name: "BenchmarkGemmParallel256", NsPerOp: 990},
		result{Name: "BenchmarkMDForces/serial", NsPerOp: 1000},
		result{Name: "BenchmarkMDForces/parallel", NsPerOp: 990},
		result{Name: "BenchmarkServeHotPath/unbatched", NsPerOp: 1000},
		result{Name: "BenchmarkServeHotPath/batched", NsPerOp: 990},
		result{Name: "BenchmarkTrainStepAlloc/scratch", NsPerOp: 1, AllocsPerOp: 99},
	)
	fresh.Gomaxprocs = 8
	lines, failed := checkKernelFloors(fresh)
	if len(failed) != 4 {
		t.Fatalf("want all 4 violations reported, got %d: %v", len(failed), failed)
	}
	joined := strings.Join(lines, "\n")
	for _, frag := range []string{"GemmRowStream256", "MDForces", "ServeHotPath", "TrainStepAlloc"} {
		if !strings.Contains(joined, frag) {
			t.Fatalf("violation report missing %s:\n%s", frag, joined)
		}
	}
	if got := strings.Count(joined, "REGRESSION"); got != 4 {
		t.Fatalf("want 4 REGRESSION markers, got %d:\n%s", got, joined)
	}
}
