package main

import (
	"bufio"
	"strings"
	"testing"
)

func doc(benchmarks ...result) *document {
	return &document{Benchmarks: benchmarks}
}

func TestCompareWithinTolerance(t *testing.T) {
	old := doc(result{Name: "BenchmarkRunAll", NsPerOp: 1000, AllocsPerOp: 10})
	fresh := doc(result{Name: "BenchmarkRunAll", NsPerOp: 1250, AllocsPerOp: 10})
	_, failed := compareDoc(old, fresh)
	if len(failed) != 0 {
		t.Fatalf("+25%% ns/op flagged as regression: %v", failed)
	}
}

func TestCompareNsRegression(t *testing.T) {
	old := doc(result{Name: "BenchmarkRunAll", NsPerOp: 1000})
	fresh := doc(result{Name: "BenchmarkRunAll", NsPerOp: 1400})
	_, failed := compareDoc(old, fresh)
	if len(failed) != 1 {
		t.Fatalf("+40%% ns/op not flagged: %v", failed)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	old := doc(result{Name: "BenchmarkTrainStepAlloc", NsPerOp: 100, AllocsPerOp: 4})
	fresh := doc(result{Name: "BenchmarkTrainStepAlloc", NsPerOp: 100, AllocsPerOp: 9})
	_, failed := compareDoc(old, fresh)
	if len(failed) != 1 {
		t.Fatalf("alloc doubling not flagged: %v", failed)
	}
}

func TestCompareZeroAllocsStayZero(t *testing.T) {
	old := doc(result{Name: "BenchmarkMDForces", NsPerOp: 100, AllocsPerOp: 0})
	fresh := doc(result{Name: "BenchmarkMDForces", NsPerOp: 100, AllocsPerOp: 0})
	if _, failed := compareDoc(old, fresh); len(failed) != 0 {
		t.Fatalf("0 -> 0 allocs flagged: %v", failed)
	}
	// A formerly allocation-free loop that starts allocating regresses.
	fresh = doc(result{Name: "BenchmarkMDForces", NsPerOp: 100, AllocsPerOp: 2})
	if _, failed := compareDoc(old, fresh); len(failed) != 1 {
		t.Fatalf("0 -> 2 allocs not flagged: %v", failed)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	old := doc(result{Name: "BenchmarkRunAll", NsPerOp: 1000},
		result{Name: "BenchmarkGone", NsPerOp: 500})
	fresh := doc(result{Name: "BenchmarkRunAll", NsPerOp: 1000},
		result{Name: "BenchmarkNew", NsPerOp: 1})
	lines, failed := compareDoc(old, fresh)
	if len(failed) != 1 || failed[0] != "BenchmarkGone" {
		t.Fatalf("missing baseline benchmark not flagged: %v", failed)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "new benchmark") || !strings.Contains(joined, "MISSING") {
		t.Fatalf("report lines incomplete:\n%s", joined)
	}
}

func TestSpeedupRatio(t *testing.T) {
	// 2x speedup clears the 1.5x floor; the -8 GOMAXPROCS suffix must not
	// hide the pair.
	fresh := doc(result{Name: "BenchmarkRunAllSequential-8", NsPerOp: 2000},
		result{Name: "BenchmarkRunAllParallel-8", NsPerOp: 1000})
	if line, ok := checkSpeedupRatio(fresh); !ok {
		t.Fatalf("2x speedup failed the floor: %s", line)
	}
	// 1.2x is below the floor.
	fresh = doc(result{Name: "BenchmarkRunAllSequential", NsPerOp: 1200},
		result{Name: "BenchmarkRunAllParallel", NsPerOp: 1000})
	if line, ok := checkSpeedupRatio(fresh); ok {
		t.Fatalf("1.2x speedup passed the floor: %s", line)
	}
	// Neither present: not this sweep's concern.
	if line, ok := checkSpeedupRatio(doc(result{Name: "BenchmarkOther", NsPerOp: 1})); !ok || line != "" {
		t.Fatalf("absent pair reported: %q", line)
	}
	// Half the pair present: the rule cannot be evaluated — fail loudly.
	fresh = doc(result{Name: "BenchmarkRunAllParallel", NsPerOp: 1000})
	if _, ok := checkSpeedupRatio(fresh); ok {
		t.Fatal("incomplete pair passed")
	}
}

func TestParseBenchStream(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: summitscale/internal/core
cpu: Test CPU
BenchmarkRunAll-8   	      10	 110000000 ns/op	  500000 B/op	    9000 allocs/op
PASS
ok  	summitscale/internal/core	2.0s
`
	d, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks", len(d.Benchmarks))
	}
	r := d.Benchmarks[0]
	if r.Name != "BenchmarkRunAll-8" || r.NsPerOp != 110000000 || r.AllocsPerOp != 9000 {
		t.Fatalf("parsed %+v", r)
	}
	if d.Goos != "linux" || d.CPU != "Test CPU" {
		t.Fatalf("header lost: %+v", d)
	}
}
