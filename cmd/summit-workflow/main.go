// Command summit-workflow runs the §V AI-coordinated workflow case
// studies: the materials active-learning loop (Liu et al.), the
// multi-facility biology campaign (Trifan et al.), and the drug-lead
// discovery loop (Saadi et al.).
//
// Usage:
//
//	summit-workflow                   # all three
//	summit-workflow -case materials   # W1
//	summit-workflow -case biology     # W2
//	summit-workflow -case drug        # W3
//	summit-workflow -case biology -trace w2.json -metrics
package main

import (
	"flag"
	"fmt"
	"os"

	"summitscale/internal/core"
	"summitscale/internal/obs"
)

func main() {
	which := flag.String("case", "", "materials | biology | drug; empty = all")
	traceOut := flag.String("trace", "", "write the campaign timeline as Chrome trace-event JSON to this file (one track per facility)")
	metrics := flag.Bool("metrics", false, "print the obs metrics summary after the report")
	flag.Parse()

	ids := map[string]string{"materials": "W1", "biology": "W2", "drug": "W3"}
	var run []string
	if *which == "" {
		run = []string{"W1", "W2", "W3"}
	} else {
		id, ok := ids[*which]
		if !ok {
			fmt.Fprintf(os.Stderr, "summit-workflow: unknown case %q\n", *which)
			os.Exit(2)
		}
		run = []string{id}
	}
	var ob *obs.Observer
	if *traceOut != "" || *metrics {
		ob = obs.New()
	}
	for _, id := range run {
		e, _ := core.ByID(id)
		fmt.Print(core.RenderResult(e, e.RunWith(ob)))
		fmt.Println()
	}
	if *traceOut != "" {
		if err := ob.WriteChromeTrace(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "summit-workflow: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("summit-workflow: wrote trace to %s\n", *traceOut)
	}
	if *metrics {
		fmt.Print(ob.Trace.Summary())
		fmt.Print(ob.Metrics.Render())
	}
}
