// Command summit-workflow runs the §V AI-coordinated workflow case
// studies: the materials active-learning loop (Liu et al.), the
// multi-facility biology campaign (Trifan et al.), and the drug-lead
// discovery loop (Saadi et al.).
//
// Usage:
//
//	summit-workflow                   # all three
//	summit-workflow -case materials   # W1
//	summit-workflow -case biology     # W2
//	summit-workflow -case drug        # W3
package main

import (
	"flag"
	"fmt"
	"os"

	"summitscale/internal/core"
)

func main() {
	which := flag.String("case", "", "materials | biology | drug; empty = all")
	flag.Parse()

	ids := map[string]string{"materials": "W1", "biology": "W2", "drug": "W3"}
	var run []string
	if *which == "" {
		run = []string{"W1", "W2", "W3"}
	} else {
		id, ok := ids[*which]
		if !ok {
			fmt.Fprintf(os.Stderr, "summit-workflow: unknown case %q\n", *which)
			os.Exit(2)
		}
		run = []string{id}
	}
	for _, id := range run {
		e, _ := core.ByID(id)
		fmt.Print(core.RenderResult(e, e.Run()))
		fmt.Println()
	}
}
