// Command summit-repro runs the complete reproduction: every table,
// figure, scaling study, system-requirement analysis, workflow case
// study, and resilience study, with paper-vs-measured comparisons. Exit
// status 1 if any metric falls outside its tolerance.
//
// Usage:
//
//	summit-repro                       # full registry on the Summit baseline
//	summit-repro -md                   # markdown paper-vs-measured table
//	summit-repro -platform frontier    # replay the machine-aware studies
//	summit-repro -platforms            # list registered machines
//	summit-repro -experiment RS2       # run one experiment by ID
//	summit-repro -experiment RS2 -trace out.json -metrics
//	                                   # + Chrome trace & metrics summary
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"summitscale/internal/core"
	"summitscale/internal/obs"
	"summitscale/internal/platform"
)

func main() {
	md := flag.Bool("md", false, "emit a markdown paper-vs-measured table instead of the full report")
	jobs := flag.Int("j", runtime.NumCPU(), "experiment workers; 1 runs the plain sequential path (output is byte-identical either way)")
	plat := flag.String("platform", "summit", "machine to reproduce on ("+strings.Join(platform.Names(), ", ")+"); non-baseline machines replay the sysreq, scaling, resilience, and chaos studies")
	list := flag.Bool("platforms", false, "list registered platforms and exit")
	expID := flag.String("experiment", "", "run a single experiment by ID (e.g. RS2) instead of the full registry")
	traceOut := flag.String("trace", "", "write the run's simulated-clock spans as Chrome trace-event JSON to this file (open in chrome://tracing or Perfetto)")
	metrics := flag.Bool("metrics", false, "print the obs metrics summary and trace summary after the report")
	flag.Parse()

	if *list {
		for _, n := range platform.Names() {
			p := platform.MustLookup(n)
			fmt.Printf("%-16s %s (%d nodes)\n", n, p.Name, p.Nodes)
		}
		return
	}
	if *md {
		fmt.Print(core.RenderMarkdown())
		return
	}

	p, err := platform.Lookup(*plat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "summit-repro: %v\n", err)
		os.Exit(2)
	}

	// One observer spans the whole run: the obs layer is concurrency-safe
	// and renders byte-deterministically regardless of -j or scheduling.
	var ob *obs.Observer
	if *traceOut != "" || *metrics {
		ob = obs.New()
	}

	var report string
	var pass bool
	switch {
	case *expID != "":
		e, ok := core.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "summit-repro: unknown experiment %q\n", *expID)
			os.Exit(2)
		}
		r := e.RunWith(ob)
		report, pass = core.RenderResult(e, r), r.Pass()
	case p.IsPaperBaseline():
		// The full registry (tables, figures, scaling, sysreq, workflows,
		// resilience) carries the paper's reference values on the baseline.
		report, pass = core.RunAllObserved(*jobs, ob)
	default:
		// Off-baseline: replay the machine-aware studies on p.
		exps := append(core.SysreqExperimentsOn(p), core.ScalingExperimentsOn(p)...)
		exps = append(exps, core.ResilienceExperimentsOn(p)...)
		exps = append(exps, core.ChaosExperimentsOn(p)...)
		exps = append(exps, core.MLPerfExperimentsOn(p)...)
		var b strings.Builder
		pass = true
		for _, e := range exps {
			r := e.RunWith(ob)
			b.WriteString(core.RenderResult(e, r))
			b.WriteString("\n")
			if !r.Pass() {
				pass = false
			}
		}
		report = b.String()
	}
	fmt.Print(report)
	if *traceOut != "" {
		if err := ob.WriteChromeTrace(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "summit-repro: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("summit-repro: wrote trace to %s\n", *traceOut)
	}
	if *metrics {
		fmt.Print(ob.Trace.Summary())
		fmt.Print(ob.Metrics.Render())
	}
	if !pass {
		fmt.Fprintln(os.Stderr, "summit-repro: one or more metrics deviate from the paper")
		os.Exit(1)
	}
	fmt.Println("summit-repro: all experiments within tolerance")
}
