// Command summit-repro runs the complete reproduction: every table,
// figure, scaling study, system-requirement analysis, and workflow case
// study, with paper-vs-measured comparisons. Exit status 1 if any metric
// falls outside its tolerance.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"summitscale/internal/core"
)

func main() {
	md := flag.Bool("md", false, "emit a markdown paper-vs-measured table instead of the full report")
	jobs := flag.Int("j", runtime.NumCPU(), "experiment workers; 1 runs the plain sequential path (output is byte-identical either way)")
	flag.Parse()
	if *md {
		fmt.Print(core.RenderMarkdown())
		return
	}
	report, pass := core.RunAllParallel(*jobs)
	fmt.Print(report)
	if !pass {
		fmt.Fprintln(os.Stderr, "summit-repro: one or more metrics deviate from the paper")
		os.Exit(1)
	}
	fmt.Println("summit-repro: all experiments within tolerance")
}
