// Command summit-scale regenerates the §IV-B extreme-scale training
// studies: per-study weak-scaling curves and the paper-vs-measured
// comparison of efficiency and sustained rate.
//
// Usage:
//
//	summit-scale                      # all five studies on Summit
//	summit-scale -study S4            # one study (S1..S5, case-insensitive)
//	summit-scale -platform frontier   # replay the studies on another machine
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"summitscale/internal/core"
	"summitscale/internal/platform"
)

func main() {
	study := flag.String("study", "", "study id (S1..S5); empty = all")
	svgDir := flag.String("svg", "", "also write efficiency-curve SVGs into this directory")
	plat := flag.String("platform", "summit", "machine to run the studies on ("+strings.Join(platform.Names(), ", ")+")")
	flag.Parse()

	p, err := platform.Lookup(*plat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "summit-scale: %v\n", err)
		os.Exit(2)
	}
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "summit-scale: %v\n", err)
			os.Exit(1)
		}
	}
	want := strings.ToUpper(*study)
	found := false
	studies := core.ScalingStudiesOn(p)
	exps := core.ScalingExperimentsOn(p)
	for i, s := range studies {
		if want != "" && s.ID != want {
			continue
		}
		found = true
		e := exps[i]
		fmt.Print(core.RenderResult(e, e.Run()))
		fmt.Println()
		if *svgDir != "" {
			path := filepath.Join(*svgDir, strings.ToLower(s.ID)+".svg")
			if err := os.WriteFile(path, []byte(core.RenderScalingSVG(s)), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "summit-scale: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "summit-scale: unknown study %q\n", *study)
		os.Exit(2)
	}
}
