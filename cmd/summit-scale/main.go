// Command summit-scale regenerates the §IV-B extreme-scale training
// studies: per-study weak-scaling curves and the paper-vs-measured
// comparison of efficiency and sustained rate.
//
// Usage:
//
//	summit-scale                 # all five studies
//	summit-scale -study S4       # one study (S1..S5, case-insensitive)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"summitscale/internal/core"
)

func main() {
	study := flag.String("study", "", "study id (S1..S5); empty = all")
	svgDir := flag.String("svg", "", "also write efficiency-curve SVGs into this directory")
	flag.Parse()

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "summit-scale: %v\n", err)
			os.Exit(1)
		}
	}
	want := strings.ToUpper(*study)
	found := false
	for _, s := range core.ScalingStudies() {
		if want != "" && s.ID != want {
			continue
		}
		found = true
		e, _ := core.ByID(s.ID)
		fmt.Print(core.RenderResult(e, e.Run()))
		fmt.Println()
		if *svgDir != "" {
			path := filepath.Join(*svgDir, strings.ToLower(s.ID)+".svg")
			if err := os.WriteFile(path, []byte(core.RenderScalingSVG(s)), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "summit-scale: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "summit-scale: unknown study %q\n", *study)
		os.Exit(2)
	}
}
