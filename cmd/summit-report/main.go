// Command summit-report regenerates the paper's portfolio-study artifacts:
// Tables I-III and Figures 1-6 (§II-IV), from the reconstructed project
// dataset.
//
// Usage:
//
//	summit-report            # everything
//	summit-report -fig 4     # one figure
//	summit-report -table 3   # one table
//	summit-report -gb        # the §IV-A Gordon Bell review
//	summit-report -seed 7    # alternative dataset seed
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"summitscale/internal/portfolio"
)

func main() {
	fig := flag.Int("fig", 0, "render a single figure (1-6)")
	table := flag.Int("table", 0, "render a single table (1-3)")
	gb := flag.Bool("gb", false, "render the Gordon Bell AI/ML finalist review")
	hours := flag.Bool("hours", false, "render the allocation-hours view")
	csvOut := flag.String("csv", "", "export CSV to stdout: projects | fig2 | fig6")
	svgDir := flag.String("svg", "", "write all six figures as SVG files into this directory")
	seed := flag.Uint64("seed", 1, "portfolio dataset seed")
	flag.Parse()

	d := portfolio.Generate(*seed)
	figs := map[int]func() string{
		1: d.RenderFigure1, 2: d.RenderFigure2, 3: d.RenderFigure3,
		4: d.RenderFigure4, 5: d.RenderFigure5, 6: d.RenderFigure6,
	}
	tables := map[int]func() string{
		1: portfolio.RenderTableI, 2: portfolio.RenderTableII, 3: portfolio.RenderTableIII,
	}

	switch {
	case *svgDir != "":
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "summit-report: %v\n", err)
			os.Exit(1)
		}
		for stem, svg := range d.AllFigureSVGs() {
			path := filepath.Join(*svgDir, stem+".svg")
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "summit-report: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
	case *csvOut != "":
		var err error
		switch *csvOut {
		case "projects":
			err = d.WriteProjectsCSV(os.Stdout)
		case "fig2":
			err = d.WriteFigure2CSV(os.Stdout)
		case "fig6":
			err = d.WriteFigure6CSV(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "summit-report: unknown csv export %q\n", *csvOut)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "summit-report: %v\n", err)
			os.Exit(1)
		}
	case *fig != 0:
		f, ok := figs[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "summit-report: no figure %d\n", *fig)
			os.Exit(2)
		}
		fmt.Print(f())
	case *table != 0:
		t, ok := tables[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "summit-report: no table %d\n", *table)
			os.Exit(2)
		}
		fmt.Print(t())
	case *gb:
		fmt.Print(portfolio.RenderGordonBellReview())
	case *hours:
		fmt.Print(d.RenderHours())
	default:
		for i := 1; i <= 3; i++ {
			fmt.Println(tables[i]())
		}
		for i := 1; i <= 6; i++ {
			fmt.Println(figs[i]())
		}
		fmt.Print(portfolio.RenderGordonBellReview())
	}
}
