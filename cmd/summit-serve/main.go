// Command summit-serve runs the surrogate-inference serving simulator:
// a seeded synthetic user population streams requests at a fleet of
// trained surrogates (ridge, random forest, MLP) behind dynamic
// micro-batching and bounded admission queues, with replica pools sized
// from the platform registry and service times priced by the device
// roofline. The report, responses, and trace are a pure function of
// (platform, seed, flags): any -j and any scenario replay byte-identically,
// which is exactly what the CI serve-smoke gate checks.
//
// Usage:
//
//	summit-serve                              # batched vs unbatched on summit
//	summit-serve -platform frontier -seed 7
//	summit-serve -j 4 -trace serve.json       # Chrome trace of the batched run
//	summit-serve -scenario serving-storm      # chaos replay, shed on vs off
//	summit-serve -scenario link-flap -metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"summitscale/internal/chaos"
	"summitscale/internal/obs"
	"summitscale/internal/platform"
	"summitscale/internal/serve"
)

func main() {
	plat := flag.String("platform", "summit", "serving machine ("+strings.Join(platform.Names(), ", ")+")")
	seed := flag.Uint64("seed", 42, "RNG seed for model weights, traffic, and chaos schedules")
	workers := flag.Int("j", 0, "inference-kernel worker cap (0 = all cores); cannot change any output byte")
	scenario := flag.String("scenario", "", "replay a chaos scenario against the fleet: \"serving-storm\", a builtin name, or a scenario file")
	unbatched := flag.Bool("unbatched", false, "also run the same stream with micro-batching disabled at identical capacity")
	traceOut := flag.String("trace", "", "write the batched run's simulated-clock spans as Chrome trace-event JSON to this file")
	metrics := flag.Bool("metrics", false, "print the obs metrics summary after the report")
	flag.Parse()

	p, err := platform.Lookup(*plat)
	if err != nil {
		fatal(err)
	}
	var ob *obs.Observer
	if *traceOut != "" || *metrics {
		ob = obs.New()
	}

	models := serve.DefaultModels(*seed)
	spec := serve.DefaultTraffic()
	reqs, err := spec.Generate(*seed, models)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload: %s\n", serve.Census(reqs))

	if *scenario != "" {
		sc, err := loadScenario(*scenario)
		if err != nil {
			fatal(err)
		}
		rep, err := chaos.RunServe(p, sc, *seed, spec, models, ob)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.Render())
	} else {
		cfg := serve.Config{
			Platform: p, Models: models, Horizon: spec.Horizon,
			Workers: *workers, Obs: ob,
		}
		rep, err := serve.Run(cfg, reqs)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.Render())
		if *unbatched {
			ucfg := serve.Config{
				Platform: p, Models: models, Horizon: spec.Horizon, Workers: *workers,
				Batch:     serve.BatchConfig{MaxBatch: 1, MaxDelay: 0},
				Admission: serve.DefaultAdmission(rep.Replicas, serve.DefaultBatch().MaxBatch),
			}
			urep, err := serve.Run(ucfg, reqs)
			if err != nil {
				fatal(err)
			}
			fmt.Println("--- unbatched, same capacity ---")
			fmt.Print(urep.Render())
		}
	}

	if *traceOut != "" {
		if err := ob.WriteChromeTrace(*traceOut); err != nil {
			fatal(err)
		}
		// stderr, so stdout stays byte-comparable across trace paths
		fmt.Fprintf(os.Stderr, "summit-serve: wrote trace to %s\n", *traceOut)
	}
	if *metrics {
		fmt.Print(ob.Trace.Summary())
		fmt.Print(ob.Metrics.Render())
	}
}

// loadScenario resolves -scenario: the serving reference scenario, a
// builtin name, or a scenario file.
func loadScenario(s string) (*chaos.Scenario, error) {
	if s == "serving-storm" {
		return chaos.ServingStorm(), nil
	}
	if strings.ContainsAny(s, "/\\.") {
		text, err := os.ReadFile(s)
		if err != nil {
			return nil, err
		}
		return chaos.Parse(string(text))
	}
	return chaos.Builtin(s)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "summit-serve: %v\n", err)
	os.Exit(2)
}
