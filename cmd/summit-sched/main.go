// Command summit-sched simulates a week of Summit batch scheduling under
// the §II-B allocation split (INCITE 60%, ALCC 20%, DD 20%): synthesizes
// a calibrated workload, schedules it with capability-priority backfill,
// and reports utilization, queue waits, and realized program shares.
//
// Usage:
//
//	summit-sched -hours 500000 -horizon 168 -seed 2
package main

import (
	"flag"
	"fmt"
	"sort"

	"summitscale/internal/sched"
	"summitscale/internal/stats"
)

func main() {
	hours := flag.Float64("hours", 300_000, "total node-hours of work to synthesize")
	horizon := flag.Float64("horizon", 168, "submission horizon (hours)")
	seed := flag.Uint64("seed", 1, "workload seed")
	nodes := flag.Int("nodes", 4608, "machine size")
	flag.Parse()

	rng := stats.NewRNG(*seed)
	jobs := sched.SynthesizeWorkload(rng, sched.OLCFShares(), *hours, *horizon*3600)
	s := sched.NewScheduler(*nodes)
	placed := s.Schedule(jobs)
	st := s.Summarize(placed)

	fmt.Printf("workload: %d jobs, %.0f node-hours over a %.0f h submission window\n",
		len(jobs), *hours, *horizon)
	fmt.Printf("machine:  %d nodes, capability-priority backfill\n\n", *nodes)
	fmt.Printf("makespan:       %.1f h\n", st.Makespan/3600)
	fmt.Printf("utilization:    %.1f%%\n", 100*st.Utilization)
	fmt.Printf("queue wait:     mean %.1f h, max %.1f h\n", st.MeanWait/3600, st.MaxWait/3600)

	fmt.Println("\nrealized node-hours by program:")
	var progs []string
	var total float64
	for p, h := range st.HoursByGroup {
		progs = append(progs, p)
		total += h
	}
	sort.Strings(progs)
	for _, p := range progs {
		fmt.Printf("  %-7s %12.0f  (%4.1f%%)\n", p, st.HoursByGroup[p],
			100*st.HoursByGroup[p]/total)
	}

	// Largest jobs — the capability workload the paper's AI studies join.
	sort.Slice(placed, func(i, j int) bool { return placed[i].Nodes > placed[j].Nodes })
	fmt.Println("\nlargest jobs:")
	for i := 0; i < 5 && i < len(placed); i++ {
		j := placed[i]
		fmt.Printf("  %-7s %5d nodes  %5.1f h walltime  waited %5.1f h\n",
			j.Program, j.Nodes, j.Walltime/3600, j.Wait()/3600)
	}
}
