module summitscale

go 1.22
