# SummitScale build targets. Everything is stdlib-only Go; no external
# dependencies are fetched.

GO ?= go

.PHONY: all tier1 build vet fmt test race bench bench-json bench-check bench-floors trace chaos fuzz-smoke repro examples figures clean help

all: build vet test

help:
	@echo "Targets:"
	@echo "  all        build + vet + test"
	@echo "  tier1      build + vet + gofmt check + test + race (the CI gate)"
	@echo "  bench      every benchmark with -benchmem"
	@echo "  bench-json hot-path benchmarks (RunAll, DAGSchedule, MDForces,"
	@echo "             TrainStepAlloc, Gemm, ObsHotPath, ChaosHotPath,"
	@echo "             ServeHotPath, ServeRun, CampaignHotPath,"
	@echo "             CheckpointDrain) -> BENCH_hotpath.json"
	@echo "  trace      RS2 campaign trace -> out.json (Chrome trace-event)"
	@echo "  chaos      every builtin adversarial scenario + invariant suite"
	@echo "  fuzz-smoke short fuzz pass over the scenario parser, the"
	@echo "             fault-trace generator, the serving admission queue,"
	@echo "             and the checkpoint loader"
	@echo "  bench-check rerun hot-path benchmarks and fail on >30% regression"
	@echo "             vs the committed BENCH_hotpath.json"
	@echo "  bench-floors kernel floor rules only (Gemm 2x, MDForces 1.2x,"
	@echo "             ServeHotPath batching 2x, CampaignHotPath 1.2x,"
	@echo "             CheckpointDrain async 1.5x at >=4 cores;"
	@echo "             TrainStep allocs <=45 always), no baseline"
	@echo "  repro      full reproduction report (cmd/summit-repro)"
	@echo "  examples   run every example once"
	@echo "  figures    regenerate the paper figures as SVG"
	@echo "  clean      remove generated figures"

# Tier-1 gate: what CI (and the growth driver) holds the repo to.
tier1: build vet fmt test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt cleanliness: fail listing the offending files, fix nothing.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path numbers as JSON: the flat-vs-DAG experiment engine (plus the
# DAGSchedule cold/warm ablation), the sharded MD force kernel, the
# training-step allocation pair, the GEMM kernel ablation, the obs
# instrumentation overhead, one full chaos scenario pass (compile the
# perfect-storm spec + drive every subsystem probe), the serving layer
# (the batched-vs-unbatched inference hot path plus a full simulated
# serving run), and the benchmark-campaign evaluation pair. The GEMM
# panel depth is pinned via SUMMITSCALE_GEMM_KC so the wall-clock
# autotuner can't pick a different blocking per run and shift every
# GEMM-backed number.
BENCH_HOT = RunAll|DAGSchedule|MDForces|TrainStepAlloc|Gemm|ObsHotPath|ChaosHotPath|ServeHotPath|ServeRun|CampaignHotPath|CheckpointDrain
BENCH_ENV = SUMMITSCALE_GEMM_KC=256
bench-json:
	$(BENCH_ENV) $(GO) test -run '^$$' -bench '$(BENCH_HOT)' -benchmem ./... \
		| $(GO) run ./cmd/summit-bench > BENCH_hotpath.json
	@echo "wrote BENCH_hotpath.json"

# Regression gate: rerun the hot-path benchmarks and diff against the
# committed baseline; exits 1 beyond +-30% ns/op or allocs/op, or when the
# DAG engine (RunAllParallel) loses its >=1.5x margin over the sequential
# flat path. Timings on shared runners are noisy, so CI runs this job
# non-blocking.
bench-check:
	$(BENCH_ENV) $(GO) test -run '^$$' -bench '$(BENCH_HOT)' -benchmem ./... \
		| $(GO) run ./cmd/summit-bench -check BENCH_hotpath.json

# Kernel floor rules without a baseline: ratios within one fresh run
# (packed parallel GEMM >= 2x the serial row-stream, MD forces parallel
# >= 1.2x serial, serving micro-batch >= 2x single-row dispatch,
# campaign evaluation parallel >= 1.2x serial, async checkpoint drain
# >= 1.5x the synchronous stall — all only enforced when the run
# recorded >= 4 cores) plus the deterministic TrainStepAlloc/scratch
# <= 45 allocs/op ceiling. This is what CI's perf-smoke job runs: it
# works on any runner, even one whose core count differs from the
# committed baseline's.
bench-floors:
	$(BENCH_ENV) $(GO) test -run '^$$' -bench 'Gemm|MDForces|TrainStepAlloc|ServeHotPath|CampaignHotPath|CheckpointDrain' -benchmem \
		./internal/tensor/ ./internal/md/ ./internal/ddl/ ./internal/serve/ ./internal/bench/ ./internal/checkpoint/ \
		| $(GO) run ./cmd/summit-bench -floors

# The §V resilience campaign's simulated-clock trace, viewable in
# chrome://tracing or Perfetto. Byte-deterministic across runs and -j.
trace:
	$(GO) run ./cmd/summit-repro -experiment RS2 -trace out.json -metrics >/dev/null
	@echo "wrote out.json"

# Every builtin adversarial scenario through all simulators, with the
# invariant suite (replay determinism, byte conservation, monotone
# degradation, policies load-bearing) after each run.
chaos:
	$(GO) run ./cmd/summit-chaos -scenario all -check

# Short native-fuzz pass over the inputs untrusted text reaches — the
# chaos scenario DSL parser, the fault-trace generator, and the
# checkpoint loader (arbitrary bytes must never load silently wrong) —
# plus the serving admission queue's bookkeeping invariants under
# arbitrary offer/release interleavings.
fuzz-smoke:
	$(GO) test ./internal/chaos/ -run '^$$' -fuzz FuzzParseScenario -fuzztime 10s
	$(GO) test ./internal/faults/ -run '^$$' -fuzz FuzzTraceGenerate -fuzztime 10s
	$(GO) test ./internal/serve/ -run '^$$' -fuzz FuzzAdmissionQueue -fuzztime 10s
	$(GO) test ./internal/checkpoint/ -run '^$$' -fuzz FuzzCheckpointLoad -fuzztime 10s

# Full reproduction report: every table/figure/study, paper vs measured.
repro:
	$(GO) run ./cmd/summit-repro

# One-shot run of every example.
examples:
	for d in examples/*/; do \
		[ -f $$d/main.go ] || continue; \
		echo "== $$d =="; \
		$(GO) run ./$$d || exit 1; \
	done

# Regenerate the paper's figures as SVG under ./figures/.
figures:
	$(GO) run ./cmd/summit-report -svg figures
	$(GO) run ./cmd/summit-scale -svg figures >/dev/null

clean:
	rm -rf figures
