# SummitScale build targets. Everything is stdlib-only Go; no external
# dependencies are fetched.

GO ?= go

.PHONY: all tier1 build vet test race bench repro examples figures clean

all: build vet test

# Tier-1 gate: what CI (and the growth driver) holds the repo to.
tier1: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Full reproduction report: every table/figure/study, paper vs measured.
repro:
	$(GO) run ./cmd/summit-repro

# One-shot run of every example.
examples:
	for d in examples/*/; do \
		[ -f $$d/main.go ] || continue; \
		echo "== $$d =="; \
		$(GO) run ./$$d || exit 1; \
	done

# Regenerate the paper's figures as SVG under ./figures/.
figures:
	$(GO) run ./cmd/summit-report -svg figures
	$(GO) run ./cmd/summit-scale -svg figures >/dev/null

clean:
	rm -rf figures
