package optim

import (
	"math"
	"testing"

	"summitscale/internal/autograd"
	"summitscale/internal/nn"
	"summitscale/internal/parallel"
	"summitscale/internal/stats"
	"summitscale/internal/tensor"
)

// Cross-worker determinism: the sharded update loops are strictly
// elementwise, so running them through pools of widths 1, 2, 4 and 8
// with the production grain must be bit-identical — the property that
// lets Step fan out without perturbing training goldens. Each case
// shards the same free function Step dispatches.

func randSlices(seed uint64, n int) (wd, gd, aux []float64) {
	rng := stats.NewRNG(seed)
	wd, gd, aux = make([]float64, n), make([]float64, n), make([]float64, n)
	for i := range wd {
		wd[i] = rng.NormFloat64()
		gd[i] = rng.NormFloat64()
		aux[i] = rng.NormFloat64() * 0.1
	}
	return
}

func assertSame(t *testing.T, label string, w int, got, want []float64) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s workers=%d: element %d differs: %v vs %v", label, w, i, got[i], want[i])
		}
	}
}

func TestSGDShardedDeterministicAcrossWorkers(t *testing.T) {
	const n = 100_003
	run := func(w int) []float64 {
		wd, gd, vd := randSlices(41, n)
		pool := parallel.NewWorkerPool(w)
		defer pool.Close()
		pool.RunRange(n, optimShardGrain, func(lo, hi int) {
			sgdMomentum(wd, gd, vd, 0.01, 0.9, 1e-4, lo, hi)
		})
		pool.RunRange(n, optimShardGrain, func(lo, hi int) {
			sgdPlain(wd, gd, 0.01, 1e-4, lo, hi)
		})
		return wd
	}
	ref := run(1)
	for _, w := range []int{2, 4, 8} {
		assertSame(t, "sgd", w, run(w), ref)
	}
}

func TestAdamLambShardedDeterministicAcrossWorkers(t *testing.T) {
	const n = 70_001
	bc1, bc2 := 1-math.Pow(0.9, 3), 1-math.Pow(0.999, 3)
	run := func(w int) []float64 {
		wd, gd, md := randSlices(43, n)
		vd := make([]float64, n)
		ud := make([]float64, n)
		for i := range vd {
			vd[i] = md[i] * md[i]
		}
		pool := parallel.NewWorkerPool(w)
		defer pool.Close()
		a := &Adam{Rate: 0.001, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, DecoupledWD: 0.01}
		pool.RunRange(n, optimShardGrain, func(lo, hi int) {
			adamRange(a, wd, gd, md, vd, bc1, bc2, lo, hi)
		})
		l := &LAMB{Rate: 0.001, Beta1: 0.9, Beta2: 0.999, Eps: 1e-6, WeightDecay: 0.01}
		pool.RunRange(n, optimShardGrain, func(lo, hi int) {
			lambMoments(l, wd, gd, md, vd, ud, bc1, bc2, lo, hi)
		})
		pool.RunRange(n, optimShardGrain, func(lo, hi int) {
			lambApply(wd, ud, l.Rate, 1.25, lo, hi)
		})
		return wd
	}
	ref := run(1)
	for _, w := range []int{2, 4, 8} {
		assertSame(t, "adam+lamb", w, run(w), ref)
	}
}

// TestStepShardedMatchesSerialLoop pins that Step's sharded branch (taken
// for parameters >= optimShardMin) computes exactly what the pre-shard
// serial loop computed.
func TestStepShardedMatchesSerialLoop(t *testing.T) {
	n := optimShardMin + 17 // force the sharded branch
	w := tensor.New(n)
	g := tensor.New(n)
	rng := stats.NewRNG(47)
	for i := 0; i < n; i++ {
		w.Data()[i] = rng.NormFloat64()
		g.Data()[i] = rng.NormFloat64()
	}
	wantW := append([]float64(nil), w.Data()...)
	wantV := make([]float64, n)
	for i := 0; i < n; i++ { // the seed's fused serial loop
		wantV[i] = 0.9*wantV[i] + (g.Data()[i] + 1e-4*wantW[i])
		wantW[i] -= 0.05 * wantV[i]
	}

	opt := &SGD{Rate: 0.05, Momentum: 0.9, WeightDecay: 1e-4}
	opt.Step([]nn.Param{{Name: "w", Value: &autograd.Value{Data: w, Grad: g}}})
	for i := range wantW {
		if w.Data()[i] != wantW[i] {
			t.Fatalf("sharded Step diverges from serial loop at %d: %v vs %v",
				i, w.Data()[i], wantW[i])
		}
	}
}
