package optim

import (
	"math"
	"testing"

	"summitscale/internal/autograd"
	"summitscale/internal/nn"
	"summitscale/internal/tensor"
)

// quadratic builds a single-parameter problem loss = mean((w - target)^2)
// and returns the parameter and a loss closure.
func quadratic(target *tensor.Tensor) (nn.Param, func() *autograd.Value) {
	w := autograd.NewLeaf(tensor.New(target.Shape()...), true)
	p := nn.Param{Name: "w", Value: w}
	return p, func() *autograd.Value {
		return autograd.MSE(w, target)
	}
}

func runOpt(t *testing.T, opt Optimizer, steps int, lossTol float64) {
	t.Helper()
	target := tensor.FromSlice([]float64{1, -2, 3, 0.5}, 4)
	p, loss := quadratic(target)
	var last float64
	for i := 0; i < steps; i++ {
		p.Value.ZeroGrad()
		l := loss()
		l.Backward(nil)
		opt.Step([]nn.Param{p})
		last = l.Data.At(0)
	}
	if last > lossTol {
		t.Fatalf("%T final loss = %v, want < %v", opt, last, lossTol)
	}
}

func TestSGDConverges(t *testing.T)      { runOpt(t, NewSGD(0.3), 200, 1e-6) }
func TestMomentumConverges(t *testing.T) { runOpt(t, NewMomentumSGD(0.1, 0.9), 200, 1e-6) }
func TestAdamConverges(t *testing.T)     { runOpt(t, NewAdam(0.1), 400, 1e-4) }
func TestAdamWConverges(t *testing.T)    { runOpt(t, NewAdamW(0.1, 1e-4), 400, 1e-3) }
func TestLAMBConverges(t *testing.T)     { runOpt(t, NewLAMB(0.05), 600, 1e-2) }

func TestLARSConverges(t *testing.T) {
	// LARS normalizes by weight norm; start from nonzero weights.
	target := tensor.FromSlice([]float64{1, -2, 3, 0.5}, 4)
	w := autograd.NewLeaf(tensor.FromSlice([]float64{2, 1, -1, 1}, 4), true)
	p := nn.Param{Name: "w", Value: w}
	opt := NewLARS(20) // LARS effective step is trust*lr-scaled
	var last float64
	for i := 0; i < 2000; i++ {
		p.Value.ZeroGrad()
		l := autograd.MSE(w, target)
		l.Backward(nil)
		opt.Step([]nn.Param{p})
		last = l.Data.At(0)
	}
	if last > 1e-2 {
		t.Fatalf("LARS final loss = %v", last)
	}
}

func TestSGDWithWeightDecayShrinksWeights(t *testing.T) {
	w := autograd.NewLeaf(tensor.FromSlice([]float64{10}, 1), true)
	p := nn.Param{Name: "w", Value: w}
	opt := &SGD{Rate: 0.1, WeightDecay: 0.5}
	for i := 0; i < 100; i++ {
		// Zero data gradient: only decay acts.
		p.Value.Grad = tensor.New(1)
		opt.Step([]nn.Param{p})
	}
	if got := math.Abs(w.Data.At(0)); got > 0.1 {
		t.Fatalf("weight decay left |w| = %v", got)
	}
}

func TestNilGradSkipped(t *testing.T) {
	w := autograd.NewLeaf(tensor.FromSlice([]float64{5}, 1), true)
	p := nn.Param{Name: "w", Value: w}
	for _, opt := range []Optimizer{NewSGD(0.1), NewAdam(0.1), NewLARS(0.1), NewLAMB(0.1)} {
		opt.Step([]nn.Param{p})
		if w.Data.At(0) != 5 {
			t.Fatalf("%T updated a parameter with nil grad", opt)
		}
	}
}

func TestSetLR(t *testing.T) {
	for _, opt := range []Optimizer{NewSGD(0.1), NewAdam(0.1), NewLARS(0.1), NewLAMB(0.1)} {
		opt.SetLR(0.42)
		if opt.LR() != 0.42 {
			t.Fatalf("%T SetLR failed", opt)
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	w := autograd.NewLeaf(tensor.New(2), true)
	w.Grad = tensor.FromSlice([]float64{3, 4}, 2) // norm 5
	pre := ClipGradNorm([]nn.Param{{Name: "w", Value: w}}, 1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v", pre)
	}
	if n := w.Grad.Norm(); math.Abs(n-1) > 1e-12 {
		t.Fatalf("post-clip norm = %v", n)
	}
	// Under the limit: untouched.
	w.Grad = tensor.FromSlice([]float64{0.3, 0.4}, 2)
	ClipGradNorm([]nn.Param{{Name: "w", Value: w}}, 1)
	if n := w.Grad.Norm(); math.Abs(n-0.5) > 1e-12 {
		t.Fatalf("small grad was clipped: %v", n)
	}
}

func TestLARCClip(t *testing.T) {
	w := autograd.NewLeaf(tensor.FromSlice([]float64{1, 0}, 2), true) // ||w|| = 1
	w.Grad = tensor.FromSlice([]float64{100, 0}, 2)                   // ||g|| = 100
	// localLR = trust*1/100 = 0.001*trust; with lr=0.1 and trust=1 ->
	// localLR=0.01 < lr so grad is scaled by 0.1.
	LARCClip([]nn.Param{{Name: "w", Value: w}}, 0.1, 1)
	if got := w.Grad.At(0); math.Abs(got-10) > 1e-9 {
		t.Fatalf("LARC-clipped grad = %v, want 10", got)
	}
	// When localLR >= lr nothing happens.
	w.Grad = tensor.FromSlice([]float64{0.001, 0}, 2)
	LARCClip([]nn.Param{{Name: "w", Value: w}}, 0.1, 1)
	if got := w.Grad.At(0); got != 0.001 {
		t.Fatalf("LARC modified a small gradient: %v", got)
	}
}

func TestWarmupSchedule(t *testing.T) {
	s := WarmupSchedule{Peak: 1, WarmupSteps: 10}
	if r := s.Rate(0); math.Abs(r-0.1) > 1e-12 {
		t.Errorf("warmup step 0 rate = %v", r)
	}
	if r := s.Rate(9); math.Abs(r-1) > 1e-12 {
		t.Errorf("warmup step 9 rate = %v", r)
	}
	if r := s.Rate(100); r != 1 {
		t.Errorf("post-warmup rate = %v", r)
	}
}

func TestWarmupThenCosine(t *testing.T) {
	s := WarmupSchedule{Peak: 2, WarmupSteps: 5, After: CosineSchedule{Peak: 2, Floor: 0.2, TotalSteps: 10}}
	if r := s.Rate(5); math.Abs(r-2) > 1e-12 {
		t.Errorf("cosine start rate = %v", r)
	}
	if r := s.Rate(15); math.Abs(r-0.2) > 1e-12 {
		t.Errorf("cosine end rate = %v", r)
	}
	mid := s.Rate(10)
	if mid <= 0.2 || mid >= 2 {
		t.Errorf("cosine mid rate = %v", mid)
	}
}

func TestStepSchedule(t *testing.T) {
	s := StepSchedule{Initial: 1, Gamma: 0.1, EverySteps: 10}
	if s.Rate(9) != 1 || math.Abs(s.Rate(10)-0.1) > 1e-15 || math.Abs(s.Rate(25)-0.01) > 1e-15 {
		t.Fatalf("step schedule rates: %v %v %v", s.Rate(9), s.Rate(10), s.Rate(25))
	}
}

func TestLinearScaleLR(t *testing.T) {
	if lr := LinearScaleLR(0.1, 8192, 256); math.Abs(lr-3.2) > 1e-12 {
		t.Fatalf("linear scaling = %v", lr)
	}
}

func TestLAMBTrustRatioBoundsUpdate(t *testing.T) {
	// With huge gradients, LAMB's update magnitude is governed by ||w||, not
	// ||g|| — the property that stabilizes large-batch training.
	w := autograd.NewLeaf(tensor.FromSlice([]float64{1, 1}, 2), true)
	w.Grad = tensor.FromSlice([]float64{1e6, 1e6}, 2)
	before := w.Data.Clone()
	opt := NewLAMB(0.1)
	opt.Step([]nn.Param{{Name: "w", Value: w}})
	delta := w.Data.Sub(before).Norm()
	// ratio = ||w||/||update|| so step size ~= lr*||w||.
	if delta > 0.3 {
		t.Fatalf("LAMB step with huge grads moved weights by %v", delta)
	}
	if delta == 0 {
		t.Fatal("LAMB did not move weights at all")
	}
}

func TestAdamFirstStepIsLRSized(t *testing.T) {
	// With bias correction the very first Adam step is ~lr regardless of
	// gradient magnitude.
	w := autograd.NewLeaf(tensor.FromSlice([]float64{0}, 1), true)
	w.Grad = tensor.FromSlice([]float64{1e-3}, 1)
	opt := NewAdam(0.1)
	opt.Step([]nn.Param{{Name: "w", Value: w}})
	if got := math.Abs(w.Data.At(0)); math.Abs(got-0.1) > 0.01 {
		t.Fatalf("first Adam step = %v, want ~0.1", got)
	}
}
