package optim

import "math"

// Schedule maps a step index to a learning rate.
type Schedule interface {
	Rate(step int) float64
}

// ConstantSchedule always returns the same rate.
type ConstantSchedule struct{ Value float64 }

// Rate implements Schedule.
func (s ConstantSchedule) Rate(int) float64 { return s.Value }

// WarmupSchedule ramps linearly from 0 to Peak over WarmupSteps, then
// delegates to After (or stays at Peak if After is nil). Linear warmup is
// the standard companion of large-batch training (Kurth, Blanchard).
type WarmupSchedule struct {
	Peak        float64
	WarmupSteps int
	After       Schedule
}

// Rate implements Schedule.
func (s WarmupSchedule) Rate(step int) float64 {
	if step < s.WarmupSteps {
		return s.Peak * float64(step+1) / float64(s.WarmupSteps)
	}
	if s.After == nil {
		return s.Peak
	}
	return s.After.Rate(step - s.WarmupSteps)
}

// CosineSchedule decays from Peak to Floor over TotalSteps with a half
// cosine, then holds at Floor.
type CosineSchedule struct {
	Peak       float64
	Floor      float64
	TotalSteps int
}

// Rate implements Schedule.
func (s CosineSchedule) Rate(step int) float64 {
	if step >= s.TotalSteps {
		return s.Floor
	}
	frac := float64(step) / float64(s.TotalSteps)
	return s.Floor + (s.Peak-s.Floor)*0.5*(1+math.Cos(math.Pi*frac))
}

// StepSchedule multiplies the rate by Gamma every EverySteps steps.
type StepSchedule struct {
	Initial    float64
	Gamma      float64
	EverySteps int
}

// Rate implements Schedule.
func (s StepSchedule) Rate(step int) float64 {
	return s.Initial * math.Pow(s.Gamma, float64(step/s.EverySteps))
}

// LinearScaleLR applies the linear batch-size scaling rule: the base rate
// tuned at refBatch is scaled by batch/refBatch. This is the rule that
// makes the warmup + LARS/LAMB machinery necessary at Summit scale.
func LinearScaleLR(base float64, batch, refBatch int) float64 {
	return base * float64(batch) / float64(refBatch)
}
