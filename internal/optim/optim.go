// Package optim implements the optimizers used by the paper's scale-out
// training studies — SGD with momentum, Adam/AdamW, and the layer-wise
// adaptive large-batch methods LARS (Laanait et al.) and LAMB (Khan,
// Blanchard et al.) — plus learning-rate schedules (warmup, cosine and step
// decay) and LARC-style adaptive gradient clipping (Kurth et al.).
package optim

import (
	"math"

	"summitscale/internal/nn"
	"summitscale/internal/parallel"
	"summitscale/internal/tensor"
)

// Fused update loops shard across the persistent worker pool for large
// parameters. Every sharded loop is strictly elementwise — each index is
// read and written by exactly one shard, and the norm reductions (whose
// float association would change under sharding) stay serial — so the
// update is bit-identical at any worker count.
const (
	// optimShardMin is the element count above which an update loop fans
	// out. Below it (every layer of the bench models) the loop runs
	// inline with no pool dispatch and no closure allocation, keeping the
	// training-step alloc floor intact.
	optimShardMin = 1 << 15
	// optimShardGrain is the element chunk size for sharded updates.
	optimShardGrain = 1 << 13
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update using each parameter's current .Value.Grad.
	// Parameters with nil gradients are skipped.
	Step(params []nn.Param)
	// SetLR changes the learning rate (driven by a Schedule).
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
}

// SGD is stochastic gradient descent with optional momentum and weight
// decay (L2).
type SGD struct {
	Rate        float64
	Momentum    float64
	WeightDecay float64
	velocity    map[*tensor.Tensor]*tensor.Tensor
}

// NewSGD creates plain SGD.
func NewSGD(lr float64) *SGD { return &SGD{Rate: lr} }

// NewMomentumSGD creates SGD with momentum.
func NewMomentumSGD(lr, momentum float64) *SGD {
	return &SGD{Rate: lr, Momentum: momentum}
}

// Step implements Optimizer. The decay/momentum/update arithmetic is fused
// into one pass per parameter — no intermediate tensors are materialized,
// so the training-step hot loop is allocation-free in steady state.
func (o *SGD) Step(params []nn.Param) {
	if o.velocity == nil && o.Momentum != 0 {
		o.velocity = map[*tensor.Tensor]*tensor.Tensor{}
	}
	for _, p := range params {
		if p.Value.Grad == nil {
			continue
		}
		w := p.Value.Data
		wd, gd := w.Data(), p.Value.Grad.Data()
		if o.Momentum == 0 {
			if len(wd) >= optimShardMin {
				parallel.Shared().RunRange(len(wd), optimShardGrain, func(lo, hi int) {
					sgdPlain(wd, gd, o.Rate, o.WeightDecay, lo, hi)
				})
			} else {
				sgdPlain(wd, gd, o.Rate, o.WeightDecay, 0, len(wd))
			}
			continue
		}
		v, ok := o.velocity[w]
		if !ok {
			v = tensor.New(w.Shape()...)
			o.velocity[w] = v
		}
		vd := v.Data()
		if len(wd) >= optimShardMin {
			parallel.Shared().RunRange(len(wd), optimShardGrain, func(lo, hi int) {
				sgdMomentum(wd, gd, vd, o.Rate, o.Momentum, o.WeightDecay, lo, hi)
			})
		} else {
			sgdMomentum(wd, gd, vd, o.Rate, o.Momentum, o.WeightDecay, 0, len(wd))
		}
	}
}

// sgdPlain applies the momentum-free SGD update to elements [lo, hi).
func sgdPlain(wd, gd []float64, rate, decay float64, lo, hi int) {
	if decay == 0 {
		for i := lo; i < hi; i++ {
			wd[i] -= rate * gd[i]
		}
		return
	}
	for i := lo; i < hi; i++ {
		wd[i] -= rate * (gd[i] + decay*wd[i])
	}
}

// sgdMomentum applies the fused decay+momentum update to elements [lo, hi).
func sgdMomentum(wd, gd, vd []float64, rate, momentum, decay float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		vd[i] = momentum*vd[i] + (gd[i] + decay*wd[i])
		wd[i] -= rate * vd[i]
	}
}

// SetLR implements Optimizer.
func (o *SGD) SetLR(lr float64) { o.Rate = lr }

// LR implements Optimizer.
func (o *SGD) LR() float64 { return o.Rate }

// adamState holds per-parameter moment estimates. u is LAMB's update
// scratch, allocated once per parameter instead of once per step.
type adamState struct {
	m, v *tensor.Tensor
	u    *tensor.Tensor
}

// Adam implements the Adam optimizer; with DecoupledWD it becomes AdamW.
type Adam struct {
	Rate         float64
	Beta1, Beta2 float64
	Eps          float64
	// DecoupledWD applies decoupled weight decay (AdamW).
	DecoupledWD float64
	step        int
	state       map[*tensor.Tensor]*adamState
}

// NewAdam creates Adam with the customary defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{Rate: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// NewAdamW creates AdamW with decoupled weight decay wd.
func NewAdamW(lr, wd float64) *Adam {
	a := NewAdam(lr)
	a.DecoupledWD = wd
	return a
}

// Step implements Optimizer.
func (o *Adam) Step(params []nn.Param) {
	if o.state == nil {
		o.state = map[*tensor.Tensor]*adamState{}
	}
	o.step++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.step))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.step))
	for _, p := range params {
		if p.Value.Grad == nil {
			continue
		}
		w := p.Value.Data
		st, ok := o.state[w]
		if !ok {
			st = &adamState{m: tensor.New(w.Shape()...), v: tensor.New(w.Shape()...)}
			o.state[w] = st
		}
		wd, gd := w.Data(), p.Value.Grad.Data()
		md, vd := st.m.Data(), st.v.Data()
		if len(wd) >= optimShardMin {
			parallel.Shared().RunRange(len(wd), optimShardGrain, func(lo, hi int) {
				adamRange(o, wd, gd, md, vd, bc1, bc2, lo, hi)
			})
		} else {
			adamRange(o, wd, gd, md, vd, bc1, bc2, 0, len(wd))
		}
	}
}

// adamRange applies the fused Adam/AdamW update to elements [lo, hi).
func adamRange(o *Adam, wd, gd, md, vd []float64, bc1, bc2 float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		g := gd[i]
		md[i] = o.Beta1*md[i] + (1-o.Beta1)*g
		vd[i] = o.Beta2*vd[i] + (1-o.Beta2)*g*g
		mhat := md[i] / bc1
		vhat := vd[i] / bc2
		upd := mhat / (math.Sqrt(vhat) + o.Eps)
		if o.DecoupledWD != 0 {
			upd += o.DecoupledWD * wd[i]
		}
		wd[i] -= o.Rate * upd
	}
}

// SetLR implements Optimizer.
func (o *Adam) SetLR(lr float64) { o.Rate = lr }

// LR implements Optimizer.
func (o *Adam) LR() float64 { return o.Rate }

// LARS is layer-wise adaptive rate scaling: each layer's update is
// rescaled by trust * ||w|| / (||g|| + wd*||w||), which keeps large-batch
// SGD stable (used by Laanait et al. with a LARS/Adam hybrid).
type LARS struct {
	Rate        float64
	Momentum    float64
	Trust       float64
	WeightDecay float64
	velocity    map[*tensor.Tensor]*tensor.Tensor
}

// NewLARS creates LARS with the paper-typical trust coefficient 0.001.
func NewLARS(lr float64) *LARS {
	return &LARS{Rate: lr, Momentum: 0.9, Trust: 0.001, WeightDecay: 1e-4}
}

// Step implements Optimizer.
func (o *LARS) Step(params []nn.Param) {
	if o.velocity == nil {
		o.velocity = map[*tensor.Tensor]*tensor.Tensor{}
	}
	for _, p := range params {
		if p.Value.Grad == nil {
			continue
		}
		w := p.Value.Data
		g := p.Value.Grad
		wNorm, gNorm := w.Norm(), g.Norm()
		localLR := 1.0
		if wNorm > 0 && gNorm > 0 {
			localLR = o.Trust * wNorm / (gNorm + o.WeightDecay*wNorm)
		}
		v, ok := o.velocity[w]
		if !ok {
			v = tensor.New(w.Shape()...)
			o.velocity[w] = v
		}
		vd, wd, gd := v.Data(), w.Data(), g.Data()
		lrEff := localLR * o.Rate
		if len(wd) >= optimShardMin {
			parallel.Shared().RunRange(len(wd), optimShardGrain, func(lo, hi int) {
				larsRange(wd, gd, vd, lrEff, o.Momentum, o.WeightDecay, lo, hi)
			})
		} else {
			larsRange(wd, gd, vd, lrEff, o.Momentum, o.WeightDecay, 0, len(wd))
		}
	}
}

// larsRange applies the trust-scaled momentum update to elements [lo, hi).
func larsRange(wd, gd, vd []float64, lrEff, momentum, decay float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		upd := gd[i] + decay*wd[i]
		vd[i] = momentum*vd[i] + lrEff*upd
		wd[i] -= vd[i]
	}
}

// SetLR implements Optimizer.
func (o *LARS) SetLR(lr float64) { o.Rate = lr }

// LR implements Optimizer.
func (o *LARS) LR() float64 { return o.Rate }

// LAMB is the layer-wise adaptive variant of AdamW used to hold convergence
// at extreme global batch sizes (Khan et al.'s black-hole network, the
// 5.8-million-sample batches of Blanchard et al.).
type LAMB struct {
	Rate         float64
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64
	step         int
	state        map[*tensor.Tensor]*adamState
}

// NewLAMB creates LAMB with customary defaults.
func NewLAMB(lr float64) *LAMB {
	return &LAMB{Rate: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-6, WeightDecay: 0.01}
}

// Step implements Optimizer.
func (o *LAMB) Step(params []nn.Param) {
	if o.state == nil {
		o.state = map[*tensor.Tensor]*adamState{}
	}
	o.step++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.step))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.step))
	for _, p := range params {
		if p.Value.Grad == nil {
			continue
		}
		w := p.Value.Data
		st, ok := o.state[w]
		if !ok {
			st = &adamState{m: tensor.New(w.Shape()...), v: tensor.New(w.Shape()...),
				u: tensor.New(w.Shape()...)}
			o.state[w] = st
		}
		wd, gd := w.Data(), p.Value.Grad.Data()
		md, vd := st.m.Data(), st.v.Data()
		update := st.u
		ud := update.Data()
		if len(wd) >= optimShardMin {
			parallel.Shared().RunRange(len(wd), optimShardGrain, func(lo, hi int) {
				lambMoments(o, wd, gd, md, vd, ud, bc1, bc2, lo, hi)
			})
		} else {
			lambMoments(o, wd, gd, md, vd, ud, bc1, bc2, 0, len(wd))
		}
		// The trust-ratio norms are reductions whose float association
		// must not depend on the worker count: they stay serial.
		wNorm, uNorm := w.Norm(), update.Norm()
		ratio := 1.0
		if wNorm > 0 && uNorm > 0 {
			ratio = wNorm / uNorm
		}
		if len(wd) >= optimShardMin {
			parallel.Shared().RunRange(len(wd), optimShardGrain, func(lo, hi int) {
				lambApply(wd, ud, o.Rate, ratio, lo, hi)
			})
		} else {
			lambApply(wd, ud, o.Rate, ratio, 0, len(wd))
		}
	}
}

// lambMoments advances the Adam moments and writes the raw LAMB update
// for elements [lo, hi).
func lambMoments(o *LAMB, wd, gd, md, vd, ud []float64, bc1, bc2 float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		g := gd[i]
		md[i] = o.Beta1*md[i] + (1-o.Beta1)*g
		vd[i] = o.Beta2*vd[i] + (1-o.Beta2)*g*g
		ud[i] = md[i]/bc1/(math.Sqrt(vd[i]/bc2)+o.Eps) + o.WeightDecay*wd[i]
	}
}

// lambApply applies the trust-scaled update to elements [lo, hi).
func lambApply(wd, ud []float64, rate, ratio float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		wd[i] -= rate * ratio * ud[i]
	}
}

// SetLR implements Optimizer.
func (o *LAMB) SetLR(lr float64) { o.Rate = lr }

// LR implements Optimizer.
func (o *LAMB) LR() float64 { return o.Rate }

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm.
func ClipGradNorm(params []nn.Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		if p.Value.Grad == nil {
			continue
		}
		n := p.Value.Grad.Norm()
		sq += n * n
	}
	total := math.Sqrt(sq)
	if total > maxNorm && total > 0 {
		s := maxNorm / total
		for _, p := range params {
			if p.Value.Grad != nil {
				p.Value.Grad.ScaleInPlace(s)
			}
		}
	}
	return total
}

// LARCClip applies LARC's per-layer adaptive clipping: each layer's
// gradient is scaled so its implied local learning rate never exceeds
// trust * ||w|| / ||g||, the "clip" variant of LARC used by Kurth et al.
func LARCClip(params []nn.Param, lr, trust float64) {
	for _, p := range params {
		if p.Value.Grad == nil {
			continue
		}
		w, g := p.Value.Data, p.Value.Grad
		wNorm, gNorm := w.Norm(), g.Norm()
		if wNorm == 0 || gNorm == 0 {
			continue
		}
		localLR := trust * wNorm / gNorm
		if localLR < lr {
			g.ScaleInPlace(localLR / lr)
		}
	}
}
