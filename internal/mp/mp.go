// Package mp is an MPI-like message-passing substrate whose ranks are
// goroutines and whose links are Go channels. It provides the point-to-point
// primitives and the collectives (barrier, broadcast, reduce, ring and
// recursive-doubling allreduce, reduce-scatter, allgather) that distributed
// data-parallel training needs.
//
// Every transfer is counted, so higher layers (internal/ddl, the ablation
// benchmarks) can compare the byte volumes of collective algorithms against
// the analytic α–β models in internal/netsim.
package mp

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// message is a tagged payload between two ranks.
type message struct {
	tag  int
	data []float64
}

// World owns the channels connecting a fixed set of ranks. Links are
// materialized lazily on first use: a P-rank world holds P² pointer slots
// but allocates a channel only for pairs that actually communicate, so
// large worlds built for analytic modelling (netsim cross-checks, counter
// accounting) cost O(P²) words instead of O(P²) buffered channels.
type World struct {
	size  int
	links []atomic.Pointer[chan message] // links[src*size+dst]

	linkMu     sync.Mutex // serializes link creation
	linksAlloc atomic.Int64

	bytesSent atomic.Int64
	msgsSent  atomic.Int64
	maxMsg    atomic.Int64
}

// NewWorld creates a fully connected world of the given size. No channels
// are allocated until a pair of ranks first communicates.
func NewWorld(size int) *World {
	if size <= 0 {
		panic("mp: world size must be positive")
	}
	return &World{size: size, links: make([]atomic.Pointer[chan message], size*size)}
}

// link returns the src→dst channel, creating it on first use. The fast path
// is a single atomic load; creation is serialized under linkMu with a
// double-check so exactly one channel ever backs a pair.
func (w *World) link(src, dst int) chan message {
	slot := &w.links[src*w.size+dst]
	if ch := slot.Load(); ch != nil {
		return *ch
	}
	w.linkMu.Lock()
	defer w.linkMu.Unlock()
	if ch := slot.Load(); ch != nil {
		return *ch
	}
	ch := make(chan message, 64)
	slot.Store(&ch)
	w.linksAlloc.Add(1)
	return ch
}

// AllocatedLinks returns how many point-to-point channels have been
// materialized so far. A world that never communicates reports zero.
func (w *World) AllocatedLinks() int64 { return w.linksAlloc.Load() }

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// BytesSent returns the total payload bytes sent so far (8 per float64).
func (w *World) BytesSent() int64 { return w.bytesSent.Load() }

// MessagesSent returns the total number of point-to-point messages.
func (w *World) MessagesSent() int64 { return w.msgsSent.Load() }

// MaxMessageBytes returns the largest single message sent so far. Tree
// collectives move whole vectors per hop; the ring moves 1/P chunks, which
// is what makes it bandwidth-optimal at Summit's gradient sizes.
func (w *World) MaxMessageBytes() int64 { return w.maxMsg.Load() }

// ResetCounters zeroes the traffic counters.
func (w *World) ResetCounters() {
	w.bytesSent.Store(0)
	w.msgsSent.Store(0)
	w.maxMsg.Store(0)
}

// Run executes f concurrently on every rank and waits for all to finish.
// A panic on any rank is re-raised on the caller after all ranks stop.
func (w *World) Run(f func(c *Comm)) {
	var wg sync.WaitGroup
	panics := make([]any, w.size)
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[rank] = p
				}
			}()
			f(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for r, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("mp: rank %d panicked: %v", r, p))
		}
	}
}

// Comm is one rank's endpoint in a World.
type Comm struct {
	world *World
	rank  int
	// pending holds received-but-unmatched messages per source.
	pending [][]message
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Send transmits a copy of data to rank dst with the given tag.
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mp: Send to invalid rank %d", dst))
	}
	if dst == c.rank {
		panic("mp: Send to self")
	}
	payload := append([]float64(nil), data...)
	c.world.link(c.rank, dst) <- message{tag: tag, data: payload}
	nbytes := int64(8 * len(data))
	c.world.bytesSent.Add(nbytes)
	c.world.msgsSent.Add(1)
	for {
		cur := c.world.maxMsg.Load()
		if nbytes <= cur || c.world.maxMsg.CompareAndSwap(cur, nbytes) {
			break
		}
	}
}

// Recv blocks until a message with the given tag arrives from src and
// returns its payload. Messages with other tags from src are buffered.
func (c *Comm) Recv(src, tag int) []float64 {
	if src < 0 || src >= c.world.size {
		panic(fmt.Sprintf("mp: Recv from invalid rank %d", src))
	}
	if src == c.rank {
		panic("mp: Recv from self")
	}
	if c.pending == nil {
		c.pending = make([][]message, c.world.size)
	}
	// Check buffered messages first.
	for i, m := range c.pending[src] {
		if m.tag == tag {
			c.pending[src] = append(c.pending[src][:i], c.pending[src][i+1:]...)
			return m.data
		}
	}
	for {
		m := <-c.world.link(src, c.rank)
		if m.tag == tag {
			return m.data
		}
		c.pending[src] = append(c.pending[src], m)
	}
}

// SendRecv exchanges data with a partner rank, sending sendData with
// sendTag and returning the message received with recvTag. Sends happen
// before receives, so symmetric exchanges do not deadlock on the buffered
// links.
func (c *Comm) SendRecv(partner, sendTag int, sendData []float64, recvTag int) []float64 {
	c.Send(partner, sendTag, sendData)
	return c.Recv(partner, recvTag)
}

// tags used by collectives; user tags should stay below collectiveTagBase.
const (
	collectiveTagBase = 1 << 20
	collectiveTagStep = 1 << 16 // room for per-round offsets within a collective

	tagBarrier   = collectiveTagBase + 0*collectiveTagStep
	tagBcast     = collectiveTagBase + 1*collectiveTagStep
	tagReduce    = collectiveTagBase + 2*collectiveTagStep
	tagRingRS    = collectiveTagBase + 3*collectiveTagStep
	tagRingAG    = collectiveTagBase + 4*collectiveTagStep
	tagRecDouble = collectiveTagBase + 5*collectiveTagStep
	tagGather    = collectiveTagBase + 6*collectiveTagStep
	tagScatter   = collectiveTagBase + 7*collectiveTagStep
	tagAllGather = collectiveTagBase + 8*collectiveTagStep
)

// Barrier blocks until every rank has entered it, using the dissemination
// algorithm (log2(P) rounds of pairwise signals).
func (c *Comm) Barrier() {
	p := c.world.size
	if p == 1 {
		return
	}
	for dist := 1; dist < p; dist *= 2 {
		dst := (c.rank + dist) % p
		src := (c.rank - dist + p) % p
		c.Send(dst, tagBarrier+dist, nil)
		c.Recv(src, tagBarrier+dist)
	}
}

// Bcast distributes root's data to every rank using a binomial tree and
// returns each rank's copy.
func (c *Comm) Bcast(root int, data []float64) []float64 {
	p := c.world.size
	if p == 1 {
		return append([]float64(nil), data...)
	}
	// Work in a rotated space where root is rank 0.
	vrank := (c.rank - root + p) % p
	var buf []float64
	if vrank == 0 {
		buf = append([]float64(nil), data...)
	} else {
		// Receive from parent: clear the highest set bit, the inverse of
		// the children rule below.
		parent := (vrank - nextPow2(vrank+1)/2 + root) % p
		buf = c.Recv(parent, tagBcast)
	}
	// Send to children: set each bit above the lowest set bit range.
	for bit := nextPow2(vrank + 1); bit < p; bit *= 2 {
		if vrank+bit < p {
			child := (vrank + bit + root) % p
			c.Send(child, tagBcast, buf)
		}
	}
	return buf
}

// nextPow2 returns the smallest power of two >= n (n >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// Reduce sums data across ranks onto root using a binomial tree. Non-root
// ranks return nil.
func (c *Comm) Reduce(root int, data []float64) []float64 {
	p := c.world.size
	acc := append([]float64(nil), data...)
	if p == 1 {
		return acc
	}
	vrank := (c.rank - root + p) % p
	// Receive from children (reverse of bcast order), then send to parent.
	for bit := 1; bit < p; bit *= 2 {
		if vrank&bit != 0 {
			parent := (vrank&^bit + root) % p
			c.Send(parent, tagReduce+bit, acc)
			return nil
		}
		if vrank+bit < p {
			child := (vrank + bit + root) % p
			recv := c.Recv(child, tagReduce+bit)
			for i := range acc {
				acc[i] += recv[i]
			}
		}
	}
	return acc
}

// AllReduceTree sums data across all ranks via reduce-to-0 plus broadcast.
// Latency-optimal for small messages; moves 2x the ring's bytes for large.
func (c *Comm) AllReduceTree(data []float64) []float64 {
	red := c.Reduce(0, data)
	if c.rank != 0 {
		red = nil
	}
	return c.Bcast(0, red)
}

// AllReduceRing sums data across all ranks with the bandwidth-optimal ring
// algorithm: P-1 reduce-scatter steps followed by P-1 allgather steps, each
// moving 1/P of the vector. This is the algorithm Summit's training stacks
// (NCCL/Horovod) use for large gradients, and the one whose 2(P-1)/P · N/β
// cost the paper's §VI-B communication analysis assumes.
func (c *Comm) AllReduceRing(data []float64) []float64 {
	p := c.world.size
	acc := append([]float64(nil), data...)
	if p == 1 {
		return acc
	}
	n := len(acc)
	// Chunk boundaries: chunk i is [bounds[i], bounds[i+1]).
	bounds := make([]int, p+1)
	for i := 0; i <= p; i++ {
		bounds[i] = i * n / p
	}
	next := (c.rank + 1) % p
	prev := (c.rank - 1 + p) % p

	// Reduce-scatter: after step s, rank r owns the partial sum of chunk
	// (r - s) mod p accumulated over s+1 ranks.
	for s := 0; s < p-1; s++ {
		sendChunk := (c.rank - s + p) % p
		recvChunk := (c.rank - s - 1 + p*2) % p
		c.Send(next, tagRingRS+s, acc[bounds[sendChunk]:bounds[sendChunk+1]])
		in := c.Recv(prev, tagRingRS+s)
		lo := bounds[recvChunk]
		for i := range in {
			acc[lo+i] += in[i]
		}
	}
	// Allgather: circulate the fully reduced chunks.
	for s := 0; s < p-1; s++ {
		sendChunk := (c.rank + 1 - s + p*2) % p
		recvChunk := (c.rank - s + p*2) % p
		c.Send(next, tagRingAG+s, acc[bounds[sendChunk]:bounds[sendChunk+1]])
		in := c.Recv(prev, tagRingAG+s)
		copy(acc[bounds[recvChunk]:bounds[recvChunk+1]], in)
	}
	return acc
}

// AllReduceRecursiveDoubling sums data across all ranks by pairwise
// exchange over log2(P) rounds. It requires a power-of-two world size and
// is latency-favourable at small message sizes.
func (c *Comm) AllReduceRecursiveDoubling(data []float64) []float64 {
	p := c.world.size
	if p&(p-1) != 0 {
		panic("mp: recursive doubling needs power-of-two ranks")
	}
	acc := append([]float64(nil), data...)
	for dist := 1; dist < p; dist *= 2 {
		partner := c.rank ^ dist
		in := c.SendRecv(partner, tagRecDouble+dist, acc, tagRecDouble+dist)
		for i := range acc {
			acc[i] += in[i]
		}
	}
	return acc
}

// ReduceScatter sums data across ranks and leaves rank r with chunk r of
// the result. len(data) must be divisible by the world size.
func (c *Comm) ReduceScatter(data []float64) []float64 {
	p := c.world.size
	if len(data)%p != 0 {
		panic("mp: ReduceScatter length not divisible by world size")
	}
	full := c.AllReduceRing(data)
	chunk := len(data) / p
	out := make([]float64, chunk)
	copy(out, full[c.rank*chunk:(c.rank+1)*chunk])
	return out
}

// AllGather concatenates each rank's equal-length chunk into the full
// vector on every rank, using a ring.
func (c *Comm) AllGather(chunk []float64) []float64 {
	p := c.world.size
	n := len(chunk)
	out := make([]float64, n*p)
	copy(out[c.rank*n:(c.rank+1)*n], chunk)
	if p == 1 {
		return out
	}
	next := (c.rank + 1) % p
	prev := (c.rank - 1 + p) % p
	cur := append([]float64(nil), chunk...)
	curIdx := c.rank
	for s := 0; s < p-1; s++ {
		c.Send(next, tagAllGather+s, cur)
		cur = c.Recv(prev, tagAllGather+s)
		curIdx = (curIdx - 1 + p) % p
		copy(out[curIdx*n:(curIdx+1)*n], cur)
	}
	return out
}

// Gather collects each rank's chunk on root (concatenated by rank). Other
// ranks return nil.
func (c *Comm) Gather(root int, chunk []float64) []float64 {
	if c.rank != root {
		c.Send(root, tagGather, chunk)
		return nil
	}
	p := c.world.size
	out := make([]float64, 0, len(chunk)*p)
	for r := 0; r < p; r++ {
		if r == c.rank {
			out = append(out, chunk...)
		} else {
			out = append(out, c.Recv(r, tagGather)...)
		}
	}
	return out
}

// Scatter distributes root's data in equal chunks; rank r receives chunk r.
func (c *Comm) Scatter(root int, data []float64) []float64 {
	p := c.world.size
	if c.rank == root {
		if len(data)%p != 0 {
			panic("mp: Scatter length not divisible by world size")
		}
		chunk := len(data) / p
		for r := 0; r < p; r++ {
			if r == root {
				continue
			}
			c.Send(r, tagScatter, data[r*chunk:(r+1)*chunk])
		}
		out := make([]float64, chunk)
		copy(out, data[root*chunk:(root+1)*chunk])
		return out
	}
	return c.Recv(root, tagScatter)
}
