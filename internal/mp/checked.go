package mp

import (
	"fmt"
	"math"
)

// DefaultABFTTol is the relative tolerance used by AllReduceRingChecked
// when the caller passes tol <= 0. The guard and the payload sum are the
// same quantity accumulated in different orders, so they disagree only by
// floating-point reassociation — parts in 1e12 of the magnitude for
// gradient-sized vectors — while a single flipped mantissa bit in a
// normal-range value shifts the sum by parts in 1e3 or more.
const DefaultABFTTol = 1e-9

// TamperFunc mutates one rank's in-flight contribution to a checked
// collective. Fault injection calls it after the guard element is
// computed, so the damage it does is exactly what the guard must catch.
type TamperFunc func(rank int, data []float64)

// AllReduceRingChecked is AllReduceRing with an ABFT-style element-sum
// guard carried through the reduction. Each rank appends the sum of its
// local vector as one extra element; the ring reduces payload and guard
// together, and afterwards the reduced guard must equal the sum of the
// reduced payload to within a relative tolerance. Corruption of any
// payload element on any rank — in local compute before the collective
// or on the wire via tamper — breaks that identity and is reported as an
// error on every rank, because the reduced vector (and so the mismatch)
// is identical everywhere.
//
// The guard adds one element to a ring that moves 2(P-1)/P · N elements
// per rank: overhead ~2/N, unmeasurable at gradient sizes. tol <= 0
// selects DefaultABFTTol. tamper may be nil.
func (c *Comm) AllReduceRingChecked(data []float64, tol float64, tamper TamperFunc) ([]float64, error) {
	if tol <= 0 {
		tol = DefaultABFTTol
	}
	guarded := make([]float64, len(data)+1)
	copy(guarded, data)
	var local float64
	for _, v := range data {
		local += v
	}
	guarded[len(data)] = local
	if tamper != nil {
		// Tamper after the guard is sealed: the hook models corruption the
		// checksum must detect, so it may touch only the payload span.
		tamper(c.rank, guarded[:len(data)])
	}
	red := c.AllReduceRing(guarded)
	payload, guard := red[:len(data)], red[len(data)]

	var sum float64
	for _, v := range payload {
		sum += v
	}
	if math.IsNaN(sum) || math.IsInf(sum, 0) || math.IsNaN(guard) || math.IsInf(guard, 0) {
		return nil, fmt.Errorf("mp: abft guard non-finite (sum %v, guard %v)", sum, guard)
	}
	scale := math.Abs(sum) + math.Abs(guard)
	if scale < 1 {
		scale = 1
	}
	if math.Abs(sum-guard) > tol*scale {
		return nil, fmt.Errorf("mp: abft checksum mismatch: payload sums to %g, guard says %g (rel err %.3g, tol %.3g)",
			sum, guard, math.Abs(sum-guard)/scale, tol)
	}
	return payload, nil
}
