package mp

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// runChecked runs the checked allreduce on a p-rank world where each rank
// contributes rank-dependent data, optionally tampering, and returns each
// rank's (result, error).
func runChecked(p, n int, tamper TamperFunc) ([][]float64, []error) {
	w := NewWorld(p)
	outs := make([][]float64, p)
	errs := make([]error, p)
	var mu sync.Mutex
	w.Run(func(c *Comm) {
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(c.Rank()+1) * (1 + 0.01*float64(i))
		}
		out, err := c.AllReduceRingChecked(data, 0, tamper)
		mu.Lock()
		outs[c.Rank()], errs[c.Rank()] = out, err
		mu.Unlock()
	})
	return outs, errs
}

func TestCheckedAllReduceMatchesPlain(t *testing.T) {
	const p, n = 5, 37
	outs, errs := runChecked(p, n, nil)
	// Reference: plain ring allreduce of the same contributions.
	w := NewWorld(p)
	var ref []float64
	var mu sync.Mutex
	w.Run(func(c *Comm) {
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(c.Rank()+1) * (1 + 0.01*float64(i))
		}
		out := c.AllReduceRing(data)
		if c.Rank() == 0 {
			mu.Lock()
			ref = out
			mu.Unlock()
		}
	})
	for r := 0; r < p; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: unexpected guard trip: %v", r, errs[r])
		}
		if len(outs[r]) != n {
			t.Fatalf("rank %d: got %d elements, want %d", r, len(outs[r]), n)
		}
		// The guard element shifts the ring's chunk boundaries, so the
		// checked reduction may associate sums differently than the plain
		// one — bit-equality holds within a world, not across algorithms.
		for i := range ref {
			diff := math.Abs(outs[r][i] - ref[i])
			if diff > 1e-12*math.Max(1, math.Abs(ref[i])) {
				t.Fatalf("rank %d elem %d: checked %v vs plain %v", r, i, outs[r][i], ref[i])
			}
		}
		for i := range ref {
			if outs[0][i] != outs[r][i] {
				t.Fatalf("rank %d elem %d disagrees with rank 0: %v vs %v", r, i, outs[r][i], outs[0][i])
			}
		}
	}
}

// A single flipped mantissa bit on one rank's payload must trip the guard
// on EVERY rank — detection is global because the reduced vector is.
func TestCheckedAllReduceDetectsBitFlip(t *testing.T) {
	const p, n = 4, 64
	tamper := func(rank int, data []float64) {
		if rank == 2 {
			bits := math.Float64bits(data[17])
			data[17] = math.Float64frombits(bits ^ (1 << 51)) // high mantissa bit
		}
	}
	_, errs := runChecked(p, n, tamper)
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d did not detect the flip", r)
		}
		if !strings.Contains(err.Error(), "abft checksum mismatch") {
			t.Fatalf("rank %d wrong error: %v", r, err)
		}
	}
}

// A flip into the exponent that lands a NaN is reported as non-finite
// rather than as a sum mismatch (NaN comparisons would otherwise let it
// sail through a naive |a-b| > tol check).
func TestCheckedAllReduceDetectsNaN(t *testing.T) {
	tamper := func(rank int, data []float64) {
		if rank == 0 {
			data[3] = math.NaN()
		}
	}
	_, errs := runChecked(3, 16, tamper)
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d accepted a NaN payload", r)
		}
		if !strings.Contains(err.Error(), "non-finite") {
			t.Fatalf("rank %d wrong error class: %v", r, err)
		}
	}
}

// The guard must tolerate benign reassociation error: large vectors with
// mixed magnitudes reduce in different orders on different chunk
// boundaries, and none of that may trip the checksum.
func TestCheckedAllReduceToleratesReassociation(t *testing.T) {
	for _, p := range []int{1, 2, 3, 7, 16} {
		_, errs := runChecked(p, 1023, nil)
		for r, err := range errs {
			if err != nil {
				t.Fatalf("p=%d rank %d: false positive: %v", p, r, err)
			}
		}
	}
}
