package mp

import "fmt"

// Tags for the extended collectives.
const (
	tagAlltoAll  = collectiveTagBase + 9*collectiveTagStep
	tagHierLocal = collectiveTagBase + 10*collectiveTagStep
	tagHierCross = collectiveTagBase + 11*collectiveTagStep
)

// AllToAll exchanges equal-length chunks: rank r sends chunk d of its
// input to rank d and returns the concatenation of chunk r from every
// rank. len(data) must be divisible by the world size.
func (c *Comm) AllToAll(data []float64) []float64 {
	p := c.world.size
	if len(data)%p != 0 {
		panic("mp: AllToAll length not divisible by world size")
	}
	chunk := len(data) / p
	out := make([]float64, len(data))
	copy(out[c.rank*chunk:(c.rank+1)*chunk], data[c.rank*chunk:(c.rank+1)*chunk])
	// Pairwise exchange schedule: in round s, exchange with rank^s is not
	// general for non-power-of-two, so use a simple shifted schedule:
	// round s exchanges with (rank+s) and (rank-s).
	for s := 1; s < p; s++ {
		dst := (c.rank + s) % p
		src := (c.rank - s + p) % p
		c.Send(dst, tagAlltoAll+s, data[dst*chunk:(dst+1)*chunk])
		copy(out[src*chunk:(src+1)*chunk], c.Recv(src, tagAlltoAll+s))
	}
	return out
}

// AllReduceHierarchical sums data using a two-level scheme that mirrors
// Summit's NVLink-island topology: ranks are grouped into islands of
// groupSize consecutive ranks; each island reduces onto its leader, the
// leaders ring-allreduce across islands, and leaders broadcast back.
// This is the structure production stacks use so that only one rank per
// node touches the injection link. The world size must be divisible by
// groupSize.
func (c *Comm) AllReduceHierarchical(data []float64, groupSize int) []float64 {
	p := c.world.size
	if groupSize <= 0 || p%groupSize != 0 {
		panic(fmt.Sprintf("mp: world %d not divisible by group size %d", p, groupSize))
	}
	if groupSize == 1 {
		return c.AllReduceRing(data)
	}
	leader := c.rank / groupSize * groupSize
	acc := append([]float64(nil), data...)

	if c.rank != leader {
		// Member: send to leader, await the result.
		c.Send(leader, tagHierLocal, acc)
		return c.Recv(leader, tagHierCross)
	}
	// Leader: reduce the island.
	for m := leader + 1; m < leader+groupSize; m++ {
		in := c.Recv(m, tagHierLocal)
		for i := range acc {
			acc[i] += in[i]
		}
	}
	// Ring across leaders.
	nLeaders := p / groupSize
	if nLeaders > 1 {
		acc = c.ringAmongLeaders(acc, groupSize, nLeaders)
	}
	// Broadcast back to the island.
	for m := leader + 1; m < leader+groupSize; m++ {
		c.Send(m, tagHierCross, acc)
	}
	return acc
}

// ringAmongLeaders runs the ring allreduce over the leader ranks only
// (leader index l = rank/groupSize).
func (c *Comm) ringAmongLeaders(acc []float64, groupSize, nLeaders int) []float64 {
	l := c.rank / groupSize
	next := ((l + 1) % nLeaders) * groupSize
	prev := ((l - 1 + nLeaders) % nLeaders) * groupSize
	n := len(acc)
	bounds := make([]int, nLeaders+1)
	for i := 0; i <= nLeaders; i++ {
		bounds[i] = i * n / nLeaders
	}
	for s := 0; s < nLeaders-1; s++ {
		sendChunk := (l - s + nLeaders*2) % nLeaders
		recvChunk := (l - s - 1 + nLeaders*2) % nLeaders
		c.Send(next, tagRingRS+s, acc[bounds[sendChunk]:bounds[sendChunk+1]])
		in := c.Recv(prev, tagRingRS+s)
		lo := bounds[recvChunk]
		for i := range in {
			acc[lo+i] += in[i]
		}
	}
	for s := 0; s < nLeaders-1; s++ {
		sendChunk := (l + 1 - s + nLeaders*2) % nLeaders
		recvChunk := (l - s + nLeaders*2) % nLeaders
		c.Send(next, tagRingAG+s, acc[bounds[sendChunk]:bounds[sendChunk+1]])
		in := c.Recv(prev, tagRingAG+s)
		copy(acc[bounds[recvChunk]:bounds[recvChunk+1]], in)
	}
	return acc
}
