package mp

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"summitscale/internal/stats"
)

// seqSum is the reference reduction: elementwise sum of per-rank vectors.
func seqSum(vectors [][]float64) []float64 {
	out := make([]float64, len(vectors[0]))
	for _, v := range vectors {
		for i, x := range v {
			out[i] += x
		}
	}
	return out
}

func rankVectors(seed uint64, p, n int) [][]float64 {
	rng := stats.NewRNG(seed)
	vs := make([][]float64, p)
	for r := range vs {
		vs[r] = make([]float64, n)
		for i := range vs[r] {
			vs[r][i] = rng.NormFloat64()
		}
	}
	return vs
}

func almostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestSendRecv(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := c.Recv(0, 7)
			if !almostEqual(got, []float64{1, 2, 3}, 0) {
				t.Errorf("Recv = %v", got)
			}
		}
	})
}

func TestRecvBuffersOutOfOrderTags(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
			c.Send(1, 2, []float64{2})
		} else {
			// Receive in reverse tag order.
			if got := c.Recv(0, 2); got[0] != 2 {
				t.Errorf("tag 2 payload = %v", got)
			}
			if got := c.Recv(0, 1); got[0] != 1 {
				t.Errorf("tag 1 payload = %v", got)
			}
		}
	})
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = 7 // mutation after send must not be visible
			c.Barrier()
		} else {
			got := c.Recv(0, 0)
			c.Barrier()
			if got[0] != 42 {
				t.Errorf("payload mutated in flight: %v", got)
			}
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		w := NewWorld(p)
		var mu sync.Mutex
		before := 0
		violated := false
		w.Run(func(c *Comm) {
			mu.Lock()
			before++
			mu.Unlock()
			c.Barrier()
			mu.Lock()
			if before != p {
				violated = true
			}
			mu.Unlock()
		})
		if violated {
			t.Fatalf("p=%d: rank passed barrier before all arrived", p)
		}
	}
}

func TestBcastAllRoots(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 13} {
		for root := 0; root < p; root++ {
			w := NewWorld(p)
			payload := []float64{3.5, -1, float64(root)}
			w.Run(func(c *Comm) {
				var in []float64
				if c.Rank() == root {
					in = payload
				}
				got := c.Bcast(root, in)
				if !almostEqual(got, payload, 0) {
					t.Errorf("p=%d root=%d rank=%d: Bcast = %v", p, root, c.Rank(), got)
				}
			})
		}
	}
}

func TestReduceAllRoots(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 8, 9} {
		vs := rankVectors(uint64(p), p, 10)
		want := seqSum(vs)
		for root := 0; root < p; root++ {
			w := NewWorld(p)
			w.Run(func(c *Comm) {
				got := c.Reduce(root, vs[c.Rank()])
				if c.Rank() == root {
					if !almostEqual(got, want, 1e-9) {
						t.Errorf("p=%d root=%d: Reduce wrong", p, root)
					}
				} else if got != nil {
					t.Errorf("non-root got non-nil reduce result")
				}
			})
		}
	}
}

func allreduceAlgos(c *Comm) map[string]func([]float64) []float64 {
	return map[string]func([]float64) []float64{
		"ring": c.AllReduceRing,
		"tree": c.AllReduceTree,
	}
}

func TestAllReduceMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 16} {
		for _, n := range []int{1, 3, 16, 100, 257} {
			vs := rankVectors(uint64(p*1000+n), p, n)
			want := seqSum(vs)
			for _, algo := range []string{"ring", "tree"} {
				w := NewWorld(p)
				w.Run(func(c *Comm) {
					got := allreduceAlgos(c)[algo](vs[c.Rank()])
					if !almostEqual(got, want, 1e-9) {
						t.Errorf("p=%d n=%d %s: allreduce wrong on rank %d", p, n, algo, c.Rank())
					}
				})
			}
		}
	}
}

func TestAllReduceRecursiveDoubling(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16} {
		vs := rankVectors(uint64(p), p, 33)
		want := seqSum(vs)
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			got := c.AllReduceRecursiveDoubling(vs[c.Rank()])
			if !almostEqual(got, want, 1e-9) {
				t.Errorf("p=%d: recursive doubling wrong on rank %d", p, c.Rank())
			}
		})
	}
}

func TestAllReduceRecursiveDoublingRejectsNonPow2(t *testing.T) {
	w := NewWorld(3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two world")
		}
	}()
	w.Run(func(c *Comm) {
		c.AllReduceRecursiveDoubling([]float64{1})
	})
}

// TestAllReduceProperty is the core property-based check: for arbitrary
// seeds, rank counts, and lengths, every allreduce algorithm agrees with
// the sequential reduction.
func TestAllReduceProperty(t *testing.T) {
	if err := quick.Check(func(seed uint32) bool {
		rng := stats.NewRNG(uint64(seed))
		p := rng.Intn(9) + 1
		n := rng.Intn(64) + 1
		vs := rankVectors(uint64(seed)+99, p, n)
		want := seqSum(vs)
		ok := true
		var mu sync.Mutex
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			got := c.AllReduceRing(vs[c.Rank()])
			if !almostEqual(got, want, 1e-8) {
				mu.Lock()
				ok = false
				mu.Unlock()
			}
		})
		return ok
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConsecutiveCollectivesDoNotInterfere(t *testing.T) {
	p := 5
	vs1 := rankVectors(1, p, 20)
	vs2 := rankVectors(2, p, 20)
	want1, want2 := seqSum(vs1), seqSum(vs2)
	w := NewWorld(p)
	w.Run(func(c *Comm) {
		got1 := c.AllReduceRing(vs1[c.Rank()])
		got2 := c.AllReduceRing(vs2[c.Rank()])
		got3 := c.AllReduceTree(vs1[c.Rank()])
		if !almostEqual(got1, want1, 1e-9) || !almostEqual(got2, want2, 1e-9) || !almostEqual(got3, want1, 1e-9) {
			t.Errorf("rank %d: back-to-back collectives interfered", c.Rank())
		}
	})
}

func TestReduceScatterAndAllGather(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5} {
		n := p * 6
		vs := rankVectors(uint64(p)+7, p, n)
		want := seqSum(vs)
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			chunk := c.ReduceScatter(vs[c.Rank()])
			lo := c.Rank() * (n / p)
			if !almostEqual(chunk, want[lo:lo+n/p], 1e-9) {
				t.Errorf("p=%d rank %d: ReduceScatter wrong", p, c.Rank())
			}
			full := c.AllGather(chunk)
			if !almostEqual(full, want, 1e-9) {
				t.Errorf("p=%d rank %d: AllGather wrong", p, c.Rank())
			}
		})
	}
}

func TestGatherScatter(t *testing.T) {
	p := 4
	w := NewWorld(p)
	w.Run(func(c *Comm) {
		chunk := []float64{float64(c.Rank()), float64(c.Rank() * 10)}
		got := c.Gather(2, chunk)
		if c.Rank() == 2 {
			want := []float64{0, 0, 1, 10, 2, 20, 3, 30}
			if !almostEqual(got, want, 0) {
				t.Errorf("Gather = %v", got)
			}
		} else if got != nil {
			t.Error("non-root Gather returned data")
		}

		var data []float64
		if c.Rank() == 1 {
			data = []float64{0, 1, 2, 3, 4, 5, 6, 7}
		}
		sc := c.Scatter(1, data)
		want := []float64{float64(2 * c.Rank()), float64(2*c.Rank() + 1)}
		if !almostEqual(sc, want, 0) {
			t.Errorf("Scatter rank %d = %v", c.Rank(), sc)
		}
	})
}

// TestRingBandwidthOptimality checks the byte-count claim behind the
// paper's §VI-B analysis: the ring allreduce moves 2(P-1)/P · N bytes per
// rank, while the tree moves about 2·N·log-ish volumes; for large N the
// ring must send strictly fewer bytes.
func TestRingBandwidthOptimality(t *testing.T) {
	p, n := 8, 8000
	vs := rankVectors(3, p, n)

	wRing := NewWorld(p)
	wRing.Run(func(c *Comm) { c.AllReduceRing(vs[c.Rank()]) })
	ringBytes := wRing.BytesSent()

	wTree := NewWorld(p)
	wTree.Run(func(c *Comm) { c.AllReduceTree(vs[c.Rank()]) })
	treeBytes := wTree.BytesSent()

	// Ring total: P ranks * 2(P-1)/P * N * 8 bytes = 2(P-1)*N*8. Total bytes
	// match the tree; the ring's advantage is the bottleneck message size
	// (N/P chunks vs whole-N hops) and the even per-rank load.
	wantRing := int64(2 * (p - 1) * n * 8)
	if ringBytes != wantRing {
		t.Errorf("ring bytes = %d, want %d", ringBytes, wantRing)
	}
	if treeBytes != ringBytes {
		t.Errorf("tree bytes = %d, want %d (reduce+bcast moves the same total)", treeBytes, ringBytes)
	}
	if got, want := wRing.MaxMessageBytes(), int64(n/p*8); got != want {
		t.Errorf("ring max message = %d, want %d", got, want)
	}
	if got, want := wTree.MaxMessageBytes(), int64(n*8); got != want {
		t.Errorf("tree max message = %d, want %d", got, want)
	}
}

func TestTrafficCounters(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 10))
		} else {
			c.Recv(0, 0)
		}
	})
	if w.BytesSent() != 80 || w.MessagesSent() != 1 {
		t.Fatalf("counters: %d bytes, %d msgs", w.BytesSent(), w.MessagesSent())
	}
	w.ResetCounters()
	if w.BytesSent() != 0 || w.MessagesSent() != 0 {
		t.Fatal("ResetCounters failed")
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run swallowed a rank panic")
		}
	}()
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
}

func TestSelfSendPanics(t *testing.T) {
	w := NewWorld(2)
	defer func() {
		if recover() == nil {
			t.Fatal("self send did not panic")
		}
	}()
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(0, 0, nil)
		}
	})
}

func BenchmarkAllReduceRing8x65536(b *testing.B) {
	p, n := 8, 65536
	vs := rankVectors(1, p, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := NewWorld(p)
		w.Run(func(c *Comm) { c.AllReduceRing(vs[c.Rank()]) })
	}
}

func BenchmarkAllReduceTree8x65536(b *testing.B) {
	p, n := 8, 65536
	vs := rankVectors(1, p, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := NewWorld(p)
		w.Run(func(c *Comm) { c.AllReduceTree(vs[c.Rank()]) })
	}
}

func TestLinksAllocatedLazily(t *testing.T) {
	// A freshly built world — even a large one — materializes no channels.
	w := NewWorld(1024)
	if n := w.AllocatedLinks(); n != 0 {
		t.Fatalf("fresh world allocated %d links, want 0", n)
	}

	// A ring allreduce touches exactly the P next-neighbour links.
	p := 4
	w = NewWorld(p)
	vs := rankVectors(1, p, 32)
	w.Run(func(c *Comm) { c.AllReduceRing(vs[c.Rank()]) })
	if n := w.AllocatedLinks(); n != int64(p) {
		t.Fatalf("ring allreduce on %d ranks allocated %d links, want %d", p, n, p)
	}

	// Re-running the collective reuses the existing channels.
	w.Run(func(c *Comm) { c.AllReduceRing(vs[c.Rank()]) })
	if n := w.AllocatedLinks(); n != int64(p) {
		t.Fatalf("second allreduce grew links to %d, want still %d", n, p)
	}
}
