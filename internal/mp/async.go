package mp

// PendingReduce is an in-flight asynchronous collective started by
// AllReduceAsync. Wait blocks until it completes and returns the reduced
// vector; calling Wait again returns the same slice without blocking.
type PendingReduce struct {
	done chan []float64
	out  []float64
	got  bool
}

// AllReduceAsync runs the given allreduce on a helper goroutine and
// returns immediately, so the caller can overlap the collective with local
// computation (gradient reduction pipelined with the next backward pass —
// the communication/computation overlap of Kurth et al.'s lagged-gradient
// scheme made explicit).
//
// Contract: a Comm supports at most ONE outstanding collective, and the
// owning goroutine must not touch the Comm (sends, receives, or further
// collectives) until Wait returns. Comm receive buffering and the
// collective tag space are single-owner; the helper goroutine simply
// borrows that ownership for the duration. The channel receive inside Wait
// establishes the happens-before edge, so the returned slice is safe to
// read without further synchronization. data must not be written by the
// caller until Wait returns; the reduce function reads it on the helper.
func (c *Comm) AllReduceAsync(data []float64, reduce func(c *Comm, data []float64) []float64) *PendingReduce {
	p := &PendingReduce{done: make(chan []float64, 1)}
	go func() {
		p.done <- reduce(c, data)
	}()
	return p
}

// Wait blocks until the collective completes and returns its result.
func (p *PendingReduce) Wait() []float64 {
	if !p.got {
		p.out = <-p.done
		p.got = true
	}
	return p.out
}
