package mp

import (
	"sync"
	"testing"
	"testing/quick"

	"summitscale/internal/stats"
)

func TestAllToAll(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7} {
		w := NewWorld(p)
		chunk := 3
		w.Run(func(c *Comm) {
			// Rank r sends value 100*r + d to destination d (chunked).
			data := make([]float64, p*chunk)
			for d := 0; d < p; d++ {
				for k := 0; k < chunk; k++ {
					data[d*chunk+k] = float64(100*c.Rank() + d)
				}
			}
			out := c.AllToAll(data)
			for src := 0; src < p; src++ {
				for k := 0; k < chunk; k++ {
					want := float64(100*src + c.Rank())
					if out[src*chunk+k] != want {
						t.Errorf("p=%d rank %d: out[%d] = %v, want %v",
							p, c.Rank(), src*chunk+k, out[src*chunk+k], want)
					}
				}
			}
		})
	}
}

func TestAllToAllBadLengthPanics(t *testing.T) {
	w := NewWorld(3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	w.Run(func(c *Comm) { c.AllToAll(make([]float64, 4)) })
}

func TestHierarchicalMatchesRing(t *testing.T) {
	for _, tc := range []struct{ p, group int }{
		{4, 2}, {6, 3}, {8, 4}, {12, 6}, {6, 1}, {6, 6},
	} {
		vs := rankVectors(uint64(tc.p*10+tc.group), tc.p, 40)
		want := seqSum(vs)
		w := NewWorld(tc.p)
		w.Run(func(c *Comm) {
			got := c.AllReduceHierarchical(vs[c.Rank()], tc.group)
			if !almostEqual(got, want, 1e-9) {
				t.Errorf("p=%d group=%d rank=%d: hierarchical allreduce wrong",
					tc.p, tc.group, c.Rank())
			}
		})
	}
}

func TestHierarchicalBadGroupPanics(t *testing.T) {
	w := NewWorld(6)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	w.Run(func(c *Comm) { c.AllReduceHierarchical([]float64{1}, 4) })
}

// TestHierarchicalCutsInjectionTraffic verifies the design motivation:
// with 6-rank islands (a Summit node), the cross-island ring moves far
// fewer "injection" messages than a flat ring over all ranks.
func TestHierarchicalCutsInjectionTraffic(t *testing.T) {
	p, group, n := 12, 6, 6000
	vs := rankVectors(7, p, n)

	flat := NewWorld(p)
	flat.Run(func(c *Comm) { c.AllReduceRing(vs[c.Rank()]) })

	hier := NewWorld(p)
	hier.Run(func(c *Comm) { c.AllReduceHierarchical(vs[c.Rank()], group) })

	// Flat: p ranks * 2(p-1) messages. Hierarchical: 2(group-1) island
	// messages per island + leaders' ring 2(nLeaders-1)*nLeaders.
	if hier.MessagesSent() >= flat.MessagesSent() {
		t.Fatalf("hierarchical sent %d messages, flat %d",
			hier.MessagesSent(), flat.MessagesSent())
	}
}

func TestHierarchicalProperty(t *testing.T) {
	if err := quick.Check(func(seed uint32) bool {
		rng := stats.NewRNG(uint64(seed))
		groups := []int{1, 2, 3, 4}
		g := groups[rng.Intn(len(groups))]
		islands := rng.Intn(3) + 1
		p := g * islands
		n := rng.Intn(50) + 1
		vs := rankVectors(uint64(seed)+5, p, n)
		want := seqSum(vs)
		var mu sync.Mutex
		ok := true
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			if !almostEqual(c.AllReduceHierarchical(vs[c.Rank()], g), want, 1e-8) {
				mu.Lock()
				ok = false
				mu.Unlock()
			}
		})
		mu.Lock()
		defer mu.Unlock()
		return ok
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
