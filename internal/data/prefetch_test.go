package data

import (
	"runtime"
	"testing"
	"time"
)

func TestPrefetcherDeliversAllBatchesInOrder(t *testing.T) {
	src := NewSyntheticImages(1, 24, 3, 1, 4)
	batches := Batches(EpochOrder(2, 0, src.Len()), 4)
	p := NewPrefetcher(src, batches, 2)
	got := 0
	for {
		b, ok := p.Next()
		if !ok {
			break
		}
		if b.X.Dim(0) != 4 || len(b.Labels) != 4 {
			t.Fatalf("batch shape %v / %d labels", b.X.Shape(), len(b.Labels))
		}
		// Contents must match the direct path.
		wantX, wantY := BatchImages(src, batches[got])
		if !b.X.Equal(wantX, 0) {
			t.Fatalf("batch %d content mismatch", got)
		}
		for i := range wantY {
			if b.Labels[i] != wantY[i] {
				t.Fatalf("batch %d labels differ", got)
			}
		}
		got++
	}
	if got != len(batches) {
		t.Fatalf("received %d of %d batches", got, len(batches))
	}
}

func TestPrefetcherCloseEarly(t *testing.T) {
	src := NewSyntheticImages(3, 64, 2, 1, 8)
	batches := Batches(EpochOrder(4, 0, src.Len()), 4)
	p := NewPrefetcher(src, batches, 1)
	if _, ok := p.Next(); !ok {
		t.Fatal("no first batch")
	}
	p.Close() // must not deadlock or leak
}

// TestPrefetcherCloseNoLeak is the shutdown regression test: Close with
// undrained batches in flight (the producer blocked mid-send on a full
// channel) must unwind the producer goroutine before returning, and
// repeated Close must be a no-op rather than a double-close panic. The
// goroutine count is polled briefly to absorb unrelated runtime
// goroutines winding down.
func TestPrefetcherCloseNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	src := NewSyntheticImages(7, 256, 4, 1, 8)
	batches := Batches(EpochOrder(8, 0, src.Len()), 4)
	for i := 0; i < 8; i++ {
		p := NewPrefetcher(src, batches, 1)
		if _, ok := p.Next(); !ok {
			t.Fatal("no first batch")
		}
		// Depth 1 and dozens of batches left: the producer is blocked in
		// its send (or about to be) when Close arrives.
		p.Close()
		p.Close() // idempotent: must not panic or hang
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after Close of 8 prefetchers",
				before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPrefetcherDepthClamped(t *testing.T) {
	src := NewSyntheticImages(5, 8, 2, 1, 4)
	batches := Batches(EpochOrder(6, 0, src.Len()), 4)
	p := NewPrefetcher(src, batches, 0) // clamped to 1
	n := 0
	for {
		if _, ok := p.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("got %d batches", n)
	}
}
