package data

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"summitscale/internal/stats"
	"summitscale/internal/units"
)

// SMILESVocabulary is the token alphabet of the synthetic compound
// language. Index 0 is the mask token used for masked-LM pretraining,
// mirroring the custom vocabulary of Blanchard et al.'s SMILES BERT.
var SMILESVocabulary = []string{
	"[MASK]", "C", "c", "N", "n", "O", "o", "S", "F", "Cl", "Br",
	"(", ")", "=", "#", "1", "2", "3", "[nH]", "[C@H]",
}

// SMILESSequences generates token sequences from a small stochastic
// grammar over SMILESVocabulary: runs of atoms with balanced branch
// parentheses and ring-closure digit pairs. Deterministic in (Seed, index).
type SMILESSequences struct {
	Seed   uint64
	N      int
	SeqLen int
}

// NewSMILESSequences creates the source.
func NewSMILESSequences(seed uint64, n, seqLen int) *SMILESSequences {
	return &SMILESSequences{Seed: seed, N: n, SeqLen: seqLen}
}

// Len returns the dataset size.
func (s *SMILESSequences) Len() int { return s.N }

// Vocab returns the vocabulary size.
func (s *SMILESSequences) Vocab() int { return len(SMILESVocabulary) }

// BytesPerSample models a stored SMILES string record (~2 bytes/token of
// text plus metadata).
func (s *SMILESSequences) BytesPerSample() units.Bytes {
	return units.Bytes(2*s.SeqLen + 16)
}

// tokenClass indices into SMILESVocabulary.
const (
	tokMask       = 0
	tokFirstAtom  = 1
	tokLastAtom   = 10
	tokOpenParen  = 11
	tokCloseParen = 12
	tokBondEq     = 13
	tokRingFirst  = 15
	tokRingLast   = 17
)

// Sequence returns token ids for sample i.
func (s *SMILESSequences) Sequence(i int) []int {
	rng := stats.NewRNG(s.Seed*0x2545f491 + uint64(i))
	ids := make([]int, 0, s.SeqLen)
	depth := 0
	openRings := []int{}
	for len(ids) < s.SeqLen {
		r := rng.Float64()
		switch {
		case r < 0.55 || len(ids) == 0:
			ids = append(ids, tokFirstAtom+rng.Intn(tokLastAtom-tokFirstAtom+1))
		case r < 0.65 && depth < 3 && len(ids) < s.SeqLen-2:
			ids = append(ids, tokOpenParen)
			depth++
		case r < 0.75 && depth > 0:
			ids = append(ids, tokCloseParen)
			depth--
		case r < 0.85:
			ids = append(ids, tokBondEq+rng.Intn(2))
		default:
			if len(openRings) > 0 && rng.Bool(0.5) {
				last := openRings[len(openRings)-1]
				openRings = openRings[:len(openRings)-1]
				ids = append(ids, last)
			} else {
				ring := tokRingFirst + rng.Intn(tokRingLast-tokRingFirst+1)
				openRings = append(openRings, ring)
				ids = append(ids, ring)
			}
		}
	}
	return ids[:s.SeqLen]
}

// MaskedSample returns a masked-LM training pair: the input with maskFrac
// of positions replaced by [MASK], the original ids as targets, and the
// masked positions.
func (s *SMILESSequences) MaskedSample(i int, maskFrac float64) (input, target []int, masked []int) {
	rng := stats.NewRNG(s.Seed*0x9d2c5681 + uint64(i) + 1)
	target = s.Sequence(i)
	input = append([]int(nil), target...)
	for p := range input {
		if rng.Bool(maskFrac) {
			input[p] = tokMask
			masked = append(masked, p)
		}
	}
	if len(masked) == 0 { // always mask at least one position
		p := rng.Intn(len(input))
		input[p] = tokMask
		masked = append(masked, p)
	}
	return input, target, masked
}

// Waveforms generates damped-chirp time series parameterized by two
// physical parameters (the stand-in for Khan et al.'s binary-black-hole
// mass pair): x(t) = exp(-d·t)·sin(2π(f0 + k·t)·t). The regression task is
// to recover (f0, k) from the sampled waveform.
type Waveforms struct {
	Seed    uint64
	N       int
	Samples int
	// NoiseSD perturbs the waveform, modelling detector noise.
	NoiseSD float64
}

// NewWaveforms creates the source.
func NewWaveforms(seed uint64, n, samples int, noiseSD float64) *Waveforms {
	return &Waveforms{Seed: seed, N: n, Samples: samples, NoiseSD: noiseSD}
}

// Len returns the dataset size.
func (w *Waveforms) Len() int { return w.N }

// BytesPerSample models float32 storage of the series plus parameters.
func (w *Waveforms) BytesPerSample() units.Bytes {
	return units.Bytes(4 * (w.Samples + 2))
}

// Sample returns the waveform and its two generating parameters, each
// scaled to [0, 1].
func (w *Waveforms) Sample(i int) (series []float64, params [2]float64) {
	rng := stats.NewRNG(w.Seed*0x6c62272e + uint64(i))
	f0 := 0.5 + rng.Float64()*2.5 // base frequency
	k := 0.1 + rng.Float64()*1.9  // chirp rate
	damp := 0.5
	series = make([]float64, w.Samples)
	for t := 0; t < w.Samples; t++ {
		tt := float64(t) / float64(w.Samples)
		series[t] = math.Exp(-damp*tt)*math.Sin(2*math.Pi*(f0+k*tt)*tt*float64(w.Samples)/8) +
			rng.NormFloat64()*w.NoiseSD
	}
	params[0] = (f0 - 0.5) / 2.5
	params[1] = (k - 0.1) / 1.9
	return series, params
}

// Render converts token ids to the SMILES-like string they represent.
func Render(ids []int) string {
	var b []byte
	for _, id := range ids {
		if id < 0 || id >= len(SMILESVocabulary) {
			panic(fmt.Sprintf("data: token %d out of vocabulary", id))
		}
		b = append(b, SMILESVocabulary[id]...)
	}
	return string(b)
}

// Parse tokenizes a string produced by Render back into ids using
// greedy longest-match over the vocabulary. It returns an error on any
// unrecognized span, making Render/Parse a lossless round trip.
func Parse(s string) ([]int, error) {
	// Order tokens longest-first for greedy matching.
	type tok struct {
		text string
		id   int
	}
	toks := make([]tok, 0, len(SMILESVocabulary))
	for id, t := range SMILESVocabulary {
		toks = append(toks, tok{t, id})
	}
	sort.SliceStable(toks, func(i, j int) bool { return len(toks[i].text) > len(toks[j].text) })

	var ids []int
	for pos := 0; pos < len(s); {
		matched := false
		for _, t := range toks {
			if strings.HasPrefix(s[pos:], t.text) {
				ids = append(ids, t.id)
				pos += len(t.text)
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("data: unrecognized token at %q", s[pos:])
		}
	}
	return ids, nil
}
