package data

import (
	"fmt"
	"os"
	"path/filepath"

	"summitscale/internal/storage"
	"summitscale/internal/tensor"
	"summitscale/internal/units"
)

// StagedImages is an ImageSource backed by an on-disk shard file — the
// node-local NVMe staging path of §VI-B realized with real files. Labels
// are stored as a one-element prefix of each record.
type StagedImages struct {
	reader   *storage.ShardReader
	classes  int
	channels int
	size     int
}

// StageImages writes every sample of src into a shard file at path and
// returns the bytes written. It is the "data staging" step charged by
// storage.Stager.
func StageImages(src ImageSource, path string) (units.Bytes, error) {
	w, err := storage.CreateShard(path)
	if err != nil {
		return 0, err
	}
	var written units.Bytes
	for i := 0; i < src.Len(); i++ {
		s := src.Sample(i)
		rec := make([]float64, 1+s.X.Size())
		rec[0] = float64(s.Label)
		copy(rec[1:], s.X.Data())
		payload := storage.EncodeFloats(rec)
		if err := w.Append(payload); err != nil {
			w.Close()
			return 0, err
		}
		written += units.Bytes(len(payload))
	}
	return written, w.Close()
}

// OpenStagedImages opens a shard written by StageImages. The caller must
// supply the image geometry (shards are raw tensors, not self-describing
// about shape) and Close the source when done.
func OpenStagedImages(path string, classes, channels, size int) (*StagedImages, error) {
	r, err := storage.OpenShard(path)
	if err != nil {
		return nil, err
	}
	return &StagedImages{reader: r, classes: classes, channels: channels, size: size}, nil
}

// Len implements ImageSource.
func (s *StagedImages) Len() int { return s.reader.Count() }

// Classes implements ImageSource.
func (s *StagedImages) Classes() int { return s.classes }

// BytesPerSample implements ImageSource.
func (s *StagedImages) BytesPerSample() units.Bytes {
	return units.Bytes(8 * (1 + s.channels*s.size*s.size))
}

// Sample implements ImageSource by reading the record from disk.
func (s *StagedImages) Sample(i int) ImageSample {
	payload, err := s.reader.Record(i)
	if err != nil {
		panic(fmt.Sprintf("data: staged read %d: %v", i, err))
	}
	rec, err := storage.DecodeFloats(payload)
	if err != nil {
		panic(fmt.Sprintf("data: staged decode %d: %v", i, err))
	}
	want := 1 + s.channels*s.size*s.size
	if len(rec) != want {
		panic(fmt.Sprintf("data: staged record %d has %d floats, want %d", i, len(rec), want))
	}
	return ImageSample{
		Label: int(rec[0]),
		X:     tensor.FromSlice(rec[1:], s.channels, s.size, s.size),
	}
}

// Close releases the shard.
func (s *StagedImages) Close() error { return s.reader.Close() }

// StageShards splits src across nShards shard files in dir (named
// shard-0000.sum …), sample i going to shard i%nShards — the partitioned
// staging plan. It returns the shard paths.
func StageShards(src ImageSource, dir string, nShards int) ([]string, error) {
	if nShards <= 0 {
		return nil, fmt.Errorf("data: non-positive shard count")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	writers := make([]*storage.ShardWriter, nShards)
	paths := make([]string, nShards)
	for k := range writers {
		paths[k] = filepath.Join(dir, fmt.Sprintf("shard-%04d.sum", k))
		w, err := storage.CreateShard(paths[k])
		if err != nil {
			return nil, err
		}
		writers[k] = w
	}
	for i := 0; i < src.Len(); i++ {
		s := src.Sample(i)
		rec := make([]float64, 1+s.X.Size())
		rec[0] = float64(s.Label)
		copy(rec[1:], s.X.Data())
		if err := writers[i%nShards].Append(storage.EncodeFloats(rec)); err != nil {
			return nil, err
		}
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			return nil, err
		}
	}
	return paths, nil
}
