package data

import (
	"sync"

	"summitscale/internal/tensor"
)

// Batch is one prefetched training batch.
type Batch struct {
	X      *tensor.Tensor
	Labels []int
}

// Prefetcher assembles batches on a background goroutine so sample
// generation/decoding overlaps training compute — the input-pipeline
// overlap that §VI-B's bandwidth arithmetic assumes ("iterative random
// access" hidden under the step).
type Prefetcher struct {
	ch   chan Batch
	stop chan struct{}
	done chan struct{} // closed when the producer goroutine has exited
	once sync.Once
}

// NewPrefetcher starts prefetching the given batches of src with `depth`
// batches of lookahead. Close must be called when done.
func NewPrefetcher(src ImageSource, batches [][]int, depth int) *Prefetcher {
	if depth < 1 {
		depth = 1
	}
	p := &Prefetcher{
		ch:   make(chan Batch, depth),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(p.done)
		defer close(p.ch)
		for _, idx := range batches {
			x, labels := BatchImages(src, idx)
			select {
			case p.ch <- Batch{X: x, Labels: labels}:
			case <-p.stop:
				return
			}
		}
	}()
	return p
}

// Next returns the next batch; ok is false after the last batch.
func (p *Prefetcher) Next() (Batch, bool) {
	b, ok := <-p.ch
	return b, ok
}

// Close stops the background producer, drains any batches still in
// flight, and returns only once the producer goroutine has exited —
// so a goroutine count taken after Close is leak-meaningful. Safe to
// call any number of times, with or without the channel drained.
func (p *Prefetcher) Close() {
	p.once.Do(func() {
		close(p.stop)
		// Drain so the producer's pending send (if any) unblocks.
		for range p.ch {
		}
		<-p.done
	})
}
