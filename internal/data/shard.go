package data

import (
	"fmt"

	"summitscale/internal/stats"
)

// Shard returns the sample indices assigned to rank out of size ranks when
// n samples are distributed contiguously and as evenly as possible. The
// first n%size ranks receive one extra sample.
func Shard(n, size, rank int) []int {
	if size <= 0 || rank < 0 || rank >= size {
		panic(fmt.Sprintf("data: Shard(n=%d, size=%d, rank=%d)", n, size, rank))
	}
	lo := rank * n / size
	hi := (rank + 1) * n / size
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	return idx
}

// EpochOrder returns a deterministic global permutation of [0, n) for the
// given epoch: the "per-epoch data shuffling" whose cost the paper's §VI-B
// storage discussion weighs against node-local staging.
func EpochOrder(seed uint64, epoch, n int) []int {
	rng := stats.NewRNG(seed + uint64(epoch)*0x9e3779b97f4a7c15)
	return rng.Perm(n)
}

// ShardedEpoch combines EpochOrder and Shard: rank's sample indices for the
// given epoch under global shuffling.
func ShardedEpoch(seed uint64, epoch, n, size, rank int) []int {
	order := EpochOrder(seed, epoch, n)
	span := Shard(n, size, rank)
	out := make([]int, len(span))
	for i, s := range span {
		out[i] = order[s]
	}
	return out
}

// Batches splits idx into contiguous batches of batchSize, dropping the
// ragged tail (as synchronous data-parallel training does).
func Batches(idx []int, batchSize int) [][]int {
	if batchSize <= 0 {
		panic("data: batch size must be positive")
	}
	var out [][]int
	for lo := 0; lo+batchSize <= len(idx); lo += batchSize {
		out = append(out, idx[lo:lo+batchSize])
	}
	return out
}
