package data

import (
	"path/filepath"
	"testing"
)

func TestStageAndReadBack(t *testing.T) {
	src := NewClimateImages(5, 12, 2, 6)
	path := filepath.Join(t.TempDir(), "climate.sum")
	written, err := StageImages(src, path)
	if err != nil {
		t.Fatal(err)
	}
	if written <= 0 {
		t.Fatal("nothing written")
	}
	staged, err := OpenStagedImages(path, src.Classes(), 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	defer staged.Close()
	if staged.Len() != src.Len() || staged.Classes() != 2 {
		t.Fatalf("staged metadata: len %d classes %d", staged.Len(), staged.Classes())
	}
	for i := 0; i < src.Len(); i++ {
		orig := src.Sample(i)
		got := staged.Sample(i)
		if got.Label != orig.Label {
			t.Fatalf("sample %d label %d vs %d", i, got.Label, orig.Label)
		}
		if !got.X.Equal(orig.X, 0) {
			t.Fatalf("sample %d pixels differ after staging", i)
		}
	}
}

func TestStagedBatchesWork(t *testing.T) {
	src := NewSyntheticImages(6, 10, 5, 1, 4)
	path := filepath.Join(t.TempDir(), "imgs.sum")
	if _, err := StageImages(src, path); err != nil {
		t.Fatal(err)
	}
	staged, err := OpenStagedImages(path, 5, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer staged.Close()
	x, labels := BatchImages(staged, []int{9, 0, 4})
	if x.Dim(0) != 3 || labels[0] != 9%5 {
		t.Fatalf("staged batch: shape %v labels %v", x.Shape(), labels)
	}
}

func TestStageShardsPartition(t *testing.T) {
	src := NewSyntheticImages(7, 21, 3, 1, 4)
	dir := t.TempDir()
	paths, err := StageShards(src, dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("%d shards", len(paths))
	}
	total := 0
	for k, p := range paths {
		st, err := OpenStagedImages(p, 3, 1, 4)
		if err != nil {
			t.Fatalf("shard %d: %v", k, err)
		}
		total += st.Len()
		// Spot-check the first record of each shard: global sample k.
		if st.Len() > 0 {
			got := st.Sample(0)
			want := src.Sample(k)
			if got.Label != want.Label || !got.X.Equal(want.X, 0) {
				t.Fatalf("shard %d record 0 mismatch", k)
			}
		}
		st.Close()
	}
	if total != src.Len() {
		t.Fatalf("shards hold %d of %d samples", total, src.Len())
	}
}

func TestOpenStagedMissingFile(t *testing.T) {
	if _, err := OpenStagedImages(filepath.Join(t.TempDir(), "nope.sum"), 2, 1, 4); err == nil {
		t.Fatal("missing file accepted")
	}
}
