// Package data provides the deterministic synthetic datasets that stand in
// for the paper's gated inputs (ImageNet, CAM5 climate imagery, SMILES
// compound corpora, gravitational waveforms), plus the sharding and
// shuffling machinery of distributed data-parallel input pipelines.
//
// Every sample is generated on the fly from (seed, index), so arbitrarily
// large datasets exist without storage, while record sizes — the quantity
// the paper's §VI-B I/O analysis reasons about — are modelled explicitly.
package data

import (
	"fmt"
	"math"

	"summitscale/internal/stats"
	"summitscale/internal/tensor"
	"summitscale/internal/units"
)

// ImageSample is one labelled image.
type ImageSample struct {
	X     *tensor.Tensor // (C, H, W)
	Label int
}

// ImageSource generates labelled images by index.
type ImageSource interface {
	Len() int
	Classes() int
	Sample(i int) ImageSample
	// BytesPerSample is the on-disk record size the storage model charges
	// for reading one sample.
	BytesPerSample() units.Bytes
}

// SyntheticImages is an ImageNet-like source: each class has a
// characteristic spatial frequency and orientation texture, with additive
// noise. Deterministic in (Seed, index).
type SyntheticImages struct {
	Seed     uint64
	N        int
	NumClass int
	Channels int
	Size     int
	// RecordBytes models the stored (compressed) record size. ImageNet
	// JPEGs average ~110 KB; the default is set by NewSyntheticImages.
	RecordBytes units.Bytes
}

// NewSyntheticImages creates a source with ImageNet-like record sizes.
func NewSyntheticImages(seed uint64, n, classes, channels, size int) *SyntheticImages {
	return &SyntheticImages{
		Seed: seed, N: n, NumClass: classes, Channels: channels, Size: size,
		RecordBytes: 110 * units.KB,
	}
}

// Len implements ImageSource.
func (s *SyntheticImages) Len() int { return s.N }

// Classes implements ImageSource.
func (s *SyntheticImages) Classes() int { return s.NumClass }

// BytesPerSample implements ImageSource.
func (s *SyntheticImages) BytesPerSample() units.Bytes { return s.RecordBytes }

// Sample implements ImageSource.
func (s *SyntheticImages) Sample(i int) ImageSample {
	if i < 0 || i >= s.N {
		panic(fmt.Sprintf("data: sample %d of %d", i, s.N))
	}
	rng := stats.NewRNG(s.Seed*0x9e3779b9 + uint64(i))
	label := i % s.NumClass
	img := tensor.New(s.Channels, s.Size, s.Size)
	// Class-dependent texture: frequency and orientation vary per class.
	freq := 1 + float64(label%4)
	theta := float64(label) * math.Pi / float64(s.NumClass)
	cs, sn := math.Cos(theta), math.Sin(theta)
	for c := 0; c < s.Channels; c++ {
		phase := float64(c) * 0.5
		for y := 0; y < s.Size; y++ {
			for x := 0; x < s.Size; x++ {
				u := (cs*float64(x) + sn*float64(y)) / float64(s.Size)
				v := math.Sin(2*math.Pi*freq*u+phase) + rng.NormFloat64()*0.3
				img.Set(v, c, y, x)
			}
		}
	}
	return ImageSample{X: img, Label: label}
}

// ClimateImages is the CAM5-like source for the Kurth et al. study: fields
// either contain a cyclone-like vortex blob (label 1) or only smooth
// background flow (label 0). Records are large multi-channel scientific
// fields rather than compressed photos.
type ClimateImages struct {
	Seed     uint64
	N        int
	Channels int
	Size     int
}

// NewClimateImages creates the source. Record size models 16 float32
// channels at 768x1152 scaled to the configured size.
func NewClimateImages(seed uint64, n, channels, size int) *ClimateImages {
	return &ClimateImages{Seed: seed, N: n, Channels: channels, Size: size}
}

// Len implements ImageSource.
func (s *ClimateImages) Len() int { return s.N }

// Classes implements ImageSource.
func (s *ClimateImages) Classes() int { return 2 }

// BytesPerSample implements ImageSource: float32 per pixel per channel.
func (s *ClimateImages) BytesPerSample() units.Bytes {
	return units.Bytes(4 * s.Channels * s.Size * s.Size)
}

// Sample implements ImageSource.
func (s *ClimateImages) Sample(i int) ImageSample {
	rng := stats.NewRNG(s.Seed*0x51ed2701 + uint64(i))
	label := i % 2
	img := tensor.New(s.Channels, s.Size, s.Size)
	// Smooth large-scale background flow.
	kx := 1 + rng.Float64()
	ky := 1 + rng.Float64()
	for c := 0; c < s.Channels; c++ {
		for y := 0; y < s.Size; y++ {
			for x := 0; x < s.Size; x++ {
				v := 0.5*math.Sin(kx*float64(x)/float64(s.Size)*2*math.Pi) +
					0.5*math.Cos(ky*float64(y)/float64(s.Size)*2*math.Pi) +
					rng.NormFloat64()*0.1
				img.Set(v, c, y, x)
			}
		}
	}
	if label == 1 {
		// Inject a compact vortex: a Gaussian bump with rotational signature
		// across channels.
		cx := float64(rng.Intn(s.Size))
		cy := float64(rng.Intn(s.Size))
		sigma := float64(s.Size) / 6
		for c := 0; c < s.Channels; c++ {
			sign := 1.0
			if c%2 == 1 {
				sign = -1
			}
			for y := 0; y < s.Size; y++ {
				for x := 0; x < s.Size; x++ {
					dx, dy := float64(x)-cx, float64(y)-cy
					r2 := dx*dx + dy*dy
					img.Set(img.At(c, y, x)+sign*2*math.Exp(-r2/(2*sigma*sigma)), c, y, x)
				}
			}
		}
	}
	return ImageSample{X: img, Label: label}
}

// BatchImages assembles samples[lo:hi] of src into an (n, C, H, W) tensor
// and label slice, in the order given by idx.
func BatchImages(src ImageSource, idx []int) (*tensor.Tensor, []int) {
	if len(idx) == 0 {
		panic("data: empty batch")
	}
	first := src.Sample(idx[0])
	c, h, w := first.X.Dim(0), first.X.Dim(1), first.X.Dim(2)
	out := tensor.New(len(idx), c, h, w)
	labels := make([]int, len(idx))
	per := c * h * w
	copy(out.Data()[:per], first.X.Data())
	labels[0] = first.Label
	for i := 1; i < len(idx); i++ {
		s := src.Sample(idx[i])
		copy(out.Data()[i*per:(i+1)*per], s.X.Data())
		labels[i] = s.Label
	}
	return out, labels
}
