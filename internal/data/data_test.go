package data

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSyntheticImagesDeterministic(t *testing.T) {
	s := NewSyntheticImages(1, 100, 10, 3, 8)
	a := s.Sample(7)
	b := s.Sample(7)
	if !a.X.Equal(b.X, 0) || a.Label != b.Label {
		t.Fatal("same index produced different samples")
	}
	c := s.Sample(8)
	if a.X.Equal(c.X, 0) {
		t.Fatal("different indices produced identical images")
	}
}

func TestSyntheticImagesLabelsAndShape(t *testing.T) {
	s := NewSyntheticImages(2, 30, 10, 3, 8)
	for i := 0; i < 30; i++ {
		smp := s.Sample(i)
		if smp.Label != i%10 {
			t.Fatalf("label of %d = %d", i, smp.Label)
		}
		if smp.X.Dim(0) != 3 || smp.X.Dim(1) != 8 || smp.X.Dim(2) != 8 {
			t.Fatalf("shape = %v", smp.X.Shape())
		}
	}
	if s.Classes() != 10 || s.Len() != 30 {
		t.Fatal("metadata wrong")
	}
	if s.BytesPerSample() <= 0 {
		t.Fatal("record size not positive")
	}
}

func TestSyntheticImagesClassesDiffer(t *testing.T) {
	s := NewSyntheticImages(3, 100, 4, 1, 16)
	// Average image per class should differ across classes (textures have
	// class-dependent frequency content).
	var norms [4]float64
	for cls := 0; cls < 4; cls++ {
		a := s.Sample(cls).X
		b := s.Sample(cls + 4).X // same class, different instance
		cdiff := s.Sample(cls + 1).X
		same := a.Sub(b).Norm()
		diff := a.Sub(cdiff).Norm()
		norms[cls] = diff - same
		_ = same
	}
	// At least some classes must be more self-similar than cross-similar.
	pos := 0
	for _, v := range norms {
		if v > 0 {
			pos++
		}
	}
	if pos < 2 {
		t.Fatalf("class textures not distinguishable: %v", norms)
	}
}

func TestClimateImagesVortexSignal(t *testing.T) {
	s := NewClimateImages(4, 40, 2, 16)
	// Label-1 images must have larger extreme values (the injected vortex).
	var maxStorm, maxCalm float64
	for i := 0; i < 40; i++ {
		smp := s.Sample(i)
		m := smp.X.MaxAbs()
		if smp.Label == 1 {
			maxStorm += m
		} else {
			maxCalm += m
		}
	}
	if maxStorm <= maxCalm {
		t.Fatalf("vortex images not distinguishable: storm=%v calm=%v", maxStorm, maxCalm)
	}
	if s.BytesPerSample() != 4*2*16*16 {
		t.Fatalf("climate record bytes = %v", s.BytesPerSample())
	}
}

func TestBatchImages(t *testing.T) {
	s := NewSyntheticImages(5, 20, 4, 2, 4)
	x, labels := BatchImages(s, []int{3, 1, 10})
	if x.Dim(0) != 3 || x.Dim(1) != 2 || x.Dim(2) != 4 || x.Dim(3) != 4 {
		t.Fatalf("batch shape %v", x.Shape())
	}
	if labels[0] != 3 || labels[1] != 1 || labels[2] != 10%4 {
		t.Fatalf("labels = %v", labels)
	}
	// Row 1 of the batch must equal sample 1 exactly.
	one := s.Sample(1).X
	per := one.Size()
	for i := 0; i < per; i++ {
		if x.Data()[per+i] != one.Data()[i] {
			t.Fatal("batch row 1 differs from sample 1")
		}
	}
}

func TestSMILESDeterministicAndInRange(t *testing.T) {
	s := NewSMILESSequences(6, 50, 24)
	a := s.Sequence(9)
	b := s.Sequence(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sequence not deterministic")
		}
		if a[i] < 0 || a[i] >= s.Vocab() {
			t.Fatalf("token %d out of vocab", a[i])
		}
	}
	if len(a) != 24 {
		t.Fatalf("sequence length %d", len(a))
	}
	// No sequence should start with a non-atom token per the grammar.
	if a[0] < tokFirstAtom || a[0] > tokLastAtom {
		t.Fatalf("sequence starts with token %d", a[0])
	}
}

func TestSMILESMaskedSample(t *testing.T) {
	s := NewSMILESSequences(7, 50, 32)
	input, target, masked := s.MaskedSample(3, 0.25)
	if len(input) != 32 || len(target) != 32 {
		t.Fatal("masked sample lengths wrong")
	}
	if len(masked) == 0 {
		t.Fatal("no positions masked")
	}
	for _, p := range masked {
		if input[p] != tokMask {
			t.Fatalf("masked position %d holds token %d", p, input[p])
		}
	}
	// Unmasked positions must match the target.
	maskedSet := map[int]bool{}
	for _, p := range masked {
		maskedSet[p] = true
	}
	for p := range input {
		if !maskedSet[p] && input[p] != target[p] {
			t.Fatalf("unmasked position %d altered", p)
		}
	}
}

func TestWaveformsParamsRecoverable(t *testing.T) {
	w := NewWaveforms(8, 20, 64, 0)
	series, params := w.Sample(0)
	if len(series) != 64 {
		t.Fatal("series length wrong")
	}
	for _, p := range params {
		if p < 0 || p > 1 {
			t.Fatalf("param %v out of [0,1]", p)
		}
	}
	// Determinism.
	s2, p2 := w.Sample(0)
	for i := range series {
		if series[i] != s2[i] {
			t.Fatal("waveform not deterministic")
		}
	}
	if params != p2 {
		t.Fatal("params not deterministic")
	}
	// Different parameters give different waveforms.
	s3, _ := w.Sample(1)
	var diff float64
	for i := range series {
		diff += math.Abs(series[i] - s3[i])
	}
	if diff < 1 {
		t.Fatal("distinct samples produced near-identical waveforms")
	}
}

func TestShardPartition(t *testing.T) {
	if err := quick.Check(func(nRaw, sizeRaw uint8) bool {
		n := int(nRaw) + 1
		size := int(sizeRaw)%16 + 1
		seen := make([]int, n)
		for r := 0; r < size; r++ {
			for _, i := range Shard(n, size, r) {
				if i < 0 || i >= n {
					return false
				}
				seen[i]++
			}
		}
		// Every sample assigned to exactly one rank.
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShardBalance(t *testing.T) {
	for _, tc := range []struct{ n, size int }{{100, 7}, {8, 3}, {5, 5}, {3, 8}} {
		minLen, maxLen := tc.n, 0
		for r := 0; r < tc.size; r++ {
			l := len(Shard(tc.n, tc.size, r))
			if l < minLen {
				minLen = l
			}
			if l > maxLen {
				maxLen = l
			}
		}
		if maxLen-minLen > 1 {
			t.Fatalf("n=%d size=%d: shard imbalance %d..%d", tc.n, tc.size, minLen, maxLen)
		}
	}
}

func TestEpochOrderIsPermutationAndVaries(t *testing.T) {
	n := 50
	e0 := EpochOrder(1, 0, n)
	e1 := EpochOrder(1, 1, n)
	seen := make([]bool, n)
	for _, i := range e0 {
		if seen[i] {
			t.Fatal("duplicate in epoch order")
		}
		seen[i] = true
	}
	same := 0
	for i := range e0 {
		if e0[i] == e1[i] {
			same++
		}
	}
	if same > n/2 {
		t.Fatalf("epochs insufficiently shuffled: %d/%d fixed points", same, n)
	}
	// Determinism.
	again := EpochOrder(1, 0, n)
	for i := range e0 {
		if e0[i] != again[i] {
			t.Fatal("epoch order not deterministic")
		}
	}
}

func TestShardedEpochCoversAll(t *testing.T) {
	n, size := 31, 4
	seen := make([]int, n)
	for r := 0; r < size; r++ {
		for _, i := range ShardedEpoch(9, 2, n, size, r) {
			seen[i]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("sample %d assigned %d times", i, c)
		}
	}
}

func TestBatches(t *testing.T) {
	idx := []int{0, 1, 2, 3, 4, 5, 6}
	bs := Batches(idx, 3)
	if len(bs) != 2 || len(bs[0]) != 3 || bs[1][2] != 5 {
		t.Fatalf("batches = %v", bs)
	}
	if got := Batches(idx, 8); got != nil {
		t.Fatalf("oversized batch yielded %v", got)
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	s := NewSMILESSequences(9, 30, 20)
	for i := 0; i < 30; i++ {
		ids := s.Sequence(i)
		str := Render(ids)
		if str == "" {
			t.Fatal("empty rendering")
		}
		back, err := Parse(str)
		if err != nil {
			t.Fatalf("parse %q: %v", str, err)
		}
		if len(back) != len(ids) {
			t.Fatalf("round trip length %d vs %d for %q", len(back), len(ids), str)
		}
		for j := range ids {
			if back[j] != ids[j] {
				t.Fatalf("round trip token %d differs for %q", j, str)
			}
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse("C?X"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRenderPanicsOutOfVocab(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Render([]int{999})
}
