package ga

import (
	"testing"

	"summitscale/internal/stats"
)

// onesScore counts a target token — a simple fitness with known optimum.
func onesScore(genes []int) float64 {
	n := 0.0
	for _, g := range genes {
		if g == 7 {
			n++
		}
	}
	return n
}

func TestSearchImprovesScore(t *testing.T) {
	rng := stats.NewRNG(1)
	cfg := DefaultConfig()
	pop, best := Search(rng, cfg, 40, onesScore)
	if len(pop) != cfg.Population {
		t.Fatalf("population size %d", len(pop))
	}
	if len(best) != 40 {
		t.Fatalf("trajectory length %d", len(best))
	}
	if best[len(best)-1] <= best[0] {
		t.Fatalf("no improvement: %v -> %v", best[0], best[len(best)-1])
	}
	// With 24 genes and vocab 20, random start scores ~1.2; evolution
	// should push well beyond.
	if pop[0].Score < 10 {
		t.Fatalf("best score after search = %v", pop[0].Score)
	}
}

func TestEliteNeverRegresses(t *testing.T) {
	rng := stats.NewRNG(2)
	cfg := DefaultConfig()
	cfg.Elite = 2
	_, best := Search(rng, cfg, 30, onesScore)
	for i := 1; i < len(best); i++ {
		if best[i] < best[i-1] {
			t.Fatalf("best score regressed at generation %d: %v", i, best)
		}
	}
}

func TestPopulationSortedBestFirst(t *testing.T) {
	rng := stats.NewRNG(3)
	pop, _ := Search(rng, DefaultConfig(), 10, onesScore)
	for i := 1; i < len(pop); i++ {
		if pop[i].Score > pop[i-1].Score {
			t.Fatal("population not sorted")
		}
	}
}

func TestGenesStayInVocab(t *testing.T) {
	rng := stats.NewRNG(4)
	cfg := DefaultConfig()
	pop, _ := Search(rng, cfg, 15, onesScore)
	for _, c := range pop {
		if len(c.Genes) != cfg.Genes {
			t.Fatalf("genome length %d", len(c.Genes))
		}
		for _, g := range c.Genes {
			if g < 0 || g >= cfg.Vocab {
				t.Fatalf("gene %d out of vocab", g)
			}
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() float64 {
		pop, _ := Search(stats.NewRNG(9), DefaultConfig(), 20, onesScore)
		return pop[0].Score
	}
	if run() != run() {
		t.Fatal("GA not deterministic for fixed seed")
	}
}

func TestDegenerateConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Search(stats.NewRNG(1), Config{Population: 1, Genes: 2, Vocab: 2}, 1, onesScore)
}
