// Package ga implements the genetic-algorithm search of Blanchard et al.
// (§IV-A.8): candidate compounds represented as token strings are evolved
// against a learned scoring function, with tournament selection, one-point
// crossover, and per-token mutation.
package ga

import (
	"sort"

	"summitscale/internal/stats"
)

// Config parameterizes a run.
type Config struct {
	Population int
	Genes      int // tokens per candidate
	Vocab      int // token alphabet size
	// MutationRate is the per-token mutation probability.
	MutationRate float64
	// TournamentK is the tournament size for parent selection.
	TournamentK int
	// Elite preserves the best candidates unchanged each generation.
	Elite int
}

// DefaultConfig returns sensible defaults for the drug-candidate search.
func DefaultConfig() Config {
	return Config{Population: 64, Genes: 24, Vocab: 20, MutationRate: 0.05,
		TournamentK: 3, Elite: 2}
}

// Candidate is one genome with its score.
type Candidate struct {
	Genes []int
	Score float64
}

// Search runs the GA for `generations` against score (higher is better)
// and returns the final population sorted best-first, plus the best score
// trajectory per generation.
func Search(rng *stats.RNG, cfg Config, generations int, score func(genes []int) float64) ([]Candidate, []float64) {
	if cfg.Population < 2 || cfg.Genes < 2 || cfg.Vocab < 2 {
		panic("ga: degenerate configuration")
	}
	pop := make([]Candidate, cfg.Population)
	for i := range pop {
		g := make([]int, cfg.Genes)
		for j := range g {
			g[j] = rng.Intn(cfg.Vocab)
		}
		pop[i] = Candidate{Genes: g, Score: score(g)}
	}
	best := make([]float64, 0, generations)
	for gen := 0; gen < generations; gen++ {
		sort.SliceStable(pop, func(i, j int) bool { return pop[i].Score > pop[j].Score })
		best = append(best, pop[0].Score)
		next := make([]Candidate, 0, cfg.Population)
		for e := 0; e < cfg.Elite && e < len(pop); e++ {
			next = append(next, pop[e])
		}
		for len(next) < cfg.Population {
			a := tournament(rng, pop, cfg.TournamentK)
			b := tournament(rng, pop, cfg.TournamentK)
			child := crossover(rng, a.Genes, b.Genes)
			mutate(rng, child, cfg.Vocab, cfg.MutationRate)
			next = append(next, Candidate{Genes: child, Score: score(child)})
		}
		pop = next
	}
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].Score > pop[j].Score })
	return pop, best
}

func tournament(rng *stats.RNG, pop []Candidate, k int) Candidate {
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.Score > best.Score {
			best = c
		}
	}
	return best
}

func crossover(rng *stats.RNG, a, b []int) []int {
	cut := 1 + rng.Intn(len(a)-1)
	child := make([]int, len(a))
	copy(child, a[:cut])
	copy(child[cut:], b[cut:])
	return child
}

func mutate(rng *stats.RNG, g []int, vocab int, rate float64) {
	for i := range g {
		if rng.Bool(rate) {
			g[i] = rng.Intn(vocab)
		}
	}
}
