// Package storage models Summit's two training-input paths — the shared
// GPFS file system (2.5 TB/s aggregate read) and the node-local NVMe burst
// buffers (~6 GB/s per node, >27 TB/s aggregate) — together with the data
// staging, partitioning, and per-epoch shuffling costs the paper's §VI-B
// I/O discussion weighs.
package storage

import (
	"fmt"
	"math"

	"summitscale/internal/machine"
	"summitscale/internal/obs"
	"summitscale/internal/units"
)

// Store models a place training data can be read from.
type Store interface {
	// ReadBW returns the aggregate read bandwidth available to a job
	// running on the given number of nodes.
	ReadBW(nodes int) units.BytesPerSecond
	Name() string
}

// GPFS is a center-wide shared parallel file system: aggregate bandwidth
// is fixed and shared, with an optional per-node ceiling from the client
// network path.
type GPFS struct {
	FS machine.SharedFS
	// PerNodeCap bounds one node's share (client-side limit); zero means
	// uncapped.
	PerNodeCap units.BytesPerSecond
}

// GPFSFor models the shared file system of a machine description: its
// aggregate rates, with the node's injection bandwidth as the per-node
// cap. It panics when the read bandwidth is not positive — a zero or
// negative rate would silently produce Inf/NaN epoch times.
func GPFSFor(m machine.Machine) *GPFS {
	if !(m.FS.ReadBW > 0) {
		panic(fmt.Sprintf("storage: %s shared-FS read bandwidth must be positive, got %v",
			m.Name, float64(m.FS.ReadBW)))
	}
	return &GPFS{FS: m.FS, PerNodeCap: m.Node.InjectionBW}
}

// NewGPFS models Summit's Alpine file system. The per-node cap is the
// node's injection bandwidth.
func NewGPFS() *GPFS {
	return GPFSFor(machine.Summit())
}

// Name implements Store.
func (g *GPFS) Name() string { return g.FS.Name }

// Degraded returns a copy of the file system with its aggregate read and
// write bandwidth multiplied by factor in (0, 1] — a GPFS brownout window
// (contended metadata servers, rebuilding RAID sets). The per-node cap is
// unchanged: the client network is not what browns out.
func (g *GPFS) Degraded(factor float64) *GPFS {
	if !(factor > 0 && factor <= 1) {
		panic(fmt.Sprintf("storage: brownout factor must be in (0,1], got %v", factor))
	}
	fs := g.FS
	fs.ReadBW = units.BytesPerSecond(float64(fs.ReadBW) * factor)
	fs.WriteBW = units.BytesPerSecond(float64(fs.WriteBW) * factor)
	return &GPFS{FS: fs, PerNodeCap: g.PerNodeCap}
}

// ReadBW implements Store: the job gets at most the aggregate bandwidth,
// and at most nodes × per-node cap.
func (g *GPFS) ReadBW(nodes int) units.BytesPerSecond {
	bw := g.FS.ReadBW
	if g.PerNodeCap > 0 {
		if cap := g.PerNodeCap * units.BytesPerSecond(nodes); cap < bw {
			bw = cap
		}
	}
	return bw
}

// NVMe is the node-local burst buffer: bandwidth scales linearly with
// nodes, but capacity is per node and data must be staged in first.
type NVMe struct {
	Node machine.Node
}

// NVMeFor models the node-local burst buffer of the given node. It panics
// when the node has no drives or non-positive rates (diskless machines
// like JUWELS Booster have no node-local input path; callers should check
// before constructing one).
func NVMeFor(n machine.Node) *NVMe {
	if !(n.NVMe > 0) || !(n.NVMeReadBW > 0) || !(n.NVMeWriteBW > 0) {
		panic(fmt.Sprintf("storage: node %s has no usable node-local NVMe (capacity %v, read %v, write %v)",
			n.Name, float64(n.NVMe), float64(n.NVMeReadBW), float64(n.NVMeWriteBW)))
	}
	return &NVMe{Node: n}
}

// NewNVMe models Summit's node-local drives.
func NewNVMe() *NVMe { return NVMeFor(machine.SummitNode()) }

// Name implements Store.
func (n *NVMe) Name() string { return "node-local NVMe" }

// ReadBW implements Store.
func (n *NVMe) ReadBW(nodes int) units.BytesPerSecond {
	return n.Node.NVMeReadBW * units.BytesPerSecond(nodes)
}

// CapacityPerNode returns the burst buffer size of one node.
func (n *NVMe) CapacityPerNode() units.Bytes { return n.Node.NVMe }

// StagingPlan describes how a dataset is placed on node-local storage.
type StagingPlan int

// Staging strategies.
const (
	// ReplicateDataset copies the full dataset to every node. Only
	// possible when it fits one node's NVMe; shuffling is then free.
	ReplicateDataset StagingPlan = iota
	// PartitionDataset shards the dataset across nodes (1/nodes each).
	// Global per-epoch shuffling then requires redistributing samples.
	PartitionDataset
)

// Stager computes staging and epoch costs for NVMe-based input pipelines.
type Stager struct {
	NVMe *NVMe
	GPFS *GPFS
	// Fabric bandwidth per node for the shuffle exchange.
	ShuffleBW units.BytesPerSecond
}

// StagerFor builds the staging model of a machine description. The
// machine must have node-local storage and a positive injection bandwidth
// for the shuffle exchange.
func StagerFor(m machine.Machine) *Stager {
	if !(m.Node.InjectionBW > 0) {
		panic(fmt.Sprintf("storage: %s injection bandwidth must be positive, got %v",
			m.Name, float64(m.Node.InjectionBW)))
	}
	return &Stager{NVMe: NVMeFor(m.Node), GPFS: GPFSFor(m), ShuffleBW: m.Node.InjectionBW}
}

// NewStager builds the Summit stager.
func NewStager() *Stager {
	return StagerFor(machine.Summit())
}

// Degraded returns a copy of the stager whose shared file system runs at
// the given brownout factor; the node-local drives and the shuffle fabric
// are unaffected. Staging and re-staging times computed through the copy
// reflect the browned-out GPFS.
func (s *Stager) Degraded(factor float64) *Stager {
	return &Stager{NVMe: s.NVMe, GPFS: s.GPFS.Degraded(factor), ShuffleBW: s.ShuffleBW}
}

// PlanFor returns the staging plan that fits: replication when the
// dataset fits one node's NVMe (with 10% headroom), else partitioning; an
// error when even the partition does not fit.
func (s *Stager) PlanFor(dataset units.Bytes, nodes int) (StagingPlan, error) {
	capacity := float64(s.NVMe.CapacityPerNode()) * 0.9
	if float64(dataset) <= capacity {
		return ReplicateDataset, nil
	}
	if float64(dataset)/float64(nodes) <= capacity {
		return PartitionDataset, nil
	}
	return 0, fmt.Errorf("storage: dataset %v exceeds NVMe capacity of %d nodes", dataset, nodes)
}

// StagingTime returns the time to stage the dataset from GPFS onto the
// node-local drives under the given plan. Replication reads the dataset
// once from GPFS and broadcasts over the fabric (pipelined, so the GPFS
// read dominates once nodes are many); partitioning reads 1/nodes per
// node. Staging repeats at every job start — the "costs adding up" of
// §VI-B (hundreds of TB at the start of each hyperparameter-search job).
func (s *Stager) StagingTime(dataset units.Bytes, nodes int, plan StagingPlan) units.Seconds {
	gpfsBW := s.GPFS.ReadBW(nodes)
	switch plan {
	case ReplicateDataset:
		// One copy from GPFS, then a pipelined fabric broadcast; the write
		// bandwidth of the local drive bounds the landing rate.
		read := float64(dataset) / float64(gpfsBW)
		land := float64(dataset) / float64(s.NVMe.Node.NVMeWriteBW)
		return units.Seconds(math.Max(read, land))
	case PartitionDataset:
		perNode := float64(dataset) / float64(nodes)
		read := float64(dataset) / float64(gpfsBW)
		land := perNode / float64(s.NVMe.Node.NVMeWriteBW)
		return units.Seconds(math.Max(read, land))
	default:
		panic("storage: unknown staging plan")
	}
}

// ObservedStagingTime is StagingTime emitting a stage-in span (track
// "storage", starting at job time zero) and byte/plan metrics into ob,
// which may be nil.
func (s *Stager) ObservedStagingTime(ob *obs.Observer, dataset units.Bytes,
	nodes int, plan StagingPlan) units.Seconds {
	t := s.StagingTime(dataset, nodes, plan)
	planName := "replicate"
	if plan == PartitionDataset {
		planName = "partition"
	}
	ob.Span("storage", "io", "stage-in", 0, t,
		obs.Num("bytes", float64(dataset)), obs.Num("nodes", float64(nodes)),
		obs.Str("plan", planName), obs.Num("gpfs_bw", float64(s.GPFS.ReadBW(nodes))))
	ob.Inc("storage.stage_in.count")
	ob.Add("storage.stage_in.bytes", int64(dataset))
	ob.Observe("storage.stage_in.seconds", float64(t))
	return t
}

// EpochShuffleTime returns the cost of a global per-epoch reshuffle under
// the plan: free for replication (any node holds every sample), while a
// partitioned dataset must exchange nearly all bytes over the fabric.
func (s *Stager) EpochShuffleTime(dataset units.Bytes, nodes int, plan StagingPlan) units.Seconds {
	if plan == ReplicateDataset || nodes <= 1 {
		return 0
	}
	perNode := float64(dataset) / float64(nodes)
	// A random permutation moves (nodes-1)/nodes of each node's data.
	moved := perNode * float64(nodes-1) / float64(nodes)
	return units.Seconds(moved / float64(s.ShuffleBW))
}

// TrainingReadRequirement returns the aggregate read bandwidth needed to
// keep `devices` accelerators fed: throughput per device × record size ×
// devices. This is the §VI-B estimate that yields ~20 TB/s for ResNet-50
// on full Summit.
func TrainingReadRequirement(devices int, samplesPerSecPerDevice float64,
	recordBytes units.Bytes) units.BytesPerSecond {
	return units.BytesPerSecond(float64(devices) * samplesPerSecPerDevice * float64(recordBytes))
}

// Sustains reports whether the store can feed the job, and the achieved
// fraction (1 means fully fed; below 1 the input pipeline throttles
// training by that factor).
func Sustains(st Store, nodes int, required units.BytesPerSecond) (bool, float64) {
	avail := st.ReadBW(nodes)
	if avail >= required {
		return true, 1
	}
	return false, float64(avail) / float64(required)
}
