package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Shard file format (the on-disk record container the staging model's
// byte counts correspond to):
//
//	[8]  magic "SUMSHARD"
//	...  records, each: [4] length, [4] crc32(payload), payload
//	...  index: [8] offset per record (into the file)
//	[8]  record count
//	[8]  index offset
//
// Readers seek to the footer, load the index, then random-access records —
// the iterative-random-access pattern of §VI-B's training input.

var shardMagic = [8]byte{'S', 'U', 'M', 'S', 'H', 'A', 'R', 'D'}

// ShardWriter writes a shard file.
type ShardWriter struct {
	f       *os.File
	offsets []int64
	pos     int64
	closed  bool
}

// CreateShard opens a new shard file for writing.
func CreateShard(path string) (*ShardWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("storage: create shard: %w", err)
	}
	if _, err := f.Write(shardMagic[:]); err != nil {
		f.Close()
		return nil, err
	}
	return &ShardWriter{f: f, pos: int64(len(shardMagic))}, nil
}

// Append writes one record.
func (w *ShardWriter) Append(payload []byte) error {
	if w.closed {
		return fmt.Errorf("storage: append to closed shard")
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	w.offsets = append(w.offsets, w.pos)
	if _, err := w.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.f.Write(payload); err != nil {
		return err
	}
	w.pos += int64(len(hdr) + len(payload))
	return nil
}

// Count returns the records appended so far.
func (w *ShardWriter) Count() int { return len(w.offsets) }

// Close writes the index and footer and closes the file.
func (w *ShardWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	indexOff := w.pos
	buf := make([]byte, 8)
	for _, off := range w.offsets {
		binary.LittleEndian.PutUint64(buf, uint64(off))
		if _, err := w.f.Write(buf); err != nil {
			w.f.Close()
			return err
		}
	}
	binary.LittleEndian.PutUint64(buf, uint64(len(w.offsets)))
	if _, err := w.f.Write(buf); err != nil {
		w.f.Close()
		return err
	}
	binary.LittleEndian.PutUint64(buf, uint64(indexOff))
	if _, err := w.f.Write(buf); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ShardReader random-accesses a shard file.
type ShardReader struct {
	f       *os.File
	offsets []int64
	size    int64
}

// OpenShard opens a shard for reading and loads its index.
func OpenShard(path string) (*ShardReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open shard: %w", err)
	}
	r := &ShardReader{f: f}
	if err := r.load(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func (r *ShardReader) load() error {
	st, err := r.f.Stat()
	if err != nil {
		return err
	}
	r.size = st.Size()
	if r.size < int64(len(shardMagic))+16 {
		return fmt.Errorf("storage: shard too small (%d bytes)", r.size)
	}
	var magic [8]byte
	if _, err := r.f.ReadAt(magic[:], 0); err != nil {
		return err
	}
	if magic != shardMagic {
		return fmt.Errorf("storage: bad shard magic %q", magic)
	}
	var footer [16]byte
	if _, err := r.f.ReadAt(footer[:], r.size-16); err != nil {
		return err
	}
	count := int64(binary.LittleEndian.Uint64(footer[0:8]))
	indexOff := int64(binary.LittleEndian.Uint64(footer[8:16]))
	if count < 0 || indexOff < int64(len(shardMagic)) || indexOff+count*8+16 != r.size {
		return fmt.Errorf("storage: corrupt shard footer (count=%d index=%d size=%d)",
			count, indexOff, r.size)
	}
	idx := make([]byte, count*8)
	if _, err := r.f.ReadAt(idx, indexOff); err != nil {
		return err
	}
	r.offsets = make([]int64, count)
	for i := range r.offsets {
		r.offsets[i] = int64(binary.LittleEndian.Uint64(idx[i*8 : i*8+8]))
	}
	return nil
}

// Count returns the record count.
func (r *ShardReader) Count() int { return len(r.offsets) }

// Record reads record i, verifying its checksum.
func (r *ShardReader) Record(i int) ([]byte, error) {
	if i < 0 || i >= len(r.offsets) {
		return nil, fmt.Errorf("storage: record %d of %d", i, len(r.offsets))
	}
	var hdr [8]byte
	if _, err := r.f.ReadAt(hdr[:], r.offsets[i]); err != nil {
		return nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
	payload := make([]byte, length)
	if _, err := io.ReadFull(io.NewSectionReader(r.f, r.offsets[i]+8, int64(length)), payload); err != nil {
		return nil, err
	}
	if crc := crc32.ChecksumIEEE(payload); crc != wantCRC {
		return nil, fmt.Errorf("storage: record %d checksum mismatch", i)
	}
	return payload, nil
}

// Close releases the file.
func (r *ShardReader) Close() error { return r.f.Close() }

// EncodeFloats packs a float64 slice into a record payload.
func EncodeFloats(xs []float64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(x))
	}
	return out
}

// DecodeFloats unpacks a payload written by EncodeFloats.
func DecodeFloats(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("storage: float payload length %d", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}
