package storage

import (
	"os"
	"path/filepath"
	"testing"

	"summitscale/internal/stats"
)

func writeShard(t *testing.T, records [][]byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.shard")
	w, err := CreateShard(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestShardRoundTrip(t *testing.T) {
	records := [][]byte{
		[]byte("hello"),
		{},
		[]byte("a longer record with more bytes in it"),
		{0, 1, 2, 255},
	}
	path := writeShard(t, records)
	r, err := OpenShard(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Count() != len(records) {
		t.Fatalf("count = %d", r.Count())
	}
	// Random access, out of order.
	for _, i := range []int{3, 0, 2, 1} {
		got, err := r.Record(i)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if string(got) != string(records[i]) {
			t.Fatalf("record %d = %q, want %q", i, got, records[i])
		}
	}
}

func TestShardEmpty(t *testing.T) {
	path := writeShard(t, nil)
	r, err := OpenShard(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Count() != 0 {
		t.Fatalf("count = %d", r.Count())
	}
	if _, err := r.Record(0); err == nil {
		t.Fatal("read from empty shard succeeded")
	}
}

func TestShardRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(path, []byte("this is not a shard file at all......"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShard(path); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestShardDetectsCorruption(t *testing.T) {
	path := writeShard(t, [][]byte{[]byte("important scientific data")})
	// Flip a payload byte.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[20] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenShard(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Record(0); err == nil {
		t.Fatal("corrupted record read without error")
	}
}

func TestShardTruncatedFooter(t *testing.T) {
	path := writeShard(t, [][]byte{[]byte("x")})
	b, _ := os.ReadFile(path)
	if err := os.WriteFile(path, b[:len(b)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShard(path); err == nil {
		t.Fatal("truncated shard accepted")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s")
	w, err := CreateShard(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("late")); err == nil {
		t.Fatal("append after close succeeded")
	}
}

func TestEncodeDecodeFloats(t *testing.T) {
	rng := stats.NewRNG(1)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	got, err := DecodeFloats(EncodeFloats(xs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("float %d: %v != %v", i, got[i], xs[i])
		}
	}
	if _, err := DecodeFloats(make([]byte, 7)); err == nil {
		t.Fatal("ragged payload accepted")
	}
}

// TestShardAsTrainingInput exercises the full staged-input path: waveform
// samples encoded into a shard, then read back in shuffled epoch order —
// the node-local NVMe pipeline in miniature.
func TestShardAsTrainingInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "waveforms.shard")
	w, err := CreateShard(path)
	if err != nil {
		t.Fatal(err)
	}
	const n, dim = 32, 16
	rng := stats.NewRNG(2)
	originals := make([][]float64, n)
	for i := range originals {
		originals[i] = make([]float64, dim)
		for j := range originals[i] {
			originals[i][j] = rng.NormFloat64()
		}
		if err := w.Append(EncodeFloats(originals[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenShard(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	order := stats.NewRNG(3).Perm(n)
	for _, i := range order {
		payload, err := r.Record(i)
		if err != nil {
			t.Fatal(err)
		}
		xs, err := DecodeFloats(payload)
		if err != nil {
			t.Fatal(err)
		}
		for j := range xs {
			if xs[j] != originals[i][j] {
				t.Fatalf("sample %d element %d mismatch", i, j)
			}
		}
	}
}

func BenchmarkShardRandomRead(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.shard")
	w, err := CreateShard(path)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4096)
	for i := 0; i < 256; i++ {
		if err := w.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	r, err := OpenShard(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Record(i % 256); err != nil {
			b.Fatal(err)
		}
	}
}
