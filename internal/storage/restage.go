package storage

import (
	"math"
	"sort"

	"summitscale/internal/obs"
	"summitscale/internal/units"
)

// Fault-aware staging: a node failure during (or after) stage-in voids
// that node's burst-buffer contents, and the replacement node must
// rebuild its share from the shared file system before the job can
// proceed — the re-stage tax the §IV-B full-machine runs paid on every
// interrupt.

// ReStageTime returns the time for one replacement node to rebuild its
// node-local data: its share of the dataset re-read from the shared FS as
// a single client and landed on the local drive.
func (s *Stager) ReStageTime(dataset units.Bytes, nodes int, plan StagingPlan) units.Seconds {
	var share float64
	switch plan {
	case ReplicateDataset:
		share = float64(dataset)
	case PartitionDataset:
		share = float64(dataset) / float64(nodes)
	default:
		panic("storage: unknown staging plan")
	}
	read := share / float64(s.GPFS.ReadBW(1))
	land := share / float64(s.NVMe.Node.NVMeWriteBW)
	return units.Seconds(math.Max(read, land))
}

// StagingTimeWithFailures returns when stage-in completes given fatal
// node failures at the given onset times (job-relative; any order — a
// sorted copy is processed). A failure before the current completion
// interrupts that node's copy: the replacement starts its re-stage at the
// failure instant, and overall completion waits for the latest straggling
// copy. Failures after completion do not affect stage-in (their re-stage
// is charged to the restart path instead).
//
// Completion grows monotonically as failures are admitted, so processing
// order changes which failures count as "during stage-in"; ascending order
// is the physical semantics (a failure is admitted iff stage-in — already
// stretched by every earlier failure — is still running when it hits).
func (s *Stager) StagingTimeWithFailures(dataset units.Bytes, nodes int,
	plan StagingPlan, failures []units.Seconds) units.Seconds {
	return s.ObservedStagingTimeWithFailures(nil, dataset, nodes, plan, failures)
}

// ObservedStagingTimeWithFailures is StagingTimeWithFailures emitting one
// stage-in span plus a re-stage span per admitted failure into ob (which
// may be nil).
func (s *Stager) ObservedStagingTimeWithFailures(ob *obs.Observer, dataset units.Bytes,
	nodes int, plan StagingPlan, failures []units.Seconds) units.Seconds {
	completion := s.ObservedStagingTime(ob, dataset, nodes, plan)
	re := s.ReStageTime(dataset, nodes, plan)
	sorted := append([]units.Seconds(nil), failures...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, f := range sorted {
		if f < completion {
			ob.Inc("storage.restage.count")
			ob.Event("storage", "fault", "node-failure", f)
			ob.Span("storage", "io", "re-stage", f, re)
			if c := f + re; c > completion {
				completion = c
			}
		}
	}
	return completion
}
