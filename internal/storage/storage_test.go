package storage

import (
	"math"
	"testing"

	"summitscale/internal/machine"
	"summitscale/internal/models"
	"summitscale/internal/units"
)

// TestResNetIONeedsTwentyTBps anchors the storage model to the paper's
// headline §VI-B figure: full-Summit data-parallel ResNet-50 needs about
// 20 TB/s of aggregate read bandwidth.
func TestResNetIONeedsTwentyTBps(t *testing.T) {
	m := models.ResNet50()
	summit := machine.Summit()
	req := TrainingReadRequirement(summit.TotalGPUs(), m.SingleGPUThroughput, m.RecordBytes)
	if math.Abs(float64(req)-20e12)/20e12 > 0.05 {
		t.Fatalf("ResNet-50 requirement = %v, paper ~20 TB/s", req)
	}
}

// TestGPFSCannotFeedButNVMeCan is the paper's conclusion: GPFS (2.5 TB/s)
// cannot sustain full-Summit training, node-local NVMe (>27 TB/s) can.
func TestGPFSCannotFeedButNVMeCan(t *testing.T) {
	m := models.ResNet50()
	summit := machine.Summit()
	req := TrainingReadRequirement(summit.TotalGPUs(), m.SingleGPUThroughput, m.RecordBytes)

	okG, fracG := Sustains(NewGPFS(), summit.Nodes, req)
	if okG {
		t.Fatal("GPFS claimed to sustain full-Summit ResNet-50")
	}
	if fracG > 0.2 {
		t.Fatalf("GPFS fraction = %v, want ~2.5/20", fracG)
	}
	okN, fracN := Sustains(NewNVMe(), summit.Nodes, req)
	if !okN || fracN != 1 {
		t.Fatalf("NVMe should sustain: ok=%v frac=%v", okN, fracN)
	}
}

func TestNVMeAggregateMatchesPaper(t *testing.T) {
	n := NewNVMe()
	agg := n.ReadBW(4608)
	// Paper: "node-local NVMe has aggregate read bandwidth over 27 TB/s".
	if float64(agg) < 27e12 || float64(agg) > 30e12 {
		t.Fatalf("NVMe aggregate = %v, paper says over 27 TB/s", agg)
	}
}

func TestGPFSBandwidthCaps(t *testing.T) {
	g := NewGPFS()
	// Small jobs are capped by their own injection bandwidth...
	few := g.ReadBW(4)
	if want := 4 * 25e9; float64(few) != want {
		t.Fatalf("4-node GPFS share = %v, want %v", few, want)
	}
	// ...large jobs by the file system aggregate.
	many := g.ReadBW(4608)
	if float64(many) != 2.5e12 {
		t.Fatalf("full-machine GPFS share = %v, want 2.5 TB/s", many)
	}
}

func TestNVMeScalesLinearly(t *testing.T) {
	n := NewNVMe()
	if n.ReadBW(200) != 2*n.ReadBW(100) {
		t.Fatal("NVMe bandwidth not linear in nodes")
	}
}

func TestPlanForReplicationWhenFits(t *testing.T) {
	s := NewStager()
	plan, err := s.PlanFor(1*units.TB, 128)
	if err != nil || plan != ReplicateDataset {
		t.Fatalf("1 TB should replicate onto 1.6 TB drives: %v %v", plan, err)
	}
	plan, err = s.PlanFor(100*units.TB, 1024)
	if err != nil || plan != PartitionDataset {
		t.Fatalf("100 TB should partition: %v %v", plan, err)
	}
	if _, err = s.PlanFor(100*units.TB, 8); err == nil {
		t.Fatal("100 TB on 8 nodes should not fit")
	}
}

func TestShuffleFreeWhenReplicated(t *testing.T) {
	s := NewStager()
	if got := s.EpochShuffleTime(1*units.TB, 512, ReplicateDataset); got != 0 {
		t.Fatalf("replicated shuffle cost %v", got)
	}
	part := s.EpochShuffleTime(100*units.TB, 512, PartitionDataset)
	if part <= 0 {
		t.Fatal("partitioned shuffle should cost time")
	}
}

func TestStagingCostsGrowWithDataset(t *testing.T) {
	s := NewStager()
	// Within a plan, a larger dataset always costs more to stage.
	repSmall := s.StagingTime(100*units.GB, 1024, ReplicateDataset)
	repBig := s.StagingTime(1*units.TB, 1024, ReplicateDataset)
	if repSmall <= 0 || repBig <= repSmall {
		t.Fatalf("replicate staging: %v then %v", repSmall, repBig)
	}
	partSmall := s.StagingTime(10*units.TB, 1024, PartitionDataset)
	partBig := s.StagingTime(100*units.TB, 1024, PartitionDataset)
	if partSmall <= 0 || partBig <= partSmall {
		t.Fatalf("partition staging: %v then %v", partSmall, partBig)
	}
	// Replication lands the whole dataset on every node's drive, so it is
	// slower than partitioning the same bytes.
	if s.StagingTime(1*units.TB, 1024, ReplicateDataset) <= s.StagingTime(1*units.TB, 1024, PartitionDataset) {
		t.Fatal("replication should cost at least as much as partitioning")
	}
}

// TestHundredsOfTBStagingIsExpensive reflects §VI-B's note that staging
// "hundreds of TBs at the start of each training job" adds real cost: at
// GPFS bandwidth, 200 TB takes more than a minute even at full aggregate
// rate.
func TestHundredsOfTBStagingIsExpensive(t *testing.T) {
	s := NewStager()
	tm := s.StagingTime(200*units.TB, 4608, PartitionDataset)
	if float64(tm) < 60 {
		t.Fatalf("200 TB staged in %v — unrealistically fast", tm)
	}
}

func TestShuffleTimeDecreasesWithNodes(t *testing.T) {
	s := NewStager()
	t64 := s.EpochShuffleTime(10*units.TB, 64, PartitionDataset)
	t512 := s.EpochShuffleTime(10*units.TB, 512, PartitionDataset)
	if t512 >= t64 {
		t.Fatalf("shuffle time should shrink with nodes: %v vs %v", t512, t64)
	}
}

// TestDegradedGPFSSlowsStaging pins the brownout model: a browned-out
// shared file system stretches GPFS-bound staging by ~1/factor and never
// speeds anything up; factor 1 is a no-op.
func TestDegradedGPFSSlowsStaging(t *testing.T) {
	s := NewStager()
	const dataset, nodes = 200 * units.TB, 2048
	clean := s.StagingTime(dataset, nodes, PartitionDataset)
	brown := s.Degraded(0.25).StagingTime(dataset, nodes, PartitionDataset)
	if brown <= clean {
		t.Fatalf("brownout staging %v not slower than clean %v", brown, clean)
	}
	if ratio := float64(brown) / float64(clean); ratio < 3.9 || ratio > 4.1 {
		t.Fatalf("quarter-bandwidth brownout stretched staging %.2fx, want ~4x", ratio)
	}
	if same := s.Degraded(1).StagingTime(dataset, nodes, PartitionDataset); same != clean {
		t.Fatalf("factor-1 brownout changed staging: %v vs %v", same, clean)
	}
}

func TestDegradedGPFSMonotone(t *testing.T) {
	s := NewStager()
	prev := units.Seconds(0)
	for _, f := range []float64{1, 0.8, 0.5, 0.2, 0.05} {
		tm := s.Degraded(f).StagingTime(100*units.TB, 1024, PartitionDataset)
		if tm < prev {
			t.Fatalf("worse brownout factor %v staged faster: %v < %v", f, tm, prev)
		}
		prev = tm
	}
}

func TestDegradedRejectsBadFactor(t *testing.T) {
	for _, f := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("brownout factor %v accepted", f)
				}
			}()
			NewGPFS().Degraded(f)
		}()
	}
}
