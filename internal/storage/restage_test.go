package storage

import (
	"testing"

	"summitscale/internal/units"
)

func TestStagingWithNoFailuresMatchesBase(t *testing.T) {
	s := NewStager()
	d := units.Bytes(100 * units.TB)
	base := s.StagingTime(d, 1024, PartitionDataset)
	if got := s.StagingTimeWithFailures(d, 1024, PartitionDataset, nil); got != base {
		t.Fatalf("failure-free staging %v != base %v", got, base)
	}
}

func TestFailureDuringStagingDelaysCompletion(t *testing.T) {
	s := NewStager()
	d := units.Bytes(100 * units.TB)
	const nodes = 1024
	base := s.StagingTime(d, nodes, PartitionDataset)
	mid := base / 2
	got := s.StagingTimeWithFailures(d, nodes, PartitionDataset, []units.Seconds{mid})
	if got <= base {
		t.Fatalf("mid-stage failure did not delay completion: %v vs %v", got, base)
	}
	if want := mid + s.ReStageTime(d, nodes, PartitionDataset); got != want {
		t.Fatalf("completion %v, want failure+restage %v", got, want)
	}
}

func TestFailureAfterStagingIgnored(t *testing.T) {
	s := NewStager()
	d := units.Bytes(100 * units.TB)
	base := s.StagingTime(d, 1024, PartitionDataset)
	got := s.StagingTimeWithFailures(d, 1024, PartitionDataset, []units.Seconds{base + 1})
	if got != base {
		t.Fatalf("post-stage failure changed completion: %v vs %v", got, base)
	}
}

func TestEarlyFailureHiddenUnderRemainingStage(t *testing.T) {
	s := NewStager()
	// Large node count: per-node share is tiny, so a re-stage beginning
	// at t=0+ finishes well before the aggregate-GPFS-bound completion.
	d := units.Bytes(500 * units.TB)
	const nodes = 4096
	base := s.StagingTime(d, nodes, PartitionDataset)
	if re := s.ReStageTime(d, nodes, PartitionDataset); re >= base {
		t.Skipf("re-stage %v not hidden by base %v on this shape", re, base)
	}
	got := s.StagingTimeWithFailures(d, nodes, PartitionDataset, []units.Seconds{0})
	if got != base {
		t.Fatalf("hidden re-stage still delayed completion: %v vs %v", got, base)
	}
}

func TestReplicateRestageDearerThanPartition(t *testing.T) {
	s := NewStager()
	d := units.Bytes(1 * units.TB) // fits one node's NVMe for replication
	rep := s.ReStageTime(d, 512, ReplicateDataset)
	part := s.ReStageTime(d, 512, PartitionDataset)
	if rep <= part {
		t.Fatalf("replicate re-stage %v not dearer than partition %v", rep, part)
	}
}
