package storage

import (
	"math/rand"
	"testing"

	"summitscale/internal/obs"
	"summitscale/internal/units"
)

func TestStagingWithNoFailuresMatchesBase(t *testing.T) {
	s := NewStager()
	d := units.Bytes(100 * units.TB)
	base := s.StagingTime(d, 1024, PartitionDataset)
	if got := s.StagingTimeWithFailures(d, 1024, PartitionDataset, nil); got != base {
		t.Fatalf("failure-free staging %v != base %v", got, base)
	}
}

func TestFailureDuringStagingDelaysCompletion(t *testing.T) {
	s := NewStager()
	d := units.Bytes(100 * units.TB)
	const nodes = 1024
	base := s.StagingTime(d, nodes, PartitionDataset)
	mid := base / 2
	got := s.StagingTimeWithFailures(d, nodes, PartitionDataset, []units.Seconds{mid})
	if got <= base {
		t.Fatalf("mid-stage failure did not delay completion: %v vs %v", got, base)
	}
	if want := mid + s.ReStageTime(d, nodes, PartitionDataset); got != want {
		t.Fatalf("completion %v, want failure+restage %v", got, want)
	}
}

func TestFailureAfterStagingIgnored(t *testing.T) {
	s := NewStager()
	d := units.Bytes(100 * units.TB)
	base := s.StagingTime(d, 1024, PartitionDataset)
	got := s.StagingTimeWithFailures(d, 1024, PartitionDataset, []units.Seconds{base + 1})
	if got != base {
		t.Fatalf("post-stage failure changed completion: %v vs %v", got, base)
	}
}

func TestEarlyFailureHiddenUnderRemainingStage(t *testing.T) {
	s := NewStager()
	// Large node count: per-node share is tiny, so a re-stage beginning
	// at t=0+ finishes well before the aggregate-GPFS-bound completion.
	d := units.Bytes(500 * units.TB)
	const nodes = 4096
	base := s.StagingTime(d, nodes, PartitionDataset)
	if re := s.ReStageTime(d, nodes, PartitionDataset); re >= base {
		t.Skipf("re-stage %v not hidden by base %v on this shape", re, base)
	}
	got := s.StagingTimeWithFailures(d, nodes, PartitionDataset, []units.Seconds{0})
	if got != base {
		t.Fatalf("hidden re-stage still delayed completion: %v vs %v", got, base)
	}
}

// TestShuffledFailuresOrderIndependent is the regression test for the
// order-dependence bug: completion grows monotonically while failures are
// admitted, so processing an early failure late could re-admit it. The
// result must match ascending order for any input permutation.
func TestShuffledFailuresOrderIndependent(t *testing.T) {
	s := NewStager()
	d := units.Bytes(100 * units.TB)
	const nodes = 1024
	base := s.StagingTime(d, nodes, PartitionDataset)
	// A mix of failures before, straddling, and after the stretched
	// completion — the shape where order used to change the answer.
	asc := []units.Seconds{base / 4, base / 2, base - 1, base + base/2, 2 * base}
	want := s.StagingTimeWithFailures(d, nodes, PartitionDataset, asc)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		shuffled := append([]units.Seconds(nil), asc...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		if got := s.StagingTimeWithFailures(d, nodes, PartitionDataset, shuffled); got != want {
			t.Fatalf("order %v gave %v, ascending gave %v", shuffled, got, want)
		}
	}
	// The input slice itself must not be reordered (sort works on a copy).
	rev := []units.Seconds{base / 2, base / 4}
	s.StagingTimeWithFailures(d, nodes, PartitionDataset, rev)
	if rev[0] != base/2 || rev[1] != base/4 {
		t.Fatalf("input slice was mutated: %v", rev)
	}
}

// TestObservedStagingEmitsSpans: the observed variant reports the
// stage-in span plus one re-stage span per admitted failure.
func TestObservedStagingEmitsSpans(t *testing.T) {
	s := NewStager()
	d := units.Bytes(100 * units.TB)
	const nodes = 1024
	base := s.StagingTime(d, nodes, PartitionDataset)
	ob := obs.New()
	got := s.ObservedStagingTimeWithFailures(ob, d, nodes, PartitionDataset,
		[]units.Seconds{base / 2, 10 * base})
	if want := s.StagingTimeWithFailures(d, nodes, PartitionDataset,
		[]units.Seconds{base / 2, 10 * base}); got != want {
		t.Fatalf("observed result %v != unobserved %v", got, want)
	}
	if ob.Metrics.Counter("storage.restage.count") != 1 {
		t.Fatalf("restage count = %d, want 1 (post-completion failure ignored)",
			ob.Metrics.Counter("storage.restage.count"))
	}
	// stage-in span + failure event + re-stage span.
	if ob.Trace.Len() != 3 {
		t.Fatalf("trace records = %d, want 3", ob.Trace.Len())
	}
}

func TestReplicateRestageDearerThanPartition(t *testing.T) {
	s := NewStager()
	d := units.Bytes(1 * units.TB) // fits one node's NVMe for replication
	rep := s.ReStageTime(d, 512, ReplicateDataset)
	part := s.ReStageTime(d, 512, PartitionDataset)
	if rep <= part {
		t.Fatalf("replicate re-stage %v not dearer than partition %v", rep, part)
	}
}
