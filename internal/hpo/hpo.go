// Package hpo implements evolutionary hyperparameter and topology search
// for neural networks — the method of Patton et al.'s 2018 Gordon Bell
// finalist (§IV-A.2, the MENNDL lineage of Young et al. [7]): a
// population of candidate network configurations is trained briefly and
// scored concurrently, with tournament selection, crossover, and mutation
// over the configuration space.
package hpo

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"summitscale/internal/autograd"
	"summitscale/internal/nn"
	"summitscale/internal/optim"
	"summitscale/internal/stats"
	"summitscale/internal/tensor"
)

// Genome is one candidate configuration.
type Genome struct {
	HiddenLayers int     // 1..MaxLayers
	Width        int     // units per hidden layer
	LearningRate float64 // log-uniform
	UseTanh      bool    // tanh vs relu
}

// Space bounds the search.
type Space struct {
	MaxLayers int
	MinWidth  int
	MaxWidth  int
	MinLR     float64
	MaxLR     float64
}

// DefaultSpace returns a compact space for MLP classifiers.
func DefaultSpace() Space {
	return Space{MaxLayers: 3, MinWidth: 4, MaxWidth: 64, MinLR: 1e-3, MaxLR: 1}
}

// random draws a genome uniformly (log-uniform for LR and width).
func (s Space) random(rng *stats.RNG) Genome {
	return Genome{
		HiddenLayers: rng.Intn(s.MaxLayers) + 1,
		Width:        logUniformInt(rng, s.MinWidth, s.MaxWidth),
		LearningRate: s.MinLR * math.Pow(s.MaxLR/s.MinLR, rng.Float64()),
		UseTanh:      rng.Bool(0.5),
	}
}

// mutate perturbs one field.
func (s Space) mutate(rng *stats.RNG, g Genome) Genome {
	switch rng.Intn(4) {
	case 0:
		g.HiddenLayers = rng.Intn(s.MaxLayers) + 1
	case 1:
		g.Width = clampInt(g.Width*(1+rng.Intn(3))/2, s.MinWidth, s.MaxWidth)
	case 2:
		f := 0.5 + rng.Float64()*1.5
		g.LearningRate = clampFloat(g.LearningRate*f, s.MinLR, s.MaxLR)
	default:
		g.UseTanh = !g.UseTanh
	}
	return g
}

// crossover mixes two genomes field-wise.
func crossover(rng *stats.RNG, a, b Genome) Genome {
	c := a
	if rng.Bool(0.5) {
		c.HiddenLayers = b.HiddenLayers
	}
	if rng.Bool(0.5) {
		c.Width = b.Width
	}
	if rng.Bool(0.5) {
		c.LearningRate = b.LearningRate
	}
	if rng.Bool(0.5) {
		c.UseTanh = b.UseTanh
	}
	return c
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampFloat(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Build constructs the MLP a genome describes.
func (g Genome) Build(rng *stats.RNG, inDim, classes int) *nn.Sequential {
	act := autograd.ReLU
	if g.UseTanh {
		act = autograd.Tanh
	}
	widths := []int{inDim}
	for i := 0; i < g.HiddenLayers; i++ {
		widths = append(widths, g.Width)
	}
	widths = append(widths, classes)
	return nn.NewMLP(rng, widths, act)
}

// String renders the genome.
func (g Genome) String() string {
	act := "relu"
	if g.UseTanh {
		act = "tanh"
	}
	return fmt.Sprintf("{layers=%d width=%d lr=%.3g act=%s}", g.HiddenLayers, g.Width, g.LearningRate, act)
}

// Task is the dataset a candidate is scored on.
type Task struct {
	TrainX *tensor.Tensor
	TrainY []int
	ValX   *tensor.Tensor
	ValY   []int
	// TrainSteps is the per-candidate training budget.
	TrainSteps int
}

// Evaluate trains the genome briefly and returns validation accuracy.
func Evaluate(seed uint64, g Genome, task Task) float64 {
	rng := stats.NewRNG(seed)
	m := g.Build(rng, task.TrainX.Dim(1), maxLabel(task.TrainY)+1)
	opt := optim.NewMomentumSGD(g.LearningRate, 0.9)
	x := autograd.Constant(task.TrainX)
	for step := 0; step < task.TrainSteps; step++ {
		nn.ZeroGrads(m)
		loss := autograd.SoftmaxCrossEntropy(m.Forward(x), task.TrainY)
		loss.Backward(nil)
		opt.Step(m.Params())
	}
	pred := m.Forward(autograd.Constant(task.ValX)).Data.ArgMaxRows()
	correct := 0
	for i, p := range pred {
		if p == task.ValY[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(task.ValY))
}

func maxLabel(ys []int) int {
	m := 0
	for _, y := range ys {
		if y > m {
			m = y
		}
	}
	return m
}

// Result is one scored candidate.
type Result struct {
	Genome Genome
	Score  float64
}

// Config parameterizes the search.
type Config struct {
	Population  int
	Generations int
	Elite       int
	TournamentK int
	// Workers bounds concurrent evaluations (the node-parallel dimension
	// of Patton et al.'s 4200-node run). 0 means population size.
	Workers int
}

// DefaultConfig returns a small search.
func DefaultConfig() Config {
	return Config{Population: 12, Generations: 5, Elite: 2, TournamentK: 3}
}

// Search runs the evolutionary search; candidate evaluations within a
// generation run concurrently. It returns the population of the last
// generation sorted best-first and the best score per generation.
func Search(rng *stats.RNG, space Space, cfg Config, task Task) ([]Result, []float64) {
	if cfg.Population < 2 {
		panic("hpo: population too small")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = cfg.Population
	}
	evalAll := func(genomes []Genome, gen int) []Result {
		out := make([]Result, len(genomes))
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, g := range genomes {
			wg.Add(1)
			go func(i int, g Genome) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				out[i] = Result{Genome: g, Score: Evaluate(uint64(1000*gen+i), g, task)}
			}(i, g)
		}
		wg.Wait()
		sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
		return out
	}

	genomes := make([]Genome, cfg.Population)
	for i := range genomes {
		genomes[i] = space.random(rng)
	}
	var best []float64
	var scored []Result
	for gen := 0; gen < cfg.Generations; gen++ {
		scored = evalAll(genomes, gen)
		best = append(best, scored[0].Score)
		next := make([]Genome, 0, cfg.Population)
		for e := 0; e < cfg.Elite && e < len(scored); e++ {
			next = append(next, scored[e].Genome)
		}
		for len(next) < cfg.Population {
			a := tournament(rng, scored, cfg.TournamentK)
			b := tournament(rng, scored, cfg.TournamentK)
			child := space.mutate(rng, crossover(rng, a.Genome, b.Genome))
			next = append(next, child)
		}
		genomes = next
	}
	return scored, best
}

func tournament(rng *stats.RNG, pop []Result, k int) Result {
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.Score > best.Score {
			best = c
		}
	}
	return best
}

func logUniformInt(rng *stats.RNG, lo, hi int) int {
	if lo >= hi {
		return lo
	}
	bits := 0
	for v := hi / lo; v > 0; v >>= 1 {
		bits++
	}
	n := lo << rng.Intn(bits)
	if n > hi {
		n = hi
	}
	return n
}
