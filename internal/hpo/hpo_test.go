package hpo

import (
	"math"
	"testing"

	"summitscale/internal/stats"
	"summitscale/internal/tensor"
)

// spiralTask builds a small two-class problem that a well-configured MLP
// solves but a badly configured one (wrong LR, too narrow) does not.
func spiralTask(seed uint64) Task {
	rng := stats.NewRNG(seed)
	mk := func(n int) (*tensor.Tensor, []int) {
		x := tensor.New(n, 2)
		y := make([]int, n)
		for i := 0; i < n; i++ {
			cls := i % 2
			r := 0.3 + rng.Float64()*0.7
			th := rng.Float64()*3 + float64(cls)*math.Pi
			x.Set(r*math.Cos(th+2*r)+rng.NormFloat64()*0.02, i, 0)
			x.Set(r*math.Sin(th+2*r)+rng.NormFloat64()*0.02, i, 1)
			y[i] = cls
		}
		return x, y
	}
	tx, ty := mk(64)
	vx, vy := mk(32)
	return Task{TrainX: tx, TrainY: ty, ValX: vx, ValY: vy, TrainSteps: 80}
}

func TestGenomeBuildShapes(t *testing.T) {
	g := Genome{HiddenLayers: 2, Width: 8, LearningRate: 0.1, UseTanh: true}
	m := g.Build(stats.NewRNG(1), 3, 4)
	// 3 hidden transitions + output: layers = HiddenLayers+1 dense layers.
	if len(m.Layers) != 3 {
		t.Fatalf("built %d layers", len(m.Layers))
	}
	if g.String() == "" {
		t.Fatal("empty genome string")
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	task := spiralTask(1)
	g := Genome{HiddenLayers: 1, Width: 8, LearningRate: 0.2, UseTanh: true}
	if Evaluate(7, g, task) != Evaluate(7, g, task) {
		t.Fatal("evaluation not deterministic")
	}
}

func TestEvaluateScoreRange(t *testing.T) {
	task := spiralTask(2)
	g := Genome{HiddenLayers: 1, Width: 4, LearningRate: 0.05, UseTanh: false}
	s := Evaluate(3, g, task)
	if s < 0 || s > 1 {
		t.Fatalf("score %v", s)
	}
}

func TestSearchImprovesOverGenerations(t *testing.T) {
	task := spiralTask(3)
	rng := stats.NewRNG(4)
	pop, best := Search(rng, DefaultSpace(), DefaultConfig(), task)
	if len(best) != DefaultConfig().Generations {
		t.Fatalf("best trajectory %v", best)
	}
	if best[len(best)-1] < best[0] {
		t.Fatalf("search regressed: %v", best)
	}
	// The final best configuration should comfortably beat chance.
	if pop[0].Score < 0.7 {
		t.Fatalf("best score %v (%v)", pop[0].Score, pop[0].Genome)
	}
	// Population sorted best-first.
	for i := 1; i < len(pop); i++ {
		if pop[i].Score > pop[i-1].Score {
			t.Fatal("population not sorted")
		}
	}
}

func TestSearchRespectsWorkerBound(t *testing.T) {
	task := spiralTask(5)
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Generations = 2
	_, best := Search(stats.NewRNG(6), DefaultSpace(), cfg, task)
	if len(best) != 2 {
		t.Fatalf("trajectory %v", best)
	}
}

func TestGenomesStayInSpace(t *testing.T) {
	space := DefaultSpace()
	rng := stats.NewRNG(7)
	g := space.random(rng)
	for i := 0; i < 200; i++ {
		g = space.mutate(rng, crossover(rng, g, space.random(rng)))
		if g.HiddenLayers < 1 || g.HiddenLayers > space.MaxLayers {
			t.Fatalf("layers out of space: %v", g)
		}
		if g.Width < space.MinWidth || g.Width > space.MaxWidth {
			t.Fatalf("width out of space: %v", g)
		}
		if g.LearningRate < space.MinLR || g.LearningRate > space.MaxLR {
			t.Fatalf("lr out of space: %v", g)
		}
	}
}

func TestTinyPopulationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Search(stats.NewRNG(1), DefaultSpace(), Config{Population: 1}, spiralTask(8))
}
