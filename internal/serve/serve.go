// Package serve is the surrogate-inference serving layer: "Summit as a
// service". The paper's workflows couple simulations to ML surrogates
// (§III-C, internal/surrogate), and Brewer et al. (*Scalable AI for
// Science*) name large-scale inference serving as a first-class method
// for leadership machines; MLPerf HPC argues such serving must be held
// to throughput/latency targets rather than one-off runs. This package
// provides the pieces and the measurement harness:
//
//   - a request router (router.go) that drives the existing surrogate
//     models (ridge / random forest) and an extracted-weight MLP through
//     the persistent worker pool (internal/parallel);
//   - dynamic micro-batching (batcher.go): batches close when they reach
//     MaxBatch or when the oldest member has waited MaxDelay on the
//     simulated clock — batch assembly is a pure function of the arrival
//     stream, never of worker scheduling, so responses and traces are
//     byte-identical at any inference-worker count;
//   - admission control (admission.go): bounded per-model queues with
//     typed rejection, plus a shed-load degradation policy that drops
//     bulk-tier requests before interactive latency collapses;
//   - per-model replica pools (replica.go) sized from the platform
//     registry and priced through internal/perf's roofline model, so
//     p50/p99 latencies are analytic functions of (platform, load);
//   - a seeded synthetic traffic generator (traffic.go): diurnal +
//     bursty load sampled from a population of millions of simulated
//     users, deterministic per seed.
//
// Everything runs on the simulated clock (internal/des); wall time never
// enters a report. Determinism rules match the rest of the repository:
// a Report is a pure function of (config, seed), and the inference
// kernels shard rows over the worker pool with disjoint writes, so the
// numeric outputs are bit-identical at any pool width.
package serve

import (
	"sort"

	"summitscale/internal/units"
)

// Tier classifies a request's latency sensitivity. The shed-load policy
// protects Interactive traffic by rejecting Bulk first.
type Tier int

const (
	// Interactive requests sit on a human or simulation critical path
	// (steering decisions, docking-score lookups mid-campaign).
	Interactive Tier = iota
	// Bulk requests are throughput work (offline rescoring sweeps); they
	// tolerate rejection and retry.
	Bulk
)

// String names the tier.
func (t Tier) String() string {
	if t == Interactive {
		return "interactive"
	}
	return "bulk"
}

// Request is one inference call.
type Request struct {
	// ID is unique within a workload; ties on Arrival break by ID so a
	// shuffled request slice always replays identically.
	ID      uint64
	Model   string
	Tier    Tier
	Arrival units.Seconds
	// Features is the model input row.
	Features []float64
}

// Response is one served prediction.
type Response struct {
	ID        uint64
	Model     string
	Tier      Tier
	Value     float64
	Arrival   units.Seconds
	Done      units.Seconds
	BatchSize int
	Replica   int
}

// Latency is the request's in-system time.
func (r Response) Latency() units.Seconds { return r.Done - r.Arrival }

// RejectCode is the typed reason a request was refused admission.
type RejectCode int

const (
	// RejectQueueFull: the model's bounded queue was at capacity.
	RejectQueueFull RejectCode = iota
	// RejectShed: the shed-load policy dropped a bulk request to protect
	// interactive latency under degraded capacity.
	RejectShed
	// RejectUnknownModel: no replica pool serves the requested model.
	RejectUnknownModel
)

// String names the rejection code.
func (c RejectCode) String() string {
	switch c {
	case RejectQueueFull:
		return "queue-full"
	case RejectShed:
		return "shed"
	default:
		return "unknown-model"
	}
}

// Rejection is one refused request.
type Rejection struct {
	ID    uint64
	Model string
	Tier  Tier
	Code  RejectCode
	At    units.Seconds
}

// quantile returns the q-quantile of a sorted ascending sample using the
// same nearest-rank rule as internal/obs, so serving reports and metrics
// summaries agree. An empty sample yields zero.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// sortRequests orders a workload canonically: by arrival time, ties by
// ID. Run sorts a copy of its input through this, which is what makes a
// shuffled request slice produce byte-identical responses and traces.
func sortRequests(reqs []Request) []Request {
	out := append([]Request(nil), reqs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Arrival != out[j].Arrival {
			return out[i].Arrival < out[j].Arrival
		}
		return out[i].ID < out[j].ID
	})
	return out
}
