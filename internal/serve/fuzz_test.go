package serve

import (
	"testing"

	"summitscale/internal/units"
)

// FuzzAdmissionQueue drives the admission ledger with an arbitrary
// offer/release program and checks its invariants: depth stays within
// [0, QueueCap], every offer is accounted exactly once (admitted, shed,
// or full), shedding only ever refuses Bulk traffic, and releases of at
// most the current depth never panic.
//
// Each op byte encodes one step: bit 0 selects offer-vs-release, bit 1
// selects the tier of an offered request, and the remaining bits perturb
// release sizes.
func FuzzAdmissionQueue(f *testing.F) {
	f.Add(uint8(4), uint8(2), []byte{0, 2, 0, 1, 2, 0, 1})
	f.Add(uint8(1), uint8(0), []byte{0, 0, 0, 1, 1})
	f.Add(uint8(16), uint8(8), []byte{})
	f.Add(uint8(0), uint8(255), []byte{0, 2, 1, 0, 2, 1, 255, 254})
	f.Fuzz(func(t *testing.T, cap8, shed8 uint8, ops []byte) {
		cfg := AdmissionConfig{QueueCap: int(cap8), ShedAt: int(shed8)}
		q := newAdmitQueue(cfg)
		if q.cfg.QueueCap < 1 {
			t.Fatalf("constructor left cap %d < 1", q.cfg.QueueCap)
		}
		offers, released := 0, 0
		var id uint64
		for _, op := range ops {
			if op&1 == 0 {
				id++
				offers++
				tier := Bulk
				if op&2 != 0 {
					tier = Interactive
				}
				rej := q.offer(Request{ID: id, Tier: tier}, units.Seconds(float64(id)))
				if rej != nil {
					if rej.Code == RejectShed && tier == Interactive {
						t.Fatalf("op %d: shed an Interactive request", id)
					}
					if rej.Code != RejectShed && rej.Code != RejectQueueFull {
						t.Fatalf("op %d: unexpected rejection code %v", id, rej.Code)
					}
					if rej.ID != id {
						t.Fatalf("op %d: rejection carries wrong id %d", id, rej.ID)
					}
				}
			} else {
				n := int(op>>2) % (q.depth + 1) // never over-release: that is a programming-error panic
				q.release(n)
				released += n
			}
			if q.depth < 0 || q.depth > q.cfg.QueueCap {
				t.Fatalf("depth %d outside [0, %d]", q.depth, q.cfg.QueueCap)
			}
			if q.peakDepth < q.depth {
				t.Fatalf("peak %d below current depth %d", q.peakDepth, q.depth)
			}
			if q.admitted+q.shed+q.full != offers {
				t.Fatalf("accounting leak: admitted %d + shed %d + full %d != offers %d",
					q.admitted, q.shed, q.full, offers)
			}
			if q.admitted-released != q.depth {
				t.Fatalf("depth %d != admitted %d - released %d", q.depth, q.admitted, released)
			}
		}
	})
}
