package serve

import (
	"fmt"
	"math"

	"summitscale/internal/nn"
	"summitscale/internal/parallel"
	"summitscale/internal/stats"
	"summitscale/internal/surrogate"
)

// Model is one servable surrogate. Implementations must make
// predictInto a pure, bit-deterministic function of the rows — each
// output element is written by exactly one pool chunk — so a batch
// predicted at any worker count yields identical bytes.
type Model interface {
	// Name is the routing key requests address.
	Name() string
	// FeatureDim is the expected input row width.
	FeatureDim() int
	// FlopsPerSample is the arithmetic cost of one prediction, for the
	// roofline service-time pricing.
	FlopsPerSample() float64
	// WeightBytes is the parameter traffic a batch streams once.
	WeightBytes() float64
	// BytesPerSample is the per-row activation/feature traffic.
	BytesPerSample() float64
	// PredictBatch predicts every row into out (len(out) == len(rows)),
	// sharding rows over the pool with at most workers participants
	// (workers <= 0 means the full pool width).
	PredictBatch(pool *parallel.WorkerPool, workers int, rows [][]float64, out []float64)
}

// batchGrain is the row-chunk size every model shards batches by. It
// depends only on the constant, never on pool width, so chunk boundaries
// — and therefore float evaluation order — are fixed for a given batch.
const batchGrain = 8

// RidgeModel serves a surrogate.Ridge (the BIC-selected linear surrogate
// of Liu et al.'s alloy workflow).
type RidgeModel struct {
	name  string
	model *surrogate.Ridge
}

// NewRidgeModel wraps a fitted ridge regression for serving.
func NewRidgeModel(name string, m *surrogate.Ridge) *RidgeModel {
	return &RidgeModel{name: name, model: m}
}

// Name implements Model.
func (m *RidgeModel) Name() string { return m.name }

// FeatureDim implements Model.
func (m *RidgeModel) FeatureDim() int { return len(m.model.Weights) - 1 }

// FlopsPerSample implements Model: one multiply-add per weight.
func (m *RidgeModel) FlopsPerSample() float64 { return 2 * float64(len(m.model.Weights)) }

// WeightBytes implements Model.
func (m *RidgeModel) WeightBytes() float64 { return 8 * float64(len(m.model.Weights)) }

// BytesPerSample implements Model: the feature row in and one value out.
func (m *RidgeModel) BytesPerSample() float64 { return 8 * float64(len(m.model.Weights)) }

// PredictBatch implements Model.
func (m *RidgeModel) PredictBatch(pool *parallel.WorkerPool, workers int, rows [][]float64, out []float64) {
	pool.RunRangeMax(workers, len(rows), batchGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = m.model.Predict(rows[i])
		}
	})
}

// ForestModel serves a surrogate.RandomForest (Glaser et al.'s
// binding-affinity scoring-function family).
type ForestModel struct {
	name   string
	model  *surrogate.RandomForest
	dim    int
	trees  float64
	depthF float64
}

// NewForestModel wraps a fitted random forest for serving. dim is the
// feature width the forest was trained on (trees don't record it).
func NewForestModel(name string, m *surrogate.RandomForest, dim int) *ForestModel {
	return &ForestModel{
		name: name, model: m, dim: dim,
		trees:  float64(len(m.Trees)),
		depthF: float64(m.MaxDepth),
	}
}

// Name implements Model.
func (m *ForestModel) Name() string { return m.name }

// FeatureDim implements Model.
func (m *ForestModel) FeatureDim() int { return m.dim }

// FlopsPerSample implements Model: one compare per level per tree plus
// the ensemble average.
func (m *ForestModel) FlopsPerSample() float64 { return m.trees*m.depthF + m.trees }

// WeightBytes implements Model: ~4 words per node over the full ensemble.
func (m *ForestModel) WeightBytes() float64 {
	return 32 * m.trees * (math.Exp2(m.depthF+1) - 1)
}

// BytesPerSample implements Model.
func (m *ForestModel) BytesPerSample() float64 { return 8 * float64(m.dim+1) }

// PredictBatch implements Model.
func (m *ForestModel) PredictBatch(pool *parallel.WorkerPool, workers int, rows [][]float64, out []float64) {
	pool.RunRangeMax(workers, len(rows), batchGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = m.model.Predict(rows[i])
		}
	})
}

// denseLayer is one extracted fully connected layer: w is out×in.
type denseLayer struct {
	w    [][]float64
	b    []float64
	relu bool
}

// MLPModel serves a feed-forward network with weights extracted from an
// internal/nn module into flat slices: inference needs no autograd graph,
// and each batch row runs through the persistent worker pool.
type MLPModel struct {
	name   string
	layers []denseLayer
	in     int
	flops  float64
	bytes  float64
}

// NewMLPModel builds a served MLP with the given hidden widths, weights
// drawn deterministically from seed via internal/nn's Xavier init. All
// hidden layers use ReLU; the output layer is linear with width 1.
func NewMLPModel(name string, seed uint64, widths []int) *MLPModel {
	rng := stats.NewRNG(seed)
	arch := append(append([]int{}, widths...), 1)
	seq := nn.NewMLP(rng, arch, nil)
	m := &MLPModel{name: name, in: widths[0]}
	params := seq.Params()
	// nn.NewMLP emits params pairwise (W then b per layer).
	for li := 0; li*2+1 < len(params); li++ {
		wv, bv := params[li*2].Value.Data, params[li*2+1].Value.Data
		in, out := arch[li], arch[li+1]
		layer := denseLayer{b: make([]float64, out), relu: li < len(arch)-2}
		layer.w = make([][]float64, out)
		for o := 0; o < out; o++ {
			layer.w[o] = make([]float64, in)
			for i := 0; i < in; i++ {
				layer.w[o][i] = wv.At(i, o)
			}
			layer.b[o] = bv.At(o)
		}
		m.layers = append(m.layers, layer)
		m.flops += 2 * float64(in) * float64(out)
		m.bytes += 8 * float64(in+1) * float64(out)
	}
	return m
}

// Name implements Model.
func (m *MLPModel) Name() string { return m.name }

// FeatureDim implements Model.
func (m *MLPModel) FeatureDim() int { return m.in }

// FlopsPerSample implements Model.
func (m *MLPModel) FlopsPerSample() float64 { return m.flops }

// WeightBytes implements Model.
func (m *MLPModel) WeightBytes() float64 { return m.bytes }

// BytesPerSample implements Model: widest activation in and out.
func (m *MLPModel) BytesPerSample() float64 {
	widest := m.in
	for _, l := range m.layers {
		if len(l.b) > widest {
			widest = len(l.b)
		}
	}
	return 16 * float64(widest)
}

// forwardRow evaluates one sample, ping-ponging between the caller's two
// scratch activation buffers (each sized to the widest layer).
func (m *MLPModel) forwardRow(row, bufA, bufB []float64) float64 {
	cur := bufA[:len(row)]
	copy(cur, row)
	spare := bufB
	for _, l := range m.layers {
		nxt := spare[:len(l.b)]
		for o := range l.w {
			s := l.b[o]
			w := l.w[o]
			for i, v := range cur {
				s += w[i] * v
			}
			if l.relu && s < 0 {
				s = 0
			}
			nxt[o] = s
		}
		cur, spare = nxt, cur[:cap(cur)]
	}
	return cur[0]
}

// PredictBatch implements Model.
func (m *MLPModel) PredictBatch(pool *parallel.WorkerPool, workers int, rows [][]float64, out []float64) {
	widest := m.in
	for _, l := range m.layers {
		if len(l.b) > widest {
			widest = len(l.b)
		}
	}
	pool.RunRangeMax(workers, len(rows), batchGrain, func(lo, hi int) {
		bufA := make([]float64, widest)
		bufB := make([]float64, widest)
		for i := lo; i < hi; i++ {
			out[i] = m.forwardRow(rows[i], bufA, bufB)
		}
	})
}

// FeatureDim is the shared input width of the default model fleet.
const defaultFeatureDim = 8

// DefaultModels builds the standard serving fleet, deterministically from
// seed: a BIC-selected ridge surrogate, a random-forest scoring function,
// and a small MLP — the three surrogate families the paper's workflows
// couple to simulations. The training sets are synthetic but seeded, so
// the fleet's weights (and therefore every served prediction) are a pure
// function of the seed.
func DefaultModels(seed uint64) []Model {
	rng := stats.NewRNG(seed)
	n, d := 256, defaultFeatureDim
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
		// A smooth nonlinear response with noise: enough structure that
		// all three families fit something meaningful.
		y[i] = 2*row[0] - row[1] + 0.5*row[2]*row[3] + math.Sin(row[4]) + 0.1*rng.NormFloat64()
	}
	ridge, _, err := surrogate.SelectByBIC(x, y, 1e-3)
	if err != nil {
		panic(fmt.Sprintf("serve: default ridge fit failed: %v", err))
	}
	forest := surrogate.FitForest(rng.Split(), x, y, 48, 6, 4)
	return []Model{
		NewRidgeModel("ridge", ridge),
		NewForestModel("forest", forest, d),
		NewMLPModel("mlp", rng.Uint64(), []int{d, 32, 16}),
	}
}
