package serve

import (
	"summitscale/internal/platform"
	"summitscale/internal/units"
)

// replicaPool tracks one model's serving replicas on the simulated
// clock. Dispatch is deterministic: the free replica with the lowest
// index wins, and closed batches wait in FIFO order when all replicas
// are busy or lost.
type replicaPool struct {
	// busyUntil[i] is when replica i finishes its current batch; zero or
	// past means free. A lost replica is marked with busyUntil = +inf.
	busyUntil []units.Seconds
	lost      []bool
	waiting   [][]Request // closed batches awaiting a free replica, FIFO

	started   int // batches dispatched into service
	lostCount int
}

func newReplicaPool(n int) *replicaPool {
	if n < 1 {
		n = 1
	}
	return &replicaPool{
		busyUntil: make([]units.Seconds, n),
		lost:      make([]bool, n),
	}
}

// free returns the lowest-index replica idle at time t, or -1.
func (p *replicaPool) free(t units.Seconds) int {
	for i, until := range p.busyUntil {
		if !p.lost[i] && until <= t {
			return i
		}
	}
	return -1
}

// alive reports how many replicas remain.
func (p *replicaPool) alive() int {
	n := 0
	for _, l := range p.lost {
		if !l {
			n++
		}
	}
	return n
}

// fail marks the lowest-index live replica lost (graceful drain: a busy
// replica finishes its in-flight batch first; the router re-checks the
// backlog at that completion). It reports whether a replica was lost.
func (p *replicaPool) fail() bool {
	for i, l := range p.lost {
		if !l {
			p.lost[i] = true
			p.lostCount++
			return true
		}
	}
	return false
}

// anyLost reports whether a replica is currently marked lost.
func (p *replicaPool) anyLost() bool {
	for _, l := range p.lost {
		if l {
			return true
		}
	}
	return false
}

// repair returns the lowest-index lost replica to service.
func (p *replicaPool) repair() bool {
	for i, l := range p.lost {
		if l {
			p.lost[i] = false
			return true
		}
	}
	return false
}

// ReplicasFor sizes one model's replica pool from the platform registry:
// the serving allocation is one node per 4096 (at least one — inference
// rides alongside the training campaign, it doesn't own the machine),
// every GPU on those nodes hosts a replica, and the GPUs divide evenly
// across the model fleet. CPU-only platforms serve one replica per
// allocated node.
func ReplicasFor(p platform.Platform, nModels int) int {
	if nModels < 1 {
		nModels = 1
	}
	allocNodes := p.Nodes / 4096
	if allocNodes < 1 {
		allocNodes = 1
	}
	perNode := p.Node.GPUs
	if perNode < 1 {
		perNode = 1
	}
	r := allocNodes * perNode / nModels
	if r < 1 {
		r = 1
	}
	return r
}
