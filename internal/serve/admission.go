package serve

import "summitscale/internal/units"

// AdmissionConfig bounds a model's in-system population (requests queued
// for batching plus batches queued for a replica, not yet in service).
type AdmissionConfig struct {
	// QueueCap is the hard bound; arrivals beyond it get RejectQueueFull.
	QueueCap int
	// ShedAt is the depth at which the shed-load policy starts refusing
	// Bulk-tier requests (RejectShed) to keep interactive latency bounded
	// under degraded capacity. Zero disables shedding.
	ShedAt int
}

// DefaultAdmission returns the standard bounds for a replica pool of the
// given width: capacity for maxBatch requests per replica twice over,
// shedding at half of that.
func DefaultAdmission(replicas, maxBatch int) AdmissionConfig {
	cap := 2 * replicas * maxBatch
	if cap < 8 {
		cap = 8
	}
	return AdmissionConfig{QueueCap: cap, ShedAt: cap / 2}
}

// admitQueue is one model's bounded admission ledger. It is a plain
// deterministic data structure driven by the router's event loop; the
// fuzz target (FuzzAdmissionQueue) exercises its invariants directly:
// depth never exceeds cap, FIFO order is preserved, and every request is
// accounted exactly once as admitted or rejected.
type admitQueue struct {
	cfg   AdmissionConfig
	depth int // requests admitted but not yet in service

	// Book-keeping the report reads.
	requests  int // arrivals routed here (counted by the router)
	admitted  int
	shed      int
	full      int
	peakDepth int
}

// newAdmitQueue validates and builds a ledger.
func newAdmitQueue(cfg AdmissionConfig) *admitQueue {
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 1
	}
	if cfg.ShedAt < 0 {
		cfg.ShedAt = 0
	}
	return &admitQueue{cfg: cfg}
}

// offer decides one arrival. It returns nil on admission (the caller owns
// the request now and must later release it when service starts) or a
// typed rejection.
func (q *admitQueue) offer(r Request, now units.Seconds) *Rejection {
	if q.depth >= q.cfg.QueueCap {
		q.full++
		return &Rejection{ID: r.ID, Model: r.Model, Tier: r.Tier, Code: RejectQueueFull, At: now}
	}
	if q.cfg.ShedAt > 0 && q.depth >= q.cfg.ShedAt && r.Tier == Bulk {
		q.shed++
		return &Rejection{ID: r.ID, Model: r.Model, Tier: r.Tier, Code: RejectShed, At: now}
	}
	q.depth++
	q.admitted++
	if q.depth > q.peakDepth {
		q.peakDepth = q.depth
	}
	return nil
}

// release retires n admitted requests from the ledger when their batch
// enters service. It panics on over-release — that would mean the router
// double-dispatched a batch.
func (q *admitQueue) release(n int) {
	if n > q.depth {
		panic("serve: admission ledger over-released")
	}
	q.depth -= n
}
