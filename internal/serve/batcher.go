package serve

import "summitscale/internal/units"

// BatchConfig shapes the dynamic micro-batcher.
type BatchConfig struct {
	// MaxBatch closes a batch by size.
	MaxBatch int
	// MaxDelay closes a batch by deadline: no admitted request waits in
	// the open batch longer than this before dispatch is attempted.
	MaxDelay units.Seconds
}

// DefaultBatch is the standard micro-batching policy: up to 64 requests
// or 20 simulated milliseconds, whichever comes first.
func DefaultBatch() BatchConfig {
	return BatchConfig{MaxBatch: 64, MaxDelay: 20e-3}
}

// batcher accumulates admitted requests for one model and closes batches
// by size or deadline. It is a pure function of the admitted-request
// sequence on the simulated clock: batch membership and order depend only
// on (arrival order, MaxBatch, MaxDelay), never on worker scheduling —
// the property the cross-worker determinism suite pins.
type batcher struct {
	cfg     BatchConfig
	pending []Request
	// epoch guards deadline timers: closing a batch bumps it, so a timer
	// scheduled for an already-closed batch expires as a no-op.
	epoch int
}

func newBatcher(cfg BatchConfig) *batcher {
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 1
	}
	if cfg.MaxDelay < 0 {
		cfg.MaxDelay = 0
	}
	return &batcher{cfg: cfg}
}

// add appends an admitted request to the open batch. It returns
// (closed, deadline): closed is the full batch when this arrival filled
// it (nil otherwise), and deadline is true when the caller must schedule
// a deadline timer for the batch this request just opened.
func (b *batcher) add(r Request) (closed []Request, deadline bool) {
	b.pending = append(b.pending, r)
	if len(b.pending) >= b.cfg.MaxBatch {
		return b.close(), false
	}
	return nil, len(b.pending) == 1
}

// close seals and returns the open batch (nil when empty).
func (b *batcher) close() []Request {
	if len(b.pending) == 0 {
		return nil
	}
	batch := b.pending
	b.pending = nil
	b.epoch++
	return batch
}

// expire handles a deadline timer for the given epoch: it closes the open
// batch only when no size-triggered close intervened since the timer was
// scheduled.
func (b *batcher) expire(epoch int) []Request {
	if epoch != b.epoch {
		return nil
	}
	return b.close()
}
