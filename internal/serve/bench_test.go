package serve

import (
	"testing"

	"summitscale/internal/parallel"
	"summitscale/internal/platform"
	"summitscale/internal/stats"
)

// BenchmarkServeHotPath measures the inference hot path the serving floor
// pins: one 256-row batch through the forest model per op ("batched")
// versus 256 single-row calls ("unbatched"). At >= 4 cores the batched
// path must be at least 2x faster per row — it amortizes dispatch and
// parallelizes across rows, while single-row calls can do neither.
func BenchmarkServeHotPath(b *testing.B) {
	var m Model
	for _, c := range DefaultModels(7) {
		if c.Name() == "forest" {
			m = c
		}
	}
	if m == nil {
		b.Fatal("forest model missing from default fleet")
	}
	rng := stats.NewRNG(1)
	const rows = 256
	x := make([][]float64, rows)
	for i := range x {
		row := make([]float64, m.FeatureDim())
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
	}
	out := make([]float64, rows)
	pool := parallel.Shared()
	w := pool.Workers()

	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.PredictBatch(pool, w, x, out)
		}
	})
	b.Run("unbatched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < rows; j++ {
				m.PredictBatch(pool, w, x[j:j+1], out[j:j+1])
			}
		}
	})
}

// BenchmarkServeRun measures a full serving simulation of the test
// workload — admission, batching, dispatch, pricing, and inference — per
// op, the end-to-end cost the S-series experiment pays.
func BenchmarkServeRun(b *testing.B) {
	p := platform.MustLookup("summit")
	models := DefaultModels(7)
	spec := testTraffic()
	reqs, err := spec.Generate(42, models)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Platform: p, Models: models, Horizon: spec.Horizon}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, reqs); err != nil {
			b.Fatal(err)
		}
	}
}
