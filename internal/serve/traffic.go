package serve

import (
	"fmt"
	"math"
	"sort"

	"summitscale/internal/stats"
	"summitscale/internal/units"
)

// Burst is a transient load spike multiplying the arrival rate.
type Burst struct {
	At     units.Seconds
	For    units.Seconds
	Factor float64
}

// TrafficSpec parameterizes the synthetic workload: a large simulated
// user population whose aggregate request stream follows a diurnal curve
// with superimposed bursts. Sample > 1 serves a deterministic 1-in-Sample
// thinning of the population's stream, for configurations whose full
// request volume would swamp a discrete-event loop.
type TrafficSpec struct {
	// Users is the simulated population size (informational + rate basis).
	Users int
	// RequestsPerUserDay is each user's mean daily request count.
	RequestsPerUserDay float64
	// Sample keeps 1 request in Sample (>= 1) from the population stream.
	Sample int
	// Horizon is the simulated serving window.
	Horizon units.Seconds
	// DayLength is the diurnal period (compressed days keep experiment
	// horizons short); zero disables the diurnal component.
	DayLength units.Seconds
	// DiurnalAmp in [0,1) scales the sinusoidal day/night swing.
	DiurnalAmp float64
	// Bursts are transient rate spikes (product of overlapping factors).
	Bursts []Burst
	// InteractiveFrac is the probability a request is Interactive.
	InteractiveFrac float64
}

// DefaultTraffic is the standard serving workload: one million simulated
// users issuing ~21.6 requests/day each (250 req/s aggregate), served in
// full (Sample 1) over a one-minute window spanning one compressed
// diurnal cycle with two bursts — enough load that micro-batching is the
// difference between absorbing the bursts and collapsing. The window is
// deliberately short: the dynamics are set by the arrival *rates* against
// replica capacity, not by how long the process runs, and the experiment
// registry replays this workload several times per full run.
func DefaultTraffic() TrafficSpec {
	return TrafficSpec{
		Users:              1_000_000,
		RequestsPerUserDay: 21.6, // 1e6 users x 21.6/day = 250 req/s aggregate
		Sample:             1,
		Horizon:            units.Minute,
		DayLength:          units.Minute,
		DiurnalAmp:         0.6,
		// Both bursts ride the rising half of the diurnal cycle (sin > 0
		// for the first half-minute), so their factors compound with the
		// day-peak rather than cancelling into the overnight trough.
		Bursts: []Burst{
			{At: 10, For: 10, Factor: 2.5},
			{At: 24, For: 8, Factor: 4},
		},
		InteractiveFrac: 0.35,
	}
}

// MeanRPS is the population's mean aggregate request rate (before
// sampling, without bursts).
func (s TrafficSpec) MeanRPS() float64 {
	return float64(s.Users) * s.RequestsPerUserDay / float64(units.Day)
}

// sampledMeanRate is the simulated stream's mean arrival rate.
func (s TrafficSpec) sampledMeanRate() float64 {
	sample := s.Sample
	if sample < 1 {
		sample = 1
	}
	return s.MeanRPS() / float64(sample)
}

// RateAt returns the instantaneous sampled arrival rate at time t:
// diurnal curve times every active burst factor.
func (s TrafficSpec) RateAt(t units.Seconds) float64 {
	rate := s.sampledMeanRate()
	if s.DayLength > 0 && s.DiurnalAmp > 0 {
		rate *= 1 + s.DiurnalAmp*math.Sin(2*math.Pi*float64(t)/float64(s.DayLength))
	}
	for _, b := range s.Bursts {
		if t >= b.At && t < b.At+b.For && b.Factor > 0 {
			rate *= b.Factor
		}
	}
	return rate
}

// peakRate bounds RateAt over the horizon, for thinning.
func (s TrafficSpec) peakRate() float64 {
	rate := s.sampledMeanRate() * (1 + s.DiurnalAmp)
	worst := 1.0
	for _, b := range s.Bursts {
		if b.Factor > worst {
			worst = b.Factor
		}
	}
	return rate * worst
}

// Generate samples the workload at the given seed across the model
// fleet. Arrivals come from an inhomogeneous Poisson process (thinning
// against the peak rate); each request's model, tier, and features draw
// from a per-request RNG derived from (seed, ID), so the content of
// request k is independent of how many requests precede it. The returned
// slice is in arrival order.
func (s TrafficSpec) Generate(seed uint64, models []Model) ([]Request, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("serve: traffic needs at least one model")
	}
	if s.Horizon <= 0 {
		return nil, fmt.Errorf("serve: traffic horizon must be positive, got %v", float64(s.Horizon))
	}
	peak := s.peakRate()
	if !(peak > 0) || math.IsInf(peak, 0) || math.IsNaN(peak) {
		return nil, fmt.Errorf("serve: traffic peak rate must be positive and finite, got %v", peak)
	}
	arrivalRNG := stats.NewRNG(seed)
	var reqs []Request
	var id uint64
	for t := units.Seconds(0); ; {
		t += units.Seconds(arrivalRNG.ExpFloat64() / peak)
		if t >= s.Horizon {
			break
		}
		if arrivalRNG.Float64()*peak > s.RateAt(t) {
			continue // thinned: the instantaneous rate is below peak here
		}
		id++
		rng := stats.NewRNG(seed ^ (id * 0x9e3779b97f4a7c15))
		m := models[rng.Intn(len(models))]
		tier := Bulk
		if rng.Float64() < s.InteractiveFrac {
			tier = Interactive
		}
		features := make([]float64, m.FeatureDim())
		for j := range features {
			features[j] = rng.NormFloat64()
		}
		reqs = append(reqs, Request{
			ID: id, Model: m.Name(), Tier: tier, Arrival: t, Features: features,
		})
	}
	return reqs, nil
}

// Census summarizes a workload for reports.
func Census(reqs []Request) string {
	perModel := map[string]int{}
	interactive := 0
	for _, r := range reqs {
		perModel[r.Model]++
		if r.Tier == Interactive {
			interactive++
		}
	}
	names := make([]string, 0, len(perModel))
	for n := range perModel {
		names = append(names, n)
	}
	sort.Strings(names)
	out := fmt.Sprintf("%d requests (%d interactive, %d bulk)", len(reqs), interactive, len(reqs)-interactive)
	for _, n := range names {
		out += fmt.Sprintf(", %s %d", n, perModel[n])
	}
	return out
}
