package serve

import (
	"summitscale/internal/perf"
	"summitscale/internal/platform"
	"summitscale/internal/units"
)

// Pricer converts (model, batch size) into an analytic service time via
// the device roofline — §VI-B's "attainable = min(peak, intensity × BW)"
// model applied to inference. Micro-batching pays because a batch streams
// the model's weights once: arithmetic intensity grows with batch size,
// so per-sample time falls until the kernel goes compute-bound, exactly
// the Brewer et al. batching argument.
type Pricer struct {
	// Roofline is the serving device's performance envelope.
	Roofline perf.Roofline
	// Launch is the fixed per-batch dispatch overhead (request
	// marshalling, kernel launch, PCIe staging) — the term batching
	// amortizes.
	Launch units.Seconds
	// PerReq is the per-request host-side cost (deserialization, feature
	// assembly, response framing) paid once per row regardless of
	// batching; it bounds a replica's sustainable throughput.
	PerReq units.Seconds
	// RTT is the one-way network transit added to every response,
	// inflated by the link factor while flap windows are active.
	RTT units.Seconds
}

// PricerFor derives the serving price model from a platform: the GPU
// roofline, a fixed 5 ms dispatch overhead per batch, 0.5 ms of host-side
// work per request, and the machine's network latency per response hop.
func PricerFor(p platform.Platform) Pricer {
	return Pricer{
		Roofline: p.Roofline(),
		Launch:   5e-3,
		PerReq:   0.5e-3,
		RTT:      p.NetworkLatency,
	}
}

// Intensity returns the arithmetic intensity (flops/byte) of one batched
// inference call: the weights stream once, activations per row.
func (pr Pricer) Intensity(m Model, batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	flops := float64(batch) * m.FlopsPerSample()
	bytes := m.WeightBytes() + float64(batch)*m.BytesPerSample()
	return flops / bytes
}

// ServiceTime prices one batch on a replica: launch overhead, per-request
// host work, plus the roofline-attainable time for the batch's flops.
func (pr Pricer) ServiceTime(m Model, batch int) units.Seconds {
	if batch < 1 {
		batch = 1
	}
	flops := float64(batch) * m.FlopsPerSample()
	rate := pr.Roofline.Attainable(pr.Intensity(m, batch))
	return pr.Launch + units.Seconds(batch)*pr.PerReq + units.Seconds(flops/float64(rate))
}

// PerSample is the amortized per-request service time at a batch size.
func (pr Pricer) PerSample(m Model, batch int) units.Seconds {
	if batch < 1 {
		batch = 1
	}
	return pr.ServiceTime(m, batch) / units.Seconds(batch)
}

// Amortization is the analytic batching win: per-sample time unbatched
// over per-sample time at the given batch size. This is the quantity the
// ServeHotPath floor (batched ≥ 2× unbatched) measures empirically.
func (pr Pricer) Amortization(m Model, batch int) float64 {
	return float64(pr.PerSample(m, 1)) / float64(pr.PerSample(m, batch))
}
