package serve

import (
	"fmt"
	"sort"
	"strings"

	"summitscale/internal/des"
	"summitscale/internal/obs"
	"summitscale/internal/parallel"
	"summitscale/internal/platform"
	"summitscale/internal/units"
)

// Config assembles one serving run. The zero value of most fields selects
// a sensible default; Platform and Models are required.
type Config struct {
	// Platform sizes replica pools and prices service times.
	Platform platform.Platform
	// Models is the fleet; requests route by Model name.
	Models []Model
	// Batch is the micro-batching policy (zero MaxBatch selects
	// DefaultBatch).
	Batch BatchConfig
	// Admission bounds each model's queue (zero QueueCap selects
	// DefaultAdmission for the resolved replica count). To disable
	// shedding, set QueueCap explicitly and leave ShedAt zero.
	Admission AdmissionConfig
	// Replicas per model; zero selects ReplicasFor(Platform, len(Models)).
	Replicas int
	// Workers caps inference-kernel parallelism (the -j knob). It cannot
	// change results: kernels write disjoint output rows through
	// RunRangeMax. Zero uses the pool's full width.
	Workers int
	// Horizon, when positive, is the denominator for throughput; zero
	// falls back to the last completion time.
	Horizon units.Seconds
	// Pricer overrides the platform-derived price model.
	Pricer *Pricer
	// Pool runs inference kernels; nil uses parallel.Shared().
	Pool *parallel.WorkerPool
	// Obs receives spans, queue gauges, and latency series; nil is a
	// no-op.
	Obs *obs.Observer

	// LinkFactorAt, when set, returns the interconnect health factor in
	// (0, 1] at a simulated time (chaos link-flap threading): service and
	// transit times divide by it.
	LinkFactorAt func(units.Seconds) float64
	// ReplicaFails are times at which one live replica is lost (each event
	// drains gracefully: an in-flight batch completes first). Losses
	// spread across models, hitting the model with the most live replicas.
	ReplicaFails []units.Seconds
	// ReplicaRepairs are times at which one lost replica returns, to the
	// model with the fewest live replicas.
	ReplicaRepairs []units.Seconds
}

// ModelStats is one model's ledger in a Report.
type ModelStats struct {
	Name         string
	Replicas     int
	ReplicasLost int

	Requests int // routed to this model
	Admitted int
	Shed     int // Bulk requests refused by the shed policy
	Full     int // requests refused queue-full
	Served   int
	Unserved int // admitted but never completed (capacity lost)

	Batches   int
	MeanBatch float64
	MaxBatch  int
	PeakQueue int

	P50, P99, Max units.Seconds // served latency quantiles
	// AnalyticP50/P99 are the queueing-free roofline estimates: half
	// (resp. full) batch delay plus the priced service time at the mean
	// (resp. largest) observed batch, plus transit.
	AnalyticP50, AnalyticP99 units.Seconds
	// Amortization is the analytic per-sample speedup at MaxBatch.
	Amortization float64
}

// Report is the deterministic outcome of a serving run: a pure function
// of (Config, request stream), byte-identical at any worker count.
type Report struct {
	Platform string
	Workers  int
	Replicas int
	Horizon  units.Seconds

	Requests int
	Served   int
	Rejected int
	Unserved int

	InteractiveP50, InteractiveP99 units.Seconds
	BulkP50, BulkP99               units.Seconds
	MeanBatch                      float64
	Throughput                     float64 // served requests per simulated second
	Checksum                       float64 // sum of response values: pins inference output

	Models     []ModelStats
	Responses  []Response
	Rejections []Rejection
}

// modelState is the router's per-model runtime.
type modelState struct {
	m        Model
	admit    *admitQueue
	batch    *batcher
	replicas *replicaPool

	latencies  []float64
	batchSizes []int
	served     int
}

// Run drives the request stream through admission, micro-batching, and
// replica dispatch on the simulated clock, running real inference kernels
// for every served batch. Requests are sorted by (Arrival, ID) first, so
// the outcome is independent of input order; the event loop itself is
// single-threaded, so it is independent of -j by construction.
func Run(cfg Config, reqs []Request) (*Report, error) {
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("serve: config needs at least one model")
	}
	if cfg.Batch.MaxBatch == 0 {
		cfg.Batch = DefaultBatch()
	}
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = ReplicasFor(cfg.Platform, len(cfg.Models))
	}
	if cfg.Admission.QueueCap == 0 {
		cfg.Admission = DefaultAdmission(replicas, cfg.Batch.MaxBatch)
	}
	pricer := PricerFor(cfg.Platform)
	if cfg.Pricer != nil {
		pricer = *cfg.Pricer
	}
	pool := cfg.Pool
	if pool == nil {
		pool = parallel.Shared()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = pool.Workers()
	}
	link := cfg.LinkFactorAt
	linkAt := func(t units.Seconds) float64 {
		if link == nil {
			return 1
		}
		f := link(t)
		if f < 0.01 {
			f = 0.01
		}
		if f > 1 {
			f = 1
		}
		return f
	}
	o := cfg.Obs

	states := make([]*modelState, len(cfg.Models))
	byName := make(map[string]int, len(cfg.Models))
	for i, m := range cfg.Models {
		if _, dup := byName[m.Name()]; dup {
			return nil, fmt.Errorf("serve: duplicate model name %q", m.Name())
		}
		byName[m.Name()] = i
		states[i] = &modelState{
			m:        m,
			admit:    newAdmitQueue(cfg.Admission),
			batch:    newBatcher(cfg.Batch),
			replicas: newReplicaPool(replicas),
		}
	}

	rep := &Report{
		Platform: cfg.Platform.Name,
		Workers:  workers,
		Replicas: replicas,
		Requests: len(reqs),
		// Most requests get served; presizing keeps the hot loop free of
		// growslice churn.
		Responses: make([]Response, 0, len(reqs)),
	}

	sorted := sortRequests(reqs)
	sim := des.New()

	// start services a batch on a replica: releases the admission ledger,
	// runs the real inference kernel, and schedules completion at the
	// roofline-priced service time (inflated while links are degraded).
	var drain func(s *des.Sim, mi int)
	start := func(s *des.Sim, mi, replica int, batch []Request) {
		st := states[mi]
		now := units.Seconds(s.Now())
		st.admit.release(len(batch))
		if o != nil {
			o.Set("serve.queue."+st.m.Name(), float64(st.admit.depth))
		}
		rows := make([][]float64, len(batch))
		for i, r := range batch {
			rows[i] = r.Features
		}
		out := make([]float64, len(batch))
		st.m.PredictBatch(pool, workers, rows, out)
		svc := pricer.ServiceTime(st.m, len(batch)) / units.Seconds(linkAt(now))
		done := now + svc
		st.replicas.busyUntil[replica] = done
		st.replicas.started++
		st.batchSizes = append(st.batchSizes, len(batch))
		// The obs layer is nil-safe, but its labels are built at the call
		// site; guarding keeps the unobserved hot path allocation-free.
		if o != nil {
			o.Observe("serve.batch.size", float64(len(batch)))
			o.Span("serve/"+st.m.Name(), "serve", fmt.Sprintf("batch/%d", len(batch)), now, svc,
				obs.Num("rows", float64(len(batch))), obs.Num("replica", float64(replica)))
		}
		bcopy := batch
		s.At(float64(done), func(s *des.Sim) {
			rtt := pricer.RTT / units.Seconds(linkAt(done))
			for i, rq := range bcopy {
				resp := Response{
					ID: rq.ID, Model: rq.Model, Tier: rq.Tier, Value: out[i],
					Arrival: rq.Arrival, Done: done + rtt,
					BatchSize: len(bcopy), Replica: replica,
				}
				rep.Responses = append(rep.Responses, resp)
				rep.Checksum += resp.Value
				lat := float64(resp.Latency())
				st.latencies = append(st.latencies, lat)
				st.served++
				if o != nil {
					o.Observe("serve.latency_ms."+rq.Tier.String(), lat*1e3)
					o.Span("serve/"+rq.Model+"/req", "serve", rq.Tier.String(), rq.Arrival, resp.Done-rq.Arrival,
						obs.Num("id", float64(rq.ID)), obs.Num("batch", float64(len(bcopy))))
				}
			}
			drain(s, mi)
		})
	}
	drain = func(s *des.Sim, mi int) {
		st := states[mi]
		now := units.Seconds(s.Now())
		for len(st.replicas.waiting) > 0 {
			r := st.replicas.free(now)
			if r < 0 {
				return
			}
			batch := st.replicas.waiting[0]
			st.replicas.waiting = st.replicas.waiting[1:]
			start(s, mi, r, batch)
		}
	}
	dispatch := func(s *des.Sim, mi int, batch []Request) {
		states[mi].replicas.waiting = append(states[mi].replicas.waiting, batch)
		drain(s, mi)
	}

	for _, r := range sorted {
		r := r
		sim.At(float64(r.Arrival), func(s *des.Sim) {
			now := units.Seconds(s.Now())
			mi, ok := byName[r.Model]
			if !ok {
				rep.Rejections = append(rep.Rejections, Rejection{
					ID: r.ID, Model: r.Model, Tier: r.Tier, Code: RejectUnknownModel, At: now,
				})
				o.Inc("serve.reject.unknown_model")
				return
			}
			st := states[mi]
			st.admit.requests++
			if o != nil {
				o.Inc("serve.requests")
			}
			if rej := st.admit.offer(r, now); rej != nil {
				rep.Rejections = append(rep.Rejections, *rej)
				if o != nil {
					o.Inc("serve.reject." + rej.Code.String())
				}
				return
			}
			if o != nil {
				o.Set("serve.queue."+r.Model, float64(st.admit.depth))
			}
			closed, deadline := st.batch.add(r)
			if closed != nil {
				dispatch(s, mi, closed)
				return
			}
			if deadline {
				epoch := st.batch.epoch
				s.At(float64(now+st.batch.cfg.MaxDelay), func(s *des.Sim) {
					if b := st.batch.expire(epoch); b != nil {
						dispatch(s, mi, b)
					}
				})
			}
		})
	}

	// Chaos threading: replica losses hit the model with the most live
	// replicas (ties to the lowest model index), repairs return capacity
	// to the model with the fewest.
	for _, t := range cfg.ReplicaFails {
		sim.At(float64(t), func(s *des.Sim) {
			best, most := -1, -1
			for i, st := range states {
				if a := st.replicas.alive(); a > most && a > 0 {
					best, most = i, a
				}
			}
			if best >= 0 {
				states[best].replicas.fail()
				o.Inc("serve.replica.lost")
				o.Set("serve.replicas."+states[best].m.Name(), float64(states[best].replicas.alive()))
			}
		})
	}
	for _, t := range cfg.ReplicaRepairs {
		sim.At(float64(t), func(s *des.Sim) {
			best, fewest := -1, replicas+1
			for i, st := range states {
				if st.replicas.lostCount > 0 && st.replicas.alive() < fewest && st.replicas.anyLost() {
					best, fewest = i, st.replicas.alive()
				}
			}
			if best >= 0 {
				states[best].replicas.repair()
				o.Inc("serve.replica.repaired")
				o.Set("serve.replicas."+states[best].m.Name(), float64(states[best].replicas.alive()))
				drain(s, best)
			}
		})
	}

	maxEvents := 8*len(sorted) + 4*(len(cfg.ReplicaFails)+len(cfg.ReplicaRepairs)) + 1024
	end := units.Seconds(sim.Run(maxEvents))
	if sim.Pending() > 0 {
		return nil, fmt.Errorf("serve: event budget exhausted with %d events pending", sim.Pending())
	}

	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = end
	}
	rep.Horizon = horizon
	finish(rep, states, pricer, cfg.Batch)
	return rep, nil
}

// finish folds per-model state into the report's summary fields.
func finish(rep *Report, states []*modelState, pricer Pricer, bc BatchConfig) {
	var interactive, bulk []float64
	for _, r := range rep.Responses {
		lat := float64(r.Latency())
		if r.Tier == Interactive {
			interactive = append(interactive, lat)
		} else {
			bulk = append(bulk, lat)
		}
	}
	sort.Float64s(interactive)
	sort.Float64s(bulk)
	rep.InteractiveP50 = units.Seconds(quantile(interactive, 0.50))
	rep.InteractiveP99 = units.Seconds(quantile(interactive, 0.99))
	rep.BulkP50 = units.Seconds(quantile(bulk, 0.50))
	rep.BulkP99 = units.Seconds(quantile(bulk, 0.99))

	totalBatches, totalBatched := 0, 0
	for _, st := range states {
		ms := ModelStats{
			Name:         st.m.Name(),
			Replicas:     len(st.replicas.busyUntil),
			ReplicasLost: st.replicas.lostCount,
			Requests:     st.admit.requests,
			Admitted:     st.admit.admitted,
			Shed:         st.admit.shed,
			Full:         st.admit.full,
			Served:       st.served,
			Unserved:     st.admit.admitted - st.served,
			Batches:      len(st.batchSizes),
			PeakQueue:    st.admit.peakDepth,
			Amortization: pricer.Amortization(st.m, bc.MaxBatch),
		}
		maxB := 0
		for _, b := range st.batchSizes {
			totalBatched += b
			if b > maxB {
				maxB = b
			}
		}
		ms.MaxBatch = maxB
		if len(st.batchSizes) > 0 {
			sum := 0
			for _, b := range st.batchSizes {
				sum += b
			}
			ms.MeanBatch = float64(sum) / float64(len(st.batchSizes))
		}
		totalBatches += len(st.batchSizes)
		sort.Float64s(st.latencies)
		ms.P50 = units.Seconds(quantile(st.latencies, 0.50))
		ms.P99 = units.Seconds(quantile(st.latencies, 0.99))
		if n := len(st.latencies); n > 0 {
			ms.Max = units.Seconds(st.latencies[n-1])
		}
		meanB := ms.MeanBatch
		if meanB < 1 {
			meanB = 1
		}
		ms.AnalyticP50 = bc.MaxDelay/2 + pricer.ServiceTime(st.m, int(meanB+0.5)) + pricer.RTT
		analyticMax := maxB
		if analyticMax < 1 {
			analyticMax = 1
		}
		ms.AnalyticP99 = bc.MaxDelay + pricer.ServiceTime(st.m, analyticMax) + pricer.RTT
		rep.Models = append(rep.Models, ms)
		rep.Served += ms.Served
		rep.Unserved += ms.Unserved
	}
	sort.Slice(rep.Models, func(i, j int) bool { return rep.Models[i].Name < rep.Models[j].Name })
	rep.Rejected = len(rep.Rejections)
	if totalBatches > 0 {
		rep.MeanBatch = float64(totalBatched) / float64(totalBatches)
	}
	if rep.Horizon > 0 {
		rep.Throughput = float64(rep.Served) / float64(rep.Horizon)
	}
}

// Render formats the report as the deterministic text block pinned by the
// serving golden and compared byte-for-byte by the CI serve-smoke gate.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving %s: %d replicas/model, %d requests over %.0fs\n",
		r.Platform, r.Replicas, r.Requests, float64(r.Horizon))
	fmt.Fprintf(&b, "  served %d  rejected %d  unserved %d  throughput %.2f req/s  mean batch %.2f\n",
		r.Served, r.Rejected, r.Unserved, r.Throughput, r.MeanBatch)
	fmt.Fprintf(&b, "  interactive p50 %.1fms p99 %.1fms | bulk p50 %.1fms p99 %.1fms\n",
		1e3*float64(r.InteractiveP50), 1e3*float64(r.InteractiveP99),
		1e3*float64(r.BulkP50), 1e3*float64(r.BulkP99))
	fmt.Fprintf(&b, "  checksum %.6e\n", r.Checksum)
	for _, m := range r.Models {
		fmt.Fprintf(&b, "  model %-8s req %6d adm %6d shed %5d full %5d served %6d batches %5d mean %.2f max %d peakq %d\n",
			m.Name, m.Requests, m.Admitted, m.Shed, m.Full, m.Served, m.Batches, m.MeanBatch, m.MaxBatch, m.PeakQueue)
		fmt.Fprintf(&b, "    p50 %.1fms p99 %.1fms max %.1fms | analytic p50 %.1fms p99 %.1fms amortization %.1fx\n",
			1e3*float64(m.P50), 1e3*float64(m.P99), 1e3*float64(m.Max),
			1e3*float64(m.AnalyticP50), 1e3*float64(m.AnalyticP99), m.Amortization)
	}
	return b.String()
}
