package serve

import (
	"bytes"
	"reflect"
	"testing"

	"summitscale/internal/obs"
	"summitscale/internal/parallel"
	"summitscale/internal/platform"
	"summitscale/internal/stats"
)

// runWidth executes the reference workload on a private pool of the given
// width and returns the rendered report, the Chrome trace bytes, and the
// raw responses.
func runWidth(t *testing.T, width int, reqs []Request) (string, []byte, []Response) {
	t.Helper()
	p := platform.MustLookup("summit")
	pool := parallel.NewWorkerPool(width)
	defer pool.Close()
	o := obs.New()
	spec := testTraffic()
	rep, err := Run(Config{
		Platform: p, Models: DefaultModels(7), Horizon: spec.Horizon,
		Pool: pool, Workers: width, Obs: o,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Render(), o.Trace.ChromeTrace(), rep.Responses
}

// TestCrossWorkerDeterminism pins the tentpole guarantee: the serving
// report, every response, and the full Chrome trace are byte-identical at
// any worker-pool width — batch assembly is a pure function of the sorted
// arrival stream and kernels write disjoint rows.
func TestCrossWorkerDeterminism(t *testing.T) {
	reqs, err := testTraffic().Generate(42, DefaultModels(7))
	if err != nil {
		t.Fatal(err)
	}
	refRender, refTrace, refResponses := runWidth(t, 1, reqs)
	for _, width := range []int{2, 4, 8} {
		render, trace, responses := runWidth(t, width, reqs)
		if render != refRender {
			t.Errorf("width %d: report differs from width 1", width)
		}
		if !bytes.Equal(trace, refTrace) {
			t.Errorf("width %d: Chrome trace differs from width 1", width)
		}
		if !reflect.DeepEqual(responses, refResponses) {
			t.Errorf("width %d: responses differ from width 1", width)
		}
	}
}

// TestArrivalOrderIndependence shuffles the request slice and checks the
// outcome is unchanged: Run sorts by (Arrival, ID) before simulating, so
// producer scheduling upstream can never leak into the serving report.
func TestArrivalOrderIndependence(t *testing.T) {
	reqs, err := testTraffic().Generate(42, DefaultModels(7))
	if err != nil {
		t.Fatal(err)
	}
	refRender, refTrace, refResponses := runWidth(t, 4, reqs)

	rng := stats.NewRNG(99)
	for trial := 0; trial < 3; trial++ {
		shuffled := append([]Request(nil), reqs...)
		for i := len(shuffled) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		render, trace, responses := runWidth(t, 4, shuffled)
		if render != refRender {
			t.Errorf("trial %d: shuffled arrivals changed the report", trial)
		}
		if !bytes.Equal(trace, refTrace) {
			t.Errorf("trial %d: shuffled arrivals changed the trace", trial)
		}
		if !reflect.DeepEqual(responses, refResponses) {
			t.Errorf("trial %d: shuffled arrivals changed the responses", trial)
		}
	}
}

// TestWorkersCapDoesNotChangePredictions runs one large batch through each
// model at several worker caps on the shared pool and requires bitwise
// identical outputs.
func TestWorkersCapDoesNotChangePredictions(t *testing.T) {
	rng := stats.NewRNG(5)
	for _, m := range DefaultModels(7) {
		rows := make([][]float64, 300)
		for i := range rows {
			row := make([]float64, m.FeatureDim())
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			rows[i] = row
		}
		ref := make([]float64, len(rows))
		m.PredictBatch(parallel.Shared(), 1, rows, ref)
		for _, w := range []int{2, 3, 8} {
			out := make([]float64, len(rows))
			m.PredictBatch(parallel.Shared(), w, rows, out)
			if !reflect.DeepEqual(out, ref) {
				t.Errorf("%s: workers=%d changed predictions", m.Name(), w)
			}
		}
	}
}
