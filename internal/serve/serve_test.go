package serve

import (
	"math"
	"strings"
	"testing"

	"summitscale/internal/obs"
	"summitscale/internal/parallel"
	"summitscale/internal/platform"
	"summitscale/internal/units"
)

// testTraffic is a scaled-down workload so unit tests stay fast while
// keeping the default's shape (diurnal curve plus two bursts).
func testTraffic() TrafficSpec {
	s := DefaultTraffic()
	s.Users = 200_000 // 50 req/s aggregate -> ~6k requests over 120s
	return s
}

func TestDefaultModels(t *testing.T) {
	models := DefaultModels(7)
	if len(models) != 3 {
		t.Fatalf("DefaultModels: got %d models, want 3", len(models))
	}
	for _, m := range models {
		if m.FeatureDim() < 1 || m.FeatureDim() > defaultFeatureDim {
			t.Errorf("%s: feature dim %d out of range", m.Name(), m.FeatureDim())
		}
		if m.FlopsPerSample() <= 0 || m.WeightBytes() <= 0 || m.BytesPerSample() <= 0 {
			t.Errorf("%s: non-positive cost model", m.Name())
		}
		rows := [][]float64{make([]float64, m.FeatureDim())}
		out := make([]float64, 1)
		m.PredictBatch(parallel.Shared(), 1, rows, out)
		if math.IsNaN(out[0]) || math.IsInf(out[0], 0) {
			t.Errorf("%s: prediction of zero row not finite: %v", m.Name(), out[0])
		}
	}
}

func TestTrafficGenerateDeterministic(t *testing.T) {
	models := DefaultModels(7)
	spec := testTraffic()
	a, err := spec.Generate(42, models)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate(42, models)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("Generate produced no requests")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Arrival != b[i].Arrival || a[i].Model != b[i].Model {
			t.Fatalf("request %d differs across identical generations", i)
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Arrival < a[i-1].Arrival {
			t.Fatalf("arrivals out of order at %d", i)
		}
	}
	if last := a[len(a)-1].Arrival; last >= spec.Horizon {
		t.Fatalf("arrival %v beyond horizon %v", last, spec.Horizon)
	}
	c, err := spec.Generate(43, models)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) && c[0].Arrival == a[0].Arrival {
		t.Fatal("different seeds produced an identical stream")
	}
}

func TestPricerBatchingAmortizes(t *testing.T) {
	p := platform.MustLookup("summit")
	pr := PricerFor(p)
	for _, m := range DefaultModels(7) {
		prev := pr.PerSample(m, 1)
		for _, b := range []int{2, 4, 8, 16, 32, 64} {
			cur := pr.PerSample(m, b)
			if cur >= prev {
				t.Errorf("%s: per-sample time not decreasing at batch %d: %v -> %v", m.Name(), b, prev, cur)
			}
			prev = cur
		}
		if a := pr.Amortization(m, 64); a < 2 {
			t.Errorf("%s: amortization at 64 = %.2f, want >= 2", m.Name(), a)
		}
		if pr.ServiceTime(m, 1) <= 0 {
			t.Errorf("%s: non-positive service time", m.Name())
		}
	}
}

func TestRunBatchedBeatsUnbatched(t *testing.T) {
	p := platform.MustLookup("summit")
	models := DefaultModels(7)
	reqs, err := testTraffic().Generate(42, models)
	if err != nil {
		t.Fatal(err)
	}
	spec := testTraffic()
	batched, err := Run(Config{Platform: p, Models: models, Horizon: spec.Horizon}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	unb := Config{
		Platform: p, Models: models, Horizon: spec.Horizon,
		Batch:     BatchConfig{MaxBatch: 1, MaxDelay: 0},
		Admission: DefaultAdmission(batched.Replicas, DefaultBatch().MaxBatch),
	}
	unbatched, err := Run(unb, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if batched.MeanBatch <= 1 {
		t.Errorf("batched run mean batch %.2f, want > 1", batched.MeanBatch)
	}
	if unbatched.MeanBatch != 1 {
		t.Errorf("unbatched run mean batch %.2f, want exactly 1", unbatched.MeanBatch)
	}
	if batched.Served < unbatched.Served {
		t.Errorf("batching lost availability: served %d < %d", batched.Served, unbatched.Served)
	}
	if batched.InteractiveP99 >= unbatched.InteractiveP99 && unbatched.Rejected > 0 {
		t.Errorf("batched p99 %v not below overloaded unbatched p99 %v",
			batched.InteractiveP99, unbatched.InteractiveP99)
	}
}

func TestRunAccounting(t *testing.T) {
	p := platform.MustLookup("summit")
	models := DefaultModels(7)
	reqs, err := testTraffic().Generate(42, models)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Platform: p, Models: models}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	totalReq, totalServed := 0, 0
	for _, m := range rep.Models {
		if m.Requests != m.Admitted+m.Shed+m.Full {
			t.Errorf("%s: requests %d != admitted %d + shed %d + full %d",
				m.Name, m.Requests, m.Admitted, m.Shed, m.Full)
		}
		if m.Admitted != m.Served+m.Unserved {
			t.Errorf("%s: admitted %d != served %d + unserved %d",
				m.Name, m.Admitted, m.Served, m.Unserved)
		}
		totalReq += m.Requests
		totalServed += m.Served
	}
	if totalReq != rep.Requests {
		t.Errorf("per-model requests %d != total %d", totalReq, rep.Requests)
	}
	if totalServed != rep.Served || rep.Served != len(rep.Responses) {
		t.Errorf("served accounting: models %d, report %d, responses %d",
			totalServed, rep.Served, len(rep.Responses))
	}
	if rep.Served+rep.Rejected+rep.Unserved != rep.Requests {
		t.Errorf("served %d + rejected %d + unserved %d != requests %d",
			rep.Served, rep.Rejected, rep.Unserved, rep.Requests)
	}
	for _, r := range rep.Responses {
		if r.Done < r.Arrival {
			t.Fatalf("response %d done %v before arrival %v", r.ID, r.Done, r.Arrival)
		}
	}
}

func TestRunUnknownModelRejected(t *testing.T) {
	p := platform.MustLookup("summit")
	models := DefaultModels(7)
	reqs := []Request{
		{ID: 1, Model: "ridge", Arrival: 0.1, Features: make([]float64, models[0].FeatureDim())},
		{ID: 2, Model: "nonesuch", Arrival: 0.2},
	}
	rep, err := Run(Config{Platform: p, Models: models}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != 1 || rep.Rejected != 1 {
		t.Fatalf("served %d rejected %d, want 1/1", rep.Served, rep.Rejected)
	}
	if rep.Rejections[0].Code != RejectUnknownModel {
		t.Fatalf("rejection code %v, want RejectUnknownModel", rep.Rejections[0].Code)
	}
}

func TestRunReplicaLossAndRepair(t *testing.T) {
	p := platform.MustLookup("summit")
	models := DefaultModels(7)
	spec := testTraffic()
	reqs, err := spec.Generate(42, models)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Platform: p, Models: models, Horizon: spec.Horizon}
	healthy, err := Run(base, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Kill every replica a third of the way in, never repair: admitted
	// in-flight work strands and later arrivals bounce off the full queue.
	dead := base
	for i := 0; i < healthy.Replicas*len(models); i++ {
		dead.ReplicaFails = append(dead.ReplicaFails, 40)
	}
	deadRep, err := Run(dead, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if deadRep.Unserved == 0 {
		t.Error("total replica loss produced no unserved requests")
	}
	if deadRep.Rejected == 0 {
		t.Error("total replica loss produced no rejections")
	}
	if deadRep.Served >= healthy.Served {
		t.Errorf("dead fleet served %d >= healthy %d", deadRep.Served, healthy.Served)
	}
	// Repairing shortly after restores most of the loss.
	repaired := dead
	for i := 0; i < healthy.Replicas*len(models); i++ {
		repaired.ReplicaRepairs = append(repaired.ReplicaRepairs, 50)
	}
	repRep, err := Run(repaired, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if repRep.Served <= deadRep.Served {
		t.Errorf("repairs did not recover throughput: %d <= %d", repRep.Served, deadRep.Served)
	}
}

func TestRunShedPolicyProtectsInteractive(t *testing.T) {
	p := platform.MustLookup("summit")
	models := DefaultModels(7)
	spec := testTraffic()
	reqs, err := spec.Generate(42, models)
	if err != nil {
		t.Fatal(err)
	}
	// Degrade the links hard so capacity dips below the burst rate.
	degraded := func(units.Seconds) float64 { return 0.05 }
	adm := DefaultAdmission(2, DefaultBatch().MaxBatch)
	shedCfg := Config{Platform: p, Models: models, Horizon: spec.Horizon, Replicas: 2,
		Admission: adm, LinkFactorAt: degraded}
	shed, err := Run(shedCfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	admOff := adm
	admOff.ShedAt = 0
	noShedCfg := shedCfg
	noShedCfg.Admission = admOff
	noShed, err := Run(noShedCfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	shedTotal, interShed := 0, 0
	for _, m := range shed.Models {
		shedTotal += m.Shed
	}
	if shedTotal == 0 {
		t.Fatal("degraded run with shed policy shed nothing; scenario too mild to test the policy")
	}
	for _, rj := range shed.Rejections {
		if rj.Code == RejectShed && rj.Tier == Interactive {
			t.Fatalf("shed policy rejected an Interactive request (id %d)", rj.ID)
		}
		if rj.Tier == Interactive {
			interShed++
		}
	}
	interNoShed := 0
	for _, rj := range noShed.Rejections {
		if rj.Tier == Interactive {
			interNoShed++
		}
	}
	if interShed > interNoShed {
		t.Errorf("shed policy lost more interactive requests (%d) than no policy (%d)", interShed, interNoShed)
	}
	if shed.InteractiveP99 > noShed.InteractiveP99 {
		t.Errorf("shed interactive p99 %v worse than no-shed %v", shed.InteractiveP99, noShed.InteractiveP99)
	}
}

func TestObserverThreading(t *testing.T) {
	p := platform.MustLookup("summit")
	models := DefaultModels(7)
	reqs, err := testTraffic().Generate(42, models)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	rep, err := Run(Config{Platform: p, Models: models, Obs: o}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Metrics.Counter("serve.requests"); got != int64(rep.Requests) {
		t.Errorf("serve.requests counter %d, want %d", got, rep.Requests)
	}
	if n := o.Metrics.Count("serve.batch.size"); n == 0 {
		t.Error("no batch-size observations recorded")
	}
	if o.Trace.Len() == 0 {
		t.Error("no spans recorded")
	}
	if sum := o.Trace.Summary(); !strings.Contains(sum, "serve") || !strings.Contains(sum, "batch/") {
		t.Error("trace summary missing serve batch spans")
	}
}

func TestRenderDeterministic(t *testing.T) {
	p := platform.MustLookup("summit")
	models := DefaultModels(7)
	reqs, err := testTraffic().Generate(42, models)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(Config{Platform: p, Models: models}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Platform: p, Models: models}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatal("identical runs rendered different reports")
	}
	if !strings.Contains(a.Render(), "serving Summit") {
		t.Errorf("render missing platform header:\n%s", a.Render())
	}
}

func TestBatcherSizeAndDeadline(t *testing.T) {
	b := newBatcher(BatchConfig{MaxBatch: 3, MaxDelay: 1})
	var closed []Request
	for i := 1; i <= 3; i++ {
		c, deadline := b.add(Request{ID: uint64(i)})
		if i == 1 && !deadline {
			t.Error("first request did not ask for a deadline timer")
		}
		if i > 1 && deadline {
			t.Errorf("request %d asked for a duplicate deadline timer", i)
		}
		closed = c
	}
	if len(closed) != 3 {
		t.Fatalf("size close returned %d requests, want 3", len(closed))
	}
	// The deadline timer for the batch that already closed must be stale.
	if late := b.expire(0); late != nil {
		t.Fatalf("stale deadline closed a batch of %d", len(late))
	}
	b.add(Request{ID: 4})
	if got := b.expire(b.epoch); len(got) != 1 || got[0].ID != 4 {
		t.Fatalf("live deadline close got %v, want [4]", got)
	}
}

func TestAdmitQueueBounds(t *testing.T) {
	q := newAdmitQueue(AdmissionConfig{QueueCap: 4, ShedAt: 2})
	now := units.Seconds(0)
	if rej := q.offer(Request{ID: 1, Tier: Bulk}, now); rej != nil {
		t.Fatal("first bulk offer rejected")
	}
	if rej := q.offer(Request{ID: 2, Tier: Bulk}, now); rej != nil {
		t.Fatal("second bulk offer rejected below ShedAt")
	}
	rej := q.offer(Request{ID: 3, Tier: Bulk}, now)
	if rej == nil || rej.Code != RejectShed {
		t.Fatalf("bulk at ShedAt: got %v, want RejectShed", rej)
	}
	if rej := q.offer(Request{ID: 4, Tier: Interactive}, now); rej != nil {
		t.Fatal("interactive offer shed")
	}
	if rej := q.offer(Request{ID: 5, Tier: Interactive}, now); rej != nil {
		t.Fatal("interactive offer below cap rejected")
	}
	rej = q.offer(Request{ID: 6, Tier: Interactive}, now)
	if rej == nil || rej.Code != RejectQueueFull {
		t.Fatalf("interactive at cap: got %v, want RejectQueueFull", rej)
	}
	if q.depth != 4 || q.peakDepth != 4 {
		t.Fatalf("depth %d peak %d, want 4/4", q.depth, q.peakDepth)
	}
	q.release(4)
	if q.depth != 0 {
		t.Fatalf("depth %d after release, want 0", q.depth)
	}
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	q.release(1)
}

func TestReplicaPoolFailRepair(t *testing.T) {
	p := newReplicaPool(2)
	if p.alive() != 2 {
		t.Fatalf("alive %d, want 2", p.alive())
	}
	if !p.fail() || p.alive() != 1 {
		t.Fatalf("first fail: alive %d, want 1", p.alive())
	}
	if !p.fail() || p.alive() != 0 {
		t.Fatalf("second fail: alive %d, want 0", p.alive())
	}
	if p.fail() {
		t.Fatal("fail with no live replicas reported a loss")
	}
	if p.free(100) != -1 {
		t.Fatal("dead pool reported a free replica")
	}
	if !p.repair() || p.alive() != 1 {
		t.Fatalf("repair: alive %d, want 1", p.alive())
	}
	if p.free(100) < 0 {
		t.Fatal("repaired pool reported no free replica")
	}
}

func TestReplicasForPlatforms(t *testing.T) {
	for _, name := range platform.Names() {
		p := platform.MustLookup(name)
		r := ReplicasFor(p, 3)
		if r < 1 {
			t.Errorf("%s: %d replicas, want >= 1", name, r)
		}
	}
	summit := platform.MustLookup("summit")
	if a, b := ReplicasFor(summit, 1), ReplicasFor(summit, 3); a < b {
		t.Errorf("fewer models got fewer replicas each: %d < %d", a, b)
	}
}
