// Package des is a small discrete-event simulation kernel: a time-ordered
// event queue with deterministic FIFO tie-breaking, used by the workflow
// engine to simulate multi-facility campaigns and by ablation experiments
// that need explicit timelines.
package des

import "container/heap"

// Event is a scheduled callback.
type Event struct {
	Time   float64
	Action func(sim *Sim)

	seq int // insertion order for deterministic ties
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].Time != q[j].Time {
		return q[i].Time < q[j].Time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*Event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Sim is a discrete-event simulation.
type Sim struct {
	now     float64
	queue   eventQueue
	nextSeq int
	// Processed counts executed events.
	Processed int
}

// New creates an empty simulation at time 0.
func New() *Sim { return &Sim{} }

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// At schedules action at absolute time t (>= Now).
func (s *Sim) At(t float64, action func(*Sim)) {
	if t < s.now {
		panic("des: scheduling in the past")
	}
	e := &Event{Time: t, Action: action, seq: s.nextSeq}
	s.nextSeq++
	heap.Push(&s.queue, e)
}

// After schedules action delay seconds from now.
func (s *Sim) After(delay float64, action func(*Sim)) {
	s.At(s.now+delay, action)
}

// Run executes events until the queue is empty or the event count limit is
// reached, and returns the final time.
func (s *Sim) Run(maxEvents int) float64 {
	for len(s.queue) > 0 {
		if maxEvents >= 0 && s.Processed >= maxEvents {
			break
		}
		e := heap.Pop(&s.queue).(*Event)
		s.now = e.Time
		s.Processed++
		e.Action(s)
	}
	return s.now
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }

// Resource is a capacity-limited resource with FIFO queuing: Acquire
// schedules work when a slot frees. It models constrained facilities
// (e.g., a shared GPU partition) inside a Sim.
type Resource struct {
	sim      *Sim
	capacity int
	inUse    int
	waiters  []func(*Sim)
	// Busy integrates slot-seconds for utilization accounting.
	Busy      float64
	lastCheck float64
}

// NewResource creates a resource with the given slot count.
func NewResource(s *Sim, capacity int) *Resource {
	if capacity <= 0 {
		panic("des: resource capacity must be positive")
	}
	return &Resource{sim: s, capacity: capacity}
}

func (r *Resource) account() {
	r.Busy += float64(r.inUse) * (r.sim.now - r.lastCheck)
	r.lastCheck = r.sim.now
}

// Acquire runs work for duration seconds as soon as a slot is free, then
// calls done (which may be nil).
func (r *Resource) Acquire(duration float64, done func(*Sim)) {
	start := func(sim *Sim) {
		r.account()
		r.inUse++
		sim.After(duration, func(sim *Sim) {
			r.account()
			r.inUse--
			if done != nil {
				done(sim)
			}
			if len(r.waiters) > 0 && r.inUse < r.capacity {
				next := r.waiters[0]
				r.waiters = r.waiters[1:]
				next(sim)
			}
		})
	}
	if r.inUse < r.capacity {
		start(r.sim)
	} else {
		r.waiters = append(r.waiters, start)
	}
}

// InUse returns the currently held slots.
func (r *Resource) InUse() int { return r.inUse }

// Utilization returns mean busy slots divided by capacity over [0, Now].
func (r *Resource) Utilization() float64 {
	r.account()
	if r.sim.now == 0 {
		return 0
	}
	return r.Busy / (float64(r.capacity) * r.sim.now)
}
