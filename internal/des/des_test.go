package des

import (
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(3, func(*Sim) { order = append(order, 3) })
	s.At(1, func(*Sim) { order = append(order, 1) })
	s.At(2, func(*Sim) { order = append(order, 2) })
	end := s.Run(-1)
	if end != 3 {
		t.Fatalf("end time = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestTiesBreakByInsertion(t *testing.T) {
	s := New()
	var order []string
	s.At(1, func(*Sim) { order = append(order, "a") })
	s.At(1, func(*Sim) { order = append(order, "b") })
	s.At(1, func(*Sim) { order = append(order, "c") })
	s.Run(-1)
	if got := order[0] + order[1] + order[2]; got != "abc" {
		t.Fatalf("tie order = %v", got)
	}
}

func TestAfterAndNesting(t *testing.T) {
	s := New()
	var hit float64
	s.After(5, func(sim *Sim) {
		sim.After(2.5, func(sim *Sim) { hit = sim.Now() })
	})
	s.Run(-1)
	if hit != 7.5 {
		t.Fatalf("nested event at %v", hit)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func(sim *Sim) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for past event")
			}
		}()
		sim.At(5, nil)
	})
	s.Run(-1)
}

func TestMaxEventsLimit(t *testing.T) {
	s := New()
	var reschedule func(*Sim)
	reschedule = func(sim *Sim) { sim.After(1, reschedule) }
	s.After(1, reschedule)
	s.Run(100)
	if s.Processed != 100 {
		t.Fatalf("processed %d events", s.Processed)
	}
	if s.Pending() == 0 {
		t.Fatal("limit should leave pending events")
	}
}

func TestResourceSerializesBeyondCapacity(t *testing.T) {
	s := New()
	r := NewResource(s, 2)
	var ends []float64
	for i := 0; i < 4; i++ {
		r.Acquire(10, func(sim *Sim) { ends = append(ends, sim.Now()) })
	}
	s.Run(-1)
	// Two run immediately (end 10), two queue (end 20).
	if len(ends) != 4 || ends[0] != 10 || ends[1] != 10 || ends[2] != 20 || ends[3] != 20 {
		t.Fatalf("ends = %v", ends)
	}
}

func TestResourceUtilization(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	r.Acquire(4, nil)
	s.After(8, func(*Sim) {}) // extend the horizon to 8
	s.Run(-1)
	if got := r.Utilization(); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
}

func TestResourceInUse(t *testing.T) {
	s := New()
	r := NewResource(s, 3)
	r.Acquire(5, nil)
	r.Acquire(5, nil)
	s.At(1, func(*Sim) {
		if r.InUse() != 2 {
			t.Errorf("in use = %d", r.InUse())
		}
	})
	s.Run(-1)
	if r.InUse() != 0 {
		t.Fatalf("resource leaked: %d", r.InUse())
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewResource(New(), 0)
}
