// Peer leadership systems the cross-machine studies compare against
// Summit. The entries are *-like calibrations from published system
// descriptions — Frontier from the OLCF system documentation, JUWELS
// Booster from Kesselheim et al. (JUWELS Booster — A Supercomputer for
// Large-Scale AI Research) — accurate at the aggregate-rate level the
// §IV-B / §VI-B analyses consume, not audited vendor datasheets.
package machine

import "summitscale/internal/units"

// MI250XGCD is one Graphics Compute Die of the AMD Instinct MI250X in
// Frontier's nodes. Software sees each GCD as one GPU, so the node's four
// MI250X packages present eight devices.
func MI250XGCD() GPU {
	return GPU{
		Name:       "MI250X-GCD",
		PeakFP64:   23.9 * units.TFlops, // half of the package's 47.9 TF/s vector FP64
		PeakFP32:   23.9 * units.TFlops,
		PeakTensor: 191.5 * units.TFlops, // half of 383 TF/s FP16 matrix
		HBM:        64 * units.GB,
		HBMBW:      1.6 * units.TBps,
	}
}

// FrontierNode is the HPE Cray EX235a node: 1 EPYC CPU, 4 MI250X (8 GCDs),
// four Slingshot-11 NICs at 25 GB/s each.
func FrontierNode() Node {
	return Node{
		Name:        "EX235a",
		GPUs:        8, // GCDs
		GPU:         MI250XGCD(),
		CPUCores:    56, // 64-core EPYC minus low-noise-mode reserved cores
		DDR:         512 * units.GB,
		NVMe:        3840 * units.GB, // 2x 1.92 TB node-local drives
		NVMeReadBW:  8 * units.GBps,
		NVMeWriteBW: 4 * units.GBps,
		InjectionBW: 100 * units.GBps, // 4 rails x 25 GB/s
		NVLinkBW:    50 * units.GBps,  // Infinity Fabric GPU-GPU link
	}
}

// Orion is Frontier's center-wide Lustre file system (aggregate rates
// approximate: ~10 TB/s read, ~5 TB/s write at acceptance).
func Orion() SharedFS {
	return SharedFS{Name: "Orion-Lustre", ReadBW: 10 * units.TBps, WriteBW: 5 * units.TBps}
}

// Frontier returns a Frontier-like system description.
func Frontier() Machine {
	return Machine{
		Name:            "Frontier",
		Nodes:           9408,
		Node:            FrontierNode(),
		FS:              Orion(),
		RingAllreduceBW: 50 * units.GBps, // half of 100 GB/s injection
		NetworkLatency:  2e-6,
		CollectiveAlpha: 1e-7,
		Rails:           4,
		// Early-life reliability: ~1 year per node, so a full-machine
		// job (9408 nodes) is interrupted roughly hourly — the regime
		// the first Frontier-scale training campaigns reported.
		NodeMTBF: 1 * units.Year,
	}
}

// A100SXM40 is the NVIDIA A100-SXM4 (40 GB) in JUWELS Booster's nodes.
func A100SXM40() GPU {
	return GPU{
		Name:       "A100-40GB",
		PeakFP64:   9.7 * units.TFlops,
		PeakFP32:   19.5 * units.TFlops,
		PeakTensor: 312 * units.TFlops,
		HBM:        40 * units.GB,
		HBMBW:      1555 * units.GBps,
	}
}

// JUWELSBoosterNode is the Atos Sequana XH2000 Booster node: 2 EPYC Rome
// CPUs, 4 A100s on an NVLink3 all-to-all, four HDR200 InfiniBand rails.
// Nodes are diskless — there is no node-local burst buffer, so all input
// traffic goes to the shared file system.
func JUWELSBoosterNode() Node {
	return Node{
		Name:        "XH2000-Booster",
		GPUs:        4,
		GPU:         A100SXM40(),
		CPUCores:    48,
		DDR:         512 * units.GB,
		InjectionBW: 100 * units.GBps, // 4 rails x HDR200 (25 GB/s)
		NVLinkBW:    100 * units.GBps, // NVLink3 pairwise (2 links per pair)
	}
}

// JUST is the Jülich storage cluster serving JUWELS (aggregate rates
// approximate: ~0.4 TB/s read).
func JUST() SharedFS {
	return SharedFS{Name: "JUST-GPFS", ReadBW: 400 * units.GBps, WriteBW: 300 * units.GBps}
}

// JUWELSBooster returns a JUWELS-Booster-like system description
// (Kesselheim et al.).
func JUWELSBooster() Machine {
	return Machine{
		Name:            "JUWELS-Booster",
		Nodes:           936,
		Node:            JUWELSBoosterNode(),
		FS:              JUST(),
		RingAllreduceBW: 50 * units.GBps,
		NetworkLatency:  1.5e-6,
		CollectiveAlpha: 1e-7,
		Rails:           4,
		NodeMTBF:        2 * units.Year,
	}
}
