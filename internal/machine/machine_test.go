package machine

import "testing"

// TestSummitMatchesPaperSection2A pins the machine description to §II-A.
func TestSummitMatchesPaperSection2A(t *testing.T) {
	m := Summit()
	if m.Nodes != 4608 {
		t.Errorf("nodes = %d, paper: 4,608 original compute nodes", m.Nodes)
	}
	n := m.Node
	if n.GPUs != 6 {
		t.Errorf("GPUs/node = %d, paper: six V100", n.GPUs)
	}
	if n.CPUCores != 42 {
		t.Errorf("user cores = %d, paper: 42 per node after reservation", n.CPUCores)
	}
	if float64(n.DDR) != 512e9 {
		t.Errorf("DDR = %v, paper: 512 GB", n.DDR)
	}
	if float64(n.NVMe) != 1.6e12 {
		t.Errorf("NVMe = %v, paper: 1.6 TB", n.NVMe)
	}
	// 96 GB of HBM2 per node across 6 GPUs.
	if hbm := float64(n.GPU.HBM) * float64(n.GPUs); hbm != 96e9 {
		t.Errorf("node HBM = %v, paper: 96 GB aggregate", hbm)
	}
	if float64(n.InjectionBW) != 25e9 {
		t.Errorf("injection bw = %v, paper §VI-B: 25 GB/s", n.InjectionBW)
	}
	if float64(m.RingAllreduceBW) != 12.5e9 {
		t.Errorf("ring algorithm bw = %v, paper §VI-B: 12.5 GB/s", m.RingAllreduceBW)
	}
	if float64(m.FS.ReadBW) != 2.5e12 {
		t.Errorf("GPFS read = %v, paper §VI-B: 2.5 TB/s", m.FS.ReadBW)
	}
}

// TestSummitExceedsThreeAIExaops checks "over 3 AI-ExaOps mixed precision
// peak performance" from the introduction.
func TestSummitExceedsThreeAIExaops(t *testing.T) {
	m := Summit()
	if peak := float64(m.PeakTensorFlops()); peak <= 3e18 {
		t.Fatalf("peak tensor = %v, paper: over 3 AI-ExaOps", peak)
	}
	if m.TotalGPUs() != 27648 {
		t.Fatalf("total GPUs = %d", m.TotalGPUs())
	}
}

// TestHighMemNodesMatchPaper checks the Summer-2020 addition: 54 nodes,
// 192 GB HBM2, 2 TB DDR4, 6.4 TB NVMe.
func TestHighMemNodesMatchPaper(t *testing.T) {
	m := Summit()
	if m.HighMemNodes != 54 {
		t.Errorf("high-mem nodes = %d, paper: 54", m.HighMemNodes)
	}
	h := m.HighMemNode
	if hbm := float64(h.GPU.HBM) * float64(h.GPUs); hbm != 192e9 {
		t.Errorf("high-mem HBM = %v, paper: 192 GB", hbm)
	}
	if float64(h.DDR) != 2e12 {
		t.Errorf("high-mem DDR = %v, paper: 2 TB", h.DDR)
	}
	if float64(h.NVMe) != 6.4e12 {
		t.Errorf("high-mem NVMe = %v, paper: 6.4 TB", h.NVMe)
	}
}

// TestCompanionClusters checks the Rhea and Andes descriptions (§II-A).
func TestCompanionClusters(t *testing.T) {
	r := Rhea()
	if r.Nodes != 512 || r.Node.CPUCores != 16 || float64(r.Node.DDR) != 128e9 {
		t.Errorf("Rhea = %+v, paper: 512 nodes, 2x8 cores, 128 GB", r.Node)
	}
	a := Andes()
	if a.Nodes != 704 || a.Node.CPUCores != 32 || float64(a.Node.DDR) != 256e9 {
		t.Errorf("Andes = %+v, paper: 704 nodes, 2x16 cores, 256 GB", a.Node)
	}
}

func TestV100Rates(t *testing.T) {
	g := V100()
	if float64(g.PeakTensor) != 125e12 {
		t.Errorf("V100 tensor peak = %v", g.PeakTensor)
	}
	if g.PeakFP64 >= g.PeakFP32 || g.PeakFP32 >= g.PeakTensor {
		t.Error("precision peaks not ordered")
	}
	hm := V100HighMem()
	if float64(hm.HBM) != 32e9 {
		t.Errorf("32GB V100 HBM = %v", hm.HBM)
	}
}

func TestAggregateNVMe(t *testing.T) {
	m := Summit()
	if got := float64(m.AggregateNVMeReadBW(m.Nodes)); got < 27e12 {
		t.Fatalf("aggregate NVMe = %v, paper: over 27 TB/s", got)
	}
}
