// Package machine describes the OLCF systems the paper studies — Summit
// (original and high-memory nodes), and the Rhea/Andes companion clusters —
// with the published hardware rates that the performance, storage, and
// network models consume.
//
// All figures come from the paper's §II-A system description and §VI-B
// hardware discussion: 25 GB/s node injection bandwidth, 2.5 TB/s GPFS
// aggregate read bandwidth, ~27 TB/s aggregate node-local NVMe read
// bandwidth, and V100 peak rates including 125 TF/s mixed-precision tensor
// throughput per GPU (over 3 AI-ExaOps across the system).
package machine

import (
	"strings"

	"summitscale/internal/units"
)

// GPU describes an accelerator.
type GPU struct {
	Name string
	// Peak arithmetic rates by precision.
	PeakFP64   units.FlopsPerSecond
	PeakFP32   units.FlopsPerSecond
	PeakTensor units.FlopsPerSecond // mixed-precision tensor cores
	HBM        units.Bytes
	HBMBW      units.BytesPerSecond
}

// Family returns the GPU's family name — the part before the first dash
// ("V100-16GB" -> "V100") — for prose that names the device generation
// rather than one SKU.
func (g GPU) Family() string {
	if i := strings.IndexByte(g.Name, '-'); i > 0 {
		return g.Name[:i]
	}
	return g.Name
}

// V100 is the NVIDIA Tesla V100 (16 GB) in Summit's original nodes.
func V100() GPU {
	return GPU{
		Name:       "V100-16GB",
		PeakFP64:   7.8 * units.TFlops,
		PeakFP32:   15.7 * units.TFlops,
		PeakTensor: 125 * units.TFlops,
		HBM:        16 * units.GB,
		HBMBW:      900 * units.GBps,
	}
}

// V100HighMem is the 32 GB V100 in the 2020 high-memory nodes.
func V100HighMem() GPU {
	g := V100()
	g.Name = "V100-32GB"
	g.HBM = 32 * units.GB
	return g
}

// Node describes one compute node.
type Node struct {
	Name     string
	GPUs     int
	GPU      GPU
	CPUCores int // cores available to user processes
	DDR      units.Bytes
	NVMe     units.Bytes
	// NVMeReadBW is the per-node burst-buffer read bandwidth; Summit's
	// aggregate "over 27 TB/s" over 4608 nodes gives ~6 GB/s per node.
	NVMeReadBW  units.BytesPerSecond
	NVMeWriteBW units.BytesPerSecond
	// InjectionBW is the node's network injection bandwidth (dual-rail EDR).
	InjectionBW units.BytesPerSecond
	// NVLinkBW is the intra-node GPU interconnect bandwidth per link.
	NVLinkBW units.BytesPerSecond
}

// SummitNode is the original AC922 node.
func SummitNode() Node {
	return Node{
		Name:        "AC922",
		GPUs:        6,
		GPU:         V100(),
		CPUCores:    42, // 2x22 minus one reserved core per socket
		DDR:         512 * units.GB,
		NVMe:        1600 * units.GB,
		NVMeReadBW:  6 * units.GBps,
		NVMeWriteBW: 2.1 * units.GBps,
		InjectionBW: 25 * units.GBps,
		NVLinkBW:    50 * units.GBps,
	}
}

// SummitHighMemNode is the 2020 high-memory AC922 variant.
func SummitHighMemNode() Node {
	n := SummitNode()
	n.Name = "AC922-HighMem"
	n.GPU = V100HighMem()
	n.DDR = 2 * units.TB
	n.NVMe = 6400 * units.GB
	return n
}

// SharedFS describes a center-wide parallel file system.
type SharedFS struct {
	Name    string
	ReadBW  units.BytesPerSecond // aggregate
	WriteBW units.BytesPerSecond
}

// Alpine is Summit's GPFS scratch file system; the paper quotes 2.5 TB/s
// aggregate read bandwidth.
func Alpine() SharedFS {
	return SharedFS{Name: "Alpine-GPFS", ReadBW: 2.5 * units.TBps, WriteBW: 2.5 * units.TBps}
}

// Machine is a full system description.
type Machine struct {
	Name         string
	Nodes        int
	Node         Node
	HighMemNodes int
	HighMemNode  Node
	FS           SharedFS
	// RingAllreduceBW is the effective per-node algorithm bandwidth of a
	// ring allreduce: half the injection bandwidth (send and receive share
	// the wire in opposite directions around the ring), 12.5 GB/s on
	// Summit per the paper's §VI-B.
	RingAllreduceBW units.BytesPerSecond
	// NetworkLatency is the per-message small-message latency.
	NetworkLatency units.Seconds
	// CollectiveAlpha is the effective per-hop latency of pipelined
	// collectives on this fabric. Production allreduces pipeline
	// sub-chunks and run one ring per local rank, so it sits far below
	// the raw point-to-point NetworkLatency (see netsim.SummitFabric).
	CollectiveAlpha units.Seconds
	// Rails is the number of independent injection rails (NICs) usable
	// as concurrent inter-node rings by a hierarchical allreduce.
	Rails int
	// NodeMTBF is the mean time between failures of a single node. The
	// job-visible system MTBF is NodeMTBF / job node count: leadership
	// machines with thousands of nodes interrupt a full-system job every
	// few hours even when each node fails only once in years (the regime
	// the §IV-B scale-out runs survived). Zero means unspecified; the
	// faults package substitutes its default.
	NodeMTBF units.Seconds
}

// Summit returns the full Summit description.
func Summit() Machine {
	return Machine{
		Name:            "Summit",
		Nodes:           4608,
		Node:            SummitNode(),
		HighMemNodes:    54,
		HighMemNode:     SummitHighMemNode(),
		FS:              Alpine(),
		RingAllreduceBW: 12.5 * units.GBps,
		NetworkLatency:  1.5e-6,
		CollectiveAlpha: 1e-7,
		Rails:           2,
		// ~2 years per node: a full-machine job (4608 nodes) sees a
		// failure roughly every 3.8 hours, consistent with the few-hour
		// interrupt cadence reported for Titan/Summit-class systems.
		NodeMTBF: 2 * units.Year,
	}
}

// TotalGPUs returns the GPU count of the base partition.
func (m Machine) TotalGPUs() int { return m.Nodes * m.Node.GPUs }

// PeakTensorFlops returns the aggregate mixed-precision peak of the base
// partition — Summit's "over 3 AI-ExaOps".
func (m Machine) PeakTensorFlops() units.FlopsPerSecond {
	return m.Node.GPU.PeakTensor * units.FlopsPerSecond(m.TotalGPUs())
}

// AggregateNVMeReadBW returns the summed node-local burst-buffer read
// bandwidth over n nodes.
func (m Machine) AggregateNVMeReadBW(n int) units.BytesPerSecond {
	return m.Node.NVMeReadBW * units.BytesPerSecond(n)
}

// Rhea is the original companion analysis cluster (retired late 2020).
func Rhea() Machine {
	return Machine{
		Name:  "Rhea",
		Nodes: 512,
		Node: Node{
			Name: "Rhea-CPU", GPUs: 0, CPUCores: 16,
			DDR: 128 * units.GB, InjectionBW: 7 * units.GBps,
		},
		FS:             Alpine(),
		NetworkLatency: 2e-6,
	}
}

// Andes replaced Rhea in late 2020.
func Andes() Machine {
	return Machine{
		Name:  "Andes",
		Nodes: 704,
		Node: Node{
			Name: "Andes-CPU", GPUs: 0, CPUCores: 32,
			DDR: 256 * units.GB, InjectionBW: 12.5 * units.GBps,
		},
		FS:             Alpine(),
		NetworkLatency: 2e-6,
	}
}
