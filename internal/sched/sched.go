// Package sched simulates Summit's batch scheduling of allocation-program
// workloads (§II-B): jobs from INCITE, ALCC and DD compete for the
// machine's 4608 nodes under FIFO-with-backfill scheduling, capability
// priority (bigger jobs first, as leadership-class policy prefers), and
// per-program share accounting. It supplies the machine-utilization
// context in which the paper's AI training jobs ran.
package sched

import (
	"fmt"
	"sort"

	"summitscale/internal/stats"
)

// Job is one batch job.
type Job struct {
	ID       int
	Program  string
	Nodes    int
	Walltime float64 // requested, seconds
	Submit   float64 // submission time

	// Scheduling results.
	Start float64
	End   float64
}

// NodeHours returns the job's node-seconds / 3600.
func (j Job) NodeHours() float64 { return float64(j.Nodes) * j.Walltime / 3600 }

// Wait returns the queue wait.
func (j Job) Wait() float64 { return j.Start - j.Submit }

// Scheduler is an event-free list scheduler over a fixed node pool: FIFO
// by submission with conservative backfill (a later job may start early
// only if it cannot delay any earlier job's reserved start).
type Scheduler struct {
	TotalNodes int
	// CapabilityBoost sorts equal-submit-time jobs larger-first, the
	// leadership-computing queue policy.
	CapabilityBoost bool
}

// NewScheduler creates a scheduler for a machine of the given size.
func NewScheduler(totalNodes int) *Scheduler {
	if totalNodes <= 0 {
		panic("sched: non-positive machine size")
	}
	return &Scheduler{TotalNodes: totalNodes, CapabilityBoost: true}
}

// freeSlot describes an interval with constant free node count.
type freeSlot struct {
	from  float64
	nodes int
}

// Schedule assigns Start/End to every job and returns them sorted by
// start time. The algorithm processes jobs in queue order, placing each
// at the earliest time enough nodes are free given already-placed jobs;
// because placement is earliest-fit against the full timeline, this is
// conservative backfill.
func (s *Scheduler) Schedule(jobs []Job) []Job {
	queue := append([]Job(nil), jobs...)
	sort.SliceStable(queue, func(i, j int) bool {
		if queue[i].Submit != queue[j].Submit {
			return queue[i].Submit < queue[j].Submit
		}
		if s.CapabilityBoost && queue[i].Nodes != queue[j].Nodes {
			return queue[i].Nodes > queue[j].Nodes
		}
		return queue[i].ID < queue[j].ID
	})

	var placed []Job
	for _, j := range queue {
		if j.Nodes > s.TotalNodes {
			panic(fmt.Sprintf("sched: job %d wants %d of %d nodes", j.ID, j.Nodes, s.TotalNodes))
		}
		j.Start = s.earliestStart(placed, j)
		j.End = j.Start + j.Walltime
		placed = append(placed, j)
	}
	sort.SliceStable(placed, func(i, j int) bool { return placed[i].Start < placed[j].Start })
	return placed
}

// earliestStart finds the first time >= j.Submit at which j.Nodes nodes
// are continuously free for j.Walltime.
func (s *Scheduler) earliestStart(placed []Job, j Job) float64 {
	// Candidate start times: submission, and each placed job's end.
	candidates := []float64{j.Submit}
	for _, p := range placed {
		if p.End > j.Submit {
			candidates = append(candidates, p.End)
		}
	}
	sort.Float64s(candidates)
	for _, t := range candidates {
		if s.fits(placed, t, j) {
			return t
		}
	}
	// Unreachable: the last candidate (all jobs done) always fits.
	panic("sched: no feasible start")
}

func (s *Scheduler) fits(placed []Job, t float64, j Job) bool {
	// Check node availability at every event point in [t, t+Walltime).
	points := []float64{t}
	for _, p := range placed {
		if p.Start > t && p.Start < t+j.Walltime {
			points = append(points, p.Start)
		}
	}
	for _, pt := range points {
		used := 0
		for _, p := range placed {
			if p.Start <= pt && pt < p.End {
				used += p.Nodes
			}
		}
		if used+j.Nodes > s.TotalNodes {
			return false
		}
	}
	return true
}

// Stats summarizes a schedule.
type Stats struct {
	Makespan float64 // latest job end
	// FirstStart is the earliest job start: the beginning of the window
	// the machine is actually in use.
	FirstStart float64
	// Utilization is node-time used / (TotalNodes * (Makespan -
	// FirstStart)). Measuring the denominator from the first start rather
	// than from t=0 keeps the metric meaningful for campaigns whose first
	// job submits late: idle time before any job exists is not the
	// scheduler's to waste.
	Utilization  float64
	MeanWait     float64
	MaxWait      float64
	HoursByGroup map[string]float64 // node-hours per program
}

// Span returns the busy window the utilization is measured over.
func (st Stats) Span() float64 { return st.Makespan - st.FirstStart }

// Summarize computes schedule statistics.
func (s *Scheduler) Summarize(placed []Job) Stats {
	st := Stats{HoursByGroup: map[string]float64{}}
	if len(placed) == 0 {
		return st
	}
	var usedNodeTime, waitSum float64
	st.FirstStart = placed[0].Start
	for _, j := range placed {
		if j.End > st.Makespan {
			st.Makespan = j.End
		}
		if j.Start < st.FirstStart {
			st.FirstStart = j.Start
		}
		usedNodeTime += float64(j.Nodes) * j.Walltime
		w := j.Wait()
		waitSum += w
		if w > st.MaxWait {
			st.MaxWait = w
		}
		st.HoursByGroup[j.Program] += j.NodeHours()
	}
	st.MeanWait = waitSum / float64(len(placed))
	if span := st.Span(); span > 0 {
		st.Utilization = usedNodeTime / (float64(s.TotalNodes) * span)
	}
	return st
}

// ProgramShare describes an allocation program's target fraction and job
// profile for workload synthesis.
type ProgramShare struct {
	Name string
	// Share of total node-hours (INCITE ~0.6, ALCC ~0.2, DD ~0.2).
	Share float64
	// Node-count distribution: log-uniform between MinNodes and MaxNodes.
	MinNodes, MaxNodes int
	// MeanWalltime of exponentially distributed walltimes (seconds).
	MeanWalltime float64
}

// OLCFShares returns the paper's §II-B allocation split with
// leadership-scale INCITE jobs, mid-scale ALCC, and small DD jobs.
func OLCFShares() []ProgramShare {
	return []ProgramShare{
		{Name: "INCITE", Share: 0.60, MinNodes: 256, MaxNodes: 4608, MeanWalltime: 6 * 3600},
		{Name: "ALCC", Share: 0.20, MinNodes: 64, MaxNodes: 1024, MeanWalltime: 4 * 3600},
		{Name: "DD", Share: 0.20, MinNodes: 1, MaxNodes: 256, MeanWalltime: 2 * 3600},
	}
}

// SynthesizeWorkload draws jobs matching the program shares over a
// submission horizon, stopping when each program's node-hour budget
// (share × totalNodeHours) is filled.
func SynthesizeWorkload(rng *stats.RNG, shares []ProgramShare, totalNodeHours, horizon float64) []Job {
	var jobs []Job
	id := 0
	for _, ps := range shares {
		budget := ps.Share * totalNodeHours
		var used float64
		for used < budget {
			nodes := logUniformInt(rng, ps.MinNodes, ps.MaxNodes)
			wall := rng.ExpFloat64() * ps.MeanWalltime
			if wall < 600 {
				wall = 600
			}
			j := Job{
				ID: id, Program: ps.Name, Nodes: nodes, Walltime: wall,
				Submit: rng.Float64() * horizon,
			}
			id++
			used += j.NodeHours()
			jobs = append(jobs, j)
		}
	}
	return jobs
}

// logUniformInt draws log-uniformly in [lo, hi].
func logUniformInt(rng *stats.RNG, lo, hi int) int {
	if lo >= hi {
		return lo
	}
	bits := 0
	for v := hi / lo; v > 0; v >>= 1 {
		bits++
	}
	n := lo << rng.Intn(bits)
	if n > hi {
		n = hi
	}
	return n
}
