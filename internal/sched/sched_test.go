package sched

import (
	"math"
	"testing"
	"testing/quick"

	"summitscale/internal/stats"
)

func TestSingleJobStartsAtSubmit(t *testing.T) {
	s := NewScheduler(100)
	placed := s.Schedule([]Job{{ID: 1, Nodes: 50, Walltime: 10, Submit: 5}})
	if placed[0].Start != 5 || placed[0].End != 15 {
		t.Fatalf("job placed [%v, %v]", placed[0].Start, placed[0].End)
	}
}

func TestSerializationWhenFull(t *testing.T) {
	s := NewScheduler(100)
	placed := s.Schedule([]Job{
		{ID: 1, Nodes: 100, Walltime: 10, Submit: 0},
		{ID: 2, Nodes: 100, Walltime: 10, Submit: 0},
	})
	if placed[0].Start != 0 || placed[1].Start != 10 {
		t.Fatalf("starts: %v, %v", placed[0].Start, placed[1].Start)
	}
}

func TestParallelWhenRoom(t *testing.T) {
	s := NewScheduler(100)
	placed := s.Schedule([]Job{
		{ID: 1, Nodes: 40, Walltime: 10, Submit: 0},
		{ID: 2, Nodes: 40, Walltime: 10, Submit: 0},
	})
	if placed[0].Start != 0 || placed[1].Start != 0 {
		t.Fatalf("jobs did not co-schedule: %v, %v", placed[0].Start, placed[1].Start)
	}
}

func TestBackfillSmallJob(t *testing.T) {
	s := NewScheduler(100)
	// Big job running until t=100; a second big job must wait; a small
	// short job submitted later can backfill into the idle 40 nodes.
	placed := s.Schedule([]Job{
		{ID: 1, Nodes: 60, Walltime: 100, Submit: 0},
		{ID: 2, Nodes: 100, Walltime: 50, Submit: 1},
		{ID: 3, Nodes: 30, Walltime: 20, Submit: 2},
	})
	byID := map[int]Job{}
	for _, j := range placed {
		byID[j.ID] = j
	}
	if byID[2].Start != 100 {
		t.Fatalf("full-machine job starts at %v", byID[2].Start)
	}
	if byID[3].Start != 2 {
		t.Fatalf("backfill job starts at %v, want 2", byID[3].Start)
	}
}

func TestCapabilityBoostOrdersBigFirst(t *testing.T) {
	s := NewScheduler(100)
	// Same submit time, combined demand exceeds the machine: the big job
	// must win the tie.
	placed := s.Schedule([]Job{
		{ID: 1, Nodes: 30, Walltime: 10, Submit: 0},
		{ID: 2, Nodes: 90, Walltime: 10, Submit: 0},
	})
	byID := map[int]Job{}
	for _, j := range placed {
		byID[j.ID] = j
	}
	if byID[2].Start != 0 {
		t.Fatalf("capability job delayed to %v", byID[2].Start)
	}
	if byID[1].Start != 10 {
		t.Fatalf("small job starts at %v", byID[1].Start)
	}
}

func TestOversizedJobPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewScheduler(10).Schedule([]Job{{Nodes: 11, Walltime: 1}})
}

// TestNeverOversubscribed is the core safety property: at every event
// point, running jobs fit in the machine — for arbitrary workloads.
func TestNeverOversubscribed(t *testing.T) {
	if err := quick.Check(func(seed uint32) bool {
		rng := stats.NewRNG(uint64(seed))
		s := NewScheduler(64)
		n := rng.Intn(30) + 2
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{
				ID:       i,
				Nodes:    rng.Intn(64) + 1,
				Walltime: float64(rng.Intn(100) + 1),
				Submit:   float64(rng.Intn(50)),
			}
		}
		placed := s.Schedule(jobs)
		for _, probe := range placed {
			for _, at := range []float64{probe.Start, probe.End - 0.001} {
				used := 0
				for _, j := range placed {
					if j.Start <= at && at < j.End {
						used += j.Nodes
					}
				}
				if used > 64 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNoJobStartsBeforeSubmit(t *testing.T) {
	rng := stats.NewRNG(9)
	s := NewScheduler(32)
	jobs := make([]Job, 40)
	for i := range jobs {
		jobs[i] = Job{ID: i, Nodes: rng.Intn(32) + 1,
			Walltime: float64(rng.Intn(50) + 1), Submit: float64(rng.Intn(100))}
	}
	for _, j := range s.Schedule(jobs) {
		if j.Start < j.Submit {
			t.Fatalf("job %d starts %v before submit %v", j.ID, j.Start, j.Submit)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := NewScheduler(100)
	placed := s.Schedule([]Job{
		{ID: 1, Program: "INCITE", Nodes: 100, Walltime: 10, Submit: 0},
		{ID: 2, Program: "DD", Nodes: 100, Walltime: 10, Submit: 0},
	})
	st := s.Summarize(placed)
	if st.Makespan != 20 {
		t.Errorf("makespan = %v", st.Makespan)
	}
	if math.Abs(st.Utilization-1) > 1e-9 {
		t.Errorf("utilization = %v", st.Utilization)
	}
	if st.MeanWait != 5 || st.MaxWait != 10 {
		t.Errorf("waits: mean %v max %v", st.MeanWait, st.MaxWait)
	}
	if math.Abs(st.HoursByGroup["INCITE"]-1000.0/3600*1000) > 1e9 {
		// node-hours = 100 nodes * 10 s / 3600.
		want := 100 * 10.0 / 3600
		if math.Abs(st.HoursByGroup["INCITE"]-want) > 1e-9 {
			t.Errorf("INCITE hours = %v, want %v", st.HoursByGroup["INCITE"], want)
		}
	}
}

// TestSummarizeLateSubmission is the utilization-accounting regression
// test: a campaign whose first job submits at t=1000 keeps the machine
// fully busy for its whole [1000, 1010] window, so utilization must be
// 1.0. The pre-fix metric divided by the makespan measured from t=0 and
// reported ~1% for exactly this job set.
func TestSummarizeLateSubmission(t *testing.T) {
	s := NewScheduler(100)
	placed := s.Schedule([]Job{
		{ID: 1, Program: "INCITE", Nodes: 100, Walltime: 10, Submit: 1000},
		{ID: 2, Program: "ALCC", Nodes: 100, Walltime: 10, Submit: 1000},
	})
	st := s.Summarize(placed)
	if st.FirstStart != 1000 {
		t.Errorf("first start = %v, want 1000", st.FirstStart)
	}
	if st.Makespan != 1020 {
		t.Errorf("makespan = %v, want 1020", st.Makespan)
	}
	if st.Span() != 20 {
		t.Errorf("span = %v, want 20", st.Span())
	}
	if math.Abs(st.Utilization-1) > 1e-9 {
		t.Errorf("utilization = %v, want 1.0 (late submission must not dilute the denominator)", st.Utilization)
	}
}

// TestEqualSubmitCapabilityOrdering pins the full tie-break chain at one
// submit time: capability (bigger first) when the boost is on, then ID;
// with the boost off, strict ID order.
func TestEqualSubmitCapabilityOrdering(t *testing.T) {
	jobs := []Job{
		{ID: 3, Nodes: 60, Walltime: 10, Submit: 0},
		{ID: 1, Nodes: 60, Walltime: 10, Submit: 0},
		{ID: 2, Nodes: 90, Walltime: 10, Submit: 0},
	}
	s := NewScheduler(100)
	byID := func(placed []Job) map[int]Job {
		m := map[int]Job{}
		for _, j := range placed {
			m[j.ID] = j
		}
		return m
	}
	got := byID(s.Schedule(jobs))
	// Boost on: the 90-node job wins the machine first; the equal-size
	// 60-node pair (which cannot co-schedule on 100 nodes) then
	// serializes by ID.
	if got[2].Start != 0 {
		t.Errorf("capability job starts at %v, want 0", got[2].Start)
	}
	if got[1].Start != 10 || got[3].Start != 20 {
		t.Errorf("equal-size jobs start at %v and %v, want ID order 10, 20", got[1].Start, got[3].Start)
	}
	// Boost off: strict ID order at one submit time — the 90-node job
	// now waits behind job 1.
	s.CapabilityBoost = false
	got = byID(s.Schedule(jobs))
	if got[1].Start != 0 || got[2].Start != 10 || got[3].Start != 20 {
		t.Errorf("FIFO starts: id1=%v id2=%v id3=%v, want 0, 10, 20",
			got[1].Start, got[2].Start, got[3].Start)
	}
}

// TestExactFillJob: a job wanting exactly the whole machine is legal and
// schedules as soon as the machine is empty — the >= vs > boundary in
// fits().
func TestExactFillJob(t *testing.T) {
	s := NewScheduler(64)
	placed := s.Schedule([]Job{
		{ID: 1, Nodes: 32, Walltime: 5, Submit: 0},
		{ID: 2, Nodes: 64, Walltime: 5, Submit: 0},
		{ID: 3, Nodes: 32, Walltime: 5, Submit: 0},
	})
	byID := map[int]Job{}
	for _, j := range placed {
		byID[j.ID] = j
	}
	// Capability boost runs the exact-fill job first, alone; the two
	// 32-node jobs then share the machine.
	if byID[2].Start != 0 || byID[2].End != 5 {
		t.Fatalf("exact-fill job placed [%v, %v], want [0, 5]", byID[2].Start, byID[2].End)
	}
	if byID[1].Start != 5 || byID[3].Start != 5 {
		t.Fatalf("remaining jobs start at %v and %v, want both 5", byID[1].Start, byID[3].Start)
	}
	st := s.Summarize(placed)
	if math.Abs(st.Utilization-1) > 1e-9 {
		t.Errorf("utilization = %v, want 1.0", st.Utilization)
	}
}

// TestBackfillConservative is the "conservative" claim: a gap-filling job
// may start early only if it cannot delay any earlier placed job. Job 1
// leaves a 40-node, 10 s gap before job 2's full-machine reservation at
// t=10; a 10 s candidate fills it exactly, while a 15 s candidate would
// overlap the reservation and must instead wait until job 2 finishes —
// job 2's start never moves in either case.
func TestBackfillConservative(t *testing.T) {
	base := []Job{
		{ID: 1, Nodes: 60, Walltime: 10, Submit: 0},
		{ID: 2, Nodes: 100, Walltime: 50, Submit: 0},
	}
	for _, tc := range []struct {
		wall      float64
		wantStart float64
	}{
		{10, 0},  // fits the gap exactly: backfills at submit
		{15, 60}, // would delay job 2's t=10 reservation: runs after it
	} {
		s := NewScheduler(100)
		s.CapabilityBoost = false // keep queue order 1, 2, 3
		jobs := append(append([]Job(nil), base...),
			Job{ID: 3, Nodes: 40, Walltime: tc.wall, Submit: 0})
		placed := s.Schedule(jobs)
		byID := map[int]Job{}
		for _, j := range placed {
			byID[j.ID] = j
		}
		if byID[2].Start != 10 {
			t.Fatalf("wall=%v: reserved job delayed to %v (backfill not conservative)",
				tc.wall, byID[2].Start)
		}
		if byID[3].Start != tc.wantStart {
			t.Errorf("wall=%v: backfill starts at %v, want %v", tc.wall, byID[3].Start, tc.wantStart)
		}
	}
}

// TestOLCFSharesRealized: synthesized workloads hit the paper's ~60/20/20
// allocation split within tolerance.
func TestOLCFSharesRealized(t *testing.T) {
	rng := stats.NewRNG(4)
	jobs := SynthesizeWorkload(rng, OLCFShares(), 500_000, 7*24*3600)
	var total float64
	hours := map[string]float64{}
	for _, j := range jobs {
		hours[j.Program] += j.NodeHours()
		total += j.NodeHours()
	}
	for _, ps := range OLCFShares() {
		frac := hours[ps.Name] / total
		if math.Abs(frac-ps.Share) > 0.08 {
			t.Errorf("%s share = %v, want ~%v", ps.Name, frac, ps.Share)
		}
	}
	// Job-size ordering: INCITE jobs are much bigger than DD jobs.
	var inciteMean, ddMean float64
	var nI, nD int
	for _, j := range jobs {
		switch j.Program {
		case "INCITE":
			inciteMean += float64(j.Nodes)
			nI++
		case "DD":
			ddMean += float64(j.Nodes)
			nD++
		}
	}
	if inciteMean/float64(nI) < 4*ddMean/float64(nD) {
		t.Errorf("INCITE jobs (%v avg nodes) not capability-scale vs DD (%v)",
			inciteMean/float64(nI), ddMean/float64(nD))
	}
}

func TestScheduleSynthesizedWorkload(t *testing.T) {
	rng := stats.NewRNG(5)
	jobs := SynthesizeWorkload(rng, OLCFShares(), 60_000, 24*3600)
	s := NewScheduler(4608)
	placed := s.Schedule(jobs)
	st := s.Summarize(placed)
	if st.Utilization <= 0 || st.Utilization > 1 {
		t.Fatalf("utilization = %v", st.Utilization)
	}
	if len(placed) != len(jobs) {
		t.Fatalf("lost jobs: %d of %d", len(placed), len(jobs))
	}
}

func TestLogUniformIntBounds(t *testing.T) {
	rng := stats.NewRNG(6)
	for i := 0; i < 1000; i++ {
		v := logUniformInt(rng, 64, 4608)
		if v < 64 || v > 4608 {
			t.Fatalf("out of range: %d", v)
		}
	}
	if logUniformInt(rng, 7, 7) != 7 {
		t.Fatal("degenerate range")
	}
}
