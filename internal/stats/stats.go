package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P50:    Percentile(xs, 50),
		Max:    Max(xs),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.Max)
}

// LinearFit holds the result of an ordinary least squares fit y = a + b*x.
type LinearFit struct {
	Intercept float64
	Slope     float64
	R2        float64
}

// FitLine computes an ordinary least squares line through (x, y). It panics
// if the slices differ in length or have fewer than two points.
func FitLine(x, y []float64) LinearFit {
	if len(x) != len(y) {
		panic("stats: FitLine length mismatch")
	}
	if len(x) < 2 {
		panic("stats: FitLine needs at least two points")
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: FitLine with zero x variance")
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 0.0
	if syy > 0 {
		r2 = sxy * sxy / (sxx * syy)
	}
	return LinearFit{Intercept: a, Slope: b, R2: r2}
}

// Histogram is a fixed-width binned count of samples.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Under and Over count samples outside [Lo, Hi).
	Under, Over int
}

// NewHistogram creates a histogram of nbins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard roundoff at the top edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of in-range samples recorded.
func (h *Histogram) Total() int {
	var n int
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Mode returns the index of the fullest bin.
func (h *Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}

// GeoMean returns the geometric mean of strictly positive xs.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean of non-positive value")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
