package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s := r.Split()
	// The split stream must not merely replay the parent.
	equal := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == s.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("split stream tracks parent: %d collisions", equal)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of range: %v", x)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var s float64
	const n = 100000
	for i := 0; i < n; i++ {
		s += r.Float64()
	}
	if m := s / n; math.Abs(m-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", m)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	if m := Mean(xs); math.Abs(m) > 0.02 {
		t.Errorf("normal mean = %v", m)
	}
	if sd := StdDev(xs); math.Abs(sd-1) > 0.02 {
		t.Errorf("normal sd = %v", sd)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	var s float64
	for i := 0; i < n; i++ {
		s += r.ExpFloat64()
	}
	if m := s / n; math.Abs(m-1) > 0.02 {
		t.Fatalf("exponential mean = %v", m)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	r := NewRNG(21)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[1])
	}
	frac := float64(counts[2]) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("category 2 frequency = %v, want ~0.75", frac)
	}
}

func TestCategoricalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-sum weights did not panic")
		}
	}()
	NewRNG(1).Categorical([]float64{0, 0})
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v", v)
	}
	if sd := StdDev(xs); sd != 2 {
		t.Errorf("StdDev = %v", sd)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 4, 1.5}
	if Min(xs) != -1 || Max(xs) != 4 {
		t.Errorf("Min/Max wrong")
	}
	if s := Sum(xs); math.Abs(s-7.5) > 1e-12 {
		t.Errorf("Sum = %v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{10}, 50); got != 10 {
		t.Errorf("single-element percentile = %v", got)
	}
}

// TestPercentileEdgeInputs pins the contract at the boundaries: a
// single-element slice returns its element at every p, and an empty
// slice panics rather than silently returning a zero a caller might
// mistake for a real quantile.
func TestPercentileEdgeInputs(t *testing.T) {
	for _, p := range []float64{0, 37.5, 100} {
		if got := Percentile([]float64{-4.25}, p); got != -4.25 {
			t.Errorf("single-element P%v = %v, want -4.25", p, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile(nil, 50) did not panic")
		}
	}()
	Percentile(nil, 50)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.P50 != 2 {
		t.Fatalf("Summary = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary not zero")
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestFitLineExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	f := FitLine(x, y)
	if math.Abs(f.Intercept-1) > 1e-12 || math.Abs(f.Slope-2) > 1e-12 {
		t.Fatalf("fit = %+v", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v", f.R2)
	}
}

func TestFitLineNoisy(t *testing.T) {
	r := NewRNG(31)
	var x, y []float64
	for i := 0; i < 500; i++ {
		xi := float64(i) / 10
		x = append(x, xi)
		y = append(y, 4+0.5*xi+r.NormFloat64()*0.1)
	}
	f := FitLine(x, y)
	if math.Abs(f.Slope-0.5) > 0.01 || math.Abs(f.Intercept-4) > 0.05 {
		t.Fatalf("noisy fit = %+v", f)
	}
	if f.R2 < 0.99 {
		t.Fatalf("R2 = %v", f.R2)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Mode() != 0 {
		t.Fatalf("mode = %d", h.Mode())
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4, 16}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean = %v", g)
	}
}

func TestQuickPercentileWithinBounds(t *testing.T) {
	r := NewRNG(77)
	if err := quick.Check(func(seed uint32) bool {
		rr := NewRNG(uint64(seed))
		n := rr.Intn(40) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rr.NormFloat64()
		}
		p := rr.Float64() * 100
		v := Percentile(xs, p)
		return v >= Min(xs)-1e-12 && v <= Max(xs)+1e-12
	}, &quick.Config{MaxCount: 200, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = r
}
