// Package stats provides the deterministic random number generator and the
// small statistical toolkit (descriptive statistics, histograms, linear
// fits, categorical sampling) that the portfolio generator, the synthetic
// data generators, and the simulators share.
//
// Everything in this package is deterministic given a seed, so every
// experiment in the repository is exactly reproducible.
package stats

import "math"

// RNG is a splitmix64 pseudo-random generator. It is deliberately tiny,
// allocation-free, and deterministic across platforms. It is NOT safe for
// concurrent use; give each goroutine its own RNG (see Split).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from r's future output by mixing a fixed odd constant.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the Box–Muller
// transform. Each call draws two uniforms; simplicity beats caching here.
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Weibull returns a Weibull variate with the given shape k and scale λ
// via inverse-transform sampling: λ·(-ln U)^(1/k). Shape 1 reduces to the
// exponential distribution with mean λ; shape < 1 models the infant
// -mortality failure regime of freshly-rebooted HPC nodes.
func (r *RNG) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: Weibull needs positive shape and scale")
	}
	return scale * math.Pow(r.ExpFloat64(), 1/shape)
}

// Perm returns a pseudo-random permutation of [0, n) via Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place.
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Categorical draws an index from the (unnormalized, non-negative) weight
// vector w. It panics if the weights sum to zero or are negative.
func (r *RNG) Categorical(w []float64) int {
	var total float64
	for _, x := range w {
		if x < 0 {
			panic("stats: negative categorical weight")
		}
		total += x
	}
	if total <= 0 {
		panic("stats: categorical weights sum to zero")
	}
	u := r.Float64() * total
	var acc float64
	for i, x := range w {
		acc += x
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}
