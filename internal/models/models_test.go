package models

import (
	"math"
	"testing"

	"summitscale/internal/units"
)

// TestGradientMessageSizesMatchPaper anchors the two sizes §VI-B quotes:
// "the per device allreduce message size for the ResNet50 and BERT-large
// models is about 100MB and 1.4 GB".
func TestGradientMessageSizesMatchPaper(t *testing.T) {
	r := ResNet50().GradientBytes()
	if math.Abs(float64(r)-100e6)/100e6 > 0.05 {
		t.Errorf("ResNet-50 gradient = %v, paper ~100 MB", r)
	}
	b := BERTLarge().GradientBytes()
	if math.Abs(float64(b)-1.4e9)/1.4e9 > 0.05 {
		t.Errorf("BERT-large gradient = %v, paper ~1.4 GB", b)
	}
}

func TestCatalogueComplete(t *testing.T) {
	all := All()
	if len(all) < 10 {
		t.Fatalf("catalogue has %d models", len(all))
	}
	seen := map[string]bool{}
	for _, m := range all {
		if seen[m.Name] {
			t.Fatalf("duplicate model %q", m.Name)
		}
		seen[m.Name] = true
		if m.Params <= 0 || m.TrainFlopsPerSample <= 0 || m.SingleGPUThroughput <= 0 ||
			m.PerGPUBatch <= 0 || m.RecordBytes <= 0 {
			t.Fatalf("model %q has non-positive fields: %+v", m.Name, m)
		}
		if m.GradBytesPerParam != 2 && m.GradBytesPerParam != 4 {
			t.Fatalf("model %q has grad width %d", m.Name, m.GradBytesPerParam)
		}
	}
	// All §IV-B studies must be represented.
	for _, name := range []string{"ResNet-50", "BERT-large", "DeepLabv3+", "Tiramisu",
		"FC-DenseNet", "WaveNet-GW", "PI-GAN", "CVAE", "PointNet-AAE", "GNO"} {
		if !seen[name] {
			t.Errorf("catalogue missing %q", name)
		}
	}
}

func TestByName(t *testing.T) {
	m, ok := ByName("BERT-large")
	if !ok || m.Name != "BERT-large" {
		t.Fatal("ByName failed")
	}
	if _, ok := ByName("GPT-17"); ok {
		t.Fatal("ByName found a ghost")
	}
}

func TestSustainedRatesBelowPeak(t *testing.T) {
	// No model may claim more than the V100's 125 TF/s tensor peak.
	for _, m := range All() {
		if got := m.SustainedFlopsPerGPU(); float64(got) > 125e12 {
			t.Errorf("%s sustains %v > V100 peak", m.Name, got)
		}
	}
}

// TestSustainedRatesMatchStudies checks the per-GPU sustained rates implied
// by the §IV-B papers: Kurth 1.13 EF / 27,360 GPUs ≈ 41 TF/s; Laanait
// 2.15 EF / 27,600 ≈ 78 TF/s; Blanchard 603 PF / 24,192 ≈ 25 TF/s.
func TestSustainedRatesMatchStudies(t *testing.T) {
	cases := []struct {
		model ModelSpec
		want  float64 // TF/s per GPU
		tol   float64
	}{
		{DeepLabV3Plus(), 41e12, 0.1},
		{FCDenseNet(), 78e12, 0.1},
		{BERTLarge(), 25e12, 0.1},
		{PIGAN(), 43.7e12, 0.1},
	}
	for _, c := range cases {
		got := float64(c.model.SustainedFlopsPerGPU())
		if math.Abs(got-c.want)/c.want > c.tol {
			t.Errorf("%s sustains %v, want ~%v", c.model.Name, got, c.want)
		}
	}
}

func TestStepComputeTime(t *testing.T) {
	m := ResNet50()
	want := float64(m.PerGPUBatch) / m.SingleGPUThroughput
	if got := float64(m.StepComputeTime()); math.Abs(got-want) > 1e-12 {
		t.Fatalf("step compute = %v, want %v", got, want)
	}
}

func TestFP16ModelsHalveWire(t *testing.T) {
	d := DeepLabV3Plus()
	if d.GradientBytes() != units.Bytes(d.Params*2) {
		t.Fatal("fp16 gradient width wrong")
	}
}

func TestStringNonEmpty(t *testing.T) {
	for _, m := range All() {
		if m.String() == "" {
			t.Fatal("empty String()")
		}
	}
}
