// Package models catalogues the deep-learning architectures appearing in
// the paper's scale-out studies (§IV-B) and workflow case studies (§V),
// with the accounting the performance model needs: parameter counts,
// gradient wire sizes, training FLOPs per sample, input record sizes, and
// calibrated single-GPU throughputs.
//
// Two of these figures are anchored directly by the paper's §VI-B:
// ResNet-50's ~100 MB and BERT-large's ~1.4 GB per-device allreduce
// message (fp32 gradients), which at Summit's 12.5 GB/s ring algorithm
// bandwidth give ~8 ms and ~110 ms. Single-GPU throughputs are calibrated
// so that full-Summit data-parallel ResNet-50 requires ~20 TB/s of
// aggregate read bandwidth, the paper's headline I/O figure.
package models

import (
	"fmt"

	"summitscale/internal/units"
)

// ModelSpec describes one architecture for the performance model.
type ModelSpec struct {
	Name   string
	Params int64
	// GradBytesPerParam is the allreduce wire size per parameter: 4 for
	// fp32 gradient exchange, 2 for fp16.
	GradBytesPerParam int
	// TrainFlopsPerSample counts forward+backward mixed-precision
	// operations per training sample.
	TrainFlopsPerSample units.Flops
	// RecordBytes is the size of one input record as read from storage.
	RecordBytes units.Bytes
	// PerGPUBatch is the customary per-device micro-batch.
	PerGPUBatch int
	// SingleGPUThroughput is the calibrated samples/s of one V100 on
	// in-memory data (the §VI-B estimation procedure).
	SingleGPUThroughput float64
}

// GradientBytes returns the per-device allreduce message size.
func (m ModelSpec) GradientBytes() units.Bytes {
	return units.Bytes(m.Params * int64(m.GradBytesPerParam))
}

// SustainedFlopsPerGPU returns the implied sustained rate of one device.
func (m ModelSpec) SustainedFlopsPerGPU() units.FlopsPerSecond {
	return units.FlopsPerSecond(m.SingleGPUThroughput * float64(m.TrainFlopsPerSample))
}

// StepComputeTime returns the pure-compute time of one micro-batch step.
func (m ModelSpec) StepComputeTime() units.Seconds {
	return units.Seconds(float64(m.PerGPUBatch) / m.SingleGPUThroughput)
}

// String summarizes the spec.
func (m ModelSpec) String() string {
	return fmt.Sprintf("%s: %.1fM params, grad %v, %v/sample, %.0f samples/s/GPU",
		m.Name, float64(m.Params)/1e6, m.GradientBytes(), m.TrainFlopsPerSample,
		m.SingleGPUThroughput)
}

// ResNet50 is the §VI-B reference image classifier. 25.56 M parameters
// give the paper's ~100 MB fp32 gradient message. The 500 KB decoded
// record and 1450 samples/s are calibrated so full Summit (27,648 GPUs)
// requires ≈20 TB/s aggregate read bandwidth.
func ResNet50() ModelSpec {
	return ModelSpec{
		Name:                "ResNet-50",
		Params:              25_560_000,
		GradBytesPerParam:   4,
		TrainFlopsPerSample: 23 * units.GFlop,
		RecordBytes:         500 * units.KB,
		PerGPUBatch:         256,
		SingleGPUThroughput: 1450,
	}
}

// BERTLarge is the §VI-B reference language model: ~345 M parameters give
// the paper's ~1.4 GB fp32 gradient message. Blanchard et al. pretrained a
// BERT of this class on SMILES compound strings.
func BERTLarge() ModelSpec {
	return ModelSpec{
		Name:                "BERT-large",
		Params:              345_000_000,
		GradBytesPerParam:   4,
		TrainFlopsPerSample: 260 * units.GFlop, // ~6·params·tokens at seq 128
		RecordBytes:         512,               // tokenized compound record
		PerGPUBatch:         8,
		SingleGPUThroughput: 96, // 25 TF/s sustained (Blanchard's 603 PF / 24,192 GPUs)
	}
}

// DeepLabV3Plus is Kurth et al.'s climate segmentation network (with the
// Tiramisu variant below). Mixed-precision training with fp16 gradient
// exchange; records are 16-channel float32 CAM5 crops.
func DeepLabV3Plus() ModelSpec {
	return ModelSpec{
		Name:                "DeepLabv3+",
		Params:              43_000_000,
		GradBytesPerParam:   2,
		TrainFlopsPerSample: 3.1 * units.TFlop, // dense prediction on 768x1152x16 fields
		RecordBytes:         units.Bytes(4 * 16 * 768 * 1152),
		PerGPUBatch:         2,
		SingleGPUThroughput: 13.3, // => ~41 TF/s/GPU sustained; 27,360 GPUs => 1.13 EF
	}
}

// Tiramisu is the second network of Kurth et al.
func Tiramisu() ModelSpec {
	return ModelSpec{
		Name:                "Tiramisu",
		Params:              9_300_000,
		GradBytesPerParam:   2,
		TrainFlopsPerSample: 1.2 * units.TFlop,
		RecordBytes:         units.Bytes(4 * 16 * 768 * 1152),
		PerGPUBatch:         2,
		SingleGPUThroughput: 18,
	}
}

// FCDenseNet is Laanait et al.'s electron-density inverse-problem network,
// whose custom gradient-reduction pipeline sustained 2.15 EF (≈78 TF/s per
// GPU) at batch 27,600 on 4600 nodes.
func FCDenseNet() ModelSpec {
	return ModelSpec{
		Name:                "FC-DenseNet",
		Params:              220_000_000,
		GradBytesPerParam:   2,
		TrainFlopsPerSample: 7.8 * units.TFlop,
		RecordBytes:         units.Bytes(4 * 512 * 512),
		PerGPUBatch:         1,
		SingleGPUThroughput: 10, // => 78 TF/s/GPU sustained
	}
}

// WaveNetGW is Khan et al.'s modified WaveNet for black-hole parameter
// inference, trained with LAMB from 8 to 1024 nodes at 80% efficiency.
func WaveNetGW() ModelSpec {
	return ModelSpec{
		Name:                "WaveNet-GW",
		Params:              23_000_000,
		GradBytesPerParam:   4,
		TrainFlopsPerSample: 12 * units.GFlop,
		RecordBytes:         units.Bytes(4 * 8192), // one-second strain segment
		PerGPUBatch:         64,
		SingleGPUThroughput: 2600,
	}
}

// PIGAN is Yang et al.'s physics-informed GAN for stochastic PDEs; batch
// size limits forced model parallelism in addition to data parallelism.
// Params below are per model-parallel shard.
func PIGAN() ModelSpec {
	return ModelSpec{
		Name:                "PI-GAN",
		Params:              65_000_000,
		GradBytesPerParam:   2,
		TrainFlopsPerSample: 1.9 * units.TFlop,
		RecordBytes:         units.Bytes(4 * 4096),
		PerGPUBatch:         4,
		SingleGPUThroughput: 23, // => ~43.7 TF/s/GPU: 1.2 EF across 27,504 GPUs
	}
}

// CVAE is the convolutional variational autoencoder used by the
// DeepDriveMD-style steering workflows (Casalino, Amaro, Trifan).
func CVAE() ModelSpec {
	return ModelSpec{
		Name:                "CVAE",
		Params:              4_700_000,
		GradBytesPerParam:   4,
		TrainFlopsPerSample: 1.5 * units.GFlop,
		RecordBytes:         units.Bytes(4 * 24 * 24), // contact-map crop
		PerGPUBatch:         128,
		SingleGPUThroughput: 9000,
	}
}

// PointNetAAE is Casalino et al.'s 3D PointNet-based adversarial
// autoencoder guiding spike-dynamics sampling.
func PointNetAAE() ModelSpec {
	return ModelSpec{
		Name:                "PointNet-AAE",
		Params:              12_000_000,
		GradBytesPerParam:   4,
		TrainFlopsPerSample: 4.2 * units.GFlop,
		RecordBytes:         units.Bytes(4 * 3 * 2048), // point cloud
		PerGPUBatch:         32,
		SingleGPUThroughput: 2400,
	}
}

// GNO is Trifan et al.'s graph neural operator coupling FFEA and AAMD
// resolutions.
func GNO() ModelSpec {
	return ModelSpec{
		Name:                "GNO",
		Params:              8_500_000,
		GradBytesPerParam:   4,
		TrainFlopsPerSample: 6.0 * units.GFlop,
		RecordBytes:         units.Bytes(4 * 16384),
		PerGPUBatch:         16,
		SingleGPUThroughput: 1500,
	}
}

// CosmoFlow is the MLPerf HPC cosmology benchmark network (Farrell et
// al.): a small 3D CNN regressing four cosmological parameters from
// 128^3x4 dark-matter density volumes. The record dominates the math —
// ~16.8 MB of int16-quantized voxels per sample against ~8.4 M
// parameters — which is what makes it the suite's storage stressor.
func CosmoFlow() ModelSpec {
	return ModelSpec{
		Name:                "CosmoFlow",
		Params:              8_400_000,
		GradBytesPerParam:   4,
		TrainFlopsPerSample: 140 * units.GFlop,
		RecordBytes:         units.Bytes(2 * 4 * 128 * 128 * 128),
		PerGPUBatch:         4,
		SingleGPUThroughput: 190, // => ~27 TF/s/GPU sustained mixed precision
	}
}

// DimeNetPP is the MLPerf HPC OpenCatalyst workload's network (DimeNet++
// in Farrell et al.): a directional message-passing GNN predicting
// per-atom forces for catalyst relaxations. Records are small molecular
// graphs, so — opposite to CosmoFlow — compute and gradient exchange
// dominate while storage idles.
func DimeNetPP() ModelSpec {
	return ModelSpec{
		Name:                "DimeNet++",
		Params:              1_800_000,
		GradBytesPerParam:   4,
		TrainFlopsPerSample: 110 * units.GFlop,
		RecordBytes:         units.Bytes(4 * 3 * 80 * 24), // ~80-atom graph: positions + edge features
		PerGPUBatch:         8,
		SingleGPUThroughput: 75, // GNN gather/scatter sustains far below dense-CNN rates
	}
}

// All returns the catalogue.
func All() []ModelSpec {
	return []ModelSpec{
		ResNet50(), BERTLarge(), DeepLabV3Plus(), Tiramisu(), FCDenseNet(),
		WaveNetGW(), PIGAN(), CVAE(), PointNetAAE(), GNO(),
		CosmoFlow(), DimeNetPP(),
	}
}

// ByName looks a model up in the catalogue.
func ByName(name string) (ModelSpec, bool) {
	for _, m := range All() {
		if m.Name == name {
			return m, true
		}
	}
	return ModelSpec{}, false
}
