// Package parallel is the shared worker-pool layer beneath the harness's
// hot loops: the concurrent experiment runner (internal/core), the sharded
// MD force kernel (internal/md), and any future fan-out. It provides a
// bounded pool with deterministic, index-addressed fan-out — workers claim
// work items dynamically, but every result is written to its own index, so
// the assembled output is independent of scheduling — and panic
// propagation: a panic on any work item is re-raised on the caller, and
// when several items panic the one with the lowest index wins, so failures
// are as deterministic as results.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds the number of goroutines a fan-out may use. The zero value
// is not useful; construct with NewPool.
type Pool struct {
	workers int
}

// NewPool returns a pool of the given width. Non-positive widths (and the
// conventional 0 = "use the machine") resolve to GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// ItemPanic carries a work item's panic to the caller: which item
// panicked and the original panic value, preserved so typed sentinels and
// runtime.Error values survive the pool boundary identically at any -j.
type ItemPanic struct {
	// Index is the work item that panicked (lowest index wins when
	// several panic).
	Index int
	// Value is the original panic value, unflattened.
	Value any
}

// Error renders the panic; ItemPanic also satisfies the error interface so
// recover sites can errors.As through it.
func (ip ItemPanic) Error() string {
	return fmt.Sprintf("parallel: work item %d panicked: %v", ip.Index, ip.Value)
}

// String matches Error, so %v formatting of the re-raised panic keeps the
// message format callers already match on.
func (ip ItemPanic) String() string { return ip.Error() }

// ForEach invokes fn(i) for every i in [0, n), using at most the pool's
// width in concurrent goroutines. Items are claimed via an atomic cursor,
// so scheduling is dynamic, but callers that write results to slot i get
// output identical to a sequential loop. With one worker (or n <= 1) fn
// runs on the caller's goroutine with no spawning at all — the "-j 1" old
// path. All items run to completion before ForEach returns, even when some
// panic; then the panic with the lowest index is re-raised as an ItemPanic
// wrapping the original value — identically on the single- and
// multi-worker paths, so panic identity does not depend on -j.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	var (
		mu    sync.Mutex
		first *ItemPanic
	)
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if first == nil || i < first.Index {
					first = &ItemPanic{Index: i, Value: r}
				}
				mu.Unlock()
			}
		}()
		fn(i)
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
	} else {
		var (
			cursor atomic.Int64
			wg     sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= n {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	if first != nil {
		panic(*first)
	}
}

// MapOrdered runs fn over [0, n) on the pool and returns the results in
// index order, regardless of which worker computed what.
func MapOrdered[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}
