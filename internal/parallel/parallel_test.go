package parallel

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestNewPoolDefaults(t *testing.T) {
	if got := NewPool(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewPool(0).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := NewPool(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewPool(-3).Workers() = %d", got)
	}
	if got := NewPool(5).Workers(); got != 5 {
		t.Fatalf("NewPool(5).Workers() = %d", got)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		const n = 503
		counts := make([]atomic.Int32, n)
		NewPool(workers).ForEach(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	p := NewPool(8)
	p.ForEach(0, func(int) { t.Fatal("fn called for n=0") })
	p.ForEach(-2, func(int) { t.Fatal("fn called for n<0") })
	ran := false
	p.ForEach(1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("single item not run")
	}
}

// TestMapOrderedDeterministic is the ordered fan-out guarantee: results
// land in index order no matter how many workers raced over the items.
func TestMapOrderedDeterministic(t *testing.T) {
	const n = 200
	want := MapOrdered(NewPool(1), n, func(i int) int { return i * i })
	for _, workers := range []int{2, 3, 8, 32} {
		got := MapOrdered(NewPool(workers), n, func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic lost its payload: %v", r)
		}
	}()
	NewPool(4).ForEach(64, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}

// TestForEachPanicLowestIndexWins pins the deterministic-failure rule:
// when several items panic, the caller always sees the lowest index.
func TestForEachPanicLowestIndexWins(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("no panic")
				}
				if !strings.Contains(r.(string), "work item 3 panicked") {
					t.Fatalf("wrong panic won: %v", r)
				}
			}()
			NewPool(8).ForEach(100, func(i int) {
				if i >= 3 {
					panic(i)
				}
			})
		}()
	}
}

// TestForEachRunsAllDespitePanic: a panic must not strand unfinished work
// items (the report assembler indexes into every slot).
func TestForEachRunsAllDespitePanic(t *testing.T) {
	const n = 128
	var ran atomic.Int32
	func() {
		defer func() { recover() }()
		NewPool(4).ForEach(n, func(i int) {
			ran.Add(1)
			if i == 0 {
				panic("early")
			}
		})
	}()
	if got := ran.Load(); got != n {
		t.Fatalf("only %d/%d items ran after a panic", got, n)
	}
}

func TestSingleWorkerRunsInline(t *testing.T) {
	// With one worker, items must run on the caller's goroutine in order —
	// the contract that makes -j 1 the exact old sequential path.
	var order []int
	NewPool(1).ForEach(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("one-worker order %v not sequential", order)
		}
	}
}
