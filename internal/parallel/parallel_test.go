package parallel

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestNewPoolDefaults(t *testing.T) {
	if got := NewPool(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewPool(0).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := NewPool(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewPool(-3).Workers() = %d", got)
	}
	if got := NewPool(5).Workers(); got != 5 {
		t.Fatalf("NewPool(5).Workers() = %d", got)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		const n = 503
		counts := make([]atomic.Int32, n)
		NewPool(workers).ForEach(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	p := NewPool(8)
	p.ForEach(0, func(int) { t.Fatal("fn called for n=0") })
	p.ForEach(-2, func(int) { t.Fatal("fn called for n<0") })
	ran := false
	p.ForEach(1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("single item not run")
	}
}

// TestMapOrderedDeterministic is the ordered fan-out guarantee: results
// land in index order no matter how many workers raced over the items.
func TestMapOrderedDeterministic(t *testing.T) {
	const n = 200
	want := MapOrdered(NewPool(1), n, func(i int) int { return i * i })
	for _, workers := range []int{2, 3, 8, 32} {
		got := MapOrdered(NewPool(workers), n, func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		ip, ok := r.(ItemPanic)
		if !ok {
			t.Fatalf("panic value is %T, want ItemPanic", r)
		}
		if ip.Index != 17 || ip.Value != "boom" {
			t.Fatalf("panic lost its payload: %+v", ip)
		}
		if !strings.Contains(ip.Error(), "boom") {
			t.Fatalf("message lost the payload: %v", ip)
		}
	}()
	NewPool(4).ForEach(64, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}

// TestForEachPanicLowestIndexWins pins the deterministic-failure rule:
// when several items panic, the caller always sees the lowest index.
func TestForEachPanicLowestIndexWins(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("no panic")
				}
				if !strings.Contains(r.(ItemPanic).Error(), "work item 3 panicked") {
					t.Fatalf("wrong panic won: %v", r)
				}
			}()
			NewPool(8).ForEach(100, func(i int) {
				if i >= 3 {
					panic(i)
				}
			})
		}()
	}
}

// errSentinel is a typed panic payload for the identity test.
type errSentinel struct{ code int }

func (e errSentinel) Error() string { return "sentinel" }

// TestForEachPanicIdentityAcrossWorkerCounts is the regression test for
// the -j-dependent panic flattening: the original panic value — including
// typed sentinels — must survive the pool boundary identically on the
// single- and multi-worker paths.
func TestForEachPanicIdentityAcrossWorkerCounts(t *testing.T) {
	want := errSentinel{code: 42}
	for _, workers := range []int{1, 2, 8} {
		func() {
			defer func() {
				r := recover()
				ip, ok := r.(ItemPanic)
				if !ok {
					t.Fatalf("workers=%d: panic value is %T, want ItemPanic", workers, r)
				}
				if got, ok := ip.Value.(errSentinel); !ok || got != want {
					t.Fatalf("workers=%d: payload %#v lost identity", workers, ip.Value)
				}
				if ip.Index != 2 {
					t.Fatalf("workers=%d: index %d, want 2", workers, ip.Index)
				}
			}()
			NewPool(workers).ForEach(8, func(i int) {
				if i == 2 {
					panic(want)
				}
			})
		}()
	}
}

// TestSingleWorkerRunsAllDespitePanic: the one-worker path must match the
// multi-worker contract — every item runs even after an earlier panic.
func TestSingleWorkerRunsAllDespitePanic(t *testing.T) {
	const n = 16
	ran := 0
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic swallowed")
			}
		}()
		NewPool(1).ForEach(n, func(i int) {
			ran++
			if i == 0 {
				panic("early")
			}
		})
	}()
	if ran != n {
		t.Fatalf("only %d/%d items ran after a panic on one worker", ran, n)
	}
}

// TestForEachRunsAllDespitePanic: a panic must not strand unfinished work
// items (the report assembler indexes into every slot).
func TestForEachRunsAllDespitePanic(t *testing.T) {
	const n = 128
	var ran atomic.Int32
	func() {
		defer func() { recover() }()
		NewPool(4).ForEach(n, func(i int) {
			ran.Add(1)
			if i == 0 {
				panic("early")
			}
		})
	}()
	if got := ran.Load(); got != n {
		t.Fatalf("only %d/%d items ran after a panic", got, n)
	}
}

func TestSingleWorkerRunsInline(t *testing.T) {
	// With one worker, items must run on the caller's goroutine in order —
	// the contract that makes -j 1 the exact old sequential path.
	var order []int
	NewPool(1).ForEach(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("one-worker order %v not sequential", order)
		}
	}
}
