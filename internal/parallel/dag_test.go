package parallel

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// linearDAG builds a chain a -> b -> c ... recording completion order.
func chainNodes(ids []string, order *[]string, mu *sync.Mutex) []Node {
	nodes := make([]Node, len(ids))
	for i, id := range ids {
		i, id := i, id
		var deps []string
		if i > 0 {
			deps = []string{ids[i-1]}
		}
		nodes[i] = Node{ID: id, Deps: deps, Run: func() {
			mu.Lock()
			*order = append(*order, id)
			mu.Unlock()
		}}
	}
	return nodes
}

func TestRunDAGChainOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		var (
			mu    sync.Mutex
			order []string
		)
		nodes := chainNodes([]string{"a", "b", "c", "d", "e"}, &order, &mu)
		if err := NewPool(workers).RunDAG(nodes); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := strings.Join(order, ""); got != "abcde" {
			t.Errorf("workers=%d: chain ran in order %q", workers, got)
		}
	}
}

func TestRunDAGDependenciesRespected(t *testing.T) {
	// Diamond with a wide fan-out: every dependency edge must be observed
	// as done before the dependent runs, at any width.
	for _, workers := range []int{1, 3, 8} {
		var done sync.Map
		requireDone := func(ids ...string) {
			for _, id := range ids {
				if _, ok := done.Load(id); !ok {
					t.Errorf("workers=%d: dependency %s not done", workers, id)
				}
			}
		}
		mk := func(id string, deps ...string) Node {
			return Node{ID: id, Deps: deps, Run: func() {
				requireDone(deps...)
				done.Store(id, true)
			}}
		}
		nodes := []Node{
			mk("sink", "l1", "l2", "l3", "l4"),
			mk("root"),
			mk("l1", "root"), mk("l2", "root"), mk("l3", "root"), mk("l4", "root"),
		}
		if err := NewPool(workers).RunDAG(nodes); err != nil {
			t.Fatal(err)
		}
		requireDone("sink")
	}
}

func TestRunDAGValidation(t *testing.T) {
	cases := []struct {
		name  string
		nodes []Node
		frag  string
	}{
		{"duplicate", []Node{{ID: "a", Run: func() {}}, {ID: "a", Run: func() {}}}, "duplicate node ID"},
		{"unknown dep", []Node{{ID: "a", Deps: []string{"ghost"}, Run: func() {}}}, "unknown node"},
		{"self dep", []Node{{ID: "a", Deps: []string{"a"}, Run: func() {}}}, "depends on itself"},
		{"empty id", []Node{{Run: func() {}}}, "empty ID"},
		{"cycle", []Node{
			{ID: "a", Deps: []string{"c"}, Run: func() {}},
			{ID: "b", Deps: []string{"a"}, Run: func() {}},
			{ID: "c", Deps: []string{"b"}, Run: func() {}},
		}, "cycle"},
	}
	for _, tc := range cases {
		ran := false
		for i := range tc.nodes {
			old := tc.nodes[i].Run
			tc.nodes[i].Run = func() { ran = true; old() }
		}
		err := NewPool(4).RunDAG(tc.nodes)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if _, ok := err.(*DAGError); !ok {
			t.Errorf("%s: error type %T", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.frag)
		}
		if ran {
			t.Errorf("%s: nodes ran despite invalid graph", tc.name)
		}
	}
}

// TestRunDAGPanicSkipsDownstream pins the failure contract: the panic is
// re-raised as an ItemPanic with the panicking node's declaration index,
// transitive dependents never run, and independent nodes still complete —
// identically at any worker count.
func TestRunDAGPanicSkipsDownstream(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var survivors atomic.Int64
		var downstream atomic.Int64
		nodes := []Node{
			{ID: "ok1", Run: func() { survivors.Add(1) }},
			{ID: "boom", Run: func() { panic("kaboom") }},
			{ID: "child", Deps: []string{"boom"}, Run: func() { downstream.Add(1) }},
			{ID: "grandchild", Deps: []string{"child"}, Run: func() { downstream.Add(1) }},
			{ID: "ok2", Run: func() { survivors.Add(1) }},
		}
		func() {
			defer func() {
				r := recover()
				ip, ok := r.(ItemPanic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T %v, want ItemPanic", workers, r, r)
				}
				if ip.Index != 1 || ip.Value != "kaboom" {
					t.Errorf("workers=%d: ItemPanic %+v", workers, ip)
				}
			}()
			NewPool(workers).RunDAG(nodes)
		}()
		if survivors.Load() != 2 {
			t.Errorf("workers=%d: %d independent nodes ran, want 2", workers, survivors.Load())
		}
		if downstream.Load() != 0 {
			t.Errorf("workers=%d: %d downstream nodes ran after panic", workers, downstream.Load())
		}
	}
}

// TestRunDAGLowestPanicWins mirrors the ForEach contract on the DAG path.
func TestRunDAGLowestPanicWins(t *testing.T) {
	for _, workers := range []int{1, 4} {
		gate := make(chan struct{})
		nodes := []Node{
			{ID: "late", Run: func() {
				if workers > 1 {
					<-gate
				}
				panic("late")
			}},
			{ID: "early", Run: func() {
				if workers > 1 {
					close(gate)
				}
				panic("early")
			}},
		}
		func() {
			defer func() {
				ip, ok := recover().(ItemPanic)
				if !ok || ip.Index != 0 || ip.Value != "late" {
					t.Errorf("workers=%d: got %+v, want index 0 value late", workers, ip)
				}
			}()
			NewPool(workers).RunDAG(nodes)
		}()
	}
}

func TestRunDAGEmpty(t *testing.T) {
	if err := NewPool(4).RunDAG(nil); err != nil {
		t.Fatal(err)
	}
}

// TestRunDAGManyNodesStress drains a layered graph wider than the pool.
func TestRunDAGManyNodesStress(t *testing.T) {
	const layers, width = 8, 25
	var count atomic.Int64
	var nodes []Node
	for l := 0; l < layers; l++ {
		for w := 0; w < width; w++ {
			id := nodeID(l, w)
			var deps []string
			if l > 0 {
				// Each node depends on three nodes of the previous layer.
				for k := 0; k < 3; k++ {
					deps = append(deps, nodeID(l-1, (w+k)%width))
				}
			}
			nodes = append(nodes, Node{ID: id, Deps: deps, Run: func() { count.Add(1) }})
		}
	}
	if err := NewPool(6).RunDAG(nodes); err != nil {
		t.Fatal(err)
	}
	if count.Load() != layers*width {
		t.Fatalf("ran %d of %d nodes", count.Load(), layers*width)
	}
}

func nodeID(l, w int) string {
	return string(rune('a'+l)) + "-" + string(rune('A'+w))
}
