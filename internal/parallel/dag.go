package parallel

import (
	"fmt"
	"sort"
	"sync"
)

// Node is one unit of work in a dependency DAG: it may run only after
// every node named in Deps has completed. IDs are free-form strings;
// the experiment engine uses "sub/..." keys for shared intermediates and
// "exp/..." keys for experiment bodies.
type Node struct {
	ID   string
	Deps []string
	Run  func()
}

// DAGError reports a malformed graph (duplicate ID, unknown dependency,
// or dependency cycle) before any node has run.
type DAGError struct{ Reason string }

func (e *DAGError) Error() string { return "parallel: invalid DAG: " + e.Reason }

// RunDAG executes the nodes in dependency order using at most the pool's
// width in concurrent goroutines. The graph is validated up front —
// duplicate IDs, unknown dependencies, and cycles return a *DAGError
// with nothing run. Scheduling is deterministic in its observable
// effects: among ready nodes the lowest declaration index is dispatched
// first, and with one worker the whole graph runs inline on the caller's
// goroutine in a fixed topological order (declaration order among ready
// nodes), so "-j 1" pays no pool overhead at all.
//
// Panic semantics extend ForEach's: a panicking node marks its
// transitive dependents as skipped (their Run is never called), every
// node not downstream of a failure still runs to completion, and then
// the panic with the lowest declaration index is re-raised as an
// ItemPanic wrapping the original value — identically at any -j.
func (p *Pool) RunDAG(nodes []Node) error {
	n := len(nodes)
	if n == 0 {
		return nil
	}
	index := make(map[string]int, n)
	for i, nd := range nodes {
		if nd.ID == "" {
			return &DAGError{Reason: fmt.Sprintf("node %d has empty ID", i)}
		}
		if prev, dup := index[nd.ID]; dup {
			return &DAGError{Reason: fmt.Sprintf("duplicate node ID %q (nodes %d and %d)", nd.ID, prev, i)}
		}
		index[nd.ID] = i
	}
	// Build the edge lists and in-degrees, validating dependency names.
	waiting := make([]int, n)      // unmet dependency count per node
	dependents := make([][]int, n) // forward edges
	for i, nd := range nodes {
		for _, dep := range nd.Deps {
			j, ok := index[dep]
			if !ok {
				return &DAGError{Reason: fmt.Sprintf("node %q depends on unknown node %q", nd.ID, dep)}
			}
			if j == i {
				return &DAGError{Reason: fmt.Sprintf("node %q depends on itself", nd.ID)}
			}
			waiting[i]++
			dependents[j] = append(dependents[j], i)
		}
	}
	if err := checkAcyclic(nodes, index, waiting, dependents); err != nil {
		return err
	}

	workers := p.workers
	if workers > n {
		workers = n
	}
	var (
		mu      sync.Mutex
		first   *ItemPanic
		skipped = make([]bool, n)
	)
	// skip marks i and its transitive dependents as skipped; callers hold mu.
	var skip func(i int)
	skip = func(i int) {
		if skipped[i] {
			return
		}
		skipped[i] = true
		for _, d := range dependents[i] {
			skip(d)
		}
	}
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if first == nil || i < first.Index {
					first = &ItemPanic{Index: i, Value: r}
				}
				skip(i)
				skipped[i] = true
				mu.Unlock()
			}
		}()
		nodes[i].Run()
	}

	if workers == 1 {
		// Inline deterministic topological order: a sorted ready list,
		// always dispatching the lowest declaration index.
		ready := make([]int, 0, n)
		for i := range nodes {
			if waiting[i] == 0 {
				ready = append(ready, i)
			}
		}
		sort.Ints(ready)
		for len(ready) > 0 {
			i := ready[0]
			ready = ready[1:]
			if !skipped[i] {
				run(i)
			}
			for _, d := range dependents[i] {
				waiting[d]--
				if waiting[d] == 0 {
					// Insert keeping the list sorted.
					at := sort.SearchInts(ready, d)
					ready = append(ready, 0)
					copy(ready[at+1:], ready[at:])
					ready[at] = d
				}
			}
		}
	} else {
		var (
			cond    = sync.NewCond(&mu)
			ready   []int // kept sorted; lowest declaration index first
			pending = n   // nodes not yet finished (run or skipped)
		)
		push := func(i int) {
			at := sort.SearchInts(ready, i)
			ready = append(ready, 0)
			copy(ready[at+1:], ready[at:])
			ready[at] = i
		}
		mu.Lock()
		for i := range nodes {
			if waiting[i] == 0 {
				push(i)
			}
		}
		mu.Unlock()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				mu.Lock()
				for {
					for len(ready) == 0 && pending > 0 {
						cond.Wait()
					}
					if pending == 0 {
						mu.Unlock()
						cond.Broadcast()
						return
					}
					i := ready[0]
					ready = ready[1:]
					doRun := !skipped[i]
					mu.Unlock()
					if doRun {
						run(i)
					}
					mu.Lock()
					pending--
					pushed := 0
					for _, d := range dependents[i] {
						waiting[d]--
						if waiting[d] == 0 {
							push(d)
							pushed++
						}
					}
					// Wake only as many workers as there is new work for:
					// a single unblocked node needs one waiter, not the
					// whole herd re-contending on mu. Termination still
					// broadcasts so every worker observes pending == 0.
					// Workers always re-check ready before sleeping, so a
					// Signal that finds no waiter is never lost.
					if pending == 0 {
						cond.Broadcast()
					} else if pushed == 1 {
						cond.Signal()
					} else if pushed > 1 {
						cond.Broadcast()
					}
				}
			}()
		}
		wg.Wait()
	}
	if first != nil {
		panic(*first)
	}
	return nil
}

// checkAcyclic runs Kahn's algorithm on copies of the degree arrays and
// names one cycle member deterministically when the graph does not drain.
func checkAcyclic(nodes []Node, index map[string]int, waiting []int, dependents [][]int) error {
	deg := append([]int(nil), waiting...)
	queue := make([]int, 0, len(nodes))
	for i := range nodes {
		if deg[i] == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		done++
		for _, d := range dependents[i] {
			deg[d]--
			if deg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if done == len(nodes) {
		return nil
	}
	for i, nd := range nodes {
		if deg[i] > 0 {
			return &DAGError{Reason: fmt.Sprintf("dependency cycle involving node %q", nd.ID)}
		}
	}
	return &DAGError{Reason: "dependency cycle"}
}
