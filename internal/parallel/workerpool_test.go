package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunRangeCoversRange pins that every element of [0, n) is visited
// exactly once at every pool width, including widths far beyond the host
// core count and n values that do not divide the grain.
func TestRunRangeCoversRange(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		p := NewWorkerPool(w)
		for _, n := range []int{0, 1, 7, 64, 1000} {
			var hits = make([]int32, n)
			p.RunRange(n, 13, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("width %d n %d: element %d visited %d times", w, n, i, h)
				}
			}
		}
		p.Close()
	}
}

// TestRunRangeDeterministicAcrossWidths is the cross-worker determinism
// contract: chunk boundaries depend only on (n, grain), so a kernel that
// writes disjoint shards and merges in chunk order produces bit-identical
// output at widths 1, 2, 4 and 8 — however the scheduler interleaves the
// chunk claims.
func TestRunRangeDeterministicAcrossWidths(t *testing.T) {
	const n, grain = 997, 16
	nChunks := (n + grain - 1) / grain
	run := func(w int) []float64 {
		p := NewWorkerPool(w)
		defer p.Close()
		// Each chunk accumulates into its own shard (a float sum whose
		// value depends on the chunk's bounds), then shards merge in
		// ascending chunk order — the packed-GEMM / MD-forces pattern.
		shards := make([]float64, nChunks)
		p.RunRange(n, grain, func(lo, hi int) {
			var s float64
			for i := lo; i < hi; i++ {
				s += 1.0 / float64(i+1)
			}
			shards[lo/grain] = s
		})
		out := make([]float64, 1)
		for _, s := range shards {
			out[0] += s
		}
		return out
	}
	ref := run(1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w); got[0] != ref[0] {
			t.Fatalf("width %d: merged sum %v != %v (width 1)", w, got[0], ref[0])
		}
	}
}

// TestRunRangeShuffledShardOrder is the merge-order regression test: the
// shard a chunk writes to is keyed by the chunk's position, not by claim
// order, so even when workers claim chunks in a scrambled order the
// merged result is unchanged. The stagger goroutine makes early chunks
// finish late, scrambling completion order deliberately.
func TestRunRangeShuffledShardOrder(t *testing.T) {
	const n, grain = 64, 4
	nChunks := n / grain
	p := NewWorkerPool(4)
	defer p.Close()

	var gate sync.WaitGroup
	gate.Add(1)
	var release sync.Once
	shards := make([]int, nChunks)
	var claimed atomic.Int32
	p.RunRange(n, grain, func(lo, hi int) {
		if claimed.Add(1) == 1 {
			gate.Wait() // first-claimed chunk completes last
		}
		shards[lo/grain] = lo
		if int(claimed.Load()) == nChunks {
			release.Do(gate.Done)
		}
	})
	for c, lo := range shards {
		if lo != c*grain {
			t.Fatalf("shard %d recorded lo %d, want %d", c, lo, c*grain)
		}
	}
}

// TestRunRangeMaxCapsParticipants pins that the cap bounds concurrency
// without changing the chunk decomposition.
func TestRunRangeMaxCapsParticipants(t *testing.T) {
	p := NewWorkerPool(8)
	defer p.Close()
	var inFlight, peak atomic.Int32
	var mu sync.Mutex
	seen := map[int]bool{}
	p.RunRangeMax(2, 64, 1, func(lo, hi int) {
		cur := inFlight.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		mu.Lock()
		seen[lo] = true
		mu.Unlock()
		inFlight.Add(-1)
	})
	if got := peak.Load(); got > 2 {
		t.Fatalf("cap 2 but %d chunks ran concurrently", got)
	}
	if len(seen) != 64 {
		t.Fatalf("cap changed coverage: %d/64 chunks ran", len(seen))
	}
}

// TestRunRangePanicLowestChunk pins the ItemPanic contract at widths 1
// and 4: all chunks run, and the re-raised panic is the one whose chunk
// starts lowest.
func TestRunRangePanicLowestChunk(t *testing.T) {
	for _, w := range []int{1, 4} {
		p := NewWorkerPool(w)
		var ran atomic.Int32
		func() {
			defer func() {
				r := recover()
				ip, ok := r.(ItemPanic)
				if !ok {
					t.Fatalf("width %d: recovered %v, want ItemPanic", w, r)
				}
				if ip.Index != 10 {
					t.Fatalf("width %d: panic index %d, want lowest chunk 10", w, ip.Index)
				}
			}()
			p.RunRange(50, 10, func(lo, hi int) {
				ran.Add(1)
				if lo == 10 || lo == 30 {
					panic(lo)
				}
			})
		}()
		if ran.Load() != 5 {
			t.Fatalf("width %d: %d chunks ran, want all 5 despite panics", w, ran.Load())
		}
		p.Close()
	}
}

// TestRunRangeConcurrentCallers pins that one pool multiplexes
// overlapping RunRange calls from multiple goroutines without
// cross-talk.
func TestRunRangeConcurrentCallers(t *testing.T) {
	p := NewWorkerPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sums := make([]int, 20)
			p.RunRange(len(sums), 3, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					sums[i] = i * i
				}
			})
			for i, v := range sums {
				if v != i*i {
					t.Errorf("slot %d = %d, want %d", i, v, i*i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSharedPoolSingleton pins that Shared returns one process-wide pool.
func TestSharedPoolSingleton(t *testing.T) {
	if Shared() != Shared() {
		t.Fatal("Shared() returned distinct pools")
	}
	if Shared().Workers() < 1 {
		t.Fatalf("shared pool width %d", Shared().Workers())
	}
}

// TestGrainBounds pins the Grain helper's floor behaviour.
func TestGrainBounds(t *testing.T) {
	p := NewWorkerPool(4)
	defer p.Close()
	if g := p.Grain(1000, 4, 8); g != 62 {
		t.Fatalf("Grain(1000,4,8) = %d, want 62", g)
	}
	if g := p.Grain(10, 4, 8); g != 8 {
		t.Fatalf("minGrain not applied: %d", g)
	}
	if g := p.Grain(0, 0, 0); g != 1 {
		t.Fatalf("degenerate Grain = %d, want 1", g)
	}
}

// inlineAllocProbe gives TestRunRangeInlineNoAllocs a capture-free func
// value: a closure passed to RunRange is heap-allocated by escape
// analysis regardless of width (which is why the hot kernels create
// their closures only on the above-threshold branch), so measuring pure
// dispatch cost needs a top-level function.
var inlineAllocSink [256]float64

func inlineAllocProbe(lo, hi int) {
	for i := lo; i < hi; i++ {
		inlineAllocSink[i]++
	}
}

// TestRunRangeInlineNoAllocs pins the width-1 dispatch cost: a plain
// loop, no job handle, no channel — the property that lets hot kernels
// call RunRange unconditionally without regressing single-core alloc
// floors.
func TestRunRangeInlineNoAllocs(t *testing.T) {
	p := NewWorkerPool(1)
	defer p.Close()
	allocs := testing.AllocsPerRun(50, func() {
		p.RunRange(len(inlineAllocSink), 16, inlineAllocProbe)
	})
	if allocs != 0 {
		t.Fatalf("width-1 RunRange allocates %.0f objects per call", allocs)
	}
}
