package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// WorkerPool is the persistent counterpart of Pool: a fixed set of
// long-lived worker goroutines that park between calls, so a hot kernel
// (GEMM row panels, MD force slabs, sharded optimizer loops) pays no
// goroutine-spawn cost per invocation. Work is dispatched as chunked
// ranges claimed through an atomic cursor; callers that write results to
// disjoint shards and merge them in shard order get output independent
// of scheduling, exactly as with Pool.
//
// The pool is safe for concurrent RunRange calls from multiple
// goroutines: each call is an independent job and helpers multiplex
// between them. A WorkerPool must be released with Close when it is no
// longer needed; the process-wide Shared pool is never closed.
type WorkerPool struct {
	workers int
	jobs    chan *rangeJob
}

// rangeJob is one RunRange invocation in flight: a chunk cursor claimed
// by every participant, a count of participants still working, and the
// lowest-chunk panic, if any. Jobs are recycled through jobPool so a hot
// kernel's dispatch is allocation-free in steady state (the done channel
// is buffered and reused across invocations; finish sends rather than
// closes).
type rangeJob struct {
	fn     func(lo, hi int)
	n      int
	grain  int
	cursor atomic.Int64
	active atomic.Int64
	done   chan struct{}

	mu    sync.Mutex
	first *ItemPanic
}

var jobPool = sync.Pool{New: func() any {
	return &rangeJob{done: make(chan struct{}, 1)}
}}

// work claims chunks until the range is exhausted. Panics are recorded
// per chunk (lowest chunk start wins) and never escape a helper.
func (j *rangeJob) work() {
	for {
		c := int(j.cursor.Add(1)) - 1
		lo := c * j.grain
		if lo >= j.n {
			return
		}
		hi := lo + j.grain
		if hi > j.n {
			hi = j.n
		}
		j.runChunk(lo, hi)
	}
}

func (j *rangeJob) runChunk(lo, hi int) {
	defer func() {
		if r := recover(); r != nil {
			j.mu.Lock()
			if j.first == nil || lo < j.first.Index {
				j.first = &ItemPanic{Index: lo, Value: r}
			}
			j.mu.Unlock()
		}
	}()
	j.fn(lo, hi)
}

// finish retires one participant; the last one releases the caller. The
// job may be recycled the moment the caller receives from done, so this
// send must be the final touch of j by any participant.
func (j *rangeJob) finish() {
	if j.active.Add(-1) == 0 {
		j.done <- struct{}{}
	}
}

// runChunkSerial is the inline-execution counterpart of rangeJob.runChunk:
// same all-chunks-run, lowest-chunk-panic-wins semantics, but tracked in a
// caller-stack ItemPanic slot so the serial path allocates nothing.
func runChunkSerial(first **ItemPanic, lo, hi int, fn func(lo, hi int)) {
	defer func() {
		if r := recover(); r != nil {
			if *first == nil || lo < (*first).Index {
				*first = &ItemPanic{Index: lo, Value: r}
			}
		}
	}()
	fn(lo, hi)
}

// NewWorkerPool starts a persistent pool of the given width.
// Non-positive widths resolve to GOMAXPROCS. The caller's goroutine
// always participates in dispatched work, so a pool of width w starts
// w-1 helper goroutines; width 1 starts none and every RunRange runs
// inline.
func NewWorkerPool(workers int) *WorkerPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &WorkerPool{workers: workers}
	if workers > 1 {
		// Helpers multiplex jobs over one buffered channel; the buffer is
		// sized so dispatch never blocks (at most workers-1 outstanding
		// job handles per RunRange, and jobs are fully drained before a
		// RunRange returns).
		p.jobs = make(chan *rangeJob, workers)
		for w := 1; w < workers; w++ {
			go p.helper()
		}
	}
	return p
}

func (p *WorkerPool) helper() {
	for j := range p.jobs {
		j.work()
		j.finish()
	}
}

// Workers returns the pool width.
func (p *WorkerPool) Workers() int { return p.workers }

// Close stops the helper goroutines. RunRange must not be called after
// Close; in-flight calls complete normally.
func (p *WorkerPool) Close() {
	if p.jobs != nil {
		close(p.jobs)
	}
}

// shared is the process-wide pool, sized to GOMAXPROCS at first use.
var (
	sharedOnce sync.Once
	sharedPool *WorkerPool
)

// Shared returns the process-wide persistent pool, creating it (at
// GOMAXPROCS width) on first use. It is never closed.
func Shared() *WorkerPool {
	sharedOnce.Do(func() { sharedPool = NewWorkerPool(0) })
	return sharedPool
}

// RunRange partitions [0, n) into chunks of grain elements and invokes
// fn(lo, hi) for each chunk, using the caller plus up to workers-1
// helpers. Chunks are claimed dynamically, so load balances across
// uneven work, but chunk boundaries depend only on (n, grain): callers
// that write each chunk's results to its own storage and combine them
// in chunk order are bit-identical at any pool width. fn must not
// retain or overlap chunk ranges.
//
// All chunks run to completion even when some panic; the panic whose
// chunk starts lowest is then re-raised on the caller as an ItemPanic
// (Index = the chunk's lo), matching Pool.ForEach semantics.
func (p *WorkerPool) RunRange(n, grain int, fn func(lo, hi int)) {
	p.RunRangeMax(p.workers, n, grain, fn)
}

// RunRangeMax is RunRange with the participant count capped at max
// (1 <= effective <= pool width): the MD force kernel uses it to honour
// System.Workers without needing a pool per setting. The chunk
// decomposition — and therefore the result, for deterministic callers —
// does not depend on the cap.
func (p *WorkerPool) RunRangeMax(max, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	workers := p.workers
	if max > 0 && max < workers {
		workers = max
	}
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 || p.jobs == nil {
		// Inline execution: no job handle, no channel traffic, zero
		// allocations — a width-1 pool dispatches exactly like a plain
		// loop over the chunk decomposition.
		var first *ItemPanic
		for lo := 0; lo < n; lo += grain {
			hi := lo + grain
			if hi > n {
				hi = n
			}
			runChunkSerial(&first, lo, hi, fn)
		}
		if first != nil {
			panic(*first)
		}
		return
	}
	j := jobPool.Get().(*rangeJob)
	j.fn, j.n, j.grain = fn, n, grain
	j.cursor.Store(0)
	j.active.Store(int64(workers))
	j.first = nil
	for w := 1; w < workers; w++ {
		p.jobs <- j
	}
	j.work()
	j.finish()
	<-j.done
	first := j.first
	j.fn = nil
	jobPool.Put(j)
	if first != nil {
		panic(*first)
	}
}

// Grain returns a chunk size that splits n items into roughly
// chunksPerWorker chunks per pool worker (for dynamic load balancing),
// never below minGrain (so tiny chunks do not drown the work in
// dispatch overhead). The result depends only on the arguments and the
// pool width — not on scheduling — so it is safe to use for
// deterministic shard layouts only when the pool width itself is fixed;
// kernels that must be bit-identical across widths derive their grain
// from the problem shape alone.
func (p *WorkerPool) Grain(n, chunksPerWorker, minGrain int) int {
	if chunksPerWorker <= 0 {
		chunksPerWorker = 1
	}
	g := n / (p.workers * chunksPerWorker)
	if g < minGrain {
		g = minGrain
	}
	if g < 1 {
		g = 1
	}
	return g
}
