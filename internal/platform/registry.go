package platform

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"summitscale/internal/machine"
	"summitscale/internal/units"
)

// Summit returns the paper's baseline platform.
func Summit() Platform { return Platform{Key: "summit", Machine: machine.Summit()} }

// Frontier returns the Frontier-like platform (see machine.Frontier for
// calibration notes).
func Frontier() Platform { return Platform{Key: "frontier", Machine: machine.Frontier()} }

// JUWELSBooster returns the JUWELS-Booster-like platform of Kesselheim
// et al.
func JUWELSBooster() Platform {
	return Platform{Key: "juwels-booster", Machine: machine.JUWELSBooster()}
}

// Config parameterizes a generic cluster for New. Zero-valued optional
// fields (CollectiveAlpha, Rails, CPUCores, DDR, NetworkLatency, NVMe*)
// get conservative defaults; the bandwidth fields are mandatory.
type Config struct {
	Name        string
	Nodes       int
	GPUsPerNode int
	GPU         machine.GPU
	InjectionBW units.BytesPerSecond
	NVLinkBW    units.BytesPerSecond
	FSReadBW    units.BytesPerSecond
	FSWriteBW   units.BytesPerSecond
	// Node-local storage; all three zero means diskless.
	NodeNVMe    units.Bytes
	NVMeReadBW  units.BytesPerSecond
	NVMeWriteBW units.BytesPerSecond

	CollectiveAlpha units.Seconds
	Rails           int
	CPUCores        int
	DDR             units.Bytes
	NetworkLatency  units.Seconds
	// NodeMTBF is the per-node mean time between failures; zero defaults
	// to two years (Summit-class reliability).
	NodeMTBF units.Seconds
}

// GenericConfig returns the parameter set behind the registry's "generic"
// entry — a 512-node, 4-GPU-per-node commodity AI cluster — as a starting
// point for user-defined machines.
func GenericConfig() Config {
	return Config{
		Name:        "Generic-512",
		Nodes:       512,
		GPUsPerNode: 4,
		GPU: machine.GPU{
			Name:       "GPU-generic",
			PeakFP64:   10 * units.TFlops,
			PeakFP32:   20 * units.TFlops,
			PeakTensor: 200 * units.TFlops,
			HBM:        40 * units.GB,
			HBMBW:      1.5 * units.TBps,
		},
		InjectionBW:     50 * units.GBps,
		NVLinkBW:        50 * units.GBps,
		FSReadBW:        500 * units.GBps,
		FSWriteBW:       400 * units.GBps,
		NodeNVMe:        2000 * units.GB,
		NVMeReadBW:      6 * units.GBps,
		NVMeWriteBW:     3 * units.GBps,
		CollectiveAlpha: 1e-7,
		Rails:           2,
		CPUCores:        64,
		DDR:             512 * units.GB,
		NetworkLatency:  2e-6,
	}
}

// Generic returns the registry's default parameterizable cluster.
func Generic() Platform {
	p, err := New("generic", GenericConfig())
	if err != nil {
		panic("platform: generic config invalid: " + err.Error())
	}
	return p
}

// New builds a platform from parameters and validates it.
func New(key string, c Config) (Platform, error) {
	if c.Rails < 1 {
		c.Rails = 1
	}
	if c.CollectiveAlpha == 0 {
		c.CollectiveAlpha = 1e-7
	}
	if c.NetworkLatency == 0 {
		c.NetworkLatency = 2e-6
	}
	if c.NodeMTBF == 0 {
		c.NodeMTBF = 2 * units.Year
	}
	m := machine.Machine{
		Name:  c.Name,
		Nodes: c.Nodes,
		Node: machine.Node{
			Name:        c.Name + "-node",
			GPUs:        c.GPUsPerNode,
			GPU:         c.GPU,
			CPUCores:    c.CPUCores,
			DDR:         c.DDR,
			NVMe:        c.NodeNVMe,
			NVMeReadBW:  c.NVMeReadBW,
			NVMeWriteBW: c.NVMeWriteBW,
			InjectionBW: c.InjectionBW,
			NVLinkBW:    c.NVLinkBW,
		},
		FS:              machine.SharedFS{Name: c.Name + "-fs", ReadBW: c.FSReadBW, WriteBW: c.FSWriteBW},
		RingAllreduceBW: c.InjectionBW / 2,
		NetworkLatency:  c.NetworkLatency,
		CollectiveAlpha: c.CollectiveAlpha,
		Rails:           c.Rails,
		NodeMTBF:        c.NodeMTBF,
	}
	p := Platform{Key: key, Machine: m}
	if err := Validate(p); err != nil {
		return Platform{}, err
	}
	return p, nil
}

// Validate checks the invariants every registered platform must hold so
// the downstream models cannot produce Inf/NaN estimates.
func Validate(p Platform) error {
	switch {
	case p.Key == "":
		return fmt.Errorf("platform: empty registry key")
	case p.Name == "":
		return fmt.Errorf("platform %q: empty machine name", p.Key)
	case p.Nodes <= 0:
		return fmt.Errorf("platform %q: node count must be positive, got %d", p.Key, p.Nodes)
	case !(p.Node.InjectionBW > 0):
		return fmt.Errorf("platform %q: injection bandwidth must be positive, got %v",
			p.Key, float64(p.Node.InjectionBW))
	case !(p.FS.ReadBW > 0):
		return fmt.Errorf("platform %q: shared-FS read bandwidth must be positive, got %v",
			p.Key, float64(p.FS.ReadBW))
	case !(p.CollectiveAlpha >= 0):
		return fmt.Errorf("platform %q: collective latency must be non-negative, got %v",
			p.Key, float64(p.CollectiveAlpha))
	case p.Node.GPUs < 0:
		return fmt.Errorf("platform %q: GPU count must be non-negative, got %d", p.Key, p.Node.GPUs)
	case p.Node.GPUs > 0 && !(p.Node.GPU.PeakTensor > 0):
		return fmt.Errorf("platform %q: GPU %s needs a positive tensor peak", p.Key, p.Node.GPU.Name)
	case p.Node.GPUs > 1 && !(p.Node.NVLinkBW > 0):
		return fmt.Errorf("platform %q: multi-GPU node needs positive NVLink bandwidth", p.Key)
	}
	return nil
}

var (
	registryMu sync.RWMutex
	registry   = map[string]func() Platform{
		"summit":         Summit,
		"frontier":       Frontier,
		"juwels-booster": JUWELSBooster,
		"generic":        Generic,
	}
)

// Register adds a platform constructor under the given name (lowercased).
// It rejects duplicates and constructors whose platform fails Validate.
func Register(name string, build func() Platform) error {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" {
		return fmt.Errorf("platform: empty name")
	}
	p := build()
	p.Key = key
	if err := Validate(p); err != nil {
		return err
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[key]; dup {
		return fmt.Errorf("platform: %q already registered", key)
	}
	registry[key] = build
	return nil
}

// Lookup resolves a registry name (case-insensitive) to a platform.
func Lookup(name string) (Platform, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	registryMu.RLock()
	build, ok := registry[key]
	registryMu.RUnlock()
	if !ok {
		return Platform{}, fmt.Errorf("platform: unknown machine %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	p := build()
	p.Key = key
	return p, nil
}

// MustLookup is Lookup that panics on unknown names.
func MustLookup(name string) Platform {
	p, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns the registered platform names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
