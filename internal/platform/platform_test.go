package platform_test

import (
	"strings"
	"testing"

	"summitscale/internal/machine"
	"summitscale/internal/models"
	"summitscale/internal/netsim"
	"summitscale/internal/perf"
	"summitscale/internal/platform"
	"summitscale/internal/storage"
	"summitscale/internal/units"
)

func TestRegistrySeededMachines(t *testing.T) {
	names := platform.Names()
	if len(names) < 4 {
		t.Fatalf("want >= 4 registered machines, got %v", names)
	}
	for _, want := range []string{"summit", "frontier", "juwels-booster", "generic"} {
		p, err := platform.Lookup(want)
		if err != nil {
			t.Errorf("Lookup(%q): %v", want, err)
			continue
		}
		if err := platform.Validate(p); err != nil {
			t.Errorf("%s fails validation: %v", want, err)
		}
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	for _, name := range []string{"Summit", "SUMMIT", "  summit "} {
		p, err := platform.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if p.Key != "summit" {
			t.Errorf("Lookup(%q).Key = %q", name, p.Key)
		}
	}
}

func TestLookupUnknownListsNames(t *testing.T) {
	_, err := platform.Lookup("el-capitan")
	if err == nil {
		t.Fatal("Lookup of unknown machine succeeded")
	}
	if !strings.Contains(err.Error(), "summit") {
		t.Errorf("error should list registered names, got: %v", err)
	}
}

// TestSummitFactoriesMatchLegacyConstructors pins the refactor contract:
// the platform factories on the baseline produce exactly what the old
// Summit* constructors produce.
func TestSummitFactoriesMatchLegacyConstructors(t *testing.T) {
	p := platform.Summit()
	if !p.IsPaperBaseline() {
		t.Fatal("summit must be the paper baseline")
	}
	if got, want := p.Fabric(), netsim.SummitFabric(); got != want {
		t.Errorf("Fabric = %+v, want %+v", got, want)
	}
	if got, want := p.HierarchicalFabric(), netsim.SummitHierarchicalFabric(); got != want {
		t.Errorf("HierarchicalFabric = %+v, want %+v", got, want)
	}
	if got, want := *p.GPFS(), *storage.NewGPFS(); got != want {
		t.Errorf("GPFS = %+v, want %+v", got, want)
	}
	if got, want := *p.NVMe(), *storage.NewNVMe(); got != want {
		t.Errorf("NVMe = %+v, want %+v", got, want)
	}
	if got, want := p.Roofline(), perf.V100Roofline(); got != want {
		t.Errorf("Roofline = %+v, want %+v", got, want)
	}
	j, legacy := p.Job(models.ResNet50(), 128), perf.SummitJob(models.ResNet50(), 128)
	if j.Fabric != legacy.Fabric || j.GPUsPerNode != legacy.GPUsPerNode ||
		j.NVLinkBW != legacy.NVLinkBW || j.Nodes != legacy.Nodes {
		t.Errorf("Job = %+v, want %+v", j, legacy)
	}
}

func TestDisklessMachine(t *testing.T) {
	jb := platform.MustLookup("juwels-booster")
	if jb.HasNodeLocal() {
		t.Error("JUWELS Booster is diskless; HasNodeLocal must be false")
	}
	if _, ok := jb.TrainingStore().(*storage.GPFS); !ok {
		t.Errorf("diskless TrainingStore should fall back to the shared FS, got %T", jb.TrainingStore())
	}
	if sm := platform.Summit(); !sm.HasNodeLocal() {
		t.Error("Summit has node-local NVMe; HasNodeLocal must be true")
	} else if _, ok := sm.TrainingStore().(*storage.NVMe); !ok {
		t.Errorf("Summit TrainingStore should be NVMe, got %T", sm.TrainingStore())
	}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic, got none", what)
		}
	}()
	f()
}

func TestConstructorGuards(t *testing.T) {
	mustPanic(t, "zero-bandwidth fabric", func() { netsim.NewFabric(1e-7, 0) })
	mustPanic(t, "negative-bandwidth fabric", func() { netsim.NewFabric(1e-7, -1) })
	mustPanic(t, "negative-latency fabric", func() { netsim.NewFabric(-1, 25*units.GBps) })
	mustPanic(t, "NVMe on diskless node", func() {
		storage.NVMeFor(machine.JUWELSBoosterNode())
	})
	mustPanic(t, "NVMe from diskless platform", func() {
		platform.MustLookup("juwels-booster").NVMe()
	})
	mustPanic(t, "roofline without peak", func() { perf.RooflineFor(machine.GPU{Name: "null"}) })
	mustPanic(t, "GPFS without FS", func() { storage.GPFSFor(machine.Machine{}) })
	mustPanic(t, "stager without injection bw", func() { storage.StagerFor(machine.Machine{}) })
}

func TestNewValidatesConfig(t *testing.T) {
	good := platform.GenericConfig()
	if _, err := platform.New("ok", good); err != nil {
		t.Fatalf("GenericConfig should validate: %v", err)
	}
	for _, tc := range []struct {
		name string
		mut  func(*platform.Config)
	}{
		{"zero nodes", func(c *platform.Config) { c.Nodes = 0 }},
		{"negative injection bw", func(c *platform.Config) { c.InjectionBW = -1 }},
		{"zero FS read bw", func(c *platform.Config) { c.FSReadBW = 0 }},
		{"gpus without tensor peak", func(c *platform.Config) { c.GPU.PeakTensor = 0 }},
		{"multi-gpu without nvlink", func(c *platform.Config) { c.NVLinkBW = 0 }},
		{"empty name", func(c *platform.Config) { c.Name = "" }},
	} {
		c := platform.GenericConfig()
		tc.mut(&c)
		if _, err := platform.New("bad", c); err == nil {
			t.Errorf("%s: New accepted invalid config", tc.name)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	if err := platform.Register("summit", platform.Summit); err == nil {
		t.Error("Register must reject an already-registered name")
	}
	if err := platform.Register("", platform.Summit); err == nil {
		t.Error("Register must reject an empty name")
	}
	if err := platform.Register("test-dup-probe", platform.Summit); err != nil {
		t.Fatalf("Register of a fresh name failed: %v", err)
	}
	if err := platform.Register("Test-Dup-Probe", platform.Summit); err == nil {
		t.Error("Register must be case-insensitive about duplicates")
	}
	if _, err := platform.Lookup("test-dup-probe"); err != nil {
		t.Errorf("registered platform not resolvable: %v", err)
	}
}
