// Package platform bundles a named machine model with factories for the
// network, storage, and performance models built from it, plus a registry
// of known systems, so that experiments and CLIs can run against any
// machine instead of hardcoded Summit constructors.
//
// The registry is seeded with "summit" (byte-identical to the machine
// package's published Summit rates — the paper's baseline), "frontier"
// and "juwels-booster" (calibrated from published system descriptions;
// see internal/machine/peers.go), and "generic" (a parameterizable
// cluster built from Config). Register adds more at runtime; the CLIs
// expose the registry through their -platform flag.
package platform

import (
	"summitscale/internal/machine"
	"summitscale/internal/models"
	"summitscale/internal/netsim"
	"summitscale/internal/perf"
	"summitscale/internal/storage"
)

// Platform is a named machine model plus factory methods for every
// downstream quantitative model. The zero value is not usable; obtain
// one from Lookup, the seeded constructors, or New.
type Platform struct {
	// Key is the registry name ("summit", "frontier", ...). The key
	// "summit" marks the paper's baseline: experiments carry the paper's
	// reference values only there.
	Key string
	machine.Machine
}

// IsPaperBaseline reports whether this is the machine the paper's
// reference numbers were measured on.
func (p Platform) IsPaperBaseline() bool { return p.Key == "summit" }

// HasNodeLocal reports whether the machine has a usable node-local burst
// buffer (diskless systems such as JUWELS Booster do not).
func (p Platform) HasNodeLocal() bool {
	return p.Node.NVMe > 0 && p.Node.NVMeReadBW > 0 && p.Node.NVMeWriteBW > 0
}

// Fabric returns the inter-node α–β communication model.
func (p Platform) Fabric() netsim.Fabric { return netsim.FabricFor(p.Machine) }

// HierarchicalFabric returns the two-level (NVLink island + inter-node
// rails) communication model.
func (p Platform) HierarchicalFabric() netsim.HierarchicalFabric {
	return netsim.HierarchicalFabricFor(p.Machine)
}

// GPFS returns the shared-file-system input path.
func (p Platform) GPFS() *storage.GPFS { return storage.GPFSFor(p.Machine) }

// NVMe returns the node-local burst-buffer input path. It panics on
// diskless machines; check HasNodeLocal first.
func (p Platform) NVMe() *storage.NVMe { return storage.NVMeFor(p.Node) }

// Stager returns the dataset staging model (shared FS -> node-local).
// Like NVMe, it requires node-local storage.
func (p Platform) Stager() *storage.Stager { return storage.StagerFor(p.Machine) }

// TrainingStore returns the fastest available training input path: the
// node-local burst buffer when the machine has one, else the shared FS.
func (p Platform) TrainingStore() storage.Store {
	if p.HasNodeLocal() {
		return p.NVMe()
	}
	return p.GPFS()
}

// Job fills this machine's defaults for a training job of the given model
// at the given node count.
func (p Platform) Job(m models.ModelSpec, nodes int) perf.Job {
	return perf.JobOn(p.Machine, m, nodes)
}

// Roofline returns the device-level mixed-precision roofline of the
// machine's GPU.
func (p Platform) Roofline() perf.Roofline { return perf.RooflineFor(p.Node.GPU) }
