// Package perf models the step time, throughput, sustained FLOP rate, and
// weak-scaling efficiency of distributed training jobs on Summit-class
// machines. It combines the compute, communication (internal/netsim), and
// storage (internal/storage) models into the scaling curves of the paper's
// §IV-B case studies.
//
// The step model for synchronous data parallelism with per-device batch b:
//
//	compute  = accum · b / singleGPUThroughput
//	comm     = intra-node NVLink reduce + inter-node ring allreduce(gradBytes)
//	io       = step input bytes / achievable store bandwidth
//	jitter   = 1 + jitterPerDoubling · log2(nodes)   (stragglers, OS noise)
//	step     = [max(compute, io) + exposedComm + fixedOverhead] · jitter
//
// where exposedComm is (1-overlap)·comm, or max(0, comm - compute) when a
// one-step gradient lag fully pipelines communication (Kurth et al.).
package perf

import (
	"fmt"
	"math"

	"summitscale/internal/machine"
	"summitscale/internal/models"
	"summitscale/internal/netsim"
	"summitscale/internal/storage"
	"summitscale/internal/units"
)

// Job describes a training configuration to analyze.
type Job struct {
	Model       models.ModelSpec
	Nodes       int
	GPUsPerNode int

	// Store is the input path; nil means in-memory (no I/O term).
	Store storage.Store
	// Fabric provides the communication cost model.
	Fabric netsim.Fabric
	// NVLinkBW is the intra-node reduction bandwidth per GPU pair.
	NVLinkBW units.BytesPerSecond

	// AccumSteps is the number of micro-batches per allreduce.
	AccumSteps int
	// ModelParallelWays shards each replica across this many nodes,
	// reducing the data-parallel ring size (Yang et al.).
	ModelParallelWays int
	// OverlapComm in [0,1] is the fraction of allreduce hidden beneath
	// backpropagation.
	OverlapComm float64
	// GradLag applies the one-step gradient staleness of Kurth et al.,
	// which hides communication up to the full compute time.
	GradLag bool
	// JitterPerDoubling adds straggler/OS-noise step inflation per
	// doubling of node count (typically 0.005–0.01 on Summit).
	JitterPerDoubling float64
	// FixedOverhead is per-step time independent of scale (optimizer CPU
	// work, kernel launches, amortized checkpointing).
	FixedOverhead units.Seconds
}

// JobOn fills machine defaults for a job on the given system: GPUs per
// node, inter-node fabric, and intra-node NVLink bandwidth.
func JobOn(mach machine.Machine, m models.ModelSpec, nodes int) Job {
	return Job{
		Model:       m,
		Nodes:       nodes,
		GPUsPerNode: mach.Node.GPUs,
		Fabric:      netsim.FabricFor(mach),
		NVLinkBW:    mach.Node.NVLinkBW,
		AccumSteps:  1,
	}
}

// SummitJob fills machine defaults for a job on Summit.
func SummitJob(m models.ModelSpec, nodes int) Job {
	return JobOn(machine.Summit(), m, nodes)
}

// Breakdown itemizes one step's time.
type Breakdown struct {
	Compute     units.Seconds
	IO          units.Seconds
	Comm        units.Seconds // full allreduce time
	ExposedComm units.Seconds // portion not hidden by compute
	Jitter      float64
	Total       units.Seconds
}

// String renders the breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf("compute=%v io=%v comm=%v exposed=%v jitter=%.3f total=%v",
		b.Compute, b.IO, b.Comm, b.ExposedComm, b.Jitter, b.Total)
}

// Analyze computes the step breakdown for a job.
func Analyze(j Job) Breakdown {
	if j.GPUsPerNode <= 0 {
		j.GPUsPerNode = 1
	}
	if j.AccumSteps <= 0 {
		j.AccumSteps = 1
	}
	if j.ModelParallelWays <= 0 {
		j.ModelParallelWays = 1
	}
	devices := j.Nodes * j.GPUsPerNode

	compute := units.Seconds(float64(j.AccumSteps) * float64(j.Model.PerGPUBatch) / j.Model.SingleGPUThroughput)

	// Communication: intra-node NVLink reduce-scatter across the node's
	// GPUs, then an inter-node ring across the data-parallel group.
	grad := j.Model.GradientBytes()
	var comm units.Seconds
	if devices > 1 {
		if j.GPUsPerNode > 1 && j.NVLinkBW > 0 {
			g := float64(j.GPUsPerNode)
			comm += units.Seconds(2 * (g - 1) / g * float64(grad) / float64(j.NVLinkBW))
		}
		dpNodes := j.Nodes / j.ModelParallelWays
		if dpNodes > 1 {
			comm += j.Fabric.RingAllReduce(dpNodes, grad)
		}
	}

	// Input pipeline: all devices' records for this step through the store.
	var io units.Seconds
	if j.Store != nil {
		stepBytes := float64(devices*j.AccumSteps*j.Model.PerGPUBatch) * float64(j.Model.RecordBytes)
		io = units.Seconds(stepBytes / float64(j.Store.ReadBW(j.Nodes)))
	}

	var exposed units.Seconds
	switch {
	case j.GradLag:
		if comm > compute {
			exposed = comm - compute
		}
	default:
		exposed = units.Seconds((1 - j.OverlapComm) * float64(comm))
	}

	jitter := 1.0
	if j.JitterPerDoubling > 0 && j.Nodes > 1 {
		jitter = 1 + j.JitterPerDoubling*math.Log2(float64(j.Nodes))
	}

	base := compute
	if io > base {
		base = io
	}
	total := units.Seconds((float64(base) + float64(exposed) + float64(j.FixedOverhead)) * jitter)
	return Breakdown{Compute: compute, IO: io, Comm: comm, ExposedComm: exposed, Jitter: jitter, Total: total}
}

// Throughput returns global samples/s for the job.
func Throughput(j Job) float64 {
	b := Analyze(j)
	devices := j.Nodes * max(1, j.GPUsPerNode)
	accum := max(1, j.AccumSteps)
	samples := float64(devices * accum * j.Model.PerGPUBatch)
	return samples / float64(b.Total)
}

// SustainedFlops returns the aggregate sustained rate.
func SustainedFlops(j Job) units.FlopsPerSecond {
	return units.FlopsPerSecond(Throughput(j) * float64(j.Model.TrainFlopsPerSample))
}

// Point is one entry of a scaling curve.
type Point struct {
	Nodes      int
	Throughput float64 // samples/s
	Flops      units.FlopsPerSecond
	Efficiency float64 // per-device throughput vs the base point
	Step       Breakdown
}

// ScalingCurve evaluates the job over node counts (weak scaling: per-GPU
// batch fixed). Efficiency is relative to the first entry.
func ScalingCurve(j Job, nodes []int) []Point {
	if len(nodes) == 0 {
		panic("perf: empty node list")
	}
	pts := make([]Point, len(nodes))
	var basePerDev float64
	for i, n := range nodes {
		jn := j
		jn.Nodes = n
		th := Throughput(jn)
		perDev := th / float64(n*max(1, j.GPUsPerNode))
		if i == 0 {
			basePerDev = perDev
		}
		pts[i] = Point{
			Nodes:      n,
			Throughput: th,
			Flops:      SustainedFlops(jn),
			Efficiency: perDev / basePerDev,
			Step:       Analyze(jn),
		}
	}
	return pts
}

// ParallelEfficiency returns the weak-scaling efficiency between two node
// counts for the job.
func ParallelEfficiency(j Job, baseNodes, atNodes int) float64 {
	pts := ScalingCurve(j, []int{baseNodes, atNodes})
	return pts[1].Efficiency
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
