package perf

import (
	"math"
	"testing"

	"summitscale/internal/models"
	"summitscale/internal/netsim"
	"summitscale/internal/storage"
	"summitscale/internal/units"
)

func TestAnalyzeSingleNodeNoComm(t *testing.T) {
	j := SummitJob(models.ResNet50(), 1)
	j.GPUsPerNode = 1
	b := Analyze(j)
	if b.Comm != 0 || b.ExposedComm != 0 {
		t.Fatalf("single-device job has comm: %+v", b)
	}
	want := float64(j.Model.PerGPUBatch) / j.Model.SingleGPUThroughput
	if math.Abs(float64(b.Compute)-want) > 1e-12 {
		t.Fatalf("compute = %v", b.Compute)
	}
}

func TestCommGrowsWithGradientSize(t *testing.T) {
	small := SummitJob(models.ResNet50(), 512)
	large := SummitJob(models.BERTLarge(), 512)
	if Analyze(large).Comm <= Analyze(small).Comm {
		t.Fatal("BERT-large should communicate more than ResNet-50")
	}
}

// TestBERTCommBound reproduces the §VI-B conclusion: BERT-large's ~110 ms
// allreduce is comparable to its per-batch compute, so data-parallel
// training becomes communication-bound, while ResNet-50's 8 ms hides
// easily.
func TestBERTCommBound(t *testing.T) {
	bert := SummitJob(models.BERTLarge(), 4032)
	bb := Analyze(bert)
	ratioBert := float64(bb.Comm) / float64(bb.Compute)
	resnet := SummitJob(models.ResNet50(), 4608)
	rb := Analyze(resnet)
	ratioRes := float64(rb.Comm) / float64(rb.Compute)
	if ratioBert < 0.5 {
		t.Fatalf("BERT comm/compute = %v, should be near or above 1", ratioBert)
	}
	if ratioRes > 0.25 {
		t.Fatalf("ResNet comm/compute = %v, should be small", ratioRes)
	}
	if ratioBert <= ratioRes {
		t.Fatal("BERT should be more comm-bound than ResNet")
	}
}

func TestEfficiencyDecreasesWithScale(t *testing.T) {
	j := SummitJob(models.BERTLarge(), 1)
	j.OverlapComm = 0.5
	j.JitterPerDoubling = 0.005
	pts := ScalingCurve(j, []int{1, 16, 256, 4032})
	for i := 1; i < len(pts); i++ {
		if pts[i].Efficiency >= pts[i-1].Efficiency {
			t.Fatalf("efficiency not decreasing: %+v", pts)
		}
	}
	if pts[0].Efficiency != 1 {
		t.Fatalf("base efficiency = %v", pts[0].Efficiency)
	}
	// Throughput must still increase (scaling is sub-linear, not negative).
	for i := 1; i < len(pts); i++ {
		if pts[i].Throughput <= pts[i-1].Throughput {
			t.Fatalf("throughput not increasing: %+v", pts)
		}
	}
}

func TestGradLagHidesCommunication(t *testing.T) {
	base := SummitJob(models.DeepLabV3Plus(), 4560)
	base.OverlapComm = 0
	lag := base
	lag.GradLag = true
	bb, lb := Analyze(base), Analyze(lag)
	if lb.ExposedComm >= bb.ExposedComm {
		t.Fatalf("grad lag did not reduce exposed comm: %v vs %v", lb.ExposedComm, bb.ExposedComm)
	}
	// DeepLab's comm fits entirely under its compute.
	if lb.ExposedComm != 0 {
		t.Fatalf("DeepLab comm should hide fully under grad lag: %v", lb.ExposedComm)
	}
}

func TestAccumulationAmortizesComm(t *testing.T) {
	j := SummitJob(models.BERTLarge(), 4032)
	j.OverlapComm = 0
	one := Throughput(j)
	j.AccumSteps = 16
	sixteen := Throughput(j)
	if sixteen <= one {
		t.Fatalf("gradient accumulation should raise throughput: %v vs %v", sixteen, one)
	}
}

func TestModelParallelShrinksRing(t *testing.T) {
	j := SummitJob(models.PIGAN(), 4584)
	j.OverlapComm = 0
	full := Analyze(j).Comm
	j.ModelParallelWays = 8
	sharded := Analyze(j).Comm
	if sharded >= full {
		t.Fatalf("model parallelism should shrink allreduce: %v vs %v", sharded, full)
	}
}

func TestGPFSThrottlesResNetAtScale(t *testing.T) {
	j := SummitJob(models.ResNet50(), 4608)
	j.Store = storage.NewGPFS()
	gp := Throughput(j)
	j.Store = storage.NewNVMe()
	nv := Throughput(j)
	if gp >= nv {
		t.Fatal("GPFS-fed training should be slower than NVMe-fed")
	}
	// The paper's ratio: GPFS delivers 2.5 of the needed 20 TB/s, so
	// throughput drops to about an eighth.
	ratio := gp / nv
	if ratio > 0.2 || ratio < 0.08 {
		t.Fatalf("GPFS/NVMe throughput ratio = %v, want ~0.125", ratio)
	}
}

func TestJitterInflatesSteps(t *testing.T) {
	j := SummitJob(models.ResNet50(), 4096)
	j.JitterPerDoubling = 0.01
	b := Analyze(j)
	if math.Abs(b.Jitter-(1+0.01*12)) > 1e-9 {
		t.Fatalf("jitter = %v", b.Jitter)
	}
	j.JitterPerDoubling = 0
	if Analyze(j).Jitter != 1 {
		t.Fatal("zero jitter config inflated")
	}
}

func TestSustainedFlopsScale(t *testing.T) {
	j := SummitJob(models.DeepLabV3Plus(), 4560)
	j.GradLag = true
	f := SustainedFlops(j)
	// Kurth: 1.13 EF peak at 4560 nodes. Without the jitter/straggler terms
	// the model should land near the peak figure (within 25%).
	if math.Abs(float64(f)-1.13e18)/1.13e18 > 0.25 {
		t.Fatalf("DeepLab sustained = %v, paper peak 1.13 EF", f)
	}
}

func TestParallelEfficiencyHelper(t *testing.T) {
	j := SummitJob(models.WaveNetGW(), 8)
	j.OverlapComm = 0.3
	eff := ParallelEfficiency(j, 8, 1024)
	if eff <= 0 || eff >= 1 {
		t.Fatalf("efficiency = %v", eff)
	}
}

func TestBreakdownString(t *testing.T) {
	if Analyze(SummitJob(models.ResNet50(), 64)).String() == "" {
		t.Fatal("empty breakdown string")
	}
}

func TestFixedOverheadCounts(t *testing.T) {
	j := SummitJob(models.CVAE(), 4)
	base := Analyze(j).Total
	j.FixedOverhead = units.Seconds(0.5)
	if got := Analyze(j).Total; got <= base+0.49 {
		t.Fatalf("fixed overhead not applied: %v vs %v", got, base)
	}
}

// TestAnalyzeCommMatchesHierarchicalFabric: the step model's communication
// term must agree with netsim's two-level fabric model for the single-rail
// full-gradient configuration both encode.
func TestAnalyzeCommMatchesHierarchicalFabric(t *testing.T) {
	j := SummitJob(models.ResNet50(), 512)
	b := Analyze(j)
	h := netsim.SummitHierarchicalFabric()
	h.Rails = 1 // perf.Analyze models a single inter-node ring
	want := h.AllReduce(512, j.Model.GradientBytes())
	if rel := math.Abs(float64(b.Comm)-float64(want)) / float64(want); rel > 1e-9 {
		t.Fatalf("perf comm %v vs netsim hierarchical %v (rel %v)", b.Comm, want, rel)
	}
}
