package perf

import (
	"summitscale/internal/units"
)

// StrongScalingCurve evaluates the job at fixed *global* batch: as nodes
// grow, the per-device micro-batch shrinks (floor 1), which is how
// strong-scaling DL runs lose efficiency even before communication bites.
// globalBatch must be at least the device count of the largest point.
func StrongScalingCurve(j Job, globalBatch int, nodes []int) []Point {
	if len(nodes) == 0 {
		panic("perf: empty node list")
	}
	pts := make([]Point, len(nodes))
	var baseTime float64
	for i, n := range nodes {
		jn := j
		jn.Nodes = n
		devices := n * max(1, j.GPUsPerNode)
		per := globalBatch / devices
		if per < 1 {
			per = 1
		}
		m := jn.Model
		m.PerGPUBatch = per
		jn.Model = m
		b := Analyze(jn)
		// Time to process the global batch once.
		t := float64(b.Total)
		pts[i] = Point{
			Nodes:      n,
			Throughput: float64(devices*per*max(1, jn.AccumSteps)) / t,
			Flops:      SustainedFlops(jn),
			Step:       b,
		}
		if i == 0 {
			baseTime = t * float64(devices)
		}
		// Strong-scaling efficiency: speedup / node ratio relative to the
		// first point, at equal work.
		pts[i].Efficiency = baseTime / (t * float64(devices))
	}
	return pts
}

// BatchSweepPoint reports the communication intensity at one per-device
// batch size.
type BatchSweepPoint struct {
	PerGPUBatch  int
	CommFraction float64 // exposed comm / total step time
	Throughput   float64
}

// BatchSweep varies the per-device batch and reports how the exposed
// communication fraction falls as computation grows — the §VI-B reasoning
// for why small-batch (strong-scaled or GAN-constrained) jobs are
// communication-bound.
func BatchSweep(j Job, batches []int) []BatchSweepPoint {
	out := make([]BatchSweepPoint, len(batches))
	for i, bsz := range batches {
		jn := j
		m := jn.Model
		m.PerGPUBatch = bsz
		jn.Model = m
		b := Analyze(jn)
		out[i] = BatchSweepPoint{
			PerGPUBatch:  bsz,
			CommFraction: float64(b.ExposedComm) / float64(b.Total),
			Throughput:   Throughput(jn),
		}
	}
	return out
}

// CommBoundModelSize returns the gradient size (bytes) at which the
// allreduce time equals the per-step compute time for the job — the
// paper's "models larger than BERT-large become communication-bound"
// threshold, found by bisection over a synthetic gradient size.
func CommBoundModelSize(j Job) units.Bytes {
	compute := float64(j.AccumStepsOrOne()) * float64(j.Model.PerGPUBatch) / j.Model.SingleGPUThroughput
	lo, hi := 1.0, 1e12
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		t := float64(j.Fabric.RingAllReduce(j.Nodes, units.Bytes(mid)))
		if t < compute {
			lo = mid
		} else {
			hi = mid
		}
	}
	return units.Bytes(hi)
}

// AccumStepsOrOne returns the accumulation count, defaulting to 1.
func (j Job) AccumStepsOrOne() int {
	if j.AccumSteps <= 0 {
		return 1
	}
	return j.AccumSteps
}
