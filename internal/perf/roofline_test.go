package perf

import (
	"math"
	"testing"
)

func TestRooflineShape(t *testing.T) {
	r := V100Roofline()
	ridge := r.RidgeIntensity()
	// V100: 125 TF / 900 GB/s ≈ 139 flops/byte.
	if math.Abs(ridge-125e12/900e9)/ridge > 1e-9 {
		t.Fatalf("ridge = %v", ridge)
	}
	// Below the ridge: bandwidth-bound, linear in intensity.
	low := r.Attainable(ridge / 10)
	if math.Abs(float64(low)-float64(r.Peak)/10)/float64(r.Peak) > 1e-9 {
		t.Fatalf("bandwidth-bound rate = %v", low)
	}
	// Above the ridge: flat at peak.
	if r.Attainable(ridge*10) != r.Peak {
		t.Fatal("compute-bound region not capped at peak")
	}
}

func TestAttainableMonotone(t *testing.T) {
	r := V100Roofline()
	prev := 0.0
	for i := 1; i <= 300; i++ {
		cur := float64(r.Attainable(float64(i)))
		if cur < prev {
			t.Fatalf("attainable not monotone at intensity %d", i)
		}
		prev = cur
	}
}

// TestPaperKernelClassification checks §VI-B's claim: big-matrix
// operations (matmul/conv at training tile sizes) are compute-bound while
// recurrent/elementwise operations are memory-bound.
func TestPaperKernelClassification(t *testing.T) {
	r := V100Roofline()
	if !r.ComputeBound(KernelIntensity("matmul", 1024)) {
		t.Error("1024-matmul should be compute-bound")
	}
	if !r.ComputeBound(KernelIntensity("conv", 2048)) {
		t.Error("large conv should be compute-bound")
	}
	if r.ComputeBound(KernelIntensity("recurrent", 0)) {
		t.Error("recurrent ops should be memory-bound")
	}
	// Small matrices fall below the ridge — the paper's note that "high
	// floating point rates ... require large matrix sizes".
	if r.ComputeBound(KernelIntensity("matmul", 64)) {
		t.Error("64-matmul should be memory-bound")
	}
}

func TestKernelIntensityUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	KernelIntensity("quantum", 1)
}
