package perf

import (
	"math"
	"testing"

	"summitscale/internal/models"
	"summitscale/internal/units"
)

func TestStrongScalingEfficiencyDrops(t *testing.T) {
	j := SummitJob(models.ResNet50(), 1)
	j.OverlapComm = 0.5
	pts := StrongScalingCurve(j, 16384, []int{1, 4, 16, 64})
	if pts[0].Efficiency != 1 {
		t.Fatalf("base efficiency %v", pts[0].Efficiency)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Efficiency > pts[i-1].Efficiency+1e-9 {
			t.Fatalf("strong-scaling efficiency rose: %+v", pts)
		}
	}
	// Per-device batch shrinks with nodes: last point's compute per step is
	// smaller than the first's.
	if pts[len(pts)-1].Step.Compute >= pts[0].Step.Compute {
		t.Fatal("per-device work did not shrink under strong scaling")
	}
}

func TestStrongScalingFloorsBatchAtOne(t *testing.T) {
	j := SummitJob(models.ResNet50(), 1)
	pts := StrongScalingCurve(j, 8, []int{1024}) // 6144 devices, batch floors at 1
	want := 1.0 / j.Model.SingleGPUThroughput
	if math.Abs(float64(pts[0].Step.Compute)-want) > 1e-12 {
		t.Fatalf("floored compute = %v, want %v", pts[0].Step.Compute, want)
	}
}

func TestBatchSweepReducesCommFraction(t *testing.T) {
	j := SummitJob(models.BERTLarge(), 1024)
	j.OverlapComm = 0
	pts := BatchSweep(j, []int{1, 4, 16, 64})
	for i := 1; i < len(pts); i++ {
		if pts[i].CommFraction >= pts[i-1].CommFraction {
			t.Fatalf("comm fraction not decreasing with batch: %+v", pts)
		}
	}
	if pts[0].CommFraction < 0.3 {
		t.Fatalf("batch-1 BERT should be strongly comm-bound: %v", pts[0].CommFraction)
	}
}

// TestCommBoundThresholdNearBERT reproduces the §VI-B statement: on Summit
// "models larger than BERT-large become communication-bound for the widely
// used data-parallel training". The crossover gradient size for a typical
// BERT training step should be of the same magnitude as BERT-large's
// 1.4 GB message.
func TestCommBoundThresholdNearBERT(t *testing.T) {
	j := SummitJob(models.BERTLarge(), 4032)
	threshold := CommBoundModelSize(j)
	bert := models.BERTLarge().GradientBytes()
	ratio := float64(threshold) / float64(bert)
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("comm-bound threshold %v vs BERT-large gradient %v (ratio %v)",
			threshold, bert, ratio)
	}
}

func TestCommBoundGrowsWithBatch(t *testing.T) {
	j := SummitJob(models.BERTLarge(), 1024)
	small := CommBoundModelSize(j)
	j.AccumSteps = 8
	big := CommBoundModelSize(j)
	if units.Bytes(big) <= units.Bytes(small) {
		t.Fatalf("accumulation did not raise the comm-bound threshold: %v vs %v", big, small)
	}
}
