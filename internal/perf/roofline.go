package perf

import (
	"fmt"

	"summitscale/internal/machine"
	"summitscale/internal/units"
)

// Roofline is the device-level performance model behind §VI-B's
// observation that AI/ML workloads "boil down to 3 basic types of
// operations ... and are typically computation bound at the device
// level": attainable rate = min(peak, intensity × memory bandwidth).
type Roofline struct {
	Peak  units.FlopsPerSecond
	MemBW units.BytesPerSecond
}

// RooflineFor returns the mixed-precision tensor roofline of a GPU. It
// panics when the device lacks a positive peak rate or memory bandwidth.
func RooflineFor(g machine.GPU) Roofline {
	if !(g.PeakTensor > 0) || !(g.HBMBW > 0) {
		panic(fmt.Sprintf("perf: GPU %s needs positive tensor peak and HBM bandwidth (got %v, %v)",
			g.Name, float64(g.PeakTensor), float64(g.HBMBW)))
	}
	return Roofline{Peak: g.PeakTensor, MemBW: g.HBMBW}
}

// V100Roofline returns the tensor-core roofline of Summit's GPU.
func V100Roofline() Roofline {
	return RooflineFor(machine.V100())
}

// Attainable returns the achievable rate at the given arithmetic
// intensity (flops per byte moved).
func (r Roofline) Attainable(intensity float64) units.FlopsPerSecond {
	bwBound := units.FlopsPerSecond(intensity * float64(r.MemBW))
	if bwBound < r.Peak {
		return bwBound
	}
	return r.Peak
}

// RidgeIntensity returns the intensity at which the device transitions
// from memory-bound to compute-bound (peak / bandwidth).
func (r Roofline) RidgeIntensity() float64 {
	return float64(r.Peak) / float64(r.MemBW)
}

// ComputeBound reports whether a kernel of the given intensity saturates
// the arithmetic units rather than the memory system.
func (r Roofline) ComputeBound(intensity float64) bool {
	return intensity >= r.RidgeIntensity()
}

// KernelIntensity estimates the arithmetic intensity of the paper's three
// basic operation classes at mixed precision (2-byte elements).
//
// Matmul (M=N=K=n): 2n^3 flops over 3·2·n^2 bytes -> n/3 flops/byte.
// Convolution behaves like matmul with n ~ the im2col tile size.
// Recurrent/elementwise ops: O(1) flops per element -> ~0.5 flops/byte.
func KernelIntensity(kind string, n int) float64 {
	switch kind {
	case "matmul":
		return float64(n) / 3
	case "conv":
		return float64(n) / 3
	case "recurrent", "elementwise":
		return 0.5
	default:
		panic("perf: unknown kernel kind " + kind)
	}
}
