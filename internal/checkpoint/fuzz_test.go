package checkpoint

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"summitscale/internal/autograd"
	"summitscale/internal/nn"
	"summitscale/internal/stats"
)

// rawSection builds one on-disk parameter section (nameLen, name, elems,
// data, section CRC) for hand-crafted corpus entries.
func rawSection(name string, data []float64) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint16(b, uint16(len(name)))
	b = append(b, name...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(data)))
	for _, x := range data {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// FuzzCheckpointLoad throws arbitrary bytes at the v2 parser: Load and
// Verify must reject damage with an error, never panic or over-allocate,
// and a byte-identical re-read of an accepted file must succeed again.
func FuzzCheckpointLoad(f *testing.F) {
	seedPath := filepath.Join(f.TempDir(), "seed.ckpt")
	if err := Save(nn.NewMLP(stats.NewRNG(1), []int{4, 8, 3}, autograd.Tanh), seedPath); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	// Truncations: mid-header, mid-section, just shy of the trailing CRC.
	f.Add(valid[:6])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-2])
	// Bad magic.
	bm := append([]byte(nil), valid...)
	bm[0] ^= 0xFF
	f.Add(bm)
	// Flipped whole-file CRC and flipped payload byte.
	fc := append([]byte(nil), valid...)
	fc[len(fc)-1] ^= 0x01
	f.Add(fc)
	fp := append([]byte(nil), valid...)
	fp[len(fp)/2] ^= 0x55
	f.Add(fp)
	// Duplicate parameter: the same section twice under one header.
	dup := append([]byte(nil), magic...)
	dup = binary.LittleEndian.AppendUint32(dup, 2)
	sec := rawSection("w", []float64{1.5, -2.25})
	dup = append(dup, sec...)
	dup = append(dup, sec...)
	dup = binary.LittleEndian.AppendUint32(dup, crc32.ChecksumIEEE(dup))
	f.Add(dup)
	// Oversized element count pointing past the end of the file.
	huge := append([]byte(nil), magic...)
	huge = binary.LittleEndian.AppendUint32(huge, 1)
	huge = binary.LittleEndian.AppendUint16(huge, 1)
	huge = append(huge, 'w')
	huge = binary.LittleEndian.AppendUint32(huge, math.MaxUint32)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		path := filepath.Join(t.TempDir(), "f.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Verify(path); err != nil {
			// Structural damage: Load must reject it too.
			m := nn.NewMLP(stats.NewRNG(9), []int{4, 8, 3}, autograd.Tanh)
			if lerr := Load(m, path); lerr == nil {
				t.Fatalf("Verify rejected (%v) but Load accepted", err)
			}
			return
		}
		m := nn.NewMLP(stats.NewRNG(9), []int{4, 8, 3}, autograd.Tanh)
		if err := Load(m, path); err == nil {
			// Accepted once must mean accepted again: the format has no
			// hidden state.
			if err := Load(m, path); err != nil {
				t.Fatalf("second load of accepted file failed: %v", err)
			}
		}
	})
}
