package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"summitscale/internal/autograd"
	"summitscale/internal/nn"
	"summitscale/internal/stats"
)

// BenchmarkCheckpointDrain prices the tentpole claim: draining committed
// checkpoints to deeper tiers asynchronously, overlapped with the next
// training segment, must beat stalling training while the copies land.
// Each op is one checkpoint window — save to tier 0, push the version
// through the replica and gpfs tiers (read + full section verification +
// durable write each), and a compute segment standing in for training.
// The sync variant runs the drains inline before computing; the async
// variant overlaps them with the compute segment. summit-bench enforces
// sync/async >= 1.5x at >= 4 cores.
func BenchmarkCheckpointDrain(b *testing.B) {
	model := func() *nn.Sequential {
		// ~820k parameters => a ~6.5 MB checkpoint file: big enough that
		// the drain's section verification and copy are real work.
		return nn.NewMLP(stats.NewRNG(1), []int{640, 640, 640}, autograd.Tanh)
	}
	// The compute segment: a training-step-sized block of multiply-adds,
	// sized to roughly match the cost of both drains so overlap has
	// something to hide behind.
	computeBuf := make([]float64, 1<<20)
	for i := range computeBuf {
		computeBuf[i] = 1 + 1e-9*float64(i)
	}
	var computeSink float64
	compute := func() {
		for pass := 0; pass < 12; pass++ {
			acc := computeSink * 1e-30
			for _, x := range computeBuf {
				acc = acc*0.999999 + x
			}
			computeSink = acc
		}
	}
	// The floor gates the drain pipeline — verification, copy, and
	// overlap scheduling — not the host's fsync bandwidth, which varies
	// two orders of magnitude across runners. A RAM-backed directory
	// (when the host has one) keeps the measurement on the pipeline.
	newStore := func(b *testing.B) *Store {
		base := ""
		if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
			base = "/dev/shm"
		}
		dir, err := os.MkdirTemp(base, "ckptbench")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { os.RemoveAll(dir) })
		s, err := NewStore([]TierDir{
			{Name: "nvme", Dir: filepath.Join(dir, "nvme")},
			{Name: "replica", Dir: filepath.Join(dir, "replica")},
			{Name: "gpfs", Dir: filepath.Join(dir, "gpfs")},
		}, 2)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}

	b.Run("sync", func(b *testing.B) {
		s := newStore(b)
		m := model()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := i + 1
			if err := s.Save(m, v); err != nil {
				b.Fatal(err)
			}
			if err := s.DrainAll(v); err != nil {
				b.Fatal(err)
			}
			compute()
		}
	})
	b.Run("async", func(b *testing.B) {
		s := newStore(b)
		m := model()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := i + 1
			if err := s.Save(m, v); err != nil {
				b.Fatal(err)
			}
			s.DrainAllAsync(v)
			compute()
			if err := s.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	})
	_ = computeSink
}
