// Tier pricing: the three checkpoint levels of a leadership machine
// (node-local NVMe, partner-node replica, shared GPFS), with bandwidths
// from the platform registry and a survivable-failure MTBF per tier that
// feeds a per-tier Young/Daly cadence. Shallow tiers are fast but die
// with the job; deep tiers are slow but survive bigger events — which is
// exactly why the optimal intervals spread apart with depth.
package checkpoint

import (
	"fmt"
	"strings"

	"summitscale/internal/faults"
	"summitscale/internal/platform"
	"summitscale/internal/units"
)

// Tier is one checkpoint level's price sheet for a given job size.
type Tier struct {
	Name    string
	WriteBW units.BytesPerSecond // aggregate, at the job's node count
	ReadBW  units.BytesPerSecond
	// MTBF is the mean time between failures that this tier does NOT
	// survive: any job interrupt for node-local state, simultaneous
	// partner loss for the replica, a facility-scale event for GPFS.
	MTBF units.Seconds
}

const (
	// quiesceTime is the pause to settle in-flight collectives before the
	// tier-0 snapshot is consistent.
	quiesceTime = units.Seconds(2)
	// replicaSurvival scales the system MTBF for the partner-replica
	// tier: losing it needs the node and its partner inside one rebuild
	// window, which is an order of magnitude rarer than one interrupt.
	replicaSurvival = 16
)

// TiersFor prices the checkpoint tiers of p for a job of jobNodes nodes,
// shallowest first. Diskless machines (no node-local NVMe) get two tiers.
func TiersFor(p platform.Platform, jobNodes int) []Tier {
	if jobNodes < 1 {
		panic(fmt.Sprintf("checkpoint: TiersFor needs >= 1 node, got %d", jobNodes))
	}
	params := faults.ParamsFor(p.Machine, jobNodes)
	sysMTBF := params.SystemMTBF()
	n := units.BytesPerSecond(jobNodes)

	var tiers []Tier
	if p.HasNodeLocal() {
		tiers = append(tiers, Tier{
			Name:    "nvme",
			WriteBW: p.Node.NVMeWriteBW * n,
			ReadBW:  p.Node.NVMeReadBW * n,
			MTBF:    sysMTBF,
		})
	}
	// Partner replica: each node streams its shard to a partner over the
	// fabric; the landing medium is the partner's NVMe when it has one,
	// DRAM otherwise (diskless machines), so injection is the other cap.
	replicaBW := p.Node.InjectionBW
	if p.HasNodeLocal() && p.Node.NVMeWriteBW < replicaBW {
		replicaBW = p.Node.NVMeWriteBW
	}
	tiers = append(tiers, Tier{
		Name:    "replica",
		WriteBW: replicaBW * n,
		ReadBW:  replicaBW * n,
		MTBF:    sysMTBF * replicaSurvival,
	})
	// GPFS: aggregate filesystem bandwidth, capped by the job's total
	// injection; survives everything short of a facility event, which we
	// rate at a single node's own MTBF (~years).
	gpfsWrite := p.FS.WriteBW
	if inj := p.Node.InjectionBW * n; inj < gpfsWrite {
		gpfsWrite = inj
	}
	gpfsRead := p.FS.ReadBW
	if inj := p.Node.InjectionBW * n; inj < gpfsRead {
		gpfsRead = inj
	}
	tiers = append(tiers, Tier{
		Name:    "gpfs",
		WriteBW: gpfsWrite,
		ReadBW:  gpfsRead,
		MTBF:    params.NodeMTBF,
	})
	return tiers
}

// TierPlan is a tier plus its checkpoint cost for a given state size and
// the Young/Daly interval solved from that cost and the tier's MTBF.
type TierPlan struct {
	Tier     Tier
	Delta    units.Seconds // cost of one checkpoint to this tier
	Interval units.Seconds // Young/Daly cadence
}

// PlanTiers prices a full cadence plan: state bytes into every tier of p
// at jobNodes, tier 0 paying the quiesce pause on top of its write time.
func PlanTiers(p platform.Platform, jobNodes int, state units.Bytes) []TierPlan {
	if state <= 0 {
		panic(fmt.Sprintf("checkpoint: PlanTiers needs positive state, got %v", float64(state)))
	}
	tiers := TiersFor(p, jobNodes)
	plans := make([]TierPlan, len(tiers))
	for i, t := range tiers {
		delta := units.Seconds(float64(state) / float64(t.WriteBW))
		if i == 0 {
			delta += quiesceTime
		}
		plans[i] = TierPlan{Tier: t, Delta: delta, Interval: faults.DalyInterval(delta, t.MTBF)}
	}
	return plans
}

// RenderPlans formats a cadence table for reports and the CLI.
func RenderPlans(plans []TierPlan) string {
	var b strings.Builder
	b.WriteString("  tier     write BW      delta        MTBF     Daly interval\n")
	for _, pl := range plans {
		fmt.Fprintf(&b, "  %-8s %7.1f GB/s %8.1fs %11.0fh %12.0fs\n",
			pl.Tier.Name, float64(pl.Tier.WriteBW)/1e9, float64(pl.Delta),
			float64(pl.Tier.MTBF)/3600, float64(pl.Interval))
	}
	return b.String()
}
