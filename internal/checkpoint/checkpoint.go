// Package checkpoint serializes model parameters to disk and restores
// them — the synchronous checkpoint traffic whose cost appears in the
// Blanchard study's I/O overhead, implemented as a real file format so
// training runs in this repository can stop and resume.
//
// Format:
//
//	[8]  magic "SUMCKPT1"
//	[4]  parameter count
//	per parameter:
//	  [2] name length, name bytes
//	  [4] element count, elements as little-endian float64
//	[4]  crc32 of everything before it
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"summitscale/internal/nn"
)

var magic = []byte("SUMCKPT1")

// Save writes m's parameters to path atomically (via a temp file rename).
func Save(m nn.Module, path string) error {
	params := m.Params()
	var buf []byte
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(params)))
	for _, p := range params {
		name := []byte(p.Name)
		if len(name) > 1<<15 {
			return fmt.Errorf("checkpoint: parameter name %q too long", p.Name)
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
		data := p.Value.Data.Data()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(data)))
		for _, x := range data {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// Load restores parameters into m, matching by name. Every parameter of m
// must be present in the file with the right element count; extra entries
// in the file are an error too, so saves and loads stay symmetric.
func Load(m nn.Module, path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("checkpoint: read: %w", err)
	}
	if len(buf) < len(magic)+8 {
		return fmt.Errorf("checkpoint: file too small")
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return fmt.Errorf("checkpoint: checksum mismatch")
	}
	if string(body[:len(magic)]) != string(magic) {
		return fmt.Errorf("checkpoint: bad magic")
	}
	off := len(magic)
	count := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4

	stored := map[string][]float64{}
	for i := 0; i < count; i++ {
		if off+2 > len(body) {
			return fmt.Errorf("checkpoint: truncated at parameter %d", i)
		}
		nameLen := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+nameLen+4 > len(body) {
			return fmt.Errorf("checkpoint: truncated name at parameter %d", i)
		}
		name := string(body[off : off+nameLen])
		off += nameLen
		n := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if off+8*n > len(body) {
			return fmt.Errorf("checkpoint: truncated data for %q", name)
		}
		data := make([]float64, n)
		for j := range data {
			data[j] = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
			off += 8
		}
		if _, dup := stored[name]; dup {
			return fmt.Errorf("checkpoint: duplicate parameter %q", name)
		}
		stored[name] = data
	}

	params := m.Params()
	if len(params) != len(stored) {
		return fmt.Errorf("checkpoint: file has %d parameters, model has %d",
			len(stored), len(params))
	}
	for _, p := range params {
		data, ok := stored[p.Name]
		if !ok {
			return fmt.Errorf("checkpoint: parameter %q missing from file", p.Name)
		}
		dst := p.Value.Data.Data()
		if len(dst) != len(data) {
			return fmt.Errorf("checkpoint: parameter %q has %d elements, model wants %d",
				p.Name, len(data), len(dst))
		}
		copy(dst, data)
	}
	return nil
}
