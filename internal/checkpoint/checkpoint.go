// Package checkpoint serializes model parameters to disk and restores
// them — the checkpoint traffic whose cost appears in the Blanchard
// study's I/O overhead, implemented as a real file format so training
// runs in this repository can stop and resume. On top of the single-file
// format, Store (store.go) keeps a versioned, manifest-indexed history
// across storage tiers (node-local NVMe, partner-node replica, GPFS)
// with asynchronous drain between tiers, and tiers.go prices the tiers
// from the platform registry with per-tier Young/Daly cadence.
//
// Format (version 2):
//
//	[8]  magic "SUMCKPT2"
//	[4]  parameter count
//	per parameter (a "section"):
//	  [2] name length, name bytes
//	  [4] element count, elements as little-endian float64
//	  [4] crc32 of this section (name length through last element)
//	[4]  crc32 of everything before it
//
// The per-section checksums localize corruption: a flipped bit names the
// damaged parameter instead of condemning the whole file, which is what
// lets the tiered store refuse to drain a corrupt checkpoint and lets
// Verify report exactly which parameters survived.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"summitscale/internal/nn"
)

var magic = []byte("SUMCKPT2")

// hashWriter streams bytes to w while tracking the whole-file CRC and a
// resettable per-section CRC over the same bytes, so Save never builds
// the file in memory.
type hashWriter struct {
	w       io.Writer
	whole   uint32
	section uint32
	n       int64
}

func (h *hashWriter) Write(p []byte) (int, error) {
	n, err := h.w.Write(p)
	h.whole = crc32.Update(h.whole, crc32.IEEETable, p[:n])
	h.section = crc32.Update(h.section, crc32.IEEETable, p[:n])
	h.n += int64(n)
	return n, err
}

// Save writes m's parameters to path atomically: stream to a temp file,
// fsync it so the rename can't publish an unwritten file, then rename.
func Save(m nn.Module, path string) error {
	_, _, err := WriteFile(m, path)
	return err
}

// WriteFile is Save plus the written file's whole-file CRC and size, which
// the tiered store records in its manifest.
func WriteFile(m nn.Module, path string) (crc uint32, size int64, err error) {
	params := m.Params()
	for _, p := range params {
		if len(p.Name) > 1<<15 {
			return 0, 0, fmt.Errorf("checkpoint: parameter name %q too long", p.Name)
		}
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, 0, fmt.Errorf("checkpoint: create: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	bw := bufio.NewWriter(f)
	h := &hashWriter{w: bw}
	var scratch [8]byte
	chunk := make([]byte, 1<<15)
	put16 := func(v uint16) error {
		binary.LittleEndian.PutUint16(scratch[:2], v)
		_, werr := h.Write(scratch[:2])
		return werr
	}
	put32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, werr := h.Write(scratch[:4])
		return werr
	}
	if _, err = h.Write(magic); err != nil {
		return 0, 0, fmt.Errorf("checkpoint: write: %w", err)
	}
	if err = put32(uint32(len(params))); err != nil {
		return 0, 0, fmt.Errorf("checkpoint: write: %w", err)
	}
	for _, p := range params {
		h.section = 0
		if err = put16(uint16(len(p.Name))); err != nil {
			return 0, 0, fmt.Errorf("checkpoint: write: %w", err)
		}
		if _, err = io.WriteString(h, p.Name); err != nil {
			return 0, 0, fmt.Errorf("checkpoint: write: %w", err)
		}
		data := p.Value.Data.Data()
		if err = put32(uint32(len(data))); err != nil {
			return 0, 0, fmt.Errorf("checkpoint: write: %w", err)
		}
		// Encode in chunks: the CRC update and the write both run over
		// long spans instead of 8 bytes at a time.
		for len(data) > 0 {
			n := len(chunk) / 8
			if n > len(data) {
				n = len(data)
			}
			for j := 0; j < n; j++ {
				binary.LittleEndian.PutUint64(chunk[8*j:], math.Float64bits(data[j]))
			}
			if _, err = h.Write(chunk[:8*n]); err != nil {
				return 0, 0, fmt.Errorf("checkpoint: write: %w", err)
			}
			data = data[n:]
		}
		// The section CRC covers nameLen..data; writing it below folds it
		// into the whole-file CRC but not into its own value.
		if err = put32(h.section); err != nil {
			return 0, 0, fmt.Errorf("checkpoint: write: %w", err)
		}
	}
	crc = h.whole
	if err = put32(crc); err != nil {
		return 0, 0, fmt.Errorf("checkpoint: write: %w", err)
	}
	if err = bw.Flush(); err != nil {
		return 0, 0, fmt.Errorf("checkpoint: flush: %w", err)
	}
	if err = f.Sync(); err != nil {
		return 0, 0, fmt.Errorf("checkpoint: sync: %w", err)
	}
	size = h.n
	if err = f.Close(); err != nil {
		return 0, 0, fmt.Errorf("checkpoint: close: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, 0, fmt.Errorf("checkpoint: rename: %w", err)
	}
	return crc, size, nil
}

// Section is one parameter's record in a checkpoint file as seen by the
// structural parser: its name, element count, and whether the stored
// per-section CRC matches the bytes on disk.
type Section struct {
	Name  string
	Elems int
	OK    bool
	data  []float64
}

// parseSections walks the v2 layout and returns every section with its
// CRC verdict. Structural damage (bad magic, truncation, duplicate or
// oversized fields) is an error; a section whose bytes merely fail their
// checksum parses fine with OK=false, which is what localizes corruption.
func parseSections(buf []byte) ([]Section, error) {
	if len(buf) < len(magic)+8 {
		return nil, fmt.Errorf("checkpoint: file too small")
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if string(body[:len(magic)]) != string(magic) {
		return nil, fmt.Errorf("checkpoint: bad magic")
	}
	off := len(magic)
	count := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4

	seen := map[string]bool{}
	sections := make([]Section, 0, count)
	for i := 0; i < count; i++ {
		start := off
		if off+2 > len(body) {
			return nil, fmt.Errorf("checkpoint: truncated at parameter %d", i)
		}
		nameLen := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+nameLen+4 > len(body) {
			return nil, fmt.Errorf("checkpoint: truncated name at parameter %d", i)
		}
		name := string(body[off : off+nameLen])
		off += nameLen
		n := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if off+8*n+4 > len(body) {
			return nil, fmt.Errorf("checkpoint: truncated data for %q", name)
		}
		data := make([]float64, n)
		for j := range data {
			data[j] = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
			off += 8
		}
		stored := binary.LittleEndian.Uint32(body[off:])
		ok := crc32.ChecksumIEEE(body[start:off]) == stored
		off += 4
		if seen[name] {
			return nil, fmt.Errorf("checkpoint: duplicate parameter %q", name)
		}
		seen[name] = true
		sections = append(sections, Section{Name: name, Elems: n, OK: ok, data: data})
	}
	if off != len(body) {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after last parameter", len(body)-off)
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		// Every section verified but the envelope doesn't: the header or a
		// stored CRC itself took the hit.
		for _, s := range sections {
			if !s.OK {
				return sections, nil
			}
		}
		return nil, fmt.Errorf("checkpoint: checksum mismatch")
	}
	return sections, nil
}

// Verify reports the per-parameter integrity of the checkpoint at path
// without needing a model to load into. The error covers structural
// damage only; localized corruption comes back as OK=false sections.
func Verify(path string) ([]Section, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	return parseSections(buf)
}

// verifyBytes is the drain-side gate: any structural damage or failed
// section is an error naming the first casualty.
func verifyBytes(buf []byte) error {
	sections, err := parseSections(buf)
	if err != nil {
		return err
	}
	for _, s := range sections {
		if !s.OK {
			return fmt.Errorf("checkpoint: parameter %q corrupt (section checksum mismatch)", s.Name)
		}
	}
	return nil
}

// Load restores parameters into m, matching by name. Every parameter of m
// must be present in the file with the right element count; extra entries
// in the file are an error too, so saves and loads stay symmetric.
func Load(m nn.Module, path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("checkpoint: read: %w", err)
	}
	sections, err := parseSections(buf)
	if err != nil {
		return err
	}
	stored := make(map[string][]float64, len(sections))
	for _, s := range sections {
		if !s.OK {
			return fmt.Errorf("checkpoint: parameter %q corrupt (section checksum mismatch)", s.Name)
		}
		stored[s.Name] = s.data
	}

	params := m.Params()
	if len(params) != len(stored) {
		return fmt.Errorf("checkpoint: file has %d parameters, model has %d",
			len(stored), len(params))
	}
	for _, p := range params {
		data, ok := stored[p.Name]
		if !ok {
			return fmt.Errorf("checkpoint: parameter %q missing from file", p.Name)
		}
		dst := p.Value.Data.Data()
		if len(dst) != len(data) {
			return fmt.Errorf("checkpoint: parameter %q has %d elements, model wants %d",
				p.Name, len(data), len(dst))
		}
		copy(dst, data)
	}
	return nil
}
