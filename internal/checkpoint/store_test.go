package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"summitscale/internal/autograd"
	"summitscale/internal/nn"
	"summitscale/internal/platform"
	"summitscale/internal/stats"
	"summitscale/internal/units"
)

func testTiers(t *testing.T) []TierDir {
	dir := t.TempDir()
	return []TierDir{
		{Name: "nvme", Dir: filepath.Join(dir, "nvme")},
		{Name: "replica", Dir: filepath.Join(dir, "replica")},
		{Name: "gpfs", Dir: filepath.Join(dir, "gpfs")},
	}
}

func testModel(seed uint64) *nn.Sequential {
	return nn.NewMLP(stats.NewRNG(seed), []int{4, 8, 3}, autograd.Tanh)
}

func sameParams(t *testing.T, a, b nn.Module) {
	t.Helper()
	ap, bp := a.Params(), b.Params()
	for i := range ap {
		if !ap[i].Value.Data.Equal(bp[i].Value.Data, 0) {
			t.Fatalf("parameter %s differs", ap[i].Name)
		}
	}
}

func TestStoreSaveDrainRestore(t *testing.T) {
	s, err := NewStore(testTiers(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(1)
	if err := s.Save(m, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.DrainAll(1); err != nil {
		t.Fatal(err)
	}
	for tier := 0; tier < 3; tier++ {
		if got := s.Versions(tier); len(got) != 1 || got[0] != 1 {
			t.Fatalf("tier %d versions = %v, want [1]", tier, got)
		}
	}
	dst := testModel(99)
	info, err := s.Restore(dst)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.TierName != "nvme" {
		t.Fatalf("restored %+v, want v1 from nvme", info)
	}
	sameParams(t, m, dst)
}

// A corrupt shallow copy must fall through to the deeper, intact tier —
// the reason the store exists.
func TestRestoreFallsThroughCorruptTiers(t *testing.T) {
	s, err := NewStore(testTiers(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(1)
	if err := s.Save(m, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.DrainAll(1); err != nil {
		t.Fatal(err)
	}
	if err := s.CorruptVersion(0, 1, 0x40); err != nil {
		t.Fatal(err)
	}
	if err := s.TruncateVersion(1, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	dst := testModel(99)
	info, err := s.Restore(dst)
	if err != nil {
		t.Fatal(err)
	}
	if info.TierName != "gpfs" {
		t.Fatalf("restored from %s, want gpfs (the only intact copy)", info.TierName)
	}
	sameParams(t, m, dst)
}

// Newer-but-damaged versions lose to an older intact one.
func TestRestorePrefersNewestRestorable(t *testing.T) {
	s, err := NewStore(testTiers(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	old, newer := testModel(1), testModel(2)
	if err := s.Save(old, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.DrainAll(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(newer, 2); err != nil {
		t.Fatal(err)
	}
	// v2 never drained and its only copy is corrupt: a torn tier-0 write.
	if err := s.CorruptVersion(0, 2, 0x01); err != nil {
		t.Fatal(err)
	}
	dst := testModel(99)
	info, err := s.Restore(dst)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 {
		t.Fatalf("restored v%d, want the intact v1", info.Version)
	}
	sameParams(t, old, dst)
}

// Drain must refuse to propagate a corrupt checkpoint to deeper tiers.
func TestDrainRefusesCorruptSource(t *testing.T) {
	s, err := NewStore(testTiers(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(testModel(1), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.CorruptVersion(0, 1, 0x20); err != nil {
		t.Fatal(err)
	}
	err = s.Drain(1, 1)
	if err == nil {
		t.Fatal("drain propagated a corrupt checkpoint")
	}
	if !strings.Contains(err.Error(), "refusing to drain") {
		t.Fatalf("unexpected error: %v", err)
	}
	if got := s.Versions(1); len(got) != 0 {
		t.Fatalf("replica tier has %v after refused drain", got)
	}
}

func TestAsyncDrainMatchesSync(t *testing.T) {
	s, err := NewStore(testTiers(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 3; v++ {
		if err := s.Save(testModel(uint64(v)), v); err != nil {
			t.Fatal(err)
		}
		s.DrainAllAsync(v)
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	for tier := 0; tier < 3; tier++ {
		if got := s.Versions(tier); len(got) != 3 {
			t.Fatalf("tier %d has versions %v, want 3", tier, got)
		}
	}
}

func TestRetentionPrunes(t *testing.T) {
	s, err := NewStore(testTiers(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 5; v++ {
		if err := s.Save(testModel(uint64(v)), v); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Versions(0); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("tier 0 retains %v, want [4 5]", got)
	}
	// Pruned files are actually gone from disk.
	if _, err := os.Stat(s.VersionPath(0, 1)); !os.IsNotExist(err) {
		t.Fatal("pruned version still on disk")
	}
}

// Reopening a store over the same directories resumes from the durable
// manifests — the restart path after a crash.
func TestStoreReopenResumes(t *testing.T) {
	tiers := testTiers(t)
	s, err := NewStore(tiers, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(7)
	if err := s.Save(m, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.DrainAll(3); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := NewStore(tiers, 4)
	if err != nil {
		t.Fatal(err)
	}
	if re.Newest() != 3 {
		t.Fatalf("reopened store newest = %d, want 3", re.Newest())
	}
	dst := testModel(99)
	if _, err := re.Restore(dst); err != nil {
		t.Fatal(err)
	}
	sameParams(t, m, dst)
}

func TestVerifyLocalizesCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ckpt")
	m := testModel(1)
	if err := Save(m, path); err != nil {
		t.Fatal(err)
	}
	sections, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(sections) != len(m.Params()) {
		t.Fatalf("%d sections, want %d", len(sections), len(m.Params()))
	}
	for _, s := range sections {
		if !s.OK {
			t.Fatalf("fresh checkpoint reports %q corrupt", s.Name)
		}
	}
	// Flip one byte mid-file: exactly one section goes bad, the rest stay
	// verifiably intact — corruption is localized, not all-or-nothing.
	b, _ := os.ReadFile(path)
	b[len(b)/2] ^= 0x55
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	sections, err = Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, s := range sections {
		if !s.OK {
			bad++
		}
	}
	if bad != 1 {
		t.Fatalf("%d corrupt sections after one flipped byte, want exactly 1", bad)
	}
}

func TestTiersForSummit(t *testing.T) {
	p := platform.MustLookup("summit")
	tiers := TiersFor(p, 64)
	if len(tiers) != 3 {
		t.Fatalf("summit has %d tiers, want 3", len(tiers))
	}
	names := []string{"nvme", "replica", "gpfs"}
	for i, want := range names {
		if tiers[i].Name != want {
			t.Fatalf("tier %d = %s, want %s", i, tiers[i].Name, want)
		}
		if tiers[i].WriteBW <= 0 || tiers[i].ReadBW <= 0 || tiers[i].MTBF <= 0 {
			t.Fatalf("tier %s has non-positive pricing: %+v", want, tiers[i])
		}
	}
	// Deeper tiers survive rarer events.
	if !(tiers[0].MTBF < tiers[1].MTBF && tiers[1].MTBF < tiers[2].MTBF) {
		t.Fatalf("tier MTBFs not increasing with depth: %v %v %v",
			tiers[0].MTBF, tiers[1].MTBF, tiers[2].MTBF)
	}
}

func TestTiersForDiskless(t *testing.T) {
	p := platform.MustLookup("juwels-booster")
	if p.HasNodeLocal() {
		t.Skip("juwels-booster grew node-local storage")
	}
	tiers := TiersFor(p, 64)
	if len(tiers) != 2 || tiers[0].Name != "replica" || tiers[1].Name != "gpfs" {
		t.Fatalf("diskless machine tiers = %+v, want [replica gpfs]", tiers)
	}
}

func TestPlanTiersIntervalsSpread(t *testing.T) {
	p := platform.MustLookup("summit")
	plans := PlanTiers(p, 256, units.Bytes(4*units.TB))
	for i := 1; i < len(plans); i++ {
		if plans[i].Interval <= plans[i-1].Interval {
			t.Fatalf("tier %s interval %v not deeper than %s's %v",
				plans[i].Tier.Name, plans[i].Interval, plans[i-1].Tier.Name, plans[i-1].Interval)
		}
	}
}

func TestSimulateDrainAsyncNeverStallsMore(t *testing.T) {
	p := platform.MustLookup("summit")
	plans := PlanTiers(p, 256, units.Bytes(4*units.TB))
	horizon := 24 * units.Hour
	syncOut := SimulateDrain(plans, horizon, false, nil)
	asyncOut := SimulateDrain(plans, horizon, true, nil)
	if asyncOut.Stall > syncOut.Stall {
		t.Fatalf("async stall %v exceeds sync stall %v", asyncOut.Stall, syncOut.Stall)
	}
	if syncOut.Commits[0] == 0 {
		t.Fatal("no tier-0 commits over a day")
	}
	// Sync services every due drain inline; async may defer but never
	// commits more than sync.
	for i := range plans {
		if asyncOut.Commits[i] > syncOut.Commits[i] {
			t.Fatalf("tier %d: async committed %d > sync %d", i, asyncOut.Commits[i], syncOut.Commits[i])
		}
	}
}
