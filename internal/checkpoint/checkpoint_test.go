package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"summitscale/internal/autograd"
	"summitscale/internal/faults"
	"summitscale/internal/machine"
	"summitscale/internal/nn"
	"summitscale/internal/stats"
	"summitscale/internal/tensor"
	"summitscale/internal/units"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	src := nn.NewMLP(stats.NewRNG(1), []int{4, 8, 3}, autograd.Tanh)
	if err := Save(src, path); err != nil {
		t.Fatal(err)
	}
	// Load into a differently initialized model of the same shape.
	dst := nn.NewMLP(stats.NewRNG(99), []int{4, 8, 3}, autograd.Tanh)
	if err := Load(dst, path); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		if !sp[i].Value.Data.Equal(dp[i].Value.Data, 0) {
			t.Fatalf("parameter %s differs after load", sp[i].Name)
		}
	}
}

func TestLoadPreservesBehaviour(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bert.ckpt")
	cfg := nn.MiniBERTConfig{Vocab: 10, SeqLen: 4, Dim: 8, Heads: 2, FFDim: 16, Layers: 1}
	src := nn.NewMiniBERT(stats.NewRNG(2), cfg)
	ids := []int{1, 5, 3, 7}
	want := src.Forward(ids).Data.Clone()
	if err := Save(src, path); err != nil {
		t.Fatal(err)
	}
	dst := nn.NewMiniBERT(stats.NewRNG(77), cfg)
	if err := Load(dst, path); err != nil {
		t.Fatal(err)
	}
	if got := dst.Forward(ids).Data; !got.Equal(want, 1e-12) {
		t.Fatal("restored model computes different outputs")
	}
}

func TestLoadRejectsShapeMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ckpt")
	if err := Save(nn.NewMLP(stats.NewRNG(1), []int{4, 8, 3}, nil), path); err != nil {
		t.Fatal(err)
	}
	other := nn.NewMLP(stats.NewRNG(1), []int{4, 16, 3}, nil)
	if err := Load(other, path); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	smaller := nn.NewMLP(stats.NewRNG(1), []int{4, 3}, nil)
	if err := Load(smaller, path); err == nil {
		t.Fatal("parameter-count mismatch accepted")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ckpt")
	m := nn.NewMLP(stats.NewRNG(1), []int{2, 2}, nil)
	if err := Save(m, path); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	b[len(b)/2] ^= 0x55
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(m, path); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	m := nn.NewMLP(stats.NewRNG(1), []int{2, 2}, nil)
	if err := Load(m, filepath.Join(t.TempDir(), "absent.ckpt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSaveIsAtomic(t *testing.T) {
	// After Save, no .tmp residue remains.
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ckpt")
	m := nn.NewMLP(stats.NewRNG(1), []int{2, 2}, nil)
	if err := Save(m, path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

// TestResumeTrainingMatchesUninterrupted: train 6 steps straight vs train
// 3, checkpoint, restore into a fresh model, train 3 more — identical
// final parameters (the resume property checkpointing exists for).
func TestResumeTrainingMatchesUninterrupted(t *testing.T) {
	x := tensor.Randn(stats.NewRNG(3), 1, 8, 4)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1}
	step := func(m *nn.Sequential) {
		nn.ZeroGrads(m)
		loss := autograd.SoftmaxCrossEntropy(m.Forward(autograd.Constant(x)), labels)
		loss.Backward(nil)
		for _, p := range m.Params() {
			wd, gd := p.Value.Data.Data(), p.Value.Grad.Data()
			for i := range wd {
				wd[i] -= 0.1 * gd[i]
			}
		}
	}
	straight := nn.NewMLP(stats.NewRNG(4), []int{4, 8, 3}, autograd.Tanh)
	for i := 0; i < 6; i++ {
		step(straight)
	}

	path := filepath.Join(t.TempDir(), "resume.ckpt")
	first := nn.NewMLP(stats.NewRNG(4), []int{4, 8, 3}, autograd.Tanh)
	for i := 0; i < 3; i++ {
		step(first)
	}
	if err := Save(first, path); err != nil {
		t.Fatal(err)
	}
	resumed := nn.NewMLP(stats.NewRNG(55), []int{4, 8, 3}, autograd.Tanh)
	if err := Load(resumed, path); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		step(resumed)
	}
	sp, rp := straight.Params(), resumed.Params()
	for i := range sp {
		if !sp[i].Value.Data.Equal(rp[i].Value.Data, 1e-12) {
			t.Fatalf("resumed training diverged at %s", sp[i].Name)
		}
	}
}

// TestResumeUnderFailureTrace drives the same resume property from a
// seeded failure trace: a 12-step epoch (one step per 10 simulated
// minutes, checkpoint every 3 steps) is interrupted mid-epoch wherever
// the trace kills a node; each failure discards the uncommitted steps,
// reloads the last checkpoint into a fresh model, and re-runs the lost
// work. The final parameters must match uninterrupted training exactly.
func TestResumeUnderFailureTrace(t *testing.T) {
	x := tensor.Randn(stats.NewRNG(3), 1, 8, 4)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1}
	step := func(m *nn.Sequential) {
		nn.ZeroGrads(m)
		loss := autograd.SoftmaxCrossEntropy(m.Forward(autograd.Constant(x)), labels)
		loss.Backward(nil)
		for _, p := range m.Params() {
			wd, gd := p.Value.Data.Data(), p.Value.Grad.Data()
			for i := range wd {
				wd[i] -= 0.1 * gd[i]
			}
		}
	}
	const steps, every = 12, 3
	const stepTime = 10 * units.Minute

	straight := nn.NewMLP(stats.NewRNG(4), []int{4, 8, 3}, autograd.Tanh)
	for i := 0; i < steps; i++ {
		step(straight)
	}

	// A small allocation with an aggressive per-node MTBF so the 2h epoch
	// actually sees failures (seed checked below).
	params := faults.ParamsFor(machine.Summit(), 16)
	params.NodeMTBF = 8 * units.Hour
	trace := params.Generate(9, 8*units.Hour)
	failTimes := trace.FailureTimes()

	path := filepath.Join(t.TempDir(), "faulty.ckpt")
	m := nn.NewMLP(stats.NewRNG(4), []int{4, 8, 3}, autograd.Tanh)
	if err := Save(m, path); err != nil {
		t.Fatal(err)
	}
	var wall units.Seconds
	committed, restores := 0, 0
	for committed < steps {
		windowEnd := committed + every
		if windowEnd > steps {
			windowEnd = steps
		}
		failed := false
		for s := committed; s < windowEnd; s++ {
			// The step occupies [wall, wall+stepTime); a trace failure in
			// that span kills the job mid-step.
			if len(failTimes) > 0 && failTimes[0] < wall+stepTime {
				failTimes = failTimes[1:]
				failed = true
				wall += stepTime // the slot is spent either way
				break
			}
			step(m)
			wall += stepTime
		}
		if failed {
			restores++
			m = nn.NewMLP(stats.NewRNG(77+uint64(restores)), []int{4, 8, 3}, autograd.Tanh)
			if err := Load(m, path); err != nil {
				t.Fatal(err)
			}
			continue
		}
		committed = windowEnd
		if err := Save(m, path); err != nil {
			t.Fatal(err)
		}
	}
	if restores == 0 {
		t.Fatal("trace injected no mid-epoch failures; the test proves nothing")
	}

	sp, rp := straight.Params(), m.Params()
	for i := range sp {
		if !sp[i].Value.Data.Equal(rp[i].Value.Data, 1e-12) {
			t.Fatalf("trace-interrupted training diverged at %s after %d restores", sp[i].Name, restores)
		}
	}
}
