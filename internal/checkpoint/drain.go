// Drain scheduling on the simulated clock: tier-0 snapshots stall
// training for their write time; deeper tiers are fed either
// synchronously (training waits while the copy lands) or asynchronously
// (the copy overlaps the next training segment, and a drain that is
// still in flight when the next one comes due is deferred rather than
// queued without bound). Async stall is therefore never worse than sync
// stall — the invariant the RS5 experiment and the CheckpointDrain
// benchmark floor both pin.
package checkpoint

import (
	"fmt"
	"strings"

	"summitscale/internal/obs"
	"summitscale/internal/units"
)

// DrainOutcome is one horizon of multi-tier checkpointing.
type DrainOutcome struct {
	Horizon  units.Seconds
	Stall    units.Seconds // training pause attributable to checkpointing
	Commits  []int         // checkpoints landed per tier
	Deferred int           // async drains skipped because the previous copy was still in flight
}

// SimulateDrain walks the horizon at tier-0 cadence. Every tier-0 commit
// stalls training for plans[0].Delta; a deeper tier whose interval has
// elapsed is serviced at that commit point — inline when async is false,
// overlapped when true.
func SimulateDrain(plans []TierPlan, horizon units.Seconds, async bool, ob *obs.Observer) DrainOutcome {
	if len(plans) == 0 {
		panic("checkpoint: SimulateDrain needs at least one tier plan")
	}
	out := DrainOutcome{Horizon: horizon, Commits: make([]int, len(plans))}
	due := make([]units.Seconds, len(plans))
	busyUntil := make([]units.Seconds, len(plans))
	for i := range due {
		due[i] = plans[i].Interval
	}
	mode := "sync"
	if async {
		mode = "async"
	}
	for now := plans[0].Interval; now <= horizon; now += plans[0].Interval {
		out.Stall += plans[0].Delta
		out.Commits[0]++
		ob.Span("ckpt-"+mode, "ckpt", plans[0].Tier.Name, now, plans[0].Delta)
		for i := 1; i < len(plans); i++ {
			if now < due[i] {
				continue
			}
			due[i] += plans[i].Interval
			if !async {
				out.Stall += plans[i].Delta
				out.Commits[i]++
				ob.Span("ckpt-"+mode, "ckpt", plans[i].Tier.Name, now, plans[i].Delta)
				continue
			}
			if busyUntil[i] > now {
				out.Deferred++
				ob.Inc("ckpt.drain.deferred")
				continue
			}
			busyUntil[i] = now + plans[i].Delta
			out.Commits[i]++
			ob.Span("ckpt-"+mode, "ckpt", plans[i].Tier.Name, now, plans[i].Delta)
		}
	}
	ob.Set(fmt.Sprintf("ckpt.drain.%s_stall_s", mode), float64(out.Stall))
	return out
}

// Render formats the outcome against its plans.
func (o DrainOutcome) Render(plans []TierPlan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  stall %.0fs over %.0fh, %d deferred drain(s); commits:",
		float64(o.Stall), float64(o.Horizon)/3600, o.Deferred)
	for i, c := range o.Commits {
		fmt.Fprintf(&b, " %s=%d", plans[i].Tier.Name, c)
	}
	b.WriteString("\n")
	return b.String()
}
