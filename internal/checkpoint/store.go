// The tiered store: a versioned checkpoint history across storage tiers
// (tier 0 is where training writes; deeper tiers are drained to in the
// background), each tier indexed by a crash-safe text manifest. Restore
// walks versions newest-first and tiers shallowest-first, verifying
// manifest size/CRC and every per-parameter section before trusting a
// file — a corrupt or torn copy in one tier falls through to the next
// instead of killing the job.
package checkpoint

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"summitscale/internal/nn"
)

// manifestMagic heads every manifest file.
const manifestMagic = "SUMMANIFEST1"

// TierDir names one tier's directory ("nvme", "replica", "gpfs" in the
// platform-priced plans, but any names work).
type TierDir struct {
	Name string
	Dir  string
}

// manifestEntry is one committed version in one tier.
type manifestEntry struct {
	Version int
	File    string
	Bytes   int64
	CRC     uint32
}

// Store is a multi-tier, versioned checkpoint store. All methods are
// safe for concurrent use; drains are serialized so tier directories
// never see two writers.
type Store struct {
	tiers  []TierDir
	retain int

	mu        sync.Mutex
	manifests []map[int]manifestEntry // per tier: version -> entry

	drainMu sync.Mutex // serializes tier-to-tier copies
	wg      sync.WaitGroup
	errMu   sync.Mutex
	errs    []error
}

// NewStore opens (or creates) a store over the tier directories, reading
// any existing manifests — reopening over the same directories after a
// crash resumes from whatever was durably committed. retain bounds how
// many versions each tier keeps (minimum 1).
func NewStore(tiers []TierDir, retain int) (*Store, error) {
	if len(tiers) == 0 {
		return nil, errors.New("checkpoint: store needs at least one tier")
	}
	if retain < 1 {
		retain = 1
	}
	s := &Store{tiers: tiers, retain: retain, manifests: make([]map[int]manifestEntry, len(tiers))}
	for i, t := range tiers {
		if err := os.MkdirAll(t.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("checkpoint: tier %s: %w", t.Name, err)
		}
		m, err := readManifest(filepath.Join(t.Dir, "MANIFEST"))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: tier %s: %w", t.Name, err)
		}
		s.manifests[i] = m
	}
	return s, nil
}

// Tiers returns the store's tier layout.
func (s *Store) Tiers() []TierDir { return s.tiers }

// versionFile is the canonical file name for a version within a tier.
func versionFile(version int) string { return fmt.Sprintf("v%08d.ckpt", version) }

// VersionPath returns where a version lives (or would live) in a tier.
func (s *Store) VersionPath(tier, version int) string {
	return filepath.Join(s.tiers[tier].Dir, versionFile(version))
}

// Save commits m as version into tier 0 and prunes versions beyond the
// retention bound. version must increase across calls.
func (s *Store) Save(m nn.Module, version int) error {
	path := s.VersionPath(0, version)
	crc, size, err := WriteFile(m, path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.manifests[0][version] = manifestEntry{Version: version, File: versionFile(version), Bytes: size, CRC: crc}
	s.pruneLocked(0)
	return s.writeManifestLocked(0)
}

// Drain copies version into tier dst from the shallowest tier that holds
// it, verifying the manifest CRC and every per-parameter section first —
// the store refuses to propagate a corrupt checkpoint deeper.
func (s *Store) Drain(version, dst int) error {
	if dst <= 0 || dst >= len(s.tiers) {
		return fmt.Errorf("checkpoint: drain target tier %d out of range", dst)
	}
	s.drainMu.Lock()
	defer s.drainMu.Unlock()

	s.mu.Lock()
	var src = -1
	var want manifestEntry
	for t := 0; t < dst; t++ {
		if e, ok := s.manifests[t][version]; ok {
			src, want = t, e
			break
		}
	}
	already := false
	if _, ok := s.manifests[dst][version]; ok {
		already = true
	}
	s.mu.Unlock()
	if already {
		return nil
	}
	if src < 0 {
		return fmt.Errorf("checkpoint: version %d not present above tier %s", version, s.tiers[dst].Name)
	}

	buf, err := os.ReadFile(s.VersionPath(src, version))
	if err != nil {
		return fmt.Errorf("checkpoint: drain read: %w", err)
	}
	if int64(len(buf)) != want.Bytes {
		return fmt.Errorf("checkpoint: refusing to drain v%d %s->%s: %d bytes on disk, manifest says %d",
			version, s.tiers[src].Name, s.tiers[dst].Name, len(buf), want.Bytes)
	}
	if err := verifyBytes(buf); err != nil {
		return fmt.Errorf("checkpoint: refusing to drain v%d %s->%s: %w",
			version, s.tiers[src].Name, s.tiers[dst].Name, err)
	}

	dstPath := s.VersionPath(dst, version)
	if err := writeDurably(dstPath, buf); err != nil {
		return fmt.Errorf("checkpoint: drain write: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.manifests[dst][version] = want
	s.pruneLocked(dst)
	return s.writeManifestLocked(dst)
}

// DrainAll drains version through every deeper tier in order.
func (s *Store) DrainAll(version int) error {
	for t := 1; t < len(s.tiers); t++ {
		if err := s.Drain(version, t); err != nil {
			return err
		}
	}
	return nil
}

// DrainAsync drains in the background; errors surface from Wait.
func (s *Store) DrainAsync(version, dst int) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if err := s.Drain(version, dst); err != nil {
			s.errMu.Lock()
			s.errs = append(s.errs, err)
			s.errMu.Unlock()
		}
	}()
}

// DrainAllAsync drains version through every deeper tier in the
// background, in order.
func (s *Store) DrainAllAsync(version int) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if err := s.DrainAll(version); err != nil {
			s.errMu.Lock()
			s.errs = append(s.errs, err)
			s.errMu.Unlock()
		}
	}()
}

// Wait blocks until every outstanding async drain finishes and returns
// their accumulated errors (nil when all succeeded).
func (s *Store) Wait() error {
	s.wg.Wait()
	s.errMu.Lock()
	defer s.errMu.Unlock()
	err := errors.Join(s.errs...)
	s.errs = nil
	return err
}

// RestoreInfo says which copy a restore actually used.
type RestoreInfo struct {
	Version  int
	Tier     int
	TierName string
}

// Restore loads the newest restorable version into m, preferring shallow
// (faster) tiers, skipping any copy whose size, whole-file CRC, section
// CRCs, or shape don't check out. It returns what it used, or an error
// describing every candidate it rejected.
func (s *Store) Restore(m nn.Module) (RestoreInfo, error) {
	s.mu.Lock()
	versions := map[int]bool{}
	for _, man := range s.manifests {
		for v := range man {
			versions[v] = true
		}
	}
	order := make([]int, 0, len(versions))
	for v := range versions {
		order = append(order, v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(order)))
	type candidate struct {
		version, tier int
		entry         manifestEntry
	}
	var cands []candidate
	for _, v := range order {
		for t := range s.tiers {
			if e, ok := s.manifests[t][v]; ok {
				cands = append(cands, candidate{v, t, e})
			}
		}
	}
	s.mu.Unlock()

	var rejected []string
	for _, c := range cands {
		path := s.VersionPath(c.tier, c.version)
		if fi, err := os.Stat(path); err != nil || fi.Size() != c.entry.Bytes {
			rejected = append(rejected, fmt.Sprintf("v%d@%s: size/stat mismatch", c.version, s.tiers[c.tier].Name))
			continue
		}
		if err := Load(m, path); err != nil {
			rejected = append(rejected, fmt.Sprintf("v%d@%s: %v", c.version, s.tiers[c.tier].Name, err))
			continue
		}
		return RestoreInfo{Version: c.version, Tier: c.tier, TierName: s.tiers[c.tier].Name}, nil
	}
	if len(rejected) == 0 {
		return RestoreInfo{}, errors.New("checkpoint: store holds no versions")
	}
	return RestoreInfo{}, fmt.Errorf("checkpoint: no restorable version (%s)", strings.Join(rejected, "; "))
}

// Newest returns the highest committed version across all tiers, or -1.
func (s *Store) Newest() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	newest := -1
	for _, man := range s.manifests {
		for v := range man {
			if v > newest {
				newest = v
			}
		}
	}
	return newest
}

// Versions lists a tier's committed versions in ascending order.
func (s *Store) Versions(tier int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var vs []int
	for v := range s.manifests[tier] {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// CorruptVersion flips payload bits of a committed copy in place — the
// fault-injection hook for silent-data-corruption experiments. The
// manifest keeps the original CRC, so Restore will reject this copy.
func (s *Store) CorruptVersion(tier, version int, xor byte) error {
	path := s.VersionPath(tier, version)
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(buf) == 0 {
		return fmt.Errorf("checkpoint: cannot corrupt empty %s", path)
	}
	buf[len(buf)/2] ^= xor
	return os.WriteFile(path, buf, 0o644)
}

// TruncateVersion tears a committed copy to frac of its length — a torn
// write caught mid-flight. frac in [0,1).
func (s *Store) TruncateVersion(tier, version int, frac float64) error {
	path := s.VersionPath(tier, version)
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	return os.Truncate(path, int64(float64(fi.Size())*frac))
}

// Close waits out async drains.
func (s *Store) Close() error { return s.Wait() }

// pruneLocked removes versions beyond the retention bound from a tier.
// Callers write the manifest afterwards, so commit and prune cost one
// durable manifest write, not two.
func (s *Store) pruneLocked(tier int) {
	man := s.manifests[tier]
	if len(man) <= s.retain {
		return
	}
	var vs []int
	for v := range man {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	for _, v := range vs[:len(vs)-s.retain] {
		os.Remove(s.VersionPath(tier, v))
		delete(man, v)
	}
}

// writeManifestLocked atomically rewrites a tier's manifest.
func (s *Store) writeManifestLocked(tier int) error {
	man := s.manifests[tier]
	var vs []int
	for v := range man {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	var b strings.Builder
	b.WriteString(manifestMagic + "\n")
	for _, v := range vs {
		e := man[v]
		fmt.Fprintf(&b, "v %d %s %d %d\n", e.Version, e.File, e.Bytes, e.CRC)
	}
	path := filepath.Join(s.tiers[tier].Dir, "MANIFEST")
	if err := writeDurably(path, []byte(b.String())); err != nil {
		return fmt.Errorf("checkpoint: manifest %s: %w", s.tiers[tier].Name, err)
	}
	return nil
}

// readManifest parses a tier manifest; a missing file is an empty tier.
func readManifest(path string) (map[int]manifestEntry, error) {
	man := map[int]manifestEntry{}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return man, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() || sc.Text() != manifestMagic {
		return nil, fmt.Errorf("manifest %s: bad header", path)
	}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		var e manifestEntry
		if _, err := fmt.Sscanf(line, "v %d %s %d %d", &e.Version, &e.File, &e.Bytes, &e.CRC); err != nil {
			return nil, fmt.Errorf("manifest %s: line %q: %w", path, line, err)
		}
		man[e.Version] = e
	}
	return man, sc.Err()
}

// writeDurably writes bytes via temp file + fsync + atomic rename.
func writeDurably(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
