package portfolio

import (
	"fmt"
	"sort"
	"strings"
)

// HoursBreakdown is the allocation-hours view the paper mentions as the
// alternative to project counts ("one could consider ... total allocation
// hours summed across relevant projects").
type HoursBreakdown struct {
	ByStatus  map[Status]float64
	ByDomain  map[Domain]float64
	ByProgram map[Program]float64
	Total     float64
}

// Hours computes the allocation-hours breakdown over non-GB projects.
func (d *Dataset) Hours() HoursBreakdown {
	h := HoursBreakdown{
		ByStatus:  map[Status]float64{},
		ByDomain:  map[Domain]float64{},
		ByProgram: map[Program]float64{},
	}
	for _, p := range d.NonGB() {
		h.ByStatus[p.Status] += p.AllocationHours
		h.ByDomain[p.Domain] += p.AllocationHours
		h.ByProgram[p.Program] += p.AllocationHours
		h.Total += p.AllocationHours
	}
	return h
}

// AIHoursFraction returns the fraction of granted node-hours held by
// projects actively or inactively using AI/ML.
func (d *Dataset) AIHoursFraction() float64 {
	h := d.Hours()
	if h.Total == 0 {
		return 0
	}
	return (h.ByStatus[Active] + h.ByStatus[Inactive]) / h.Total
}

// TopDomainsByAIHours ranks domains by node-hours granted to AI-using
// projects.
func (d *Dataset) TopDomainsByAIHours(n int) []Domain {
	hours := map[Domain]float64{}
	for _, p := range d.NonGB() {
		if p.UsesAI() {
			hours[p.Domain] += p.AllocationHours
		}
	}
	doms := Domains()
	sort.SliceStable(doms, func(i, j int) bool { return hours[doms[i]] > hours[doms[j]] })
	if n > len(doms) {
		n = len(doms)
	}
	return doms[:n]
}

// RenderHours renders the allocation-hours view.
func (d *Dataset) RenderHours() string {
	h := d.Hours()
	var b strings.Builder
	b.WriteString("Allocation node-hours by AI/ML adoption status\n")
	for _, s := range []Status{Active, Inactive, None} {
		frac := 0.0
		if h.Total > 0 {
			frac = h.ByStatus[s] / h.Total
		}
		fmt.Fprintf(&b, "  %-9s %12.0f node-hours  (%5.1f%%)\n", s, h.ByStatus[s], 100*frac)
	}
	fmt.Fprintf(&b, "  AI-using share of hours: %.1f%%\n", 100*d.AIHoursFraction())
	b.WriteString("  top domains by AI node-hours:")
	for _, dom := range d.TopDomainsByAIHours(3) {
		fmt.Fprintf(&b, " %s;", dom)
	}
	b.WriteString("\n")
	return b.String()
}
