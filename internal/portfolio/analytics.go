package portfolio

// Fractions is a status breakdown as fractions summing to 1.
type Fractions struct {
	Active, Inactive, None float64
}

func fractions(ps []Project) Fractions {
	if len(ps) == 0 {
		return Fractions{}
	}
	var f Fractions
	for _, p := range ps {
		switch p.Status {
		case Active:
			f.Active++
		case Inactive:
			f.Inactive++
		default:
			f.None++
		}
	}
	n := float64(len(ps))
	f.Active /= n
	f.Inactive /= n
	f.None /= n
	return f
}

// Figure1 returns the overall AI/ML adoption fractions across all non-GB
// project-years — the paper reports roughly 1/3 active plus 8% inactive.
func (d *Dataset) Figure1() Fractions {
	return fractions(d.NonGB())
}

// Figure2 breaks adoption down by program and year.
func (d *Dataset) Figure2() map[Program]map[int]Fractions {
	byPY := map[Program]map[int][]Project{}
	for _, p := range d.NonGB() {
		if byPY[p.Program] == nil {
			byPY[p.Program] = map[int][]Project{}
		}
		byPY[p.Program][p.Year] = append(byPY[p.Program][p.Year], p)
	}
	out := map[Program]map[int]Fractions{}
	for prog, years := range byPY {
		out[prog] = map[int]Fractions{}
		for yr, ps := range years {
			out[prog][yr] = fractions(ps)
		}
	}
	return out
}

// Figure3 returns the method mix among AI-using (active + inactive)
// non-GB projects, as fractions of that population.
func (d *Dataset) Figure3() map[Method]float64 {
	ai := d.Filter(func(p Project) bool { return p.Program != GordonBell && p.UsesAI() })
	out := map[Method]float64{}
	for _, p := range ai {
		out[p.Method]++
	}
	for m := range out {
		out[m] /= float64(len(ai))
	}
	return out
}

// Figure4 returns project counts by science domain and adoption status.
func (d *Dataset) Figure4() map[Domain]map[Status]int {
	out := map[Domain]map[Status]int{}
	for _, p := range d.NonGB() {
		if out[p.Domain] == nil {
			out[p.Domain] = map[Status]int{}
		}
		out[p.Domain][p.Status]++
	}
	return out
}

// figure56Scope selects the population of Figures 5 and 6: INCITE, ALCC
// and ECP projects (where proposal detail is abundant), active + inactive.
func (d *Dataset) figure56Scope() []Project {
	return d.Filter(func(p Project) bool {
		switch p.Program {
		case INCITE, ALCC, ECP:
			return p.UsesAI()
		}
		return false
	})
}

// Figure5 returns the motif mix of the Figure-5 population as fractions.
func (d *Dataset) Figure5() map[Motif]float64 {
	ps := d.figure56Scope()
	out := map[Motif]float64{}
	for _, p := range ps {
		out[p.Motif]++
	}
	for m := range out {
		out[m] /= float64(len(ps))
	}
	return out
}

// Figure6 returns the motif × domain count matrix of the same population.
func (d *Dataset) Figure6() map[Domain]map[Motif]int {
	out := map[Domain]map[Motif]int{}
	for _, p := range d.figure56Scope() {
		if out[p.Domain] == nil {
			out[p.Domain] = map[Motif]int{}
		}
		out[p.Domain][p.Motif]++
	}
	return out
}

// CountByProgram tallies non-GB project-years per program (the §III
// population: INCITE 147, ALCC 72, DD 352, COVID 12, ECP 62).
func (d *Dataset) CountByProgram() map[Program]int {
	out := map[Program]int{}
	for _, p := range d.Projects {
		out[p.Program]++
	}
	return out
}

// AllocationHoursByStatus sums granted node-hours per adoption status —
// the paper's alternative "measure by total allocation hours".
func (d *Dataset) AllocationHoursByStatus() map[Status]float64 {
	out := map[Status]float64{}
	for _, p := range d.NonGB() {
		out[p.Status] += p.AllocationHours
	}
	return out
}

// TopMotifShare returns the combined Figure-5 share of the paper's top
// five motifs (submodel, classification, analysis, surrogate, MD
// potentials), which the paper says account for over 3/4 of usage.
func (d *Dataset) TopMotifShare() float64 {
	f5 := d.Figure5()
	return f5[Submodel] + f5[Classification] + f5[Analysis] + f5[SurrogateModel] + f5[MDPotentials]
}

// SubdomainCounts tallies non-GB project-years per subdomain within a
// domain — the 3-letter-code granularity of §II-C.
func (d *Dataset) SubdomainCounts(dom Domain) map[string]int {
	out := map[string]int{}
	for _, p := range d.NonGB() {
		if p.Domain == dom {
			out[p.Subdomain]++
		}
	}
	return out
}
