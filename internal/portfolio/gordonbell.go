package portfolio

// GBCategory distinguishes the standard and COVID-19 special Gordon Bell
// competitions.
type GBCategory int

// Gordon Bell competition categories.
const (
	GBStandard GBCategory = iota
	GBCovid
)

func (c GBCategory) String() string {
	if c == GBCovid {
		return "COVID-19"
	}
	return "std"
}

// GBRecord is one Summit Gordon Bell finalist (Table III / §IV-A).
type GBRecord struct {
	Project
	Category GBCategory
	// UsesAIML marks the ten AI/ML-powered finalists reviewed in §IV-A.
	UsesAIML bool
	// PeakPFMixed is the reported mixed-precision peak, when given.
	PeakPFMixed float64
}

// GordonBellRecords returns the 17 Summit finalist project-years of
// Table III. The ten AI/ML finalists carry the paper's §IV-A details
// (motif, scalability); the seven non-AI finalists are anonymous
// placeholders that only contribute to Table III counts.
func GordonBellRecords() []GBRecord {
	ai := func(year int, name string, motif Motif, dom Domain, nodes int, cat GBCategory, pf float64) GBRecord {
		return GBRecord{
			Project: Project{
				ID: "GB-" + name, Name: name, Program: GordonBell, Year: year,
				Domain: dom, Status: Active, Method: DeepLearning, Motif: motif,
				MaxNodes: nodes,
			},
			Category: cat, UsesAIML: true, PeakPFMixed: pf,
		}
	}
	nonAI := func(year int, id string, dom Domain, cat GBCategory) GBRecord {
		return GBRecord{
			Project: Project{
				ID: id, Program: GordonBell, Year: year, Domain: dom, Status: None,
				MaxNodes: 4608,
			},
			Category: cat,
		}
	}
	return []GBRecord{
		// 2018 standard: 5 finalists, 3 AI/ML.
		ai(2018, "Ichimura et al. (earthquake NN preconditioner)", MathCSAlgorithm, EarthScience, 4096, GBStandard, 0),
		ai(2018, "Patton et al. (microscopy DNN hyperparameter tuning)", Classification, Materials, 4200, GBStandard, 152.5),
		ai(2018, "Kurth et al. (exascale climate analytics)", Classification, EarthScience, 4560, GBStandard, 1130),
		nonAI(2018, "GB-2018-modsim-1", Physics, GBStandard),
		nonAI(2018, "GB-2018-modsim-2", Materials, GBStandard),
		// 2019 standard: 2 finalists, 0 AI/ML.
		nonAI(2019, "GB-2019-modsim-1", Physics, GBStandard),
		nonAI(2019, "GB-2019-modsim-2", Engineering, GBStandard),
		// 2020 standard: 4 finalists, 1 AI/ML.
		ai(2020, "Jia et al. (DeePMD-kit 100M-atom MD)", MDPotentials, Materials, 4560, GBStandard, 0),
		nonAI(2020, "GB-2020-modsim-1", Physics, GBStandard),
		nonAI(2020, "GB-2020-modsim-2", EarthScience, GBStandard),
		nonAI(2020, "GB-2020-modsim-3", Engineering, GBStandard),
		// 2020 COVID-19: 2 finalists, 2 AI/ML.
		ai(2020, "Casalino et al. (spike dynamics, PointNet-AAE steering)", Steering, Biology, 4096, GBCovid, 0),
		ai(2020, "Glaser et al. (virtual drug screening, random forests)", SurrogateModel, Biology, 4602, GBCovid, 0),
		// 2021 standard: 1 finalist, 1 AI/ML.
		ai(2021, "Nguyen-Cong et al. (SNAP carbon MD)", MDPotentials, Materials, 4650, GBStandard, 0),
		// 2021 COVID-19: 3 finalists, 3 AI/ML.
		ai(2021, "Blanchard et al. (SARS-CoV-2 inhibitor language models)", Classification, Biology, 4032, GBCovid, 603),
		ai(2021, "Amaro et al. (#COVIDisAirborne, DeepDriveMD)", Steering, Biology, 4096, GBCovid, 0),
		ai(2021, "Trifan et al. (replication-transcription multiscale)", Steering, Biology, 256, GBCovid, 0),
	}
}

// GordonBellProjects returns the finalists as plain project records.
func GordonBellProjects() []Project {
	recs := GordonBellRecords()
	out := make([]Project, len(recs))
	for i, r := range recs {
		out[i] = r.Project
	}
	return out
}

// TableIIIRow is one column of Table III.
type TableIIIRow struct {
	Year     int
	Category GBCategory
	Summit   int
	SummitAI int
}

// TableIII tallies Summit Gordon Bell finalists by year and category.
func TableIII() []TableIIIRow {
	cells := []struct {
		year int
		cat  GBCategory
	}{
		{2018, GBStandard}, {2019, GBStandard}, {2020, GBStandard},
		{2020, GBCovid}, {2021, GBStandard}, {2021, GBCovid},
	}
	var rows []TableIIIRow
	for _, c := range cells {
		row := TableIIIRow{Year: c.year, Category: c.cat}
		for _, r := range GordonBellRecords() {
			if r.Year == c.year && r.Category == c.cat {
				row.Summit++
				if r.UsesAIML {
					row.SummitAI++
				}
			}
		}
		rows = append(rows, row)
	}
	return rows
}
