package portfolio

import (
	"fmt"
	"sort"
	"strings"
)

// bar renders a proportional ASCII bar.
func bar(frac float64, width int) string {
	n := int(frac*float64(width) + 0.5)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// RenderFigure1 renders the overall adoption chart.
func (d *Dataset) RenderFigure1() string {
	f := d.Figure1()
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: Overall AI/ML usage, percentage of projects (n=%d)\n", len(d.NonGB()))
	fmt.Fprintf(&b, "  active   %5.1f%% |%s|\n", 100*f.Active, bar(f.Active, 40))
	fmt.Fprintf(&b, "  inactive %5.1f%% |%s|\n", 100*f.Inactive, bar(f.Inactive, 40))
	fmt.Fprintf(&b, "  none     %5.1f%% |%s|\n", 100*f.None, bar(f.None, 40))
	return b.String()
}

// RenderFigure2 renders adoption by program and year.
func (d *Dataset) RenderFigure2() string {
	f2 := d.Figure2()
	var b strings.Builder
	b.WriteString("Figure 2: AI/ML usage by program and year, percentage of projects\n")
	progs := []Program{INCITE, ALCC, DD, ECP, COVID}
	for _, prog := range progs {
		years := make([]int, 0, len(f2[prog]))
		for yr := range f2[prog] {
			years = append(years, yr)
		}
		sort.Ints(years)
		for _, yr := range years {
			f := f2[prog][yr]
			fmt.Fprintf(&b, "  %-7s %d  active %5.1f%%  inactive %5.1f%%  |%s|\n",
				prog, yr, 100*f.Active, 100*f.Inactive, bar(f.Active+f.Inactive, 30))
		}
	}
	return b.String()
}

// RenderFigure3 renders the method mix.
func (d *Dataset) RenderFigure3() string {
	f3 := d.Figure3()
	var b strings.Builder
	b.WriteString("Figure 3: Usage by AI/ML method, percentage of AI-using projects\n")
	for _, m := range []Method{DeepLearning, OtherNeuralNetwork, OtherML, MethodUndetermined} {
		fmt.Fprintf(&b, "  %-12s %5.1f%% |%s|\n", m, 100*f3[m], bar(f3[m], 40))
	}
	return b.String()
}

// RenderFigure4 renders domain adoption counts.
func (d *Dataset) RenderFigure4() string {
	f4 := d.Figure4()
	var b strings.Builder
	b.WriteString("Figure 4: AI/ML usage by science domain, project counts\n")
	for _, dom := range Domains() {
		c := f4[dom]
		total := c[Active] + c[Inactive] + c[None]
		fmt.Fprintf(&b, "  %-18s active %3d  inactive %3d  none %3d  (total %3d)\n",
			dom, c[Active], c[Inactive], c[None], total)
	}
	return b.String()
}

// RenderFigure5 renders the motif mix.
func (d *Dataset) RenderFigure5() string {
	f5 := d.Figure5()
	var b strings.Builder
	b.WriteString("Figure 5: AI/ML usage by AI motif, percentage of projects (INCITE+ALCC+ECP)\n")
	type kv struct {
		m Motif
		v float64
	}
	var rows []kv
	for _, m := range Motifs() {
		rows = append(rows, kv{m, f5[m]})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].v > rows[j].v })
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-18s %5.1f%% |%s|\n", r.m, 100*r.v, bar(r.v, 40))
	}
	return b.String()
}

// RenderFigure6 renders the motif × domain matrix.
func (d *Dataset) RenderFigure6() string {
	f6 := d.Figure6()
	var b strings.Builder
	b.WriteString("Figure 6: AI motif vs. science domain, project counts (INCITE+ALCC+ECP)\n")
	fmt.Fprintf(&b, "  %-18s", "")
	for _, m := range Motifs() {
		fmt.Fprintf(&b, " %4s", abbrevMotif(m))
	}
	b.WriteString("\n")
	for _, dom := range Domains() {
		fmt.Fprintf(&b, "  %-18s", dom)
		for _, m := range Motifs() {
			fmt.Fprintf(&b, " %4d", f6[dom][m])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func abbrevMotif(m Motif) string {
	switch m {
	case FaultDetection:
		return "flt"
	case MathCSAlgorithm:
		return "mcs"
	case Submodel:
		return "sub"
	case MDPotentials:
		return "mdp"
	case Steering:
		return "str"
	case SurrogateModel:
		return "sur"
	case Analysis:
		return "ana"
	case MLModsimLoop:
		return "loop"
	case Classification:
		return "cls"
	case Various:
		return "var"
	case MotifUndetermined:
		return "und"
	}
	return "?"
}

// RenderTableI renders the motif taxonomy.
func RenderTableI() string {
	var b strings.Builder
	b.WriteString("Table I: Science application AI motifs\n")
	for _, row := range TableI() {
		fmt.Fprintf(&b, "  %-18s %s\n", row.Motif, row.Definition)
		fmt.Fprintf(&b, "  %-18s e.g. %s\n", "", row.Example)
	}
	return b.String()
}

// RenderTableII renders the domain taxonomy.
func RenderTableII() string {
	var b strings.Builder
	b.WriteString("Table II: Science domains and subdomains\n")
	t2 := TableII()
	for _, dom := range Domains() {
		fmt.Fprintf(&b, "  %-18s %s\n", dom, strings.Join(t2[dom], ", "))
	}
	return b.String()
}

// RenderTableIII renders the Gordon Bell finalist counts.
func RenderTableIII() string {
	var b strings.Builder
	b.WriteString("Table III: Gordon Bell award finalist project counts\n")
	b.WriteString("  year/category    Summit  Summit AI/ML\n")
	for _, row := range TableIII() {
		fmt.Fprintf(&b, "  %d %-10s %6d  %12d\n", row.Year, row.Category, row.Summit, row.SummitAI)
	}
	return b.String()
}

// RenderGordonBellReview lists the ten §IV-A AI/ML finalists.
func RenderGordonBellReview() string {
	var b strings.Builder
	b.WriteString("AI/ML-powered Gordon Bell finalists on Summit (§IV-A)\n")
	for _, r := range GordonBellRecords() {
		if !r.UsesAIML {
			continue
		}
		pf := ""
		if r.PeakPFMixed > 0 {
			pf = fmt.Sprintf(", %.1f PF mixed", r.PeakPFMixed)
		}
		fmt.Fprintf(&b, "  %d %-9s %-58s %-18s %5d nodes%s\n",
			r.Year, r.Category, r.Name, "("+r.Motif.String()+")", r.MaxNodes, pf)
	}
	return b.String()
}
