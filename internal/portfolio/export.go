package portfolio

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteProjectsCSV exports the full project-year table for external
// plotting or auditing.
func (d *Dataset) WriteProjectsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"id", "program", "year", "domain", "subdomain",
		"status", "method", "motif", "allocation_hours", "max_nodes"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range d.Projects {
		rec := []string{
			p.ID, p.Program.String(), strconv.Itoa(p.Year), p.Domain.String(),
			p.Subdomain, p.Status.String(), p.Method.String(), p.Motif.String(),
			strconv.FormatFloat(p.AllocationHours, 'f', 0, 64),
			strconv.Itoa(p.MaxNodes),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure6CSV exports the motif × domain matrix (Figure 6) as CSV.
func (d *Dataset) WriteFigure6CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	f6 := d.Figure6()
	header := []string{"domain"}
	for _, m := range Motifs() {
		header = append(header, m.String())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, dom := range Domains() {
		rec := []string{dom.String()}
		for _, m := range Motifs() {
			rec = append(rec, strconv.Itoa(f6[dom][m]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure2CSV exports adoption by program-year (Figure 2) as CSV.
func (d *Dataset) WriteFigure2CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"program", "year", "active", "inactive", "none"}); err != nil {
		return err
	}
	f2 := d.Figure2()
	progs := []Program{INCITE, ALCC, DD, ECP, COVID}
	for _, prog := range progs {
		years := make([]int, 0, len(f2[prog]))
		for yr := range f2[prog] {
			years = append(years, yr)
		}
		sort.Ints(years)
		for _, yr := range years {
			f := f2[prog][yr]
			rec := []string{
				prog.String(), strconv.Itoa(yr),
				fmt.Sprintf("%.4f", f.Active),
				fmt.Sprintf("%.4f", f.Inactive),
				fmt.Sprintf("%.4f", f.None),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
