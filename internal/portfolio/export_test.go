package portfolio

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

func TestProjectsCSV(t *testing.T) {
	d := study()
	var buf bytes.Buffer
	if err := d.WriteProjectsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(d.Projects)+1 {
		t.Fatalf("%d rows for %d projects", len(rows), len(d.Projects))
	}
	if rows[0][0] != "id" || rows[0][7] != "motif" {
		t.Fatalf("header = %v", rows[0])
	}
	// Every data row parses.
	for i, row := range rows[1:] {
		if len(row) != 10 {
			t.Fatalf("row %d has %d fields", i, len(row))
		}
		if _, err := strconv.Atoi(row[2]); err != nil {
			t.Fatalf("row %d year %q", i, row[2])
		}
		if _, err := strconv.ParseFloat(row[8], 64); err != nil {
			t.Fatalf("row %d hours %q", i, row[8])
		}
	}
}

func TestFigure6CSVMatchesAnalytics(t *testing.T) {
	d := study()
	var buf bytes.Buffer
	if err := d.WriteFigure6CSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // header + 9 domains
		t.Fatalf("%d rows", len(rows))
	}
	f6 := d.Figure6()
	// Spot-check Engineering row, submodel column (index 3 in Motifs()).
	for _, row := range rows[1:] {
		if row[0] != Engineering.String() {
			continue
		}
		got, _ := strconv.Atoi(row[3]) // columns: domain, fault, mathcs, submodel
		if got != f6[Engineering][Submodel] {
			t.Fatalf("CSV Engineering×Submodel = %d, analytics %d",
				got, f6[Engineering][Submodel])
		}
	}
}

func TestFigure2CSV(t *testing.T) {
	d := study()
	var buf bytes.Buffer
	if err := d.WriteFigure2CSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// INCITE 4 years + ALCC 3 + DD 3 + ECP 1 + COVID 1 + header = 13.
	if len(rows) != 13 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, row := range rows[1:] {
		a, err1 := strconv.ParseFloat(row[2], 64)
		i, err2 := strconv.ParseFloat(row[3], 64)
		n, err3 := strconv.ParseFloat(row[4], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("unparseable row %v", row)
		}
		if s := a + i + n; s < 0.99 || s > 1.01 {
			t.Fatalf("fractions sum to %v in %v", s, row)
		}
	}
}
