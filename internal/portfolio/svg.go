package portfolio

import (
	"fmt"
	"strings"
)

// SVG renderings of the paper's figures: self-contained vector charts
// with no dependencies, suitable for embedding in reports. Each function
// returns a complete <svg> document.

const (
	svgBarH    = 22
	svgGap     = 6
	svgLeft    = 190
	svgBarMax  = 420
	svgPad     = 30
	svgFont    = "font-family='sans-serif' font-size='13'"
	svgTitleFn = "font-family='sans-serif' font-size='15' font-weight='bold'"
)

// statusColor maps adoption status to chart colors.
func statusColor(s Status) string {
	switch s {
	case Active:
		return "#2e7d32"
	case Inactive:
		return "#f9a825"
	default:
		return "#b0bec5"
	}
}

// barRow emits one labelled horizontal bar. frac in [0,1]; text shows the
// formatted value.
func barRow(b *strings.Builder, y int, label, color string, frac float64, text string) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	w := int(frac * svgBarMax)
	fmt.Fprintf(b, "<text x='%d' y='%d' text-anchor='end' %s>%s</text>\n",
		svgLeft-8, y+svgBarH-6, svgFont, xmlEscape(label))
	fmt.Fprintf(b, "<rect x='%d' y='%d' width='%d' height='%d' fill='%s'/>\n",
		svgLeft, y, w, svgBarH, color)
	fmt.Fprintf(b, "<text x='%d' y='%d' %s>%s</text>\n",
		svgLeft+w+6, y+svgBarH-6, svgFont, xmlEscape(text))
}

func svgDoc(title string, height int, body string) string {
	var b strings.Builder
	width := svgLeft + svgBarMax + 120
	fmt.Fprintf(&b, "<svg xmlns='http://www.w3.org/2000/svg' width='%d' height='%d'>\n", width, height)
	fmt.Fprintf(&b, "<rect x='0' y='0' width='%d' height='%d' fill='white'/>\n", width, height)
	fmt.Fprintf(&b, "<text x='%d' y='20' %s>%s</text>\n", svgPad, svgTitleFn, xmlEscape(title))
	b.WriteString(body)
	b.WriteString("</svg>\n")
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", "'", "&apos;", `"`, "&quot;")
	return r.Replace(s)
}

// Figure1SVG renders the overall adoption chart.
func (d *Dataset) Figure1SVG() string {
	f := d.Figure1()
	var b strings.Builder
	y := svgPad + 10
	rows := []struct {
		label string
		frac  float64
		color string
	}{
		{"active", f.Active, statusColor(Active)},
		{"inactive", f.Inactive, statusColor(Inactive)},
		{"none", f.None, statusColor(None)},
	}
	for _, r := range rows {
		barRow(&b, y, r.label, r.color, r.frac, fmt.Sprintf("%.1f%%", 100*r.frac))
		y += svgBarH + svgGap
	}
	return svgDoc("Figure 1: Overall AI/ML usage", y+svgPad, b.String())
}

// Figure2SVG renders adoption by program-year as stacked active/inactive
// bars.
func (d *Dataset) Figure2SVG() string {
	f2 := d.Figure2()
	var b strings.Builder
	y := svgPad + 10
	for _, prog := range []Program{INCITE, ALCC, DD, ECP, COVID} {
		years := sortedYears(f2[prog])
		for _, yr := range years {
			f := f2[prog][yr]
			label := fmt.Sprintf("%s %d", prog, yr)
			aw := int(f.Active * svgBarMax)
			iw := int(f.Inactive * svgBarMax)
			fmt.Fprintf(&b, "<text x='%d' y='%d' text-anchor='end' %s>%s</text>\n",
				svgLeft-8, y+svgBarH-6, svgFont, xmlEscape(label))
			fmt.Fprintf(&b, "<rect x='%d' y='%d' width='%d' height='%d' fill='%s'/>\n",
				svgLeft, y, aw, svgBarH, statusColor(Active))
			fmt.Fprintf(&b, "<rect x='%d' y='%d' width='%d' height='%d' fill='%s'/>\n",
				svgLeft+aw, y, iw, svgBarH, statusColor(Inactive))
			fmt.Fprintf(&b, "<text x='%d' y='%d' %s>%.0f%% + %.0f%%</text>\n",
				svgLeft+aw+iw+6, y+svgBarH-6, svgFont, 100*f.Active, 100*f.Inactive)
			y += svgBarH + svgGap
		}
	}
	return svgDoc("Figure 2: AI/ML usage by program and year", y+svgPad, b.String())
}

func sortedYears(m map[int]Fractions) []int {
	var years []int
	for yr := range m {
		years = append(years, yr)
	}
	for i := 1; i < len(years); i++ {
		for j := i; j > 0 && years[j] < years[j-1]; j-- {
			years[j], years[j-1] = years[j-1], years[j]
		}
	}
	return years
}

// Figure3SVG renders the method mix.
func (d *Dataset) Figure3SVG() string {
	f3 := d.Figure3()
	var b strings.Builder
	y := svgPad + 10
	for _, m := range []Method{DeepLearning, OtherNeuralNetwork, OtherML, MethodUndetermined} {
		barRow(&b, y, m.String(), "#1565c0", f3[m], fmt.Sprintf("%.1f%%", 100*f3[m]))
		y += svgBarH + svgGap
	}
	return svgDoc("Figure 3: Usage by AI/ML method", y+svgPad, b.String())
}

// Figure4SVG renders per-domain adoption as stacked counts.
func (d *Dataset) Figure4SVG() string {
	f4 := d.Figure4()
	maxTotal := 0
	for _, c := range f4 {
		if t := c[Active] + c[Inactive] + c[None]; t > maxTotal {
			maxTotal = t
		}
	}
	var b strings.Builder
	y := svgPad + 10
	for _, dom := range Domains() {
		c := f4[dom]
		x := svgLeft
		fmt.Fprintf(&b, "<text x='%d' y='%d' text-anchor='end' %s>%s</text>\n",
			svgLeft-8, y+svgBarH-6, svgFont, xmlEscape(dom.String()))
		for _, st := range []Status{Active, Inactive, None} {
			w := c[st] * svgBarMax / maxTotal
			fmt.Fprintf(&b, "<rect x='%d' y='%d' width='%d' height='%d' fill='%s'/>\n",
				x, y, w, svgBarH, statusColor(st))
			x += w
		}
		fmt.Fprintf(&b, "<text x='%d' y='%d' %s>%d</text>\n",
			x+6, y+svgBarH-6, svgFont, c[Active]+c[Inactive]+c[None])
		y += svgBarH + svgGap
	}
	return svgDoc("Figure 4: AI/ML usage by science domain (counts)", y+svgPad, b.String())
}

// Figure5SVG renders the motif mix.
func (d *Dataset) Figure5SVG() string {
	f5 := d.Figure5()
	var b strings.Builder
	y := svgPad + 10
	for _, m := range Motifs() {
		barRow(&b, y, m.String(), "#6a1b9a", f5[m], fmt.Sprintf("%.1f%%", 100*f5[m]))
		y += svgBarH + svgGap
	}
	return svgDoc("Figure 5: AI/ML usage by AI motif (INCITE+ALCC+ECP)", y+svgPad, b.String())
}

// Figure6SVG renders the motif × domain matrix as a heatmap.
func (d *Dataset) Figure6SVG() string {
	f6 := d.Figure6()
	maxCell := 1
	for _, row := range f6 {
		for _, c := range row {
			if c > maxCell {
				maxCell = c
			}
		}
	}
	cell := 34
	var b strings.Builder
	motifs := Motifs()
	// Column headers (abbreviated motif names, rotated not supported —
	// use the short codes).
	for j, m := range motifs {
		fmt.Fprintf(&b, "<text x='%d' y='%d' %s>%s</text>\n",
			svgLeft+j*cell+4, svgPad+22, svgFont, xmlEscape(abbrevMotif(m)))
	}
	y := svgPad + 30
	for _, dom := range Domains() {
		fmt.Fprintf(&b, "<text x='%d' y='%d' text-anchor='end' %s>%s</text>\n",
			svgLeft-8, y+cell-12, svgFont, xmlEscape(dom.String()))
		for j, m := range motifs {
			v := f6[dom][m]
			// White -> deep purple scale.
			alpha := float64(v) / float64(maxCell)
			r := int(255 - alpha*(255-106))
			g := int(255 - alpha*(255-27))
			bl := int(255 - alpha*(255-154))
			fmt.Fprintf(&b, "<rect x='%d' y='%d' width='%d' height='%d' fill='rgb(%d,%d,%d)' stroke='#ddd'/>\n",
				svgLeft+j*cell, y, cell, cell, r, g, bl)
			if v > 0 {
				fill := "#333"
				if alpha > 0.6 {
					fill = "#fff"
				}
				fmt.Fprintf(&b, "<text x='%d' y='%d' text-anchor='middle' fill='%s' %s>%d</text>\n",
					svgLeft+j*cell+cell/2, y+cell/2+5, fill, svgFont, v)
			}
		}
		y += cell
	}
	return svgDoc("Figure 6: AI motif vs science domain", y+svgPad, b.String())
}

// AllFigureSVGs returns every figure keyed by filename stem.
func (d *Dataset) AllFigureSVGs() map[string]string {
	return map[string]string{
		"figure1": d.Figure1SVG(),
		"figure2": d.Figure2SVG(),
		"figure3": d.Figure3SVG(),
		"figure4": d.Figure4SVG(),
		"figure5": d.Figure5SVG(),
		"figure6": d.Figure6SVG(),
	}
}
