package portfolio

import (
	"math"
	"strings"
	"testing"
)

func TestHoursSumToTotal(t *testing.T) {
	d := study()
	h := d.Hours()
	var byStatus, byDomain, byProgram float64
	for _, v := range h.ByStatus {
		byStatus += v
	}
	for _, v := range h.ByDomain {
		byDomain += v
	}
	for _, v := range h.ByProgram {
		byProgram += v
	}
	for name, v := range map[string]float64{
		"status": byStatus, "domain": byDomain, "program": byProgram,
	} {
		if math.Abs(v-h.Total)/h.Total > 1e-9 {
			t.Errorf("%s hours sum %v vs total %v", name, v, h.Total)
		}
	}
	if h.Total <= 0 {
		t.Fatal("no hours")
	}
}

func TestAIHoursFractionPlausible(t *testing.T) {
	frac := study().AIHoursFraction()
	// AI projects are ~41% of project counts but INCITE (largest
	// allocations) adopts less than DD, so the hours share sits in a band
	// around the count share.
	if frac < 0.2 || frac > 0.6 {
		t.Fatalf("AI hours fraction = %v", frac)
	}
}

func TestTopDomainsByAIHours(t *testing.T) {
	top := study().TopDomainsByAIHours(3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	// They must be distinct.
	if top[0] == top[1] || top[1] == top[2] || top[0] == top[2] {
		t.Fatalf("duplicate domains: %v", top)
	}
	// Request more than exist.
	all := study().TopDomainsByAIHours(100)
	if len(all) != 9 {
		t.Fatalf("all = %d domains", len(all))
	}
}

func TestRenderHours(t *testing.T) {
	out := study().RenderHours()
	for _, frag := range []string{"node-hours", "active", "AI-using share"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}
