package portfolio

import (
	"encoding/xml"
	"strings"
	"testing"
)

// wellFormed checks the SVG parses as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg[:min(400, len(svg))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestAllFigureSVGsWellFormed(t *testing.T) {
	d := study()
	svgs := d.AllFigureSVGs()
	if len(svgs) != 6 {
		t.Fatalf("%d figures", len(svgs))
	}
	for name, svg := range svgs {
		if !strings.HasPrefix(svg, "<svg") {
			t.Errorf("%s does not start with <svg", name)
		}
		if !strings.Contains(svg, "</svg>") {
			t.Errorf("%s unterminated", name)
		}
		wellFormed(t, svg)
	}
}

func TestFigure1SVGContent(t *testing.T) {
	svg := study().Figure1SVG()
	for _, frag := range []string{"active", "inactive", "none", "Figure 1"} {
		if !strings.Contains(svg, frag) {
			t.Errorf("figure 1 SVG missing %q", frag)
		}
	}
	// Three data bars plus the background rect.
	if got := strings.Count(svg, "<rect"); got != 4 {
		t.Errorf("figure 1 has %d rects, want 4", got)
	}
}

func TestFigure6SVGHeatmapCells(t *testing.T) {
	svg := study().Figure6SVG()
	// 9 domains × 11 motifs cells + background.
	if got := strings.Count(svg, "<rect"); got != 9*11+1 {
		t.Errorf("figure 6 has %d rects, want %d", got, 9*11+1)
	}
	if !strings.Contains(svg, "Engineering") || !strings.Contains(svg, "sub") {
		t.Error("figure 6 missing labels")
	}
}

func TestSVGEscaping(t *testing.T) {
	if got := xmlEscape(`a<b>&"c"'d'`); got != "a&lt;b&gt;&amp;&quot;c&quot;&apos;d&apos;" {
		t.Fatalf("escape = %q", got)
	}
}

func TestFigure4SVGStacks(t *testing.T) {
	svg := study().Figure4SVG()
	// 9 domains × 3 status segments + background.
	if got := strings.Count(svg, "<rect"); got != 9*3+1 {
		t.Errorf("figure 4 has %d rects, want %d", got, 9*3+1)
	}
	wellFormed(t, svg)
}
