package portfolio

import (
	"math"
	"strings"
	"testing"
)

// study is the default dataset used by the reproduction (seed 1).
func study() *Dataset { return Generate(1) }

func TestProjectYearCountsMatchPaper(t *testing.T) {
	// §III: 662 project-years — INCITE 147, ALCC 72, DD 352, COVID non-DD
	// 12, ECP 62, Gordon Bell finalist 17.
	counts := study().CountByProgram()
	want := map[Program]int{
		INCITE: 147, ALCC: 72, DD: 352, COVID: 12, ECP: 62, GordonBell: 17,
	}
	total := 0
	for prog, w := range want {
		if counts[prog] != w {
			t.Errorf("%s count = %d, want %d", prog, counts[prog], w)
		}
		total += counts[prog]
	}
	if total != 662 {
		t.Errorf("total project-years = %d, want 662", total)
	}
}

func TestFigure1MatchesPaper(t *testing.T) {
	// Figure 1: about 1/3 active, another 8% inactive.
	f := study().Figure1()
	if math.Abs(f.Active-0.333) > 0.03 {
		t.Errorf("active fraction = %v, paper ~1/3", f.Active)
	}
	if math.Abs(f.Inactive-0.08) > 0.025 {
		t.Errorf("inactive fraction = %v, paper ~8%%", f.Inactive)
	}
	if math.Abs(f.Active+f.Inactive+f.None-1) > 1e-9 {
		t.Errorf("fractions do not sum to 1: %+v", f)
	}
}

func TestFigure2INCITETrajectory(t *testing.T) {
	f2 := study().Figure2()
	incite := f2[INCITE]
	// Paper: INCITE adoption grew steadily from 20% in 2019; by 2022 about
	// 31% active and another 28% inactive (conclusions).
	if math.Abs(incite[2019].Active-0.20) > 0.04 {
		t.Errorf("INCITE 2019 active = %v, paper 20%%", incite[2019].Active)
	}
	if math.Abs(incite[2022].Active-0.31) > 0.04 {
		t.Errorf("INCITE 2022 active = %v, paper 31%%", incite[2022].Active)
	}
	if math.Abs(incite[2022].Inactive-0.28) > 0.04 {
		t.Errorf("INCITE 2022 inactive = %v, paper 28%%", incite[2022].Inactive)
	}
	// Steady growth.
	for yr := 2020; yr <= 2022; yr++ {
		if incite[yr].Active < incite[yr-1].Active {
			t.Errorf("INCITE active usage fell %d -> %d", yr-1, yr)
		}
	}
	// ALCC 2019-20 especially heavy.
	if f2[ALCC][2019].Active < 0.38 {
		t.Errorf("ALCC 2019 active = %v, should be heavy", f2[ALCC][2019].Active)
	}
	// ECP uses AI/ML less than INCITE.
	if f2[ECP][2020].Active >= incite[2020].Active {
		t.Errorf("ECP active %v should be below INCITE %v", f2[ECP][2020].Active, incite[2020].Active)
	}
	// COVID projects use AI/ML heavily.
	if f2[COVID][2020].Active < 0.6 {
		t.Errorf("COVID active = %v, should be heavy", f2[COVID][2020].Active)
	}
}

func TestFigure3DeepLearningDominates(t *testing.T) {
	f3 := study().Figure3()
	dlnn := f3[DeepLearning] + f3[OtherNeuralNetwork]
	other := f3[OtherML]
	// Paper: "DL/NN methods are much more prevalent than others".
	if dlnn <= 2*other {
		t.Errorf("DL/NN share %v not dominant over other ML %v", dlnn, other)
	}
	var total float64
	for _, v := range f3 {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("method fractions sum to %v", total)
	}
}

func TestFigure4DomainPatterns(t *testing.T) {
	f4 := study().Figure4()
	// Computer Science has the highest adoption *rate*.
	rate := func(d Domain) float64 {
		c := f4[d]
		tot := c[Active] + c[Inactive] + c[None]
		if tot == 0 {
			return 0
		}
		return float64(c[Active]+c[Inactive]) / float64(tot)
	}
	csRate := rate(ComputerScience)
	for _, d := range Domains() {
		if d != ComputerScience && rate(d) > csRate {
			t.Errorf("%s adoption rate %v exceeds Computer Science %v", d, rate(d), csRate)
		}
	}
	// Biology is a heavy user; Nuclear Energy light.
	if rate(Biology) < 0.45 {
		t.Errorf("Biology adoption rate = %v", rate(Biology))
	}
	if rate(NuclearEnergy) > rate(Biology) {
		t.Errorf("Nuclear Energy rate %v above Biology %v", rate(NuclearEnergy), rate(Biology))
	}
	// Every domain appears in the portfolio.
	for _, d := range Domains() {
		c := f4[d]
		if c[Active]+c[Inactive]+c[None] == 0 {
			t.Errorf("domain %s absent from portfolio", d)
		}
	}
}

func TestFigure5MotifMix(t *testing.T) {
	f5 := study().Figure5()
	// Paper: the top motif is Submodels...
	for m, v := range f5 {
		if m != Submodel && v > f5[Submodel] {
			t.Errorf("motif %s share %v exceeds submodel %v", m, v, f5[Submodel])
		}
	}
	// ...and with Classification, Analysis, Surrogate Models and MD
	// Potentials accounts for over 3/4 of usage.
	if share := study().TopMotifShare(); share < 0.75 {
		t.Errorf("top-5 motif share = %v, paper says over 3/4", share)
	}
}

func TestFigure6StructuralPatterns(t *testing.T) {
	f6 := study().Figure6()
	// The most prominent cell is Submodels × Engineering.
	maxCell, maxDom, maxMotif := 0, Domain(0), Motif(0)
	for d, row := range f6 {
		for m, c := range row {
			if c > maxCell {
				maxCell, maxDom, maxMotif = c, d, m
			}
		}
	}
	if maxDom != Engineering || maxMotif != Submodel {
		t.Errorf("largest cell is %s × %s (%d), paper says Engineering × Submodel",
			maxDom, maxMotif, maxCell)
	}
	// Biology uses no (grid) submodels — MD potentials instead.
	if f6[Biology][Submodel] != 0 {
		t.Errorf("Biology × Submodel = %d, paper says none", f6[Biology][Submodel])
	}
	if f6[Biology][MDPotentials] == 0 {
		t.Error("Biology should use MD potentials")
	}
	// Computer Science: many Classification, no Math/CS Algorithm.
	if f6[ComputerScience][MathCSAlgorithm] != 0 {
		t.Errorf("CS × math/cs = %d, paper says none", f6[ComputerScience][MathCSAlgorithm])
	}
	if f6[ComputerScience][Classification] == 0 {
		t.Error("CS should contain classification projects")
	}
	// Engineering and Earth Science use very little Classification.
	eng := f6[Engineering]
	engTotal := 0
	for _, c := range eng {
		engTotal += c
	}
	if engTotal > 0 && float64(eng[Classification])/float64(engTotal) > 0.15 {
		t.Errorf("Engineering classification share too high: %d/%d", eng[Classification], engTotal)
	}
	// Materials: machine-learned MD potentials heavily used.
	matRow := f6[Materials]
	for m, c := range matRow {
		if c > matRow[MDPotentials] && m != MDPotentials {
			t.Errorf("Materials top motif is %s, paper says MD potentials", m)
		}
	}
}

func TestTableIIIMatchesPaper(t *testing.T) {
	rows := TableIII()
	want := []TableIIIRow{
		{2018, GBStandard, 5, 3},
		{2019, GBStandard, 2, 0},
		{2020, GBStandard, 4, 1},
		{2020, GBCovid, 2, 2},
		{2021, GBStandard, 1, 1},
		{2021, GBCovid, 3, 3},
	}
	if len(rows) != len(want) {
		t.Fatalf("Table III has %d rows", len(rows))
	}
	for i, w := range want {
		if rows[i] != w {
			t.Errorf("Table III row %d = %+v, want %+v", i, rows[i], w)
		}
	}
}

func TestGordonBellReviewDetails(t *testing.T) {
	recs := GordonBellRecords()
	if len(recs) != 17 {
		t.Fatalf("%d GB records, want 17", len(recs))
	}
	aiCount := 0
	byName := map[string]GBRecord{}
	for _, r := range recs {
		if r.UsesAIML {
			aiCount++
			byName[r.Name] = r
		}
	}
	if aiCount != 10 {
		t.Fatalf("%d AI/ML finalists, want 10", aiCount)
	}
	// Spot-check §IV-A facts.
	checks := []struct {
		substr string
		motif  Motif
		nodes  int
	}{
		{"Ichimura", MathCSAlgorithm, 4096},
		{"Kurth", Classification, 4560},
		{"Jia", MDPotentials, 4560},
		{"Glaser", SurrogateModel, 4602},
		{"Nguyen-Cong", MDPotentials, 4650},
		{"Blanchard", Classification, 4032},
		{"Trifan", Steering, 256},
	}
	for _, c := range checks {
		found := false
		for name, r := range byName {
			if strings.Contains(name, c.substr) {
				found = true
				if r.Motif != c.motif || r.MaxNodes != c.nodes {
					t.Errorf("%s: motif=%s nodes=%d, want %s/%d",
						c.substr, r.Motif, r.MaxNodes, c.motif, c.nodes)
				}
			}
		}
		if !found {
			t.Errorf("finalist %q missing", c.substr)
		}
	}
}

func TestTaxonomyTables(t *testing.T) {
	if got := len(TableI()); got != 10 {
		t.Errorf("Table I has %d motifs, want 10", got)
	}
	t2 := TableII()
	if len(t2) != 9 {
		t.Errorf("Table II has %d domains, want 9", len(t2))
	}
	for d, subs := range t2 {
		if len(subs) == 0 {
			t.Errorf("domain %s has no subdomains", d)
		}
	}
	if SubdomainCount() < 38 {
		t.Errorf("only %d subdomains", SubdomainCount())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(7), Generate(7)
	if len(a.Projects) != len(b.Projects) {
		t.Fatal("lengths differ")
	}
	for i := range a.Projects {
		if a.Projects[i] != b.Projects[i] {
			t.Fatalf("project %d differs between equal seeds", i)
		}
	}
	c := Generate(8)
	same := 0
	for i := range a.Projects {
		if a.Projects[i].Domain == c.Projects[i].Domain {
			same++
		}
	}
	if same == len(a.Projects) {
		t.Fatal("different seeds produced identical domain assignments")
	}
}

// TestInvariantsAcrossSeeds: the structural zeros and count calibrations
// must hold for every seed, not just the study seed.
func TestInvariantsAcrossSeeds(t *testing.T) {
	for seed := uint64(2); seed < 12; seed++ {
		d := Generate(seed)
		if got := len(d.Projects); got != 662 {
			t.Fatalf("seed %d: %d project-years", seed, got)
		}
		f6 := d.Figure6()
		if f6[Biology][Submodel] != 0 || f6[ComputerScience][MathCSAlgorithm] != 0 {
			t.Fatalf("seed %d: structural zeros violated", seed)
		}
		f := d.Figure1()
		if f.Active < 0.25 || f.Active > 0.42 {
			t.Fatalf("seed %d: active fraction %v out of band", seed, f.Active)
		}
		for _, p := range d.Projects {
			if p.Status == None && (p.Motif != MotifNone || p.Method != MethodNone) {
				t.Fatalf("seed %d: non-AI project %s has motif/method", seed, p.ID)
			}
			if p.Status != None && p.Program != GordonBell && p.Motif == MotifNone {
				t.Fatalf("seed %d: AI project %s lacks a motif", seed, p.ID)
			}
			if p.AllocationHours < 0 {
				t.Fatalf("seed %d: negative allocation", seed)
			}
		}
	}
}

func TestAllocationHoursByStatus(t *testing.T) {
	hours := study().AllocationHoursByStatus()
	if hours[Active] <= 0 || hours[None] <= 0 {
		t.Fatalf("allocation hours: %+v", hours)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	d := study()
	outputs := []string{
		d.RenderFigure1(), d.RenderFigure2(), d.RenderFigure3(),
		d.RenderFigure4(), d.RenderFigure5(), d.RenderFigure6(),
		RenderTableI(), RenderTableII(), RenderTableIII(), RenderGordonBellReview(),
	}
	for i, s := range outputs {
		if len(s) < 80 {
			t.Errorf("renderer %d produced %q", i, s)
		}
	}
	if !strings.Contains(d.RenderFigure1(), "active") {
		t.Error("Figure 1 missing labels")
	}
	if !strings.Contains(RenderTableIII(), "2018") {
		t.Error("Table III missing years")
	}
}

func TestSubdomainCountsConsistent(t *testing.T) {
	d := study()
	t2 := TableII()
	for _, dom := range Domains() {
		counts := d.SubdomainCounts(dom)
		total := 0
		valid := map[string]bool{}
		for _, s := range t2[dom] {
			valid[s] = true
		}
		for sub, c := range counts {
			if !valid[sub] {
				t.Fatalf("domain %s has unknown subdomain %q", dom, sub)
			}
			total += c
		}
		// Totals must match Figure 4's domain counts.
		f4 := d.Figure4()[dom]
		if want := f4[Active] + f4[Inactive] + f4[None]; total != want {
			t.Fatalf("domain %s subdomain total %d vs figure-4 %d", dom, total, want)
		}
	}
}
