// Package portfolio reconstructs the paper's project-portfolio study: the
// AI-motif taxonomy (Table I), the science-domain taxonomy (Table II), a
// deterministic synthetic reconstruction of the 662 project-years across
// the OLCF allocation programs, the Gordon Bell finalist records
// (Table III and §IV-A), and the analytics that regenerate Figures 1–6.
//
// The OLCF proposal archive is not public, so the dataset is synthetic:
// its *marginals* are calibrated to every count and percentage the paper
// reports, while individual project records are generated deterministically
// from a seed. See DESIGN.md for the substitution rationale.
package portfolio

// Program is an OLCF allocation program.
type Program int

// Allocation programs considered by the study (§II-B, §II-C).
const (
	INCITE Program = iota
	ALCC
	DD
	ECP
	COVID // COVID-19 HPC Consortium projects not overlapping DD
	GordonBell
	numPrograms
)

var programNames = [...]string{"INCITE", "ALCC", "DD", "ECP", "COVID", "GordonBell"}

func (p Program) String() string { return programNames[p] }

// Status is a project's AI/ML adoption status (§II-C): Active means actual
// usage in the project year; Inactive covers prior/planned/exploratory or
// companion-project usage; None means no serious interest.
type Status int

// Adoption statuses.
const (
	None Status = iota
	Inactive
	Active
	numStatuses
)

var statusNames = [...]string{"none", "inactive", "active"}

func (s Status) String() string { return statusNames[s] }

// Method is the AI/ML method family of Figure 3.
type Method int

// Method families.
const (
	MethodNone Method = iota
	DeepLearning
	OtherNeuralNetwork
	OtherML // SVM, isolation forests, PCA, regressions, boosted trees, ...
	MethodUndetermined
	numMethods
)

var methodNames = [...]string{"none", "DL/DNN", "other NN", "other ML", "undetermined"}

func (m Method) String() string { return methodNames[m] }

// Motif is the science-application AI motif of Table I. MDPotentials is
// the molecular-dynamics special case of Submodel, which the paper's
// figures track separately.
type Motif int

// AI motifs (Table I).
const (
	MotifNone Motif = iota
	FaultDetection
	MathCSAlgorithm
	Submodel
	MDPotentials
	Steering
	SurrogateModel
	Analysis
	MLModsimLoop
	Classification
	Various
	MotifUndetermined
	numMotifs
)

var motifNames = [...]string{
	"none", "fault detection", "math/cs algorithm", "submodel", "MD potentials",
	"steering", "surrogate model", "analysis", "ML+modsim loop", "classification",
	"various", "undetermined",
}

func (m Motif) String() string { return motifNames[m] }

// MotifDefinition is one row of Table I.
type MotifDefinition struct {
	Motif      Motif
	Definition string
	Example    string
}

// TableI returns the AI-motif taxonomy exactly as the paper defines it.
func TableI() []MotifDefinition {
	return []MotifDefinition{
		{FaultDetection,
			"detect algorithmic or other failure in execution, send signal for automatic or manual remediation",
			"detect simulation defect caused by execution error"},
		{MathCSAlgorithm,
			"ML is used to enhance some mathematical (non-science-proper) computation",
			"solver's linear system dimension is reduced based on machine-learned parameter"},
		{Submodel,
			"a (proper) subset of a science computation is replaced by an ML model; molecular dynamics (MD) potentials as special case",
			"physics-based radiation model in a climate code replaced by ML model"},
		{Steering,
			"automatic steering of the direction of a computation for some internal process",
			"ML method to guide Monte Carlo sampling to include undersampled regions"},
		{SurrogateModel,
			"full science model replaced by ML approximation that captures important aspects, used for speed or science understanding",
			"data from tokamak simulation runs used to train surrogate model"},
		{Analysis,
			"results from modeling and simulation (modsim) runs are analyzed by a human using ML methods",
			"use graph neural networks to analyze results of MD simulation"},
		{MLModsimLoop,
			"both ML and traditional modsim, coupled",
			"MD in loop used to refine deep learning model via active learning"},
		{Classification,
			"\"pure\" ML with little or no modsim used to classify some phenomenon; includes some other methods like reinforcement learning",
			"deep neural network inference to detect rare astrophysical event"},
		{Various,
			"umbrella project with multiple unrelated subprojects using possibly different kinds of AI/ML",
			"CAAR/ESP/NESAP application readiness"},
		{MotifUndetermined,
			"manner of AI/ML use is undetermined",
			"project is exploring AI/ML use but gives no details"},
	}
}

// Domain is a science domain (Table II).
type Domain int

// Science domains.
const (
	Biology Domain = iota
	Chemistry
	ComputerScience
	EarthScience
	Engineering
	FusionPlasma
	Materials
	NuclearEnergy
	Physics
	numDomains
)

var domainNames = [...]string{
	"Biology", "Chemistry", "Computer Science", "Earth Science", "Engineering",
	"Fusion and Plasma", "Materials", "Nuclear Energy", "Physics",
}

func (d Domain) String() string { return domainNames[d] }

// Domains lists all science domains in Table II order.
func Domains() []Domain {
	out := make([]Domain, numDomains)
	for i := range out {
		out[i] = Domain(i)
	}
	return out
}

// Motifs lists all motifs in Table I order (excluding MotifNone).
func Motifs() []Motif {
	return []Motif{FaultDetection, MathCSAlgorithm, Submodel, MDPotentials,
		Steering, SurrogateModel, Analysis, MLModsimLoop, Classification,
		Various, MotifUndetermined}
}

// TableII returns the domain → subdomain map exactly as the paper's
// Table II lists it.
func TableII() map[Domain][]string {
	return map[Domain][]string{
		Biology: {"Bioinformatics", "Biophysics", "Life Sciences", "Medical Science",
			"Neuroscience", "Proteomics", "Systems Biology"},
		Chemistry:       {"Chemistry", "Physical Chemistry"},
		ComputerScience: {"Computer Science", "Machine Learning"},
		EarthScience:    {"Atmospheric Science", "Climate", "Geosciences", "Geographic Information Systems"},
		Engineering:     {"Aerodynamics", "Bioenergy", "Combustion", "Engineering", "Fluid Dynamics", "Turbulence"},
		FusionPlasma:    {"Fusion Energy", "Plasma Physics"},
		Materials:       {"Materials Science", "Nanoelectronics", "Nanomechanics", "Nanophotonics", "Nanoscience"},
		NuclearEnergy:   {"Nuclear Fission", "Nuclear Fuel Cycle"},
		Physics: {"Accelerator Physics", "Astrophysics", "Cosmology", "Atomic/Molecular Physics",
			"Condensed Matter Physics", "High Energy Physics", "Lattice Gauge Theory",
			"Nuclear Physics", "Physics", "Solar/Space Physics"},
	}
}

// SubdomainCount returns the total number of 3-letter science subdomain
// codes; the paper says 48.
func SubdomainCount() int {
	n := 0
	for _, subs := range TableII() {
		n += len(subs)
	}
	return n
}
