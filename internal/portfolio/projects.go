package portfolio

import (
	"fmt"

	"summitscale/internal/stats"
)

// Project is one project-year record.
type Project struct {
	ID        string
	Program   Program
	Year      int
	Domain    Domain
	Subdomain string
	Status    Status
	Method    Method
	Motif     Motif
	// AllocationHours is the granted Summit node-hours.
	AllocationHours float64
	// MaxNodes is the largest node count the project reports using.
	MaxNodes int
	// Name is set for the documented Gordon Bell records.
	Name string
}

// UsesAI reports active or inactive AI/ML adoption.
func (p Project) UsesAI() bool { return p.Status != None }

// Dataset is the reconstructed portfolio.
type Dataset struct {
	Projects []Project
}

// programYearPlan calibrates one program-year block to the paper's
// reported marginals (§II-C counts; Figure 2 adoption trajectories).
type programYearPlan struct {
	program        Program
	year           int
	count          int
	activeFrac     float64
	inactiveFrac   float64
	domainWeights  []float64 // indexed by Domain
	meanAllocation float64   // node-hours
}

// plans returns the calibrated program-year blocks: 147 INCITE (2019-22),
// 72 ALCC (2019-21 cycles), 352 DD (2019-21), 62 ECP, 12 non-DD COVID —
// 645 project-years, with Gordon Bell's 17 finalists added separately.
func plans() []programYearPlan {
	// Domain mixes per program. INCITE/ALCC lean to traditional modsim
	// domains; DD has a long tail of Computer Science and Biology
	// exploration; COVID is biology/chemistry.
	inciteMix := []float64{4, 2, 1.5, 3, 7.5, 3.5, 5, 1, 10}
	alccMix := []float64{3, 1.5, 1, 3, 6.5, 3, 4, 1.5, 6}
	ddMix := []float64{7, 2, 6, 3, 5, 2, 5, 1, 7}
	ecpMix := []float64{2, 2, 3, 2, 4, 2, 3, 1, 5}
	covidMix := []float64{9, 2, 1, 0, 0, 0, 0.5, 0, 0.5}

	var ps []programYearPlan
	// INCITE: steady growth from 20% active in 2019 to 31% in 2022, with
	// another 28% inactive by 2022 (paper's conclusions).
	inciteActive := map[int]float64{2019: 0.20, 2020: 0.24, 2021: 0.28, 2022: 0.31}
	inciteInactive := map[int]float64{2019: 0.16, 2020: 0.20, 2021: 0.24, 2022: 0.28}
	inciteCounts := map[int]int{2019: 36, 2020: 37, 2021: 37, 2022: 37}
	for yr := 2019; yr <= 2022; yr++ {
		ps = append(ps, programYearPlan{INCITE, yr, inciteCounts[yr],
			inciteActive[yr], inciteInactive[yr], inciteMix, 500_000})
	}
	// ALCC: fewer projects, with especially heavy usage in the 2019-20
	// cycle ("a large subset of a smaller number of projects").
	alccActive := map[int]float64{2019: 0.45, 2020: 0.42, 2021: 0.30}
	alccCounts := map[int]int{2019: 22, 2020: 24, 2021: 26}
	for yr := 2019; yr <= 2021; yr++ {
		ps = append(ps, programYearPlan{ALCC, yr, alccCounts[yr],
			alccActive[yr], 0.10, alccMix, 300_000})
	}
	// DD: very many projects, many using AI/ML; short proposals rarely
	// document merely-planned usage, so inactive is low.
	ddActive := map[int]float64{2019: 0.33, 2020: 0.36, 2021: 0.38}
	ddCounts := map[int]int{2019: 115, 2020: 118, 2021: 119}
	for yr := 2019; yr <= 2021; yr++ {
		ps = append(ps, programYearPlan{DD, yr, ddCounts[yr],
			ddActive[yr], 0.03, ddMix, 30_000})
	}
	// ECP: constrained by project goals fixed early in the program.
	ps = append(ps, programYearPlan{ECP, 2020, 62, 0.16, 0.08, ecpMix, 100_000})
	// COVID consortium (non-DD): heavy AI for drug discovery.
	ps = append(ps, programYearPlan{COVID, 2020, 12, 0.75, 0.08, covidMix, 75_000})
	return ps
}

// adoptionMultiplier scales a block's adoption odds per domain (Figure 4's
// domain-specific usage: Computer Science ~all, Biology/Materials heavy,
// Nuclear Energy light).
func adoptionMultiplier(d Domain) float64 {
	switch d {
	case ComputerScience:
		return 2.4
	case Biology:
		return 1.6
	case Materials:
		return 1.35
	case Engineering, EarthScience:
		return 1.0
	case FusionPlasma:
		return 0.9
	case Chemistry:
		return 0.7
	case Physics:
		return 0.6
	case NuclearEnergy:
		return 0.3
	default:
		return 1
	}
}

// motifWeights returns Figure 6's domain-conditional motif distribution.
// Structural zeros from the paper's discussion: Biology uses no grid
// submodels (MD potentials instead), Computer Science has no math/cs
// algorithm projects (Classification/Various capture them).
func motifWeights(d Domain) []float64 {
	w := make([]float64, numMotifs)
	switch d {
	case Engineering:
		w[Submodel], w[Analysis], w[SurrogateModel], w[Steering] = 14, 2, 2.5, 1
		w[MathCSAlgorithm], w[MotifUndetermined] = 1, 1
	case EarthScience:
		w[Submodel], w[Analysis], w[SurrogateModel], w[Classification] = 6, 2, 2, 0.5
		w[MotifUndetermined] = 1
	case Biology:
		w[MDPotentials], w[Steering], w[Analysis], w[Classification] = 3, 3, 3, 3
		w[SurrogateModel], w[MLModsimLoop], w[MotifUndetermined] = 2, 1, 1
	case ComputerScience:
		w[Classification], w[Various], w[Analysis] = 8, 3, 1.5
		w[MotifUndetermined] = 0.5
	case Materials:
		w[MDPotentials], w[Submodel], w[Analysis], w[SurrogateModel] = 7, 2, 2, 2
		w[MLModsimLoop], w[MotifUndetermined] = 1.5, 1
	case FusionPlasma:
		w[MDPotentials], w[Submodel], w[SurrogateModel], w[Steering] = 2, 2, 3, 1
		w[Analysis], w[MotifUndetermined] = 1.5, 1
	case Physics:
		w[Classification], w[Analysis], w[MathCSAlgorithm], w[SurrogateModel] = 3, 3, 1, 2
		w[Submodel], w[MotifUndetermined] = 1, 1
	case Chemistry:
		w[MDPotentials], w[Analysis], w[SurrogateModel] = 3, 2, 2
		w[MotifUndetermined] = 1
	case NuclearEnergy:
		w[Submodel], w[SurrogateModel], w[MotifUndetermined] = 2, 2, 1
	}
	return w
}

// methodWeights returns Figure 3's method mix conditional on motif: deep
// learning dominates, classical ML persists in surrogate/analysis work.
func methodWeights(m Motif) []float64 {
	w := make([]float64, numMethods)
	switch m {
	case SurrogateModel, Analysis:
		w[DeepLearning], w[OtherNeuralNetwork], w[OtherML], w[MethodUndetermined] = 4, 1, 3, 1
	case MDPotentials:
		w[DeepLearning], w[OtherNeuralNetwork], w[OtherML], w[MethodUndetermined] = 5, 2, 2, 0.5
	case MotifUndetermined:
		w[DeepLearning], w[OtherML], w[MethodUndetermined] = 1, 0.5, 3
	default:
		w[DeepLearning], w[OtherNeuralNetwork], w[OtherML], w[MethodUndetermined] = 6, 1.5, 1.5, 1
	}
	return w
}

// Generate reconstructs the portfolio deterministically from seed. The
// default study dataset uses seed 1.
func Generate(seed uint64) *Dataset {
	rng := stats.NewRNG(seed)
	ds := &Dataset{}
	subs := TableII()
	for _, plan := range plans() {
		// Integer adoption quotas for the block keep Figure 2 exact.
		nActive := int(plan.activeFrac*float64(plan.count) + 0.5)
		nInactive := int(plan.inactiveFrac*float64(plan.count) + 0.5)
		statuses := make([]Status, 0, plan.count)
		for i := 0; i < nActive; i++ {
			statuses = append(statuses, Active)
		}
		for i := 0; i < nInactive; i++ {
			statuses = append(statuses, Inactive)
		}
		for len(statuses) < plan.count {
			statuses = append(statuses, None)
		}

		// Domains: AI-adopting projects are biased toward the high-adoption
		// domains via the multiplier; non-AI projects inversely.
		for i, st := range statuses {
			w := make([]float64, numDomains)
			for d := 0; d < int(numDomains); d++ {
				base := plan.domainWeights[d]
				mult := adoptionMultiplier(Domain(d))
				if st == None {
					w[d] = base / mult
				} else {
					w[d] = base * mult
				}
			}
			dom := Domain(rng.Categorical(w))
			p := Project{
				ID:              fmt.Sprintf("%s-%d-%03d", plan.program, plan.year, i),
				Program:         plan.program,
				Year:            plan.year,
				Domain:          dom,
				Subdomain:       subs[dom][rng.Intn(len(subs[dom]))],
				Status:          st,
				AllocationHours: plan.meanAllocation * (0.5 + rng.ExpFloat64()),
				MaxNodes:        64 << rng.Intn(7), // 64..4096
			}
			if st != None {
				p.Motif = Motif(rng.Categorical(motifWeights(dom)))
				p.Method = Method(rng.Categorical(methodWeights(p.Motif)))
			}
			ds.Projects = append(ds.Projects, p)
		}
	}
	ds.Projects = append(ds.Projects, GordonBellProjects()...)
	return ds
}

// Filter returns the projects matching keep.
func (d *Dataset) Filter(keep func(Project) bool) []Project {
	var out []Project
	for _, p := range d.Projects {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out
}

// NonGB returns all project-years outside the Gordon Bell set (the paper
// analyzes those separately).
func (d *Dataset) NonGB() []Project {
	return d.Filter(func(p Project) bool { return p.Program != GordonBell })
}
