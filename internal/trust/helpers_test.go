package trust

import (
	"summitscale/internal/data"
	"summitscale/internal/tensor"
)

// newClimate builds the synthetic climate source used by the saliency test.
func newClimate(seed uint64) *data.ClimateImages {
	return data.NewClimateImages(seed, 32, 1, 8)
}

// batchClimate assembles the first n samples.
func batchClimate(src *data.ClimateImages, n int) (*tensor.Tensor, []int) {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return data.BatchImages(src, idx)
}

// stormImage returns the first label-1 sample.
func stormImage(src *data.ClimateImages) (*tensor.Tensor, int) {
	for i := 0; i < src.Len(); i++ {
		s := src.Sample(i)
		if s.Label == 1 {
			return s.X, 1
		}
	}
	return nil, -1
}
