package trust

import (
	"math"
	"testing"

	"summitscale/internal/autograd"
	"summitscale/internal/nn"
	"summitscale/internal/stats"
	"summitscale/internal/tensor"
)

func TestEnforceSumConstraintExact(t *testing.T) {
	rng := stats.NewRNG(1)
	pred := tensor.Randn(rng, 1, 5, 4)
	totals := []float64{1, 2, 3, 4, 5}
	fixed := EnforceSumConstraint(pred, totals)
	if v := ConstraintViolation(fixed, totals); v > 1e-12 {
		t.Fatalf("violation after enforcement = %v", v)
	}
	// Correction is minimal in the uniform sense: each element moves by
	// the same amount per row.
	d00 := fixed.At(0, 0) - pred.At(0, 0)
	d01 := fixed.At(0, 1) - pred.At(0, 1)
	if math.Abs(d00-d01) > 1e-12 {
		t.Fatalf("correction not uniform: %v vs %v", d00, d01)
	}
	// Original untouched.
	if v := ConstraintViolation(pred, totals); v < 1e-6 {
		t.Fatal("test predictions accidentally satisfied the constraint")
	}
}

func TestEnforceSumConstraintShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	EnforceSumConstraint(tensor.New(2, 2), []float64{1})
}

// trainAE fits a small autoencoder on clustered in-distribution data.
func trainAE(t *testing.T, data *tensor.Tensor) *nn.Autoencoder {
	t.Helper()
	ae := nn.NewAutoencoder(stats.NewRNG(2), data.Dim(1), []int{16}, 2)
	x := autograd.Constant(data)
	for step := 0; step < 400; step++ {
		nn.ZeroGrads(ae)
		loss := autograd.MSE(ae.Forward(x), data)
		loss.Backward(nil)
		for _, p := range ae.Params() {
			wd, gd := p.Value.Data.Data(), p.Value.Grad.Data()
			for i := range wd {
				wd[i] -= 0.05 * gd[i]
			}
		}
	}
	return ae
}

// inDist draws samples from a 2-D subspace of the 6-D feature space.
func inDist(rng *stats.RNG, n int) *tensor.Tensor {
	basis1 := []float64{1, 0.5, -0.3, 0.2, 0.8, -0.1}
	basis2 := []float64{-0.2, 0.9, 0.4, -0.5, 0.1, 0.7}
	out := tensor.New(n, 6)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		for j := 0; j < 6; j++ {
			out.Set(a*basis1[j]+b*basis2[j]+rng.NormFloat64()*0.05, i, j)
		}
	}
	return out
}

func TestOODDetectorSeparates(t *testing.T) {
	rng := stats.NewRNG(3)
	train := inDist(rng, 64)
	ae := trainAE(t, train)
	det := Calibrate(ae, inDist(rng, 64), 0.95)

	// Fresh in-distribution data: few flags.
	flagsIn := det.Flag(inDist(rng, 40))
	inCount := 0
	for _, f := range flagsIn {
		if f {
			inCount++
		}
	}
	if inCount > 8 {
		t.Fatalf("flagged %d/40 in-distribution samples", inCount)
	}
	// Off-manifold data: mostly flagged.
	ood := tensor.Randn(stats.NewRNG(4), 2, 40, 6)
	flagsOut := det.Flag(ood)
	outCount := 0
	for _, f := range flagsOut {
		if f {
			outCount++
		}
	}
	if outCount < 30 {
		t.Fatalf("flagged only %d/40 out-of-distribution samples", outCount)
	}
}

func TestCalibrateQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Calibrate(nn.NewAutoencoder(stats.NewRNG(1), 4, []int{4}, 2), tensor.New(2, 4), 1.5)
}

// TestSaliencyFindsInformativeInput: a model that only uses feature 2 must
// produce saliency concentrated on feature 2.
func TestSaliencyFindsInformativeInput(t *testing.T) {
	x := tensor.FromSlice([]float64{0.5, -1, 2, 0.3}, 1, 4)
	sal := Saliency(x, func(leaf *autograd.Value) *autograd.Value {
		// loss = (3*x[2])^2
		w := autograd.Constant(tensor.FromSlice([]float64{0, 0, 3, 0}, 4, 1))
		return autograd.Sum(autograd.Square(autograd.MatMul(leaf, w)))
	})
	for j := 0; j < 4; j++ {
		if j == 2 {
			if sal.At(0, 2) == 0 {
				t.Fatal("informative feature has zero saliency")
			}
			continue
		}
		if sal.At(0, j) != 0 {
			t.Fatalf("uninformative feature %d has saliency %v", j, sal.At(0, j))
		}
	}
	if frac := TopSalientFraction(sal, 1); frac != 1 {
		t.Fatalf("top-1 saliency fraction = %v", frac)
	}
}

// TestSaliencyOnClimateClassifier: for a trained cyclone detector, the
// saliency of a storm image should concentrate around the vortex rather
// than spreading uniformly.
func TestSaliencyOnClimateClassifier(t *testing.T) {
	// Build a tiny classifier and train briefly on climate images.
	rngData := stats.NewRNG(5)
	_ = rngData
	srcSeed := uint64(6)
	src := newClimate(srcSeed)
	m := nn.NewSmallCNN(stats.NewRNG(7), nn.SmallCNNConfig{
		InChannels: 1, ImageSize: 8, Channels: []int{4}, Classes: 2,
	})
	for step := 0; step < 40; step++ {
		nn.ZeroGrads(m)
		x, labels := batchClimate(src, 16)
		loss := autograd.SoftmaxCrossEntropy(m.Forward(autograd.Constant(x)), labels)
		loss.Backward(nil)
		for _, p := range m.Params() {
			wd, gd := p.Value.Data.Data(), p.Value.Grad.Data()
			for i := range wd {
				wd[i] -= 0.05 * gd[i]
			}
		}
	}
	// Saliency of one storm image w.r.t. the storm logit.
	img, label := stormImage(src)
	if label != 1 {
		t.Fatal("expected a storm image")
	}
	sal := Saliency(img.Reshape(1, 1, 8, 8), func(leaf *autograd.Value) *autograd.Value {
		logits := m.Forward(leaf)
		return autograd.SoftmaxCrossEntropy(logits, []int{1})
	})
	// Concentration: top 10 of 64 pixels should carry well over 10/64 of
	// the saliency mass.
	frac := TopSalientFraction(sal, 10)
	if frac < 0.3 {
		t.Fatalf("saliency not concentrated: top-10 fraction %v", frac)
	}
}
