// Package trust implements the §VI-A "AI/ML method needs" the paper's
// scientists raise, as working mechanisms:
//
//   - Satisfaction of constraints (§VI-A-3): exact enforcement of linear
//     conservation laws on model outputs by final correction.
//   - Generalizability (§VI-A-2): out-of-distribution detection via
//     autoencoder reconstruction error, calibrated on in-distribution data.
//   - Explainability (§VI-A-4): input-gradient saliency maps that show
//     which inputs drove a prediction.
package trust

import (
	"fmt"
	"math"
	"sort"

	"summitscale/internal/autograd"
	"summitscale/internal/nn"
	"summitscale/internal/tensor"
)

// EnforceSumConstraint returns a copy of pred (N, C) whose rows sum
// exactly to the given totals, by distributing each row's defect equally —
// the "imposed by a final correction" option of §VI-A-3 for a linear
// conservation law (e.g. mass or energy totals).
func EnforceSumConstraint(pred *tensor.Tensor, totals []float64) *tensor.Tensor {
	if pred.Rank() != 2 || pred.Dim(0) != len(totals) {
		panic(fmt.Sprintf("trust: constraint shapes %v vs %d totals", pred.Shape(), len(totals)))
	}
	n, c := pred.Dim(0), pred.Dim(1)
	out := pred.Clone()
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < c; j++ {
			s += out.At(i, j)
		}
		defect := (totals[i] - s) / float64(c)
		for j := 0; j < c; j++ {
			out.Set(out.At(i, j)+defect, i, j)
		}
	}
	return out
}

// ConstraintViolation returns the largest absolute row-sum defect.
func ConstraintViolation(pred *tensor.Tensor, totals []float64) float64 {
	var worst float64
	n, c := pred.Dim(0), pred.Dim(1)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < c; j++ {
			s += pred.At(i, j)
		}
		if d := math.Abs(s - totals[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// OODDetector flags out-of-distribution inputs by autoencoder
// reconstruction error: inputs whose error exceeds the calibrated
// quantile of in-distribution errors are flagged (§VI-A-2's "techniques
// to ... detect out-of-distribution data").
type OODDetector struct {
	AE        *nn.Autoencoder
	Threshold float64
}

// reconstructionError returns per-row squared reconstruction errors.
func reconstructionError(ae *nn.Autoencoder, x *tensor.Tensor) []float64 {
	recon := ae.Forward(autograd.Constant(x)).Data
	n, c := x.Dim(0), x.Dim(1)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < c; j++ {
			d := recon.At(i, j) - x.At(i, j)
			s += d * d
		}
		out[i] = s / float64(c)
	}
	return out
}

// Calibrate sets the detector threshold to the q-quantile (0 < q < 1) of
// reconstruction errors over in-distribution calibration data.
func Calibrate(ae *nn.Autoencoder, calib *tensor.Tensor, q float64) *OODDetector {
	if q <= 0 || q >= 1 {
		panic("trust: quantile must be in (0, 1)")
	}
	errs := reconstructionError(ae, calib)
	sort.Float64s(errs)
	idx := int(q * float64(len(errs)))
	if idx >= len(errs) {
		idx = len(errs) - 1
	}
	return &OODDetector{AE: ae, Threshold: errs[idx]}
}

// Score returns each row's reconstruction error.
func (d *OODDetector) Score(x *tensor.Tensor) []float64 {
	return reconstructionError(d.AE, x)
}

// Flag returns, per row, whether the input looks out-of-distribution.
func (d *OODDetector) Flag(x *tensor.Tensor) []bool {
	errs := d.Score(x)
	out := make([]bool, len(errs))
	for i, e := range errs {
		out[i] = e > d.Threshold
	}
	return out
}

// Saliency computes |∂loss/∂x| for a scalar loss built from a leaf input:
// the input-gradient explanation of §VI-A-4 ("the ability of models to
// show their work"). lossOf must build the loss from the provided leaf.
func Saliency(x *tensor.Tensor, lossOf func(x *autograd.Value) *autograd.Value) *tensor.Tensor {
	leaf := autograd.NewLeaf(x.Clone(), true)
	loss := lossOf(leaf)
	if loss.Data.Size() != 1 {
		panic("trust: saliency needs a scalar loss")
	}
	loss.Backward(nil)
	if leaf.Grad == nil {
		return tensor.New(x.Shape()...)
	}
	return leaf.Grad.Apply(math.Abs)
}

// TopSalientFraction returns the fraction of total saliency mass carried
// by the top-k entries — a concentration measure for explanation quality.
func TopSalientFraction(sal *tensor.Tensor, k int) float64 {
	vals := append([]float64(nil), sal.Data()...)
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	var top, total float64
	for i, v := range vals {
		total += v
		if i < k {
			top += v
		}
	}
	if total == 0 {
		return 0
	}
	return top / total
}
