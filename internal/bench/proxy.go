package bench

import (
	"fmt"

	"summitscale/internal/autograd"
	"summitscale/internal/data"
	"summitscale/internal/ddl"
	"summitscale/internal/mp"
	"summitscale/internal/nn"
	"summitscale/internal/optim"
	"summitscale/internal/stats"
)

// ProxyResult is the outcome of one reduced-scale training run: the
// campaign's evidence that an instance's training loop actually
// converges, not just that the analytic model priced it.
type ProxyResult struct {
	Workload    string
	Ranks       int
	Steps       int
	InitialLoss float64
	FinalLoss   float64
	// Converged is the proxy's quality bar: the loss fell by at least
	// 20% over the run.
	Converged bool
}

// String renders the result.
func (r ProxyResult) String() string {
	state := "converged"
	if !r.Converged {
		state = "diverged"
	}
	return fmt.Sprintf("%s proxy: %d ranks x %d steps, loss %.4f -> %.4f (%s)",
		r.Workload, r.Ranks, r.Steps, r.InitialLoss, r.FinalLoss, state)
}

// proxy training geometry: a small classifier over synthetic textured
// images, sized so a campaign instance costs milliseconds, not minutes.
const (
	proxyClasses  = 4
	proxyImgSize  = 4 // 1x4x4 images -> 16 features
	proxyPerRank  = 4 // per-rank micro-batch
	proxyHidden   = 16
	proxyPrefetch = 2
	proxyLR       = 0.1
)

// ProxyTrain runs a real reduced-scale data-parallel training job for
// the workload: `ranks` goroutine ranks train the identical small MLP
// with synchronous gradient averaging over mp, each fed through a
// data.Prefetcher (whose shutdown path — Close with batches still in
// flight — this deliberately exercises). The result is a pure function
// of (workload, seed, ranks, steps): ddl's bit-identical collectives
// make it byte-stable at any host parallelism, so campaign reports can
// embed proxy losses and stay golden-safe.
func ProxyTrain(w Workload, seed uint64, ranks, steps int) ProxyResult {
	if ranks < 1 || steps < 1 {
		panic(fmt.Sprintf("bench: proxy needs ranks and steps >= 1, got %d/%d", ranks, steps))
	}
	// Each rank owns a disjoint shard; generate enough samples that the
	// prefetcher still holds undrained batches when training stops.
	extra := 2
	perRankSamples := (steps + extra) * proxyPerRank
	src := data.NewSyntheticImages(seed, ranks*perRankSamples, proxyClasses, 1, proxyImgSize)
	features := proxyImgSize * proxyImgSize

	losses := make([][2]float64, ranks)
	mp.NewWorld(ranks).Run(func(c *mp.Comm) {
		rank := c.Rank()
		model := nn.NewMLP(stats.NewRNG(seed^0xb5ad4ece), []int{features, proxyHidden, proxyClasses}, autograd.Tanh)
		r := ddl.NewRank(c, model, optim.NewSGD(proxyLR), ddl.Config{})

		lo := rank * perRankSamples
		idx := make([]int, perRankSamples)
		for i := range idx {
			idx[i] = lo + i
		}
		batches := data.Batches(idx, proxyPerRank)
		pf := data.NewPrefetcher(src, batches, proxyPrefetch)
		defer pf.Close() // leaves the extra batches in flight

		for s := 0; s < steps; s++ {
			b, ok := pf.Next()
			if !ok {
				panic("bench: proxy prefetcher ran dry")
			}
			x := b.X.Reshape(b.X.Dim(0), features)
			loss := r.Step(func(int) *autograd.Value {
				return autograd.SoftmaxCrossEntropy(model.Forward(autograd.Constant(x)), b.Labels)
			})
			if s == 0 {
				losses[rank][0] = loss
			}
			losses[rank][1] = loss
		}
	})

	// Ranks train in lockstep on averaged gradients, so every rank saw
	// its own shard's loss; report the rank-mean for a shard-independent
	// figure.
	var init, final float64
	for _, l := range losses {
		init += l[0]
		final += l[1]
	}
	init /= float64(ranks)
	final /= float64(ranks)
	return ProxyResult{
		Workload:    w.Name,
		Ranks:       ranks,
		Steps:       steps,
		InitialLoss: init,
		FinalLoss:   final,
		Converged:   final < 0.8*init,
	}
}
