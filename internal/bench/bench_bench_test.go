package bench

import (
	"runtime"
	"testing"

	"summitscale/internal/platform"
)

// BenchmarkCampaignHotPath times the campaign evaluation hot path — the
// analytic TTT pricing plus the real reduced-scale proxy training run
// for every instance of the mixed suite — serially and fanned over the
// evaluator pool. The parallel/serial ratio is a kernel-floor rule in
// cmd/summit-bench: instance evaluation must actually scale, or the
// multi-instance campaign harness has regressed to a serial loop.
func BenchmarkCampaignHotPath(b *testing.B) {
	p := platform.Summit()
	c := DefaultCampaign(p)
	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunCampaign(p, c, workers, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, runtime.NumCPU()) })
}
