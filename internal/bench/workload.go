// Package bench is the MLPerf-HPC-style benchmark suite (Farrell et al.,
// arXiv:2110.11466) grown from internal/models: a pluggable registry of
// scientific training workloads with the data-shape and convergence
// accounting the closed division needs, a time-to-train metric with
// strong/weak-scaling sweeps driven through the perf/storage models, and
// a campaign harness (campaign.go) that schedules many concurrent
// training instances onto one machine through internal/sched — the
// suite's "all of the machine" throughput mode.
//
// Everything here is a pure function of (platform, workload, seed):
// reports render byte-identically at any worker count, which is what
// lets core pin an S7 golden and CI diff -j 4 against -j 1.
package bench

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"summitscale/internal/models"
	"summitscale/internal/units"
)

// Workload is one benchmark entry: a model architecture plus the
// dataset/convergence contract that turns throughput into time-to-train.
type Workload struct {
	// Name is the registry key ("cosmoflow", "deepcam", "opencatalyst").
	Name string
	// Title is the display name used in reports.
	Title string
	// Science is the one-line scientific task description.
	Science string
	// Model supplies parameter counts, record sizes, per-GPU throughput.
	Model models.ModelSpec
	// DatasetBytes is the full training-set size as staged/streamed.
	DatasetBytes units.Bytes

	// QualityMetric and TargetQuality state the closed-division
	// convergence bar ("MAE" <= 0.124, "IoU" >= 0.82, ...). They are
	// reporting metadata: the epoch model below decides convergence.
	QualityMetric string
	TargetQuality float64

	// ReferenceEpochs is the epoch count that reaches the target at
	// ReferenceBatch. Above the reference batch, required epochs grow as
	// (batch/ReferenceBatch)^BatchEpochExp — the large-batch convergence
	// penalty every MLPerf HPC submission fights.
	ReferenceEpochs float64
	ReferenceBatch  int
	BatchEpochExp   float64
	// MaxGlobalBatch is the largest global batch known to converge at
	// all; beyond it the run is open-division-only (Converged=false).
	MaxGlobalBatch int

	// Perf-model calibration knobs (see perf.Job).
	OverlapComm       float64
	GradLag           bool
	JitterPerDoubling float64
	FixedOverhead     units.Seconds
	// SharedFS forces streaming from the shared file system even on
	// machines with node-local storage (random-access patterns that
	// defeat staging).
	SharedFS bool
}

// Samples is the number of training records in the dataset.
func (w Workload) Samples() int {
	return int(float64(w.DatasetBytes) / float64(w.Model.RecordBytes))
}

// EpochsAt returns the epochs needed to reach the quality target at the
// given global batch: flat up to the reference batch, then the
// power-law penalty.
func (w Workload) EpochsAt(globalBatch int) float64 {
	if globalBatch <= w.ReferenceBatch || w.ReferenceBatch <= 0 {
		return w.ReferenceEpochs
	}
	return w.ReferenceEpochs * math.Pow(float64(globalBatch)/float64(w.ReferenceBatch), w.BatchEpochExp)
}

// ConvergesAt reports whether a global batch is inside the closed
// division's convergence envelope.
func (w Workload) ConvergesAt(globalBatch int) bool {
	return w.MaxGlobalBatch <= 0 || globalBatch <= w.MaxGlobalBatch
}

// Validate rejects workloads the TTT model cannot price.
func (w Workload) Validate() error {
	switch {
	case w.Name == "":
		return fmt.Errorf("bench: workload needs a name")
	case w.Model.RecordBytes <= 0 || w.Model.SingleGPUThroughput <= 0 || w.Model.PerGPUBatch <= 0:
		return fmt.Errorf("bench: workload %q has an unpriceable model spec", w.Name)
	case w.DatasetBytes <= 0:
		return fmt.Errorf("bench: workload %q needs a positive dataset size", w.Name)
	case w.ReferenceEpochs <= 0 || w.ReferenceBatch <= 0:
		return fmt.Errorf("bench: workload %q needs reference epochs and batch", w.Name)
	case w.BatchEpochExp < 0:
		return fmt.Errorf("bench: workload %q has a negative batch-epoch exponent", w.Name)
	}
	return nil
}

// registry is the process-wide workload table. Builtins are registered
// at init; experiments may Register more (the "pluggable" contract).
var (
	regMu    sync.RWMutex
	registry = map[string]Workload{}
)

// Register adds a workload to the registry. Duplicate names and invalid
// specs are errors: the registry backs goldens, so silent replacement
// would be a determinism hazard.
func Register(w Workload) error {
	if err := w.Validate(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[w.Name]; dup {
		return fmt.Errorf("bench: workload %q already registered", w.Name)
	}
	registry[w.Name] = w
	return nil
}

// Lookup finds a registered workload by name.
func Lookup(name string) (Workload, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	w, ok := registry[name]
	return w, ok
}

// Names returns the registered workload names, sorted — the canonical
// iteration order every report uses.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Suite returns all registered workloads in Names order.
func Suite() []Workload {
	names := Names()
	ws := make([]Workload, len(names))
	for i, n := range names {
		ws[i], _ = Lookup(n)
	}
	return ws
}

// CosmoFlowWorkload is the suite's storage stressor: a 3D CNN over a
// ~5 TB volume set whose 16.8 MB records make the input pipeline, not
// the math, the scaling wall.
func CosmoFlowWorkload() Workload {
	return Workload{
		Name:            "cosmoflow",
		Title:           "CosmoFlow",
		Science:         "cosmological parameter regression from N-body volumes",
		Model:           models.CosmoFlow(),
		DatasetBytes:    5.1 * units.TB,
		QualityMetric:   "MAE",
		TargetQuality:   0.124,
		ReferenceEpochs: 35,
		ReferenceBatch:  512,
		BatchEpochExp:   0.5,
		MaxGlobalBatch:  16384,
		OverlapComm:     0.8, JitterPerDoubling: 0.007,
		FixedOverhead: 0.02,
	}
}

// DeepCAMWorkload is the climate-segmentation workload: large dense
// prediction with fp16 gradient exchange over an 8.8 TB CAM5 archive.
func DeepCAMWorkload() Workload {
	return Workload{
		Name:            "deepcam",
		Title:           "DeepCAM",
		Science:         "extreme-weather segmentation on CAM5 fields",
		Model:           models.DeepLabV3Plus(),
		DatasetBytes:    8.8 * units.TB,
		QualityMetric:   "IoU",
		TargetQuality:   0.82,
		ReferenceEpochs: 12,
		ReferenceBatch:  2048,
		BatchEpochExp:   0.4,
		MaxGlobalBatch:  8192,
		GradLag:         true, JitterPerDoubling: 0.008,
		FixedOverhead: 0.05,
	}
}

// OpenCatalystWorkload is the compute/communication stressor: a GNN
// over millions of tiny molecular graphs, so storage idles while the
// gather/scatter math and fp32 gradient exchange dominate.
func OpenCatalystWorkload() Workload {
	return Workload{
		Name:            "opencatalyst",
		Title:           "OpenCatalyst",
		Science:         "per-atom force prediction for catalyst relaxation",
		Model:           models.DimeNetPP(),
		DatasetBytes:    53 * units.GB,
		QualityMetric:   "forces MAE",
		TargetQuality:   0.036,
		ReferenceEpochs: 12,
		ReferenceBatch:  256,
		BatchEpochExp:   0.6,
		MaxGlobalBatch:  4096,
		OverlapComm:     0.5, JitterPerDoubling: 0.01,
		FixedOverhead: 0.01,
		SharedFS:      true, // random graph access defeats staging
	}
}

func init() {
	for _, w := range []Workload{CosmoFlowWorkload(), DeepCAMWorkload(), OpenCatalystWorkload()} {
		if err := Register(w); err != nil {
			panic(err)
		}
	}
}
