package bench

import (
	"sort"
	"strings"
	"testing"

	"summitscale/internal/models"
	"summitscale/internal/platform"
	"summitscale/internal/units"
)

func TestRegistryBuiltins(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names not sorted: %v", names)
	}
	for _, want := range []string{"cosmoflow", "deepcam", "opencatalyst"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("builtin %q not registered", want)
		}
	}
	if len(Suite()) != len(names) {
		t.Fatalf("Suite returned %d of %d workloads", len(Suite()), len(names))
	}
}

func TestRegisterRejectsDuplicatesAndInvalid(t *testing.T) {
	if err := Register(CosmoFlowWorkload()); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	bad := CosmoFlowWorkload()
	bad.Name = ""
	if err := Register(bad); err == nil {
		t.Fatal("unnamed workload accepted")
	}
	bad = CosmoFlowWorkload()
	bad.Name = "bad-dataset"
	bad.DatasetBytes = 0
	if err := Register(bad); err == nil {
		t.Fatal("zero-dataset workload accepted")
	}
	// A valid plug-in registers and becomes visible everywhere.
	ext := CosmoFlowWorkload()
	ext.Name = "cosmoflow-ext-test"
	if err := Register(ext); err != nil {
		t.Fatal(err)
	}
	if _, ok := Lookup("cosmoflow-ext-test"); !ok {
		t.Fatal("registered workload not found")
	}
}

func TestEpochModel(t *testing.T) {
	w := CosmoFlowWorkload()
	if got := w.EpochsAt(w.ReferenceBatch); got != w.ReferenceEpochs {
		t.Errorf("epochs at reference batch = %v, want %v", got, w.ReferenceEpochs)
	}
	if got := w.EpochsAt(w.ReferenceBatch / 4); got != w.ReferenceEpochs {
		t.Errorf("epochs below reference = %v, want flat %v", got, w.ReferenceEpochs)
	}
	if got := w.EpochsAt(4 * w.ReferenceBatch); got <= w.ReferenceEpochs {
		t.Errorf("epochs at 4x reference = %v, want > %v", got, w.ReferenceEpochs)
	}
	if !w.ConvergesAt(w.MaxGlobalBatch) || w.ConvergesAt(w.MaxGlobalBatch+1) {
		t.Error("convergence envelope boundary wrong")
	}
}

func TestTimeToTrainShape(t *testing.T) {
	p := platform.Summit()
	cf := TimeToTrain(p, CosmoFlowWorkload(), 128)
	if cf.Total <= 0 || cf.Train <= 0 || cf.Throughput <= 0 {
		t.Fatalf("degenerate TTT: %+v", cf)
	}
	if cf.StageIn <= 0 || cf.Plan == "stream" {
		t.Errorf("cosmoflow on summit should stage to node-local, got plan %q stage-in %v", cf.Plan, cf.StageIn)
	}
	if cf.Total != cf.StageIn+cf.Train {
		t.Error("Total != StageIn + Train")
	}
	oc := TimeToTrain(p, OpenCatalystWorkload(), 64)
	if oc.Plan != "stream" || oc.StageIn != 0 {
		t.Errorf("SharedFS workload must stream: plan %q stage-in %v", oc.Plan, oc.StageIn)
	}
	// Diskless machines always stream.
	jb, err := platform.Lookup("juwels-booster")
	if err != nil {
		t.Fatal(err)
	}
	if got := TimeToTrain(jb, CosmoFlowWorkload(), 64); got.Plan != "stream" {
		t.Errorf("diskless machine staged: plan %q", got.Plan)
	}
}

func TestSweepEfficiencies(t *testing.T) {
	p := platform.Summit()
	for _, mode := range []SweepMode{WeakScaling, StrongScaling} {
		pts := Sweep(p, CosmoFlowWorkload(), mode, []int{8, 16, 32, 64})
		if pts[0].Efficiency != 1 {
			t.Errorf("%v: base efficiency = %v, want 1", mode, pts[0].Efficiency)
		}
		for i, pt := range pts {
			if !(pt.Efficiency > 0 && pt.Efficiency <= 1.0001) {
				t.Errorf("%v point %d: efficiency %v out of (0,1]", mode, i, pt.Efficiency)
			}
		}
		// Efficiency must fall (or hold) as scale grows: comm and jitter
		// only get worse.
		if pts[len(pts)-1].Efficiency > pts[0].Efficiency {
			t.Errorf("%v: efficiency rose with scale", mode)
		}
	}
	// Weak scaling grows the global batch; strong holds it near reference.
	weak := Sweep(p, CosmoFlowWorkload(), WeakScaling, []int{8, 64})
	if weak[1].TTT.GlobalBatch <= weak[0].TTT.GlobalBatch {
		t.Error("weak scaling did not grow the global batch")
	}
	// Strong scaling holds the global batch at the reference (up to the
	// integer floor of the per-GPU batch) instead of growing with devices.
	ref := CosmoFlowWorkload().ReferenceBatch
	strong := Sweep(p, CosmoFlowWorkload(), StrongScaling, []int{4, 8})
	for i, pt := range strong {
		if pt.TTT.GlobalBatch > ref || pt.TTT.GlobalBatch < ref/2 {
			t.Errorf("strong point %d: global batch %d drifted from reference %d",
				i, pt.TTT.GlobalBatch, ref)
		}
	}
}

func TestProxyTrainDeterministicAndConverging(t *testing.T) {
	w := CosmoFlowWorkload()
	a := ProxyTrain(w, 7, 2, 8)
	b := ProxyTrain(w, 7, 2, 8)
	if a != b {
		t.Fatalf("proxy not deterministic: %+v vs %+v", a, b)
	}
	if !a.Converged || a.FinalLoss >= a.InitialLoss {
		t.Fatalf("proxy did not converge: %+v", a)
	}
	if c := ProxyTrain(w, 8, 2, 8); c.FinalLoss == a.FinalLoss {
		t.Error("seed does not reach the proxy")
	}
}

func TestCampaignByteIdenticalAcrossWorkers(t *testing.T) {
	p := platform.Summit()
	c := DefaultCampaign(p)
	base, err := RunCampaign(p, c, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		rep, err := RunCampaign(p, c, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Render() != base.Render() {
			t.Fatalf("workers=%d: campaign render differs from serial", workers)
		}
	}
}

func TestThroughputCampaignConcurrency(t *testing.T) {
	p := platform.Summit()
	rep, err := RunCampaign(p, ThroughputCampaign(p, "cosmoflow", 4), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxConcurrent < 3 {
		t.Fatalf("throughput mode ran %d concurrent instances, want >= 3", rep.MaxConcurrent)
	}
	if !(rep.Sched.Utilization > 0 && rep.Sched.Utilization <= 1) {
		t.Fatalf("utilization %v out of (0,1]", rep.Sched.Utilization)
	}
	if rep.AggThroughput <= 0 {
		t.Fatal("no aggregate throughput")
	}
	for _, ir := range rep.Instances {
		if ir.TTT.Total <= 0 || ir.Completion <= 0 {
			t.Fatalf("instance %d has degenerate TTT/completion: %+v", ir.ID, ir)
		}
	}
	if !rep.AllConverged {
		t.Fatal("closed-scale throughput campaign should converge")
	}
}

func TestCampaignLateSubmitUsesBusySpanUtilization(t *testing.T) {
	p := platform.Summit()
	c := ThroughputCampaign(p, "deepcam", 3)
	for i := range c.Instances {
		c.Instances[i].Submit = 50_000 // campaign starts late in the day
	}
	rep, err := RunCampaign(p, c, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sched.FirstStart != 50_000 {
		t.Fatalf("first start %v, want 50000", rep.Sched.FirstStart)
	}
	// The pre-fix metric divided by the makespan measured from t=0; with a
	// ~2-minute campaign starting at t=50000 that dilutes utilization by
	// two orders of magnitude. The fixed metric measures the busy window.
	preFix := rep.Sched.Utilization * rep.Sched.Span() / rep.Sched.Makespan
	if rep.Sched.Utilization < 100*preFix {
		t.Fatalf("utilization %v vs from-zero %v: busy-span fix not in effect",
			rep.Sched.Utilization, preFix)
	}
}

func TestCampaignErrors(t *testing.T) {
	p := platform.Summit()
	if _, err := RunCampaign(p, Campaign{Name: "empty"}, 1, nil); err == nil {
		t.Error("empty campaign accepted")
	}
	if _, err := RunCampaign(p, Campaign{Name: "x", Instances: []Instance{{Workload: "nope", Nodes: 1}}}, 1, nil); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := RunCampaign(p, Campaign{Name: "x", Instances: []Instance{{Workload: "cosmoflow", Nodes: p.Nodes + 1}}}, 1, nil); err == nil {
		t.Error("oversized instance accepted")
	}
}

func TestCampaignFiniteOnAllPlatforms(t *testing.T) {
	for _, name := range platform.Names() {
		p, err := platform.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunCampaign(p, DefaultCampaign(p), 4, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Sched.Makespan <= 0 || rep.AggThroughput <= 0 {
			t.Fatalf("%s: degenerate campaign %+v", name, rep)
		}
		if strings.Contains(rep.Render(), "NaN") || strings.Contains(rep.Render(), "Inf") {
			t.Fatalf("%s: non-finite campaign output", name)
		}
	}
}

func TestClosedNodes(t *testing.T) {
	p := platform.Summit()
	for _, w := range Suite() {
		n := ClosedNodes(p, w)
		if n < 1 || n > p.Nodes {
			t.Fatalf("%s: closed nodes %d out of range", w.Name, n)
		}
		if !w.ConvergesAt(n * p.Node.GPUs * w.Model.PerGPUBatch) {
			t.Errorf("%s: %d nodes exceeds the convergence envelope", w.Name, n)
		}
	}
	// Unbounded envelope means the whole machine.
	u := CosmoFlowWorkload()
	u.MaxGlobalBatch = 0
	if got := ClosedNodes(p, u); got != p.Nodes {
		t.Errorf("unbounded workload closed nodes = %d, want %d", got, p.Nodes)
	}
}

func TestWorkloadSamples(t *testing.T) {
	w := Workload{Model: models.CosmoFlow(), DatasetBytes: 100 * units.MB}
	if got := w.Samples(); got != int(float64(100*units.MB)/float64(models.CosmoFlow().RecordBytes)) {
		t.Errorf("Samples = %d", got)
	}
}
