package bench

import (
	"fmt"
	"strings"

	"summitscale/internal/perf"
	"summitscale/internal/platform"
	"summitscale/internal/storage"
	"summitscale/internal/units"
)

// TTT is one closed-division time-to-train measurement: the wall time
// from job start (stage-in included — MLPerf HPC counts it) to the
// epoch at which the quality target is reached.
type TTT struct {
	Workload    string
	Nodes       int
	Devices     int
	GlobalBatch int
	// Plan is the input-pipeline choice: "replicate", "partition"
	// (node-local staging), or "stream" (shared FS).
	Plan string
	// Epochs is the convergence model's epoch count at this batch.
	Epochs float64
	// Converged is false when the global batch exceeds the workload's
	// closed-division envelope; the time is then open-division-only.
	Converged bool

	StageIn   units.Seconds
	EpochTime units.Seconds
	Train     units.Seconds // Epochs * EpochTime
	Total     units.Seconds // StageIn + Train
	// Throughput is the steady-state global samples/s.
	Throughput float64
}

// String renders one measurement.
func (t TTT) String() string {
	conv := "closed"
	if !t.Converged {
		conv = "open"
	}
	return fmt.Sprintf("%s @ %d nodes (%d devices, batch %d, %s, %s): %.1f epochs, stage-in %v, train %v, TTT %v (%.0f samples/s)",
		t.Workload, t.Nodes, t.Devices, t.GlobalBatch, t.Plan, conv,
		t.Epochs, t.StageIn, t.Train, t.Total, t.Throughput)
}

// TimeToTrain prices the workload at the given node count with its
// customary per-GPU batch.
func TimeToTrain(p platform.Platform, w Workload, nodes int) TTT {
	return timeToTrain(p, w, nodes, 0)
}

// timeToTrain is TimeToTrain with an optional per-GPU batch override
// (perGPU > 0), the hook the strong-scaling sweep uses to hold the
// global batch fixed while devices multiply.
func timeToTrain(p platform.Platform, w Workload, nodes, perGPU int) TTT {
	if nodes < 1 {
		panic(fmt.Sprintf("bench: %s needs at least one node", w.Name))
	}
	job := p.Job(w.Model, nodes)
	if perGPU > 0 {
		job.Model.PerGPUBatch = perGPU
	}
	job.OverlapComm = w.OverlapComm
	job.GradLag = w.GradLag
	job.JitterPerDoubling = w.JitterPerDoubling
	job.FixedOverhead = w.FixedOverhead

	// Input pipeline: stage to node-local drives when the machine has
	// them, the workload tolerates staging, and the dataset fits; else
	// stream from the shared file system (and pay no stage-in).
	plan := "stream"
	store := storage.Store(p.GPFS())
	var stageIn, shuffle units.Seconds
	if !w.SharedFS && p.HasNodeLocal() {
		st := p.Stager()
		if pl, err := st.PlanFor(w.DatasetBytes, nodes); err == nil {
			store = p.NVMe()
			stageIn = st.StagingTime(w.DatasetBytes, nodes, pl)
			shuffle = st.EpochShuffleTime(w.DatasetBytes, nodes, pl)
			if pl == storage.PartitionDataset {
				plan = "partition"
			} else {
				plan = "replicate"
			}
		}
	}
	job.Store = store

	devices := nodes * job.GPUsPerNode
	globalBatch := devices * job.Model.PerGPUBatch
	epochs := w.EpochsAt(globalBatch)
	throughput := perf.Throughput(job)
	epochTime := units.Seconds(float64(w.Samples())/throughput) + shuffle
	train := units.Seconds(epochs * float64(epochTime))
	return TTT{
		Workload:    w.Name,
		Nodes:       nodes,
		Devices:     devices,
		GlobalBatch: globalBatch,
		Plan:        plan,
		Epochs:      epochs,
		Converged:   w.ConvergesAt(globalBatch),
		StageIn:     stageIn,
		EpochTime:   epochTime,
		Train:       train,
		Total:       stageIn + train,
		Throughput:  throughput,
	}
}

// SweepMode selects the scaling discipline.
type SweepMode int

const (
	// WeakScaling holds the per-GPU batch fixed: the global batch (and
	// the convergence penalty) grows with devices.
	WeakScaling SweepMode = iota
	// StrongScaling holds the global batch fixed at the workload's
	// reference: the per-GPU batch shrinks with devices until it floors
	// at 1, so communication is progressively exposed.
	StrongScaling
)

func (m SweepMode) String() string {
	if m == StrongScaling {
		return "strong"
	}
	return "weak"
}

// SweepPoint is one node count of a scaling sweep.
type SweepPoint struct {
	TTT TTT
	// Efficiency is per-device throughput relative to the sweep's first
	// point (weak), or achieved/ideal speedup of the train time (strong).
	Efficiency float64
}

// Sweep evaluates the workload's TTT across node counts under the given
// discipline. Node counts must be positive and ascending.
func Sweep(p platform.Platform, w Workload, mode SweepMode, nodes []int) []SweepPoint {
	if len(nodes) == 0 {
		panic("bench: empty sweep")
	}
	pts := make([]SweepPoint, len(nodes))
	for i, n := range nodes {
		if i > 0 && n <= nodes[i-1] {
			panic("bench: sweep node counts must ascend")
		}
		perGPU := 0
		if mode == StrongScaling {
			gpus := p.Node.GPUs
			if gpus < 1 {
				gpus = 1
			}
			perGPU = w.ReferenceBatch / (n * gpus)
			if perGPU < 1 {
				perGPU = 1
			}
		}
		pts[i].TTT = timeToTrain(p, w, n, perGPU)
	}
	base := pts[0].TTT
	for i := range pts {
		t := pts[i].TTT
		switch mode {
		case StrongScaling:
			ideal := float64(t.Nodes) / float64(base.Nodes)
			pts[i].Efficiency = float64(base.Train) / float64(t.Train) / ideal
		default:
			perDev := t.Throughput / float64(t.Devices)
			pts[i].Efficiency = perDev / (base.Throughput / float64(base.Devices))
		}
	}
	return pts
}

// SweepNodes returns the default sweep ladder for a machine: powers of
// two from base up to the machine size (capped at six points).
func SweepNodes(p platform.Platform, base int) []int {
	if base < 1 {
		base = 1
	}
	var nodes []int
	for n := base; n <= p.Nodes && len(nodes) < 6; n *= 2 {
		nodes = append(nodes, n)
	}
	if len(nodes) == 0 {
		nodes = []int{p.Nodes}
	}
	return nodes
}

// RenderSweep formats a sweep as an aligned table.
func RenderSweep(w Workload, mode SweepMode, pts []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s scaling (%s <= %.3f):\n", w.Title, mode, w.QualityMetric, w.TargetQuality)
	fmt.Fprintf(&b, "  %6s %8s %7s %10s %12s %12s %5s\n",
		"nodes", "batch", "epochs", "samples/s", "train", "TTT", "eff")
	for _, pt := range pts {
		t := pt.TTT
		mark := ""
		if !t.Converged {
			mark = " (open)"
		}
		fmt.Fprintf(&b, "  %6d %8d %7.1f %10.0f %12v %12v %4.0f%%%s\n",
			t.Nodes, t.GlobalBatch, t.Epochs, t.Throughput, t.Train, t.Total,
			100*pt.Efficiency, mark)
	}
	return b.String()
}
