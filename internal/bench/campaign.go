package bench

import (
	"fmt"
	"sort"
	"strings"

	"summitscale/internal/obs"
	"summitscale/internal/parallel"
	"summitscale/internal/platform"
	"summitscale/internal/sched"
	"summitscale/internal/units"
)

// Instance is one training job of a campaign: a registered workload at
// a node count, submitted at a campaign-relative time.
type Instance struct {
	Workload string
	Nodes    int
	Submit   float64 // seconds
}

// Campaign is a set of concurrent training instances contending for one
// machine — MLPerf HPC's "all of the machine" throughput mode.
type Campaign struct {
	Name      string
	Seed      uint64
	Instances []Instance
	// ProxyRanks/ProxySteps size the reduced-scale real-training run
	// each instance executes (0 means the defaults: 2 ranks, 8 steps).
	ProxyRanks int
	ProxySteps int
}

// InstanceResult is one instance's closed-division measurement plus its
// placement on the machine.
type InstanceResult struct {
	ID       int
	Workload string
	TTT      TTT
	Proxy    ProxyResult
	// Placement from the scheduler.
	Start, End float64
	Wait       float64
	// Completion is the per-instance campaign latency: End - Submit,
	// queue wait included — what a submitter experiences.
	Completion float64
}

// Report is a campaign's outcome. Its Render is byte-identical at any
// worker count: instance evaluation writes into fixed slots and every
// aggregate is computed from them in ID order.
type Report struct {
	Name      string
	Platform  string
	Seed      uint64
	Instances []InstanceResult
	Sched     sched.Stats
	// MaxConcurrent is the peak number of simultaneously running
	// instances — the "multi-instance" in multi-instance throughput.
	MaxConcurrent int
	// AggThroughput is total samples trained across all instances per
	// second of busy machine span.
	AggThroughput float64
	// AllConverged reports the closed division held: every instance's
	// batch stayed inside the convergence envelope and every proxy run
	// actually reduced its loss.
	AllConverged bool
}

// RunCampaign evaluates every instance (analytic TTT plus the real
// reduced-scale proxy training run) with up to `workers` concurrent
// evaluators, schedules the resulting jobs onto the machine's node pool
// through internal/sched, and aggregates machine-level metrics. The
// report is a pure function of (platform, campaign); workers only
// changes wall time.
func RunCampaign(p platform.Platform, c Campaign, workers int, ob *obs.Observer) (*Report, error) {
	if len(c.Instances) == 0 {
		return nil, fmt.Errorf("bench: campaign %q has no instances", c.Name)
	}
	ranks, steps := c.ProxyRanks, c.ProxySteps
	if ranks < 1 {
		ranks = 2
	}
	if steps < 1 {
		steps = 8
	}
	type eval struct {
		ttt   TTT
		proxy ProxyResult
	}
	workloads := make([]Workload, len(c.Instances))
	for i, inst := range c.Instances {
		w, ok := Lookup(inst.Workload)
		if !ok {
			return nil, fmt.Errorf("bench: campaign %q: unknown workload %q", c.Name, inst.Workload)
		}
		if inst.Nodes < 1 || inst.Nodes > p.Nodes {
			return nil, fmt.Errorf("bench: campaign %q: instance %d wants %d of %d nodes",
				c.Name, i, inst.Nodes, p.Nodes)
		}
		workloads[i] = w
	}

	// Fan the per-instance evaluation out; results land in fixed slots
	// so the fan-out width never reaches the report.
	evals := parallel.MapOrdered(parallel.NewPool(workers), len(c.Instances), func(i int) eval {
		inst := c.Instances[i]
		return eval{
			ttt:   TimeToTrain(p, workloads[i], inst.Nodes),
			proxy: ProxyTrain(workloads[i], c.Seed+uint64(i)*0x9e3779b9, ranks, steps),
		}
	})

	jobs := make([]sched.Job, len(c.Instances))
	for i, inst := range c.Instances {
		jobs[i] = sched.Job{
			ID:       i,
			Program:  inst.Workload,
			Nodes:    inst.Nodes,
			Walltime: float64(evals[i].ttt.Total),
			Submit:   inst.Submit,
		}
	}
	s := sched.NewScheduler(p.Nodes)
	placed := s.Schedule(jobs)
	st := s.Summarize(placed)

	byID := make(map[int]sched.Job, len(placed))
	for _, j := range placed {
		byID[j.ID] = j
	}

	rep := &Report{
		Name:          c.Name,
		Platform:      p.Name,
		Seed:          c.Seed,
		Instances:     make([]InstanceResult, len(c.Instances)),
		Sched:         st,
		MaxConcurrent: maxConcurrent(placed),
		AllConverged:  true,
	}
	var samples float64
	for i := range c.Instances {
		j := byID[i]
		e := evals[i]
		rep.Instances[i] = InstanceResult{
			ID:       i,
			Workload: c.Instances[i].Workload,
			TTT:      e.ttt,
			Proxy:    e.proxy,
			Start:    j.Start, End: j.End,
			Wait:       j.Wait(),
			Completion: j.End - j.Submit,
		}
		samples += e.ttt.Epochs * float64(workloads[i].Samples())
		if !e.ttt.Converged || !e.proxy.Converged {
			rep.AllConverged = false
		}
		ob.Span("campaign", "train", c.Instances[i].Workload,
			units.Seconds(j.Start), units.Seconds(j.End-j.Start),
			obs.Num("instance", float64(i)), obs.Num("nodes", float64(j.Nodes)),
			obs.Num("ttt", float64(e.ttt.Total)))
		ob.Inc("bench.instances")
		if e.ttt.Converged && e.proxy.Converged {
			ob.Inc("bench.converged")
		}
		ob.Observe("bench.instance.completion", j.End-j.Submit)
	}
	if span := st.Span(); span > 0 {
		rep.AggThroughput = samples / span
	}
	ob.Set("bench.campaign.utilization", st.Utilization)
	ob.Set("bench.campaign.max_concurrent", float64(rep.MaxConcurrent))
	ob.Set("bench.campaign.agg_throughput", rep.AggThroughput)
	return rep, nil
}

// maxConcurrent sweeps the placed jobs' start/end events and returns the
// peak overlap; at equal times ends are processed before starts.
func maxConcurrent(placed []sched.Job) int {
	type ev struct {
		t     float64
		delta int
	}
	evs := make([]ev, 0, 2*len(placed))
	for _, j := range placed {
		evs = append(evs, ev{j.Start, +1}, ev{j.End, -1})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		return evs[a].delta < evs[b].delta
	})
	cur, peak := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// Render formats the campaign deterministically: per-instance rows in
// ID order, then the machine-level summary.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %q on %s (seed %d): %d instances\n",
		r.Name, r.Platform, r.Seed, len(r.Instances))
	fmt.Fprintf(&b, "  %2s %-12s %6s %9s %9s %11s %11s %7s %-9s\n",
		"id", "workload", "nodes", "submit", "wait", "TTT", "complete", "div", "proxyloss")
	for _, ir := range r.Instances {
		div := "closed"
		if !ir.TTT.Converged || !ir.Proxy.Converged {
			div = "open"
		}
		fmt.Fprintf(&b, "  %2d %-12s %6d %9.0fs %9.0fs %11v %11v %7s %.4f\n",
			ir.ID, ir.Workload, ir.TTT.Nodes, ir.Start-ir.Wait, ir.Wait,
			ir.TTT.Total, units.Seconds(ir.Completion), div, ir.Proxy.FinalLoss)
	}
	fmt.Fprintf(&b, "  schedule: makespan %v, busy span %v, utilization %.1f%%, max concurrent %d\n",
		units.Seconds(r.Sched.Makespan), units.Seconds(r.Sched.Span()),
		100*r.Sched.Utilization, r.MaxConcurrent)
	fmt.Fprintf(&b, "  aggregate: %.0f samples/s machine throughput, all converged %v\n",
		r.AggThroughput, r.AllConverged)
	return b.String()
}

// ClosedNodes is the largest node count at which the workload's global
// batch (customary per-GPU batch, no accumulation) stays inside the
// closed-division convergence envelope on this machine.
func ClosedNodes(p platform.Platform, w Workload) int {
	if w.MaxGlobalBatch <= 0 {
		return p.Nodes
	}
	gpus := p.Node.GPUs
	if gpus < 1 {
		gpus = 1
	}
	n := w.MaxGlobalBatch / (gpus * w.Model.PerGPUBatch)
	if n < 1 {
		n = 1
	}
	if n > p.Nodes {
		n = p.Nodes
	}
	return n
}

// DefaultCampaign is the mixed suite: two closed-division-scale
// instances of every registered workload, submits staggered five
// minutes apart — the shape of a shared machine's benchmark week.
func DefaultCampaign(p platform.Platform) Campaign {
	var inst []Instance
	for i, w := range Suite() {
		big := min(p.Nodes/8, ClosedNodes(p, w))
		if big < 1 {
			big = 1
		}
		small := big / 2
		if small < 1 {
			small = 1
		}
		inst = append(inst,
			Instance{Workload: w.Name, Nodes: big, Submit: float64(2*i) * 300},
			Instance{Workload: w.Name, Nodes: small, Submit: float64(2*i+1) * 300},
		)
	}
	return Campaign{Name: "mixed-suite", Seed: 1, Instances: inst}
}

// ThroughputCampaign is the multi-instance throughput mode: n identical
// instances of one workload submitted together, each on 1/n of the
// machine (capped at the workload's closed-division scale), so all n
// run concurrently.
func ThroughputCampaign(p platform.Platform, workload string, n int) Campaign {
	if n < 1 {
		n = 1
	}
	nodes := p.Nodes / n
	if w, ok := Lookup(workload); ok {
		nodes = min(nodes, ClosedNodes(p, w))
	}
	if nodes < 1 {
		nodes = 1
	}
	inst := make([]Instance, n)
	for i := range inst {
		inst[i] = Instance{Workload: workload, Nodes: nodes}
	}
	return Campaign{Name: fmt.Sprintf("throughput-%s-x%d", workload, n), Seed: 1, Instances: inst}
}
