package core

import (
	"fmt"
	"strings"

	"summitscale/internal/sched"
	"summitscale/internal/stats"
)

// schedulingExperiment reproduces the §II-B allocation structure: INCITE
// receives roughly 60% of allocable hours, ALCC 20%, DD 20%, with INCITE
// running capability-scale jobs. A synthesized week of workload is pushed
// through the capability-priority backfill scheduler and the realized
// shares and machine utilization are measured.
func schedulingExperiment() Experiment {
	return Experiment{
		ID:         "B1",
		Title:      "§II-B allocation programs — batch scheduling study",
		PaperClaim: "INCITE ~60% of hours, ALCC ~20%, DD ~20%; INCITE jobs are capability scale",
		Run: func() Result {
			rng := stats.NewRNG(2)
			jobs := sched.SynthesizeWorkload(rng, sched.OLCFShares(), 600_000, 7*24*3600)
			s := sched.NewScheduler(4608)
			placed := s.Schedule(jobs)
			st := s.Summarize(placed)

			var total float64
			for _, h := range st.HoursByGroup {
				total += h
			}
			share := func(p string) float64 { return st.HoursByGroup[p] / total }

			// Mean job size per program.
			sizes := map[string]float64{}
			counts := map[string]float64{}
			for _, j := range placed {
				sizes[j.Program] += float64(j.Nodes)
				counts[j.Program]++
			}
			inciteMean := sizes["INCITE"] / counts["INCITE"]
			ddMean := sizes["DD"] / counts["DD"]

			var b strings.Builder
			fmt.Fprintf(&b, "one synthesized week: %d jobs, makespan %.1f h, utilization %.1f%%\n",
				len(placed), st.Makespan/3600, 100*st.Utilization)
			for _, p := range []string{"INCITE", "ALCC", "DD"} {
				fmt.Fprintf(&b, "  %-7s %5.1f%% of node-hours, mean job %6.0f nodes\n",
					p, 100*share(p), sizes[p]/counts[p])
			}
			fmt.Fprintf(&b, "  queue wait: mean %.1f h, max %.1f h\n", st.MeanWait/3600, st.MaxWait/3600)
			return Result{
				Metrics: []Metric{
					{Name: "INCITE share of hours", Paper: 0.60, Measured: share("INCITE"), Tol: 0.15},
					{Name: "ALCC share of hours", Paper: 0.20, Measured: share("ALCC"), Tol: 0.30},
					{Name: "DD share of hours", Paper: 0.20, Measured: share("DD"), Tol: 0.30},
					{Name: "INCITE capability scale (mean/DD mean > 4) (1=yes)", Paper: 1,
						Measured: boolMetric(inciteMean > 4*ddMean), Tol: 1e-9},
					{Name: "machine utilization", Measured: st.Utilization},
				},
				Detail: b.String(),
			}
		},
	}
}
