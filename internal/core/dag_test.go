package core

import (
	"strings"
	"testing"

	"summitscale/internal/obs"
	"summitscale/internal/platform"
)

// TestDAGRegistryGraphValid guards the registry's dependency
// declarations: every Needs key must name a sub-result node the engine
// knows how to build (a typo would otherwise surface as a RunDAG panic).
func TestDAGRegistryGraphValid(t *testing.T) {
	known := map[string]bool{}
	for _, sn := range subResultNodes(platform.Summit()) {
		if known[sn.key] {
			t.Errorf("duplicate sub-result node %q", sn.key)
		}
		known[sn.key] = true
		for _, d := range sn.deps {
			if !known[d] {
				t.Errorf("sub-result %q declares dep %q not defined before it", sn.key, d)
			}
		}
	}
	for _, e := range Experiments() {
		for _, k := range e.Needs {
			if !known[k] {
				t.Errorf("experiment %s needs unknown sub-result %q", e.ID, k)
			}
		}
		if len(e.Needs) > 0 && e.RunIn == nil {
			t.Errorf("experiment %s declares Needs but has no RunIn", e.ID)
		}
	}
}

// TestRunAllDAGMatchesFlat is the engine's byte-identity contract: the
// DAG scheduler with memoized sub-results must render exactly the
// legacy flat path's report at -j 1, 4, and 16, cold or warm.
func TestRunAllDAGMatchesFlat(t *testing.T) {
	flat, flatPass := RunAllFlat(1)
	en := NewEngine()
	for _, workers := range []int{1, 4, 16} {
		got, pass := en.RunAllParallel(workers)
		if pass != flatPass {
			t.Errorf("-j %d: pass %v vs flat %v", workers, pass, flatPass)
		}
		if got != flat {
			t.Fatalf("-j %d: DAG report diverged from flat path (%d vs %d bytes)",
				workers, len(got), len(flat))
		}
	}
	// Second pass over the warm cache: still byte-identical.
	if warm, _ := en.RunAllParallel(4); warm != flat {
		t.Fatal("warm-cache DAG report diverged from flat path")
	}
}

// TestRunAllDAGShuffledRegistryOrder runs the engine over a permuted
// experiment list: each section must be byte-identical to the
// experiment's flat render, independent of declaration order.
func TestRunAllDAGShuffledRegistryOrder(t *testing.T) {
	exps := Experiments()
	shuffled := make([]Experiment, len(exps))
	// Fixed permutation: reversed, which moves every consumer ahead of
	// the order its sub-results were declared in.
	for i, e := range exps {
		shuffled[len(exps)-1-i] = e
	}
	var want strings.Builder
	for _, e := range shuffled {
		want.WriteString(RenderResult(e, e.Run()) + "\n")
	}
	got, _ := NewEngine().run(shuffled, 4, nil)
	if got != want.String() {
		t.Fatal("shuffled registry order changed the DAG engine's per-experiment output")
	}
}

// TestEngineCacheMemoizes pins the memoization contract: one run fills
// the keyed cache (shared sub-results and per-experiment results), a
// second run adds nothing and returns identical bytes.
func TestEngineCacheMemoizes(t *testing.T) {
	en := NewEngine()
	if en.Cache().Len() != 0 {
		t.Fatal("fresh engine cache not empty")
	}
	first, _ := en.RunAllParallel(2)
	filled := en.Cache().Len()
	p := platform.Summit()
	for _, key := range []string{
		keyPortfolio,
		keyScalingStudies(p),
		keyChaosReport(p, "rack-cascade"),
		"result/RS1",
		"result/W1",
	} {
		if !en.Cache().has(key) {
			t.Errorf("cache missing %q after a full run", key)
		}
	}
	again, _ := en.RunAllParallel(2)
	if again != first {
		t.Error("warm run diverged from cold run")
	}
	if got := en.Cache().Len(); got != filled {
		t.Errorf("warm run grew the cache from %d to %d entries", filled, got)
	}
}

// TestChaosThroughDAGSmoke is the chaos-engine smoke check of the DAG
// refactor: the RS3/RS4 sections produced by the scheduler — with RS4
// resolving its scenarios from RS3's memoized runs — must contain the
// captured Summit goldens byte-for-byte.
func TestChaosThroughDAGSmoke(t *testing.T) {
	report, _ := NewEngine().RunAllParallel(4)
	for _, name := range []string{"chaos-RS3.golden", "chaos-RS4.golden"} {
		want := readGolden(t, name)
		if !strings.Contains(report, want) {
			t.Errorf("DAG report does not contain the %s bytes", name)
		}
	}
}

// TestObservedRunEmitsDAGSpans checks the scheduler's own trace track:
// observed runs record one deterministic span per DAG node.
func TestObservedRunEmitsDAGSpans(t *testing.T) {
	ob := obs.New()
	if _, ok := RunAllObserved(2, ob); !ok {
		t.Fatal("observed run failed")
	}
	trace := string(ob.Trace.ChromeTrace())
	for _, frag := range []string{`"dag"`, "exp/RS3", "exp/F1"} {
		if !strings.Contains(trace, frag) {
			t.Errorf("trace missing %q", frag)
		}
	}
}
