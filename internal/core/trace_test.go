package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"summitscale/internal/obs"
)

// The observability layer must be a pure read-out: observing an
// experiment changes neither its Result nor the byte-level report, and
// the emitted Chrome trace is a deterministic function of the
// experiment's seeds — identical across reruns and across worker counts.

// rs2Trace runs RS2 under a fresh observer and returns the trace bytes
// and the rendered report.
func rs2Trace(t *testing.T) ([]byte, string) {
	t.Helper()
	e, ok := ByID("RS2")
	if !ok {
		t.Fatal("RS2 not registered")
	}
	ob := obs.New()
	r := e.RunWith(ob)
	return ob.Trace.ChromeTrace(), RenderResult(e, r)
}

// TestRS2TraceGolden pins the fault-injected campaign's Chrome trace
// byte-for-byte (the `summit-repro -experiment RS2 -trace out.json`
// artifact) and checks it is reproducible and a pure read-out.
func TestRS2TraceGolden(t *testing.T) {
	first, report := rs2Trace(t)
	again, _ := rs2Trace(t)
	if !bytes.Equal(first, again) {
		t.Error("RS2 trace not byte-identical across reruns")
	}
	e, _ := ByID("RS2")
	if unobserved := RenderResult(e, e.Run()); report != unobserved {
		t.Errorf("observing RS2 changed its report:\n--- observed ---\n%s\n--- plain ---\n%s", report, unobserved)
	}
	if want := readGolden(t, "trace-RS2.golden.json"); string(first) != want {
		t.Errorf("RS2 trace diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", first, want)
	}
}

// TestRS2TraceValidChromeJSON parses the pinned artifact with the stdlib
// decoder and checks the trace-event envelope Perfetto/chrome://tracing
// expect: integer-microsecond complete and instant events under pid 1,
// named by thread_name metadata.
func TestRS2TraceValidChromeJSON(t *testing.T) {
	raw, _ := rs2Trace(t)
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Name string  `json:"name"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", doc.DisplayTimeUnit)
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev.Ph]++
		if ev.Pid != 1 {
			t.Fatalf("event %q has pid %d, want 1", ev.Name, ev.Pid)
		}
		if ev.Ts != float64(int64(ev.Ts)) || ev.Dur != float64(int64(ev.Dur)) {
			t.Fatalf("event %q has non-integer ts/dur (%v/%v)", ev.Name, ev.Ts, ev.Dur)
		}
	}
	for _, ph := range []string{"M", "X", "i"} {
		if phases[ph] == 0 {
			t.Errorf("trace has no %q events (got %v)", ph, phases)
		}
	}
}

// TestFullRegistryTraceDeterministicAcrossWorkers shares one observer
// across the whole registry at different worker counts: report, trace,
// and metrics must all be byte-identical regardless of scheduling.
func TestFullRegistryTraceDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run")
	}
	type out struct{ report, trace, metrics, summary string }
	runAt := func(workers int) out {
		ob := obs.New()
		report, _ := RunAllObserved(workers, ob)
		return out{report, string(ob.Trace.ChromeTrace()), ob.Metrics.Render(), ob.Trace.Summary()}
	}
	seq := runAt(1)
	par := runAt(8)
	if seq.report != par.report {
		t.Error("report differs between -j 1 and -j 8")
	}
	if seq.trace != par.trace {
		t.Error("Chrome trace differs between -j 1 and -j 8")
	}
	if seq.metrics != par.metrics {
		t.Errorf("metrics differ between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", seq.metrics, par.metrics)
	}
	if seq.summary != par.summary {
		t.Error("trace summary differs between -j 1 and -j 8")
	}
}
