// Package core assembles the reproduction study: a registry of every
// table, figure, scaling study, system-requirement analysis, and workflow
// case study in the paper, each with its paper-reported reference values
// and a runner that regenerates the result from this repository's
// substrates. cmd/summit-* and the benchmark harness drive this package;
// EXPERIMENTS.md is generated from its comparison report.
package core

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"summitscale/internal/obs"
	"summitscale/internal/parallel"
)

// Metric is one paper-vs-measured comparison.
type Metric struct {
	Name     string
	Paper    float64
	Measured float64
	Unit     string
	// Tol is the acceptable relative deviation (0.15 = 15%). Zero means
	// the metric is informational (no paper value to hold).
	Tol float64
}

// RelErr returns |measured-paper|/|paper|; when the paper value is zero
// (a structural-zero claim) it returns |measured| so the tolerance bounds
// the absolute deviation instead.
func (m Metric) RelErr() float64 {
	if m.Paper == 0 {
		return math.Abs(m.Measured)
	}
	return math.Abs(m.Measured-m.Paper) / math.Abs(m.Paper)
}

// Within reports whether the metric holds its tolerance (informational
// metrics always pass).
func (m Metric) Within() bool {
	if m.Tol == 0 {
		return true
	}
	return m.RelErr() <= m.Tol
}

// Result is one experiment's outcome.
type Result struct {
	Metrics []Metric
	// Detail is the rendered artifact (figure, table, curve).
	Detail string
}

// Pass reports whether every metric held.
func (r Result) Pass() bool {
	for _, m := range r.Metrics {
		if !m.Within() {
			return false
		}
	}
	return true
}

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	ID         string // e.g. "F1", "T3", "S1", "IO1", "C1", "W2"
	Title      string
	PaperClaim string
	Run        func() Result
	// RunObs, if non-nil, is Run recording spans and metrics into an
	// observer as it goes. It must return a Result identical to Run's —
	// observation never changes the report (the goldens depend on it).
	RunObs func(ob *obs.Observer) Result
	// Needs lists the sub-result cache keys this experiment consumes
	// (see dag.go). The DAG scheduler computes each listed sub-result
	// in its own node before this experiment runs.
	Needs []string
	// RunIn, if non-nil, is Run resolving shared sub-results through a
	// cache. It must return a Result identical to Run's for any cache
	// state — memoization never changes the report.
	RunIn func(c *Cache) Result
}

// RunWith executes the experiment, recording into ob when the experiment
// is instrumented and ob is non-nil; otherwise it is exactly Run.
func (e Experiment) RunWith(ob *obs.Observer) Result {
	if e.RunObs != nil && ob != nil {
		return e.RunObs(ob)
	}
	return e.Run()
}

// runIn executes the experiment resolving shared sub-results through c
// when the experiment declares them; a nil cache degrades to Run.
func (e Experiment) runIn(c *Cache) Result {
	if e.RunIn != nil {
		return e.RunIn(c)
	}
	return e.Run()
}

// Experiments returns the full registry in paper order. The registry is
// built once and cached — every experiment closure is pure with respect to
// the registry (each Run constructs its own RNGs and substrates), so the
// bench harness and ByID can call this per lookup without rebuilding ~22
// experiment closures each time. Callers must not mutate the returned
// slice.
var Experiments = sync.OnceValue(buildExperiments)

func buildExperiments() []Experiment {
	var out []Experiment
	out = append(out, tableExperiments()...)
	out = append(out, figureExperiments()...)
	out = append(out, schedulingExperiment())
	out = append(out, scalingExperiments()...)
	out = append(out, sysreqExperiments()...)
	out = append(out, trustExperiment())
	out = append(out, workflowExperiments()...)
	out = append(out, resilienceExperiments()...)
	out = append(out, chaosExperiments()...)
	out = append(out, serveExperiments()...)
	out = append(out, mlperfExperiments()...)
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RenderResult formats one experiment outcome.
func RenderResult(e Experiment, r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", e.ID, e.Title)
	fmt.Fprintf(&b, "paper: %s\n", e.PaperClaim)
	for _, m := range r.Metrics {
		status := "ok"
		if !m.Within() {
			status = "DEVIATES"
		}
		if m.Tol == 0 {
			fmt.Fprintf(&b, "  %-38s measured %12.4g %-8s (informational)\n",
				m.Name, m.Measured, m.Unit)
			continue
		}
		fmt.Fprintf(&b, "  %-38s paper %12.4g  measured %12.4g %-8s relerr %5.1f%%  [%s]\n",
			m.Name, m.Paper, m.Measured, m.Unit, 100*m.RelErr(), status)
	}
	if r.Detail != "" {
		b.WriteString(r.Detail)
		if !strings.HasSuffix(r.Detail, "\n") {
			b.WriteString("\n")
		}
	}
	return b.String()
}

// defaultEngine backs the package-level runners: one process-wide DAG
// engine whose sub-result cache persists across calls, so repeated
// full-registry runs (the bench harness, long-lived tools) pay for each
// deterministic sub-result once.
var defaultEngine = NewEngine()

// RunAll executes every experiment sequentially and renders the full
// report. It is RunAllParallel with one worker — which the DAG
// scheduler runs inline on the caller's goroutine, with no pool
// overhead.
func RunAll() (string, bool) {
	return RunAllParallel(1)
}

// RunAllParallel executes the registry through the dependency-DAG
// scheduler across at most workers goroutines (workers <= 1 runs the
// topological order inline) and renders the report in registry order.
// Each experiment's section is rendered into its own slot and the slots
// are concatenated in order, so the output is byte-identical to
// RunAll() regardless of worker count, scheduling, or cache state.
func RunAllParallel(workers int) (string, bool) {
	return defaultEngine.RunAllParallel(workers)
}

// RunAllObserved is RunAllParallel with every instrumented experiment
// recording into ob (shared across experiments and workers — the obs
// layer is concurrency-safe and renders byte-deterministically at any
// worker count). A nil observer makes it exactly RunAllParallel;
// observed runs bypass the sub-result cache so spans are re-recorded
// per run.
func RunAllObserved(workers int, ob *obs.Observer) (string, bool) {
	return defaultEngine.RunAllObserved(workers, ob)
}

// RunAllFlat is the legacy flat-registry path: every experiment run
// independently by a bounded pool, no sub-result sharing, no
// memoization. It is kept as the baseline the DAG scheduler is
// benchmarked against (BenchmarkDAGSchedule, BenchmarkRunAllSequential)
// and must stay byte-identical to RunAllParallel.
func RunAllFlat(workers int) (string, bool) {
	exps := Experiments()
	sections := make([]string, len(exps))
	passed := make([]bool, len(exps))
	parallel.NewPool(workers).ForEach(len(exps), func(i int) {
		r := exps[i].Run()
		sections[i] = RenderResult(exps[i], r) + "\n"
		passed[i] = r.Pass()
	})
	var b strings.Builder
	all := true
	for i, s := range sections {
		b.WriteString(s)
		if !passed[i] {
			all = false
		}
	}
	return b.String(), all
}
