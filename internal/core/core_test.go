package core

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "T2", "T3", "F1", "F2", "F3", "F4", "F5", "F6", "B1",
		"S1", "S2", "S3", "S4", "S5", "IO1", "C1", "R1", "V1", "W1", "W2", "W3",
		"RS1", "RS2", "RS3", "RS4", "RS5", "S6", "S7"}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		seen[e.ID] = true
		if e.Title == "" || e.PaperClaim == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !seen[id] {
			t.Errorf("experiment %s missing", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("S1")
	if !ok || e.ID != "S1" {
		t.Fatal("ByID failed")
	}
	if _, ok := ByID("Z9"); ok {
		t.Fatal("found ghost experiment")
	}
}

// TestEveryExperimentPasses is the headline reproduction check: every
// table, figure, scaling study, system-requirement analysis, and workflow
// case study reproduces its paper value within its stated tolerance.
func TestEveryExperimentPasses(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r := e.Run()
			if len(r.Metrics) == 0 {
				t.Fatalf("%s produced no metrics", e.ID)
			}
			for _, m := range r.Metrics {
				if !m.Within() {
					t.Errorf("%s: %s = %v vs paper %v (relerr %.1f%% > tol %.0f%%)",
						e.ID, m.Name, m.Measured, m.Paper, 100*m.RelErr(), 100*m.Tol)
				}
			}
			if r.Detail == "" {
				t.Errorf("%s has no rendered detail", e.ID)
			}
		})
	}
}

func TestMetricSemantics(t *testing.T) {
	m := Metric{Name: "x", Paper: 10, Measured: 10.5, Tol: 0.1}
	if !m.Within() || m.RelErr() != 0.05 {
		t.Fatalf("metric: %+v relerr %v", m, m.RelErr())
	}
	m.Measured = 12
	if m.Within() {
		t.Fatal("20% deviation passed a 10% tolerance")
	}
	// Informational metrics always pass.
	if !(Metric{Name: "info", Measured: 99}).Within() {
		t.Fatal("informational metric failed")
	}
	// Structural zero: tolerance bounds the absolute value.
	z := Metric{Name: "zero", Paper: 0, Measured: 0, Tol: 1e-9}
	if !z.Within() {
		t.Fatal("exact zero failed")
	}
	z.Measured = 1
	if z.Within() {
		t.Fatal("nonzero passed structural zero")
	}
}

func TestRenderResult(t *testing.T) {
	e, _ := ByID("C1")
	out := RenderResult(e, e.Run())
	for _, frag := range []string{"C1", "paper:", "ring algorithm bandwidth", "ok"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestRunAll(t *testing.T) {
	report, pass := RunAll()
	if !pass {
		t.Error("RunAll reports failures")
	}
	for _, id := range []string{"T1", "F6", "S5", "IO1", "W3"} {
		if !strings.Contains(report, "== "+id) {
			t.Errorf("report missing %s", id)
		}
	}
	if len(report) < 3000 {
		t.Errorf("report suspiciously short: %d bytes", len(report))
	}
}

// TestRunAllParallelByteIdentical is the determinism guarantee of the
// concurrent runner: the parallel report must match the sequential one
// byte for byte, at several worker counts, so `-j` can default to NumCPU
// without perturbing any golden or downstream diff.
func TestRunAllParallelByteIdentical(t *testing.T) {
	seq, seqPass := RunAll()
	for _, workers := range []int{2, 4, 8} {
		par, parPass := RunAllParallel(workers)
		if parPass != seqPass {
			t.Errorf("workers=%d: pass %v vs sequential %v", workers, parPass, seqPass)
		}
		if par != seq {
			t.Fatalf("workers=%d: parallel report diverged from sequential (%d vs %d bytes)",
				workers, len(par), len(seq))
		}
	}
}

// TestExperimentsRegistryCached pins the sync.OnceValue satellite: repeated
// calls must hand back the same backing array instead of rebuilding every
// experiment closure.
func TestExperimentsRegistryCached(t *testing.T) {
	a, b := Experiments(), Experiments()
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("empty registry")
	}
	if &a[0] != &b[0] {
		t.Error("Experiments() rebuilt the registry on a second call")
	}
}

func TestScalingStudiesConsistent(t *testing.T) {
	for _, s := range ScalingStudies() {
		if s.Job.Nodes != s.AtNodes {
			t.Errorf("%s: job nodes %d != AtNodes %d", s.ID, s.Job.Nodes, s.AtNodes)
		}
		if len(s.Curve) < 3 {
			t.Errorf("%s: curve too short", s.ID)
		}
		if s.Curve[0] != s.BaseNodes || s.Curve[len(s.Curve)-1] != s.AtNodes {
			t.Errorf("%s: curve endpoints %v don't match base/at", s.ID, s.Curve)
		}
		if out := RenderScalingCurve(s); !strings.Contains(out, "nodes") {
			t.Errorf("%s: curve render broken", s.ID)
		}
	}
}

func TestRenderMarkdown(t *testing.T) {
	md := RenderMarkdown()
	if !strings.Contains(md, "| ID |") || !strings.Contains(md, "| S5 |") {
		t.Fatal("markdown table incomplete")
	}
	if strings.Contains(md, "DEVIATES") {
		t.Fatal("markdown report shows deviations")
	}
	// One row per metric: at least 50 data rows.
	if rows := strings.Count(md, "\n|") - 2; rows < 50 {
		t.Fatalf("only %d rows", rows)
	}
}

func TestRenderScalingSVG(t *testing.T) {
	for _, s := range ScalingStudies() {
		svg := RenderScalingSVG(s)
		if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
			t.Fatalf("%s SVG malformed", s.ID)
		}
		if !strings.Contains(svg, "polyline") {
			t.Fatalf("%s SVG missing the curve", s.ID)
		}
		if s.PaperEfficiency > 0 && !strings.Contains(svg, "paper") {
			t.Fatalf("%s SVG missing the paper reference point", s.ID)
		}
	}
}
