package core

import (
	"fmt"
	"math"
	"strings"

	"summitscale/internal/ga"
	"summitscale/internal/mc"
	"summitscale/internal/obs"
	"summitscale/internal/stats"
	"summitscale/internal/surrogate"
	"summitscale/internal/workflow"
)

func workflowExperiments() []Experiment {
	return []Experiment{materialsExperiment(), biologyExperiment(), drugExperiment()}
}

// materialsExperiment reproduces §V-A (Liu et al.) in miniature: an
// active-learning loop fits a bond-energy surrogate to reference alloy
// energies (BIC-selected), then the surrogate-driven Monte Carlo
// reproduces the reference order–disorder transition curve.
func materialsExperiment() Experiment {
	return Experiment{
		ID:         "W1",
		Title:      "§V-A materials — MC + surrogate active-learning loop",
		PaperClaim: "ML model refined with MC-generated data reproduces the reference order-disorder transition",
		Run: func() Result {
			rng := stats.NewRNG(3)
			ref := mc.ReferenceModel{J: 1, Anharmonicity: 0.1}
			const latticeL = 6

			// Active learning: configurations proposed by sweeping lattices
			// at random temperatures; features are (like, unlike) bond
			// counts; reference labels are exact energies.
			type sample struct{ like, unlike float64 }
			hooks := workflow.ActiveLearningHooks[sample, surrogate.Ridge]{
				Propose: func(_ *surrogate.Ridge, round, count int) []sample {
					out := make([]sample, 0, count)
					for i := 0; i < count; i++ {
						// Mixed lattice sizes vary the total bond count, so
						// the (like, unlike) features span two dimensions
						// and both bond energies are identifiable.
						size := 4 + 2*rng.Intn(2)
						lat := mc.NewLattice(size, ref)
						T := 0.5 + rng.Float64()*10
						for s := 0; s < 5+round*3; s++ {
							lat.Sweep(rng, T)
						}
						like, unlike := lat.BondCounts()
						out = append(out, sample{float64(like), float64(unlike)})
					}
					return out
				},
				Reference: func(s sample) float64 {
					return s.like*ref.PairEnergy(true) + s.unlike*ref.PairEnergy(false)
				},
				Fit: func(xs []sample, ys []float64) (*surrogate.Ridge, error) {
					feats := make([][]float64, len(xs))
					for i, s := range xs {
						feats[i] = []float64{s.like, s.unlike}
					}
					m, _, err := surrogate.SelectByBIC(feats, ys, 1e-9)
					return m, err
				},
				Validate: func(m *surrogate.Ridge) float64 {
					// Per-bond coefficient error vs the reference. A
					// BIC-truncated model (fewer than both features) cannot
					// resolve the bond energies and scores poorly.
					if len(m.Weights) < 3 {
						return math.Inf(1)
					}
					likeHat := m.Predict([]float64{1, 0}) - m.Predict([]float64{0, 0})
					unlikeHat := m.Predict([]float64{0, 1}) - m.Predict([]float64{0, 0})
					return math.Abs(likeHat-ref.PairEnergy(true)) + math.Abs(unlikeHat-ref.PairEnergy(false))
				},
			}
			res, err := workflow.ActiveLearn(workflow.ActiveLearningConfig{Rounds: 4, BatchPerRound: 12}, hooks)
			if err != nil {
				return Result{Metrics: []Metric{{Name: "active learning failed", Paper: 0, Measured: 1, Tol: 1e-9}},
					Detail: err.Error()}
			}
			coefErr := res.ErrorPerRound[len(res.ErrorPerRound)-1]
			if len(res.Model.Weights) < 3 {
				return Result{Metrics: []Metric{{Name: "BIC kept both bond features (1=yes)",
					Paper: 1, Measured: 0, Tol: 1e-9}}, Detail: "model truncated"}
			}

			// Learned-model transition curve vs the reference curve.
			likeHat := res.Model.Predict([]float64{1, 0}) - res.Model.Predict([]float64{0, 0})
			unlikeHat := res.Model.Predict([]float64{0, 1}) - res.Model.Predict([]float64{0, 0})
			learned := mc.LearnedModel{LikeE: likeHat, UnlikeE: unlikeHat}
			temps := []float64{0.5, 2, 4, 8, 16}
			refCurve := mc.TransitionCurve(stats.NewRNG(11), latticeL, ref, temps, 30, 15)
			lrnCurve := mc.TransitionCurve(stats.NewRNG(11), latticeL, learned, temps, 30, 15)
			var maxDev float64
			var b strings.Builder
			b.WriteString("order-disorder transition: T, reference OP, surrogate OP\n")
			for i, T := range temps {
				if d := math.Abs(refCurve[i] - lrnCurve[i]); d > maxDev {
					maxDev = d
				}
				fmt.Fprintf(&b, "  T=%5.1f  ref %.3f  surrogate %.3f\n", T, refCurve[i], lrnCurve[i])
			}
			fmt.Fprintf(&b, "reference calls: %d; learned bond energies: like %.3f unlike %.3f\n",
				res.ReferenceCalls, likeHat, unlikeHat)
			return Result{
				Metrics: []Metric{
					{Name: "surrogate bond-energy error", Paper: 0, Measured: coefErr, Tol: 0.05},
					{Name: "max transition-curve deviation", Paper: 0, Measured: maxDev, Tol: 0.25},
					{Name: "cold phase ordered (ref)", Paper: 1, Measured: refCurve[0], Tol: 0.15},
					{Name: "hot phase disordered (ref)", Paper: 0, Measured: refCurve[len(refCurve)-1], Tol: 0.35},
				},
				Detail: b.String(),
			}
		},
	}
}

// biologyExperiment reproduces §V-B (Trifan et al.) as a multi-facility
// campaign timeline: FFEA and AAMD stages at different facilities coupled
// through CVAE/ANCA-AE/GNO training on Summit, iterated twice.
func biologyExperiment() Experiment {
	run := func(ob *obs.Observer) Result {
		w := workflow.New()
		w.MustAdd(&workflow.Task{Name: "cryoem-input", Facility: "thetagpu", Duration: 20})
		prev := "cryoem-input"
		iterations := 2
		for i := 0; i < iterations; i++ {
			ffea := fmt.Sprintf("ffea-%d", i)
			aamd := fmt.Sprintf("aamd-%d", i)
			anca := fmt.Sprintf("anca-ae-%d", i)
			cvae := fmt.Sprintf("cvae-train-%d", i)
			gno := fmt.Sprintf("gno-couple-%d", i)
			w.MustAdd(&workflow.Task{Name: ffea, Facility: "thetagpu", Duration: 100, Deps: []string{prev}})
			w.MustAdd(&workflow.Task{Name: aamd, Facility: "perlmutter", Duration: 150, Deps: []string{prev}})
			w.MustAdd(&workflow.Task{Name: anca, Facility: "thetagpu", Duration: 30, Deps: []string{ffea}})
			w.MustAdd(&workflow.Task{Name: cvae, Facility: "summit", Duration: 80, Deps: []string{aamd}})
			w.MustAdd(&workflow.Task{Name: gno, Facility: "thetagpu", Duration: 40, Deps: []string{anca, cvae}})
			prev = gno
		}
		tl, err := w.Simulate([]workflow.Facility{
			{Name: "summit", Capacity: 4},
			{Name: "perlmutter", Capacity: 2},
			{Name: "thetagpu", Capacity: 2},
		})
		if err != nil {
			return Result{Metrics: []Metric{{Name: "simulate failed", Paper: 0, Measured: 1, Tol: 1e-9}},
				Detail: err.Error()}
		}
		w.TraceTimeline(tl, ob)
		// Serial lower bound of the critical chain per iteration:
		// max(ffea+anca, aamd+cvae) + gno = max(130, 230) + 40 = 270.
		wantMakespan := 20.0 + float64(iterations)*270
		var b strings.Builder
		fmt.Fprintf(&b, "campaign makespan: %.0f s over %d coupled iterations\n", tl.Makespan, iterations)
		for _, f := range []string{"summit", "perlmutter", "thetagpu"} {
			fmt.Fprintf(&b, "  %-11s utilization %.1f%%\n", f, 100*tl.Utilization[f])
		}
		return Result{
			Metrics: []Metric{
				{Name: "campaign makespan", Paper: wantMakespan, Measured: tl.Makespan, Unit: "s", Tol: 0.01},
				{Name: "FFEA/AAMD overlap achieved (1=yes)", Paper: 1,
					Measured: boolMetric(tl.Start["aamd-0"] < tl.End["ffea-0"]), Tol: 1e-9},
			},
			Detail: b.String(),
		}
	}
	return Experiment{
		ID:         "W2",
		Title:      "§V-B biology — multi-facility replication-transcription campaign",
		PaperClaim: "AI components impose consistency between FFEA and AAMD across Summit, Perlmutter, ThetaGPU",
		Run:        func() Result { return run(nil) },
		RunObs:     run,
	}
}

// drugExperiment reproduces §V-C (Saadi et al. / Blanchard GA) in
// miniature: a random-forest surrogate scores candidates cheaply, a GA
// searches the compound space, and the top candidates are re-scored by
// the "expensive" reference (docking stand-in); the loop must enrich
// true-high-affinity candidates.
func drugExperiment() Experiment {
	return Experiment{
		ID:         "W3",
		Title:      "§V-C drug design — surrogate-ranked GA lead discovery loop",
		PaperClaim: "surrogate ranking downselects compounds for expensive evaluation; loop enriches high-affinity leads",
		Run: func() Result {
			rng := stats.NewRNG(17)
			cfg := ga.DefaultConfig()

			// Ground-truth "docking score": favours a particular pharmaco-
			// phore pattern (token 7 in even positions, token 3 adjacency).
			truth := func(genes []int) float64 {
				var s float64
				for i, g := range genes {
					if g == 7 && i%2 == 0 {
						s += 1
					}
					if i > 0 && g == 3 && genes[i-1] == 3 {
						s += 0.5
					}
				}
				return s
			}
			randomGenes := func() []int {
				genes := make([]int, cfg.Genes)
				for j := range genes {
					genes[j] = rng.Intn(cfg.Vocab)
				}
				return genes
			}
			meanTopTruth := func(pop []ga.Candidate, k int) float64 {
				var s float64
				for i := 0; i < k && i < len(pop); i++ {
					s += truth(pop[i].Genes)
				}
				return s / float64(k)
			}

			// Seed training set: random compounds with reference labels.
			var feats [][]float64
			var labels []float64
			addLabelled := func(genes []int) {
				feats = append(feats, genesToFeatures(genes, cfg.Vocab))
				labels = append(labels, truth(genes))
			}
			for i := 0; i < 200; i++ {
				addLabelled(randomGenes())
			}
			// Random-screening baseline: mean truth of the 8 best among 200
			// random compounds (what the same reference budget buys without
			// the loop).
			baselinePop := make([]ga.Candidate, 200)
			for i := range baselinePop {
				g := randomGenes()
				baselinePop[i] = ga.Candidate{Genes: g, Score: truth(g)}
			}
			sortCandidates(baselinePop)
			baseline := meanTopTruth(baselinePop, 8)

			// Iterative loop: surrogate -> GA -> reference-score top leads
			// -> retrain surrogate on the enriched set.
			var leadMeans []float64
			var finalLeads float64
			rounds := 3
			for round := 0; round < rounds; round++ {
				forest := surrogate.FitForest(rng, feats, labels, 30, 8, 2)
				pop, _ := ga.Search(rng, cfg, 30, func(genes []int) float64 {
					return forest.Predict(genesToFeatures(genes, cfg.Vocab))
				})
				for i := 0; i < 16 && i < len(pop); i++ {
					addLabelled(pop[i].Genes)
				}
				finalLeads = meanTopTruth(pop, 8)
				leadMeans = append(leadMeans, finalLeads)
			}

			var b strings.Builder
			fmt.Fprintf(&b, "mean true docking score of top-8 leads per round: ")
			for _, v := range leadMeans {
				fmt.Fprintf(&b, "%.2f ", v)
			}
			fmt.Fprintf(&b, "\nrandom-screening baseline (same budget): %.2f\n", baseline)
			return Result{
				Metrics: []Metric{
					{Name: "loop enriches leads (1=yes)", Paper: 1,
						Measured: boolMetric(finalLeads > baseline), Tol: 1e-9},
					{Name: "rounds improve leads (1=yes)", Paper: 1,
						Measured: boolMetric(leadMeans[rounds-1] > leadMeans[0]), Tol: 1e-9},
					{Name: "final mean lead score", Measured: finalLeads},
				},
				Detail: b.String(),
			}
		},
	}
}

// sortCandidates orders a population best-first by score.
func sortCandidates(pop []ga.Candidate) {
	for i := 1; i < len(pop); i++ {
		for j := i; j > 0 && pop[j].Score > pop[j-1].Score; j-- {
			pop[j], pop[j-1] = pop[j-1], pop[j]
		}
	}
}

// genesToFeatures builds the surrogate feature vector: per-position
// one-hot-ish compressed counts (token histogram plus positional parity
// counts for the pharmacophore tokens).
func genesToFeatures(genes []int, vocab int) []float64 {
	f := make([]float64, vocab+2)
	for i, g := range genes {
		f[g]++
		if g == 7 && i%2 == 0 {
			f[vocab]++
		}
		if i > 0 && g == 3 && genes[i-1] == 3 {
			f[vocab+1]++
		}
	}
	return f
}
