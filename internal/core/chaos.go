package core

import (
	"fmt"
	"strings"

	"summitscale/internal/chaos"
	"summitscale/internal/obs"
	"summitscale/internal/platform"
)

// The chaos study: the resilience experiments (RS1, RS2) model the
// machine's average day — independent renewal failures at hardware rates.
// RS3 and RS4 model its worst week: the adversarial-scenario engine
// (internal/chaos) compiles correlated failure campaigns — rack cascades,
// GPFS brownouts, link flap, straggler storms, facility outages — and
// replays each across every simulator, checking physical invariants after
// every run and measuring whether the graceful-degradation policies
// (adaptive checkpoint cadence, elastic grow-back, health-gated facility
// failover with hedged launches) actually pay for themselves.

func chaosExperiments() []Experiment {
	return ChaosExperimentsOn(platform.Summit())
}

// ChaosExperimentsOn returns the adversarial-scenario experiments on the
// given platform: RS3 (the scenario sweep with invariant checking), RS4
// (the policy-on vs policy-off comparison), and RS5 (silent-data-
// corruption detection and verified recovery).
func ChaosExperimentsOn(p platform.Platform) []Experiment {
	return []Experiment{
		chaosSweepExperiment(p),
		chaosPolicyExperiment(p),
		sdcRecoveryExperiment(p),
	}
}

// chaosSweepExperiment is RS3: every builtin scenario compiled at the
// study seed, driven across faults/netsim/storage/ddl/workflow, and held
// to the invariant suite (deterministic replay, non-negative time, byte
// conservation, monotone degradation).
func chaosSweepExperiment(p platform.Platform) Experiment {
	run := func(c *Cache, ob *obs.Observer) Result {
		var metrics []Metric
		var detail strings.Builder
		passing := 0.0
		names := chaos.Names()
		for i, name := range names {
			var rep *chaos.Report
			var err error
			if ob != nil && i == 0 {
				// One representative scenario feeds the trace; observed
				// runs bypass the cache so spans are re-recorded.
				var sc *chaos.Scenario
				if sc, err = chaos.Builtin(name); err == nil {
					rep, err = chaos.Run(sc, resilienceSeed, chaos.Config{Platform: p, Obs: ob})
				}
			} else {
				rep, err = cachedChaosReport(c, p, name)
			}
			if err != nil {
				return Result{Metrics: []Metric{{Name: name + " failed", Paper: 0, Measured: 1, Tol: 1e-9}},
					Detail: err.Error()}
			}
			sc, err := chaos.Builtin(name)
			if err != nil {
				return Result{Metrics: []Metric{{Name: "builtin scenario failed", Paper: 0, Measured: 1, Tol: 1e-9}},
					Detail: err.Error()}
			}
			if err := chaos.CheckInvariants(sc, resilienceSeed, chaos.Config{Platform: p}); err != nil {
				fmt.Fprintf(&detail, "  INVARIANT VIOLATION %s: %v\n", name, err)
			} else {
				passing++
			}
			metrics = append(metrics,
				Metric{Name: name + ": chaos/clean allreduce", Measured: float64(rep.ChaosAllReduce) / float64(rep.CleanAllReduce), Unit: "ratio"},
				Metric{Name: name + ": brownout/clean staging", Measured: float64(rep.BrownoutStage) / float64(rep.CleanStage), Unit: "ratio"},
				Metric{Name: name + ": failures injected", Measured: float64(rep.Static.Failures), Unit: "faults"},
			)
			detail.WriteString(indent(rep.Render()))
		}
		metrics = append([]Metric{{
			Name: "scenarios passing all invariants", Paper: float64(len(names)),
			Measured: passing, Unit: "scenarios", Tol: 1e-9,
		}}, metrics...)
		return Result{Metrics: metrics, Detail: detail.String()}
	}
	var needs []string
	for _, name := range chaos.Names() {
		needs = append(needs, keyChaosReport(p, name))
	}
	return Experiment{
		ID:    "RS3",
		Title: "chaos — adversarial scenario sweep across all simulators",
		PaperClaim: "leadership campaigns die to correlated failure regimes (rack cascades, " +
			"I/O brownouts, facility outages), not independent crashes; the simulators must " +
			"stay deterministic and physical under all of them",
		Needs:  needs,
		Run:    func() Result { return run(nil, nil) },
		RunIn:  func(c *Cache) Result { return run(c, nil) },
		RunObs: func(ob *obs.Observer) Result { return run(nil, ob) },
	}
}

// chaosPolicyExperiment is RS4: the same scenarios with each
// graceful-degradation policy measured against its own absence — static
// Young/Daly vs the online adaptive controller, shrink-only elastic
// training vs grow-back, and waiting out a facility outage vs health-
// gated failover with hedged launches. Every policy must win on the
// scenario built to need it; disabling any one demonstrably regresses.
func chaosPolicyExperiment(p platform.Platform) Experiment {
	// The three policy scenarios are exactly the runs RS3's sweep already
	// performs at the same seed and platform, so unobserved runs resolve
	// them through the shared cache instead of re-simulating.
	policyScenarios := []string{"rack-cascade", "facility-outage", "perfect-storm"}
	run := func(c *Cache, ob *obs.Observer) Result {
		var metrics []Metric
		var detail strings.Builder
		report := func(name string) (*chaos.Report, error) {
			if ob == nil {
				return cachedChaosReport(c, p, name)
			}
			sc, err := chaos.Builtin(name)
			if err != nil {
				return nil, err
			}
			return chaos.Run(sc, resilienceSeed, chaos.Config{Platform: p, Obs: ob})
		}
		fail := func(err error) Result {
			return Result{Metrics: []Metric{{Name: "policy scenario failed", Paper: 0, Measured: 1, Tol: 1e-9}},
				Detail: err.Error()}
		}

		// Adaptive checkpoint cadence on the sustained cascade regime.
		cascade, err := report("rack-cascade")
		if err != nil {
			return fail(err)
		}
		metrics = append(metrics,
			Metric{Name: "adaptive beats misestimated static Daly (1=yes)", Paper: 1,
				Measured: b2f(cascade.Adaptive.Wall < cascade.Static.Wall), Unit: "bool", Tol: 1e-9},
			Metric{Name: "adaptive/static wall under cascade", Measured: float64(cascade.Adaptive.Wall) / float64(cascade.Static.Wall), Unit: "ratio"},
			Metric{Name: "adaptive/static lost work under cascade", Measured: float64(cascade.Adaptive.LostWork) / float64(cascade.Static.LostWork), Unit: "ratio"},
		)
		fmt.Fprintf(&detail, "  rack-cascade checkpoint policies: static wall %.0fs (lost %.0fs), adaptive wall %.0fs (lost %.0fs)\n",
			float64(cascade.Static.Wall), float64(cascade.Static.LostWork),
			float64(cascade.Adaptive.Wall), float64(cascade.Adaptive.LostWork))

		// Grow-back on the same cascade (its repair returns the rack).
		metrics = append(metrics,
			Metric{Name: "grow-back beats shrink-only (1=yes)", Paper: 1,
				Measured: b2f(cascade.GrowBackWall < cascade.ShrinkOnlyWall), Unit: "bool", Tol: 1e-9},
			Metric{Name: "grow-back/shrink-only elastic wall", Measured: float64(cascade.GrowBackWall) / float64(cascade.ShrinkOnlyWall), Unit: "ratio"},
		)
		fmt.Fprintf(&detail, "  rack-cascade elastic training:    shrink-only %.0fs, grow-back %.0fs\n",
			float64(cascade.ShrinkOnlyWall), float64(cascade.GrowBackWall))

		// Facility failover through the outage scenario.
		outage, err := report("facility-outage")
		if err != nil {
			return fail(err)
		}
		metrics = append(metrics,
			Metric{Name: "failover beats waiting out the outage (1=yes)", Paper: 1,
				Measured: b2f(outage.Failover.Makespan < outage.WaitOut.Makespan), Unit: "bool", Tol: 1e-9},
			Metric{Name: "failover/wait-out campaign makespan", Measured: float64(outage.Failover.Makespan) / float64(outage.WaitOut.Makespan), Unit: "ratio"},
			Metric{Name: "hedged launches fired", Measured: float64(outage.Failover.Hedges), Unit: "launches"},
		)
		fmt.Fprintf(&detail, "  facility-outage campaign:         wait-out %s\n                                    failover %s\n",
			outage.WaitOut, outage.Failover)

		// The combined worst week: every policy engaged at once.
		storm, err := report("perfect-storm")
		if err != nil {
			return fail(err)
		}
		metrics = append(metrics,
			Metric{Name: "perfect-storm: all policies still win (1=yes)", Paper: 1,
				Measured: b2f(storm.Adaptive.Wall < storm.Static.Wall &&
					storm.GrowBackWall < storm.ShrinkOnlyWall &&
					storm.Failover.Makespan <= storm.WaitOut.Makespan),
				Unit: "bool", Tol: 1e-9},
		)
		detail.WriteString(indent(storm.Render()))
		return Result{Metrics: metrics, Detail: detail.String()}
	}
	var needs []string
	for _, name := range policyScenarios {
		needs = append(needs, keyChaosReport(p, name))
	}
	return Experiment{
		ID:    "RS4",
		Title: "chaos — graceful-degradation policies vs their absence",
		PaperClaim: "surviving correlated failures at scale takes policy, not luck: " +
			"re-estimated checkpoint cadence, elastic grow-back at commit boundaries, " +
			"and health-gated facility failover each beat the do-nothing baseline",
		Needs:  needs,
		Run:    func() Result { return run(nil, nil) },
		RunIn:  func(c *Cache) Result { return run(c, nil) },
		RunObs: func(ob *obs.Observer) Result { return run(nil, ob) },
	}
}

// sdcRecoveryExperiment is RS5: the sdc-storm scenario's corruption
// events lowered onto an executable guarded training run, ablated three
// ways — clean, detection-on, detection-off. The headline numbers are
// the recovery proof (detection-on finishes bit-identical to the
// undisturbed run) and the honest ablation (the same flips with guards
// disarmed demonstrably poison the final state). The run itself is
// platform-independent — bit flips do not care about the fabric — so the
// same golden pins every machine.
func sdcRecoveryExperiment(p platform.Platform) Experiment {
	run := func(c *Cache, ob *obs.Observer) Result {
		var rep *chaos.SDCReport
		var err error
		if ob != nil {
			var sc *chaos.Scenario
			if sc, err = chaos.Builtin("sdc-storm"); err == nil {
				rep, err = chaos.RunSDC(sc, resilienceSeed, chaos.SDCConfig{Obs: ob})
			}
		} else {
			rep, err = cachedSDCReport(c, "sdc-storm")
		}
		if err != nil {
			return Result{Metrics: []Metric{{Name: "sdc ablation failed", Paper: 0, Measured: 1, Tol: 1e-9}},
				Detail: err.Error()}
		}
		var detail strings.Builder
		invariants := 1.0
		sc, err := chaos.Builtin("sdc-storm")
		if err != nil {
			return Result{Metrics: []Metric{{Name: "builtin scenario failed", Paper: 0, Measured: 1, Tol: 1e-9}},
				Detail: err.Error()}
		}
		if err := chaos.CheckSDCInvariants(sc, resilienceSeed, chaos.SDCConfig{}); err != nil {
			invariants = 0
			fmt.Fprintf(&detail, "  INVARIANT VIOLATION: %v\n", err)
		}
		metrics := []Metric{
			{Name: "sdc invariants hold (1=yes)", Paper: 1, Measured: invariants, Unit: "bool", Tol: 1e-9},
			{Name: "detection-on recovers bit-identical to clean (1=yes)", Paper: 1,
				Measured: b2f(rep.OnMatchesClean), Unit: "bool", Tol: 1e-9},
			{Name: "detection-off leaves final state corrupted (1=yes)", Paper: 1,
				Measured: b2f(rep.OffCorrupted), Unit: "bool", Tol: 1e-9},
			{Name: "detections stay within injected flips (1=yes)", Paper: 1,
				Measured: b2f(rep.On.Detections >= 1 && rep.On.Detections <= rep.Flips),
				Unit:     "bool", Tol: 1e-9},
			{Name: "gradient flips injected", Measured: float64(rep.Flips), Unit: "faults"},
			{Name: "storage corruptions injected", Measured: float64(rep.Torn + rep.Stale), Unit: "faults"},
			{Name: "guard detections", Measured: float64(rep.On.Detections), Unit: "detections"},
			{Name: "steps recomputed to recover", Measured: float64(rep.On.LostSteps), Unit: "steps"},
			{Name: "recovery execution overhead",
				Measured: float64(rep.On.StepsExecuted) / float64(rep.On.StepsCommitted), Unit: "ratio"},
		}
		detail.WriteString(indent(rep.Render()))
		return Result{Metrics: metrics, Detail: detail.String()}
	}
	return Experiment{
		ID:    "RS5",
		Title: "chaos — silent-data-corruption detection and verified recovery",
		PaperClaim: "at leadership scale silent data corruption is a when, not an if: a run must " +
			"detect corrupt gradients before the optimizer consumes them (non-finite and " +
			"gradient-norm sentinels, ABFT checksums through the allreduce) and recover from " +
			"tiered checkpoints to a state indistinguishable from an undisturbed run",
		Needs:  []string{keySDCReport()},
		Run:    func() Result { return run(nil, nil) },
		RunIn:  func(c *Cache) Result { return run(c, nil) },
		RunObs: func(ob *obs.Observer) Result { return run(nil, ob) },
	}
}

func b2f(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}
