package core

import (
	"summitscale/internal/portfolio"
)

// StudySeed is the seed of the canonical reconstructed portfolio.
const StudySeed = 1

// Study returns the canonical dataset.
func Study() *portfolio.Dataset { return portfolio.Generate(StudySeed) }

func tableExperiments() []Experiment {
	return []Experiment{
		{
			ID:         "T1",
			Title:      "Table I — science application AI motifs",
			PaperClaim: "ten-motif taxonomy from fault detection to undetermined",
			Run: func() Result {
				rows := portfolio.TableI()
				return Result{
					Metrics: []Metric{{Name: "motif count", Paper: 10,
						Measured: float64(len(rows)), Unit: "motifs", Tol: 1e-9}},
					Detail: portfolio.RenderTableI(),
				}
			},
		},
		{
			ID:         "T2",
			Title:      "Table II — science domains and subdomains",
			PaperClaim: "nine domains spanning the OLCF subdomain codes",
			Run: func() Result {
				t2 := portfolio.TableII()
				return Result{
					Metrics: []Metric{
						{Name: "domain count", Paper: 9, Measured: float64(len(t2)), Unit: "domains", Tol: 1e-9},
						{Name: "subdomain entries", Measured: float64(portfolio.SubdomainCount()), Unit: "subdomains"},
					},
					Detail: portfolio.RenderTableII(),
				}
			},
		},
		{
			ID:         "T3",
			Title:      "Table III — Gordon Bell finalist project counts",
			PaperClaim: "Summit finalists 5/2/4/2/1/3 by year-category; AI/ML 3/0/1/2/1/3",
			Run: func() Result {
				rows := portfolio.TableIII()
				paperSummit := []float64{5, 2, 4, 2, 1, 3}
				paperAI := []float64{3, 0, 1, 2, 1, 3}
				var ms []Metric
				var sumS, sumA, paperS, paperA float64
				for i, row := range rows {
					sumS += float64(row.Summit)
					sumA += float64(row.SummitAI)
					paperS += paperSummit[i]
					paperA += paperAI[i]
				}
				ms = append(ms,
					Metric{Name: "total Summit finalists", Paper: paperS, Measured: sumS, Unit: "projects", Tol: 1e-9},
					Metric{Name: "total AI/ML finalists", Paper: paperA, Measured: sumA, Unit: "projects", Tol: 1e-9},
				)
				for i, row := range rows {
					ms = append(ms, Metric{
						Name:  row.Category.String() + " " + itoa(row.Year) + " AI/ML",
						Paper: paperAI[i], Measured: float64(row.SummitAI), Unit: "projects", Tol: 1e-9,
					})
				}
				return Result{Metrics: ms, Detail: portfolio.RenderTableIII() + portfolio.RenderGordonBellReview()}
			},
		},
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// figureExperiments returns F1–F6. Every figure is a view of the same
// reconstructed portfolio, so each declares the shared dataset in Needs
// and resolves it through the cache: under the DAG scheduler the
// dataset is generated once for all six, not once per figure.
func figureExperiments() []Experiment {
	return []Experiment{
		cachedExperiment(Experiment{
			ID:         "F1",
			Title:      "Figure 1 — overall AI/ML usage",
			PaperClaim: "about 1/3 of project-years actively use AI/ML, another 8% inactive",
			Needs:      []string{keyPortfolio},
		}, func(c *Cache) Result {
			d := cachedStudy(c)
			f := d.Figure1()
			return Result{
				Metrics: []Metric{
					{Name: "active fraction", Paper: 0.333, Measured: f.Active, Unit: "", Tol: 0.10},
					{Name: "inactive fraction", Paper: 0.08, Measured: f.Inactive, Unit: "", Tol: 0.30},
				},
				Detail: d.RenderFigure1(),
			}
		}),
		cachedExperiment(Experiment{
			ID:         "F2",
			Title:      "Figure 2 — usage by program and year",
			PaperClaim: "INCITE active adoption grows 20% (2019) to 31% (2022); ALCC heavy in 2019-20; ECP lighter; COVID heavy",
			Needs:      []string{keyPortfolio},
		}, func(c *Cache) Result {
			d := cachedStudy(c)
			f2 := d.Figure2()
			return Result{
				Metrics: []Metric{
					{Name: "INCITE 2019 active", Paper: 0.20, Measured: f2[portfolio.INCITE][2019].Active, Tol: 0.15},
					{Name: "INCITE 2022 active", Paper: 0.31, Measured: f2[portfolio.INCITE][2022].Active, Tol: 0.15},
					{Name: "INCITE 2022 inactive", Paper: 0.28, Measured: f2[portfolio.INCITE][2022].Inactive, Tol: 0.15},
					{Name: "COVID active", Paper: 0.75, Measured: f2[portfolio.COVID][2020].Active, Tol: 0.2},
				},
				Detail: d.RenderFigure2(),
			}
		}),
		cachedExperiment(Experiment{
			ID:         "F3",
			Title:      "Figure 3 — usage by AI/ML method",
			PaperClaim: "deep learning and other NN methods much more prevalent than classical ML",
			Needs:      []string{keyPortfolio},
		}, func(c *Cache) Result {
			d := cachedStudy(c)
			f3 := d.Figure3()
			dlnn := f3[portfolio.DeepLearning] + f3[portfolio.OtherNeuralNetwork]
			return Result{
				Metrics: []Metric{
					{Name: "DL+NN share of AI projects", Paper: 0.70, Measured: dlnn, Tol: 0.15},
					{Name: "other-ML share", Measured: f3[portfolio.OtherML]},
				},
				Detail: d.RenderFigure3(),
			}
		}),
		cachedExperiment(Experiment{
			ID:         "F4",
			Title:      "Figure 4 — usage by science domain",
			PaperClaim: "Computer Science highest adoption; Biology and Materials heavy; usage highly domain-specific",
			Needs:      []string{keyPortfolio},
		}, func(c *Cache) Result {
			d := cachedStudy(c)
			f4 := d.Figure4()
			rate := func(dom portfolio.Domain) float64 {
				c := f4[dom]
				tot := c[portfolio.Active] + c[portfolio.Inactive] + c[portfolio.None]
				if tot == 0 {
					return 0
				}
				return float64(c[portfolio.Active]+c[portfolio.Inactive]) / float64(tot)
			}
			return Result{
				Metrics: []Metric{
					{Name: "Computer Science adoption rate", Paper: 0.85, Measured: rate(portfolio.ComputerScience), Tol: 0.2},
					{Name: "Biology adoption rate", Paper: 0.60, Measured: rate(portfolio.Biology), Tol: 0.25},
					{Name: "Nuclear Energy adoption rate", Measured: rate(portfolio.NuclearEnergy)},
				},
				Detail: d.RenderFigure4(),
			}
		}),
		cachedExperiment(Experiment{
			ID:         "F5",
			Title:      "Figure 5 — usage by AI motif",
			PaperClaim: "Submodels top; with Classification, Analysis, Surrogates and MD Potentials over 3/4 of usage",
			Needs:      []string{keyPortfolio},
		}, func(c *Cache) Result {
			d := cachedStudy(c)
			f5 := d.Figure5()
			return Result{
				Metrics: []Metric{
					{Name: "top-5 motif share", Paper: 0.78, Measured: d.TopMotifShare(), Tol: 0.15},
					{Name: "submodel share", Measured: f5[portfolio.Submodel]},
				},
				Detail: d.RenderFigure5(),
			}
		}),
		cachedExperiment(Experiment{
			ID:         "F6",
			Title:      "Figure 6 — AI motif vs science domain",
			PaperClaim: "Engineering×Submodel most prominent; Biology uses no grid submodels; CS has no math/cs projects",
			Needs:      []string{keyPortfolio},
		}, func(c *Cache) Result {
			d := cachedStudy(c)
			f6 := d.Figure6()
			bioSub := float64(f6[portfolio.Biology][portfolio.Submodel])
			csMath := float64(f6[portfolio.ComputerScience][portfolio.MathCSAlgorithm])
			engSub := float64(f6[portfolio.Engineering][portfolio.Submodel])
			maxOther := 0.0
			for dom, row := range f6 {
				for m, c := range row {
					if dom == portfolio.Engineering && m == portfolio.Submodel {
						continue
					}
					if float64(c) > maxOther {
						maxOther = float64(c)
					}
				}
			}
			return Result{
				Metrics: []Metric{
					{Name: "Biology×Submodel count", Paper: 0, Measured: bioSub, Tol: 1e-9},
					{Name: "CS×MathCS count", Paper: 0, Measured: csMath, Tol: 1e-9},
					{Name: "Engineering×Submodel is max (1=yes)", Paper: 1,
						Measured: boolMetric(engSub > maxOther), Tol: 1e-9},
				},
				Detail: d.RenderFigure6(),
			}
		}),
	}
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
