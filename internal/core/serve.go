package core

import (
	"fmt"
	"strings"

	"summitscale/internal/chaos"
	"summitscale/internal/obs"
	"summitscale/internal/platform"
	"summitscale/internal/serve"
)

// The serving study: training campaigns produce surrogates, and the
// paper's workflows (alloy design, binding-affinity scoring) only pay off
// when those surrogates answer simulation queries at interactive rates
// for large user populations. S6 reproduces the serving argument end to
// end on the simulated clock: dynamic micro-batching amortizes dispatch
// overhead (the roofline-priced analogue of Brewer et al.'s batching
// result), bounded admission queues convert overload into typed
// rejections instead of unbounded tails, and a shed-load policy keeps
// Interactive latency bounded through partial capacity loss.

// serveSeed roots the serving study: the model fleet's weights, the
// synthetic user population, and the chaos schedule all derive from it.
const serveSeed = 42

// serveExperiments returns the serving study on the paper baseline.
func serveExperiments() []Experiment {
	return ServeExperimentsOn(platform.Summit())
}

// ServeExperimentsOn returns the serving experiments on the given
// platform: S6, the micro-batching and degradation study.
func ServeExperimentsOn(p platform.Platform) []Experiment {
	return []Experiment{serveExperiment(p)}
}

// serveExperiment is S6: the same seeded request stream served three
// ways — micro-batched, unbatched at identical capacity, and micro-
// batched under the serving-storm chaos scenario with the shed policy on
// and off.
func serveExperiment(p platform.Platform) Experiment {
	run := func(ob *obs.Observer) Result {
		models := serve.DefaultModels(serveSeed)
		spec := serve.DefaultTraffic()
		reqs, err := spec.Generate(serveSeed, models)
		if err != nil {
			return Result{Metrics: []Metric{{Name: "traffic generation failed", Paper: 0, Measured: 1, Tol: 1e-9}},
				Detail: err.Error()}
		}

		batchedCfg := serve.Config{Platform: p, Models: models, Horizon: spec.Horizon, Obs: ob}
		batched, err := serve.Run(batchedCfg, reqs)
		if err != nil {
			return Result{Metrics: []Metric{{Name: "batched run failed", Paper: 0, Measured: 1, Tol: 1e-9}},
				Detail: err.Error()}
		}
		unbatchedCfg := serve.Config{
			Platform: p, Models: models, Horizon: spec.Horizon,
			Batch:     serve.BatchConfig{MaxBatch: 1, MaxDelay: 0},
			Admission: serve.DefaultAdmission(batched.Replicas, serve.DefaultBatch().MaxBatch),
		}
		unbatched, err := serve.Run(unbatchedCfg, reqs)
		if err != nil {
			return Result{Metrics: []Metric{{Name: "unbatched run failed", Paper: 0, Measured: 1, Tol: 1e-9}},
				Detail: err.Error()}
		}
		storm, err := chaos.RunServe(p, chaos.ServingStorm(), serveSeed, spec, models, nil)
		if err != nil {
			return Result{Metrics: []Metric{{Name: "serving-storm run failed", Paper: 0, Measured: 1, Tol: 1e-9}},
				Detail: err.Error()}
		}

		pricer := serve.PricerFor(p)
		amortized := 0
		for _, m := range models {
			if pricer.Amortization(m, serve.DefaultBatch().MaxBatch) >= 2 {
				amortized++
			}
		}
		interArrivals, interServedStorm, interShedStorm := 0, 0, 0
		for _, r := range reqs {
			if r.Tier == serve.Interactive {
				interArrivals++
			}
		}
		for _, r := range storm.Shed.Responses {
			if r.Tier == serve.Interactive {
				interServedStorm++
			}
		}
		for _, rj := range storm.Shed.Rejections {
			if rj.Code == serve.RejectShed && rj.Tier == serve.Interactive {
				interShedStorm++
			}
		}
		interAvail := 0.0
		if interArrivals > 0 {
			interAvail = float64(interServedStorm) / float64(interArrivals)
		}
		p99Ratio := 0.0
		if batched.InteractiveP99 > 0 {
			p99Ratio = float64(unbatched.InteractiveP99) / float64(batched.InteractiveP99)
		}
		shedWin := 0.0
		if storm.Shed.InteractiveP99 > 0 {
			shedWin = float64(storm.NoShed.InteractiveP99) / float64(storm.Shed.InteractiveP99)
		}

		metrics := []Metric{
			{Name: "batched run rejections", Paper: 0, Measured: float64(batched.Rejected),
				Unit: "requests", Tol: 1e-9},
			{Name: "models with >=2x analytic amortization", Paper: float64(len(models)),
				Measured: float64(amortized), Unit: "models", Tol: 1e-9},
			{Name: "interactive requests shed under storm", Paper: 0,
				Measured: float64(interShedStorm), Unit: "requests", Tol: 1e-9},
			{Name: "interactive availability, storm + shed", Paper: 1,
				Measured: interAvail, Unit: "fraction", Tol: 0.02},
			{Name: "mean micro-batch size", Measured: batched.MeanBatch, Unit: "rows"},
			{Name: "batched throughput", Measured: batched.Throughput, Unit: "req/s"},
			{Name: "unbatched/batched interactive p99", Measured: p99Ratio, Unit: "ratio"},
			{Name: "shed-policy interactive p99 win (storm)", Measured: shedWin, Unit: "ratio"},
		}

		var detail strings.Builder
		fmt.Fprintf(&detail, "  workload: %s\n", serve.Census(reqs))
		fmt.Fprintf(&detail, "  --- micro-batched ---\n%s", indent(batched.Render()))
		fmt.Fprintf(&detail, "  --- unbatched, same capacity ---\n%s", indent(unbatched.Render()))
		fmt.Fprintf(&detail, "  --- serving-storm ---\n%s", indent(storm.Render()))
		return Result{Metrics: metrics, Detail: detail.String()}
	}
	return Experiment{
		ID:    "S6",
		Title: "serving — surrogate inference with micro-batching, admission control, and load shedding",
		PaperClaim: "trained surrogates must answer simulation queries for millions of users; " +
			"dynamic micro-batching amortizes per-dispatch overhead so the same replicas absorb " +
			"bursty diurnal load that collapses an unbatched server, and shedding bulk work under " +
			"partial outages keeps interactive tails bounded without dropping interactive traffic",
		Run:    func() Result { return run(nil) },
		RunObs: run,
	}
}
