package core

import (
	"fmt"
	"strings"

	"summitscale/internal/bench"
	"summitscale/internal/obs"
	"summitscale/internal/platform"
)

// The benchmark-campaign study: MLPerf HPC's argument that a leadership
// machine is measured not by one job's FLOP/s but by time-to-train on
// real science workloads — singly (closed-division TTT with stage-in
// counted), across scale (strong/weak-scaling sweeps), and all at once
// (multi-instance throughput mode, where N concurrent instances contend
// for the node pool and the figure of merit is aggregate machine
// throughput). S7 reproduces that argument on the simulated machine and
// then stress-tests it: the same mixed campaign replayed under the
// campaign-storm chaos scenario, with the adaptive Daly-interval
// checkpoint policy on and off.

// mlperfSeed roots the campaign study's chaos schedule.
const mlperfSeed = 42

// mlperfWorkers is the fixed evaluator width for campaign runs inside
// experiments; campaign reports are byte-identical at any width, so this
// only sets wall time.
const mlperfWorkers = 4

// mlperfExperiments returns the campaign study on the paper baseline.
func mlperfExperiments() []Experiment {
	return MLPerfExperimentsOn(platform.Summit())
}

// MLPerfExperimentsOn returns the benchmark-campaign experiments on the
// given platform: S7, the multi-workload campaign suite.
func MLPerfExperimentsOn(p platform.Platform) []Experiment {
	return []Experiment{mlperfExperiment(p)}
}

// mlperfExperiment is S7: the registered workload suite priced singly
// and under scaling sweeps, the mixed campaign scheduled onto the node
// pool, the multi-instance throughput mode, and the storm replay.
func mlperfExperiment(p platform.Platform) Experiment {
	run := func(c *Cache, ob *obs.Observer) Result {
		storm, err := cachedCampaignStorm(c, p, ob)
		if err != nil {
			return Result{Metrics: []Metric{{Name: "campaign-storm run failed", Paper: 0, Measured: 1, Tol: 1e-9}},
				Detail: err.Error()}
		}
		mixed := storm.Base
		tc := bench.ThroughputCampaign(p, "cosmoflow", 4)
		thr, err := bench.RunCampaign(p, tc, mlperfWorkers, ob)
		if err != nil {
			return Result{Metrics: []Metric{{Name: "throughput campaign failed", Paper: 0, Measured: 1, Tol: 1e-9}},
				Detail: err.Error()}
		}

		cf, _ := bench.Lookup("cosmoflow")
		ladder := bench.SweepNodes(p, 8)
		weak := bench.Sweep(p, cf, bench.WeakScaling, ladder)
		strong := bench.Sweep(p, cf, bench.StrongScaling, ladder)

		closed := 0
		for _, ir := range mixed.Instances {
			if ir.TTT.Converged && ir.Proxy.Converged {
				closed++
			}
		}
		makespanExcess := storm.Adaptive.Makespan - storm.Naive.Makespan
		if makespanExcess < 0 {
			makespanExcess = 0
		}
		inflation := 0.0
		if mixed.Sched.Makespan > 0 {
			inflation = storm.Naive.Makespan / mixed.Sched.Makespan
		}

		metrics := []Metric{
			{Name: "mixed campaign closed-division instances", Paper: float64(len(mixed.Instances)),
				Measured: float64(closed), Unit: "instances", Tol: 1e-9},
			{Name: "throughput-mode concurrent instances", Paper: 4,
				Measured: float64(thr.MaxConcurrent), Unit: "instances", Tol: 1e-9},
			{Name: "storm: adaptive makespan excess over no-ckpt", Paper: 0,
				Measured: float64(makespanExcess), Unit: "s", Tol: 1e-9},
			{Name: "mixed campaign utilization (busy span)", Measured: 100 * mixed.Sched.Utilization, Unit: "%"},
			{Name: "aggregate machine throughput (mixed)", Measured: mixed.AggThroughput, Unit: "samples/s"},
			{Name: "throughput-mode aggregate throughput", Measured: thr.AggThroughput, Unit: "samples/s"},
			{Name: "cosmoflow weak-scaling efficiency at ladder top",
				Measured: weak[len(weak)-1].Efficiency, Unit: "fraction"},
			{Name: "storm makespan inflation, no-ckpt vs failure-free", Measured: inflation, Unit: "ratio"},
		}

		var detail strings.Builder
		fmt.Fprintf(&detail, "  --- single-instance TTT ---\n")
		for _, w := range bench.Suite() {
			fmt.Fprintf(&detail, "    %v\n", bench.TimeToTrain(p, w, bench.ClosedNodes(p, w)))
		}
		fmt.Fprintf(&detail, "  --- scaling sweeps ---\n%s%s",
			indent(bench.RenderSweep(cf, bench.WeakScaling, weak)),
			indent(bench.RenderSweep(cf, bench.StrongScaling, strong)))
		fmt.Fprintf(&detail, "  --- mixed campaign ---\n%s", indent(mixed.Render()))
		fmt.Fprintf(&detail, "  --- throughput mode ---\n%s", indent(thr.Render()))
		fmt.Fprintf(&detail, "  --- campaign storm ---\n%s", indent(storm.Render()))

		return Result{Metrics: metrics, Detail: detail.String()}
	}
	e := Experiment{
		ID:    "S7",
		Title: "benchmark campaigns — MLPerf-HPC-style time-to-train, scaling sweeps, and throughput mode",
		PaperClaim: "leadership machines are measured by time-to-train on real science workloads: " +
			"closed-division TTT with data staging counted, efficiency across strong/weak scaling, " +
			"and multi-instance throughput mode where concurrent campaigns fill the machine — " +
			"and the measurement must survive the machine's real failure regime",
		Needs: []string{keyCampaignStorm(p)},
	}
	e = cachedExperiment(e, func(c *Cache) Result { return run(c, nil) })
	e.RunObs = func(ob *obs.Observer) Result { return run(nil, ob) }
	return e
}
