package core

import (
	"fmt"
	"math"
	"strings"

	"summitscale/internal/perf"
)

// RenderScalingSVG draws a study's weak-scaling efficiency curve
// (efficiency vs log2 nodes) as a self-contained SVG, with the paper's
// reported efficiency marked at the target node count when available.
func RenderScalingSVG(s ScalingStudy) string {
	pts := perf.ScalingCurve(s.Job, s.Curve)
	const (
		w, h                 = 560, 320
		padL, padR           = 70, 30
		padT, padB           = 50, 50
		plotW, plotH         = w - padL - padR, h - padT - padB
		yLo, yHi     float64 = 0.5, 1.02
	)
	xOf := func(nodes int) float64 {
		lo := math.Log2(float64(s.Curve[0]))
		hi := math.Log2(float64(s.Curve[len(s.Curve)-1]))
		if hi == lo {
			return float64(padL)
		}
		return float64(padL) + (math.Log2(float64(nodes))-lo)/(hi-lo)*float64(plotW)
	}
	yOf := func(eff float64) float64 {
		if eff < yLo {
			eff = yLo
		}
		if eff > yHi {
			eff = yHi
		}
		return float64(padT) + (yHi-eff)/(yHi-yLo)*float64(plotH)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "<svg xmlns='http://www.w3.org/2000/svg' width='%d' height='%d'>\n", w, h)
	fmt.Fprintf(&b, "<rect width='%d' height='%d' fill='white'/>\n", w, h)
	fmt.Fprintf(&b, "<text x='20' y='25' font-family='sans-serif' font-size='15' font-weight='bold'>%s</text>\n",
		xmlEsc(s.ID+": "+s.Name))
	// Axes.
	fmt.Fprintf(&b, "<line x1='%d' y1='%d' x2='%d' y2='%d' stroke='black'/>\n", padL, padT, padL, h-padB)
	fmt.Fprintf(&b, "<line x1='%d' y1='%d' x2='%d' y2='%d' stroke='black'/>\n", padL, h-padB, w-padR, h-padB)
	// Y gridlines at 60..100%.
	for e := 0.6; e <= 1.0; e += 0.1 {
		y := yOf(e)
		fmt.Fprintf(&b, "<line x1='%d' y1='%.1f' x2='%d' y2='%.1f' stroke='#eee'/>\n", padL, y, w-padR, y)
		fmt.Fprintf(&b, "<text x='%d' y='%.1f' text-anchor='end' font-family='sans-serif' font-size='11'>%.0f%%</text>\n",
			padL-6, y+4, 100*e)
	}
	// Curve.
	var poly []string
	for _, p := range pts {
		poly = append(poly, fmt.Sprintf("%.1f,%.1f", xOf(p.Nodes), yOf(p.Efficiency)))
	}
	fmt.Fprintf(&b, "<polyline points='%s' fill='none' stroke='#1565c0' stroke-width='2'/>\n",
		strings.Join(poly, " "))
	for _, p := range pts {
		fmt.Fprintf(&b, "<circle cx='%.1f' cy='%.1f' r='3.5' fill='#1565c0'/>\n", xOf(p.Nodes), yOf(p.Efficiency))
		fmt.Fprintf(&b, "<text x='%.1f' y='%d' text-anchor='middle' font-family='sans-serif' font-size='11'>%d</text>\n",
			xOf(p.Nodes), h-padB+16, p.Nodes)
	}
	// Paper reference point.
	if s.PaperEfficiency > 0 {
		x, y := xOf(s.AtNodes), yOf(s.PaperEfficiency)
		fmt.Fprintf(&b, "<circle cx='%.1f' cy='%.1f' r='5' fill='none' stroke='#c62828' stroke-width='2'/>\n", x, y)
		fmt.Fprintf(&b, "<text x='%.1f' y='%.1f' font-family='sans-serif' font-size='11' fill='#c62828'>paper %.1f%%</text>\n",
			x-80, y-10, 100*s.PaperEfficiency)
	}
	fmt.Fprintf(&b, "<text x='%d' y='%d' text-anchor='middle' font-family='sans-serif' font-size='12'>nodes (log scale)</text>\n",
		padL+plotW/2, h-12)
	b.WriteString("</svg>\n")
	return b.String()
}

func xmlEsc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", "'", "&apos;", `"`, "&quot;")
	return r.Replace(s)
}
