package core

import (
	"fmt"
	"strings"

	"summitscale/internal/models"
	"summitscale/internal/perf"
	"summitscale/internal/platform"
	"summitscale/internal/units"
)

// ScalingStudy is one §IV-B case: a calibrated perf.Job plus the paper's
// reported figures. Calibration knobs (overlap, jitter, accumulation)
// are documented per study; see EXPERIMENTS.md.
type ScalingStudy struct {
	ID, Name   string
	PaperClaim string
	Job        perf.Job
	BaseNodes  int
	AtNodes    int
	// Paper-reported values; zero means not reported.
	PaperEfficiency float64
	PaperFlops      units.FlopsPerSecond
	// Secondary no-I/O variant (Blanchard).
	NoIOJob             *perf.Job
	PaperNoIOEfficiency float64
	// Curve is the node schedule for the rendered scaling curve.
	Curve []int
}

// ScalingStudies returns the five §IV-B cases with calibrated models on
// the paper's baseline machine.
func ScalingStudies() []ScalingStudy {
	return ScalingStudiesOn(platform.Summit())
}

// ScalingStudiesOn returns the §IV-B cases replayed on the given
// platform. On the baseline the studies are byte-identical to the seed
// (locked by the golden tests). Elsewhere the node schedule is clamped to
// the machine's size, the input path falls back to the shared FS on
// diskless machines, and the paper's Summit-only reference values are
// dropped so the metrics render as informational.
func ScalingStudiesOn(p platform.Platform) []ScalingStudy {
	clamp := func(n int) int {
		if n > p.Nodes {
			return p.Nodes
		}
		return n
	}
	// Fastest training input path: node-local NVMe when present.
	nodeLocal := p.TrainingStore()
	sharedFS := p.GPFS()

	// S1 — Kurth et al.: DeepLabv3+/Tiramisu climate segmentation.
	// Gradient lag hides the fp16 allreduce; node-local NVMe feeds input;
	// 0.8%/doubling straggler jitter reproduces the 90.7% efficiency.
	kurth := p.Job(models.DeepLabV3Plus(), clamp(4560))
	kurth.GradLag = true
	kurth.Store = nodeLocal
	kurth.JitterPerDoubling = 0.008

	// S2 — Yang et al.: PI-GAN with model (2-way) + data parallelism.
	yang := p.Job(models.PIGAN(), clamp(4584))
	yang.ModelParallelWays = 2
	yang.OverlapComm = 0.9
	yang.Store = nodeLocal
	yang.JitterPerDoubling = 0.0055

	// S3 — Laanait et al.: FC-DenseNet with custom gradient-reduction
	// optimizations (modelled as near-total overlap).
	laanait := p.Job(models.FCDenseNet(), clamp(4600))
	laanait.OverlapComm = 0.95
	laanait.Store = nodeLocal
	laanait.JitterPerDoubling = 0.004

	// S4 — Khan et al.: WaveNet with LAMB, 8 -> 1024 nodes at 80%. The
	// dominant losses were input-pipeline and optimizer stragglers; jitter
	// is calibrated accordingly (3%/doubling) with modest overlap.
	khan := p.Job(models.WaveNetGW(), clamp(1024))
	khan.OverlapComm = 0.3
	khan.Store = sharedFS
	khan.JitterPerDoubling = 0.03

	// S5 — Blanchard et al.: BERT pretraining with gradient accumulation
	// and batch up to 5.8M. The with-I/O job charges an effective 1.35 MB
	// per sample (dataset re-reads plus synchronous checkpoint traffic)
	// against GPFS, reproducing the 68% vs 83.3% gap.
	blanchardNoIO := p.Job(models.BERTLarge(), clamp(4032))
	blanchardNoIO.AccumSteps = 8
	blanchardNoIO.OverlapComm = 0.65
	blanchardNoIO.JitterPerDoubling = 0.005

	blanchard := blanchardNoIO
	blanchard.Store = sharedFS
	ioModel := blanchard.Model
	ioModel.RecordBytes = units.Bytes(1.35 * 1e6)
	blanchard.Model = ioModel

	studies := []ScalingStudy{
		{
			ID: "S1", Name: "Kurth et al. — exascale climate analytics",
			PaperClaim: "4560 nodes, 1.13 EF mixed-precision peak, 90.7% parallel efficiency",
			Job:        kurth,
			BaseNodes:  1, AtNodes: 4560,
			PaperEfficiency: 0.907,
			PaperFlops:      1.13 * units.EFlops,
			Curve:           []int{1, 16, 64, 256, 1024, 4560},
		},
		{
			ID: "S2", Name: "Yang et al. — physics-informed GANs",
			PaperClaim: "4584 nodes, >1.2 EF mixed precision at 93% efficiency, model+data parallelism",
			Job:        yang,
			BaseNodes:  2, AtNodes: 4584,
			PaperEfficiency: 0.93,
			PaperFlops:      1.2 * units.EFlops,
			Curve:           []int{2, 16, 64, 256, 1024, 4584},
		},
		{
			ID: "S3", Name: "Laanait et al. — scientific inverse problems",
			PaperClaim: "4600 nodes, batch 27600, peak 2.15 EF mixed precision",
			Job:        laanait,
			BaseNodes:  1, AtNodes: 4600,
			PaperEfficiency: 0, // not reported
			PaperFlops:      2.15 * units.EFlops,
			Curve:           []int{1, 16, 64, 256, 1024, 4600},
		},
		{
			ID: "S4", Name: "Khan et al. — black-hole parameter inference",
			PaperClaim: "80% scaling efficiency from 8 to 1024 nodes with LAMB",
			Job:        khan,
			BaseNodes:  8, AtNodes: 1024,
			PaperEfficiency: 0.80,
			Curve:           []int{8, 32, 128, 512, 1024},
		},
		{
			ID: "S5", Name: "Blanchard et al. — SMILES language models",
			PaperClaim: "68% scaling 1→4032 nodes (83.3% without I/O), 603 PF at 4032 nodes",
			Job:        blanchard,
			BaseNodes:  1, AtNodes: 4032,
			PaperEfficiency:     0.68,
			PaperFlops:          603 * units.PFlops,
			NoIOJob:             &blanchardNoIO,
			PaperNoIOEfficiency: 0.833,
			Curve:               []int{1, 16, 64, 256, 1024, 4032},
		},
	}
	if !p.IsPaperBaseline() {
		for i := range studies {
			s := &studies[i]
			s.Name += fmt.Sprintf(" [replayed on %s]", p.Name)
			s.PaperClaim = fmt.Sprintf("Summit result: %s — replayed on %s without reference values",
				s.PaperClaim, p.Name)
			s.AtNodes = clamp(s.AtNodes)
			s.Curve = clampCurve(s.Curve, p.Nodes)
			// The paper's numbers were measured on Summit only; on other
			// machines the model output is informational.
			s.PaperEfficiency = 0
			s.PaperFlops = 0
			s.PaperNoIOEfficiency = 0
		}
	}
	return studies
}

// clampCurve caps a node schedule at the machine size, deduplicating the
// tail when several points collapse onto the cap.
func clampCurve(curve []int, max int) []int {
	out := make([]int, 0, len(curve))
	for _, n := range curve {
		if n > max {
			n = max
		}
		if len(out) > 0 && out[len(out)-1] == n {
			continue
		}
		out = append(out, n)
	}
	return out
}

// RunScalingStudy evaluates one study.
func RunScalingStudy(s ScalingStudy) Result {
	eff := perf.ParallelEfficiency(s.Job, s.BaseNodes, s.AtNodes)
	// Peak sustained rate: papers report the compute peak, so it is
	// measured on the no-I/O variant when one exists (Blanchard's 603 PF
	// is the training-kernel rate, not the I/O-throttled average).
	atJob := s.Job
	if s.NoIOJob != nil {
		atJob = *s.NoIOJob
	}
	atJob.Nodes = s.AtNodes
	flops := perf.SustainedFlops(atJob)

	var ms []Metric
	if s.PaperEfficiency > 0 {
		ms = append(ms, Metric{Name: "parallel efficiency", Paper: s.PaperEfficiency,
			Measured: eff, Tol: 0.10})
	} else {
		ms = append(ms, Metric{Name: "parallel efficiency", Measured: eff})
	}
	if s.PaperFlops > 0 {
		ms = append(ms, Metric{Name: "sustained mixed-precision rate",
			Paper: float64(s.PaperFlops), Measured: float64(flops), Unit: "Flop/s", Tol: 0.25})
	}
	if s.NoIOJob != nil {
		noIOEff := perf.ParallelEfficiency(*s.NoIOJob, s.BaseNodes, s.AtNodes)
		if s.PaperNoIOEfficiency > 0 {
			ms = append(ms, Metric{Name: "efficiency without I/O", Paper: s.PaperNoIOEfficiency,
				Measured: noIOEff, Tol: 0.10})
		} else {
			ms = append(ms, Metric{Name: "efficiency without I/O", Measured: noIOEff})
		}
		// The paper claims an I/O-induced efficiency gap on Summit only;
		// on a machine with a faster shared FS the gap can legitimately
		// vanish, so the consistency flag applies just where the
		// reference gap is recorded.
		if s.PaperNoIOEfficiency > 0 && noIOEff <= eff {
			ms = append(ms, Metric{Name: "I/O costs reduce efficiency (1=yes)", Paper: 1,
				Measured: 0, Tol: 1e-9})
		}
	}
	return Result{Metrics: ms, Detail: RenderScalingCurve(s)}
}

// RenderScalingCurve prints the weak-scaling table of a study.
func RenderScalingCurve(s ScalingStudy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s): weak scaling, per-GPU batch %d\n",
		s.Name, s.Job.Model.Name, s.Job.Model.PerGPUBatch)
	b.WriteString("  nodes   samples/s     sustained        efficiency  step breakdown\n")
	for _, pt := range perf.ScalingCurve(s.Job, s.Curve) {
		fmt.Fprintf(&b, "  %5d  %10.0f  %14v  %9.1f%%  %s\n",
			pt.Nodes, pt.Throughput, pt.Flops, 100*pt.Efficiency, pt.Step)
	}
	return b.String()
}

func scalingExperiments() []Experiment {
	return ScalingExperimentsOn(platform.Summit())
}

// ScalingExperimentsOn wraps each §IV-B study on the given platform as a
// runnable Experiment. The calibrated study set is a shared sub-result
// (RS1's checkpoint sweep reuses the S1/S5 run shapes), so each
// experiment declares it in Needs and resolves its own study through the
// cache by ID.
func ScalingExperimentsOn(p platform.Platform) []Experiment {
	var out []Experiment
	for _, s := range ScalingStudiesOn(p) {
		id := s.ID
		out = append(out, cachedExperiment(Experiment{
			ID:         id,
			Title:      "§IV-B scaling — " + s.Name,
			PaperClaim: s.PaperClaim,
			Needs:      []string{keyScalingStudies(p)},
		}, func(c *Cache) Result { return RunScalingStudy(studyByID(c, p, id)) }))
	}
	return out
}
