package core

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"summitscale/internal/platform"
)

// The platform refactor must not perturb the paper-baseline reports by a
// single byte: the golden files under testdata/ were captured from the
// pre-refactor Summit-only constructors.

func readGolden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("golden file: %v", err)
	}
	return string(b)
}

// TestSysreqGoldenSummit reproduces `summit-sysreq -platform summit`
// byte-for-byte: IO1 and C1 each followed by a blank line, then R1.
func TestSysreqGoldenSummit(t *testing.T) {
	exps := SysreqExperimentsOn(platform.Summit())
	var b strings.Builder
	for i, e := range exps {
		b.WriteString(RenderResult(e, e.Run()))
		if i < 2 {
			b.WriteString("\n")
		}
	}
	if got, want := b.String(), readGolden(t, "summit-sysreq.golden"); got != want {
		t.Errorf("summit sysreq report diverged from pre-refactor golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestScalingGoldenSummit pins the §IV-B scaling reports on the baseline.
func TestScalingGoldenSummit(t *testing.T) {
	exps := ScalingExperimentsOn(platform.Summit())
	for _, e := range exps {
		got := RenderResult(e, e.Run())
		want := readGolden(t, "scaling-"+e.ID+".golden")
		if got != want {
			t.Errorf("%s report diverged from pre-refactor golden:\n--- got ---\n%s\n--- want ---\n%s", e.ID, got, want)
		}
	}
}

// TestResilienceGoldenSummit pins the failure-model study on the
// baseline: the checkpoint-interval sweep and the fault-injected campaign
// are seeded, so their reports must be byte-identical across reruns, and
// the measured sweep optimum must sit within the Young/Daly tolerance
// (the in-report metric carries Tol 0.15 and Passed checks it).
func TestResilienceGoldenSummit(t *testing.T) {
	for _, e := range ResilienceExperimentsOn(platform.Summit()) {
		first := RenderResult(e, e.Run())
		if again := RenderResult(e, e.Run()); again != first {
			t.Errorf("%s report not reproducible across reruns at fixed seed", e.ID)
		}
		want := readGolden(t, "resilience-"+e.ID+".golden")
		if first != want {
			t.Errorf("%s report diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", e.ID, first, want)
		}
	}
}

// TestChaosGoldenSummit pins the adversarial-scenario study: RS3 and RS4
// are fully seeded, so their reports must be byte-identical across reruns
// and match the captured Summit goldens.
func TestChaosGoldenSummit(t *testing.T) {
	for _, e := range ChaosExperimentsOn(platform.Summit()) {
		first := RenderResult(e, e.Run())
		if again := RenderResult(e, e.Run()); again != first {
			t.Errorf("%s report not reproducible across reruns at fixed seed", e.ID)
		}
		want := readGolden(t, "chaos-"+e.ID+".golden")
		if first != want {
			t.Errorf("%s report diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", e.ID, first, want)
		}
	}
}

// TestServeGoldenSummit pins the serving study: S6 is fully seeded
// (model weights, user population, and chaos schedule all derive from
// serveSeed), so its report must be byte-identical across reruns and
// match the captured Summit golden.
func TestServeGoldenSummit(t *testing.T) {
	for _, e := range ServeExperimentsOn(platform.Summit()) {
		first := RenderResult(e, e.Run())
		if again := RenderResult(e, e.Run()); again != first {
			t.Errorf("%s report not reproducible across reruns at fixed seed", e.ID)
		}
		want := readGolden(t, "serve-"+e.ID+".golden")
		if first != want {
			t.Errorf("%s report diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", e.ID, first, want)
		}
	}
}

// TestMLPerfGoldenSummit pins the benchmark-campaign study: S7 is fully
// seeded (workload suite, campaign layout, proxy training, and storm
// schedule are pure functions of the platform and mlperfSeed), so its
// report must be byte-identical across reruns — at any evaluator width —
// and match the captured Summit golden.
func TestMLPerfGoldenSummit(t *testing.T) {
	for _, e := range MLPerfExperimentsOn(platform.Summit()) {
		first := RenderResult(e, e.Run())
		if again := RenderResult(e, e.Run()); again != first {
			t.Errorf("%s report not reproducible across reruns at fixed seed", e.ID)
		}
		want := readGolden(t, "mlperf-"+e.ID+".golden")
		if first != want {
			t.Errorf("%s report diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", e.ID, first, want)
		}
	}
}

// TestReportsFiniteOnAllPlatforms runs every sysreq and scaling
// experiment on every registered machine and rejects NaN/Inf metrics or
// empty reports.
func TestReportsFiniteOnAllPlatforms(t *testing.T) {
	for _, name := range platform.Names() {
		p, err := platform.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		exps := append(SysreqExperimentsOn(p), ScalingExperimentsOn(p)...)
		exps = append(exps, ResilienceExperimentsOn(p)...)
		exps = append(exps, ChaosExperimentsOn(p)...)
		exps = append(exps, ServeExperimentsOn(p)...)
		exps = append(exps, MLPerfExperimentsOn(p)...)
		if len(exps) != 15 {
			t.Fatalf("%s: want 15 experiments, got %d", name, len(exps))
		}
		for _, e := range exps {
			res := e.Run()
			if len(res.Metrics) == 0 {
				t.Errorf("%s/%s: no metrics", name, e.ID)
			}
			for _, m := range res.Metrics {
				if math.IsNaN(m.Measured) || math.IsInf(m.Measured, 0) {
					t.Errorf("%s/%s: metric %q is not finite: %v", name, e.ID, m.Name, m.Measured)
				}
			}
			if strings.TrimSpace(res.Detail) == "" {
				t.Errorf("%s/%s: empty detail", name, e.ID)
			}
			if out := RenderResult(e, res); strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
				t.Errorf("%s/%s: rendered report contains NaN/Inf:\n%s", name, e.ID, out)
			}
		}
	}
}

// TestFrontierCrossoverDiffers checks the acceptance criterion that the
// replayed communication analysis is actually sensitive to the machine:
// the ring/recursive-doubling crossover moves with the fabric parameters.
func TestFrontierCrossoverDiffers(t *testing.T) {
	summit := platform.Summit().Fabric()
	frontier := platform.MustLookup("frontier").Fabric()
	cs := summit.RingTreeCrossover(4096)
	cf := frontier.RingTreeCrossover(4096)
	if cs == cf {
		t.Errorf("crossover identical on summit and frontier (%v); platform parameters not threaded through", cs)
	}
}
