package core

import (
	"fmt"
	"strings"

	"summitscale/internal/machine"
	"summitscale/internal/models"
	"summitscale/internal/netsim"
	"summitscale/internal/perf"
	"summitscale/internal/storage"
	"summitscale/internal/units"
)

func sysreqExperiments() []Experiment {
	return []Experiment{ioExperiment(), commExperiment(), rooflineExperiment()}
}

// rooflineExperiment reproduces §VI-B's device-level claim: AI/ML
// workloads reduce to convolution, recurrent operations, and matrix
// multiplication, are "typically computational bound at the device
// level" for the matrix-like kernels, and "high floating point rates for
// model training require large matrix sizes".
func rooflineExperiment() Experiment {
	return Experiment{
		ID:         "R1",
		Title:      "§VI-B roofline — the three basic operation classes on a V100",
		PaperClaim: "conv/matmul compute-bound at training sizes; recurrent/elementwise memory-bound; high rates need large matrices",
		Run: func() Result {
			r := perf.V100Roofline()
			var b strings.Builder
			fmt.Fprintf(&b, "V100 tensor roofline: peak %v, HBM %v, ridge %.0f flops/byte\n",
				r.Peak, units.BytesPerSecond(r.MemBW), r.RidgeIntensity())
			b.WriteString("  kernel            intensity   attainable\n")
			type k struct {
				name string
				kind string
				n    int
			}
			for _, kk := range []k{
				{"matmul n=64", "matmul", 64},
				{"matmul n=1024", "matmul", 1024},
				{"conv (training tiles)", "conv", 2048},
				{"recurrent/elementwise", "recurrent", 0},
			} {
				in := perf.KernelIntensity(kk.kind, kk.n)
				fmt.Fprintf(&b, "  %-20s %9.1f  %12v\n", kk.name, in, r.Attainable(in))
			}
			bigMatmul := r.ComputeBound(perf.KernelIntensity("matmul", 1024))
			conv := r.ComputeBound(perf.KernelIntensity("conv", 2048))
			recurrent := r.ComputeBound(perf.KernelIntensity("recurrent", 0))
			smallMatmul := r.ComputeBound(perf.KernelIntensity("matmul", 64))
			return Result{
				Metrics: []Metric{
					{Name: "ridge intensity", Paper: 125e12 / 900e9, Measured: r.RidgeIntensity(), Unit: "flop/B", Tol: 0.01},
					{Name: "large matmul compute-bound (1=yes)", Paper: 1, Measured: boolMetric(bigMatmul), Tol: 1e-9},
					{Name: "large conv compute-bound (1=yes)", Paper: 1, Measured: boolMetric(conv), Tol: 1e-9},
					{Name: "recurrent memory-bound (1=yes)", Paper: 1, Measured: boolMetric(!recurrent), Tol: 1e-9},
					{Name: "small matmul memory-bound (1=yes)", Paper: 1, Measured: boolMetric(!smallMatmul), Tol: 1e-9},
				},
				Detail: b.String(),
			}
		},
	}
}

// ioExperiment reproduces §VI-B's I/O analysis: full-Summit data-parallel
// ResNet-50 needs ~20 TB/s aggregate read bandwidth; GPFS (2.5 TB/s)
// cannot sustain it; node-local NVMe (>27 TB/s) can.
func ioExperiment() Experiment {
	return Experiment{
		ID:         "IO1",
		Title:      "§VI-B I/O — training input bandwidth on full Summit",
		PaperClaim: "ResNet-50 needs ~20 TB/s; GPFS provides 2.5 TB/s; NVMe aggregate exceeds 27 TB/s",
		Run: func() Result {
			summit := machine.Summit()
			m := models.ResNet50()
			req := storage.TrainingReadRequirement(summit.TotalGPUs(), m.SingleGPUThroughput, m.RecordBytes)
			gpfs := storage.NewGPFS()
			nvme := storage.NewNVMe()
			gpfsBW := gpfs.ReadBW(summit.Nodes)
			nvmeBW := nvme.ReadBW(summit.Nodes)
			_, gpfsFrac := storage.Sustains(gpfs, summit.Nodes, req)
			okNVMe, _ := storage.Sustains(nvme, summit.Nodes, req)

			var b strings.Builder
			b.WriteString("Training input requirement vs. available bandwidth (full Summit):\n")
			fmt.Fprintf(&b, "  required (ResNet-50, %d GPUs x %.0f samples/s x %v): %v\n",
				summit.TotalGPUs(), m.SingleGPUThroughput, m.RecordBytes, req)
			fmt.Fprintf(&b, "  GPFS aggregate read:  %v  -> sustains %.0f%% of need\n", gpfsBW, 100*gpfsFrac)
			fmt.Fprintf(&b, "  NVMe aggregate read:  %v  -> sustains training: %v\n", nvmeBW, okNVMe)
			stager := storage.NewStager()
			for _, ds := range []units.Bytes{10 * units.TB, 200 * units.TB} {
				plan, err := stager.PlanFor(ds, summit.Nodes)
				if err != nil {
					fmt.Fprintf(&b, "  staging %v: %v\n", ds, err)
					continue
				}
				fmt.Fprintf(&b, "  staging %v (plan %d): %v, per-epoch shuffle %v\n",
					ds, plan, stager.StagingTime(ds, summit.Nodes, plan),
					stager.EpochShuffleTime(ds, summit.Nodes, plan))
			}
			return Result{
				Metrics: []Metric{
					{Name: "required aggregate read bw", Paper: 20e12, Measured: float64(req), Unit: "B/s", Tol: 0.1},
					{Name: "GPFS aggregate read bw", Paper: 2.5e12, Measured: float64(gpfsBW), Unit: "B/s", Tol: 0.01},
					{Name: "NVMe aggregate read bw", Paper: 27e12, Measured: float64(nvmeBW), Unit: "B/s", Tol: 0.05},
					{Name: "GPFS sustains (1=yes)", Paper: 0, Measured: boolMetric(gpfsFrac >= 1), Tol: 1e-9},
					{Name: "NVMe sustains (1=yes)", Paper: 1, Measured: boolMetric(okNVMe), Tol: 1e-9},
				},
				Detail: b.String(),
			}
		},
	}
}

// commExperiment reproduces §VI-B's communication analysis: ResNet-50's
// ~100 MB allreduce takes ~8 ms at 12.5 GB/s algorithm bandwidth and hides
// under computation; BERT-large's ~1.4 GB takes ~110 ms, comparable to its
// per-batch compute, so larger models become communication-bound.
func commExperiment() Experiment {
	return Experiment{
		ID:         "C1",
		Title:      "§VI-B communication — allreduce cost vs model size",
		PaperClaim: "ring algorithm bw 12.5 GB/s; ResNet-50 ~8 ms, BERT-large ~110 ms; BERT-large is the data-parallel crossover",
		Run: func() Result {
			f := netsim.SummitFabric()
			summit := machine.Summit()
			resnet := models.ResNet50()
			bert := models.BERTLarge()
			tRes := f.RingAllReduce(summit.Nodes, resnet.GradientBytes())
			tBert := f.RingAllReduce(4032, bert.GradientBytes())
			algoBW := f.RingAlgorithmBW(summit.Nodes, units.Bytes(1*units.GB))
			bertCompute := bert.StepComputeTime()

			var b strings.Builder
			b.WriteString("Ring allreduce on Summit fabric (per-device gradients):\n")
			fmt.Fprintf(&b, "  algorithm bandwidth (large msgs): %v\n", algoBW)
			fmt.Fprintf(&b, "  %-12s %10v gradient -> %v\n", resnet.Name, resnet.GradientBytes(), tRes)
			fmt.Fprintf(&b, "  %-12s %10v gradient -> %v (per-batch compute %v)\n",
				bert.Name, bert.GradientBytes(), tBert, bertCompute)
			b.WriteString("  allreduce algorithm selection by message size (4096 nodes):\n")
			for _, sz := range []units.Bytes{1 * units.KB, 1 * units.MB, 100 * units.MB, 1.4 * units.GB} {
				algo, t := f.BestAllReduce(4096, sz)
				fmt.Fprintf(&b, "    %10v -> %-18s %v\n", sz, algo, t)
			}
			return Result{
				Metrics: []Metric{
					{Name: "ring algorithm bandwidth", Paper: 12.5e9, Measured: float64(algoBW), Unit: "B/s", Tol: 0.1},
					{Name: "ResNet-50 allreduce time", Paper: 0.008, Measured: float64(tRes), Unit: "s", Tol: 0.25},
					{Name: "BERT-large allreduce time", Paper: 0.110, Measured: float64(tBert), Unit: "s", Tol: 0.15},
					{Name: "BERT comm comparable to compute (1=yes)", Paper: 1,
						Measured: boolMetric(float64(tBert) > 0.5*float64(bertCompute)), Tol: 1e-9},
				},
				Detail: b.String(),
			}
		},
	}
}
