package core

import (
	"fmt"
	"strings"

	"summitscale/internal/models"
	"summitscale/internal/obs"
	"summitscale/internal/perf"
	"summitscale/internal/platform"
	"summitscale/internal/storage"
	"summitscale/internal/units"
)

func sysreqExperiments() []Experiment {
	return SysreqExperimentsOn(platform.Summit())
}

// SysreqExperimentsOn returns the §VI-B system-requirement analyses (I/O,
// communication, device roofline) evaluated on the given platform. On the
// paper's baseline the experiments carry the paper's reference values and
// render byte-identically to the seed report (locked by the golden
// tests); on other platforms the same analyses run with informational
// metrics, since the paper reports Summit numbers only.
func SysreqExperimentsOn(p platform.Platform) []Experiment {
	return []Experiment{ioExperiment(p), commExperiment(p), rooflineExperiment(p)}
}

// refMetric keeps the paper reference on the baseline platform and
// downgrades the metric to informational elsewhere.
func refMetric(ref bool, m Metric) Metric {
	if !ref {
		m.Paper, m.Tol = 0, 0
	}
	return m
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// rooflineExperiment reproduces §VI-B's device-level claim: AI/ML
// workloads reduce to convolution, recurrent operations, and matrix
// multiplication, are "typically computational bound at the device
// level" for the matrix-like kernels, and "high floating point rates for
// model training require large matrix sizes".
func rooflineExperiment(p platform.Platform) Experiment {
	ref := p.IsPaperBaseline()
	fam := p.Node.GPU.Family()
	return Experiment{
		ID:         "R1",
		Title:      fmt.Sprintf("§VI-B roofline — the three basic operation classes on a %s", fam),
		PaperClaim: "conv/matmul compute-bound at training sizes; recurrent/elementwise memory-bound; high rates need large matrices",
		Run: func() Result {
			r := p.Roofline()
			var b strings.Builder
			fmt.Fprintf(&b, "%s tensor roofline: peak %v, HBM %v, ridge %.0f flops/byte\n",
				fam, r.Peak, units.BytesPerSecond(r.MemBW), r.RidgeIntensity())
			b.WriteString("  kernel            intensity   attainable\n")
			type k struct {
				name string
				kind string
				n    int
			}
			for _, kk := range []k{
				{"matmul n=64", "matmul", 64},
				{"matmul n=1024", "matmul", 1024},
				{"conv (training tiles)", "conv", 2048},
				{"recurrent/elementwise", "recurrent", 0},
			} {
				in := perf.KernelIntensity(kk.kind, kk.n)
				fmt.Fprintf(&b, "  %-20s %9.1f  %12v\n", kk.name, in, r.Attainable(in))
			}
			bigMatmul := r.ComputeBound(perf.KernelIntensity("matmul", 1024))
			conv := r.ComputeBound(perf.KernelIntensity("conv", 2048))
			recurrent := r.ComputeBound(perf.KernelIntensity("recurrent", 0))
			smallMatmul := r.ComputeBound(perf.KernelIntensity("matmul", 64))
			return Result{
				Metrics: []Metric{
					refMetric(ref, Metric{Name: "ridge intensity", Paper: 125e12 / 900e9, Measured: r.RidgeIntensity(), Unit: "flop/B", Tol: 0.01}),
					refMetric(ref, Metric{Name: "large matmul compute-bound (1=yes)", Paper: 1, Measured: boolMetric(bigMatmul), Tol: 1e-9}),
					refMetric(ref, Metric{Name: "large conv compute-bound (1=yes)", Paper: 1, Measured: boolMetric(conv), Tol: 1e-9}),
					refMetric(ref, Metric{Name: "recurrent memory-bound (1=yes)", Paper: 1, Measured: boolMetric(!recurrent), Tol: 1e-9}),
					refMetric(ref, Metric{Name: "small matmul memory-bound (1=yes)", Paper: 1, Measured: boolMetric(!smallMatmul), Tol: 1e-9}),
				},
				Detail: b.String(),
			}
		},
	}
}

// ioExperiment reproduces §VI-B's I/O analysis: full-Summit data-parallel
// ResNet-50 needs ~20 TB/s aggregate read bandwidth; GPFS (2.5 TB/s)
// cannot sustain it; node-local NVMe (>27 TB/s) can. On other platforms
// the same requirement is weighed against that machine's storage paths.
func ioExperiment(p platform.Platform) Experiment {
	ref := p.IsPaperBaseline()
	claim := "ResNet-50 needs ~20 TB/s; GPFS provides 2.5 TB/s; NVMe aggregate exceeds 27 TB/s"
	if !ref {
		claim = fmt.Sprintf("§VI-B I/O analysis replayed on %s (no paper reference values)", p.Name)
	}
	run := func(ob *obs.Observer) Result {
		mach := p.Machine
		m := models.ResNet50()
		req := storage.TrainingReadRequirement(mach.TotalGPUs(), m.SingleGPUThroughput, m.RecordBytes)
		gpfs := p.GPFS()
		gpfsBW := gpfs.ReadBW(mach.Nodes)
		_, gpfsFrac := storage.Sustains(gpfs, mach.Nodes, req)

		var b strings.Builder
		fmt.Fprintf(&b, "Training input requirement vs. available bandwidth (full %s):\n", mach.Name)
		fmt.Fprintf(&b, "  required (ResNet-50, %d GPUs x %.0f samples/s x %v): %v\n",
			mach.TotalGPUs(), m.SingleGPUThroughput, m.RecordBytes, req)
		fmt.Fprintf(&b, "  GPFS aggregate read:  %v  -> sustains %.0f%% of need\n", gpfsBW, 100*gpfsFrac)

		ms := []Metric{
			refMetric(ref, Metric{Name: "required aggregate read bw", Paper: 20e12, Measured: float64(req), Unit: "B/s", Tol: 0.1}),
			refMetric(ref, Metric{Name: "GPFS aggregate read bw", Paper: 2.5e12, Measured: float64(gpfsBW), Unit: "B/s", Tol: 0.01}),
		}
		if p.HasNodeLocal() {
			nvme := p.NVMe()
			nvmeBW := nvme.ReadBW(mach.Nodes)
			okNVMe, _ := storage.Sustains(nvme, mach.Nodes, req)
			fmt.Fprintf(&b, "  NVMe aggregate read:  %v  -> sustains training: %v\n", nvmeBW, okNVMe)
			stager := p.Stager()
			for _, ds := range []units.Bytes{10 * units.TB, 200 * units.TB} {
				plan, err := stager.PlanFor(ds, mach.Nodes)
				if err != nil {
					fmt.Fprintf(&b, "  staging %v: %v\n", ds, err)
					continue
				}
				fmt.Fprintf(&b, "  staging %v (plan %d): %v, per-epoch shuffle %v\n",
					ds, plan, stager.ObservedStagingTime(ob, ds, mach.Nodes, plan),
					stager.EpochShuffleTime(ds, mach.Nodes, plan))
			}
			ms = append(ms,
				refMetric(ref, Metric{Name: "NVMe aggregate read bw", Paper: 27e12, Measured: float64(nvmeBW), Unit: "B/s", Tol: 0.05}),
				refMetric(ref, Metric{Name: "GPFS sustains (1=yes)", Paper: 0, Measured: boolMetric(gpfsFrac >= 1), Tol: 1e-9}),
				refMetric(ref, Metric{Name: "NVMe sustains (1=yes)", Paper: 1, Measured: boolMetric(okNVMe), Tol: 1e-9}),
			)
		} else {
			b.WriteString("  no node-local storage on this machine; the shared FS is the only input path\n")
			ms = append(ms,
				refMetric(ref, Metric{Name: "GPFS sustains (1=yes)", Paper: 0, Measured: boolMetric(gpfsFrac >= 1), Tol: 1e-9}),
			)
		}
		return Result{Metrics: ms, Detail: b.String()}
	}
	return Experiment{
		ID:         "IO1",
		Title:      fmt.Sprintf("§VI-B I/O — training input bandwidth on full %s", p.Name),
		PaperClaim: claim,
		Run:        func() Result { return run(nil) },
		RunObs:     run,
	}
}

// commExperiment reproduces §VI-B's communication analysis: ResNet-50's
// ~100 MB allreduce takes ~8 ms at 12.5 GB/s algorithm bandwidth and hides
// under computation; BERT-large's ~1.4 GB takes ~110 ms, comparable to its
// per-batch compute, so larger models become communication-bound.
func commExperiment(p platform.Platform) Experiment {
	ref := p.IsPaperBaseline()
	claim := "ring algorithm bw 12.5 GB/s; ResNet-50 ~8 ms, BERT-large ~110 ms; BERT-large is the data-parallel crossover"
	if !ref {
		claim = fmt.Sprintf("§VI-B communication analysis replayed on %s", p.Name)
	}
	run := func(ob *obs.Observer) Result {
		f := p.Fabric()
		mach := p.Machine
		resnet := models.ResNet50()
		bert := models.BERTLarge()
		bertNodes := minInt(4032, mach.Nodes)
		selNodes := minInt(4096, mach.Nodes)
		tRes := f.ObservedRingAllReduce(ob, "comm", 0, mach.Nodes, resnet.GradientBytes())
		tBert := f.ObservedRingAllReduce(ob, "comm", tRes, bertNodes, bert.GradientBytes())
		if ob != nil {
			// Replay the BERT-large allreduce with a mid-collective node
			// loss so the trace shows the wasted/rebuild/redo decomposition
			// (§IV-B's failure mode). Gated on the observer: the report
			// itself never depends on it.
			f.ObservedAllReduceWithNodeLoss(ob, "comm-loss", 0,
				bertNodes, bert.GradientBytes(), 0.5, 0.5)
		}
		algoBW := f.RingAlgorithmBW(mach.Nodes, units.Bytes(1*units.GB))
		bertCompute := bert.StepComputeTime()

		var b strings.Builder
		fmt.Fprintf(&b, "Ring allreduce on %s fabric (per-device gradients):\n", mach.Name)
		fmt.Fprintf(&b, "  algorithm bandwidth (large msgs): %v\n", algoBW)
		fmt.Fprintf(&b, "  %-12s %10v gradient -> %v\n", resnet.Name, resnet.GradientBytes(), tRes)
		fmt.Fprintf(&b, "  %-12s %10v gradient -> %v (per-batch compute %v)\n",
			bert.Name, bert.GradientBytes(), tBert, bertCompute)
		fmt.Fprintf(&b, "  allreduce algorithm selection by message size (%d nodes):\n", selNodes)
		for _, sz := range []units.Bytes{1 * units.KB, 1 * units.MB, 100 * units.MB, 1.4 * units.GB} {
			algo, t := f.BestAllReduce(selNodes, sz)
			fmt.Fprintf(&b, "    %10v -> %-18s %v\n", sz, algo, t)
		}
		ms := []Metric{
			refMetric(ref, Metric{Name: "ring algorithm bandwidth", Paper: 12.5e9, Measured: float64(algoBW), Unit: "B/s", Tol: 0.1}),
			refMetric(ref, Metric{Name: "ResNet-50 allreduce time", Paper: 0.008, Measured: float64(tRes), Unit: "s", Tol: 0.25}),
			refMetric(ref, Metric{Name: "BERT-large allreduce time", Paper: 0.110, Measured: float64(tBert), Unit: "s", Tol: 0.15}),
			refMetric(ref, Metric{Name: "BERT comm comparable to compute (1=yes)", Paper: 1,
				Measured: boolMetric(float64(tBert) > 0.5*float64(bertCompute)), Tol: 1e-9}),
		}
		if !ref {
			// The baseline report is byte-frozen by the golden tests, so
			// the explicit crossover point is surfaced only on the other
			// machines, where it is the headline difference.
			cross := f.RingTreeCrossover(selNodes)
			fmt.Fprintf(&b, "  ring/recursive-doubling crossover at %d nodes: %v\n", selNodes, cross)
			ms = append(ms, Metric{Name: "ring/doubling crossover message size", Measured: float64(cross), Unit: "B"})
		}
		return Result{Metrics: ms, Detail: b.String()}
	}
	return Experiment{
		ID:         "C1",
		Title:      "§VI-B communication — allreduce cost vs model size",
		PaperClaim: claim,
		Run:        func() Result { return run(nil) },
		RunObs:     run,
	}
}
