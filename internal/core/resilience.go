package core

import (
	"fmt"
	"math"
	"os"
	"strings"

	"summitscale/internal/autograd"
	"summitscale/internal/ddl"
	"summitscale/internal/faults"
	"summitscale/internal/nn"
	"summitscale/internal/obs"
	"summitscale/internal/optim"
	"summitscale/internal/perf"
	"summitscale/internal/platform"
	"summitscale/internal/stats"
	"summitscale/internal/storage"
	"summitscale/internal/tensor"
	"summitscale/internal/units"
	"summitscale/internal/workflow"
)

// The resilience study: the machine is no longer failure-free. Fault
// traces from internal/faults (seeded, so every number below is byte
// -reproducible) interrupt the paper's full-Summit run shapes, and the
// checkpoint cadence that survives them is swept and compared against the
// Young/Daly first-order optimum sqrt(2·δ·MTBF).

// resilienceSeed roots every RNG in this file; traces derive from it.
const resilienceSeed = 20220523 // the paper's IPDPS year+month+day

func resilienceExperiments() []Experiment {
	return ResilienceExperimentsOn(platform.Summit())
}

// ResilienceExperimentsOn returns the failure-model experiments replayed
// on the given platform: RS1 (checkpoint-interval sweep vs Young/Daly on
// the §IV-B run shapes) and RS2 (fault-injected campaign retries plus an
// executable elastic-training run). On the baseline the paper-reference
// tolerances apply; elsewhere metrics keep their structural targets (the
// Young/Daly law is machine-independent).
func ResilienceExperimentsOn(p platform.Platform) []Experiment {
	return []Experiment{
		checkpointSweepExperiment(p),
		campaignResilienceExperiment(p),
	}
}

// ckptShape derives the checkpoint/restart run shape of a scaling study:
// the synchronous checkpoint stall δ (rank quiesce + model and optimizer
// state through one writer node) and the restart cost (relaunch, state
// read-back, and burst-buffer re-stage on machines with node-local
// drives).
func ckptShape(p platform.Platform, job perf.Job) faults.RunShape {
	const (
		quiesce  = units.Seconds(2)  // barrier + kernel drain before the write
		relaunch = units.Seconds(60) // scheduler re-slot + job re-exec
		// Checkpoint state: fp32 master weights + two optimizer moments +
		// the fp32 gradients buffer = 16 bytes per parameter.
		bytesPerParam = 16
		// Nominal staged dataset re-built on a replacement node (the
		// §VI-B hyperparameter-search staging volume).
		nominalDataset = 10 * units.TB
	)
	state := units.Bytes(job.Model.Params * bytesPerParam)
	writeBW := p.FS.WriteBW
	if cap := p.Node.InjectionBW; cap > 0 && cap < writeBW {
		writeBW = cap // one writer rank cannot exceed its own NIC
	}
	readBW := p.FS.ReadBW
	if cap := p.Node.InjectionBW; cap > 0 && cap < readBW {
		readBW = cap
	}
	restart := relaunch + units.Seconds(float64(state)/float64(readBW))
	if p.HasNodeLocal() {
		restart += p.Stager().ReStageTime(nominalDataset, job.Nodes, storage.PartitionDataset)
	}
	return faults.RunShape{
		TotalWork:      24 * units.Hour, // one full-machine INCITE shot
		CheckpointCost: quiesce + units.Seconds(float64(state)/float64(writeBW)),
		RestartCost:    restart,
	}
}

// checkpointSweepExperiment is RS1: sweep the checkpoint interval for the
// Kurth (S1) and Blanchard (S5) full-machine run shapes against seeded
// failure traces and compare the measured optimum with Young/Daly.
func checkpointSweepExperiment(p platform.Platform) Experiment {
	ref := p.IsPaperBaseline()
	run := func(c *Cache, ob *obs.Observer) Result {
		params := faults.ParamsFor(p.Machine, 0)
		var metrics []Metric
		var detail strings.Builder
		fmt.Fprintf(&detail, "  failure model: per-node MTBF %v -> system MTBF %v at %d nodes\n",
			params.NodeMTBF, params.SystemMTBF(), params.Nodes)

		for _, sc := range []struct {
			id    string
			study ScalingStudy
		}{
			{"Kurth", studyByID(c, p, "S1")},
			{"Blanchard", studyByID(c, p, "S5")},
		} {
			job := sc.study.Job
			shape := ckptShape(p, job)
			jp := faults.ParamsFor(p.Machine, job.Nodes)
			daly := faults.DalyInterval(shape.CheckpointCost, jp.SystemMTBF())

			// Common random numbers: the same trace set across every
			// interval keeps the sweep smooth and the argmin stable.
			traces := make([]*faults.Trace, 160)
			for i := range traces {
				traces[i] = jp.Generate(resilienceSeed+uint64(i), 2*shape.TotalWork)
			}
			grid := faults.GeometricIntervals(daly/8, daly*8, 33)
			pts := faults.Sweep(shape, grid, traces)
			best := faults.Optimum(pts)

			if ob != nil && sc.id == "Kurth" {
				// Representative replay for the trace: the measured-optimum
				// cadence against the first trace, emitting work/checkpoint/
				// lost-work/restart spans on the job clock.
				faults.SimulateObserved(shape, best.Interval, traces[0], ob)
			}

			idealEff := 1 / (1 + faults.DalyOverhead(daly, shape.CheckpointCost, jp.SystemMTBF()))
			metrics = append(metrics,
				Metric{
					Name:     sc.id + ": measured/Daly optimal interval",
					Paper:    1,
					Measured: float64(best.Interval) / float64(daly),
					Unit:     "ratio",
					Tol:      0.15,
				},
				refMetric(ref, Metric{
					Name:     sc.id + ": achieved/ideal throughput",
					Paper:    1,
					Measured: best.Efficiency / idealEff,
					Unit:     "ratio",
					Tol:      0.05,
				}),
				Metric{
					Name:     sc.id + ": failures per 24h run",
					Measured: best.MeanFailures,
					Unit:     "faults",
				},
			)
			fmt.Fprintf(&detail, "  -- %s (%s, %d nodes): delta=%.1fs restart=%.0fs MTBF=%v\n",
				sc.id, job.Model.Name, job.Nodes, float64(shape.CheckpointCost),
				float64(shape.RestartCost), jp.SystemMTBF())
			detail.WriteString(renderSweepCompact(pts, daly))
		}
		return Result{Metrics: metrics, Detail: detail.String()}
	}
	return Experiment{
		ID:    "RS1",
		Title: "§IV-B resilience — checkpoint/restart under node failures",
		PaperClaim: "near-full-machine runs survive node failures every few hours; " +
			"checkpoint cadence balances write cost against lost work (Young/Daly)",
		Needs:  []string{keyScalingStudies(p)},
		Run:    func() Result { return run(nil, nil) },
		RunIn:  func(c *Cache) Result { return run(c, nil) },
		RunObs: func(ob *obs.Observer) Result { return run(nil, ob) },
	}
}

// renderSweepCompact prints every fourth sweep point plus the measured
// optimum, to keep the report readable.
func renderSweepCompact(pts []faults.SweepPoint, daly units.Seconds) string {
	var b strings.Builder
	best := faults.Optimum(pts)
	fmt.Fprintf(&b, "  %10s %12s %10s %10s %8s\n", "interval", "mean wall", "overhead", "failures", "eff")
	for i, pt := range pts {
		if i%4 != 0 && pt.Interval != best.Interval {
			continue
		}
		mark := ""
		if pt.Interval == best.Interval {
			mark = "  <- measured optimum"
		}
		fmt.Fprintf(&b, "  %9.0fs %11.0fs %9.2f%% %10.2f %7.1f%%%s\n",
			float64(pt.Interval), float64(pt.MeanWall), 100*pt.Overhead,
			pt.MeanFailures, 100*pt.Efficiency, mark)
	}
	fmt.Fprintf(&b, "  Young/Daly sqrt(2*delta*MTBF) = %.0fs\n", float64(daly))
	return b.String()
}

// studyByID picks one of the platform's §IV-B scaling studies, resolving
// the study set through the sub-result cache.
func studyByID(c *Cache, p platform.Platform, id string) ScalingStudy {
	for _, s := range cachedScalingStudies(c, p) {
		if s.ID == id {
			return s
		}
	}
	panic("core: unknown scaling study " + id)
}

// campaignResilienceExperiment is RS2: a §V campaign re-run with
// trace-driven task failures feeding the retry policy (attempt counts and
// backoff totals now surfaced), plus an executable elastic data-parallel
// run that loses a rank mid-flight, restores from its checkpoint, and
// still matches uninterrupted training.
func campaignResilienceExperiment(p platform.Platform) Experiment {
	run := func(ob *obs.Observer) Result {
		var metrics []Metric
		var detail strings.Builder

		// --- Campaign under a trace. A 32-node steering allocation;
		// the per-node interrupt rate is scaled 1000x above the
		// hardware MTBF because campaign tasks also die to queue
		// eviction and preemption, not just node crashes.
		cp := faults.ParamsFor(p.Machine, 32)
		cp.NodeMTBF /= 1000
		trace := cp.Generate(resilienceSeed, 48*units.Hour)

		inj := workflow.NewTraceInjector(trace, 6*units.Hour)
		inj.Obs = ob
		st := &workflow.RetryStats{}
		policy := workflow.RetryPolicy{MaxAttempts: 25, Backoff: 30, Stats: st, Obs: ob}
		in := &workflow.Instrument{Obs: ob, Window: 6 * units.Hour}
		w := workflow.New()
		stages := []string{"stage-in", "simulate", "embed", "select", "train", "resample", "analyze", "publish"}
		for i, name := range stages {
			t := &workflow.Task{Name: name, Run: policy.Wrap(name, in.Wrap(name, inj.Wrap(name, nil)))}
			if i > 0 {
				t.Deps = []string{stages[i-1]}
			}
			w.MustAdd(t)
		}
		completed := 1.0
		if err := w.Run(workflow.NewContext()); err != nil {
			completed = 0
		}
		snap := st.Snapshot()
		metrics = append(metrics,
			Metric{Name: "campaign completes under faults (1=yes)", Paper: 1,
				Measured: completed, Unit: "bool", Tol: 1e-9},
			Metric{Name: "task faults injected from trace", Measured: float64(inj.Injected), Unit: "faults"},
			Metric{Name: "retry attempts across campaign", Measured: float64(snap.Attempts), Unit: "attempts"},
			Metric{Name: "simulated backoff total", Measured: float64(snap.BackoffTotal), Unit: "s"},
		)
		fmt.Fprintf(&detail, "  campaign trace: %s\n  retry policy:   %s\n", trace.Summary(), snap)

		// --- Elastic training: 4 ranks, 6 steps, checkpoint every 2;
		// the trace's first failure (mapped onto the step clock, one
		// step per 10 simulated minutes) kills two ranks — the shrunken
		// world must still divide the 8-sample batch. The committed
		// model must match uninterrupted serial training exactly.
		const steps, lr = 6, 0.2
		ep := faults.ParamsFor(p.Machine, 4)
		ep.NodeMTBF = 8 * units.Hour // unit-scale demonstration run
		etrace := elasticTraceWithFailure(ep, 10*units.Minute, steps)
		failStep := int(etrace.FailureTimes()[0] / (10 * units.Minute))
		dir, err := os.MkdirTemp("", "summitscale-elastic-")
		if err != nil {
			return Result{Metrics: []Metric{{Name: "elastic tempdir failed", Paper: 0, Measured: 1, Tol: 1e-9}},
				Detail: err.Error()}
		}
		defer os.RemoveAll(dir)

		serial := elasticSerialParams(steps, lr)
		res, err := ddl.RunElastic(ddl.ElasticConfig{
			Ranks: 4, Steps: steps, CheckpointEvery: 2,
			FailAtStep: map[int]int{failStep: 2},
			Dir:        dir,
			Obs:        ob, StepTime: 10 * units.Minute,
		}, elasticModel, func() optim.Optimizer { return optim.NewSGD(lr) }, elasticLossFn())
		if err != nil {
			return Result{Metrics: []Metric{{Name: "elastic run failed", Paper: 0, Measured: 1, Tol: 1e-9}},
				Detail: err.Error()}
		}
		maxDiff := 0.0
		for i := range serial {
			if d := math.Abs(res.FinalParams[i] - serial[i]); d > maxDiff {
				maxDiff = d
			}
		}
		metrics = append(metrics,
			Metric{Name: "elastic vs uninterrupted max param delta", Paper: 0,
				Measured: maxDiff, Unit: "", Tol: 1e-9},
			Metric{Name: "lost steps re-done after restore", Measured: float64(res.LostSteps), Unit: "steps"},
			Metric{Name: "surviving ranks after failure", Measured: float64(res.FinalRanks), Unit: "ranks"},
		)
		fmt.Fprintf(&detail,
			"  elastic run:    rank failure at step %d of %d; %d restore(s); %d -> %d ranks; %d step(s) of lost work re-done\n",
			failStep, steps, res.Restores, 4, res.FinalRanks, res.LostSteps)
		return Result{Metrics: metrics, Detail: detail.String()}
	}
	return Experiment{
		ID:    "RS2",
		Title: "§V resilience — fault-injected campaign retries + elastic training",
		PaperClaim: "campaign orchestrators retry failed stages through node loss; " +
			"training restores from checkpoints without changing the learned model",
		Run:    func() Result { return run(nil) },
		RunObs: run,
	}
}

// elasticTraceWithFailure searches seeds (deterministically, from the
// study root) for a trace whose first fatal failure lands strictly inside
// the step window, so the demonstration always exercises a restore.
func elasticTraceWithFailure(p faults.Params, stepTime units.Seconds, steps int) *faults.Trace {
	horizon := stepTime * units.Seconds(steps)
	for seed := uint64(resilienceSeed); ; seed++ {
		tr := p.Generate(seed, horizon)
		ft := tr.FailureTimes()
		if len(ft) > 0 && int(ft[0]/stepTime) > 0 && int(ft[0]/stepTime) < steps {
			return tr
		}
	}
}

// The elastic demonstration trains the ddl test model: an MLP on a fixed
// 8-sample batch, sharded evenly over the live world size.
func elasticModel() nn.Module {
	return nn.NewMLP(stats.NewRNG(42), []int{4, 8, 3}, autograd.Tanh)
}

func elasticBatch() (*tensor.Tensor, []int) {
	return tensor.Randn(stats.NewRNG(7), 1, 8, 4), []int{0, 1, 2, 0, 1, 2, 0, 1}
}

func elasticLossFn() func(rank, world, step, micro int, m nn.Module) *autograd.Value {
	x, labels := elasticBatch()
	return func(rank, world, step, micro int, m nn.Module) *autograd.Value {
		per := 8 / world
		lo := rank * per
		out := m.(*nn.Sequential).Forward(autograd.Constant(x.Slice2DRows(lo, lo+per)))
		return autograd.SoftmaxCrossEntropy(out, labels[lo:lo+per])
	}
}

// elasticSerialParams trains the same model serially on the whole batch.
func elasticSerialParams(steps int, lr float64) []float64 {
	m := elasticModel()
	x, labels := elasticBatch()
	opt := optim.NewSGD(lr)
	for s := 0; s < steps; s++ {
		nn.ZeroGrads(m)
		out := m.(*nn.Sequential).Forward(autograd.Constant(x))
		loss := autograd.SoftmaxCrossEntropy(out, labels)
		loss.Backward(nil)
		opt.Step(m.Params())
	}
	return ddl.FlattenParams(m.Params())
}
