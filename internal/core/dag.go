package core

import (
	"strings"
	"sync"

	"summitscale/internal/bench"
	"summitscale/internal/chaos"
	"summitscale/internal/obs"
	"summitscale/internal/parallel"
	"summitscale/internal/platform"
	"summitscale/internal/portfolio"
	"summitscale/internal/units"
)

// The dependency-DAG experiment engine. The registry used to be a flat
// list run by a bounded pool, which recomputed every shared intermediate
// inside each experiment: F1–F6 each regenerated the reconstructed
// portfolio, RS1 re-derived the §IV-B scaling studies, and RS4 re-ran
// the same chaos scenarios RS3 had already simulated at the same seed.
// Experiments now declare the sub-results they consume (Experiment.
// Needs), each sub-result is a node in a parallel.RunDAG graph computed
// once and memoized in a keyed Cache, and experiment bodies resolve
// shared work through the cache instead of rebuilding it. Rendered
// output is byte-identical to the flat path at any -j: every section is
// written to its own slot and concatenated in registry order, and every
// cached value is a deterministic pure function of its key.

// Cache is the keyed sub-result store shared by a DAG run (and, via
// Engine, across runs). A nil *Cache is valid and means "no
// memoization": get simply builds. Values must be treated as immutable
// by all consumers.
type Cache struct {
	mu   sync.Mutex
	vals map[string]any
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{vals: map[string]any{}} }

// get returns the cached value for key, building and storing it on a
// miss. Concurrent misses may build twice; the first store wins, so
// callers always observe one canonical value. (The DAG engine orders
// sub-result nodes before their consumers, so in practice builds are
// never concurrent for the same key.)
func (c *Cache) get(key string, build func() any) any {
	if c == nil {
		return build()
	}
	c.mu.Lock()
	if v, ok := c.vals[key]; ok {
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	v := build()
	c.mu.Lock()
	if prev, ok := c.vals[key]; ok {
		v = prev
	} else {
		c.vals[key] = v
	}
	c.mu.Unlock()
	return v
}

// has reports whether key is already memoized.
func (c *Cache) has(key string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.vals[key]
	return ok
}

// Len returns the number of memoized entries (observability/tests).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.vals)
}

// Sub-result cache keys. Keys are namespaced "sub/..." (shared
// intermediates, one DAG node each) and "result/<ID>" (whole-experiment
// memoization, handled by the engine). Platform-dependent keys embed the
// platform name so replays on other machines never collide with the
// Summit baseline.
const keyPortfolio = "sub/portfolio/dataset"

func keyScalingStudies(p platform.Platform) string {
	return "sub/scaling/studies/" + p.Name
}

func keyChaosReport(p platform.Platform, scenario string) string {
	return "sub/chaos/report/" + p.Name + "/" + scenario
}

func keyCampaignStorm(p platform.Platform) string {
	return "sub/bench/campaign-storm/" + p.Name
}

// keySDCReport is platform-free: the guarded-training ablation injects
// bit flips into an executable run and never consults the fabric, so
// every machine shares one canonical report.
func keySDCReport() string {
	return "sub/chaos/sdc/sdc-storm"
}

// cachedStudy resolves the canonical reconstructed portfolio dataset
// (the Figure 1–6 input) through the cache.
func cachedStudy(c *Cache) *portfolio.Dataset {
	return c.get(keyPortfolio, func() any { return portfolio.Generate(StudySeed) }).(*portfolio.Dataset)
}

// cachedScalingStudies resolves the §IV-B calibrated scaling studies for
// a platform through the cache.
func cachedScalingStudies(c *Cache, p platform.Platform) []ScalingStudy {
	return c.get(keyScalingStudies(p), func() any { return ScalingStudiesOn(p) }).([]ScalingStudy)
}

// chaosOutcome carries a chaos scenario run through the cache; the error
// is part of the memoized value so retries are as deterministic as
// successes.
type chaosOutcome struct {
	rep *chaos.Report
	err error
}

// cachedChaosReport resolves one unobserved chaos scenario run (RS3's
// sweep and RS4's policy comparisons share these at the same seed).
func cachedChaosReport(c *Cache, p platform.Platform, scenario string) (*chaos.Report, error) {
	out := c.get(keyChaosReport(p, scenario), func() any {
		sc, err := chaos.Builtin(scenario)
		if err != nil {
			return chaosOutcome{nil, err}
		}
		rep, err := chaos.Run(sc, resilienceSeed, chaos.Config{Platform: p})
		return chaosOutcome{rep, err}
	}).(chaosOutcome)
	return out.rep, out.err
}

// campaignStormOutcome carries the chaos-campaign replay through the
// cache; the error is part of the memoized value.
type campaignStormOutcome struct {
	rep *chaos.CampaignChaosReport
	err error
}

// cachedCampaignStorm resolves the campaign-storm replay (which embeds
// the failure-free mixed campaign as its Base) for a platform. Observed
// runs bypass the cache so campaign spans are re-recorded per run.
func cachedCampaignStorm(c *Cache, p platform.Platform, ob *obs.Observer) (*chaos.CampaignChaosReport, error) {
	if ob != nil {
		rep, err := chaos.RunCampaign(p, chaos.CampaignStorm(), mlperfSeed, bench.DefaultCampaign(p), mlperfWorkers, ob)
		return rep, err
	}
	out := c.get(keyCampaignStorm(p), func() any {
		rep, err := chaos.RunCampaign(p, chaos.CampaignStorm(), mlperfSeed, bench.DefaultCampaign(p), mlperfWorkers, nil)
		return campaignStormOutcome{rep, err}
	}).(campaignStormOutcome)
	return out.rep, out.err
}

// sdcOutcome carries the silent-data-corruption ablation through the
// cache; the error is part of the memoized value.
type sdcOutcome struct {
	rep *chaos.SDCReport
	err error
}

// cachedSDCReport resolves the guarded-training SDC ablation of one
// scenario at the study seed.
func cachedSDCReport(c *Cache, scenario string) (*chaos.SDCReport, error) {
	out := c.get(keySDCReport(), func() any {
		sc, err := chaos.Builtin(scenario)
		if err != nil {
			return sdcOutcome{nil, err}
		}
		rep, err := chaos.RunSDC(sc, resilienceSeed, chaos.SDCConfig{})
		return sdcOutcome{rep, err}
	}).(sdcOutcome)
	return out.rep, out.err
}

// cachedExperiment wires a cache-aware body as both the plain Run and
// the DAG RunIn of an experiment: Run is the body with no memoization.
func cachedExperiment(e Experiment, body func(c *Cache) Result) Experiment {
	e.Run = func() Result { return body(nil) }
	e.RunIn = body
	return e
}

// subResultNode is one shared-intermediate node of the experiment DAG.
type subResultNode struct {
	key  string
	deps []string
	run  func(c *Cache)
}

// subResultNodes enumerates every shared intermediate the registry's
// experiments may declare in Needs, for the given platform.
func subResultNodes(p platform.Platform) []subResultNode {
	nodes := []subResultNode{
		{key: keyPortfolio, run: func(c *Cache) { cachedStudy(c) }},
		{key: keyScalingStudies(p), run: func(c *Cache) { cachedScalingStudies(c, p) }},
	}
	for _, name := range chaos.Names() {
		name := name
		nodes = append(nodes, subResultNode{
			key: keyChaosReport(p, name),
			run: func(c *Cache) { cachedChaosReport(c, p, name) },
		})
	}
	nodes = append(nodes, subResultNode{
		key: keyCampaignStorm(p),
		run: func(c *Cache) { cachedCampaignStorm(c, p, nil) },
	})
	nodes = append(nodes, subResultNode{
		key: keySDCReport(),
		run: func(c *Cache) { cachedSDCReport(c, "sdc-storm") },
	})
	return nodes
}

// Engine runs the registry through the DAG scheduler with a persistent
// sub-result cache: the first run computes every node once (shared
// intermediates deduplicated across experiments), subsequent runs reuse
// memoized results — the MLPerf-HPC "multi-instance" framing where
// shared setup work must not be redundantly recomputed per instance.
// An Engine is safe for concurrent use.
type Engine struct{ cache *Cache }

// NewEngine returns an engine with a cold cache.
func NewEngine() *Engine { return &Engine{cache: NewCache()} }

// Cache exposes the engine's memo store (tests and diagnostics).
func (en *Engine) Cache() *Cache { return en.cache }

// RunAllParallel executes the full registry through the DAG scheduler
// with at most workers goroutines and renders the report in registry
// order, byte-identical at any worker count and any cache temperature.
func (en *Engine) RunAllParallel(workers int) (string, bool) {
	return en.run(Experiments(), workers, nil)
}

// RunAllObserved is RunAllParallel with every instrumented experiment
// recording into ob. Observed runs bypass the cache entirely — spans
// must be re-recorded per run, and observation must never change the
// report — and additionally emit one deterministic "dag" span per
// scheduled node, carrying its declared dependencies.
func (en *Engine) RunAllObserved(workers int, ob *obs.Observer) (string, bool) {
	return en.run(Experiments(), workers, ob)
}

func (en *Engine) run(exps []Experiment, workers int, ob *obs.Observer) (string, bool) {
	sections := make([]string, len(exps))
	passed := make([]bool, len(exps))
	var nodes []parallel.Node
	if ob == nil {
		cache := en.cache
		need := map[string]bool{}
		for _, e := range exps {
			for _, k := range e.Needs {
				need[k] = true
			}
		}
		for _, sn := range subResultNodes(platform.Summit()) {
			if !need[sn.key] {
				continue
			}
			sn := sn
			nodes = append(nodes, parallel.Node{
				ID:   sn.key,
				Deps: sn.deps,
				Run:  func() { sn.run(cache) },
			})
		}
		for i := range exps {
			i, e := i, exps[i]
			nodes = append(nodes, parallel.Node{
				ID:   "exp/" + e.ID,
				Deps: e.Needs,
				Run: func() {
					r := cache.get("result/"+e.ID, func() any { return e.runIn(cache) }).(Result)
					sections[i] = RenderResult(e, r) + "\n"
					passed[i] = r.Pass()
				},
			})
		}
	} else {
		for i := range exps {
			i, e := i, exps[i]
			nodes = append(nodes, parallel.Node{
				ID: "exp/" + e.ID,
				Run: func() {
					ob.Span("dag", "schedule", "exp/"+e.ID,
						units.Seconds(i), 1, obs.Str("needs", strings.Join(e.Needs, ",")))
					r := e.RunWith(ob)
					sections[i] = RenderResult(e, r) + "\n"
					passed[i] = r.Pass()
				},
			})
		}
	}
	if err := parallel.NewPool(workers).RunDAG(nodes); err != nil {
		// The registry's graph is static and validated by tests; a
		// malformed graph here is a programming error.
		panic(err)
	}
	var b strings.Builder
	all := true
	for i, s := range sections {
		b.WriteString(s)
		if !passed[i] {
			all = false
		}
	}
	return b.String(), all
}
