package core

import (
	"fmt"
	"strings"

	"summitscale/internal/autograd"
	"summitscale/internal/nn"
	"summitscale/internal/stats"
	"summitscale/internal/tensor"
	"summitscale/internal/trust"
)

// trustExperiment demonstrates the §VI-A "AI/ML method needs" as working
// mechanisms: exact constraint satisfaction by final correction, OOD
// detection by calibrated reconstruction error, and input-gradient
// explanations.
func trustExperiment() Experiment {
	return Experiment{
		ID:         "V1",
		Title:      "§VI-A method needs — constraints, generalizability, explainability",
		PaperClaim: "constraints imposable exactly by final correction; OOD inputs detectable; models can show their work",
		Run: func() Result {
			rng := stats.NewRNG(41)
			var b strings.Builder

			// 1. Constraint satisfaction: conserve row totals exactly.
			pred := tensor.Randn(rng, 1, 8, 5)
			totals := make([]float64, 8)
			for i := range totals {
				totals[i] = float64(i)
			}
			before := trust.ConstraintViolation(pred, totals)
			after := trust.ConstraintViolation(trust.EnforceSumConstraint(pred, totals), totals)
			fmt.Fprintf(&b, "conservation defect: %.3g before, %.3g after correction\n", before, after)

			// 2. OOD detection: calibrate on a 2-D manifold, test both sides.
			mk := func(seed uint64, n int) *tensor.Tensor {
				r := stats.NewRNG(seed)
				out := tensor.New(n, 6)
				b1 := []float64{1, 0.5, -0.3, 0.2, 0.8, -0.1}
				b2 := []float64{-0.2, 0.9, 0.4, -0.5, 0.1, 0.7}
				for i := 0; i < n; i++ {
					a, c := r.NormFloat64(), r.NormFloat64()
					for j := 0; j < 6; j++ {
						out.Set(a*b1[j]+c*b2[j]+r.NormFloat64()*0.05, i, j)
					}
				}
				return out
			}
			train := mk(42, 64)
			ae := nn.NewAutoencoder(stats.NewRNG(43), 6, []int{16}, 2)
			x := autograd.Constant(train)
			for step := 0; step < 400; step++ {
				nn.ZeroGrads(ae)
				loss := autograd.MSE(ae.Forward(x), train)
				loss.Backward(nil)
				for _, p := range ae.Params() {
					wd, gd := p.Value.Data.Data(), p.Value.Grad.Data()
					for i := range wd {
						wd[i] -= 0.05 * gd[i]
					}
				}
			}
			det := trust.Calibrate(ae, mk(44, 64), 0.95)
			countFlags := func(t *tensor.Tensor) int {
				n := 0
				for _, f := range det.Flag(t) {
					if f {
						n++
					}
				}
				return n
			}
			inFlags := countFlags(mk(45, 40))
			oodFlags := countFlags(tensor.Randn(stats.NewRNG(46), 2, 40, 6))
			fmt.Fprintf(&b, "OOD flags: %d/40 in-distribution, %d/40 off-manifold\n", inFlags, oodFlags)

			// 3. Explainability: saliency isolates the informative feature.
			probe := tensor.FromSlice([]float64{0.5, -1, 2, 0.3}, 1, 4)
			sal := trust.Saliency(probe, func(leaf *autograd.Value) *autograd.Value {
				w := autograd.Constant(tensor.FromSlice([]float64{0, 0, 3, 0}, 4, 1))
				return autograd.Sum(autograd.Square(autograd.MatMul(leaf, w)))
			})
			conc := trust.TopSalientFraction(sal, 1)
			fmt.Fprintf(&b, "saliency concentration on the single informative feature: %.2f\n", conc)

			return Result{
				Metrics: []Metric{
					{Name: "constraint defect after correction", Paper: 0, Measured: after, Tol: 1e-9},
					{Name: "OOD detection separates (1=yes)", Paper: 1,
						Measured: boolMetric(oodFlags > 30 && inFlags < 10), Tol: 1e-9},
					{Name: "saliency isolates informative input (1=yes)", Paper: 1,
						Measured: boolMetric(conc == 1), Tol: 1e-9},
				},
				Detail: b.String(),
			}
		},
	}
}
