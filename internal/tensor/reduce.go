package tensor

import (
	"fmt"
	"math"
)

// SumAxis0 returns the column sums of a rank-2 tensor as a length-N vector.
func (t *Tensor) SumAxis0() *Tensor {
	if t.Rank() != 2 {
		panic("tensor: SumAxis0 of non-matrix")
	}
	m, n := t.shape[0], t.shape[1]
	r := newIn(t.arena, []int{n})
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		for j, x := range row {
			r.data[j] += x
		}
	}
	return r
}

// SumAxis1 returns the row sums of a rank-2 tensor as a length-M vector.
func (t *Tensor) SumAxis1() *Tensor {
	if t.Rank() != 2 {
		panic("tensor: SumAxis1 of non-matrix")
	}
	m, n := t.shape[0], t.shape[1]
	r := newIn(t.arena, []int{m})
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		var s float64
		for _, x := range row {
			s += x
		}
		r.data[i] = s
	}
	return r
}

// ArgMaxRows returns, for a rank-2 (M, N) tensor, the index of the maximum
// element in each row.
func (t *Tensor) ArgMaxRows() []int {
	if t.Rank() != 2 {
		panic("tensor: ArgMaxRows of non-matrix")
	}
	m, n := t.shape[0], t.shape[1]
	out := make([]int, m)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		best := 0
		for j, x := range row {
			if x > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// SoftmaxRows returns the row-wise softmax of a rank-2 tensor, computed with
// the max-subtraction trick for numerical stability.
func (t *Tensor) SoftmaxRows() *Tensor {
	if t.Rank() != 2 {
		panic("tensor: SoftmaxRows of non-matrix")
	}
	m, n := t.shape[0], t.shape[1]
	r := newIn(t.arena, []int{m, n})
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		out := r.data[i*n : (i+1)*n]
		mx := row[0]
		for _, x := range row[1:] {
			if x > mx {
				mx = x
			}
		}
		var sum float64
		for j, x := range row {
			e := math.Exp(x - mx)
			out[j] = e
			sum += e
		}
		for j := range out {
			out[j] /= sum
		}
	}
	return r
}

// MeanAxis0 returns the column means of a rank-2 tensor.
func (t *Tensor) MeanAxis0() *Tensor {
	r := t.SumAxis0()
	return r.ScaleInPlace(1 / float64(t.shape[0]))
}

// Slice2DRows returns rows [lo, hi) of a rank-2 tensor as a view.
func (t *Tensor) Slice2DRows(lo, hi int) *Tensor {
	if t.Rank() != 2 {
		panic("tensor: Slice2DRows of non-matrix")
	}
	if lo < 0 || hi > t.shape[0] || lo >= hi {
		panic(fmt.Sprintf("tensor: Slice2DRows [%d,%d) of %v", lo, hi, t.shape))
	}
	n := t.shape[1]
	return viewIn(t.arena, []int{hi - lo, n}, t.data[lo*n:hi*n])
}

// Concat2DRows stacks rank-2 tensors with equal column counts vertically.
func Concat2DRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Concat2DRows of nothing")
	}
	n := ts[0].shape[1]
	rows := 0
	for _, t := range ts {
		if t.Rank() != 2 || t.shape[1] != n {
			panic("tensor: Concat2DRows column mismatch")
		}
		rows += t.shape[0]
	}
	r := newIn(ts[0].arena, []int{rows, n})
	off := 0
	for _, t := range ts {
		copy(r.data[off:], t.data)
		off += len(t.data)
	}
	return r
}
