package tensor

import (
	"testing"
	"testing/quick"

	"summitscale/internal/stats"
)

// TestPackedMatchesRowStream pins the dispatch-table contract: the packed
// kernel is bit-identical to the row-streamed kernel (not merely close),
// because both accumulate each output element's k-terms in ascending
// order with the same zero-skip. Any drift here would let MatMul's size
// dispatch perturb goldens.
func TestPackedMatchesRowStream(t *testing.T) {
	rng := stats.NewRNG(11)
	for _, dims := range [][3]int{
		{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {64, 64, 64}, {65, 63, 67},
		{128, 1, 128}, {1, 200, 1}, {130, 70, 190}, {129, 513, 33}, {256, 256, 256},
	} {
		m, k, n := dims[0], dims[1], dims[2]
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		want := New(m, n)
		matmulRows(want.Data(), a.Data(), b.Data(), 0, m, k, n)
		got := New(m, n)
		matMulPackedInto(got.Data(), a.Data(), b.Data(), m, k, n)
		if !got.Equal(want, 0) {
			t.Fatalf("packed kernel not bit-identical to row-stream at dims %v", dims)
		}
	}
}

// TestPackedMatchesRowStreamSparse repeats the bit-identity check with
// zero-heavy operands, exercising the zero-skip branches (including the
// -0/+0 corner the skip exists to preserve).
func TestPackedMatchesRowStreamSparse(t *testing.T) {
	rng := stats.NewRNG(13)
	m, k, n := 90, 130, 70
	a := New(m, k)
	b := New(k, n)
	for _, x := range []*Tensor{a, b} {
		d := x.Data()
		for i := range d {
			switch rng.Intn(4) {
			case 0:
				d[i] = rng.NormFloat64()
			case 1:
				d[i] = 0
			case 2:
				d[i] = -d[i] // stays ±0 or flips an earlier value
			}
		}
	}
	want := New(m, n)
	matmulRows(want.Data(), a.Data(), b.Data(), 0, m, k, n)
	got := New(m, n)
	matMulPackedInto(got.Data(), a.Data(), b.Data(), m, k, n)
	if !got.Equal(want, 0) {
		t.Fatal("packed kernel drifts from row-stream on sparse operands")
	}
}

// TestPackedMatchesNaiveProperty cross-checks the packed kernel against
// the independent naive kernel on random shapes.
func TestPackedMatchesNaiveProperty(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		rng := stats.NewRNG(uint64(seed))
		m := rng.Intn(60) + 1
		k := rng.Intn(60) + 1
		n := rng.Intn(60) + 1
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		want := New(m, n)
		matmulNaive(want.Data(), a.Data(), b.Data(), m, k, n)
		got := New(m, n)
		matMulPackedInto(got.Data(), a.Data(), b.Data(), m, k, n)
		return got.Equal(want, 1e-9)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPackedEveryKC pins that the panel depth is pure performance: every
// autotune candidate yields bit-identical output (the per-element
// accumulation order is ascending k regardless of where panels split).
func TestPackedEveryKC(t *testing.T) {
	rng := stats.NewRNG(17)
	m, k, n := 70, 600, 50
	a := Randn(rng, 1, m, k)
	b := Randn(rng, 1, k, n)
	want := New(m, n)
	matmulRows(want.Data(), a.Data(), b.Data(), 0, m, k, n)
	for _, kc := range append(gemmKCCandidates[:], 1, 7, 600, 1000) {
		got := New(m, n)
		packed := packB(b.Data(), k, n, kc)
		gemmPackedRows(got.Data(), a.Data(), packed, 0, m, k, n, kc)
		putPackBuf(packed)
		if !got.Equal(want, 0) {
			t.Fatalf("KC=%d not bit-identical to row-stream", kc)
		}
	}
}

// TestGemmBitIdenticalAcrossKC is the determinism contract behind
// SetGemmKC: pinning any autotune candidate (the knob CI and benchmarks
// use to silence the wall-clock autotune) leaves both the f64 packed
// path and the f32 fast path bit-identical to the autotuned run. KC is
// performance-only; if this ever fails, the autotune's run-to-run
// variance becomes a correctness hazard instead of a timing nuisance.
func TestGemmBitIdenticalAcrossKC(t *testing.T) {
	defer SetGemmKC(0)
	rng := stats.NewRNG(29)
	m, k, n := 130, 700, 90 // packed band, k spanning several panels
	a := Randn(rng, 1, m, k)
	b := Randn(rng, 1, k, n)
	SetGemmKC(0) // autotuned baseline
	want64 := a.MatMul(b)
	want32 := a.MatMulF32(b)
	for _, kc := range gemmKCCandidates {
		SetGemmKC(kc)
		if got := GemmKC(); got != kc {
			t.Fatalf("GemmKC() = %d after SetGemmKC(%d)", got, kc)
		}
		if !a.MatMul(b).Equal(want64, 0) {
			t.Fatalf("KC=%d: f64 MatMul not bit-identical to autotuned run", kc)
		}
		if !a.MatMulF32(b).Equal(want32, 0) {
			t.Fatalf("KC=%d: f32 MatMul not bit-identical to autotuned run", kc)
		}
	}
	SetGemmKC(0)
	if kc := GemmKC(); kc <= 0 {
		t.Fatalf("autotuned KC = %d after clearing the pin", kc)
	}
}

// TestGemmKCFromEnv pins the env-override parse: only well-formed
// positive integers pin the panel depth.
func TestGemmKCFromEnv(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{
		{"", 0}, {"256", 256}, {"1", 1}, {"0", 0}, {"-8", 0}, {"fast", 0}, {"1e3", 0},
	} {
		if got := gemmKCFromEnv(tc.in); got != tc.want {
			t.Errorf("gemmKCFromEnv(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestMatMulDispatchIdentical pins that MatMul's size dispatch never
// changes bytes: products straddling both thresholds equal the
// sequential row-stream kernel exactly.
func TestMatMulDispatchIdentical(t *testing.T) {
	rng := stats.NewRNG(19)
	for _, dims := range [][3]int{
		{8, 8, 8},       // below parallel threshold
		{80, 80, 80},    // parallel row-stream band
		{160, 160, 160}, // packed band
	} {
		m, k, n := dims[0], dims[1], dims[2]
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		want := New(m, n)
		matmulRows(want.Data(), a.Data(), b.Data(), 0, m, k, n)
		if !a.MatMul(b).Equal(want, 0) {
			t.Fatalf("MatMul dispatch changed bytes at dims %v", dims)
		}
	}
}

// TestMatMulF32MatchesTiledF32 pins that the packed f32 fast path
// computes exactly what the tiled f32 kernel computes (same narrow
// arithmetic in the same per-element order).
func TestMatMulF32MatchesTiledF32(t *testing.T) {
	rng := stats.NewRNG(23)
	for _, dims := range [][3]int{{3, 4, 5}, {65, 63, 67}, {130, 270, 190}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		if !a.MatMulF32(b).Equal(a.MatMulTiledF32(b), 0) {
			t.Fatalf("packed f32 differs from tiled f32 at dims %v", dims)
		}
	}
}

func TestMatMulF32ArenaInheritance(t *testing.T) {
	ar := NewArena()
	a := FullIn(ar, 1, 8, 8)
	if a.MatMulF32(Full(1, 8, 8)).Arena() != ar {
		t.Fatal("MatMulF32 result did not inherit the arena")
	}
}

func TestMatMulF32DimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(2, 3).MatMulF32(New(2, 3))
}

// BenchmarkGemmParallel256 is the packed parallel kernel the MatMul
// dispatch table selects at this size — the floor rule pair with
// BenchmarkGemmRowStream256 (summit-bench -check enforces >=2x at >=4
// workers; on fewer cores the rule is skipped, since the win is
// worker-level parallelism on top of packing).
func BenchmarkGemmParallel256(b *testing.B) {
	rng := stats.NewRNG(1)
	a := Randn(rng, 1, 256, 256)
	bb := Randn(rng, 1, 256, 256)
	dst := New(256, 256)
	b.SetBytes(int64(2 * 256 * 256 * 256 * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Zero()
		matMulPackedInto(dst.Data(), a.Data(), bb.Data(), 256, 256, 256)
	}
}

// BenchmarkGemmParallelF32_256 is the f32 fast path of the packed
// runtime, conversion cost included.
func BenchmarkGemmParallelF32_256(b *testing.B) {
	rng := stats.NewRNG(1)
	a := Randn(rng, 1, 256, 256)
	bb := Randn(rng, 1, 256, 256)
	b.SetBytes(int64(2 * 256 * 256 * 256 * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MatMulF32(bb)
	}
}
