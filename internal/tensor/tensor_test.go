package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"summitscale/internal/stats"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Size() != 6 || x.Rank() != 2 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatalf("bad metadata: %v", x)
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New not zero-filled")
		}
	}
}

func TestFromSliceAndAt(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if x.At(0, 0) != 1 || x.At(0, 2) != 3 || x.At(1, 0) != 4 || x.At(1, 2) != 6 {
		t.Fatalf("At wrong: %v", x)
	}
	x.Set(9, 1, 1)
	if x.At(1, 1) != 9 {
		t.Fatal("Set failed")
	}
}

func TestFromSliceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Set(42, 0)
	if x.At(0, 0) != 42 {
		t.Fatal("Reshape did not share data")
	}
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone shares data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{4, 3, 2, 1}, 2, 2)
	if got := a.Add(b); !got.Equal(Full(5, 2, 2), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); !got.Equal(FromSlice([]float64{-3, -1, 1, 3}, 2, 2), 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b); !got.Equal(FromSlice([]float64{4, 6, 6, 4}, 2, 2), 0) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Div(b); !got.Equal(FromSlice([]float64{0.25, 2. / 3, 1.5, 4}, 2, 2), 1e-15) {
		t.Errorf("Div = %v", got)
	}
	if got := a.Scale(2); !got.Equal(FromSlice([]float64{2, 4, 6, 8}, 2, 2), 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.AddScalar(1); !got.Equal(FromSlice([]float64{2, 3, 4, 5}, 2, 2), 0) {
		t.Errorf("AddScalar = %v", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(2, 2).Add(New(2, 3))
}

func TestAddRowBroadcast(t *testing.T) {
	m := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	row := FromSlice([]float64{10, 20, 30}, 3)
	got := m.AddRow(row)
	want := FromSlice([]float64{11, 22, 33, 14, 25, 36}, 2, 3)
	if !got.Equal(want, 0) {
		t.Fatalf("AddRow = %v", got)
	}
}

func TestNormSumMean(t *testing.T) {
	x := FromSlice([]float64{3, 4}, 2)
	if x.Norm() != 5 {
		t.Errorf("Norm = %v", x.Norm())
	}
	if x.Sum() != 7 || x.Mean() != 3.5 {
		t.Errorf("Sum/Mean wrong")
	}
	if x.MaxAbs() != 4 {
		t.Errorf("MaxAbs = %v", x.MaxAbs())
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := a.MatMul(b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !got.Equal(want, 1e-12) {
		t.Fatalf("MatMul = %v", got)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := stats.NewRNG(1)
	a := Randn(rng, 1, 5, 5)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(1, i, i)
	}
	if got := a.MatMul(id); !got.Equal(a, 1e-12) {
		t.Fatal("A*I != A")
	}
}

// TestMatMulParallelMatchesSequential checks that the goroutine fan-out path
// produces exactly the row-band results of the sequential kernel.
func TestMatMulParallelMatchesSequential(t *testing.T) {
	rng := stats.NewRNG(2)
	m, k, n := 97, 83, 71 // above the parallel threshold, awkward sizes
	a := Randn(rng, 1, m, k)
	b := Randn(rng, 1, k, n)
	got := a.MatMul(b)
	want := New(m, n)
	matmulRows(want.Data(), a.Data(), b.Data(), 0, m, k, n)
	if !got.Equal(want, 1e-12) {
		t.Fatal("parallel matmul diverges from sequential")
	}
}

func TestMatMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(2, 3).MatMul(New(2, 3))
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	got := a.Transpose2D()
	want := FromSlice([]float64{1, 4, 2, 5, 3, 6}, 3, 2)
	if !got.Equal(want, 0) {
		t.Fatalf("Transpose = %v", got)
	}
}

func TestTransposeInvolution(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		rng := stats.NewRNG(uint64(seed))
		m, n := rng.Intn(8)+1, rng.Intn(8)+1
		a := Randn(rng, 1, m, n)
		return a.Transpose2D().Transpose2D().Equal(a, 0)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatVecAndDot(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float64{5, 6}, 2)
	got := a.MatVec(v)
	if !got.Equal(FromSlice([]float64{17, 39}, 2), 1e-12) {
		t.Fatalf("MatVec = %v", got)
	}
	if d := v.Dot(FromSlice([]float64{1, 2}, 2)); d != 17 {
		t.Fatalf("Dot = %v", d)
	}
}

func TestOuter(t *testing.T) {
	u := FromSlice([]float64{1, 2}, 2)
	v := FromSlice([]float64{3, 4, 5}, 3)
	got := u.Outer(v)
	want := FromSlice([]float64{3, 4, 5, 6, 8, 10}, 2, 3)
	if !got.Equal(want, 0) {
		t.Fatalf("Outer = %v", got)
	}
}

func TestSumAxes(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := a.SumAxis0(); !got.Equal(FromSlice([]float64{5, 7, 9}, 3), 1e-12) {
		t.Errorf("SumAxis0 = %v", got)
	}
	if got := a.SumAxis1(); !got.Equal(FromSlice([]float64{6, 15}, 2), 1e-12) {
		t.Errorf("SumAxis1 = %v", got)
	}
	if got := a.MeanAxis0(); !got.Equal(FromSlice([]float64{2.5, 3.5, 4.5}, 3), 1e-12) {
		t.Errorf("MeanAxis0 = %v", got)
	}
}

func TestArgMaxRows(t *testing.T) {
	a := FromSlice([]float64{0, 5, 2, 7, 1, 3}, 2, 3)
	got := a.ArgMaxRows()
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRows = %v", got)
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromSlice([]float64{1, 1, 1, 1000, 0, 0}, 2, 3)
	s := a.SoftmaxRows()
	for j := 0; j < 3; j++ {
		if math.Abs(s.At(0, j)-1./3) > 1e-12 {
			t.Fatalf("uniform softmax row wrong: %v", s)
		}
	}
	if math.Abs(s.At(1, 0)-1) > 1e-12 {
		t.Fatalf("peaked softmax row wrong: %v", s)
	}
	// Rows must sum to one.
	sums := s.SumAxis1()
	for i := 0; i < 2; i++ {
		if math.Abs(sums.At(i)-1) > 1e-12 {
			t.Fatalf("softmax row %d sums to %v", i, sums.At(i))
		}
	}
}

func TestSoftmaxRowsProperty(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		rng := stats.NewRNG(uint64(seed))
		m, n := rng.Intn(5)+1, rng.Intn(9)+1
		a := Randn(rng, 10, m, n)
		s := a.SoftmaxRows()
		sums := s.SumAxis1()
		for i := 0; i < m; i++ {
			if math.Abs(sums.At(i)-1) > 1e-9 {
				return false
			}
		}
		for _, v := range s.Data() {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSlice2DRowsView(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	s := a.Slice2DRows(1, 3)
	if s.Dim(0) != 2 || s.At(0, 0) != 3 {
		t.Fatalf("slice = %v", s)
	}
	s.Set(99, 0, 0)
	if a.At(1, 0) != 99 {
		t.Fatal("Slice2DRows is not a view")
	}
}

func TestConcat2DRows(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 1, 2)
	b := FromSlice([]float64{3, 4, 5, 6}, 2, 2)
	got := Concat2DRows(a, b)
	want := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	if !got.Equal(want, 0) {
		t.Fatalf("Concat = %v", got)
	}
}

func TestApply(t *testing.T) {
	a := FromSlice([]float64{1, 4, 9}, 3)
	got := a.Apply(math.Sqrt)
	if !got.Equal(FromSlice([]float64{1, 2, 3}, 3), 1e-12) {
		t.Fatalf("Apply = %v", got)
	}
}

func TestRandnStatistics(t *testing.T) {
	rng := stats.NewRNG(5)
	x := Randn(rng, 2, 100, 100)
	if m := x.Mean(); math.Abs(m) > 0.1 {
		t.Errorf("Randn mean = %v", m)
	}
	sd := math.Sqrt(x.Sub(Full(x.Mean(), 100, 100)).Mul(x.Sub(Full(x.Mean(), 100, 100))).Mean())
	if math.Abs(sd-2) > 0.1 {
		t.Errorf("Randn sd = %v", sd)
	}
}
