package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// Cache-blocking tile sizes for MatMulTiled: short row bands, moderate k
// depth, wide j panels — the B panel (gemmTileK × gemmTileJ float64s,
// 512 KiB) stays resident across the row band while the inner loop streams
// full-width rows.
const (
	gemmTileI = 64
	gemmTileK = 128
	gemmTileJ = 512
)

// MatMulTiled returns the matrix product using a cache-blocked (tiled)
// kernel parallelized over row-tile bands. It computes exactly the same
// result as MatMul. The kernel ablation benchmarks compare naive,
// row-streamed, and tiled traversals — the "high floating point rates
// require large matrix sizes" point of §VI-B made concrete. For matrices
// that fit in cache (or on few cores) the row-streamed kernel of MatMul
// wins, which is why MatMul does not route through this path; tiling pays
// off once the B panel no longer fits the last-level cache.
func (t *Tensor) MatMulTiled(u *Tensor) *Tensor {
	if t.Rank() != 2 || u.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTiled of rank %d and %d", t.Rank(), u.Rank()))
	}
	m, k := t.shape[0], t.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTiled inner dims %d vs %d", k, k2))
	}
	r := New(m, n)

	nTilesI := (m + gemmTileI - 1) / gemmTileI
	workers := runtime.GOMAXPROCS(0)
	if workers > nTilesI {
		workers = nTilesI
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * nTilesI / workers
		hi := (w + 1) * nTilesI / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(tileLo, tileHi int) {
			defer wg.Done()
			for ti := tileLo; ti < tileHi; ti++ {
				i0 := ti * gemmTileI
				i1 := min(i0+gemmTileI, m)
				for k0 := 0; k0 < k; k0 += gemmTileK {
					k1 := min(k0+gemmTileK, k)
					for j0 := 0; j0 < n; j0 += gemmTileJ {
						j1 := min(j0+gemmTileJ, n)
						gemmKernel(r.data, t.data, u.data, i0, i1, k0, k1, j0, j1, k, n)
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return r
}

// gemmKernel accumulates the (i0:i1, j0:j1) output tile from the
// (i0:i1, k0:k1) × (k0:k1, j0:j1) operand tiles with an ikj loop order.
func gemmKernel(dst, a, b []float64, i0, i1, k0, k1, j0, j1, k, n int) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n+j0 : i*n+j1]
		for kk := k0; kk < k1; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b[kk*n+j0 : kk*n+j1]
			for j := range drow {
				drow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTiledF32 is the mixed-precision fast path of MatMulTiled: operands
// are converted to float32 once at the boundary, the tiled kernel multiplies
// and accumulates in float32, and the product is widened back to float64 on
// the way out. Halving the element size doubles the effective SIMD width and
// halves memory traffic, at the cost of precision — the per-element error is
// bounded by roughly K * 2^-24 * max|A| * max|B|, which the accuracy tests
// pin. It models the paper's mixed-precision training arithmetic (§VI): the
// low-precision units do the multiplies while anything that must stay
// bit-stable (optimizer state, allreduce buffers, golden outputs) remains
// float64, so none of the byte-pinned f64 paths route through here.
func (t *Tensor) MatMulTiledF32(u *Tensor) *Tensor {
	if t.Rank() != 2 || u.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTiledF32 of rank %d and %d", t.Rank(), u.Rank()))
	}
	m, k := t.shape[0], t.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTiledF32 inner dims %d vs %d", k, k2))
	}
	// One narrowing pass per operand; the kernel then streams pure float32.
	a32 := narrowF32(t.data)
	b32 := narrowF32(u.data)
	dst32 := make([]float32, m*n)

	nTilesI := (m + gemmTileI - 1) / gemmTileI
	workers := runtime.GOMAXPROCS(0)
	if workers > nTilesI {
		workers = nTilesI
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * nTilesI / workers
		hi := (w + 1) * nTilesI / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(tileLo, tileHi int) {
			defer wg.Done()
			for ti := tileLo; ti < tileHi; ti++ {
				i0 := ti * gemmTileI
				i1 := min(i0+gemmTileI, m)
				for k0 := 0; k0 < k; k0 += gemmTileK {
					k1 := min(k0+gemmTileK, k)
					for j0 := 0; j0 < n; j0 += gemmTileJ {
						j1 := min(j0+gemmTileJ, n)
						gemmKernelF32(dst32, a32, b32, i0, i1, k0, k1, j0, j1, k, n)
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()

	r := newIn(t.arena, []int{m, n})
	for i, v := range dst32 {
		r.data[i] = float64(v)
	}
	return r
}

// gemmKernelF32 is gemmKernel in float32: same ikj tile traversal, narrow
// multiply-accumulate. The zero-skip of the f64 kernel is kept so sparse
// operands (post-ReLU activations) behave the same on both paths.
func gemmKernelF32(dst, a, b []float32, i0, i1, k0, k1, j0, j1, k, n int) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n+j0 : i*n+j1]
		for kk := k0; kk < k1; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b[kk*n+j0 : kk*n+j1]
			for j := range drow {
				drow[j] += av * brow[j]
			}
		}
	}
}

// narrowF32 converts a float64 slice to float32 with round-to-nearest.
func narrowF32(src []float64) []float32 {
	dst := make([]float32, len(src))
	for i, v := range src {
		dst[i] = float32(v)
	}
	return dst
}

// matmulNaive is the textbook ijk kernel, kept for the ablation benchmark.
func matmulNaive(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for kk := 0; kk < k; kk++ {
				acc += a[i*k+kk] * b[kk*n+j]
			}
			dst[i*n+j] = acc
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
