package tensor

import (
	"testing"

	"summitscale/internal/parallel"
	"summitscale/internal/stats"
)

// Cross-worker determinism suite: the production kernels dispatch over
// parallel.Shared(), whose width is fixed by GOMAXPROCS, so these tests
// drive the identical kernel + chunk decomposition through explicit
// pools of widths 1, 2, 4 and 8 and assert bit-identical output. That is
// the exact guarantee MatMul/Im2Col/Col2Im rely on to stay
// golden-stable on any machine.

func TestGemmPackedDeterministicAcrossWorkers(t *testing.T) {
	rng := stats.NewRNG(29)
	m, k, n := 130, 140, 150
	a := Randn(rng, 1, m, k)
	b := Randn(rng, 1, k, n)
	kc := resolveGemmKC()

	run := func(w int) []float64 {
		pool := parallel.NewWorkerPool(w)
		defer pool.Close()
		dst := make([]float64, m*n)
		packed := packB(b.Data(), k, n, kc)
		pool.RunRange(m, gemmRowChunk, func(lo, hi int) {
			gemmPackedRows(dst, a.Data(), packed, lo, hi, k, n, kc)
		})
		putPackBuf(packed)
		return dst
	}
	ref := run(1)
	for _, w := range []int{2, 4, 8} {
		got := run(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: element %d differs: %v vs %v", w, i, got[i], ref[i])
			}
		}
	}
}

func TestIm2ColDeterministicAcrossWorkers(t *testing.T) {
	rng := stats.NewRNG(31)
	const nImg, c, h, w, kh, kw = 3, 4, 11, 11, 3, 3
	opts := Conv2DOpts{Stride: 2, Padding: 1}
	x := Randn(rng, 1, nImg, c, h, w)
	oh := convOutDim(h, kh, opts.Stride, opts.Padding)
	ow := convOutDim(w, kw, opts.Stride, opts.Padding)

	run := func(workers int) []float64 {
		pool := parallel.NewWorkerPool(workers)
		defer pool.Close()
		cols := make([]float64, nImg*oh*ow*c*kh*kw)
		pool.RunRange(nImg*oh, convRowGrain, func(lo, hi int) {
			im2colRows(cols, x.Data(), lo, hi, c, h, w, oh, ow, kh, kw, opts.Stride, opts.Padding)
		})
		return cols
	}
	ref := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: unfold cell %d differs", workers, i)
			}
		}
	}
	// And the production entry point must agree with the reference fill.
	prod := Im2Col(x, kh, kw, opts)
	for i, v := range prod.Data() {
		if v != ref[i] {
			t.Fatalf("Im2Col diverges from reference fill at %d", i)
		}
	}
}

func TestCol2ImDeterministicAcrossWorkers(t *testing.T) {
	rng := stats.NewRNG(37)
	const nImg, c, h, w, kh, kw = 5, 3, 9, 9, 3, 3
	opts := Conv2DOpts{Stride: 1, Padding: 1}
	oh := convOutDim(h, kh, opts.Stride, opts.Padding)
	ow := convOutDim(w, kw, opts.Stride, opts.Padding)
	cols := Randn(rng, 1, nImg*oh*ow, c*kh*kw)

	run := func(workers int) []float64 {
		pool := parallel.NewWorkerPool(workers)
		defer pool.Close()
		x := make([]float64, nImg*c*h*w)
		pool.RunRange(nImg, 1, func(lo, hi int) {
			col2imImages(x, cols.Data(), lo, hi, c, h, w, oh, ow, kh, kw, opts.Stride, opts.Padding)
		})
		return x
	}
	ref := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: folded element %d differs: %v vs %v", workers, i, got[i], ref[i])
			}
		}
	}
	// The production fold must agree with the reference.
	prod := Col2Im(cols, nImg, c, h, w, kh, kw, opts)
	for i, v := range prod.Data() {
		if v != ref[i] {
			t.Fatalf("Col2Im diverges from reference fold at %d", i)
		}
	}
}
