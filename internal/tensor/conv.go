package tensor

import (
	"fmt"

	"summitscale/internal/parallel"
)

// convParallelMinWork is the element count (unfold-matrix cells for
// Im2Col, folded contributions for Col2Im) above which the conv lowering
// fans out across the persistent worker pool. Below it the loops run
// inline with no dispatch — and, deliberately, no closure allocation, so
// the small convolutions of the training-step alloc benchmark stay at
// their committed floor.
const convParallelMinWork = 1 << 16

// convRowGrain is the (image, output-row) chunk size for the parallel
// Im2Col fill; the fill writes disjoint rows, so output does not depend
// on it.
const convRowGrain = 4

// Conv2DOpts describes a 2-D convolution. Tensors are NCHW.
type Conv2DOpts struct {
	Stride  int
	Padding int
}

// convOutDim returns the output spatial size for input size in, kernel k.
func convOutDim(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// Im2Col unfolds the (N, C, H, W) input into a matrix of shape
// (N*OH*OW, C*KH*KW) so that convolution becomes a matrix multiply. Padding
// is zero-filled.
func Im2Col(x *Tensor, kh, kw int, opts Conv2DOpts) *Tensor {
	return Im2ColInto(nil, x, kh, kw, opts)
}

// Im2ColInto is Im2Col writing into dst's backing storage when its element
// count matches, so a training loop's unfold buffer is allocated once and
// reused across forward calls. A nil or wrong-size dst allocates fresh.
// The returned tensor always has the correct (N*OH*OW, C*KH*KW) shape.
func Im2ColInto(dst *Tensor, x *Tensor, kh, kw int, opts Conv2DOpts) *Tensor {
	if x.Rank() != 4 {
		panic("tensor: Im2Col of non-NCHW tensor")
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	s, p := opts.Stride, opts.Padding
	if s <= 0 {
		panic("tensor: Im2Col stride must be positive")
	}
	oh := convOutDim(h, kh, s, p)
	ow := convOutDim(w, kw, s, p)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col empty output for input %dx%d kernel %dx%d", h, w, kh, kw))
	}
	var cols *Tensor
	if dst != nil && len(dst.data) == n*oh*ow*c*kh*kw {
		if len(dst.shape) == 2 && dst.shape[0] == n*oh*ow {
			// The repeated-geometry fast path: the scratch tensor already
			// has the right shape, so reuse it outright instead of minting
			// a fresh view per call.
			cols = dst
		} else {
			cols = &Tensor{shape: []int{n * oh * ow, c * kh * kw}, data: dst.data}
		}
		if p > 0 {
			// Only padded positions are skipped by the fill loop below;
			// without padding every element is overwritten.
			cols.Zero()
		}
	} else {
		// Deliberately heap-allocated even when x is arena-backed: the
		// unfold buffer persists in ConvScratch across steps, while arena
		// memory is recycled at every Reset.
		cols = New(n*oh*ow, c*kh*kw)
	}
	// Each (image, output-row) pair writes a disjoint band of cols, so the
	// fill shards freely: bit-identical at any worker count.
	if n*oh*ow*c*kh*kw >= convParallelMinWork {
		parallel.Shared().RunRange(n*oh, convRowGrain, func(lo, hi int) {
			im2colRows(cols.data, x.data, lo, hi, c, h, w, oh, ow, kh, kw, s, p)
		})
	} else {
		im2colRows(cols.data, x.data, 0, n*oh, c, h, w, oh, ow, kh, kw, s, p)
	}
	return cols
}

// im2colRows fills the unfold rows for flattened (image, output-row)
// indices [lo, hi).
func im2colRows(cols, x []float64, lo, hi, c, h, w, oh, ow, kh, kw, s, p int) {
	for r := lo; r < hi; r++ {
		img, oy := r/oh, r%oh
		for ox := 0; ox < ow; ox++ {
			row := cols[((img*oh+oy)*ow+ox)*c*kh*kw:]
			col := 0
			for ch := 0; ch < c; ch++ {
				for ky := 0; ky < kh; ky++ {
					iy := oy*s - p + ky
					for kx := 0; kx < kw; kx++ {
						ix := ox*s - p + kx
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							row[col] = x[((img*c+ch)*h+iy)*w+ix]
						}
						col++
					}
				}
			}
		}
	}
}

// Col2Im folds the Im2Col matrix back into an (N, C, H, W) tensor,
// accumulating overlapping contributions. It is the adjoint of Im2Col and
// is used for convolution input gradients.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw int, opts Conv2DOpts) *Tensor {
	s, p := opts.Stride, opts.Padding
	oh := convOutDim(h, kh, s, p)
	ow := convOutDim(w, kw, s, p)
	if cols.Rank() != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: Col2Im shape %v inconsistent", cols.shape))
	}
	x := newIn(cols.arena, []int{n, c, h, w})
	// Contributions overlap within an image but never across images, so
	// the fold shards by image; per-image accumulation order is the loop
	// order either way, keeping the output bit-identical at any worker
	// count.
	if n > 1 && n*oh*ow*c*kh*kw >= convParallelMinWork {
		parallel.Shared().RunRange(n, 1, func(lo, hi int) {
			col2imImages(x.data, cols.data, lo, hi, c, h, w, oh, ow, kh, kw, s, p)
		})
	} else {
		col2imImages(x.data, cols.data, 0, n, c, h, w, oh, ow, kh, kw, s, p)
	}
	return x
}

// col2imImages folds the unfold rows of images [lo, hi) back into x,
// accumulating overlapping contributions.
func col2imImages(x, cols []float64, lo, hi, c, h, w, oh, ow, kh, kw, s, p int) {
	for img := lo; img < hi; img++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := cols[((img*oh+oy)*ow+ox)*c*kh*kw:]
				col := 0
				for ch := 0; ch < c; ch++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*s - p + ky
						for kx := 0; kx < kw; kx++ {
							ix := ox*s - p + kx
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								x[((img*c+ch)*h+iy)*w+ix] += row[col]
							}
							col++
						}
					}
				}
			}
		}
	}
}

// ConvScratch holds a convolution's reusable buffers. The zero value is
// ready to use; the first forward call populates Cols and later calls with
// the same geometry reuse it.
type ConvScratch struct {
	Cols *Tensor // im2col unfold matrix, (N*OH*OW, C*KH*KW)
}

// Conv2D convolves the (N, C, H, W) input with (F, C, KH, KW) kernels and a
// length-F bias, returning (N, F, OH, OW).
func Conv2D(x, kernel, bias *Tensor, opts Conv2DOpts) *Tensor {
	return Conv2DScratch(x, kernel, bias, opts, nil)
}

// Conv2DScratch is Conv2D reusing the im2col buffer in scratch across
// calls (nil scratch allocates per call, exactly like Conv2D).
func Conv2DScratch(x, kernel, bias *Tensor, opts Conv2DOpts, scratch *ConvScratch) *Tensor {
	if x.Rank() != 4 || kernel.Rank() != 4 {
		panic("tensor: Conv2D wants NCHW input and FCHW kernel")
	}
	n, c := x.shape[0], x.shape[1]
	f, kc, kh, kw := kernel.shape[0], kernel.shape[1], kernel.shape[2], kernel.shape[3]
	if kc != c {
		panic(fmt.Sprintf("tensor: Conv2D channels %d vs kernel %d", c, kc))
	}
	if bias != nil && (bias.Rank() != 1 || bias.shape[0] != f) {
		panic("tensor: Conv2D bias shape")
	}
	oh := convOutDim(x.shape[2], kh, opts.Stride, opts.Padding)
	ow := convOutDim(x.shape[3], kw, opts.Stride, opts.Padding)

	var cols *Tensor
	if scratch != nil {
		scratch.Cols = Im2ColInto(scratch.Cols, x, kh, kw, opts)
		cols = scratch.Cols
	} else {
		cols = Im2Col(x, kh, kw, opts) // (N*OH*OW, C*KH*KW)
	}
	// The kernel transpose, product and output all go to the input's arena
	// explicitly: the kernel is a heap parameter and cols may be a
	// persistent heap scratch, either of which would otherwise break the
	// arena inheritance chain at every convolution layer.
	ck := c * kh * kw
	kmat := newIn(x.arena, []int{ck, f}) // kernel.Reshape(f, ck) transposed
	km, kd := kmat.data, kernel.data
	for i := 0; i < f; i++ {
		for j := 0; j < ck; j++ {
			km[j*f+i] = kd[i*ck+j]
		}
	}
	prod := newIn(x.arena, []int{n * oh * ow, f}) // (N*OH*OW, F)
	matMulInto(prod, cols, kmat)
	out := newIn(x.arena, []int{n, f, oh, ow})
	for img := 0; img < n; img++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				prow := prod.data[((img*oh+oy)*ow+ox)*f:]
				for ch := 0; ch < f; ch++ {
					v := prow[ch]
					if bias != nil {
						v += bias.data[ch]
					}
					out.data[((img*f+ch)*oh+oy)*ow+ox] = v
				}
			}
		}
	}
	return out
}

// MaxPool2D applies non-overlapping-or-strided max pooling with a k×k
// window. It returns the pooled output and the flat argmax index (into the
// input tensor's data) for each output element, which the backward pass
// uses to route gradients.
func MaxPool2D(x *Tensor, k, stride int) (*Tensor, []int) {
	if x.Rank() != 4 {
		panic("tensor: MaxPool2D of non-NCHW tensor")
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh := convOutDim(h, k, stride, 0)
	ow := convOutDim(w, k, stride, 0)
	out := newIn(x.arena, []int{n, c, oh, ow})
	arg := make([]int, out.Size())
	oi := 0
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := base + (oy*stride)*w + ox*stride
					best := x.data[bestIdx]
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							idx := base + (oy*stride+ky)*w + (ox*stride + kx)
							if x.data[idx] > best {
								best = x.data[idx]
								bestIdx = idx
							}
						}
					}
					out.data[oi] = best
					arg[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out, arg
}

// AvgPool2DGlobal averages each channel's full spatial extent, returning an
// (N, C) matrix. It is the global average pooling used before classifier
// heads.
func AvgPool2DGlobal(x *Tensor) *Tensor {
	if x.Rank() != 4 {
		panic("tensor: AvgPool2DGlobal of non-NCHW tensor")
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	out := newIn(x.arena, []int{n, c})
	area := float64(h * w)
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * h * w
			var s float64
			for i := 0; i < h*w; i++ {
				s += x.data[base+i]
			}
			out.data[img*c+ch] = s / area
		}
	}
	return out
}
