package tensor

import (
	"testing"
	"testing/quick"

	"summitscale/internal/stats"
)

func TestTiledMatchesMatMul(t *testing.T) {
	rng := stats.NewRNG(1)
	for _, dims := range [][3]int{
		{3, 4, 5}, {64, 64, 64}, {65, 63, 67}, {128, 1, 128}, {1, 200, 1}, {130, 70, 190},
	} {
		a := Randn(rng, 1, dims[0], dims[1])
		b := Randn(rng, 1, dims[1], dims[2])
		want := a.MatMul(b)
		got := a.MatMulTiled(b)
		if !got.Equal(want, 1e-9) {
			t.Fatalf("tiled mismatch at dims %v", dims)
		}
	}
}

func TestTiledMatchesNaiveProperty(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		rng := stats.NewRNG(uint64(seed))
		m := rng.Intn(40) + 1
		k := rng.Intn(40) + 1
		n := rng.Intn(40) + 1
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		want := New(m, n)
		matmulNaive(want.Data(), a.Data(), b.Data(), m, k, n)
		return a.MatMulTiled(b).Equal(want, 1e-9)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTiledF32AccuracyBound pins the mixed-precision contract: the float32
// fast path tracks the float64 product within K * 2^-24 scaled by operand
// magnitude (with slack for rounding the operands themselves).
func TestTiledF32AccuracyBound(t *testing.T) {
	rng := stats.NewRNG(7)
	for _, dims := range [][3]int{
		{3, 4, 5}, {64, 64, 64}, {65, 63, 67}, {130, 270, 190},
	} {
		m, k, n := dims[0], dims[1], dims[2]
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		want := a.MatMul(b)
		got := a.MatMulTiledF32(b)
		// Operand rounding contributes ~2 ulp per product on top of the
		// K-term accumulation error; 8x slack keeps the test deterministic
		// without masking a broken kernel (which would be off by ~1e7x).
		tol := 8 * float64(k+2) * (1.0 / (1 << 24)) * a.MaxAbs() * b.MaxAbs()
		if !got.Equal(want, tol) {
			t.Fatalf("f32 path outside error bound %g at dims %v", tol, dims)
		}
		if tol > 0.5 {
			t.Fatalf("tolerance %g too loose to be meaningful at dims %v", tol, dims)
		}
	}
}

// TestTiledF32ExactOnRepresentable: small integers are exact in float32, so
// the narrow path must reproduce the float64 product bit for bit — catching
// any stray scaling or transposition the tolerance test could absorb.
func TestTiledF32ExactOnRepresentable(t *testing.T) {
	rng := stats.NewRNG(3)
	a := New(37, 53)
	b := New(53, 41)
	for _, x := range []*Tensor{a, b} {
		for i := range x.Data() {
			x.Data()[i] = float64(rng.Intn(17) - 8)
		}
	}
	want := a.MatMul(b)
	got := a.MatMulTiledF32(b)
	if !got.Equal(want, 0) {
		t.Fatal("f32 path not exact on f32-representable integer operands")
	}
}

// TestTiledF32ArenaInheritance: the widened result follows the receiver's
// arena like every other tensor-producing op.
func TestTiledF32ArenaInheritance(t *testing.T) {
	ar := NewArena()
	a := FullIn(ar, 1, 8, 8)
	if a.MatMulTiledF32(Full(1, 8, 8)).Arena() != ar {
		t.Fatal("MatMulTiledF32 result did not inherit the arena")
	}
}

func TestTiledF32DimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(2, 3).MatMulTiledF32(New(2, 3))
}

func TestTiledDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(2, 3).MatMulTiled(New(2, 3))
}

// Kernel ablation: naive ijk vs row-streamed ikj vs tiled, at a size where
// cache behaviour matters.
func benchGemm(b *testing.B, kernel func(dst, a, bb []float64, m, k, n int), sz int) {
	rng := stats.NewRNG(1)
	a := Randn(rng, 1, sz, sz)
	bb := Randn(rng, 1, sz, sz)
	dst := New(sz, sz)
	b.SetBytes(int64(2 * sz * sz * sz * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Zero()
		kernel(dst.Data(), a.Data(), bb.Data(), sz, sz, sz)
	}
}

func BenchmarkGemmNaive256(b *testing.B) {
	benchGemm(b, matmulNaive, 256)
}

func BenchmarkGemmRowStream256(b *testing.B) {
	benchGemm(b, func(dst, a, bb []float64, m, k, n int) {
		matmulRows(dst, a, bb, 0, m, k, n)
	}, 256)
}

func BenchmarkGemmTiled256(b *testing.B) {
	rng := stats.NewRNG(1)
	a := Randn(rng, 1, 256, 256)
	bb := Randn(rng, 1, 256, 256)
	b.SetBytes(int64(2 * 256 * 256 * 256 * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MatMulTiled(bb)
	}
}

// BenchmarkGemmTiledF32_256 completes the precision ablation: same tiling as
// BenchmarkGemmTiled256, half-width arithmetic (conversion cost included —
// that is the real price of the mixed-precision boundary).
func BenchmarkGemmTiledF32_256(b *testing.B) {
	rng := stats.NewRNG(1)
	a := Randn(rng, 1, 256, 256)
	bb := Randn(rng, 1, 256, 256)
	b.SetBytes(int64(2 * 256 * 256 * 256 * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MatMulTiledF32(bb)
	}
}
