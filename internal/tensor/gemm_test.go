package tensor

import (
	"testing"
	"testing/quick"

	"summitscale/internal/stats"
)

func TestTiledMatchesMatMul(t *testing.T) {
	rng := stats.NewRNG(1)
	for _, dims := range [][3]int{
		{3, 4, 5}, {64, 64, 64}, {65, 63, 67}, {128, 1, 128}, {1, 200, 1}, {130, 70, 190},
	} {
		a := Randn(rng, 1, dims[0], dims[1])
		b := Randn(rng, 1, dims[1], dims[2])
		want := a.MatMul(b)
		got := a.MatMulTiled(b)
		if !got.Equal(want, 1e-9) {
			t.Fatalf("tiled mismatch at dims %v", dims)
		}
	}
}

func TestTiledMatchesNaiveProperty(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		rng := stats.NewRNG(uint64(seed))
		m := rng.Intn(40) + 1
		k := rng.Intn(40) + 1
		n := rng.Intn(40) + 1
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		want := New(m, n)
		matmulNaive(want.Data(), a.Data(), b.Data(), m, k, n)
		return a.MatMulTiled(b).Equal(want, 1e-9)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTiledDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(2, 3).MatMulTiled(New(2, 3))
}

// Kernel ablation: naive ijk vs row-streamed ikj vs tiled, at a size where
// cache behaviour matters.
func benchGemm(b *testing.B, kernel func(dst, a, bb []float64, m, k, n int), sz int) {
	rng := stats.NewRNG(1)
	a := Randn(rng, 1, sz, sz)
	bb := Randn(rng, 1, sz, sz)
	dst := New(sz, sz)
	b.SetBytes(int64(2 * sz * sz * sz * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Zero()
		kernel(dst.Data(), a.Data(), bb.Data(), sz, sz, sz)
	}
}

func BenchmarkGemmNaive256(b *testing.B) {
	benchGemm(b, matmulNaive, 256)
}

func BenchmarkGemmRowStream256(b *testing.B) {
	benchGemm(b, func(dst, a, bb []float64, m, k, n int) {
		matmulRows(dst, a, bb, 0, m, k, n)
	}, 256)
}

func BenchmarkGemmTiled256(b *testing.B) {
	rng := stats.NewRNG(1)
	a := Randn(rng, 1, 256, 256)
	bb := Randn(rng, 1, 256, 256)
	b.SetBytes(int64(2 * 256 * 256 * 256 * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MatMulTiled(bb)
	}
}
