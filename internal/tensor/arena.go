package tensor

// Arena is a step-scoped bump allocator for tensors. A training loop owns
// one arena per goroutine, calls Reset at the top of every step, and routes
// the step's temporaries through it: after a warm-up step the slabs have
// grown to the step's high-water mark and allocation becomes pointer
// arithmetic, so the steady-state step performs no tensor heap allocation.
//
// Contract: every tensor allocated from an arena — and every tensor derived
// from one, since operations inherit the receiver's arena — is INVALID after
// the next Reset. Memory that must survive a step (parameters, optimizer
// state, persistent scratch like ConvScratch) must stay on the heap.
//
// An arena is not safe for concurrent use; it belongs to one goroutine.
type Arena struct {
	floats     [][]float64
	fSlab, fOf int
	ints       [][]int
	iSlab, iOf int
	nodes      [][]Tensor
	nSlab, nOf int
}

const (
	arenaFloatSlab = 16 << 10 // float64s per slab (128 KiB)
	arenaIntSlab   = 1 << 10
	arenaNodeSlab  = 256
)

// NewArena returns an empty arena; slabs grow on demand.
func NewArena() *Arena { return &Arena{} }

// Reset rewinds the arena to empty, retaining slab capacity. All tensors
// previously allocated from it become invalid.
func (a *Arena) Reset() {
	a.fSlab, a.fOf = 0, 0
	a.iSlab, a.iOf = 0, 0
	a.nSlab, a.nOf = 0, 0
}

// Cap returns the total float64 capacity across slabs — the arena's
// high-water footprint, useful for asserting steady state in tests.
func (a *Arena) Cap() int {
	n := 0
	for _, s := range a.floats {
		n += len(s)
	}
	return n
}

// New returns a zero-filled tensor of the given shape backed by the arena.
func (a *Arena) New(shape ...int) *Tensor { return newIn(a, shape) }

// NewIn returns a zero-filled tensor of the given shape, backed by the
// arena when a is non-nil and by the heap otherwise. It is the nil-safe
// allocation point operations use to inherit their operand's arena.
func NewIn(a *Arena, shape ...int) *Tensor { return newIn(a, shape) }

// FullIn is Full allocating from the arena (nil means heap).
func FullIn(a *Arena, v float64, shape ...int) *Tensor {
	t := newIn(a, shape)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Arena returns the arena backing t, or nil for heap tensors.
func (t *Tensor) Arena() *Arena { return t.arena }

func newIn(a *Arena, shape []int) *Tensor {
	n := checkShape(shape)
	if a == nil {
		return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
	}
	t := a.node()
	t.shape = a.shapeCopy(shape)
	t.data = a.alloc(n)
	t.arena = a
	return t
}

// viewIn builds a tensor sharing data, placing the struct and shape copy in
// the arena when one is given. Used by Reshape and row slicing so views of
// arena tensors do not leak per-step heap allocations.
func viewIn(a *Arena, shape []int, data []float64) *Tensor {
	if a == nil {
		return &Tensor{shape: append([]int(nil), shape...), data: data}
	}
	t := a.node()
	t.shape = a.shapeCopy(shape)
	t.data = data
	t.arena = a
	return t
}

// alloc returns a zeroed float64 slice of length n from the slabs.
func (a *Arena) alloc(n int) []float64 {
	for {
		if a.fSlab < len(a.floats) {
			slab := a.floats[a.fSlab]
			if a.fOf+n <= len(slab) {
				s := slab[a.fOf : a.fOf+n : a.fOf+n]
				a.fOf += n
				clear(s)
				return s
			}
			a.fSlab++
			a.fOf = 0
			continue
		}
		size := arenaFloatSlab
		if n > size {
			size = n
		}
		a.floats = append(a.floats, make([]float64, size))
	}
}

// shapeCopy stores a copy of shape in the int slabs.
func (a *Arena) shapeCopy(shape []int) []int {
	n := len(shape)
	for {
		if a.iSlab < len(a.ints) {
			slab := a.ints[a.iSlab]
			if a.iOf+n <= len(slab) {
				s := slab[a.iOf : a.iOf+n : a.iOf+n]
				a.iOf += n
				copy(s, shape)
				return s
			}
			a.iSlab++
			a.iOf = 0
			continue
		}
		size := arenaIntSlab
		if n > size {
			size = n
		}
		a.ints = append(a.ints, make([]int, size))
	}
}

// node returns a cleared Tensor struct from the node slabs.
func (a *Arena) node() *Tensor {
	for {
		if a.nSlab < len(a.nodes) {
			slab := a.nodes[a.nSlab]
			if a.nOf < len(slab) {
				t := &slab[a.nOf]
				a.nOf++
				*t = Tensor{}
				return t
			}
			a.nSlab++
			a.nOf = 0
			continue
		}
		a.nodes = append(a.nodes, make([]Tensor, arenaNodeSlab))
	}
}
