package tensor

import (
	"fmt"

	"summitscale/internal/parallel"
)

// MatMul's size-based dispatch table. The three kernels are bit-identical
// (same ascending-k accumulation per output element, same zero-skip), so
// the thresholds are pure performance tuning: sequential row-streaming
// until the fan-out pays for its dispatch, pool-parallel row-streaming
// while B still fits comfortably in cache, and the packed panel kernel
// (gemm_packed.go) once B is large enough that repacking it into
// contiguous micro-panels beats striding across its rows.
const (
	// matmulParallelThreshold is the m*n*k product above which MatMul
	// fans out across the persistent worker pool. Below it the
	// sequential kernel is faster.
	matmulParallelThreshold = 64 * 64 * 64
	// matmulPackedThreshold is the m*n*k product above which MatMul
	// packs B. Between the two thresholds the unpacked row-stream kernel
	// wins: the packing pass is pure overhead while B is cache-resident.
	matmulPackedThreshold = 128 * 128 * 128
	// matmulRowGrain is the row-chunk size for the pool-parallel
	// row-stream path; results do not depend on it (rows are
	// independent).
	matmulRowGrain = 8
)

// MatMul returns the matrix product of the (M, K) tensor t and the (K, N)
// tensor u. The kernel is cache-blocked over k and parallelized over row
// bands for large problems.
func (t *Tensor) MatMul(u *Tensor) *Tensor {
	if t.Rank() != 2 || u.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul of rank %d and %d", t.Rank(), u.Rank()))
	}
	m, k := t.shape[0], t.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	r := newIn(t.arena, []int{m, n})
	matMulInto(r, t, u)
	return r
}

// matMulInto computes the product of t and u into the zero-filled r,
// dispatching through the size table above. It lets callers that manage
// their own result storage (convolution's arena-allocated product) share
// one multiply implementation; every path produces bit-identical output.
func matMulInto(r, t, u *Tensor) {
	m, k := t.shape[0], t.shape[1]
	n := u.shape[1]
	work := m * n * k
	switch {
	case work < matmulParallelThreshold:
		matmulRows(r.data, t.data, u.data, 0, m, k, n)
	case work < matmulPackedThreshold:
		matMulRowsParallel(r.data, t.data, u.data, m, k, n)
	default:
		matMulPackedInto(r.data, t.data, u.data, m, k, n)
	}
}

// matMulRowsParallel fans the row-stream kernel out over the persistent
// worker pool in independent row chunks — no per-call goroutine spawn,
// bit-identical to the sequential kernel at any pool width.
func matMulRowsParallel(dst, a, b []float64, m, k, n int) {
	parallel.Shared().RunRange(m, matmulRowGrain, func(lo, hi int) {
		matmulRows(dst, a, b, lo, hi, k, n)
	})
}

// matmulRows computes rows [lo, hi) of the (m, n) product using an ikj loop
// order, which streams through the b matrix row-wise and keeps the inner
// loop vectorizable.
func matmulRows(dst, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		drow := dst[i*n : (i+1)*n]
		arow := a[i*k : (i+1)*k]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j := range drow {
				drow[j] += av * brow[j]
			}
		}
	}
}

// Transpose2D returns the transpose of a rank-2 tensor.
func (t *Tensor) Transpose2D() *Tensor { return t.Transpose2DIn(t.arena) }

// Transpose2DIn is Transpose2D allocating the result from arena a, so a
// backward pass can transpose a heap parameter into step-scoped storage.
func (t *Tensor) Transpose2DIn(a *Arena) *Tensor {
	if t.Rank() != 2 {
		panic("tensor: Transpose2D of non-matrix")
	}
	m, n := t.shape[0], t.shape[1]
	r := newIn(a, []int{n, m})
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			r.data[j*m+i] = t.data[i*n+j]
		}
	}
	return r
}

// MatVec returns the matrix-vector product of the (M, N) tensor t and the
// length-N vector v.
func (t *Tensor) MatVec(v *Tensor) *Tensor {
	if t.Rank() != 2 || v.Rank() != 1 || t.shape[1] != v.shape[0] {
		panic(fmt.Sprintf("tensor: MatVec shapes %v, %v", t.shape, v.shape))
	}
	m, n := t.shape[0], t.shape[1]
	r := newIn(t.arena, []int{m})
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		var s float64
		for j, x := range row {
			s += x * v.data[j]
		}
		r.data[i] = s
	}
	return r
}

// Dot returns the inner product of two equal-length rank-1 tensors.
func (t *Tensor) Dot(u *Tensor) float64 {
	if t.Rank() != 1 || u.Rank() != 1 || t.shape[0] != u.shape[0] {
		panic(fmt.Sprintf("tensor: Dot shapes %v, %v", t.shape, u.shape))
	}
	var s float64
	for i := range t.data {
		s += t.data[i] * u.data[i]
	}
	return s
}

// Outer returns the outer product of rank-1 tensors t (len M) and u (len N),
// an (M, N) matrix.
func (t *Tensor) Outer(u *Tensor) *Tensor {
	if t.Rank() != 1 || u.Rank() != 1 {
		panic("tensor: Outer of non-vectors")
	}
	m, n := t.shape[0], u.shape[0]
	r := newIn(t.arena, []int{m, n})
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			r.data[i*n+j] = t.data[i] * u.data[j]
		}
	}
	return r
}
