package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// matmulParallelThreshold is the m*n*k product above which MatMul fans out
// across goroutines. Below it the sequential kernel is faster.
const matmulParallelThreshold = 64 * 64 * 64

// MatMul returns the matrix product of the (M, K) tensor t and the (K, N)
// tensor u. The kernel is cache-blocked over k and parallelized over row
// bands for large problems.
func (t *Tensor) MatMul(u *Tensor) *Tensor {
	if t.Rank() != 2 || u.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul of rank %d and %d", t.Rank(), u.Rank()))
	}
	m, k := t.shape[0], t.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	r := newIn(t.arena, []int{m, n})
	matMulInto(r, t, u)
	return r
}

// matMulInto computes the product of t and u into the zero-filled r, using
// the same sequential/parallel kernel split as MatMul. It lets callers that
// manage their own result storage (convolution's arena-allocated product)
// share one multiply implementation.
func matMulInto(r, t, u *Tensor) {
	m, k := t.shape[0], t.shape[1]
	n := u.shape[1]
	if m*n*k < matmulParallelThreshold {
		matmulRows(r.data, t.data, u.data, 0, m, k, n)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * m / workers
		hi := (w + 1) * m / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulRows(r.data, t.data, u.data, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// matmulRows computes rows [lo, hi) of the (m, n) product using an ikj loop
// order, which streams through the b matrix row-wise and keeps the inner
// loop vectorizable.
func matmulRows(dst, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		drow := dst[i*n : (i+1)*n]
		arow := a[i*k : (i+1)*k]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j := range drow {
				drow[j] += av * brow[j]
			}
		}
	}
}

// Transpose2D returns the transpose of a rank-2 tensor.
func (t *Tensor) Transpose2D() *Tensor { return t.Transpose2DIn(t.arena) }

// Transpose2DIn is Transpose2D allocating the result from arena a, so a
// backward pass can transpose a heap parameter into step-scoped storage.
func (t *Tensor) Transpose2DIn(a *Arena) *Tensor {
	if t.Rank() != 2 {
		panic("tensor: Transpose2D of non-matrix")
	}
	m, n := t.shape[0], t.shape[1]
	r := newIn(a, []int{n, m})
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			r.data[j*m+i] = t.data[i*n+j]
		}
	}
	return r
}

// MatVec returns the matrix-vector product of the (M, N) tensor t and the
// length-N vector v.
func (t *Tensor) MatVec(v *Tensor) *Tensor {
	if t.Rank() != 2 || v.Rank() != 1 || t.shape[1] != v.shape[0] {
		panic(fmt.Sprintf("tensor: MatVec shapes %v, %v", t.shape, v.shape))
	}
	m, n := t.shape[0], t.shape[1]
	r := newIn(t.arena, []int{m})
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		var s float64
		for j, x := range row {
			s += x * v.data[j]
		}
		r.data[i] = s
	}
	return r
}

// Dot returns the inner product of two equal-length rank-1 tensors.
func (t *Tensor) Dot(u *Tensor) float64 {
	if t.Rank() != 1 || u.Rank() != 1 || t.shape[0] != u.shape[0] {
		panic(fmt.Sprintf("tensor: Dot shapes %v, %v", t.shape, u.shape))
	}
	var s float64
	for i := range t.data {
		s += t.data[i] * u.data[i]
	}
	return s
}

// Outer returns the outer product of rank-1 tensors t (len M) and u (len N),
// an (M, N) matrix.
func (t *Tensor) Outer(u *Tensor) *Tensor {
	if t.Rank() != 1 || u.Rank() != 1 {
		panic("tensor: Outer of non-vectors")
	}
	m, n := t.shape[0], u.shape[0]
	r := newIn(t.arena, []int{m, n})
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			r.data[i*n+j] = t.data[i] * u.data[j]
		}
	}
	return r
}
