package tensor

import (
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"summitscale/internal/parallel"
)

// Packed parallel GEMM: the B operand is repacked once per call into
// contiguous (KC x NR) column micro-panels so the inner kernel streams
// one cache line after another instead of striding across B's rows, and
// the output is computed in independent row panels fanned out over the
// persistent worker pool (parallel.Shared). Each output element
// accumulates its k-terms in ascending order with the same zero-skip as
// matmulRows, so the packed kernel is bit-identical to the row-streamed
// kernel — and to itself at every worker count — which is what lets
// MatMul dispatch between kernels on size alone without perturbing a
// single golden byte.
const (
	// gemmNR is the register tile width: one micro-kernel pass holds NR
	// output columns of up to two rows in registers across a whole
	// k-panel, cutting the per-k dst load/store traffic of the
	// row-streamed kernel by a factor of KC.
	gemmNR = 4
	// gemmRowChunk rows of output form one unit of worker dispatch. The
	// value trades load balance against per-chunk claim overhead; it
	// does not affect results (rows are independent).
	gemmRowChunk = 16
)

// The k-panel depth is resolved per call by resolveGemmKC: an explicit
// SetGemmKC pin wins, then the GemmKCEnv environment variable, then a
// one-shot wall-clock micro-autotune (autotuneKC). The panel depth only
// changes traversal order across full k-sweeps, never the per-element
// accumulation order, so any value is bit-identical to any other — but
// the wall-clock autotune makes the *choice* vary run-to-run under load,
// which is why benchmarks and CI pin it (the perf baseline should not
// drift because a noisy neighbour skewed a 3-sample timing race).
var (
	// gemmKCPin, when positive, overrides autotuning entirely. Atomic so
	// SetGemmKC is safe against concurrent multiplies under -race.
	gemmKCPin atomic.Int64
	// gemmKCAuto caches the autotuned depth; written once under
	// gemmKCOnce, read atomically on the hot path.
	gemmKCOnce sync.Once
	gemmKCAuto atomic.Int64
	gemmKCEnv  sync.Once
)

// GemmKCEnv is the environment variable that pins the GEMM k-panel
// depth (e.g. SUMMITSCALE_GEMM_KC=256), read once at first multiply.
// SetGemmKC takes precedence over it.
const GemmKCEnv = "SUMMITSCALE_GEMM_KC"

// gemmKCCandidates are the panel depths the init-time autotune times.
// 256 doubles = 2 KiB per packed micro-panel column strip.
var gemmKCCandidates = [...]int{128, 256, 512}

// SetGemmKC pins the packed GEMM k-panel depth, bypassing the
// wall-clock autotune; kc <= 0 clears the pin and re-enables it. Every
// depth produces bit-identical output (TestGemmBitIdenticalAcrossKC),
// so this is purely a performance/reproducibility-of-timing control.
func SetGemmKC(kc int) {
	if kc < 0 {
		kc = 0
	}
	gemmKCPin.Store(int64(kc))
}

// GemmKC reports the k-panel depth the next multiply will use.
func GemmKC() int { return resolveGemmKC() }

// resolveGemmKC picks the panel depth: pin, then env, then autotune.
func resolveGemmKC() int {
	if v := gemmKCPin.Load(); v > 0 {
		return int(v)
	}
	gemmKCEnv.Do(func() {
		if kc := gemmKCFromEnv(os.Getenv(GemmKCEnv)); kc > 0 {
			// CompareAndSwap so an earlier SetGemmKC still wins.
			gemmKCPin.CompareAndSwap(0, int64(kc))
		}
	})
	if v := gemmKCPin.Load(); v > 0 {
		return int(v)
	}
	autotuneKC()
	return int(gemmKCAuto.Load())
}

// gemmKCFromEnv parses a GemmKCEnv value; empty, malformed, or
// non-positive strings mean "no pin" (0).
func gemmKCFromEnv(s string) int {
	if s == "" {
		return 0
	}
	kc, err := strconv.Atoi(s)
	if err != nil || kc <= 0 {
		return 0
	}
	return kc
}

// autotuneKC times one mid-sized packed multiply per candidate panel
// depth and keeps the fastest. It runs once per process, costs a few
// milliseconds, and only ever changes performance: the kernel's output
// is identical for every KC.
func autotuneKC() {
	gemmKCOnce.Do(func() {
		const sz = 160
		a := make([]float64, sz*sz)
		b := make([]float64, sz*sz)
		dst := make([]float64, sz*sz)
		for i := range a {
			a[i] = float64(i%17) - 8
			b[i] = float64(i%13) - 6
		}
		best, bestT := gemmKCCandidates[0], time.Duration(1<<62)
		for _, kc := range gemmKCCandidates {
			clear(dst)
			start := time.Now()
			packBuf := packB(b, sz, sz, kc)
			gemmPackedRows(dst, a, packBuf, 0, sz, sz, sz, kc)
			if d := time.Since(start); d < bestT {
				best, bestT = kc, d
			}
			putPackBuf(packBuf)
		}
		gemmKCAuto.Store(int64(best))
	})
}

// packPool recycles the packed-B buffers so the steady-state packed
// multiply performs no allocation beyond its result tensor.
var packPool = sync.Pool{New: func() any { return new([]float64) }}

func getPackBuf(n int) []float64 {
	bp := packPool.Get().(*[]float64)
	buf := *bp
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	*bp = nil
	packPool.Put(bp)
	return buf[:n]
}

func putPackBuf(buf []float64) {
	bp := packPool.Get().(*[]float64)
	*bp = buf
	packPool.Put(bp)
}

// packB repacks the (k, n) matrix b into KC-deep column micro-panels:
// for each k-panel, for each NR-wide column tile, the panel's rows are
// stored contiguously NR values at a time. The trailing column tile is
// zero-padded to NR so the micro-kernel never branches on width; the
// padded lanes are discarded at store time.
func packB(b []float64, k, n, kc int) []float64 {
	nTiles := (n + gemmNR - 1) / gemmNR
	buf := getPackBuf(k * nTiles * gemmNR)
	pos := 0
	for k0 := 0; k0 < k; k0 += kc {
		k1 := k0 + kc
		if k1 > k {
			k1 = k
		}
		for jt := 0; jt < nTiles; jt++ {
			j0 := jt * gemmNR
			for kk := k0; kk < k1; kk++ {
				row := b[kk*n:]
				for r := 0; r < gemmNR; r++ {
					if j := j0 + r; j < n {
						buf[pos] = row[j]
					} else {
						buf[pos] = 0
					}
					pos++
				}
			}
		}
	}
	return buf
}

// gemmPackedRows computes output rows [lo, hi) of the (m, n) product
// from a and the packed B buffer. Row pairs share each packed panel
// load; the accumulation order for every output element is ascending k
// with the matmulRows zero-skip, so the result is bit-identical to the
// row-streamed kernel.
func gemmPackedRows(dst, a, packed []float64, lo, hi, k, n, kc int) {
	nTiles := (n + gemmNR - 1) / gemmNR
	panelStride := nTiles * gemmNR // packed values per k-row
	i := lo
	for ; i+1 < hi; i += 2 {
		gemmPackedRowPair(dst, a, packed, i, k, n, kc, panelStride)
	}
	if i < hi {
		gemmPackedRow(dst, a, packed, i, k, n, kc, panelStride)
	}
}

// gemmPackedRowPair advances two output rows through every k-panel and
// column tile, holding 2x4 accumulators in registers.
func gemmPackedRowPair(dst, a, packed []float64, i, k, n, kc, panelStride int) {
	arow0 := a[i*k : (i+1)*k]
	arow1 := a[(i+1)*k : (i+2)*k]
	drow0 := dst[i*n : (i+1)*n]
	drow1 := dst[(i+1)*n : (i+2)*n]
	panelBase := 0
	for k0 := 0; k0 < k; k0 += kc {
		k1 := k0 + kc
		if k1 > k {
			k1 = k
		}
		depth := k1 - k0
		for j0 := 0; j0 < n; j0 += gemmNR {
			bp := packed[panelBase+(j0/gemmNR)*depth*gemmNR:]
			nj := n - j0
			if nj >= gemmNR {
				var c00, c01, c02, c03 float64
				var c10, c11, c12, c13 float64
				c00, c01, c02, c03 = drow0[j0], drow0[j0+1], drow0[j0+2], drow0[j0+3]
				c10, c11, c12, c13 = drow1[j0], drow1[j0+1], drow1[j0+2], drow1[j0+3]
				p := 0
				for kk := k0; kk < k1; kk++ {
					b0, b1, b2, b3 := bp[p], bp[p+1], bp[p+2], bp[p+3]
					p += gemmNR
					if av := arow0[kk]; av != 0 {
						c00 += av * b0
						c01 += av * b1
						c02 += av * b2
						c03 += av * b3
					}
					if av := arow1[kk]; av != 0 {
						c10 += av * b0
						c11 += av * b1
						c12 += av * b2
						c13 += av * b3
					}
				}
				drow0[j0], drow0[j0+1], drow0[j0+2], drow0[j0+3] = c00, c01, c02, c03
				drow1[j0], drow1[j0+1], drow1[j0+2], drow1[j0+3] = c10, c11, c12, c13
				continue
			}
			// Trailing tile: the packed panel is zero-padded, so run the
			// same kernel into a stack tile and copy out the valid lanes.
			var t0, t1 [gemmNR]float64
			for r := 0; r < nj; r++ {
				t0[r] = drow0[j0+r]
				t1[r] = drow1[j0+r]
			}
			p := 0
			for kk := k0; kk < k1; kk++ {
				if av := arow0[kk]; av != 0 {
					t0[0] += av * bp[p]
					t0[1] += av * bp[p+1]
					t0[2] += av * bp[p+2]
					t0[3] += av * bp[p+3]
				}
				if av := arow1[kk]; av != 0 {
					t1[0] += av * bp[p]
					t1[1] += av * bp[p+1]
					t1[2] += av * bp[p+2]
					t1[3] += av * bp[p+3]
				}
				p += gemmNR
			}
			for r := 0; r < nj; r++ {
				drow0[j0+r] = t0[r]
				drow1[j0+r] = t1[r]
			}
		}
		panelBase += depth * panelStride
	}
}

// gemmPackedRow is the single-row tail of gemmPackedRowPair.
func gemmPackedRow(dst, a, packed []float64, i, k, n, kc, panelStride int) {
	arow := a[i*k : (i+1)*k]
	drow := dst[i*n : (i+1)*n]
	panelBase := 0
	for k0 := 0; k0 < k; k0 += kc {
		k1 := k0 + kc
		if k1 > k {
			k1 = k
		}
		depth := k1 - k0
		for j0 := 0; j0 < n; j0 += gemmNR {
			bp := packed[panelBase+(j0/gemmNR)*depth*gemmNR:]
			nj := n - j0
			if nj >= gemmNR {
				c0, c1, c2, c3 := drow[j0], drow[j0+1], drow[j0+2], drow[j0+3]
				p := 0
				for kk := k0; kk < k1; kk++ {
					if av := arow[kk]; av != 0 {
						c0 += av * bp[p]
						c1 += av * bp[p+1]
						c2 += av * bp[p+2]
						c3 += av * bp[p+3]
					}
					p += gemmNR
				}
				drow[j0], drow[j0+1], drow[j0+2], drow[j0+3] = c0, c1, c2, c3
				continue
			}
			var t [gemmNR]float64
			for r := 0; r < nj; r++ {
				t[r] = drow[j0+r]
			}
			p := 0
			for kk := k0; kk < k1; kk++ {
				if av := arow[kk]; av != 0 {
					t[0] += av * bp[p]
					t[1] += av * bp[p+1]
					t[2] += av * bp[p+2]
					t[3] += av * bp[p+3]
				}
				p += gemmNR
			}
			for r := 0; r < nj; r++ {
				drow[j0+r] = t[r]
			}
		}
		panelBase += depth * panelStride
	}
}

// matMulPackedInto computes the full (m, n) product into the zero-filled
// dst slice using the packed kernel, fanning output row chunks out over
// the persistent worker pool. Rows are independent, so the result is
// bit-identical at any worker count.
func matMulPackedInto(dst, a, b []float64, m, k, n int) {
	kc := resolveGemmKC()
	packed := packB(b, k, n, kc)
	parallel.Shared().RunRange(m, gemmRowChunk, func(lo, hi int) {
		gemmPackedRows(dst, a, packed, lo, hi, k, n, kc)
	})
	putPackBuf(packed)
}

// MatMulF32 is the mixed-precision fast path of the packed runtime:
// operands are narrowed to float32 once at the boundary, the packed
// parallel kernel multiplies and accumulates in float32 (ascending-k
// order, so the result is bit-identical at any worker count), and the
// product is widened back to float64 on the way out. The error contract
// is the same K * 2^-24 bound MatMulTiledF32 pins; like that kernel, no
// byte-pinned f64 path routes through here — callers opt in.
func (t *Tensor) MatMulF32(u *Tensor) *Tensor {
	if t.Rank() != 2 || u.Rank() != 2 {
		panic("tensor: MatMulF32 of non-matrix operands")
	}
	m, k := t.shape[0], t.shape[1]
	k2, n := u.shape[0], u.shape[1]
	if k != k2 {
		panic("tensor: MatMulF32 inner dimension mismatch")
	}
	kc := resolveGemmKC()
	a32 := narrowF32(t.data)
	b32 := narrowF32(u.data)
	dst32 := make([]float32, m*n)
	packed := packBF32(b32, k, n, kc)
	parallel.Shared().RunRange(m, gemmRowChunk, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			gemmPackedRowF32(dst32, a32, packed, i, k, n, kc)
		}
	})
	r := newIn(t.arena, []int{m, n})
	for i, v := range dst32 {
		r.data[i] = float64(v)
	}
	return r
}

// packBF32 is packB in float32.
func packBF32(b []float32, k, n, kc int) []float32 {
	nTiles := (n + gemmNR - 1) / gemmNR
	buf := make([]float32, k*nTiles*gemmNR)
	pos := 0
	for k0 := 0; k0 < k; k0 += kc {
		k1 := k0 + kc
		if k1 > k {
			k1 = k
		}
		for jt := 0; jt < nTiles; jt++ {
			j0 := jt * gemmNR
			for kk := k0; kk < k1; kk++ {
				row := b[kk*n:]
				for r := 0; r < gemmNR; r++ {
					if j := j0 + r; j < n {
						buf[pos] = row[j]
					}
					pos++
				}
			}
		}
	}
	return buf
}

// gemmPackedRowF32 is gemmPackedRow in float32: same panel walk, same
// zero-skip, narrow multiply-accumulate.
func gemmPackedRowF32(dst, a, packed []float32, i, k, n, kc int) {
	nTiles := (n + gemmNR - 1) / gemmNR
	panelStride := nTiles * gemmNR
	arow := a[i*k : (i+1)*k]
	drow := dst[i*n : (i+1)*n]
	panelBase := 0
	for k0 := 0; k0 < k; k0 += kc {
		k1 := k0 + kc
		if k1 > k {
			k1 = k
		}
		depth := k1 - k0
		for j0 := 0; j0 < n; j0 += gemmNR {
			bp := packed[panelBase+(j0/gemmNR)*depth*gemmNR:]
			nj := n - j0
			if nj >= gemmNR {
				c0, c1, c2, c3 := drow[j0], drow[j0+1], drow[j0+2], drow[j0+3]
				p := 0
				for kk := k0; kk < k1; kk++ {
					if av := arow[kk]; av != 0 {
						c0 += av * bp[p]
						c1 += av * bp[p+1]
						c2 += av * bp[p+2]
						c3 += av * bp[p+3]
					}
					p += gemmNR
				}
				drow[j0], drow[j0+1], drow[j0+2], drow[j0+3] = c0, c1, c2, c3
				continue
			}
			var t [gemmNR]float32
			for r := 0; r < nj; r++ {
				t[r] = drow[j0+r]
			}
			p := 0
			for kk := k0; kk < k1; kk++ {
				if av := arow[kk]; av != 0 {
					t[0] += av * bp[p]
					t[1] += av * bp[p+1]
					t[2] += av * bp[p+2]
					t[3] += av * bp[p+3]
				}
				p += gemmNR
			}
			for r := 0; r < nj; r++ {
				drow[j0+r] = t[r]
			}
		}
		panelBase += depth * panelStride
	}
}
