package tensor

import (
	"testing"

	"summitscale/internal/stats"
)

// naiveConv2D is a direct reference implementation used to validate the
// im2col-based kernel.
func naiveConv2D(x, kernel, bias *Tensor, opts Conv2DOpts) *Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	f, kh, kw := kernel.Dim(0), kernel.Dim(2), kernel.Dim(3)
	s, p := opts.Stride, opts.Padding
	oh := (h+2*p-kh)/s + 1
	ow := (w+2*p-kw)/s + 1
	out := New(n, f, oh, ow)
	for img := 0; img < n; img++ {
		for fo := 0; fo < f; fo++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc float64
					for ch := 0; ch < c; ch++ {
						for ky := 0; ky < kh; ky++ {
							for kx := 0; kx < kw; kx++ {
								iy, ix := oy*s-p+ky, ox*s-p+kx
								if iy >= 0 && iy < h && ix >= 0 && ix < w {
									acc += x.At(img, ch, iy, ix) * kernel.At(fo, ch, ky, kx)
								}
							}
						}
					}
					if bias != nil {
						acc += bias.At(fo)
					}
					out.Set(acc, img, fo, oy, ox)
				}
			}
		}
	}
	return out
}

func TestConv2DMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(1)
	cases := []struct {
		n, c, h, w, f, k, stride, pad int
	}{
		{1, 1, 5, 5, 1, 3, 1, 0},
		{2, 3, 8, 8, 4, 3, 1, 1},
		{1, 2, 7, 9, 3, 3, 2, 1},
		{2, 1, 6, 6, 2, 2, 2, 0},
		{1, 4, 5, 5, 8, 1, 1, 0}, // 1x1 conv
	}
	for _, c := range cases {
		x := Randn(rng, 1, c.n, c.c, c.h, c.w)
		kern := Randn(rng, 1, c.f, c.c, c.k, c.k)
		bias := Randn(rng, 1, c.f)
		opts := Conv2DOpts{Stride: c.stride, Padding: c.pad}
		got := Conv2D(x, kern, bias, opts)
		want := naiveConv2D(x, kern, bias, opts)
		if !got.Equal(want, 1e-10) {
			t.Errorf("Conv2D mismatch for case %+v", c)
		}
	}
}

func TestConv2DNilBias(t *testing.T) {
	rng := stats.NewRNG(2)
	x := Randn(rng, 1, 1, 2, 4, 4)
	kern := Randn(rng, 1, 2, 2, 3, 3)
	opts := Conv2DOpts{Stride: 1, Padding: 1}
	got := Conv2D(x, kern, nil, opts)
	want := naiveConv2D(x, kern, nil, opts)
	if !got.Equal(want, 1e-10) {
		t.Fatal("nil-bias conv mismatch")
	}
}

func TestConv2DOutputShape(t *testing.T) {
	x := New(2, 3, 32, 32)
	kern := New(16, 3, 3, 3)
	out := Conv2D(x, kern, nil, Conv2DOpts{Stride: 2, Padding: 1})
	want := []int{2, 16, 16, 16}
	for i, d := range want {
		if out.Dim(i) != d {
			t.Fatalf("shape = %v, want %v", out.Shape(), want)
		}
	}
}

// TestCol2ImAdjoint verifies <Im2Col(x), y> == <x, Col2Im(y)>, the adjoint
// identity that makes the convolution backward pass correct.
func TestCol2ImAdjoint(t *testing.T) {
	rng := stats.NewRNG(3)
	n, c, h, w, kh, kw := 2, 3, 6, 5, 3, 2
	opts := Conv2DOpts{Stride: 2, Padding: 1}
	x := Randn(rng, 1, n, c, h, w)
	cols := Im2Col(x, kh, kw, opts)
	y := Randn(rng, 1, cols.Dim(0), cols.Dim(1))

	lhs := cols.Mul(y).Sum()
	back := Col2Im(y, n, c, h, w, kh, kw, opts)
	rhs := x.Mul(back).Sum()
	if diff := lhs - rhs; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestMaxPool2D(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 1, 4, 4)
	out, arg := MaxPool2D(x, 2, 2)
	want := FromSlice([]float64{4, 8, 12, 16}, 1, 1, 2, 2)
	if !out.Equal(want, 0) {
		t.Fatalf("MaxPool = %v", out)
	}
	// argmax indices must point at the maxima in the input data.
	for i, a := range arg {
		if x.Data()[a] != out.Data()[i] {
			t.Fatalf("arg[%d] = %d points at %v, want %v", i, a, x.Data()[a], out.Data()[i])
		}
	}
}

func TestAvgPool2DGlobal(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	out := AvgPool2DGlobal(x)
	if out.At(0, 0) != 2.5 || out.At(0, 1) != 25 {
		t.Fatalf("AvgPoolGlobal = %v", out)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := stats.NewRNG(1)
	x := Randn(rng, 1, 128, 128)
	y := Randn(rng, 1, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MatMul(y)
	}
}

func BenchmarkConv2D(b *testing.B) {
	rng := stats.NewRNG(1)
	x := Randn(rng, 1, 4, 3, 32, 32)
	kern := Randn(rng, 1, 16, 3, 3, 3)
	bias := Randn(rng, 1, 16)
	opts := Conv2DOpts{Stride: 1, Padding: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(x, kern, bias, opts)
	}
}
