// Package tensor implements the dense numerical arrays underneath the
// deep-learning stack: row-major float64 tensors with elementwise
// arithmetic, parallel blocked matrix multiplication, 2-D convolution via
// im2col, pooling, and axis reductions.
//
// Tensors are contiguous and row-major. Shapes are immutable after
// creation; Reshape returns a view sharing the backing slice. float64 is
// used throughout so that finite-difference gradient checks in the autograd
// package are accurate; the mixed-precision behaviour Summit exploits is
// modelled separately (see internal/ddl and internal/perf).
package tensor

import (
	"fmt"
	"math"

	"summitscale/internal/stats"
)

// Tensor is a dense row-major array of float64. A tensor optionally
// belongs to an Arena; operations allocate their results from the
// receiver's arena so step-scoped temporaries inherit step-scoped storage.
type Tensor struct {
	shape []int
	data  []float64
	arena *Arena
}

// New returns a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data (not copied) in a tensor of the given shape. It
// panics if the element count does not match.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Randn fills a new tensor with N(0, sd) variates drawn from rng.
func Randn(rng *stats.RNG, sd float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * sd
	}
	return t
}

// Uniform fills a new tensor with uniform variates in [lo, hi).
func Uniform(rng *stats.RNG, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// checkShape must not pass shape itself to fmt: like offset, doing so
// makes every variadic shape argument escape, costing one heap allocation
// per tensor-producing call even when the tensor itself is arena-backed.
func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape", d))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The caller must not modify it.
func (t *Tensor) Shape() []int { return t.shape }

// Size returns the total element count.
func (t *Tensor) Size() int { return len(t.data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Data returns the backing slice. Mutations are visible to all views.
func (t *Tensor) Data() []float64 { return t.data }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// offset must not pass idx itself to fmt: doing so makes the index slice
// escape, which puts one heap allocation on every variadic At/Set call in
// the training hot loops. Only scalars and the (already heap) shape may
// reach the panic messages.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: rank-%d index for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dimension %d of shape %v", x, i, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy (in t's arena, when it has one).
func (t *Tensor) Clone() *Tensor {
	c := newIn(t.arena, t.shape)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view with a new shape sharing t's data. The total
// element count must be unchanged.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	return t.ReshapeIn(t.arena, shape...)
}

// ReshapeIn is Reshape placing the view's bookkeeping (struct and shape
// copy) in arena a instead of t's own arena. Backward passes use it to view
// heap-resident parameters without per-step heap allocation; the view dies
// with the arena while the parameter data lives on.
func (t *Tensor) ReshapeIn(a *Arena, shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to rank-%d shape of %d elements", t.shape, len(shape), n))
	}
	return viewIn(a, shape, t.data)
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

func (t *Tensor) mustMatch(u *Tensor, op string) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, u.shape))
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Add returns t + u elementwise.
func (t *Tensor) Add(u *Tensor) *Tensor {
	t.mustMatch(u, "Add")
	r := newIn(t.arena, t.shape)
	for i := range t.data {
		r.data[i] = t.data[i] + u.data[i]
	}
	return r
}

// Sub returns t - u elementwise.
func (t *Tensor) Sub(u *Tensor) *Tensor {
	t.mustMatch(u, "Sub")
	r := newIn(t.arena, t.shape)
	for i := range t.data {
		r.data[i] = t.data[i] - u.data[i]
	}
	return r
}

// Mul returns t * u elementwise (Hadamard product).
func (t *Tensor) Mul(u *Tensor) *Tensor {
	t.mustMatch(u, "Mul")
	r := newIn(t.arena, t.shape)
	for i := range t.data {
		r.data[i] = t.data[i] * u.data[i]
	}
	return r
}

// Div returns t / u elementwise.
func (t *Tensor) Div(u *Tensor) *Tensor {
	t.mustMatch(u, "Div")
	r := newIn(t.arena, t.shape)
	for i := range t.data {
		r.data[i] = t.data[i] / u.data[i]
	}
	return r
}

// AddInPlace accumulates u into t and returns t.
func (t *Tensor) AddInPlace(u *Tensor) *Tensor {
	t.mustMatch(u, "AddInPlace")
	for i := range t.data {
		t.data[i] += u.data[i]
	}
	return t
}

// AddScaledInPlace accumulates s*u into t and returns t — the fused axpy
// kernel of the optimizer and gradient-accumulation hot paths, which would
// otherwise materialize u.Scale(s) per call.
func (t *Tensor) AddScaledInPlace(u *Tensor, s float64) *Tensor {
	t.mustMatch(u, "AddScaledInPlace")
	for i := range t.data {
		t.data[i] += s * u.data[i]
	}
	return t
}

// Scale returns t * s elementwise.
func (t *Tensor) Scale(s float64) *Tensor {
	r := newIn(t.arena, t.shape)
	for i := range t.data {
		r.data[i] = t.data[i] * s
	}
	return r
}

// ScaleInPlace multiplies t by s in place and returns t.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AddScalar returns t + s elementwise.
func (t *Tensor) AddScalar(s float64) *Tensor {
	r := newIn(t.arena, t.shape)
	for i := range t.data {
		r.data[i] = t.data[i] + s
	}
	return r
}

// Apply returns f applied elementwise.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	r := newIn(t.arena, t.shape)
	for i := range t.data {
		r.data[i] = f(t.data[i])
	}
	return r
}

// ApplyInPlace overwrites t with f applied elementwise and returns t.
func (t *Tensor) ApplyInPlace(f func(float64) float64) *Tensor {
	for i := range t.data {
		t.data[i] = f(t.data[i])
	}
	return t
}

// AddRow adds the length-C row vector to every row of the (N, C) matrix t.
// It is the broadcast used for bias addition.
func (t *Tensor) AddRow(row *Tensor) *Tensor {
	if t.Rank() != 2 || row.Rank() != 1 || row.shape[0] != t.shape[1] {
		panic(fmt.Sprintf("tensor: AddRow shapes %v, %v", t.shape, row.shape))
	}
	r := newIn(t.arena, t.shape)
	n, c := t.shape[0], t.shape[1]
	for i := 0; i < n; i++ {
		base := i * c
		for j := 0; j < c; j++ {
			r.data[base+j] = t.data[base+j] + row.data[j]
		}
	}
	return r
}

// Norm returns the Euclidean (L2) norm of all elements.
func (t *Tensor) Norm() float64 {
	var s float64
	for _, x := range t.data {
		s += x * x
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, x := range t.data {
		s += x
	}
	return s
}

// Mean returns the mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.data)) }

// MaxAbs returns the largest absolute element value.
func (t *Tensor) MaxAbs() float64 {
	var m float64
	for _, x := range t.data {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Equal reports elementwise equality within tol.
func (t *Tensor) Equal(u *Tensor, tol float64) bool {
	if !t.SameShape(u) {
		return false
	}
	for i := range t.data {
		if math.Abs(t.data[i]-u.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small tensors fully and large ones as a shape summary.
func (t *Tensor) String() string {
	if len(t.data) <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v[n=%d, norm=%.4g]", t.shape, len(t.data), t.Norm())
}
