package tensor

import "testing"

// TestArenaZeroedAndDisjoint pins the two properties arithmetic relies on:
// arena tensors come back zero-filled (like New) and successive allocations
// never alias.
func TestArenaZeroedAndDisjoint(t *testing.T) {
	a := NewArena()
	x := a.New(4, 4)
	for i := range x.Data() {
		x.Data()[i] = 7
	}
	y := a.New(4, 4)
	for _, v := range y.Data() {
		if v != 0 {
			t.Fatal("arena tensor not zero-filled")
		}
	}
	y.Fill(3)
	for _, v := range x.Data() {
		if v != 7 {
			t.Fatal("allocations alias")
		}
	}
	if x.Arena() != a || y.Arena() != a {
		t.Fatal("arena tensors must report their arena")
	}
}

// TestArenaResetReusesSlabs: after a warm-up pass, repeating the same
// allocation sequence must not grow the arena footprint, and memory is
// recycled (the second pass's tensors reuse the first's slabs).
func TestArenaResetReusesSlabs(t *testing.T) {
	a := NewArena()
	pass := func() []*Tensor {
		var ts []*Tensor
		for i := 0; i < 10; i++ {
			ts = append(ts, a.New(32, 32))
		}
		return ts
	}
	first := pass()
	warm := a.Cap()
	if warm == 0 {
		t.Fatal("warm arena reports zero capacity")
	}
	a.Reset()
	second := pass()
	if got := a.Cap(); got != warm {
		t.Fatalf("repeat pass grew the arena: %d -> %d floats", warm, got)
	}
	if &first[0].Data()[0] != &second[0].Data()[0] {
		t.Fatal("reset did not recycle slab memory")
	}
	// Zeroed again despite the first pass's writes.
	first[3].Fill(9)
	a.Reset()
	if v := a.New(32, 32); v.Data()[0] != 0 {
		t.Fatal("recycled memory not re-zeroed")
	}
}

// TestArenaOversizedAllocation: requests larger than the slab size get a
// dedicated slab rather than panicking or splitting.
func TestArenaOversizedAllocation(t *testing.T) {
	a := NewArena()
	big := a.New(arenaFloatSlab + 100)
	if big.Size() != arenaFloatSlab+100 {
		t.Fatal("oversized allocation has wrong size")
	}
	small := a.New(8)
	small.Fill(1)
	if big.Data()[len(big.Data())-1] != 0 {
		t.Fatal("oversized and small allocations overlap")
	}
}

// TestArenaInheritance: operation results and views inherit the receiver's
// arena; heap tensors never pick one up.
func TestArenaInheritance(t *testing.T) {
	a := NewArena()
	x := FullIn(a, 2, 3, 3)
	heap := Full(2, 3, 3)
	if heap.Arena() != nil {
		t.Fatal("heap tensor claims an arena")
	}
	cases := map[string]*Tensor{
		"Add":         x.Add(heap),
		"Scale":       x.Scale(2),
		"Apply":       x.Apply(func(v float64) float64 { return v }),
		"Clone":       x.Clone(),
		"Reshape":     x.Reshape(9),
		"MatMul":      x.Reshape(3, 3).MatMul(heap.Reshape(3, 3)),
		"Transpose2D": x.Reshape(3, 3).Transpose2D(),
		"SumAxis0":    x.Reshape(3, 3).SumAxis0(),
		"SoftmaxRows": x.Reshape(3, 3).SoftmaxRows(),
	}
	for name, r := range cases {
		if r.Arena() != a {
			t.Errorf("%s result did not inherit the arena", name)
		}
	}
	if heap.Add(x).Arena() != nil {
		t.Error("heap receiver result must stay on the heap")
	}
	// NewIn with a nil arena is plain heap allocation.
	if NewIn(nil, 2, 2).Arena() != nil {
		t.Error("NewIn(nil) must allocate from the heap")
	}
}

// TestArenaSteadyStateAllocs: once warm, an arena-backed op chain performs
// zero heap allocations per iteration.
func TestArenaSteadyStateAllocs(t *testing.T) {
	a := NewArena()
	heap := Full(1, 16, 16)
	iter := func() {
		a.Reset()
		x := NewIn(a, 16, 16)
		copy(x.Data(), heap.Data())
		y := x.MatMul(x).Add(x).Scale(0.5)
		_ = y.Transpose2D().SumAxis0()
	}
	iter() // warm the slabs
	if n := testing.AllocsPerRun(20, iter); n > 0 {
		t.Errorf("steady-state arena op chain allocates %v times per run", n)
	}
}
