package autograd

import (
	"math"

	"summitscale/internal/tensor"
)

// GradCheck compares the analytic gradient of f with central finite
// differences at each element of the given leaves. f must rebuild the graph
// from the leaves' current Data and return a scalar Value. It returns the
// largest relative error observed.
//
// It is used by the test suite but exported because example and workflow
// code also uses it to validate learned-potential implementations.
func GradCheck(f func() *Value, leaves []*Value, eps float64) float64 {
	// Analytic pass.
	for _, l := range leaves {
		l.ZeroGrad()
	}
	out := f()
	out.Backward(nil)
	analytic := make([]*tensor.Tensor, len(leaves))
	for i, l := range leaves {
		if l.Grad == nil {
			analytic[i] = tensor.New(l.Data.Shape()...)
		} else {
			analytic[i] = l.Grad.Clone()
		}
	}

	worst := 0.0
	for li, l := range leaves {
		data := l.Data.Data()
		for i := range data {
			orig := data[i]
			data[i] = orig + eps
			fp := f().Data.At(0)
			data[i] = orig - eps
			fm := f().Data.At(0)
			data[i] = orig
			numeric := (fp - fm) / (2 * eps)
			a := analytic[li].Data()[i]
			denom := math.Max(1, math.Max(math.Abs(a), math.Abs(numeric)))
			if rel := math.Abs(a-numeric) / denom; rel > worst {
				worst = rel
			}
		}
	}
	return worst
}
