package autograd

import (
	"fmt"

	"summitscale/internal/tensor"
)

// Conv1D applies a dilated causal 1-D convolution: input (N, C, T),
// kernel (F, C, K), optional bias (F); output (N, F, T). Causal padding
// (K-1)*dilation keeps the output length equal to the input length and
// ensures position t sees only positions <= t — the WaveNet structure of
// Khan et al.'s network.
func Conv1D(a, kernel, bias *Value, dilation int) *Value {
	if a.Data.Rank() != 3 || kernel.Data.Rank() != 3 {
		panic("autograd: Conv1D wants (N,C,T) input and (F,C,K) kernel")
	}
	if dilation < 1 {
		panic("autograd: Conv1D dilation must be >= 1")
	}
	n, c, tLen := a.Data.Dim(0), a.Data.Dim(1), a.Data.Dim(2)
	f, kc, k := kernel.Data.Dim(0), kernel.Data.Dim(1), kernel.Data.Dim(2)
	if kc != c {
		panic(fmt.Sprintf("autograd: Conv1D channels %d vs kernel %d", c, kc))
	}
	if bias != nil && (bias.Data.Rank() != 1 || bias.Data.Dim(0) != f) {
		panic("autograd: Conv1D bias shape")
	}

	out := tensor.New(n, f, tLen)
	ad, kd, od := a.Data.Data(), kernel.Data.Data(), out.Data()
	idxIn := func(img, ch, t int) int { return (img*c+ch)*tLen + t }
	idxOut := func(img, ch, t int) int { return (img*f+ch)*tLen + t }
	idxK := func(fo, ch, kk int) int { return (fo*c+ch)*k + kk }
	for img := 0; img < n; img++ {
		for fo := 0; fo < f; fo++ {
			var b0 float64
			if bias != nil {
				b0 = bias.Data.At(fo)
			}
			for t := 0; t < tLen; t++ {
				acc := b0
				for ch := 0; ch < c; ch++ {
					for kk := 0; kk < k; kk++ {
						// Causal: tap kk reaches back (k-1-kk)*dilation.
						ti := t - (k-1-kk)*dilation
						if ti >= 0 {
							acc += ad[idxIn(img, ch, ti)] * kd[idxK(fo, ch, kk)]
						}
					}
				}
				od[idxOut(img, fo, t)] = acc
			}
		}
	}

	parents := []*Value{a, kernel}
	if bias != nil {
		parents = append(parents, bias)
	}
	node := newNode(out, parents...)
	node.backward = func() {
		gd := node.Grad.Data()
		ga := tensor.New(a.Data.Shape()...)
		gk := tensor.New(kernel.Data.Shape()...)
		gad, gkd := ga.Data(), gk.Data()
		var gb *tensor.Tensor
		if bias != nil {
			gb = tensor.New(f)
		}
		for img := 0; img < n; img++ {
			for fo := 0; fo < f; fo++ {
				for t := 0; t < tLen; t++ {
					g := gd[idxOut(img, fo, t)]
					if g == 0 {
						continue
					}
					if gb != nil {
						gb.Data()[fo] += g
					}
					for ch := 0; ch < c; ch++ {
						for kk := 0; kk < k; kk++ {
							ti := t - (k-1-kk)*dilation
							if ti >= 0 {
								gad[idxIn(img, ch, ti)] += g * kd[idxK(fo, ch, kk)]
								gkd[idxK(fo, ch, kk)] += g * ad[idxIn(img, ch, ti)]
							}
						}
					}
				}
			}
		}
		a.accum(ga)
		kernel.accum(gk)
		if bias != nil {
			bias.accum(gb)
		}
	}
	return node
}
