package autograd

import (
	"math"
	"testing"

	"summitscale/internal/stats"
	"summitscale/internal/tensor"
)

const gradTol = 1e-6

func leaf(rng *stats.RNG, sd float64, shape ...int) *Value {
	return NewLeaf(tensor.Randn(rng, sd, shape...), true)
}

func TestAddBackward(t *testing.T) {
	rng := stats.NewRNG(1)
	a, b := leaf(rng, 1, 3, 4), leaf(rng, 1, 3, 4)
	if w := GradCheck(func() *Value { return Sum(Add(a, b)) }, []*Value{a, b}, 1e-6); w > gradTol {
		t.Fatalf("Add gradcheck error %v", w)
	}
}

func TestSubMulBackward(t *testing.T) {
	rng := stats.NewRNG(2)
	a, b := leaf(rng, 1, 2, 5), leaf(rng, 1, 2, 5)
	if w := GradCheck(func() *Value { return Sum(Mul(Sub(a, b), a)) }, []*Value{a, b}, 1e-6); w > gradTol {
		t.Fatalf("Sub/Mul gradcheck error %v", w)
	}
}

func TestMatMulBackward(t *testing.T) {
	rng := stats.NewRNG(3)
	a, b := leaf(rng, 1, 4, 3), leaf(rng, 1, 3, 5)
	if w := GradCheck(func() *Value { return Sum(MatMul(a, b)) }, []*Value{a, b}, 1e-6); w > gradTol {
		t.Fatalf("MatMul gradcheck error %v", w)
	}
}

func TestAddRowBackward(t *testing.T) {
	rng := stats.NewRNG(4)
	a, row := leaf(rng, 1, 4, 3), leaf(rng, 1, 3)
	if w := GradCheck(func() *Value { return Sum(Square(AddRow(a, row))) }, []*Value{a, row}, 1e-6); w > gradTol {
		t.Fatalf("AddRow gradcheck error %v", w)
	}
}

func TestActivationsBackward(t *testing.T) {
	rng := stats.NewRNG(5)
	for name, act := range map[string]func(*Value) *Value{
		"tanh":    Tanh,
		"sigmoid": Sigmoid,
		"gelu":    GELU,
		"exp":     Exp,
		"softmax": Softmax,
	} {
		a := leaf(rng, 0.8, 3, 4)
		if w := GradCheck(func() *Value { return Sum(act(a)) }, []*Value{a}, 1e-6); w > 1e-5 {
			t.Errorf("%s gradcheck error %v", name, w)
		}
	}
}

func TestReLUBackward(t *testing.T) {
	// Keep values away from the kink so finite differences are valid.
	a := NewLeaf(tensor.FromSlice([]float64{1.5, -2, 0.7, -0.3, 2.2, -1.1}, 2, 3), true)
	if w := GradCheck(func() *Value { return Sum(Square(ReLU(a))) }, []*Value{a}, 1e-6); w > gradTol {
		t.Fatalf("ReLU gradcheck error %v", w)
	}
}

func TestMeanBackward(t *testing.T) {
	rng := stats.NewRNG(6)
	a := leaf(rng, 1, 5, 2)
	if w := GradCheck(func() *Value { return Mean(Square(a)) }, []*Value{a}, 1e-6); w > gradTol {
		t.Fatalf("Mean gradcheck error %v", w)
	}
}

func TestReshapeBackward(t *testing.T) {
	rng := stats.NewRNG(7)
	a := leaf(rng, 1, 2, 6)
	b := leaf(rng, 1, 4, 3)
	f := func() *Value { return Sum(MatMul(Reshape(a, 3, 4), b)) }
	if w := GradCheck(f, []*Value{a, b}, 1e-6); w > gradTol {
		t.Fatalf("Reshape gradcheck error %v", w)
	}
}

func TestSoftmaxCrossEntropyBackward(t *testing.T) {
	rng := stats.NewRNG(8)
	logits := leaf(rng, 1, 4, 3)
	labels := []int{0, 2, 1, 2}
	f := func() *Value { return SoftmaxCrossEntropy(logits, labels) }
	if w := GradCheck(f, []*Value{logits}, 1e-6); w > gradTol {
		t.Fatalf("SoftmaxCrossEntropy gradcheck error %v", w)
	}
}

func TestSoftmaxCrossEntropyValue(t *testing.T) {
	// Uniform logits over C classes must give loss log(C).
	logits := NewLeaf(tensor.New(2, 4), true)
	loss := SoftmaxCrossEntropy(logits, []int{1, 3})
	if got, want := loss.Data.At(0), math.Log(4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("uniform CE = %v, want %v", got, want)
	}
}

func TestMSEBackward(t *testing.T) {
	rng := stats.NewRNG(9)
	pred := leaf(rng, 1, 3, 2)
	target := tensor.Randn(stats.NewRNG(10), 1, 3, 2)
	f := func() *Value { return MSE(pred, target) }
	if w := GradCheck(f, []*Value{pred}, 1e-6); w > gradTol {
		t.Fatalf("MSE gradcheck error %v", w)
	}
}

func TestMSEValue(t *testing.T) {
	pred := NewLeaf(tensor.FromSlice([]float64{1, 2}, 2), true)
	target := tensor.FromSlice([]float64{0, 4}, 2)
	loss := MSE(pred, target)
	if got := loss.Data.At(0); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("MSE = %v, want 2.5", got)
	}
}

func TestConv2DBackward(t *testing.T) {
	rng := stats.NewRNG(11)
	x := leaf(rng, 1, 2, 2, 5, 5)
	k := leaf(rng, 1, 3, 2, 3, 3)
	b := leaf(rng, 1, 3)
	opts := tensor.Conv2DOpts{Stride: 2, Padding: 1}
	f := func() *Value { return Sum(Square(Conv2D(x, k, b, opts))) }
	if w := GradCheck(f, []*Value{x, k, b}, 1e-5); w > 1e-5 {
		t.Fatalf("Conv2D gradcheck error %v", w)
	}
}

func TestMaxPoolBackward(t *testing.T) {
	rng := stats.NewRNG(12)
	x := leaf(rng, 1, 1, 2, 6, 6)
	f := func() *Value { return Sum(Square(MaxPool2D(x, 2, 2))) }
	if w := GradCheck(f, []*Value{x}, 1e-6); w > 1e-5 {
		t.Fatalf("MaxPool gradcheck error %v", w)
	}
}

func TestAvgPoolGlobalBackward(t *testing.T) {
	rng := stats.NewRNG(13)
	x := leaf(rng, 1, 2, 3, 4, 4)
	f := func() *Value { return Sum(Square(AvgPoolGlobal(x))) }
	if w := GradCheck(f, []*Value{x}, 1e-6); w > gradTol {
		t.Fatalf("AvgPoolGlobal gradcheck error %v", w)
	}
}

func TestLayerNormBackward(t *testing.T) {
	rng := stats.NewRNG(14)
	x := leaf(rng, 1, 3, 6)
	g := NewLeaf(tensor.Uniform(rng, 0.5, 1.5, 6), true)
	s := leaf(rng, 0.5, 6)
	f := func() *Value { return Sum(Square(LayerNorm(x, g, s, 1e-5))) }
	if w := GradCheck(f, []*Value{x, g, s}, 1e-5); w > 1e-4 {
		t.Fatalf("LayerNorm gradcheck error %v", w)
	}
}

func TestLayerNormNormalizes(t *testing.T) {
	rng := stats.NewRNG(15)
	x := leaf(rng, 3, 4, 8)
	g := NewLeaf(tensor.Full(1, 8), false)
	s := NewLeaf(tensor.New(8), false)
	out := LayerNorm(x, g, s, 1e-8)
	for i := 0; i < 4; i++ {
		row := out.Data.Slice2DRows(i, i+1)
		if m := row.Mean(); math.Abs(m) > 1e-8 {
			t.Fatalf("row %d mean %v", i, m)
		}
		sd := math.Sqrt(row.Mul(row).Mean())
		if math.Abs(sd-1) > 1e-4 {
			t.Fatalf("row %d sd %v", i, sd)
		}
	}
}

func TestBatchNorm2DBackward(t *testing.T) {
	rng := stats.NewRNG(16)
	x := leaf(rng, 1, 2, 3, 3, 3)
	g := NewLeaf(tensor.Uniform(rng, 0.5, 1.5, 3), true)
	s := leaf(rng, 0.5, 3)
	f := func() *Value { return Sum(Square(BatchNorm2D(x, g, s, 1e-5))) }
	if w := GradCheck(f, []*Value{x, g, s}, 1e-5); w > 1e-4 {
		t.Fatalf("BatchNorm2D gradcheck error %v", w)
	}
}

func TestEmbeddingBackward(t *testing.T) {
	rng := stats.NewRNG(17)
	table := leaf(rng, 1, 5, 4)
	ids := []int{0, 3, 3, 1}
	f := func() *Value { return Sum(Square(EmbeddingLookup(table, ids))) }
	if w := GradCheck(f, []*Value{table}, 1e-6); w > gradTol {
		t.Fatalf("Embedding gradcheck error %v", w)
	}
}

func TestEmbeddingRepeatedIDsAccumulate(t *testing.T) {
	table := NewLeaf(tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2), true)
	out := EmbeddingLookup(table, []int{1, 1})
	out.Backward(tensor.Full(1, 2, 2))
	// Row 1 used twice: gradient 2 per element; row 0 unused: 0.
	want := tensor.FromSlice([]float64{0, 0, 2, 2}, 2, 2)
	if !table.Grad.Equal(want, 1e-12) {
		t.Fatalf("embedding grad = %v", table.Grad)
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := stats.NewRNG(18)
	x := NewLeaf(tensor.Full(1, 100, 10), true)
	// Eval mode: identity.
	if out := Dropout(x, 0.5, false, rng); out != x {
		t.Fatal("eval dropout is not identity")
	}
	// Train mode: roughly p of elements zeroed, survivors scaled.
	out := Dropout(x, 0.5, true, rng)
	zeros := 0
	for _, v := range out.Data.Data() {
		switch v {
		case 0:
			zeros++
		case 2:
		default:
			t.Fatalf("unexpected dropout value %v", v)
		}
	}
	frac := float64(zeros) / 1000
	if math.Abs(frac-0.5) > 0.06 {
		t.Fatalf("dropout zero fraction = %v", frac)
	}
}

func TestSharedParameterAccumulates(t *testing.T) {
	// y = a*a summed: dy/da = 2a, exercising gradient accumulation when the
	// same leaf appears twice in the graph.
	a := NewLeaf(tensor.FromSlice([]float64{3}, 1), true)
	out := Sum(Mul(a, a))
	out.Backward(nil)
	if got := a.Grad.At(0); math.Abs(got-6) > 1e-12 {
		t.Fatalf("shared-leaf grad = %v, want 6", got)
	}
}

func TestConstantGetsNoGrad(t *testing.T) {
	c := Constant(tensor.FromSlice([]float64{2}, 1))
	a := NewLeaf(tensor.FromSlice([]float64{3}, 1), true)
	out := Sum(Mul(a, c))
	out.Backward(nil)
	if c.Grad != nil {
		t.Fatal("constant accumulated a gradient")
	}
	if a.Grad.At(0) != 2 {
		t.Fatalf("grad through constant = %v", a.Grad.At(0))
	}
}

func TestConcatBackward(t *testing.T) {
	rng := stats.NewRNG(19)
	a, b := leaf(rng, 1, 2, 3), leaf(rng, 1, 4, 3)
	f := func() *Value { return Sum(Square(Concat2DRows(a, b))) }
	if w := GradCheck(f, []*Value{a, b}, 1e-6); w > gradTol {
		t.Fatalf("Concat gradcheck error %v", w)
	}
}

func TestBackwardSeedShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a := NewLeaf(tensor.New(2, 2), true)
	Sum(a).Backward(tensor.New(2))
}
