package autograd

import (
	"math"

	"summitscale/internal/stats"
	"summitscale/internal/tensor"
)

// LayerNorm normalizes each row of the rank-2 input to zero mean and unit
// variance, then applies the learned per-feature gain and shift. It is the
// normalization used in transformer blocks.
func LayerNorm(a, gain, shift *Value, eps float64) *Value {
	m, c := a.Data.Dim(0), a.Data.Dim(1)
	out := tensor.NewIn(a.Data.Arena(), m, c)
	xhat := tensor.NewIn(a.Data.Arena(), m, c)
	invStd := make([]float64, m)
	ad, od, xd := a.Data.Data(), out.Data(), xhat.Data()
	gd, sd := gain.Data.Data(), shift.Data.Data()
	for i := 0; i < m; i++ {
		row := ad[i*c : (i+1)*c]
		var mean float64
		for _, x := range row {
			mean += x
		}
		mean /= float64(c)
		var va float64
		for _, x := range row {
			d := x - mean
			va += d * d
		}
		va /= float64(c)
		is := 1 / math.Sqrt(va+eps)
		invStd[i] = is
		for j, x := range row {
			xh := (x - mean) * is
			xd[i*c+j] = xh
			od[i*c+j] = xh*gd[j] + sd[j]
		}
	}
	n := newNode(out, a, gain, shift)
	n.backward = func() {
		nd := n.Grad.Data()
		ga := tensor.NewIn(n.Grad.Arena(), m, c)
		gg := tensor.NewIn(n.Grad.Arena(), c)
		gs := tensor.NewIn(n.Grad.Arena(), c)
		gad, ggd, gsd := ga.Data(), gg.Data(), gs.Data()
		for i := 0; i < m; i++ {
			// Per-row reductions for the normalization chain rule.
			var sumDy, sumDyXhat float64
			for j := 0; j < c; j++ {
				dy := nd[i*c+j] * gd[j]
				sumDy += dy
				sumDyXhat += dy * xd[i*c+j]
			}
			for j := 0; j < c; j++ {
				dy := nd[i*c+j] * gd[j]
				gad[i*c+j] = invStd[i] * (dy - sumDy/float64(c) - xd[i*c+j]*sumDyXhat/float64(c))
				ggd[j] += nd[i*c+j] * xd[i*c+j]
				gsd[j] += nd[i*c+j]
			}
		}
		a.accum(ga)
		gain.accum(gg)
		shift.accum(gs)
	}
	return n
}

// BatchNorm2D normalizes each channel of an NCHW tensor over the batch and
// spatial dimensions (training-mode statistics), with learned per-channel
// gain and shift.
func BatchNorm2D(a, gain, shift *Value, eps float64) *Value {
	nIn, c, h, w := a.Data.Dim(0), a.Data.Dim(1), a.Data.Dim(2), a.Data.Dim(3)
	cnt := float64(nIn * h * w)
	out := tensor.NewIn(a.Data.Arena(), nIn, c, h, w)
	xhat := tensor.NewIn(a.Data.Arena(), nIn, c, h, w)
	invStd := make([]float64, c)
	ad, od, xd := a.Data.Data(), out.Data(), xhat.Data()
	gd, sd := gain.Data.Data(), shift.Data.Data()

	idx := func(img, ch, y, x int) int { return ((img*c+ch)*h+y)*w + x }
	for ch := 0; ch < c; ch++ {
		var mean float64
		for img := 0; img < nIn; img++ {
			for i := 0; i < h*w; i++ {
				mean += ad[idx(img, ch, 0, 0)+i]
			}
		}
		mean /= cnt
		var va float64
		for img := 0; img < nIn; img++ {
			for i := 0; i < h*w; i++ {
				d := ad[idx(img, ch, 0, 0)+i] - mean
				va += d * d
			}
		}
		va /= cnt
		is := 1 / math.Sqrt(va+eps)
		invStd[ch] = is
		for img := 0; img < nIn; img++ {
			base := idx(img, ch, 0, 0)
			for i := 0; i < h*w; i++ {
				xh := (ad[base+i] - mean) * is
				xd[base+i] = xh
				od[base+i] = xh*gd[ch] + sd[ch]
			}
		}
	}
	n := newNode(out, a, gain, shift)
	n.backward = func() {
		nd := n.Grad.Data()
		ga := tensor.NewIn(n.Grad.Arena(), nIn, c, h, w)
		gg := tensor.NewIn(n.Grad.Arena(), c)
		gs := tensor.NewIn(n.Grad.Arena(), c)
		gad, ggd, gsd := ga.Data(), gg.Data(), gs.Data()
		for ch := 0; ch < c; ch++ {
			var sumDy, sumDyXhat float64
			for img := 0; img < nIn; img++ {
				base := idx(img, ch, 0, 0)
				for i := 0; i < h*w; i++ {
					dy := nd[base+i] * gd[ch]
					sumDy += dy
					sumDyXhat += dy * xd[base+i]
					ggd[ch] += nd[base+i] * xd[base+i]
					gsd[ch] += nd[base+i]
				}
			}
			for img := 0; img < nIn; img++ {
				base := idx(img, ch, 0, 0)
				for i := 0; i < h*w; i++ {
					dy := nd[base+i] * gd[ch]
					gad[base+i] = invStd[ch] * (dy - sumDy/cnt - xd[base+i]*sumDyXhat/cnt)
				}
			}
		}
		a.accum(ga)
		gain.accum(gg)
		shift.accum(gs)
	}
	return n
}

// Dropout zeroes each element with probability p during training and scales
// the survivors by 1/(1-p) (inverted dropout). With train=false it is the
// identity.
func Dropout(a *Value, p float64, train bool, rng *stats.RNG) *Value {
	if !train || p <= 0 {
		return a
	}
	if p >= 1 {
		panic("autograd: dropout probability must be < 1")
	}
	mask := tensor.New(a.Data.Shape()...)
	md := mask.Data()
	keep := 1 / (1 - p)
	for i := range md {
		if !rng.Bool(p) {
			md[i] = keep
		}
	}
	n := newNode(a.Data.Mul(mask), a)
	n.backward = func() { a.accum(n.Grad.Mul(mask)) }
	return n
}

// EmbeddingLookup gathers rows of the embedding table for each id, returning
// an (len(ids), dim) matrix. Gradients scatter-add back into the table.
func EmbeddingLookup(table *Value, ids []int) *Value {
	vocab, dim := table.Data.Dim(0), table.Data.Dim(1)
	out := tensor.New(len(ids), dim)
	td, od := table.Data.Data(), out.Data()
	for i, id := range ids {
		if id < 0 || id >= vocab {
			panic("autograd: embedding id out of range")
		}
		copy(od[i*dim:(i+1)*dim], td[id*dim:(id+1)*dim])
	}
	n := newNode(out, table)
	n.backward = func() {
		g := tensor.New(vocab, dim)
		gd, nd := g.Data(), n.Grad.Data()
		for i, id := range ids {
			for j := 0; j < dim; j++ {
				gd[id*dim+j] += nd[i*dim+j]
			}
		}
		table.accum(g)
	}
	return n
}
