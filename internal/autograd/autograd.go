// Package autograd implements tape-free reverse-mode automatic
// differentiation over internal/tensor values. Each operation records its
// parents and a backward closure; Backward runs the closures in reverse
// topological order.
//
// This is the differentiation engine beneath internal/nn. It supports the
// operations needed by the model zoo: dense algebra, convolution, pooling,
// pointwise nonlinearities, normalization statistics, and the fused
// softmax-cross-entropy loss.
package autograd

import (
	"fmt"
	"math"
	"sync/atomic"

	"summitscale/internal/tensor"
)

// Value is a node in the computation graph: a tensor plus (optionally) its
// gradient and the recipe to propagate gradients to its parents.
type Value struct {
	Data *tensor.Tensor
	Grad *tensor.Tensor

	requiresGrad bool
	parents      []*Value
	backward     func()
	// visited holds the id of the last Backward traversal that saw this
	// node, replacing a per-call visited map (one heap map per step) with
	// a field write. Ids come from a process-wide atomic counter, so
	// concurrent Backward calls over disjoint graphs stay correct; as with
	// gradient accumulation, a graph belongs to one goroutine at a time.
	visited uint64
}

// NewLeaf wraps t as a graph leaf. If requiresGrad is true, Backward will
// accumulate into v.Grad.
func NewLeaf(t *tensor.Tensor, requiresGrad bool) *Value {
	return &Value{Data: t, requiresGrad: requiresGrad}
}

// Constant wraps t as a non-differentiable leaf.
func Constant(t *tensor.Tensor) *Value { return NewLeaf(t, false) }

// ConstantIn is Constant bootstrapping arena allocation: when a is non-nil
// the leaf holds a copy of t in the arena, and because tensor operations
// inherit their receiver's arena, every downstream node of the graph — and
// every backward temporary derived from it — is arena-allocated too. A nil
// arena wraps t directly, exactly like Constant.
func ConstantIn(a *tensor.Arena, t *tensor.Tensor) *Value {
	if a == nil {
		return Constant(t)
	}
	c := tensor.NewIn(a, t.Shape()...)
	copy(c.Data(), t.Data())
	return NewLeaf(c, false)
}

// RequiresGrad reports whether gradients flow to this value.
func (v *Value) RequiresGrad() bool { return v.requiresGrad }

// ZeroGrad clears the accumulated gradient.
func (v *Value) ZeroGrad() { v.Grad = nil }

func newNode(data *tensor.Tensor, parents ...*Value) *Value {
	n := &Value{Data: data, parents: parents}
	for _, p := range parents {
		if p.requiresGrad {
			n.requiresGrad = true
			break
		}
	}
	return n
}

// accum adds g into v.Grad, allocating on first use. Gradient accumulation
// (rather than assignment) is what makes shared parameters work.
func (v *Value) accum(g *tensor.Tensor) {
	if !v.requiresGrad {
		return
	}
	if v.Grad == nil {
		v.Grad = g.Clone()
		return
	}
	v.Grad.AddInPlace(g)
}

// accumScaled adds s*g into v.Grad without materializing the scaled tensor
// — the fused form the backward hot paths use instead of accum(g.Scale(s)).
func (v *Value) accumScaled(g *tensor.Tensor, s float64) {
	if !v.requiresGrad {
		return
	}
	if v.Grad == nil {
		v.Grad = g.Scale(s)
		return
	}
	v.Grad.AddScaledInPlace(g, s)
}

// Backward seeds v's gradient with ones (or seed if non-nil) and propagates
// through the graph in reverse topological order.
func (v *Value) Backward(seed *tensor.Tensor) {
	if seed == nil {
		seed = tensor.FullIn(v.Data.Arena(), 1, v.Data.Shape()...)
	}
	if !v.Data.SameShape(seed) {
		panic(fmt.Sprintf("autograd: seed shape %v vs value %v", seed.Shape(), v.Data.Shape()))
	}
	order := topoSort(v)
	v.Grad = seed.Clone()
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.backward != nil && n.Grad != nil {
			n.backward()
		}
	}
}

var backwardEpoch atomic.Uint64

func topoSort(root *Value) []*Value {
	epoch := backwardEpoch.Add(1)
	order := make([]*Value, 0, 32)
	var visit func(*Value)
	visit = func(n *Value) {
		if n.visited == epoch || !n.requiresGrad {
			return
		}
		n.visited = epoch
		for _, p := range n.parents {
			visit(p)
		}
		order = append(order, n)
	}
	visit(root)
	return order
}

// Add returns a + b.
func Add(a, b *Value) *Value {
	n := newNode(a.Data.Add(b.Data), a, b)
	n.backward = func() {
		a.accum(n.Grad)
		b.accum(n.Grad)
	}
	return n
}

// Sub returns a - b.
func Sub(a, b *Value) *Value {
	n := newNode(a.Data.Sub(b.Data), a, b)
	n.backward = func() {
		a.accum(n.Grad)
		b.accumScaled(n.Grad, -1)
	}
	return n
}

// Mul returns the elementwise product a * b.
func Mul(a, b *Value) *Value {
	n := newNode(a.Data.Mul(b.Data), a, b)
	n.backward = func() {
		a.accum(n.Grad.Mul(b.Data))
		b.accum(n.Grad.Mul(a.Data))
	}
	return n
}

// Scale returns a * s for scalar s.
func Scale(a *Value, s float64) *Value {
	n := newNode(a.Data.Scale(s), a)
	n.backward = func() { a.accumScaled(n.Grad, s) }
	return n
}

// MatMul returns the matrix product of (M,K) a and (K,N) b.
func MatMul(a, b *Value) *Value {
	n := newNode(a.Data.MatMul(b.Data), a, b)
	n.backward = func() {
		// Transposes of the (possibly heap-resident) operands go to the
		// gradient's arena so parameter matrices don't force per-step heap
		// temporaries.
		a.accum(n.Grad.MatMul(b.Data.Transpose2DIn(n.Grad.Arena())))
		b.accum(a.Data.Transpose2DIn(n.Grad.Arena()).MatMul(n.Grad))
	}
	return n
}

// Transpose2D returns the transpose of a rank-2 value.
func Transpose2D(a *Value) *Value {
	n := newNode(a.Data.Transpose2D(), a)
	n.backward = func() { a.accum(n.Grad.Transpose2D()) }
	return n
}

// AddRow broadcasts the rank-1 bias row over every row of the rank-2 a.
func AddRow(a, row *Value) *Value {
	n := newNode(a.Data.AddRow(row.Data), a, row)
	n.backward = func() {
		a.accum(n.Grad)
		row.accum(n.Grad.SumAxis0())
	}
	return n
}

// Reshape returns a view of a with a new shape.
func Reshape(a *Value, shape ...int) *Value {
	orig := a.Data.Shape()
	n := newNode(a.Data.Reshape(shape...), a)
	n.backward = func() { a.accum(n.Grad.Reshape(orig...)) }
	return n
}

// ReLU applies max(0, x) elementwise.
func ReLU(a *Value) *Value {
	n := newNode(a.Data.Apply(func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	}), a)
	n.backward = func() {
		g := tensor.NewIn(n.Grad.Arena(), a.Data.Shape()...)
		ad, gd, nd := a.Data.Data(), g.Data(), n.Grad.Data()
		for i := range ad {
			if ad[i] > 0 {
				gd[i] = nd[i]
			}
		}
		a.accum(g)
	}
	return n
}

// Tanh applies tanh elementwise.
func Tanh(a *Value) *Value {
	out := a.Data.Apply(math.Tanh)
	n := newNode(out, a)
	n.backward = func() {
		g := tensor.NewIn(n.Grad.Arena(), a.Data.Shape()...)
		od, gd, nd := out.Data(), g.Data(), n.Grad.Data()
		for i := range od {
			gd[i] = nd[i] * (1 - od[i]*od[i])
		}
		a.accum(g)
	}
	return n
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(a *Value) *Value {
	out := a.Data.Apply(func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
	n := newNode(out, a)
	n.backward = func() {
		g := tensor.NewIn(n.Grad.Arena(), a.Data.Shape()...)
		od, gd, nd := out.Data(), g.Data(), n.Grad.Data()
		for i := range od {
			gd[i] = nd[i] * od[i] * (1 - od[i])
		}
		a.accum(g)
	}
	return n
}

// GELU applies the Gaussian error linear unit (tanh approximation), the
// activation used by BERT-style transformers.
func GELU(a *Value) *Value {
	const c = 0.7978845608028654 // sqrt(2/pi)
	f := func(x float64) float64 {
		return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
	}
	out := a.Data.Apply(f)
	n := newNode(out, a)
	n.backward = func() {
		g := tensor.NewIn(n.Grad.Arena(), a.Data.Shape()...)
		ad, gd, nd := a.Data.Data(), g.Data(), n.Grad.Data()
		for i := range ad {
			x := ad[i]
			t := math.Tanh(c * (x + 0.044715*x*x*x))
			dt := (1 - t*t) * c * (1 + 3*0.044715*x*x)
			gd[i] = nd[i] * (0.5*(1+t) + 0.5*x*dt)
		}
		a.accum(g)
	}
	return n
}

// Exp applies exp elementwise.
func Exp(a *Value) *Value {
	out := a.Data.Apply(math.Exp)
	n := newNode(out, a)
	n.backward = func() { a.accum(n.Grad.Mul(out)) }
	return n
}

// Square returns x*x elementwise.
func Square(a *Value) *Value {
	n := newNode(a.Data.Mul(a.Data), a)
	n.backward = func() { a.accumScaled(n.Grad.Mul(a.Data), 2) }
	return n
}

// Sum reduces all elements of a to a scalar (shape [1]).
func Sum(a *Value) *Value {
	n := newNode(tensor.FromSlice([]float64{a.Data.Sum()}, 1), a)
	n.backward = func() {
		a.accum(tensor.FullIn(n.Grad.Arena(), n.Grad.At(0), a.Data.Shape()...))
	}
	return n
}

// Mean reduces all elements of a to their mean (shape [1]).
func Mean(a *Value) *Value {
	size := float64(a.Data.Size())
	n := newNode(tensor.FromSlice([]float64{a.Data.Sum() / size}, 1), a)
	n.backward = func() {
		a.accum(tensor.FullIn(n.Grad.Arena(), n.Grad.At(0)/size, a.Data.Shape()...))
	}
	return n
}

// ConvScratch owns a convolution node's reusable buffers: the forward
// im2col unfold and the backward re-unfold. One scratch belongs to one
// layer (or other single-threaded call site); the backward buffer is
// written and consumed inside a single backward closure, so interleaved
// forward/backward sequences over the same layer stay correct.
type ConvScratch struct {
	fwd, bwd tensor.ConvScratch
}

// Conv2D convolves NCHW input a with FCHW kernel and optional bias.
func Conv2D(a, kernel, bias *Value, opts tensor.Conv2DOpts) *Value {
	return Conv2DScratch(a, kernel, bias, opts, nil)
}

// Conv2DScratch is Conv2D with layer-owned buffer reuse: the im2col
// matrices for forward and backward are allocated once per geometry and
// reused across calls instead of churning per step. A nil scratch behaves
// exactly like Conv2D.
func Conv2DScratch(a, kernel, bias *Value, opts tensor.Conv2DOpts, scratch *ConvScratch) *Value {
	var bt *tensor.Tensor
	if bias != nil {
		bt = bias.Data
	}
	var out *tensor.Tensor
	if scratch != nil {
		out = tensor.Conv2DScratch(a.Data, kernel.Data, bt, opts, &scratch.fwd)
	} else {
		out = tensor.Conv2D(a.Data, kernel.Data, bt, opts)
	}
	var n *Value
	if bias != nil {
		n = newNode(out, a, kernel, bias)
	} else {
		n = newNode(out, a, kernel)
	}
	n.backward = func() {
		nIn, c, h, w := a.Data.Dim(0), a.Data.Dim(1), a.Data.Dim(2), a.Data.Dim(3)
		f, kh, kw := kernel.Data.Dim(0), kernel.Data.Dim(2), kernel.Data.Dim(3)
		oh, ow := out.Dim(2), out.Dim(3)

		// dOut reshaped to (N*OH*OW, F): spatial-major like Im2Col rows.
		// The fill loop indexes the backing slices directly — the variadic
		// Set would re-derive the row-major offset per element.
		dflat := tensor.NewIn(n.Grad.Arena(), nIn*oh*ow, f)
		gd, dd := n.Grad.Data(), dflat.Data()
		for img := 0; img < nIn; img++ {
			for ch := 0; ch < f; ch++ {
				src := ((img*f + ch) * oh) * ow
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						dd[((img*oh+oy)*ow+ox)*f+ch] = gd[src]
						src++
					}
				}
			}
		}
		var cols *tensor.Tensor // (N*OH*OW, C*KH*KW)
		if scratch != nil {
			scratch.bwd.Cols = tensor.Im2ColInto(scratch.bwd.Cols, a.Data, kh, kw, opts)
			cols = scratch.bwd.Cols
		} else {
			cols = tensor.Im2Col(a.Data, kh, kw, opts)
		}
		// dKernel = dflat^T @ cols, shape (F, C*KH*KW).
		dk := dflat.Transpose2D().MatMul(cols)
		kernel.accum(dk.Reshape(f, c, kh, kw))
		if bias != nil {
			bias.accum(dflat.SumAxis0())
		}
		// dInput = Col2Im(dflat @ kernelMat), kernelMat (F, C*KH*KW).
		kmat := kernel.Data.ReshapeIn(n.Grad.Arena(), f, c*kh*kw)
		dcols := dflat.MatMul(kmat)
		a.accum(tensor.Col2Im(dcols, nIn, c, h, w, kh, kw, opts))
	}
	return n
}

// MaxPool2D applies k×k max pooling with the given stride.
func MaxPool2D(a *Value, k, stride int) *Value {
	out, arg := tensor.MaxPool2D(a.Data, k, stride)
	n := newNode(out, a)
	n.backward = func() {
		g := tensor.NewIn(n.Grad.Arena(), a.Data.Shape()...)
		gd, nd := g.Data(), n.Grad.Data()
		for i, src := range arg {
			gd[src] += nd[i]
		}
		a.accum(g)
	}
	return n
}

// AvgPoolGlobal averages each channel's spatial extent: (N,C,H,W) -> (N,C).
func AvgPoolGlobal(a *Value) *Value {
	out := tensor.AvgPool2DGlobal(a.Data)
	n := newNode(out, a)
	n.backward = func() {
		nIn, c, h, w := a.Data.Dim(0), a.Data.Dim(1), a.Data.Dim(2), a.Data.Dim(3)
		inv := 1 / float64(h*w)
		g := tensor.NewIn(n.Grad.Arena(), a.Data.Shape()...)
		gd, nd := g.Data(), n.Grad.Data()
		for img := 0; img < nIn; img++ {
			for ch := 0; ch < c; ch++ {
				v := nd[img*c+ch] * inv
				base := (img*c + ch) * h * w
				for i := 0; i < h*w; i++ {
					gd[base+i] = v
				}
			}
		}
		a.accum(g)
	}
	return n
}

// SoftmaxCrossEntropy computes the mean cross-entropy between row-wise
// logits (N, C) and integer class labels, fused with softmax for stability.
// The returned Value is a scalar (shape [1]).
func SoftmaxCrossEntropy(logits *Value, labels []int) *Value {
	nRows := logits.Data.Dim(0)
	if len(labels) != nRows {
		panic(fmt.Sprintf("autograd: %d labels for %d rows", len(labels), nRows))
	}
	probs := logits.Data.SoftmaxRows()
	nCols := probs.Dim(1)
	pd := probs.Data()
	var loss float64
	for i, lab := range labels {
		p := pd[i*nCols+lab]
		if p < 1e-300 {
			p = 1e-300
		}
		loss -= math.Log(p)
	}
	loss /= float64(nRows)
	lt := tensor.NewIn(logits.Data.Arena(), 1)
	lt.Data()[0] = loss
	n := newNode(lt, logits)
	n.backward = func() {
		scale := n.Grad.At(0) / float64(nRows)
		g := probs.Clone()
		gdata := g.Data()
		for i, lab := range labels {
			gdata[i*nCols+lab] -= 1
		}
		logits.accum(g.ScaleInPlace(scale))
	}
	return n
}

// MSE computes the mean squared error between pred and target (a constant).
func MSE(pred *Value, target *tensor.Tensor) *Value {
	diff := pred.Data.Sub(target)
	size := float64(diff.Size())
	n := newNode(tensor.FromSlice([]float64{diff.Mul(diff).Sum() / size}, 1), pred)
	n.backward = func() {
		pred.accumScaled(diff, 2*n.Grad.At(0)/size)
	}
	return n
}

// Softmax applies row-wise softmax with gradient support.
func Softmax(a *Value) *Value {
	out := a.Data.SoftmaxRows()
	n := newNode(out, a)
	n.backward = func() {
		m, c := out.Dim(0), out.Dim(1)
		g := tensor.NewIn(n.Grad.Arena(), m, c)
		od, gd, nd := out.Data(), g.Data(), n.Grad.Data()
		for i := 0; i < m; i++ {
			row := od[i*c : (i+1)*c]
			grow := nd[i*c : (i+1)*c]
			var dot float64
			for j := range row {
				dot += row[j] * grow[j]
			}
			for j := range row {
				gd[i*c+j] = row[j] * (grow[j] - dot)
			}
		}
		a.accum(g)
	}
	return n
}

// Concat2DRows stacks rank-2 values vertically with gradient routing.
func Concat2DRows(vals ...*Value) *Value {
	ts := make([]*tensor.Tensor, len(vals))
	parents := make([]*Value, len(vals))
	for i, v := range vals {
		ts[i] = v.Data
		parents[i] = v
	}
	out := tensor.Concat2DRows(ts...)
	n := newNode(out, parents...)
	n.backward = func() {
		off := 0
		for _, v := range vals {
			rows := v.Data.Dim(0)
			v.accum(n.Grad.Slice2DRows(off, off+rows))
			off += rows
		}
	}
	return n
}
