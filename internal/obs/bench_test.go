package obs

import (
	"testing"

	"summitscale/internal/units"
)

// BenchmarkObsHotPath measures the per-record cost instrumented simulators
// pay on their hot loops: one span, one counter bump, one series
// observation. Tracked in BENCH_hotpath.json via `make bench-json`.
func BenchmarkObsHotPath(b *testing.B) {
	o := New()
	for i := 0; i < b.N; i++ {
		t := units.Seconds(i)
		o.Span("rank-0", "train", "step", t, 1, Num("step", float64(i)))
		o.Inc("ddl.steps")
		o.Observe("ddl.step_s", 1)
	}
}

// BenchmarkObsHotPathNil measures the disabled-observer cost — what
// un-instrumented runs pay for carrying the optional observer.
func BenchmarkObsHotPathNil(b *testing.B) {
	var o *Observer
	for i := 0; i < b.N; i++ {
		t := units.Seconds(i)
		o.Span("rank-0", "train", "step", t, 1, Num("step", float64(i)))
		o.Inc("ddl.steps")
		o.Observe("ddl.step_s", 1)
	}
}
