package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"summitscale/internal/units"
)

// Arg is one key/value annotation on a span or event. Values are either a
// number or a string; Num and Str are the constructors.
type Arg struct {
	Key string
	Num float64
	Str string
	str bool
}

// Num makes a numeric argument.
func Num(key string, v float64) Arg { return Arg{Key: key, Num: v} }

// Str makes a string argument.
func Str(key, v string) Arg { return Arg{Key: key, Str: v, str: true} }

// record is one trace entry. Spans have dur >= 0 and instant == false;
// events have instant == true. Times are simulated seconds.
type record struct {
	track   string
	cat     string
	name    string
	start   float64
	dur     float64
	instant bool
	args    []Arg
}

// Tracer collects spans and instant events stamped with *simulated* times.
// It is safe for concurrent use and safe on a nil receiver. Renderers sort
// records by full content before formatting, so two runs that emit the
// same multiset of records — regardless of goroutine interleaving — render
// byte-identical output.
type Tracer struct {
	mu   sync.Mutex
	recs []record
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Span records a completed span: it started at start on the simulated
// clock and lasted dur. Zero-duration spans are kept (they mark phases
// that the model resolved to zero cost).
func (t *Tracer) Span(track, cat, name string, start, dur units.Seconds, args ...Arg) {
	if t == nil {
		return
	}
	t.add(record{track: track, cat: cat, name: name,
		start: float64(start), dur: float64(dur), args: args})
}

// Event records an instant event at simulated time at.
func (t *Tracer) Event(track, cat, name string, at units.Seconds, args ...Arg) {
	if t == nil {
		return
	}
	t.add(record{track: track, cat: cat, name: name,
		start: float64(at), instant: true, args: args})
}

func (t *Tracer) add(r record) {
	t.mu.Lock()
	t.recs = append(t.recs, r)
	t.mu.Unlock()
}

// Len reports how many records have been collected.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.recs)
}

// snapshot returns a content-sorted copy of the records. Sorting by the
// full record content (not just time) makes the order a function of the
// multiset of records alone: identical records are interchangeable, so any
// stable ordering of them yields identical bytes.
func (t *Tracer) snapshot() []record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	recs := append([]record(nil), t.recs...)
	t.mu.Unlock()
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.track != b.track {
			return a.track < b.track
		}
		if a.start != b.start {
			return a.start < b.start
		}
		if a.dur != b.dur {
			return a.dur > b.dur // longer span first: parents before children
		}
		if a.instant != b.instant {
			return !a.instant // spans before instants at the same stamp
		}
		if a.cat != b.cat {
			return a.cat < b.cat
		}
		if a.name != b.name {
			return a.name < b.name
		}
		return argsKey(a.args) < argsKey(b.args)
	})
	return recs
}

// argsKey flattens args into a comparable string for the record sort.
func argsKey(args []Arg) string {
	var b strings.Builder
	for _, a := range args {
		b.WriteString(a.Key)
		b.WriteByte('=')
		if a.str {
			b.WriteString(a.Str)
		} else {
			b.WriteString(formatNum(a.Num))
		}
		b.WriteByte(';')
	}
	return b.String()
}

// formatNum renders a float with the shortest round-trip representation —
// stable across platforms for the same bit pattern.
func formatNum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// micros converts simulated seconds to the integer microseconds Chrome's
// trace viewer expects. Rounding to integer µs also keeps the JSON free of
// long float tails.
func micros(sec float64) int64 {
	return int64(sec*1e6 + 0.5)
}

// ChromeTrace renders the records as Chrome trace-event JSON (the
// chrome://tracing / Perfetto "JSON Object Format"): one "X" complete
// event per span, one "i" instant event per event, plus "M" thread_name
// metadata naming each track. Tracks map to tids in sorted-name order.
// The output is byte-deterministic for a given multiset of records.
func (t *Tracer) ChromeTrace() []byte {
	recs := t.snapshot()

	tracks := make([]string, 0, 8)
	seen := map[string]bool{}
	for _, r := range recs {
		if !seen[r.track] {
			seen[r.track] = true
			tracks = append(tracks, r.track)
		}
	}
	sort.Strings(tracks)
	tid := make(map[string]int, len(tracks))
	for i, tr := range tracks {
		tid[tr] = i + 1
	}

	var b strings.Builder
	b.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}
	for _, tr := range tracks {
		emit(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			tid[tr], quoteJSON(tr)))
	}
	for _, r := range recs {
		var line strings.Builder
		if r.instant {
			fmt.Fprintf(&line, `{"ph":"i","pid":1,"tid":%d,"ts":%d,"s":"t","cat":%s,"name":%s`,
				tid[r.track], micros(r.start), quoteJSON(r.cat), quoteJSON(r.name))
		} else {
			fmt.Fprintf(&line, `{"ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d,"cat":%s,"name":%s`,
				tid[r.track], micros(r.start), micros(r.dur), quoteJSON(r.cat), quoteJSON(r.name))
		}
		if len(r.args) > 0 {
			line.WriteString(`,"args":{`)
			for i, a := range r.args {
				if i > 0 {
					line.WriteByte(',')
				}
				line.WriteString(quoteJSON(a.Key))
				line.WriteByte(':')
				if a.str {
					line.WriteString(quoteJSON(a.Str))
				} else {
					line.WriteString(formatNum(a.Num))
				}
			}
			line.WriteByte('}')
		}
		line.WriteByte('}')
		emit(line.String())
	}
	b.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	return []byte(b.String())
}

// quoteJSON escapes a string as a JSON string literal. The simulators only
// emit printable ASCII names, but escape defensively anyway.
func quoteJSON(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Summary renders an aligned per-(category, name) aggregation of span
// counts and total durations, sorted by name — the text companion to
// ChromeTrace, also byte-deterministic.
func (t *Tracer) Summary() string {
	recs := t.snapshot()
	if len(recs) == 0 {
		return "(no trace records)\n"
	}
	type key struct{ cat, name string }
	type agg struct {
		spans  int
		events int
		total  float64 // integer-µs total, so sum order cannot matter
	}
	aggs := map[key]*agg{}
	keys := []key{}
	for _, r := range recs {
		k := key{r.cat, r.name}
		a := aggs[k]
		if a == nil {
			a = &agg{}
			aggs[k] = a
			keys = append(keys, k)
		}
		if r.instant {
			a.events++
		} else {
			a.spans++
			a.total += float64(micros(r.dur)) / 1e6
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].cat != keys[j].cat {
			return keys[i].cat < keys[j].cat
		}
		return keys[i].name < keys[j].name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-34s %8s %8s %14s\n",
		"category", "name", "spans", "events", "total_s")
	for _, k := range keys {
		a := aggs[k]
		fmt.Fprintf(&b, "%-14s %-34s %8d %8d %14.6f\n",
			k.cat, k.name, a.spans, a.events, a.total)
	}
	return b.String()
}
