// Package obs is the observability spine of the simulators: a metrics
// registry (counters, gauges, series) and a span tracer that records on
// the *simulated* clock and renders Chrome trace-event JSON plus an
// aligned text summary. The paper's scaling narrative (§IV-B, §VI-B) is
// built on per-phase time accounting — compute vs. allreduce vs. stage-in
// vs. restart — and MLPerf HPC makes the same case for time-to-solution
// breakdowns as first-class benchmark output; this package gives every
// simulator one deterministic place to report them.
//
// Determinism rules (DESIGN.md §8):
//
//   - No wall clock anywhere: spans carry simulated times supplied by the
//     instrumented code, so a trace is a pure function of the experiment's
//     seeds.
//   - Emission order does not matter: renderers sort records by content
//     before formatting, so concurrent emitters (Workflow.Run goroutines,
//     parallel.Pool workers) produce byte-identical output at any -j.
//   - Counters are integers and gauges are last-write-wins; series sum
//     their observations in sorted order at render time, so float
//     accumulation order cannot leak scheduling into the output.
//
// Every method is safe for concurrent use and safe on a nil receiver, so
// instrumented hot paths thread one optional *Observer with no branches.
package obs

import (
	"os"

	"summitscale/internal/units"
)

// Observer bundles a metrics registry and a span tracer. Either field may
// be nil (metrics without tracing, or vice versa); the whole Observer may
// be nil, turning every record call into a no-op.
type Observer struct {
	Metrics *Registry
	Trace   *Tracer
}

// New returns an observer with a fresh registry and tracer.
func New() *Observer {
	return &Observer{Metrics: NewRegistry(), Trace: NewTracer()}
}

// Span records a completed span on the simulated clock.
func (o *Observer) Span(track, cat, name string, start, dur units.Seconds, args ...Arg) {
	if o == nil {
		return
	}
	o.Trace.Span(track, cat, name, start, dur, args...)
}

// Event records an instant event on the simulated clock.
func (o *Observer) Event(track, cat, name string, at units.Seconds, args ...Arg) {
	if o == nil {
		return
	}
	o.Trace.Event(track, cat, name, at, args...)
}

// Inc bumps a counter by one.
func (o *Observer) Inc(name string) {
	if o == nil {
		return
	}
	o.Metrics.Inc(name)
}

// Add bumps a counter by delta.
func (o *Observer) Add(name string, delta int64) {
	if o == nil {
		return
	}
	o.Metrics.Add(name, delta)
}

// Set writes a gauge.
func (o *Observer) Set(name string, v float64) {
	if o == nil {
		return
	}
	o.Metrics.Set(name, v)
}

// Observe appends a value to a series.
func (o *Observer) Observe(name string, v float64) {
	if o == nil {
		return
	}
	o.Metrics.Observe(name, v)
}

// WriteChromeTrace writes the tracer's Chrome trace-event JSON to path. A
// nil observer (or nil tracer) writes a valid empty trace, so CLI flag
// plumbing needs no branches.
func (o *Observer) WriteChromeTrace(path string) error {
	t := (*Tracer)(nil)
	if o != nil {
		t = o.Trace
	}
	if t == nil {
		t = NewTracer()
	}
	return os.WriteFile(path, t.ChromeTrace(), 0o644)
}
