package obs

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"

	"summitscale/internal/units"
)

// TestRegistryConcurrentIncrements hammers one registry from many
// goroutines and checks nothing is lost — the concurrency contract the
// instrumented simulators (Workflow.Run, parallel.Pool) rely on.
func TestRegistryConcurrentIncrements(t *testing.T) {
	const goroutines = 16
	const per = 1000
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Inc("events")
				r.Add("bytes", 64)
				r.Observe("latency", float64(i%7))
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("events"); got != goroutines*per {
		t.Fatalf("events = %d, want %d", got, goroutines*per)
	}
	if got := r.Counter("bytes"); got != goroutines*per*64 {
		t.Fatalf("bytes = %d, want %d", got, goroutines*per*64)
	}
	if got := r.Count("latency"); got != goroutines*per {
		t.Fatalf("latency count = %d, want %d", got, goroutines*per)
	}
}

// TestObserverNilSafe exercises every method through nil observers,
// tracers, and registries — instrumented code threads optional observers
// with no branches, so nil must be a silent no-op everywhere.
func TestObserverNilSafe(t *testing.T) {
	var o *Observer
	o.Span("t", "c", "n", 0, 1)
	o.Event("t", "c", "n", 0)
	o.Inc("x")
	o.Add("x", 2)
	o.Set("g", 1)
	o.Observe("s", 1)

	half := &Observer{} // fields nil
	half.Span("t", "c", "n", 0, 1)
	half.Inc("x")

	var r *Registry
	r.Inc("x")
	if r.Counter("x") != 0 || r.Gauge("g") != 0 || r.Sum("s") != 0 || r.Count("s") != 0 {
		t.Fatal("nil registry reads must be zero")
	}
	if r.Render() != "" {
		t.Fatal("nil registry renders empty")
	}

	var tr *Tracer
	tr.Span("t", "c", "n", 0, 1)
	tr.Event("t", "c", "n", 0)
	if tr.Len() != 0 {
		t.Fatal("nil tracer has no records")
	}
}

// emitShuffled emits the same multiset of records in a random order from
// several goroutines.
func emitShuffled(seed int64) *Observer {
	o := New()
	type rec struct {
		track, cat, name string
		start, dur       units.Seconds
	}
	recs := []rec{}
	for i := 0; i < 50; i++ {
		recs = append(recs, rec{"rank-0", "train", "step", units.Seconds(i * 10), 8})
		recs = append(recs, rec{"rank-0", "comm", "allreduce", units.Seconds(i*10 + 8), 2})
		recs = append(recs, rec{"rank-1", "train", "step", units.Seconds(i * 10), 9})
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	var wg sync.WaitGroup
	chunk := (len(recs) + 3) / 4
	for w := 0; w < 4; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(recs) {
			hi = len(recs)
		}
		wg.Add(1)
		go func(part []rec) {
			defer wg.Done()
			for _, r := range part {
				o.Span(r.track, r.cat, r.name, r.start, r.dur, Num("i", float64(r.start)))
				o.Observe("dur", float64(r.dur))
				o.Inc("spans")
			}
		}(recs[lo:hi])
	}
	wg.Wait()
	return o
}

// TestDeterministicAcrossEmissionOrder is the core determinism guarantee:
// the same multiset of records, emitted in different orders from racing
// goroutines, renders byte-identical Chrome JSON, summary, and metrics.
func TestDeterministicAcrossEmissionOrder(t *testing.T) {
	a := emitShuffled(1)
	b := emitShuffled(99)
	if ja, jb := a.Trace.ChromeTrace(), b.Trace.ChromeTrace(); string(ja) != string(jb) {
		t.Fatal("ChromeTrace differs across emission order")
	}
	if sa, sb := a.Trace.Summary(), b.Trace.Summary(); sa != sb {
		t.Fatal("Summary differs across emission order")
	}
	if ma, mb := a.Metrics.Render(), b.Metrics.Render(); ma != mb {
		t.Fatal("metrics Render differs across emission order")
	}
}

// TestChromeTraceValidJSON checks the hand-rolled renderer emits JSON the
// standard library parses, with the structure Chrome's viewer expects.
func TestChromeTraceValidJSON(t *testing.T) {
	o := New()
	o.Span("net", "comm", "ring \"α/β\"\n", 0, 1.5, Num("alpha", 1e-6), Str("phase", "redo"))
	o.Event("net", "fault", "node-loss", 0.75, Num("at_frac", 0.5))
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	raw := o.Trace.ChromeTrace()
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, raw)
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	// 1 metadata + 1 span + 1 instant.
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3:\n%s", len(doc.TraceEvents), raw)
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event missing pid: %v", ev)
		}
	}
	if phases["M"] != 1 || phases["X"] != 1 || phases["i"] != 1 {
		t.Fatalf("phase mix %v", phases)
	}
}

// TestSumSortedAdditionOrder checks series sums are order-independent even
// for values where naive float accumulation would differ.
func TestSumSortedAdditionOrder(t *testing.T) {
	vals := []float64{1e16, 1, 1, 1, -1e16, 3.25, 0.125}
	a, b := NewRegistry(), NewRegistry()
	for _, v := range vals {
		a.Observe("s", v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Observe("s", vals[i])
	}
	if a.Sum("s") != b.Sum("s") {
		t.Fatalf("sum depends on observation order: %v vs %v", a.Sum("s"), b.Sum("s"))
	}
}

// TestTracerTrackTids pins that tids are assigned from sorted track names,
// independent of first-emission order.
func TestTracerTrackTids(t *testing.T) {
	a := NewTracer()
	a.Span("zeta", "c", "n", 0, 1)
	a.Span("alpha", "c", "n", 0, 1)
	b := NewTracer()
	b.Span("alpha", "c", "n", 0, 1)
	b.Span("zeta", "c", "n", 0, 1)
	if string(a.ChromeTrace()) != string(b.ChromeTrace()) {
		t.Fatal("tid assignment depends on emission order")
	}
}
