package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a mutex-guarded metrics store. Three metric kinds cover the
// simulators' needs:
//
//   - counters: monotonically increasing integers (events, bytes, faults);
//   - gauges: last-written float64 values (configuration echoes, sizes);
//   - series: append-only float64 observations whose aggregates (sum,
//     mean, quantiles) are computed over the *sorted* values at render
//     time, so concurrent observation order never changes a report byte.
//
// All methods are safe for concurrent use and no-ops (or zero reads) on a
// nil receiver.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	series   map[string][]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		series:   map[string][]float64{},
	}
}

// Inc bumps the named counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Add bumps the named counter by delta.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter reads a counter (zero when absent).
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Set writes the named gauge. Gauges are last-write-wins: set them from
// deterministic points only (setup, teardown), never from racing workers.
func (r *Registry) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Gauge reads a gauge (zero when absent).
func (r *Registry) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Observe appends one value to the named series.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.series[name] = append(r.series[name], v)
	r.mu.Unlock()
}

// Count returns the number of observations in a series.
func (r *Registry) Count(name string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.series[name])
}

// Sum returns the deterministic sum of a series: values are sorted before
// summation, so the float64 result is independent of observation order.
func (r *Registry) Sum(name string) float64 {
	vs := r.sorted(name)
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}

// sorted returns a sorted copy of a series.
func (r *Registry) sorted(name string) []float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	vs := append([]float64(nil), r.series[name]...)
	r.mu.Unlock()
	sort.Float64s(vs)
	return vs
}

// quantile reads q in [0,1] off sorted values (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Render formats every metric as an aligned, name-sorted text block —
// byte-deterministic for any emission schedule.
func (r *Registry) Render() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	cnames := sortedKeys(r.counters)
	gnames := sortedKeys(r.gauges)
	snames := sortedKeys(r.series)
	r.mu.Unlock()

	var b strings.Builder
	if len(cnames) > 0 {
		b.WriteString("counters:\n")
		for _, n := range cnames {
			fmt.Fprintf(&b, "  %-44s %12d\n", n, r.Counter(n))
		}
	}
	if len(gnames) > 0 {
		b.WriteString("gauges:\n")
		for _, n := range gnames {
			fmt.Fprintf(&b, "  %-44s %12g\n", n, r.Gauge(n))
		}
	}
	if len(snames) > 0 {
		b.WriteString("series:\n")
		fmt.Fprintf(&b, "  %-34s %8s %12s %12s %12s %12s\n",
			"name", "count", "sum", "mean", "p50", "max")
		for _, n := range snames {
			vs := r.sorted(n)
			var sum float64
			for _, v := range vs {
				sum += v
			}
			mean := 0.0
			if len(vs) > 0 {
				mean = sum / float64(len(vs))
			}
			fmt.Fprintf(&b, "  %-34s %8d %12.6g %12.6g %12.6g %12.6g\n",
				n, len(vs), sum, mean, quantile(vs, 0.5), quantile(vs, 1))
		}
	}
	if b.Len() == 0 {
		return "(no metrics recorded)\n"
	}
	return b.String()
}

// sortedKeys returns the sorted key set of a map. Called under r.mu.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
