package chaos

import (
	"fmt"
	"sort"

	"summitscale/internal/faults"
	"summitscale/internal/stats"
	"summitscale/internal/units"
	"summitscale/internal/workflow"
)

// Schedule is a compiled scenario: every correlated directive lowered to
// concrete, seeded events the simulators consume. Compiling the same
// (scenario, seed) pair always yields the same schedule, byte for byte.
type Schedule struct {
	Scenario *Scenario
	Seed     uint64
	// Trace carries the node-failure, straggler, and link-degrade events
	// (background process plus cascades, storms, and flap windows) in the
	// exchange format every simulator already speaks.
	Trace *faults.Trace
	// Brownouts are the storage-bandwidth windows, sorted by start.
	Brownouts []Brownout
	// Outages are the facility windows, sorted by facility then start.
	Outages []Outage
	// Repairs are the node-return events, sorted by time.
	Repairs []Repair
}

// Compile lowers the scenario at the given seed. Each directive class
// draws from its own split RNG stream in declaration order, so adding a
// storm never perturbs where a cascade lands.
func (sc *Scenario) Compile(seed uint64) (*Schedule, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	root := stats.NewRNG(seed)
	bgRNG, cascadeRNG, flapRNG, stormRNG := root.Split(), root.Split(), root.Split(), root.Split()
	// Split AFTER the original four: scenarios without sdc directives
	// compile to byte-identical schedules (and goldens) either way.
	sdcRNG := root.Split()

	params := faults.Params{Nodes: sc.Nodes, NodeMTBF: faults.DefaultNodeMTBF, Shape: 1}
	var events []faults.Event

	if b := sc.Background; b != nil {
		params.NodeMTBF = b.NodeMTBF
		params.Shape = b.Shape
		// The background is pure fatal failures; stragglers and link noise
		// come from the scenario's correlated directives.
		bg := params.Generate(bgRNG.Uint64(), sc.Horizon)
		events = append(events, bg.Events...)
	}

	for _, c := range sc.Cascades {
		rng := cascadeRNG.Split()
		base := 0
		if sc.Nodes > c.Spread {
			base = rng.Intn(sc.Nodes - c.Spread + 1)
		}
		t := c.At
		for i := 0; i < c.Count; i++ {
			// Temporal correlation: one failure per spacing, with up to a
			// quarter-spacing of seeded jitter; spatial correlation: every
			// strike lands inside the cascade's node window.
			jitter := units.Seconds(rng.Float64()) * c.Spacing / 4
			at := t + jitter
			if at >= sc.Horizon {
				break
			}
			events = append(events, faults.Event{
				Time: at,
				Kind: faults.NodeFailure,
				Node: base + rng.Intn(c.Spread),
			})
			t += c.Spacing
		}
	}

	for _, f := range sc.Flaps {
		rng := flapRNG.Split()
		node := rng.Intn(sc.Nodes)
		for t := f.From; t < f.To; t += f.Period {
			on := f.Period * units.Seconds(f.Duty)
			if t+on > f.To {
				on = f.To - t
			}
			events = append(events, faults.Event{
				Time:     t,
				Kind:     faults.LinkDegrade,
				Node:     node,
				Duration: on,
				Factor:   f.Factor,
			})
		}
	}

	for _, s := range sc.Storms {
		rng := stormRNG.Split()
		for i := 0; i < s.Count; i++ {
			// Onsets scatter across the storm's first fifth; every episode
			// ends with the storm.
			onset := s.At + units.Seconds(rng.Float64())*s.For/5
			events = append(events, faults.Event{
				Time:     onset,
				Kind:     faults.Straggler,
				Node:     rng.Intn(sc.Nodes),
				Duration: s.At + s.For - onset,
				Factor:   s.Factor,
			})
		}
	}

	for _, s := range sc.SDCs {
		rng := sdcRNG.Split()
		var kind faults.Kind
		switch s.Kind {
		case "flip":
			kind = faults.SilentCorruption
		case "torn":
			kind = faults.TornWrite
		case "stale":
			kind = faults.StaleReplica
		}
		for i := 0; i < s.Count; i++ {
			e := faults.Event{
				Time: s.At + units.Seconds(rng.Float64())*s.For,
				Kind: kind,
				Node: rng.Intn(sc.Nodes),
			}
			if kind == faults.SilentCorruption {
				e.Word = rng.Intn(1 << 20)
				e.Bit = rng.Intn(64)
			}
			events = append(events, e)
		}
	}

	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })

	sched := &Schedule{
		Scenario: sc,
		Seed:     seed,
		Trace: &faults.Trace{
			Params:  params,
			Seed:    seed,
			Horizon: sc.Horizon,
			Events:  events,
		},
		Brownouts: append([]Brownout(nil), sc.Brownouts...),
		Outages:   append([]Outage(nil), sc.Outages...),
		Repairs:   append([]Repair(nil), sc.Repairs...),
	}
	sort.SliceStable(sched.Brownouts, func(i, j int) bool {
		return sched.Brownouts[i].From < sched.Brownouts[j].From
	})
	sort.SliceStable(sched.Outages, func(i, j int) bool {
		a, b := sched.Outages[i], sched.Outages[j]
		if a.Facility != b.Facility {
			return a.Facility < b.Facility
		}
		return a.From < b.From
	})
	sort.SliceStable(sched.Repairs, func(i, j int) bool {
		return sched.Repairs[i].At < sched.Repairs[j].At
	})
	return sched, nil
}

// BrownoutFactorAt returns the worst storage-bandwidth multiplier active
// at time t, or 1 outside every brownout window.
func (s *Schedule) BrownoutFactorAt(t units.Seconds) float64 {
	worst := 1.0
	for _, b := range s.Brownouts {
		if t >= b.From && t < b.To && b.Factor < worst {
			worst = b.Factor
		}
	}
	return worst
}

// WorstBrownout returns the deepest brownout factor in the schedule (1
// when there is none).
func (s *Schedule) WorstBrownout() float64 {
	worst := 1.0
	for _, b := range s.Brownouts {
		if b.Factor < worst {
			worst = b.Factor
		}
	}
	return worst
}

// LinkFactorAt returns the worst link-bandwidth multiplier active at t.
func (s *Schedule) LinkFactorAt(t units.Seconds) float64 {
	return s.Trace.LinkFactorAt(t)
}

// FacilityOutages lowers the outage windows into the workflow failover
// policy's schedule format.
func (s *Schedule) FacilityOutages() workflow.FacilityOutages {
	out := workflow.FacilityOutages{}
	for _, o := range s.Outages {
		out[o.Facility] = append(out[o.Facility], workflow.Window{From: o.From, To: o.To})
	}
	return out
}

// Summary renders the schedule census. The SDC segment appears only when
// the trace carries corruption events, keeping pre-SDC summaries stable.
func (s *Schedule) Summary() string {
	base := fmt.Sprintf("%s seed=%d: %d node-failure, %d straggler, %d link-degrade; %d brownout window(s), %d outage(s), %d repair(s)",
		s.Scenario.Name, s.Seed,
		s.Trace.Count(faults.NodeFailure), s.Trace.Count(faults.Straggler),
		s.Trace.Count(faults.LinkDegrade),
		len(s.Brownouts), len(s.Outages), len(s.Repairs))
	if n := s.Trace.Count(faults.SilentCorruption) + s.Trace.Count(faults.TornWrite) +
		s.Trace.Count(faults.StaleReplica); n > 0 {
		base += fmt.Sprintf("; %d silent-corruption, %d torn-write, %d stale-replica",
			s.Trace.Count(faults.SilentCorruption), s.Trace.Count(faults.TornWrite),
			s.Trace.Count(faults.StaleReplica))
	}
	return base
}
