package chaos

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"summitscale/internal/autograd"
	"summitscale/internal/checkpoint"
	"summitscale/internal/ddl"
	"summitscale/internal/faults"
	"summitscale/internal/nn"
	"summitscale/internal/obs"
	"summitscale/internal/optim"
	"summitscale/internal/stats"
	"summitscale/internal/tensor"
)

// The SDC ablation probe: a fixed small training run every scenario's
// corruption events are lowered onto, so ablations stay comparable and
// fast. The run is long enough for several checkpoint windows and small
// enough that three legs finish in well under a second.
const (
	sdcProbeSteps  = 24
	sdcProbeRanks  = 4
	sdcProbeCkEach = 4
)

// SDCConfig shapes an SDC ablation run.
type SDCConfig struct {
	// Jobs bounds how many legs run concurrently (<= 1 means serial).
	// The report is a pure function of (scenario, seed) at any value.
	Jobs int
	// Dir is the scratch directory for the legs' checkpoint tiers; empty
	// means a temp directory removed when the run finishes.
	Dir string
	// Obs, if non-nil, receives the per-leg ddl.sdc.* counters and events.
	Obs *obs.Observer
}

// SDCReport is the detection-on vs detection-off ablation of one
// scenario's silent-corruption events, plus the clean reference leg.
type SDCReport struct {
	Scenario string
	Seed     uint64
	Steps    int
	Ranks    int

	// The injection census lowered from the compiled trace.
	Flips, Torn, Stale int
	Injections         []ddl.SDCInjection

	Clean *ddl.GuardedResult // guards armed, no injections
	On    *ddl.GuardedResult // guards armed, injections live
	Off   *ddl.GuardedResult // guards disarmed, injections live

	// OnMatchesClean: the detection-on leg's final parameters are
	// bit-identical to the clean leg's — recovery left no trace.
	OnMatchesClean bool
	// OffMaxDiff is the detection-off leg's worst parameter divergence
	// from clean (+Inf when the state went non-finite); OffCorrupted is
	// the ablation verdict.
	OffMaxDiff   float64
	OffCorrupted bool
}

// sdcGuards arms every sentinel for the probe model: clean gradient
// norms sit far below 1, while the storm's exponent-region flips land
// many orders of magnitude above 100 (or overflow to non-finite).
func sdcGuards() ddl.Guards {
	return ddl.Guards{NaN: true, GradNormLimit: 100, ABFT: true}
}

// sdcProbeModel builds the deterministic probe MLP.
func sdcProbeModel() nn.Module {
	return nn.NewMLP(stats.NewRNG(42), []int{4, 8, 3}, autograd.Tanh)
}

// sdcProbeLoss shards a fixed 8-sample batch across the probe world.
func sdcProbeLoss() func(rank, world, step int, m nn.Module) *autograd.Value {
	rng := stats.NewRNG(7)
	x := tensor.Randn(rng, 1, 8, 4)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1}
	return func(rank, world, step int, m nn.Module) *autograd.Value {
		per := 8 / world
		lo := rank * per
		out := m.(*nn.Sequential).Forward(autograd.Constant(x.Slice2DRows(lo, lo+per)))
		return autograd.SoftmaxCrossEntropy(out, labels[lo:lo+per])
	}
}

// LowerSDC maps the compiled trace's corruption events onto the probe
// run's steps. Flip events alternate between wire-stage and compute-
// stage flips by word parity. The flipped bit is chosen for the stage,
// not taken from the event: compute-stage flips hit exponent bit 62 —
// clear in every |v| < 2, so the XOR always escalates the value to a
// catastrophic magnitude the norm/NaN sentinels must catch (a random
// high exponent bit is often already set, and clearing it collapses the
// value into an undetectable-by-design perturbation) — and wire-stage
// flips hit mantissa bit 51, a ~50% relative change squarely visible to
// the ABFT checksum. Sub-tolerance flips are the ddl unit tests'
// concern, not the storm's. Torn writes and stale replicas lower to
// their storage injections against whatever commit covers their step.
func LowerSDC(sched *Schedule) []ddl.SDCInjection {
	var out []ddl.SDCInjection
	horizon := sched.Scenario.Horizon
	for _, e := range sched.Trace.Events {
		step := int(float64(e.Time) / float64(horizon) * sdcProbeSteps)
		if step >= sdcProbeSteps {
			step = sdcProbeSteps - 1
		}
		switch e.Kind {
		case faults.SilentCorruption:
			kind, bit := ddl.WireFlip, 51
			if e.Word%2 == 1 {
				kind, bit = ddl.GradFlip, 62
			}
			out = append(out, ddl.SDCInjection{
				Step: step, Kind: kind, Rank: e.Node % sdcProbeRanks,
				Word: e.Word, Bit: bit,
			})
		case faults.TornWrite:
			out = append(out, ddl.SDCInjection{Step: step, Kind: ddl.TornDrain})
		case faults.StaleReplica:
			out = append(out, ddl.SDCInjection{Step: step, Kind: ddl.StaleDrain})
		}
	}
	return out
}

// RunSDC compiles the scenario and runs the three-leg ablation: clean
// (guards armed, nothing injected), detection-on (guards armed,
// injections live), detection-off (guards disarmed, same injections).
// All three legs share the guard-slot allreduce arithmetic, so any
// divergence between legs is corruption or recovery, never reassociation.
// The report is deterministic for a (scenario, seed) pair at any Jobs.
func RunSDC(sc *Scenario, seed uint64, cfg SDCConfig) (*SDCReport, error) {
	sched, err := sc.Compile(seed)
	if err != nil {
		return nil, err
	}
	injections := LowerSDC(sched)
	rep := &SDCReport{
		Scenario:   sc.Name,
		Seed:       seed,
		Steps:      sdcProbeSteps,
		Ranks:      sdcProbeRanks,
		Injections: injections,
	}
	for _, inj := range injections {
		switch inj.Kind {
		case ddl.GradFlip, ddl.WireFlip:
			rep.Flips++
		case ddl.TornDrain:
			rep.Torn++
		case ddl.StaleDrain:
			rep.Stale++
		}
	}

	base := cfg.Dir
	if base == "" {
		base, err = os.MkdirTemp("", "sdc-ablation")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(base)
	}
	legs := []struct {
		name   string
		guards ddl.Guards
		inj    []ddl.SDCInjection
		out    **ddl.GuardedResult
	}{
		{"clean", sdcGuards(), nil, &rep.Clean},
		{"detect-on", sdcGuards(), injections, &rep.On},
		{"detect-off", ddl.Guards{}, injections, &rep.Off},
	}
	jobs := cfg.Jobs
	if jobs < 1 {
		jobs = 1
	}
	sem := make(chan struct{}, jobs)
	errs := make([]error, len(legs))
	var wg sync.WaitGroup
	for i, leg := range legs {
		wg.Add(1)
		go func(i int, name string, guards ddl.Guards, inj []ddl.SDCInjection, out **ddl.GuardedResult) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			dir := filepath.Join(base, name)
			res, err := ddl.RunGuarded(ddl.GuardedConfig{
				Ranks:           sdcProbeRanks,
				Steps:           sdcProbeSteps,
				CheckpointEvery: sdcProbeCkEach,
				Tiers: []checkpoint.TierDir{
					{Name: "nvme", Dir: filepath.Join(dir, "nvme")},
					{Name: "replica", Dir: filepath.Join(dir, "replica")},
					{Name: "gpfs", Dir: filepath.Join(dir, "gpfs")},
				},
				Injections: inj,
				Guards:     guards,
				Obs:        cfg.Obs,
			}, sdcProbeModel,
				func() optim.Optimizer { return optim.NewSGD(0.2) },
				sdcProbeLoss())
			if err != nil {
				errs[i] = fmt.Errorf("chaos: sdc leg %s: %w", name, err)
				return
			}
			*out = res
		}(i, leg.name, leg.guards, leg.inj, leg.out)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}

	rep.OnMatchesClean = len(rep.On.FinalParams) == len(rep.Clean.FinalParams)
	for i := range rep.Clean.FinalParams {
		if rep.On.FinalParams[i] != rep.Clean.FinalParams[i] {
			rep.OnMatchesClean = false
			break
		}
	}
	for i := range rep.Clean.FinalParams {
		d := math.Abs(rep.Off.FinalParams[i] - rep.Clean.FinalParams[i])
		if math.IsNaN(d) {
			rep.OffMaxDiff = math.Inf(1)
			break
		}
		if d > rep.OffMaxDiff {
			rep.OffMaxDiff = d
		}
	}
	rep.OffCorrupted = rep.OffMaxDiff > 1e-9
	return rep, nil
}

// guardCensus counts detections per guard name, rendered sorted.
func guardCensus(by []string) string {
	if len(by) == 0 {
		return "none"
	}
	counts := map[string]int{}
	for _, b := range by {
		counts[b]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, counts[k])
	}
	return strings.Join(parts, " ")
}

// finiteOrWord renders a magnitude without ever printing a raw NaN/Inf.
func finiteOrWord(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "non-finite"
	}
	return fmt.Sprintf("%.3g", v)
}

// Render formats the ablation for golden pinning and the CLI.
func (r *SDCReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sdc ablation %s (seed %d)\n", r.Scenario, r.Seed)
	fmt.Fprintf(&b, "  injected over %d steps x %d ranks: %d flip(s), %d torn-drain(s), %d stale-replica(s)\n",
		r.Steps, r.Ranks, r.Flips, r.Torn, r.Stale)
	leg := func(name string, g *ddl.GuardedResult) {
		fmt.Fprintf(&b, "  %-11s committed %d, executed %d, lost %d; detections %d (%s), rollbacks %d, restored from [%s]\n",
			name+":", g.StepsCommitted, g.StepsExecuted, g.LostSteps,
			g.Detections, guardCensus(g.DetectedBy), g.Rollbacks,
			strings.Join(g.RestoredFrom, " "))
	}
	leg("clean", r.Clean)
	leg("detect-on", r.On)
	leg("detect-off", r.Off)
	fmt.Fprintf(&b, "  recovery: detection-on final state bit-identical to clean: %v\n", r.OnMatchesClean)
	fmt.Fprintf(&b, "  ablation: detection-off final state corrupted: %v (max divergence %s)\n",
		r.OffCorrupted, finiteOrWord(r.OffMaxDiff))
	return b.String()
}

// CheckSDCInvariants proves the ablation's contract for one scenario:
//
//  1. Replay determinism — two runs render byte-identically (at
//     different Jobs, so worker count cannot leak into the report).
//  2. Verified recovery — with guards armed, every flip is detected,
//     detection costs lost work, and the final state is bit-identical
//     to the undisturbed leg.
//  3. Honest ablation — with guards disarmed nothing is detected and
//     the corruption reaches the final state.
//
// Scenarios without sdc bursts degenerate cleanly: no injections, three
// identical legs, nothing detected anywhere.
func CheckSDCInvariants(sc *Scenario, seed uint64, cfg SDCConfig) error {
	r1, err := RunSDC(sc, seed, SDCConfig{Jobs: 1, Obs: cfg.Obs})
	if err != nil {
		return err
	}
	r2, err := RunSDC(sc, seed, SDCConfig{Jobs: 4})
	if err != nil {
		return err
	}
	if r1.Render() != r2.Render() {
		return fmt.Errorf("chaos: sdc ablation replay diverged for %s seed %d", sc.Name, seed)
	}
	if r1.Clean.Detections != 0 || r1.Clean.Rollbacks != 0 {
		return fmt.Errorf("chaos: clean leg reported faults: %d detections, %d rollbacks",
			r1.Clean.Detections, r1.Clean.Rollbacks)
	}
	if !r1.OnMatchesClean {
		return fmt.Errorf("chaos: detection-on final state diverged from the undisturbed run")
	}
	if r1.Off.Detections != 0 || r1.Off.Rollbacks != 0 {
		return fmt.Errorf("chaos: disarmed guards detected something: %d detections", r1.Off.Detections)
	}
	if r1.Flips > 0 {
		if r1.On.Detections < 1 || r1.On.Detections > r1.Flips {
			return fmt.Errorf("chaos: %d flips injected but %d detections", r1.Flips, r1.On.Detections)
		}
		if r1.On.Rollbacks < 1 || r1.On.LostSteps < 1 {
			return fmt.Errorf("chaos: detection cost no work: %d rollbacks, %d lost steps",
				r1.On.Rollbacks, r1.On.LostSteps)
		}
		if len(r1.On.RestoredFrom) == 0 {
			return fmt.Errorf("chaos: rollbacks restored from no tier")
		}
		if !r1.OffCorrupted {
			return fmt.Errorf("chaos: detection-off leg shows no corruption despite %d flips", r1.Flips)
		}
	} else {
		if r1.On.Detections != 0 || r1.OffCorrupted {
			return fmt.Errorf("chaos: sdc-free scenario reported sdc activity")
		}
	}
	return nil
}
