package chaos

import (
	"strings"
	"testing"

	"summitscale/internal/units"
)

func TestParseDur(t *testing.T) {
	for in, want := range map[string]units.Seconds{
		"90":   90,
		"45s":  45,
		"10m":  600,
		"2h":   2 * units.Hour,
		"1d":   units.Day,
		"2y":   2 * units.Year,
		"0.5h": 1800,
	} {
		got, err := parseDur(in)
		if err != nil || got != want {
			t.Errorf("parseDur(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "-5s", "1w", "NaN", "Infh"} {
		if _, err := parseDur(bad); err == nil {
			t.Errorf("parseDur(%q) accepted", bad)
		}
	}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	for name, text := range map[string]string{
		"unknown directive": "name x\nnodes 4\nhorizon 1h\nfrobnicate at 1s",
		"odd pairs":         "name x\nnodes 4\nhorizon 1h\ncascade at 1s count",
		"missing key":       "name x\nnodes 4\nhorizon 1h\ncascade at 1s count 2 spacing 1s",
		"extra key":         "name x\nnodes 4\nhorizon 1h\nrepair at 1s count 2 bogus 1",
		"duplicate key":     "name x\nnodes 4\nhorizon 1h\nrepair at 1s at 2s",
		"no name":           "nodes 4\nhorizon 1h",
		"no nodes":          "name x\nhorizon 1h",
		"no horizon":        "name x\nnodes 4",
		"window outside":    "name x\nnodes 4\nhorizon 1h\nbrownout from 30m to 2h factor 0.5",
		"inverted window":   "name x\nnodes 4\nhorizon 1h\nflap from 30m to 10m period 1m duty 0.5 factor 0.5",
		"brownout factor":   "name x\nnodes 4\nhorizon 1h\nbrownout from 1m to 2m factor 1.5",
		"storm factor":      "name x\nnodes 4\nhorizon 1h\nstorm at 1m for 1m count 2 factor 0.5",
		"cascade spread":    "name x\nnodes 4\nhorizon 1h\ncascade at 1m count 2 spacing 1s spread 8",
		"repair count":      "name x\nnodes 4\nhorizon 1h\nrepair at 1m count 0",
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseIgnoresCommentsAndBlanks(t *testing.T) {
	sc, err := Parse(`
# worst week generator
name demo
nodes 16   # a small allocation
horizon 2h

cascade at 10m count 3 spacing 1m spread 4
`)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "demo" || sc.Nodes != 16 || sc.Horizon != 2*units.Hour || len(sc.Cascades) != 1 {
		t.Fatalf("parsed %+v", sc)
	}
}

// TestBuiltinsHoldInvariants is the tentpole gate: every shipped scenario
// compiles, runs across all five subsystems, and passes the full
// invariant suite — replay determinism, non-negative time, byte
// conservation, monotone degradation, and policies beating their absence.
func TestBuiltinsHoldInvariants(t *testing.T) {
	for _, name := range Names() {
		sc, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckInvariants(sc, 20220523, Config{}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestUnknownBuiltin(t *testing.T) {
	if _, err := Builtin("no-such-storm"); err == nil ||
		!strings.Contains(err.Error(), "rack-cascade") {
		t.Fatalf("unknown builtin error should list the names, got %v", err)
	}
}

// TestAdaptiveBeatsStaticOnCascade pins the RS4 policy regression: on a
// sustained cascade regime, the static Young/Daly cadence — solved from
// the hardware-sheet prior — commits too rarely and bleeds lost work,
// while the online controller tightens its interval as failures arrive.
func TestAdaptiveBeatsStaticOnCascade(t *testing.T) {
	sc, err := Builtin("rack-cascade")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc, 20220523, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Adaptive.Wall >= rep.Static.Wall {
		t.Fatalf("adaptive wall %v not below static %v — the controller is not load-bearing",
			rep.Adaptive.Wall, rep.Static.Wall)
	}
	if rep.Adaptive.LostWork >= rep.Static.LostWork {
		t.Fatalf("adaptive lost work %v not below static %v",
			rep.Adaptive.LostWork, rep.Static.LostWork)
	}
}

// TestGrowBackBeatsShrinkOnly: the cascade kills dozens of nodes and the
// repair returns them mid-run; folding them back in at a checkpoint
// boundary must beat limping on at the shrunken width — and make no
// difference when the scenario has no repairs to apply.
func TestGrowBackBeatsShrinkOnly(t *testing.T) {
	sc, err := Builtin("rack-cascade")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc, 20220523, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GrowBackWall >= rep.ShrinkOnlyWall {
		t.Fatalf("grow-back wall %v not below shrink-only %v",
			rep.GrowBackWall, rep.ShrinkOnlyWall)
	}

	noRepair := *sc
	noRepair.Repairs = nil
	rep2, err := Run(&noRepair, 20220523, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.GrowBackWall != rep2.ShrinkOnlyWall {
		t.Fatalf("with no repairs the policies must coincide: %v vs %v",
			rep2.GrowBackWall, rep2.ShrinkOnlyWall)
	}
}

// TestFailoverBeatsWaitOut: a six-hour facility outage mid-campaign.
func TestFailoverBeatsWaitOut(t *testing.T) {
	sc, err := Builtin("facility-outage")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc, 20220523, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failover.Makespan >= rep.WaitOut.Makespan {
		t.Fatalf("failover makespan %v not below wait-out %v",
			rep.Failover.Makespan, rep.WaitOut.Makespan)
	}
	if rep.WaitOut.WaitTime == 0 {
		t.Fatal("the wait-out comparator never waited — the outage did not bite")
	}
}

// TestCompileSeedSensitivity: different seeds move the correlated events;
// the scenario is a distribution, not one trace.
func TestCompileSeedSensitivity(t *testing.T) {
	sc, err := Builtin("perfect-storm")
	if err != nil {
		t.Fatal(err)
	}
	a, err := sc.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Compile(2)
	if err != nil {
		t.Fatal(err)
	}
	if sameSchedule(a, b) == nil {
		t.Fatal("seeds 1 and 2 compiled to the identical schedule")
	}
}

func TestScaledGuards(t *testing.T) {
	sc := MustParse("name x\nnodes 8\nhorizon 1h\ncascade at 1m count 2 spacing 1s spread 4")
	defer func() {
		if recover() == nil {
			t.Fatal("Scaled(0.5) accepted")
		}
	}()
	sc.Scaled(0.5)
}

func TestScaledIntensifies(t *testing.T) {
	sc := MustParse(`
name x
nodes 64
horizon 2h
cascade at 10m count 4 spacing 30s spread 8
storm at 30m for 10m count 4 factor 2
brownout from 50m to 70m factor 0.5
flap from 80m to 90m period 1m duty 0.5 factor 0.5
`)
	h := sc.Scaled(2)
	if h.Cascades[0].Count != 8 || h.Storms[0].Count != 8 {
		t.Fatalf("populations not doubled: %+v %+v", h.Cascades, h.Storms)
	}
	if h.Storms[0].Factor != 3 || h.Brownouts[0].Factor != 0.25 || h.Flaps[0].Factor != 0.25 {
		t.Fatalf("severities not deepened: %+v %+v %+v", h.Storms, h.Brownouts, h.Flaps)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("scaled scenario invalid: %v", err)
	}
}
