package chaos

import (
	"testing"
)

// BenchmarkChaosHotPath measures one full scenario pass — compile the
// perfect-storm spec and drive every subsystem probe — the unit of work
// RS3 repeats per scenario and seed. Tracked in BENCH_hotpath.json via
// `make bench-json`.
func BenchmarkChaosHotPath(b *testing.B) {
	sc, err := Builtin("perfect-storm")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(sc, uint64(i+1), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChaosCompile isolates the scenario-to-schedule lowering.
func BenchmarkChaosCompile(b *testing.B) {
	sc, err := Builtin("perfect-storm")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Compile(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}
