// Package chaos is the adversarial-scenario engine: seeded, declarative
// failure campaigns — cascading node failures with spatial and temporal
// correlation, link flap and brownout windows, storage-bandwidth
// degradation, straggler storms, facility-wide outages — compiled into
// deterministic event schedules and applied across every simulator
// (netsim, storage, ddl, faults, workflow). The independent renewal
// processes of internal/faults model the machine on an average day; the
// chaos scenarios model its worst week, the correlated regimes (a rack
// losing cooling, GPFS under an I/O storm, a center-wide maintenance
// overrun) that §IV-B full-machine campaigns actually died to. After
// every scenario an invariant checker proves the composition stayed
// physical: byte-identical replay at any worker count, non-negative
// times, byte conservation through degraded collectives, and monotone
// degradation as the scenario intensifies.
package chaos

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"summitscale/internal/units"
)

// Background is an uncorrelated failure process running underneath the
// scenario's correlated events — internal/faults' renewal model.
type Background struct {
	NodeMTBF units.Seconds
	Shape    float64 // Weibull shape; 1 is memoryless
}

// Cascade is a correlated node-failure burst: Count failures starting at
// At, spaced Spacing apart (with seeded jitter), striking nodes clustered
// inside a window of Spread consecutive indices — a rack or cooling zone
// going down, not independent crashes.
type Cascade struct {
	At      units.Seconds
	Count   int
	Spacing units.Seconds
	Spread  int
}

// Flap is a link-degradation window: between From and To the fabric's
// worst link oscillates, spending Duty of every Period at Factor of its
// bandwidth.
type Flap struct {
	From, To units.Seconds
	Period   units.Seconds
	Duty     float64
	Factor   float64
}

// Brownout scales the shared filesystem's aggregate bandwidth by Factor
// over [From, To) — the I/O-storm regime of a multi-tenant GPFS.
type Brownout struct {
	From, To units.Seconds
	Factor   float64
}

// Storm is a straggler storm: Count nodes slow down by Factor for the
// window [At, At+For).
type Storm struct {
	At, For units.Seconds
	Count   int
	Factor  float64
}

// Outage takes a whole facility offline over [From, To) — the input to
// the workflow failover policy.
type Outage struct {
	Facility string
	From, To units.Seconds
}

// Repair returns Count failed nodes to service at time At; the elastic
// grow-back policy folds them in at the next checkpoint boundary.
type Repair struct {
	At    units.Seconds
	Count int
}

// SDCBurst is a silent-data-corruption burst: Count corruption events of
// the given kind scattered (seeded) over [At, At+For). Kind "flip" lowers
// to gradient/parameter bit flips, "torn" to torn checkpoint drains,
// "stale" to lost drains leaving deeper tiers serving stale replicas.
type SDCBurst struct {
	At, For units.Seconds
	Count   int
	Kind    string
}

// Scenario is one parsed adversarial campaign.
type Scenario struct {
	Name    string
	Nodes   int
	Horizon units.Seconds

	Background *Background
	Cascades   []Cascade
	Flaps      []Flap
	Brownouts  []Brownout
	Storms     []Storm
	Outages    []Outage
	Repairs    []Repair
	SDCs       []SDCBurst
}

// Parse reads the scenario DSL: one directive per line, `#` comments,
// key/value pairs in `key value` pairs after the directive word.
//
//	name rack-cascade
//	nodes 512
//	horizon 24h
//	background mtbf 2y shape 0.7
//	cascade at 2h count 32 spacing 30s spread 64
//	flap from 4h to 6h period 10m duty 0.5 factor 0.25
//	brownout from 8h to 10h factor 0.4
//	storm at 12h for 1h count 48 factor 2.5
//	outage facility summit from 16h to 20h
//	repair at 20h count 16
//
// Durations accept s/m/h/d/y suffixes (bare numbers are seconds).
func Parse(text string) (*Scenario, error) {
	sc := &Scenario{}
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if err := sc.apply(fields[0], fields[1:]); err != nil {
			return nil, fmt.Errorf("chaos: line %d: %v", ln+1, err)
		}
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// MustParse is Parse for static scenario definitions.
func MustParse(text string) *Scenario {
	sc, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return sc
}

func pairs(fields []string) (map[string]string, error) {
	if len(fields)%2 != 0 {
		return nil, fmt.Errorf("directive arguments must come in key value pairs, got %v", fields)
	}
	kv := make(map[string]string, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		if _, dup := kv[fields[i]]; dup {
			return nil, fmt.Errorf("duplicate key %q", fields[i])
		}
		kv[fields[i]] = fields[i+1]
	}
	return kv, nil
}

func (sc *Scenario) apply(directive string, rest []string) error {
	var kv map[string]string
	var err error
	need := func(keys ...string) error {
		kv, err = pairs(rest)
		if err != nil {
			return err
		}
		for _, k := range keys {
			if _, ok := kv[k]; !ok {
				return fmt.Errorf("%s needs %q", directive, k)
			}
		}
		if len(kv) != len(keys) {
			return fmt.Errorf("%s takes exactly %v, got %v", directive, keys, rest)
		}
		return nil
	}
	dur := func(key string) units.Seconds {
		if err != nil {
			return 0
		}
		var d units.Seconds
		d, err = parseDur(kv[key])
		return d
	}
	num := func(key string) float64 {
		if err != nil {
			return 0
		}
		var v float64
		v, err = strconv.ParseFloat(kv[key], 64)
		return v
	}
	count := func(key string) int {
		if err != nil {
			return 0
		}
		var n int
		n, err = strconv.Atoi(kv[key])
		return n
	}

	switch directive {
	case "name":
		if len(rest) != 1 {
			return fmt.Errorf("name takes one word")
		}
		sc.Name = rest[0]
		return nil
	case "nodes":
		if len(rest) != 1 {
			return fmt.Errorf("nodes takes one count")
		}
		sc.Nodes, err = strconv.Atoi(rest[0])
		return err
	case "horizon":
		if len(rest) != 1 {
			return fmt.Errorf("horizon takes one duration")
		}
		sc.Horizon, err = parseDur(rest[0])
		return err
	case "background":
		if e := need("mtbf", "shape"); e != nil {
			return e
		}
		sc.Background = &Background{NodeMTBF: dur("mtbf"), Shape: num("shape")}
	case "cascade":
		if e := need("at", "count", "spacing", "spread"); e != nil {
			return e
		}
		sc.Cascades = append(sc.Cascades, Cascade{
			At: dur("at"), Count: count("count"),
			Spacing: dur("spacing"), Spread: count("spread")})
	case "flap":
		if e := need("from", "to", "period", "duty", "factor"); e != nil {
			return e
		}
		sc.Flaps = append(sc.Flaps, Flap{From: dur("from"), To: dur("to"),
			Period: dur("period"), Duty: num("duty"), Factor: num("factor")})
	case "brownout":
		if e := need("from", "to", "factor"); e != nil {
			return e
		}
		sc.Brownouts = append(sc.Brownouts, Brownout{
			From: dur("from"), To: dur("to"), Factor: num("factor")})
	case "storm":
		if e := need("at", "for", "count", "factor"); e != nil {
			return e
		}
		sc.Storms = append(sc.Storms, Storm{At: dur("at"), For: dur("for"),
			Count: count("count"), Factor: num("factor")})
	case "outage":
		if e := need("facility", "from", "to"); e != nil {
			return e
		}
		sc.Outages = append(sc.Outages, Outage{Facility: kv["facility"],
			From: dur("from"), To: dur("to")})
	case "repair":
		if e := need("at", "count"); e != nil {
			return e
		}
		sc.Repairs = append(sc.Repairs, Repair{At: dur("at"), Count: count("count")})
	case "sdc":
		if e := need("at", "for", "count", "kind"); e != nil {
			return e
		}
		sc.SDCs = append(sc.SDCs, SDCBurst{At: dur("at"), For: dur("for"),
			Count: count("count"), Kind: kv["kind"]})
	default:
		return fmt.Errorf("unknown directive %q", directive)
	}
	return err
}

// parseDur reads a duration with an s/m/h/d/y suffix; a bare number is
// seconds.
func parseDur(s string) (units.Seconds, error) {
	mult := units.Seconds(1)
	switch {
	case strings.HasSuffix(s, "y"):
		mult, s = units.Year, s[:len(s)-1]
	case strings.HasSuffix(s, "d"):
		mult, s = units.Day, s[:len(s)-1]
	case strings.HasSuffix(s, "h"):
		mult, s = units.Hour, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = units.Minute, s[:len(s)-1]
	case strings.HasSuffix(s, "s"):
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("duration %q out of range", s)
	}
	return mult * units.Seconds(v), nil
}

// Validate rejects scenarios the compiler cannot schedule: missing name,
// node count, or horizon; windows outside the horizon or inverted;
// factors on the wrong side of 1; counts that are not positive.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("chaos: scenario needs a name")
	}
	if sc.Nodes < 1 {
		return fmt.Errorf("chaos: scenario %q needs a positive node count, got %d", sc.Name, sc.Nodes)
	}
	if !(sc.Horizon > 0) {
		return fmt.Errorf("chaos: scenario %q needs a positive horizon", sc.Name)
	}
	window := func(what string, from, to units.Seconds) error {
		if !(from >= 0 && to > from && to <= sc.Horizon) {
			return fmt.Errorf("chaos: scenario %q: %s window [%v, %v) outside [0, %v]",
				sc.Name, what, float64(from), float64(to), float64(sc.Horizon))
		}
		return nil
	}
	if b := sc.Background; b != nil {
		if !(b.NodeMTBF > 0) || !(b.Shape > 0) {
			return fmt.Errorf("chaos: scenario %q: background needs positive mtbf and shape", sc.Name)
		}
	}
	for _, c := range sc.Cascades {
		if c.Count < 1 || c.Spread < 1 || !(c.Spacing >= 0) || c.At < 0 || c.At >= sc.Horizon {
			return fmt.Errorf("chaos: scenario %q: bad cascade %+v", sc.Name, c)
		}
		if c.Spread > sc.Nodes {
			return fmt.Errorf("chaos: scenario %q: cascade spread %d exceeds %d nodes",
				sc.Name, c.Spread, sc.Nodes)
		}
	}
	for _, f := range sc.Flaps {
		if err := window("flap", f.From, f.To); err != nil {
			return err
		}
		if !(f.Period > 0) || !(f.Duty > 0 && f.Duty <= 1) || !(f.Factor > 0 && f.Factor < 1) {
			return fmt.Errorf("chaos: scenario %q: bad flap %+v", sc.Name, f)
		}
	}
	for _, b := range sc.Brownouts {
		if err := window("brownout", b.From, b.To); err != nil {
			return err
		}
		if !(b.Factor > 0 && b.Factor < 1) {
			return fmt.Errorf("chaos: scenario %q: brownout factor %v must be in (0,1)", sc.Name, b.Factor)
		}
	}
	for _, s := range sc.Storms {
		if err := window("storm", s.At, s.At+s.For); err != nil {
			return err
		}
		if s.Count < 1 || !(s.Factor > 1) {
			return fmt.Errorf("chaos: scenario %q: bad storm %+v", sc.Name, s)
		}
	}
	for _, o := range sc.Outages {
		if o.Facility == "" {
			return fmt.Errorf("chaos: scenario %q: outage without a facility", sc.Name)
		}
		if err := window("outage", o.From, o.To); err != nil {
			return err
		}
	}
	for _, r := range sc.Repairs {
		if r.Count < 1 || r.At < 0 || r.At > sc.Horizon {
			return fmt.Errorf("chaos: scenario %q: bad repair %+v", sc.Name, r)
		}
	}
	for _, s := range sc.SDCs {
		if err := window("sdc", s.At, s.At+s.For); err != nil {
			return err
		}
		if s.Count < 1 {
			return fmt.Errorf("chaos: scenario %q: bad sdc burst %+v", sc.Name, s)
		}
		switch s.Kind {
		case "flip", "torn", "stale":
		default:
			return fmt.Errorf("chaos: scenario %q: sdc kind %q not in flip/torn/stale", sc.Name, s.Kind)
		}
	}
	return nil
}

// Scaled returns a copy of the scenario with its correlated-event
// intensity multiplied by k >= 1: cascade and storm populations grow,
// brownouts and flaps bite deeper (factors move toward zero), storms
// slow further. The invariant checker uses it to assert monotone
// degradation — a strictly harsher scenario must never finish faster.
func (sc *Scenario) Scaled(k float64) *Scenario {
	if !(k >= 1) {
		panic(fmt.Sprintf("chaos: intensity scale must be >= 1, got %v", k))
	}
	out := *sc
	out.Name = fmt.Sprintf("%s-x%g", sc.Name, k)
	out.Cascades = append([]Cascade(nil), sc.Cascades...)
	for i := range out.Cascades {
		out.Cascades[i].Count = int(math.Ceil(float64(out.Cascades[i].Count) * k))
	}
	out.Storms = append([]Storm(nil), sc.Storms...)
	for i := range out.Storms {
		out.Storms[i].Count = int(math.Ceil(float64(out.Storms[i].Count) * k))
		out.Storms[i].Factor = 1 + (out.Storms[i].Factor-1)*k
	}
	out.Brownouts = append([]Brownout(nil), sc.Brownouts...)
	for i := range out.Brownouts {
		out.Brownouts[i].Factor /= k
	}
	out.Flaps = append([]Flap(nil), sc.Flaps...)
	for i := range out.Flaps {
		out.Flaps[i].Factor /= k
	}
	out.SDCs = append([]SDCBurst(nil), sc.SDCs...)
	for i := range out.SDCs {
		out.SDCs[i].Count = int(math.Ceil(float64(out.SDCs[i].Count) * k))
	}
	return &out
}

// Census renders a one-line directive count. The sdc segment appears
// only when the scenario declares bursts, so pre-SDC censuses render
// unchanged.
func (sc *Scenario) Census() string {
	base := fmt.Sprintf("%d nodes over %v: %d cascade(s), %d flap(s), %d brownout(s), %d storm(s), %d outage(s), %d repair(s)",
		sc.Nodes, sc.Horizon, len(sc.Cascades), len(sc.Flaps), len(sc.Brownouts),
		len(sc.Storms), len(sc.Outages), len(sc.Repairs))
	if len(sc.SDCs) > 0 {
		base += fmt.Sprintf(", %d sdc burst(s)", len(sc.SDCs))
	}
	return base
}

// builtins are the named scenarios shipped with the engine; RS3 sweeps
// them and `summit-chaos -list` prints them.
var builtins = map[string]string{
	"rack-cascade": `
name rack-cascade
nodes 512
horizon 24h
background mtbf 2y shape 1
cascade at 1h count 40 spacing 20m spread 64
repair at 16h count 40
`,
	"gpfs-brownout": `
name gpfs-brownout
nodes 512
horizon 24h
background mtbf 2y shape 1
brownout from 4h to 9h factor 0.3
brownout from 16h to 18h factor 0.6
`,
	"link-flap": `
name link-flap
nodes 512
horizon 24h
background mtbf 2y shape 1
flap from 3h to 7h period 10m duty 0.5 factor 0.25
flap from 12h to 13h period 2m duty 0.8 factor 0.5
`,
	"straggler-storm": `
name straggler-storm
nodes 512
horizon 24h
background mtbf 2y shape 1
storm at 6h for 90m count 48 factor 2.5
storm at 18h for 30m count 96 factor 1.8
`,
	"facility-outage": `
name facility-outage
nodes 512
horizon 24h
background mtbf 2y shape 1
outage facility summit from 8h to 14h
`,
	"sdc-storm": `
name sdc-storm
nodes 64
horizon 24h
background mtbf 2y shape 1
sdc at 2h for 4h count 3 kind flip
sdc at 9h for 2h count 1 kind torn
sdc at 14h for 3h count 1 kind stale
sdc at 19h for 2h count 2 kind flip
`,
	"perfect-storm": `
name perfect-storm
nodes 512
horizon 24h
background mtbf 1y shape 0.7
cascade at 1h count 24 spacing 15m spread 32
flap from 2h to 5h period 5m duty 0.6 factor 0.3
brownout from 4h to 8h factor 0.35
storm at 6h for 1h count 64 factor 2.2
outage facility summit from 10h to 13h
repair at 14h count 24
`,
}

// Builtin returns a shipped scenario by name.
func Builtin(name string) (*Scenario, error) {
	text, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("chaos: unknown builtin scenario %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return Parse(text)
}

// Names lists the builtin scenarios, sorted.
func Names() []string {
	out := make([]string, 0, len(builtins))
	for n := range builtins {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
