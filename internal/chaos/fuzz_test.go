package chaos

import (
	"testing"

	"summitscale/internal/units"
)

// FuzzParseScenario drives the DSL parser with arbitrary text: it must
// never panic, and whatever it does accept must validate, compile
// deterministically, and produce a schedule holding the structural
// invariants. Compilation is skipped for accepted-but-enormous inputs
// (the fuzzer loves a cascade of a billion nodes); the point is parser
// robustness, not scheduler throughput.
func FuzzParseScenario(f *testing.F) {
	for _, text := range builtins {
		f.Add(text)
	}
	f.Add("name x\nnodes 4\nhorizon 1h")
	f.Add("name x\nnodes 4\nhorizon 1h\ncascade at 1m count 2 spacing 1s spread 4")
	f.Add("# only a comment")
	f.Add("name \x00\nnodes -3\nhorizon 1e308y")
	f.Add("flap from 1m to 2m period 0s duty 2 factor 9")
	f.Fuzz(func(t *testing.T, text string) {
		sc, err := Parse(text)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("Parse accepted a scenario Validate rejects: %v", err)
		}
		if tooBigToCompile(sc) {
			return
		}
		a, err := sc.Compile(7)
		if err != nil {
			t.Fatalf("valid scenario failed to compile: %v", err)
		}
		b, err := sc.Compile(7)
		if err != nil {
			t.Fatal(err)
		}
		if err := sameSchedule(a, b); err != nil {
			t.Fatalf("compile replay diverged: %v", err)
		}
		prev := units.Seconds(0)
		for i, e := range a.Trace.Events {
			if e.Time < prev || e.Time < 0 || e.Time >= sc.Horizon {
				t.Fatalf("event %d at %v breaks ordering/horizon (prev %v, horizon %v)",
					i, e.Time, prev, sc.Horizon)
			}
			prev = e.Time
			if e.Node < 0 || e.Node >= sc.Nodes || e.Duration < 0 {
				t.Fatalf("event %d malformed: %+v", i, e)
			}
		}
	})
}

// tooBigToCompile estimates the compiled event count and skips inputs
// that would schedule millions of events.
func tooBigToCompile(sc *Scenario) bool {
	const limit = 200_000
	events := 0.0
	if b := sc.Background; b != nil {
		events += float64(sc.Horizon) / (float64(b.NodeMTBF) / float64(sc.Nodes))
	}
	for _, c := range sc.Cascades {
		events += float64(c.Count)
	}
	for _, f := range sc.Flaps {
		events += float64(f.To-f.From) / float64(f.Period)
	}
	for _, s := range sc.Storms {
		events += float64(s.Count)
	}
	return sc.Nodes > 1_000_000 || events > limit
}
