package chaos

import (
	"fmt"
	"strings"

	"summitscale/internal/faults"
	"summitscale/internal/obs"
	"summitscale/internal/platform"
	"summitscale/internal/serve"
	"summitscale/internal/units"
)

// ServeChaosReport compares the serving layer's behaviour under one
// compiled scenario with the shed-load degradation policy on and off.
// The headline is availability under correlated failure: with shedding,
// Bulk traffic is refused early so Interactive requests keep a bounded
// queue (and therefore bounded p99) while capacity is degraded; without
// it the queue fills with mixed traffic and Interactive requests inherit
// the backlog — or bounce off the hard cap entirely.
type ServeChaosReport struct {
	Scenario    string
	Platform    string
	Seed        uint64
	Compression float64 // scenario seconds per serving second
	Fails       int     // replica-loss events replayed into the window
	Repairs     int

	Shed   *serve.Report // shed policy on (DefaultAdmission)
	NoShed *serve.Report // same capacity, ShedAt disabled
}

// ServingStorm is the serving layer's reference adversarial scenario: a
// three-node cascade halves the replica fleet, then a near-continuous
// link-degrade window quadruples service times right across the day-peak
// burst, and repairs land only afterwards. Unlike the total-outage
// builtins (which flatten every policy equally), this keeps capacity
// partial — the regime where the shed policy visibly buys interactive
// latency and availability. It is deliberately not in the builtin sweep:
// RS3's goldens pin the builtin list.
func ServingStorm() *Scenario {
	return MustParse(`
name serving-storm
nodes 512
horizon 24h
background mtbf 4y shape 1
cascade at 4h count 3 spacing 30m spread 64
flap from 9h to 14h period 20m duty 0.95 factor 0.25
repair at 16h count 3
`)
}

// RunServe replays a chaos scenario against the surrogate-serving layer.
// The scenario's schedule (node failures, repairs, link-flap windows) is
// compressed onto the traffic horizon: an event at scenario time t lands
// at serving time t·(horizon/scenario-horizon). Node failures cost one
// serving replica each (the serving allocation rides the same machine as
// the campaign, so correlated cascades hit it too); repairs return them;
// link-degrade windows inflate service and transit times by 1/factor.
// Both policy runs consume the identical request stream, so the report is
// a pure function of (platform, scenario, seed, spec).
func RunServe(p platform.Platform, sc *Scenario, seed uint64, spec serve.TrafficSpec, models []serve.Model, o *obs.Observer) (*ServeChaosReport, error) {
	if sc.Horizon <= 0 {
		return nil, fmt.Errorf("chaos: scenario %q has no horizon", sc.Name)
	}
	if spec.Horizon <= 0 {
		return nil, fmt.Errorf("chaos: serving spec has no horizon")
	}
	sched, err := sc.Compile(seed)
	if err != nil {
		return nil, err
	}
	k := float64(spec.Horizon) / float64(sc.Horizon)

	var fails []units.Seconds
	for _, ev := range sched.Trace.Events {
		if ev.Kind == faults.NodeFailure {
			fails = append(fails, units.Seconds(float64(ev.Time)*k))
		}
	}
	var repairs []units.Seconds
	for _, r := range sched.Repairs {
		at := units.Seconds(float64(r.At) * k)
		for i := 0; i < r.Count; i++ {
			repairs = append(repairs, at)
		}
	}
	linkAt := func(t units.Seconds) float64 {
		return sched.LinkFactorAt(units.Seconds(float64(t) / k))
	}

	reqs, err := spec.Generate(seed, models)
	if err != nil {
		return nil, err
	}
	replicas := serve.ReplicasFor(p, len(models))
	batch := serve.DefaultBatch()
	shedAdm := serve.DefaultAdmission(replicas, batch.MaxBatch)
	noShedAdm := shedAdm
	noShedAdm.ShedAt = 0

	base := serve.Config{
		Platform: p, Models: models, Batch: batch, Replicas: replicas,
		Horizon: spec.Horizon, LinkFactorAt: linkAt,
		ReplicaFails: fails, ReplicaRepairs: repairs,
	}

	withShed := base
	withShed.Admission = shedAdm
	withShed.Obs = o // only one run feeds the observer, or metrics would double-count
	shedRep, err := serve.Run(withShed, reqs)
	if err != nil {
		return nil, err
	}

	withoutShed := base
	withoutShed.Admission = noShedAdm
	noShedRep, err := serve.Run(withoutShed, reqs)
	if err != nil {
		return nil, err
	}

	return &ServeChaosReport{
		Scenario:    sc.Name,
		Platform:    p.Name,
		Seed:        seed,
		Compression: 1 / k,
		Fails:       len(fails),
		Repairs:     len(repairs),
		Shed:        shedRep,
		NoShed:      noShedRep,
	}, nil
}

// InteractiveServed counts served Interactive responses in a run.
func interactiveServed(r *serve.Report) int {
	n := 0
	for _, resp := range r.Responses {
		if resp.Tier == serve.Interactive {
			n++
		}
	}
	return n
}

// Render formats the comparison deterministically.
func (r *ServeChaosReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos serving: scenario %s on %s (seed %d, %.0fx compressed, %d replica-loss, %d repair events)\n",
		r.Scenario, r.Platform, r.Seed, r.Compression, r.Fails, r.Repairs)
	fmt.Fprintf(&b, "  shed on : interactive served %d p99 %.1fms | rejected %d (shed %d) unserved %d\n",
		interactiveServed(r.Shed), 1e3*float64(r.Shed.InteractiveP99),
		r.Shed.Rejected, shedCount(r.Shed), r.Shed.Unserved)
	fmt.Fprintf(&b, "  shed off: interactive served %d p99 %.1fms | rejected %d (shed %d) unserved %d\n",
		interactiveServed(r.NoShed), 1e3*float64(r.NoShed.InteractiveP99),
		r.NoShed.Rejected, shedCount(r.NoShed), r.NoShed.Unserved)
	return b.String()
}

// shedCount totals shed rejections across a run's models.
func shedCount(r *serve.Report) int {
	n := 0
	for _, m := range r.Models {
		n += m.Shed
	}
	return n
}
