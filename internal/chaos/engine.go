package chaos

import (
	"fmt"
	"strings"

	"summitscale/internal/faults"
	"summitscale/internal/obs"
	"summitscale/internal/platform"
	"summitscale/internal/units"
	"summitscale/internal/workflow"
)

// Config shapes an engine run.
type Config struct {
	// Platform supplies the fabric and filesystem models (default: the
	// paper baseline, Summit).
	Platform platform.Platform
	// RingNodes is the collective's world size (default: the scenario's
	// node count, capped at 64 so step counts stay readable).
	RingNodes int
	// Obs, if non-nil, receives the run's spans and counters.
	Obs *obs.Observer
}

// Probe constants: one engine run drives every subsystem with the same
// nominal workload so scenarios stay comparable.
const (
	probeGradient = units.Bytes(1 * units.GB) // allreduce payload
	probeDataset  = units.Bytes(10 * units.TB)
	probeSteps    = 960 // elastic throughput model resolution
	probeTasks    = 12  // campaign length through the failover policy
)

// Report is one scenario applied across every subsystem, plus the
// policy-on/policy-off comparisons RS4 pins. All fields are deterministic
// functions of (scenario, seed, platform).
type Report struct {
	Scenario string
	Seed     uint64
	Summary  string

	// Checkpoint cadence on the chaos trace: the static Young/Daly policy
	// solved from the background prior vs the online adaptive controller.
	Shape     faults.RunShape
	PriorMTBF units.Seconds
	Static    faults.Outcome
	Adaptive  faults.Outcome

	// Ring allreduce under the scenario's link environment, averaged over
	// hourly launch times; bytes are conserved per launch (checked by the
	// invariant suite).
	RingNodes      int
	CleanAllReduce units.Seconds
	ChaosAllReduce units.Seconds
	BytesPerMember units.Bytes

	// Dataset staging through the shared filesystem, clean vs the deepest
	// brownout window.
	CleanStage    units.Seconds
	BrownoutStage units.Seconds

	// Elastic data-parallel throughput: wall time to the fixed step budget
	// when repaired nodes rejoin at checkpoint boundaries (grow-back) vs
	// limping on at the shrunken width.
	ShrinkOnlyWall units.Seconds
	GrowBackWall   units.Seconds

	// Campaign routing through the facility outages: the failover policy
	// (backup facility, circuit breaker, hedged launches) vs waiting every
	// outage out on the primary.
	Failover *workflow.FailoverReport
	WaitOut  *workflow.FailoverReport
}

// Run compiles the scenario at the seed and applies the schedule across
// faults, netsim, storage, ddl (throughput model), and workflow.
func Run(sc *Scenario, seed uint64, cfg Config) (*Report, error) {
	sched, err := sc.Compile(seed)
	if err != nil {
		return nil, err
	}
	if cfg.Platform.Key == "" {
		cfg.Platform = platform.Summit()
	}
	ringNodes := cfg.RingNodes
	if ringNodes <= 0 {
		ringNodes = sc.Nodes
		if ringNodes > 64 {
			ringNodes = 64
		}
	}
	ob := cfg.Obs
	rep := &Report{
		Scenario:  sc.Name,
		Seed:      seed,
		Summary:   sched.Summary(),
		RingNodes: ringNodes,
	}

	// --- faults: static vs adaptive checkpoint cadence on the chaos trace.
	rep.Shape = faults.RunShape{
		TotalWork:      sc.Horizon / 2,
		CheckpointCost: 45,
		RestartCost:    180,
	}
	rep.PriorMTBF = sched.Trace.Params.SystemMTBF()
	static := faults.DalyInterval(rep.Shape.CheckpointCost, rep.PriorMTBF)
	rep.Static = faults.Simulate(rep.Shape, static, sched.Trace)
	// The faults simulator publishes gauges under its own faults.* names;
	// feeding it this run's observer would race RS1/RS2 for the same keys
	// when experiments run concurrently. The chaos engine owns the
	// chaos.ckpt.* gauges below instead.
	rep.Adaptive = faults.SimulateAdaptiveObserved(rep.Shape,
		faults.AdaptivePolicy{Prior: rep.PriorMTBF}, sched.Trace, nil)
	ob.Set("chaos.ckpt.static_wall_s", float64(rep.Static.Wall))
	ob.Set("chaos.ckpt.adaptive_wall_s", float64(rep.Adaptive.Wall))

	// --- netsim: the collective under the flap windows, launched hourly.
	fabric := cfg.Platform.Fabric()
	rep.CleanAllReduce, rep.BytesPerMember = fabric.RingAllReduceUnder(
		ringNodes, probeGradient, 0, nil)
	launches := 0
	var chaosTotal units.Seconds
	for t := units.Seconds(0); t < sc.Horizon; t += units.Hour {
		dt, bytes := fabric.RingAllReduceUnder(ringNodes, probeGradient, t, sched.LinkFactorAt)
		if bytes != rep.BytesPerMember {
			return nil, fmt.Errorf("chaos: collective at t=%v moved %v, clean run moved %v",
				t, bytes, rep.BytesPerMember)
		}
		chaosTotal += dt
		launches++
	}
	rep.ChaosAllReduce = chaosTotal / units.Seconds(launches)
	ob.Set("chaos.net.mean_allreduce_s", float64(rep.ChaosAllReduce))

	// --- storage: staging through the deepest brownout.
	gpfs := cfg.Platform.GPFS()
	stageNodes := sc.Nodes
	rep.CleanStage = units.Seconds(float64(probeDataset) / float64(gpfs.ReadBW(stageNodes)))
	rep.BrownoutStage = units.Seconds(float64(probeDataset) /
		float64(gpfs.Degraded(sched.WorstBrownout()).ReadBW(stageNodes)))
	ob.Set("chaos.storage.brownout_stage_s", float64(rep.BrownoutStage))

	// --- ddl: elastic throughput with and without grow-back.
	stepTime := sc.Horizon / probeSteps
	rep.ShrinkOnlyWall = elasticWall(sched, ringNodes, probeSteps, stepTime, false)
	rep.GrowBackWall = elasticWall(sched, ringNodes, probeSteps, stepTime, true)
	ob.Set("chaos.ddl.growback_wall_s", float64(rep.GrowBackWall))

	// --- workflow: campaign routing through the facility outages.
	primary := cfg.Platform.Key
	for _, o := range sched.Outages {
		primary = o.Facility
		break
	}
	backup := primary + "-backup"
	outages := sched.FacilityOutages()
	taskDur := sc.Horizon / probeTasks / 2
	tasks := make([]workflow.HedgedTask, probeTasks)
	for i := range tasks {
		tasks[i] = workflow.HedgedTask{Name: fmt.Sprintf("task-%02d", i), Duration: taskDur}
	}
	rep.Failover, err = workflow.RunFailoverCampaign(workflow.FailoverPolicy{
		Facilities: []string{primary, backup},
		Speed:      map[string]float64{backup: 0.5},
		Outages:    outages,
		Breaker:    workflow.NewCircuitBreaker(3, 2*units.Hour),
		Hedge:      taskDur / 4,
		Obs:        ob,
	}, tasks)
	if err != nil {
		return nil, err
	}
	rep.WaitOut, err = workflow.RunFailoverCampaign(workflow.FailoverPolicy{
		Facilities: []string{primary},
		Outages:    outages,
	}, tasks)
	if err != nil {
		return nil, err
	}
	ob.Set("chaos.workflow.failover_makespan_s", float64(rep.Failover.Makespan))
	return rep, nil
}

// elasticWall walks the elastic throughput model: a fixed budget of steps
// on an initially full world; every trace failure before the current wall
// clock shrinks the world by one (never below one), every step costs
// base·W0/w (the global batch re-sharded over fewer ranks) times the
// trace's straggler slowdown, and — when growBack is on — repairs rejoin
// at the next checkpoint boundary (every 16 steps), capped at the initial
// width. Pure and deterministic: no filesystem, no RNG.
func elasticWall(s *Schedule, world, steps int, stepTime units.Seconds, growBack bool) units.Seconds {
	const boundary = 16
	failures := s.Trace.FailureTimes()
	w := world
	fi, ri := 0, 0
	var wall units.Seconds
	for step := 0; step < steps; step++ {
		for fi < len(failures) && failures[fi] <= wall {
			fi++
			if w > 1 {
				w--
			}
		}
		if growBack && step%boundary == 0 {
			for ri < len(s.Repairs) && s.Repairs[ri].At <= wall {
				w += s.Repairs[ri].Count
				if w > world {
					w = world
				}
				ri++
			}
		}
		wall += stepTime * units.Seconds(float64(world)/float64(w)*s.Trace.SlowdownAt(wall))
	}
	return wall
}

// Render formats the report for golden pinning and the CLI.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s (seed %d)\n  %s\n", r.Scenario, r.Seed, r.Summary)
	fmt.Fprintf(&b, "  checkpoint cadence (work %.0fs, delta %.0fs, prior MTBF %.0fs):\n",
		float64(r.Shape.TotalWork), float64(r.Shape.CheckpointCost), float64(r.PriorMTBF))
	fmt.Fprintf(&b, "    static Daly:  wall %.0fs, lost %.0fs, %d failure(s), %d checkpoint(s)\n",
		float64(r.Static.Wall), float64(r.Static.LostWork), r.Static.Failures, r.Static.Checkpoints)
	fmt.Fprintf(&b, "    adaptive:     wall %.0fs, lost %.0fs, %d failure(s), %d checkpoint(s)\n",
		float64(r.Adaptive.Wall), float64(r.Adaptive.LostWork), r.Adaptive.Failures, r.Adaptive.Checkpoints)
	fmt.Fprintf(&b, "  ring allreduce (%d nodes, %.0f MB): clean %.4fs, chaos mean %.4fs, %.1f MB/member\n",
		r.RingNodes, float64(probeGradient)/1e6, float64(r.CleanAllReduce),
		float64(r.ChaosAllReduce), float64(r.BytesPerMember)/1e6)
	fmt.Fprintf(&b, "  staging %.0f TB: clean %.0fs, brownout %.0fs\n",
		float64(probeDataset)/1e12, float64(r.CleanStage), float64(r.BrownoutStage))
	fmt.Fprintf(&b, "  elastic %d steps: shrink-only %.0fs, grow-back %.0fs\n",
		probeSteps, float64(r.ShrinkOnlyWall), float64(r.GrowBackWall))
	fmt.Fprintf(&b, "  campaign: failover %s\n            wait-out %s\n",
		r.Failover, r.WaitOut)
	return b.String()
}
