package chaos

import (
	"strings"
	"testing"

	"summitscale/internal/obs"
	"summitscale/internal/platform"
	"summitscale/internal/serve"
)

// TestRunServeServingStorm pins the shed-load policy's value under the
// serving reference scenario: partial capacity loss (cascade) plus a
// link-degrade window over the evening burst. With shedding on, every
// Interactive request that reaches an admitted queue is served and tail
// latency stays below the no-policy run; the cost is refused Bulk work.
func TestRunServeServingStorm(t *testing.T) {
	p := platform.MustLookup("summit")
	models := serve.DefaultModels(7)
	spec := serve.DefaultTraffic()
	rep, err := RunServe(p, ServingStorm(), 42, spec, models, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fails < 3 {
		t.Errorf("serving-storm replayed %d replica losses, want >= 3 (cascade)", rep.Fails)
	}
	if rep.Repairs < 3 {
		t.Errorf("serving-storm replayed %d repairs, want >= 3", rep.Repairs)
	}
	shed := 0
	for _, m := range rep.Shed.Models {
		shed += m.Shed
	}
	if shed == 0 {
		t.Fatal("shed policy never engaged; the scenario no longer stresses capacity")
	}
	interOn, interOff := 0, 0
	for _, r := range rep.Shed.Responses {
		if r.Tier == serve.Interactive {
			interOn++
		}
	}
	for _, r := range rep.NoShed.Responses {
		if r.Tier == serve.Interactive {
			interOff++
		}
	}
	if interOn <= interOff {
		t.Errorf("shedding did not buy interactive availability: %d <= %d", interOn, interOff)
	}
	if rep.Shed.InteractiveP99 >= rep.NoShed.InteractiveP99 {
		t.Errorf("shedding did not bound interactive p99: %v >= %v",
			rep.Shed.InteractiveP99, rep.NoShed.InteractiveP99)
	}
}

// TestRunServeDeterministic requires the chaos-serving comparison to be a
// pure function of (platform, scenario, seed, spec), including through the
// observer path.
func TestRunServeDeterministic(t *testing.T) {
	p := platform.MustLookup("summit")
	models := serve.DefaultModels(7)
	spec := serve.DefaultTraffic()
	sc, err := Builtin("link-flap")
	if err != nil {
		t.Fatal(err)
	}
	o1, o2 := obs.New(), obs.New()
	a, err := RunServe(p, sc, 7, spec, models, o1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunServe(p, sc, 7, spec, models, o2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatal("identical chaos serving runs rendered differently")
	}
	if string(o1.Trace.ChromeTrace()) != string(o2.Trace.ChromeTrace()) {
		t.Fatal("identical chaos serving runs traced differently")
	}
	if !strings.Contains(a.Render(), "link-flap") {
		t.Errorf("render missing scenario name:\n%s", a.Render())
	}
}

// TestRunServeRejectsBadInputs covers the error paths.
func TestRunServeRejectsBadInputs(t *testing.T) {
	p := platform.MustLookup("summit")
	models := serve.DefaultModels(7)
	sc := ServingStorm()
	spec := serve.DefaultTraffic()
	spec.Horizon = 0
	if _, err := RunServe(p, sc, 1, spec, models, nil); err == nil {
		t.Error("zero traffic horizon accepted")
	}
	bad := *sc
	bad.Horizon = 0
	if _, err := RunServe(p, &bad, 1, serve.DefaultTraffic(), models, nil); err == nil {
		t.Error("zero scenario horizon accepted")
	}
}
