package chaos

import (
	"fmt"

	"summitscale/internal/faults"
	"summitscale/internal/netsim"
	"summitscale/internal/units"
)

// CheckInvariants proves one scenario's compiled schedule and engine run
// stayed physical:
//
//  1. Replay determinism — compiling and running the same (scenario,
//     seed) twice yields byte-identical schedules and reports.
//  2. Non-negative time — every event onset lies in [0, horizon), every
//     duration is non-negative, and every simulated wall time covers at
//     least the useful work it accounts.
//  3. Byte conservation — degraded collectives move exactly the bytes a
//     clean ring moves; flapping links delay traffic, never create or
//     destroy it.
//  4. Monotone degradation — the same scenario at double intensity
//     (Scaled(2)) never finishes any probe faster, and a policy never
//     loses to its own absence (grow-back vs shrink-only, failover vs
//     wait-out).
//
// It returns the first violated invariant as a descriptive error.
func CheckInvariants(sc *Scenario, seed uint64, cfg Config) error {
	// 1. Schedule replay determinism.
	a, err := sc.Compile(seed)
	if err != nil {
		return err
	}
	b, err := sc.Compile(seed)
	if err != nil {
		return err
	}
	if err := sameSchedule(a, b); err != nil {
		return fmt.Errorf("chaos: schedule replay diverged: %w", err)
	}

	// 2. Non-negative time on the compiled schedule.
	prev := units.Seconds(0)
	for i, e := range a.Trace.Events {
		if e.Time < prev {
			return fmt.Errorf("chaos: event %d out of order (%v after %v)", i, e.Time, prev)
		}
		prev = e.Time
		if e.Time < 0 || e.Time >= sc.Horizon {
			return fmt.Errorf("chaos: event %d onset %v outside [0, %v)", i, e.Time, sc.Horizon)
		}
		if e.Duration < 0 {
			return fmt.Errorf("chaos: event %d negative duration %v", i, e.Duration)
		}
		if e.Node < 0 || e.Node >= sc.Nodes {
			return fmt.Errorf("chaos: event %d node %d outside [0, %d)", i, e.Node, sc.Nodes)
		}
	}

	// Engine replay determinism (the report is a pure function of the
	// inputs; Obs is omitted so instrumentation cannot mask divergence).
	pure := Config{Platform: cfg.Platform, RingNodes: cfg.RingNodes}
	r1, err := Run(sc, seed, pure)
	if err != nil {
		return err
	}
	r2, err := Run(sc, seed, pure)
	if err != nil {
		return err
	}
	if r1.Render() != r2.Render() {
		return fmt.Errorf("chaos: engine replay diverged for %s seed %d", sc.Name, seed)
	}

	// 2b. Wall times cover the work they account.
	for _, o := range []struct {
		name string
		out  faults.Outcome
	}{{"static", r1.Static}, {"adaptive", r1.Adaptive}} {
		if o.out.Wall < r1.Shape.TotalWork {
			return fmt.Errorf("chaos: %s wall %v below useful work %v",
				o.name, o.out.Wall, r1.Shape.TotalWork)
		}
		if o.out.LostWork < 0 || o.out.RestartTime < 0 || o.out.CkptTime < 0 {
			return fmt.Errorf("chaos: %s outcome accounts negative time: %+v", o.name, o.out)
		}
	}
	// The degraded mean integrates the link factor piecewise, so when no
	// flap window overlaps a launch it re-derives the clean time through a
	// different summation order, accumulating ~1e-8 relative roundoff over
	// the ring steps; real degradation is per-mille or more, so a 1e-6
	// relative slack separates FP noise from a genuine violation.
	if r1.ChaosAllReduce < r1.CleanAllReduce*(1-1e-6) {
		return fmt.Errorf("chaos: degraded allreduce %v beat the clean fabric %v",
			r1.ChaosAllReduce, r1.CleanAllReduce)
	}
	if r1.BrownoutStage < r1.CleanStage {
		return fmt.Errorf("chaos: brownout staging %v beat clean staging %v",
			r1.BrownoutStage, r1.CleanStage)
	}

	// 3. Byte conservation (Run checks every launch; re-derive the closed
	// form here so the invariant holds independently of the engine).
	if want := netsim.RingAllReduceBytes(r1.RingNodes, probeGradient); r1.BytesPerMember != want {
		return fmt.Errorf("chaos: collective moved %v per member, ring algebra says %v",
			r1.BytesPerMember, want)
	}

	// 4a. Policies never lose to their absence.
	if r1.GrowBackWall > r1.ShrinkOnlyWall {
		return fmt.Errorf("chaos: grow-back wall %v exceeds shrink-only %v",
			r1.GrowBackWall, r1.ShrinkOnlyWall)
	}
	if r1.Failover.Makespan > r1.WaitOut.Makespan {
		return fmt.Errorf("chaos: failover makespan %v exceeds wait-out %v",
			r1.Failover.Makespan, r1.WaitOut.Makespan)
	}

	// 4b. Monotone degradation under intensity scaling.
	harder, err := Run(sc.Scaled(2), seed, pure)
	if err != nil {
		return err
	}
	for _, m := range []struct {
		name     string
		mild, hw units.Seconds
	}{
		{"static wall", r1.Static.Wall, harder.Static.Wall},
		{"chaos allreduce", r1.ChaosAllReduce, harder.ChaosAllReduce},
		{"brownout staging", r1.BrownoutStage, harder.BrownoutStage},
		{"shrink-only wall", r1.ShrinkOnlyWall, harder.ShrinkOnlyWall},
	} {
		if m.hw < m.mild*(1-1e-6) {
			return fmt.Errorf("chaos: %s improved under 2x intensity: %v -> %v",
				m.name, m.mild, m.hw)
		}
	}

	// 5. Verified recovery: scenarios that declare silent-corruption
	// bursts must also prove the detect-and-recover contract end to end.
	if len(sc.SDCs) > 0 {
		if err := CheckSDCInvariants(sc, seed, SDCConfig{Obs: cfg.Obs}); err != nil {
			return err
		}
	}
	return nil
}

// sameSchedule compares two compiled schedules field by field.
func sameSchedule(a, b *Schedule) error {
	if len(a.Trace.Events) != len(b.Trace.Events) {
		return fmt.Errorf("%d vs %d events", len(a.Trace.Events), len(b.Trace.Events))
	}
	for i := range a.Trace.Events {
		if a.Trace.Events[i] != b.Trace.Events[i] {
			return fmt.Errorf("event %d: %+v vs %+v", i, a.Trace.Events[i], b.Trace.Events[i])
		}
	}
	if len(a.Brownouts) != len(b.Brownouts) || len(a.Outages) != len(b.Outages) ||
		len(a.Repairs) != len(b.Repairs) {
		return fmt.Errorf("window census differs")
	}
	for i := range a.Brownouts {
		if a.Brownouts[i] != b.Brownouts[i] {
			return fmt.Errorf("brownout %d differs", i)
		}
	}
	for i := range a.Outages {
		if a.Outages[i] != b.Outages[i] {
			return fmt.Errorf("outage %d differs", i)
		}
	}
	for i := range a.Repairs {
		if a.Repairs[i] != b.Repairs[i] {
			return fmt.Errorf("repair %d differs", i)
		}
	}
	return nil
}
