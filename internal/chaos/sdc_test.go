package chaos

import (
	"strings"
	"testing"

	"summitscale/internal/ddl"
	"summitscale/internal/faults"
	"summitscale/internal/units"
)

func TestParseSDCDirective(t *testing.T) {
	sc, err := Parse(`
name sdc-demo
nodes 8
horizon 4h
sdc at 1h for 30m count 2 kind flip
sdc at 2h for 1h count 1 kind torn
sdc at 3h for 15m count 1 kind stale
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.SDCs) != 3 {
		t.Fatalf("parsed %d sdc bursts, want 3", len(sc.SDCs))
	}
	b := sc.SDCs[0]
	if b.At != units.Hour || b.For != 30*units.Minute || b.Count != 2 || b.Kind != "flip" {
		t.Fatalf("first burst %+v", b)
	}
	if sc.SDCs[1].Kind != "torn" || sc.SDCs[2].Kind != "stale" {
		t.Fatalf("kinds %q %q", sc.SDCs[1].Kind, sc.SDCs[2].Kind)
	}
}

func TestParseSDCRejectsBadBursts(t *testing.T) {
	for _, spec := range []string{
		"name x\nnodes 4\nhorizon 1h\nsdc at 30m for 10m count 0 kind flip",
		"name x\nnodes 4\nhorizon 1h\nsdc at 30m for 10m count 1 kind gamma-ray",
		"name x\nnodes 4\nhorizon 1h\nsdc at 59m for 10m count 1 kind flip",
		"name x\nnodes 4\nhorizon 1h\nsdc at 30m count 1 kind flip",
	} {
		if sc, err := Parse(spec); err == nil {
			if err := sc.Validate(); err == nil {
				t.Errorf("accepted %q", spec)
			}
		}
	}
}

func TestScaledSDCIntensifies(t *testing.T) {
	sc := MustParse("name x\nnodes 4\nhorizon 1h\nsdc at 10m for 10m count 3 kind flip")
	if got := sc.Scaled(2).SDCs[0].Count; got != 6 {
		t.Fatalf("scaled count %d, want 6", got)
	}
	if got := sc.Scaled(1.5).SDCs[0].Count; got != 5 {
		t.Fatalf("1.5x-scaled count %d, want ceil(4.5)=5", got)
	}
}

// TestSDCStormCompiles pins the builtin's compiled census: the bursts
// land inside their windows, flips carry word/bit coordinates, and the
// summary names every corruption class.
func TestSDCStormCompiles(t *testing.T) {
	sc, err := Builtin("sdc-storm")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := sc.Compile(20220523)
	if err != nil {
		t.Fatal(err)
	}
	if n := sched.Trace.Count(faults.SilentCorruption); n != 5 {
		t.Fatalf("%d silent-corruption events, want 5", n)
	}
	if sched.Trace.Count(faults.TornWrite) != 1 || sched.Trace.Count(faults.StaleReplica) != 1 {
		t.Fatalf("torn/stale census wrong: %s", sched.Summary())
	}
	for _, e := range sched.Trace.Events {
		switch e.Kind {
		case faults.SilentCorruption:
			if e.Word < 0 || e.Bit < 0 || e.Bit >= 64 {
				t.Fatalf("flip event without coordinates: %+v", e)
			}
		case faults.TornWrite, faults.StaleReplica:
			if e.Word != 0 || e.Bit != 0 {
				t.Fatalf("storage event carries flip coordinates: %+v", e)
			}
		}
	}
	if !strings.Contains(sched.Summary(), "silent-corruption") {
		t.Fatalf("summary hides the corruption census: %s", sched.Summary())
	}
}

// TestSDCFreeSummaryUnchanged: scenarios without sdc directives must
// render the exact pre-SDC summary — no trailing zero-count segment.
func TestSDCFreeSummaryUnchanged(t *testing.T) {
	sc, err := Builtin("rack-cascade")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := sc.Compile(20220523)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sched.Summary(), "silent-corruption") {
		t.Fatalf("sdc-free summary mentions corruption: %s", sched.Summary())
	}
}

func TestLowerSDCMapsKindsAndClampsSteps(t *testing.T) {
	sc, err := Builtin("sdc-storm")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := sc.Compile(20220523)
	if err != nil {
		t.Fatal(err)
	}
	injs := LowerSDC(sched)
	if len(injs) != 7 {
		t.Fatalf("lowered %d injections, want 7", len(injs))
	}
	var flips int
	for _, inj := range injs {
		if inj.Step < 0 || inj.Step >= sdcProbeSteps {
			t.Fatalf("injection step %d outside probe", inj.Step)
		}
		switch inj.Kind {
		case ddl.GradFlip:
			flips++
			if inj.Bit != 62 {
				t.Fatalf("grad flip bit %d, want the always-escalating exponent bit 62", inj.Bit)
			}
		case ddl.WireFlip:
			flips++
			if inj.Bit != 51 {
				t.Fatalf("wire flip bit %d, want the abft-visible mantissa bit 51", inj.Bit)
			}
		}
		if inj.Kind == ddl.GradFlip || inj.Kind == ddl.WireFlip {
			if inj.Rank < 0 || inj.Rank >= sdcProbeRanks {
				t.Fatalf("flip rank %d outside probe world", inj.Rank)
			}
		}
	}
	if flips != 5 {
		t.Fatalf("%d flips lowered, want 5", flips)
	}
}

// TestRunSDCStormAblation is the scenario-level headline: on the shipped
// sdc-storm, armed guards detect the flips and recover bit-identically
// to the clean leg, while disarmed guards let the corruption through.
func TestRunSDCStormAblation(t *testing.T) {
	sc, err := Builtin("sdc-storm")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunSDC(sc, 20220523, SDCConfig{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flips != 5 || rep.Torn != 1 || rep.Stale != 1 {
		t.Fatalf("census %d/%d/%d, want 5/1/1", rep.Flips, rep.Torn, rep.Stale)
	}
	if rep.On.Detections < 1 || !rep.OnMatchesClean {
		t.Fatalf("detection-on leg failed recovery: %d detections, match=%v",
			rep.On.Detections, rep.OnMatchesClean)
	}
	if rep.Off.Detections != 0 || !rep.OffCorrupted {
		t.Fatalf("detection-off leg: %d detections, corrupted=%v",
			rep.Off.Detections, rep.OffCorrupted)
	}
	out := rep.Render()
	for _, want := range []string{"sdc ablation sdc-storm", "bit-identical to clean: true",
		"corrupted: true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	for _, banned := range []string{"NaN", "Inf"} {
		if strings.Contains(out, banned) {
			t.Fatalf("render leaks a raw %s:\n%s", banned, out)
		}
	}
}

// TestRunSDCDeterministicAcrossJobs: the report is a pure function of
// (scenario, seed) — worker count must never leak into the rendering.
func TestRunSDCDeterministicAcrossJobs(t *testing.T) {
	sc, err := Builtin("sdc-storm")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunSDC(sc, 20220523, SDCConfig{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunSDC(sc, 20220523, SDCConfig{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Render() != wide.Render() {
		t.Fatalf("jobs leaked into the report:\n-j1:\n%s\n-j4:\n%s", serial.Render(), wide.Render())
	}
}

// TestRunSDCWithoutBursts: an sdc-free scenario degenerates to three
// identical clean legs.
func TestRunSDCWithoutBursts(t *testing.T) {
	sc, err := Builtin("rack-cascade")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunSDC(sc, 20220523, SDCConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Injections) != 0 || rep.On.Detections != 0 || !rep.OnMatchesClean || rep.OffCorrupted {
		t.Fatalf("sdc-free ablation reported activity: %+v", rep)
	}
}
