package chaos

import (
	"fmt"
	"strings"

	"summitscale/internal/bench"
	"summitscale/internal/faults"
	"summitscale/internal/obs"
	"summitscale/internal/platform"
	"summitscale/internal/sched"
	"summitscale/internal/units"
)

// CampaignChaosReport compares a multi-workload benchmark campaign run
// under one compiled chaos scenario with the adaptive-checkpoint
// degradation policy on and off. The headline is machine-level: with
// adaptive checkpointing every instance bounds its lost work, so the
// campaign's makespan and utilization degrade gracefully; without
// checkpoints a single failure restarts an instance from scratch and
// long instances may never amortize.
type CampaignChaosReport struct {
	Scenario    string
	Platform    string
	Campaign    string
	Seed        uint64
	Compression float64 // scenario seconds per campaign second
	Fails       int     // node-failure events replayed into the window

	// Base is the failure-free campaign the scenario perturbs.
	Base *bench.Report

	Instances []CampaignInstanceChaos
	// Adaptive/Naive are the rescheduled campaigns under each policy.
	Adaptive, Naive sched.Stats
}

// CampaignInstanceChaos is one instance's fate under both policies.
type CampaignInstanceChaos struct {
	ID       int
	Workload string
	Failures int
	// Walls are the fault-inflated training walls (stage-in excluded).
	AdaptiveWall, NaiveWall units.Seconds
	// Effs are useful-work / wall for each policy.
	AdaptiveEff, NaiveEff float64
}

// CampaignStorm is the campaign suite's reference adversarial scenario:
// an elevated background failure process (a bad week, not the fleet
// average) plus two correlated cascades, sized to the full machine.
// Like ServingStorm it is deliberately not a builtin — RS3's goldens
// pin the builtin list.
func CampaignStorm() *Scenario {
	return MustParse(`
name campaign-storm
nodes 4608
horizon 24h
background mtbf 60d shape 0.7
cascade at 5h count 6 spacing 10m spread 1024
cascade at 14h count 6 spacing 10m spread 1024
repair at 20h count 8
`)
}

// RunCampaign replays a chaos scenario against a benchmark campaign.
// The scenario's node-failure schedule is compressed onto the
// failure-free campaign's makespan (an event at scenario time t lands
// at campaign time t·(makespan/scenario-horizon)); each instance then
// endures the failures that fall inside its scheduled run window,
// thinned to its share of the machine's nodes. Every instance replays
// its failure set twice — with the adaptive Daly-interval checkpoint
// policy, and with no checkpointing at all (interval = total work) —
// and both fault-inflated campaigns are rescheduled through
// internal/sched for the machine-level comparison. The report is a
// pure function of (platform, scenario, seed, campaign).
func RunCampaign(p platform.Platform, sc *Scenario, seed uint64, c bench.Campaign, workers int, o *obs.Observer) (*CampaignChaosReport, error) {
	if sc.Horizon <= 0 {
		return nil, fmt.Errorf("chaos: scenario %q has no horizon", sc.Name)
	}
	base, err := bench.RunCampaign(p, c, workers, o)
	if err != nil {
		return nil, err
	}
	schedule, err := sc.Compile(seed)
	if err != nil {
		return nil, err
	}
	k := base.Sched.Makespan / float64(sc.Horizon)

	// Compressed campaign-time node failures with the scenario's node
	// index rescaled onto this machine, in trace (time) order.
	type failure struct {
		t    float64
		node int
	}
	var fails []failure
	for _, ev := range schedule.Trace.Events {
		if ev.Kind == faults.NodeFailure {
			node := ev.Node
			if sc.Nodes > 0 && sc.Nodes != p.Nodes {
				node = ev.Node * p.Nodes / sc.Nodes
			}
			fails = append(fails, failure{t: float64(ev.Time) * k, node: node})
		}
	}

	// Replay the failure-free schedule through a first-fit node
	// allocator so every instance owns concrete node intervals; a
	// failure then hits exactly the instance holding that node at that
	// time — which is what lets a clustered cascade take out one big
	// job while its neighbours keep training.
	ranges := assignNodeRanges(base, p.Nodes)

	rep := &CampaignChaosReport{
		Scenario:    sc.Name,
		Platform:    p.Name,
		Campaign:    c.Name,
		Seed:        seed,
		Compression: 1 / k,
		Fails:       len(fails),
		Base:        base,
		Instances:   make([]CampaignInstanceChaos, len(base.Instances)),
	}

	adaptiveJobs := make([]sched.Job, len(base.Instances))
	naiveJobs := make([]sched.Job, len(base.Instances))
	for i, ir := range base.Instances {
		// Failures inside this instance's run window that land on one
		// of its allocated nodes, re-based to instance-relative time.
		var times []units.Seconds
		for _, f := range fails {
			if f.t < ir.Start || f.t >= ir.End || !inRanges(ranges[ir.ID], f.node) {
				continue
			}
			times = append(times, units.Seconds(f.t-ir.Start))
		}
		trace := &faults.Trace{
			Params:  faults.ParamsFor(p.Machine, ir.TTT.Nodes),
			Seed:    seed,
			Horizon: units.Seconds(base.Sched.Makespan),
		}
		for _, t := range times {
			trace.Events = append(trace.Events, faults.Event{Time: t, Kind: faults.NodeFailure})
		}

		shape := faults.RunShape{
			TotalWork: ir.TTT.Train,
			// Checkpoint: quiesce and write model+optimizer state.
			CheckpointCost: 30,
			// Restart: relaunch plus re-staging the dataset.
			RestartCost: 120 + ir.TTT.StageIn,
		}
		// Prime the controller with the storm's observed machine-wide
		// rate scaled to this instance's node share, not the hardware
		// fleet average: compression packs a day of failures into the
		// campaign window, and a Daly interval solved against the
		// fleet-average MTBF would exceed these walls entirely (no
		// checkpoints — indistinguishable from the naive policy it is
		// being compared against).
		prior := trace.Params.SystemMTBF()
		if len(fails) > 0 && base.Sched.Makespan > 0 {
			observed := units.Seconds(base.Sched.Makespan * float64(p.Nodes) /
				(float64(len(fails)) * float64(ir.TTT.Nodes)))
			if observed < prior {
				prior = observed
			}
		}
		pol := faults.AdaptivePolicy{Prior: prior}
		adaptive := faults.SimulateAdaptive(shape, pol, trace)
		naive := faults.Simulate(shape, shape.TotalWork, trace)

		rep.Instances[i] = CampaignInstanceChaos{
			ID:           ir.ID,
			Workload:     ir.Workload,
			Failures:     len(times),
			AdaptiveWall: adaptive.Wall,
			NaiveWall:    naive.Wall,
			AdaptiveEff:  adaptive.Efficiency(shape),
			NaiveEff:     naive.Efficiency(shape),
		}
		sub := c.Instances[i].Submit
		adaptiveJobs[i] = sched.Job{
			ID: ir.ID, Program: ir.Workload, Nodes: ir.TTT.Nodes,
			Walltime: float64(ir.TTT.StageIn + adaptive.Wall), Submit: sub,
		}
		naiveJobs[i] = sched.Job{
			ID: ir.ID, Program: ir.Workload, Nodes: ir.TTT.Nodes,
			Walltime: float64(ir.TTT.StageIn + naive.Wall), Submit: sub,
		}
		o.Inc("chaos.campaign.instances")
		o.Add("chaos.campaign.failures", int64(len(times)))
	}

	s := sched.NewScheduler(p.Nodes)
	rep.Adaptive = s.Summarize(s.Schedule(adaptiveJobs))
	rep.Naive = s.Summarize(s.Schedule(naiveJobs))
	o.Set("chaos.campaign.adaptive_makespan", rep.Adaptive.Makespan)
	o.Set("chaos.campaign.naive_makespan", rep.Naive.Makespan)
	return rep, nil
}

// span is a half-open node interval [lo, hi).
type span struct{ lo, hi int }

// inRanges reports whether the node lies in any of the spans.
func inRanges(spans []span, node int) bool {
	for _, s := range spans {
		if node >= s.lo && node < s.hi {
			return true
		}
	}
	return false
}

// assignNodeRanges replays the campaign's placement events through a
// first-fit node allocator: instances acquire the lowest-numbered free
// nodes at their start (possibly fragmented) and release them at their
// end. Deterministic — events sort by (time, end-before-start, ID) —
// so the hit pattern is a pure function of the schedule.
func assignNodeRanges(base *bench.Report, total int) map[int][]span {
	type ev struct {
		t     float64
		start bool
		id    int
		nodes int
	}
	evs := make([]ev, 0, 2*len(base.Instances))
	for _, ir := range base.Instances {
		evs = append(evs, ev{t: ir.Start, start: true, id: ir.ID, nodes: ir.TTT.Nodes})
		evs = append(evs, ev{t: ir.End, start: false, id: ir.ID})
	}
	sortEvents := func(a, b ev) bool {
		if a.t != b.t {
			return a.t < b.t
		}
		if a.start != b.start {
			return !a.start // frees before allocations at the same instant
		}
		return a.id < b.id
	}
	for i := 1; i < len(evs); i++ { // insertion sort: n is small, keeps it dependency-free
		for j := i; j > 0 && sortEvents(evs[j], evs[j-1]); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}

	free := []span{{0, total}}
	held := map[int][]span{}
	for _, e := range evs {
		if !e.start {
			// Return the instance's spans and re-merge the free list.
			free = append(free, held[e.id]...)
			for i := 1; i < len(free); i++ {
				for j := i; j > 0 && free[j].lo < free[j-1].lo; j-- {
					free[j], free[j-1] = free[j-1], free[j]
				}
			}
			merged := free[:0]
			for _, s := range free {
				if n := len(merged); n > 0 && merged[n-1].hi >= s.lo {
					if s.hi > merged[n-1].hi {
						merged[n-1].hi = s.hi
					}
					continue
				}
				merged = append(merged, s)
			}
			free = merged
			continue
		}
		need := e.nodes
		var got []span
		rest := free[:0]
		for _, s := range free {
			if need == 0 {
				rest = append(rest, s)
				continue
			}
			take := s.hi - s.lo
			if take > need {
				take = need
			}
			got = append(got, span{s.lo, s.lo + take})
			need -= take
			if s.lo+take < s.hi {
				rest = append(rest, span{s.lo + take, s.hi})
			}
		}
		free = rest
		held[e.id] = got
	}
	return held
}

// Render formats the comparison deterministically.
func (r *CampaignChaosReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos campaign: scenario %s x campaign %q on %s (seed %d, %.0fx compressed, %d failure events)\n",
		r.Scenario, r.Campaign, r.Platform, r.Seed, r.Compression, r.Fails)
	fmt.Fprintf(&b, "  %2s %-12s %5s %14s %14s %8s %8s\n",
		"id", "workload", "hits", "adaptive", "no-ckpt", "eff-a", "eff-n")
	for _, ic := range r.Instances {
		fmt.Fprintf(&b, "  %2d %-12s %5d %14v %14v %7.1f%% %7.1f%%\n",
			ic.ID, ic.Workload, ic.Failures, ic.AdaptiveWall, ic.NaiveWall,
			100*ic.AdaptiveEff, 100*ic.NaiveEff)
	}
	fmt.Fprintf(&b, "  adaptive ckpt: makespan %v, utilization %.1f%%\n",
		units.Seconds(r.Adaptive.Makespan), 100*r.Adaptive.Utilization)
	fmt.Fprintf(&b, "  no ckpt      : makespan %v, utilization %.1f%%\n",
		units.Seconds(r.Naive.Makespan), 100*r.Naive.Utilization)
	fmt.Fprintf(&b, "  baseline     : makespan %v (failure-free)\n",
		units.Seconds(r.Base.Sched.Makespan))
	return b.String()
}
