package chaos

import (
	"strings"
	"testing"

	"summitscale/internal/bench"
	"summitscale/internal/obs"
	"summitscale/internal/platform"
)

// TestRunCampaignStorm pins the campaign suite's value claim under the
// reference storm: with adaptive Daly-interval checkpointing every
// instance bounds its lost work, so the fault-inflated campaign finishes
// no later than the no-checkpoint run — and at least one failure-struck
// instance is materially rescued.
func TestRunCampaignStorm(t *testing.T) {
	p := platform.MustLookup("summit")
	rep, err := RunCampaign(p, CampaignStorm(), 42, bench.DefaultCampaign(p), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fails < 10 {
		t.Fatalf("storm replayed only %d failure events; scenario no longer stresses the campaign", rep.Fails)
	}
	hit := 0
	for _, ic := range rep.Instances {
		hit += ic.Failures
	}
	if hit == 0 {
		t.Fatal("no instance absorbed a failure; node mapping is broken")
	}
	if rep.Adaptive.Makespan > rep.Naive.Makespan {
		t.Errorf("adaptive checkpointing lost at machine level: makespan %v > %v",
			rep.Adaptive.Makespan, rep.Naive.Makespan)
	}
	rescued := false
	for _, ic := range rep.Instances {
		if ic.Failures > 0 && ic.AdaptiveWall < ic.NaiveWall {
			rescued = true
		}
		if ic.Failures == 0 && ic.AdaptiveWall != ic.NaiveWall {
			t.Errorf("instance %d saw no failures but policies diverge: %v vs %v",
				ic.ID, ic.AdaptiveWall, ic.NaiveWall)
		}
		if !(ic.AdaptiveEff > 0 && ic.AdaptiveEff <= 1) || !(ic.NaiveEff > 0 && ic.NaiveEff <= 1) {
			t.Errorf("instance %d efficiency out of (0,1]: adaptive %v naive %v",
				ic.ID, ic.AdaptiveEff, ic.NaiveEff)
		}
	}
	if !rescued {
		t.Error("no failure-struck instance was rescued by adaptive checkpointing")
	}
	// Failures only inflate walls relative to the failure-free baseline.
	if rep.Naive.Makespan < rep.Base.Sched.Makespan {
		t.Errorf("faults shrank the no-checkpoint makespan: %v < baseline %v",
			rep.Naive.Makespan, rep.Base.Sched.Makespan)
	}
}

// TestRunCampaignDeterministic requires the comparison to be a pure
// function of (platform, scenario, seed, campaign) — byte-identical
// render at any evaluator width, observer attached or not.
func TestRunCampaignDeterministic(t *testing.T) {
	p := platform.MustLookup("summit")
	c := bench.DefaultCampaign(p)
	base, err := RunCampaign(p, CampaignStorm(), 7, c, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		rep, err := RunCampaign(p, CampaignStorm(), 7, c, workers, obs.New())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Render() != base.Render() {
			t.Fatalf("workers=%d: chaos campaign render differs from serial", workers)
		}
	}
	other, err := RunCampaign(p, CampaignStorm(), 8, c, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if other.Render() == base.Render() {
		t.Error("seed does not reach the failure schedule")
	}
	if s := base.Render(); strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
		t.Fatalf("non-finite chaos campaign output:\n%s", s)
	}
}

// TestRunCampaignErrors covers the guard rails.
func TestRunCampaignErrors(t *testing.T) {
	p := platform.MustLookup("summit")
	sc := CampaignStorm()
	sc.Horizon = 0
	if _, err := RunCampaign(p, sc, 1, bench.DefaultCampaign(p), 1, nil); err == nil {
		t.Error("horizonless scenario accepted")
	}
	if _, err := RunCampaign(p, CampaignStorm(), 1, bench.Campaign{Name: "empty"}, 1, nil); err == nil {
		t.Error("empty campaign accepted")
	}
}

// TestAssignNodeRanges checks the first-fit allocator invariants on the
// real schedule: every instance gets exactly its node count, concurrent
// instances never share a node, and the assignment is deterministic.
func TestAssignNodeRanges(t *testing.T) {
	p := platform.MustLookup("summit")
	base, err := bench.RunCampaign(p, bench.DefaultCampaign(p), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	ranges := assignNodeRanges(base, p.Nodes)
	again := assignNodeRanges(base, p.Nodes)
	for _, ir := range base.Instances {
		got := 0
		for _, s := range ranges[ir.ID] {
			if s.lo < 0 || s.hi > p.Nodes || s.hi <= s.lo {
				t.Fatalf("instance %d: bad span [%d,%d)", ir.ID, s.lo, s.hi)
			}
			got += s.hi - s.lo
		}
		if got != ir.TTT.Nodes {
			t.Errorf("instance %d allocated %d nodes, want %d", ir.ID, got, ir.TTT.Nodes)
		}
		if len(again[ir.ID]) != len(ranges[ir.ID]) {
			t.Errorf("instance %d: allocator not deterministic", ir.ID)
		}
	}
	// Concurrent instances must hold disjoint nodes.
	for _, a := range base.Instances {
		for _, b := range base.Instances {
			if a.ID >= b.ID || a.End <= b.Start || b.End <= a.Start {
				continue
			}
			for _, sa := range ranges[a.ID] {
				for n := sa.lo; n < sa.hi; n++ {
					if inRanges(ranges[b.ID], n) {
						t.Fatalf("concurrent instances %d and %d both hold node %d", a.ID, b.ID, n)
					}
				}
			}
		}
	}
}
