package units

import "testing"

func TestBytesString(t *testing.T) {
	cases := []struct {
		v    Bytes
		want string
	}{
		{500, "500 B"},
		{2 * KB, "2.00 KB"},
		{110 * KB, "110.00 KB"},
		{1.38 * GB, "1.38 GB"},
		{2.5 * TB, "2.50 TB"},
		{1.5 * PB, "1.50 PB"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("Bytes(%v).String() = %q, want %q", float64(c.v), got, c.want)
		}
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		v    BytesPerSecond
		want string
	}{
		{25 * GBps, "25.00 GB/s"},
		{12.5 * GBps, "12.50 GB/s"},
		{2.5 * TBps, "2.50 TB/s"},
		{999, "999 B/s"},
		{3 * MBps, "3.00 MB/s"},
		{7 * KBps, "7.00 KB/s"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.v), got, c.want)
		}
	}
}

func TestFlopsString(t *testing.T) {
	if got := (1.13 * EFlops).String(); got != "1.13 EFlop/s" {
		t.Errorf("EFlops string = %q", got)
	}
	if got := (603 * PFlops).String(); got != "603.00 PFlop/s" {
		t.Errorf("PFlops string = %q", got)
	}
	if got := (125 * TFlops).String(); got != "125.00 TFlop/s" {
		t.Errorf("TFlops string = %q", got)
	}
	if got := Flops(23 * GFlop).String(); got != "23.00 GFlop" {
		t.Errorf("GFlop string = %q", got)
	}
	if got := Flops(5).String(); got != "5 Flop" {
		t.Errorf("Flop string = %q", got)
	}
	if got := FlopsPerSecond(10).String(); got != "10 Flop/s" {
		t.Errorf("Flop/s string = %q", got)
	}
}

func TestSecondsString(t *testing.T) {
	cases := []struct {
		v    Seconds
		want string
	}{
		{7200, "2.00 h"},
		{90, "1.50 min"},
		{2.5, "2.500 s"},
		{0.008, "8.000 ms"},
		{5e-6, "5.000 µs"},
		{3e-9, "3.0 ns"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("Seconds(%v).String() = %q, want %q", float64(c.v), got, c.want)
		}
	}
}

func TestBinaryUnits(t *testing.T) {
	if KiB != 1024 || MiB != 1024*1024 || GiB != 1<<30 || TiB != 1<<40 {
		t.Fatal("binary units wrong")
	}
}
