// Package units provides byte, rate, and floating-point-operation quantities
// used throughout the Summit machine and performance models, together with
// human-readable formatting helpers.
//
// All quantities are simple float64 or int64 wrappers so arithmetic stays
// ordinary Go arithmetic; the types exist for documentation and printing.
package units

import "fmt"

// Bytes is a data size in bytes.
type Bytes float64

// Common byte sizes.
const (
	KB Bytes = 1e3
	MB Bytes = 1e6
	GB Bytes = 1e9
	TB Bytes = 1e12
	PB Bytes = 1e15

	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
	TiB Bytes = 1 << 40
)

// String formats a size with a decimal SI suffix.
func (b Bytes) String() string {
	switch {
	case b >= PB:
		return fmt.Sprintf("%.2f PB", float64(b/PB))
	case b >= TB:
		return fmt.Sprintf("%.2f TB", float64(b/TB))
	case b >= GB:
		return fmt.Sprintf("%.2f GB", float64(b/GB))
	case b >= MB:
		return fmt.Sprintf("%.2f MB", float64(b/MB))
	case b >= KB:
		return fmt.Sprintf("%.2f KB", float64(b/KB))
	default:
		return fmt.Sprintf("%.0f B", float64(b))
	}
}

// BytesPerSecond is a data transfer rate.
type BytesPerSecond float64

// Common rates.
const (
	KBps BytesPerSecond = 1e3
	MBps BytesPerSecond = 1e6
	GBps BytesPerSecond = 1e9
	TBps BytesPerSecond = 1e12
)

// String formats a rate with a decimal SI suffix.
func (r BytesPerSecond) String() string {
	switch {
	case r >= TBps:
		return fmt.Sprintf("%.2f TB/s", float64(r/TBps))
	case r >= GBps:
		return fmt.Sprintf("%.2f GB/s", float64(r/GBps))
	case r >= MBps:
		return fmt.Sprintf("%.2f MB/s", float64(r/MBps))
	case r >= KBps:
		return fmt.Sprintf("%.2f KB/s", float64(r/KBps))
	default:
		return fmt.Sprintf("%.0f B/s", float64(r))
	}
}

// Flops is a count of floating point operations.
type Flops float64

// Common operation counts.
const (
	MFlop Flops = 1e6
	GFlop Flops = 1e9
	TFlop Flops = 1e12
	PFlop Flops = 1e15
	EFlop Flops = 1e18
)

// String formats an operation count with an SI suffix.
func (f Flops) String() string {
	switch {
	case f >= EFlop:
		return fmt.Sprintf("%.2f EFlop", float64(f/EFlop))
	case f >= PFlop:
		return fmt.Sprintf("%.2f PFlop", float64(f/PFlop))
	case f >= TFlop:
		return fmt.Sprintf("%.2f TFlop", float64(f/TFlop))
	case f >= GFlop:
		return fmt.Sprintf("%.2f GFlop", float64(f/GFlop))
	case f >= MFlop:
		return fmt.Sprintf("%.2f MFlop", float64(f/MFlop))
	default:
		return fmt.Sprintf("%.0f Flop", float64(f))
	}
}

// FlopsPerSecond is a computation rate.
type FlopsPerSecond float64

// Common computation rates.
const (
	GFlops FlopsPerSecond = 1e9
	TFlops FlopsPerSecond = 1e12
	PFlops FlopsPerSecond = 1e15
	EFlops FlopsPerSecond = 1e18
)

// String formats a computation rate with an SI suffix.
func (f FlopsPerSecond) String() string {
	switch {
	case f >= EFlops:
		return fmt.Sprintf("%.2f EFlop/s", float64(f/EFlops))
	case f >= PFlops:
		return fmt.Sprintf("%.2f PFlop/s", float64(f/PFlops))
	case f >= TFlops:
		return fmt.Sprintf("%.2f TFlop/s", float64(f/TFlops))
	case f >= GFlops:
		return fmt.Sprintf("%.2f GFlop/s", float64(f/GFlops))
	default:
		return fmt.Sprintf("%.0f Flop/s", float64(f))
	}
}

// Seconds is a duration in seconds, kept as float64 for model arithmetic.
type Seconds float64

// Common durations.
const (
	Minute Seconds = 60
	Hour   Seconds = 3600
	Day    Seconds = 24 * Hour
	Year   Seconds = 8766 * Hour // Julian year, the MTBF bookkeeping unit
)

// String formats a duration with an appropriate unit.
func (s Seconds) String() string {
	switch {
	case s >= 3600:
		return fmt.Sprintf("%.2f h", float64(s)/3600)
	case s >= 60:
		return fmt.Sprintf("%.2f min", float64(s)/60)
	case s >= 1:
		return fmt.Sprintf("%.3f s", float64(s))
	case s >= 1e-3:
		return fmt.Sprintf("%.3f ms", float64(s)*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.3f µs", float64(s)*1e6)
	default:
		return fmt.Sprintf("%.1f ns", float64(s)*1e9)
	}
}
