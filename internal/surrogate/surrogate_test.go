package surrogate

import (
	"math"
	"testing"

	"summitscale/internal/stats"
)

func linearData(rng *stats.RNG, n int, noise float64) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y[i] = 2*x[i][0] - 1.5*x[i][1] + 0.5 + rng.NormFloat64()*noise
	}
	return x, y
}

func TestRidgeRecoversCoefficients(t *testing.T) {
	x, y := linearData(stats.NewRNG(1), 500, 0.01)
	m, err := FitRidge(x, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, -1.5, 0, 0.5}
	for i, w := range want {
		if math.Abs(m.Weights[i]-w) > 0.02 {
			t.Fatalf("weights = %v, want %v", m.Weights, want)
		}
	}
	if mse := m.MSE(x, y); mse > 0.001 {
		t.Fatalf("MSE = %v", mse)
	}
}

func TestRidgeRegularizationShrinks(t *testing.T) {
	x, y := linearData(stats.NewRNG(2), 50, 0.1)
	loose, _ := FitRidge(x, y, 1e-6)
	tight, _ := FitRidge(x, y, 1e3)
	var nLoose, nTight float64
	for i := 0; i < 3; i++ { // exclude intercept
		nLoose += loose.Weights[i] * loose.Weights[i]
		nTight += tight.Weights[i] * tight.Weights[i]
	}
	if nTight >= nLoose {
		t.Fatalf("regularization did not shrink: %v vs %v", nTight, nLoose)
	}
}

func TestRidgeErrors(t *testing.T) {
	if _, err := FitRidge(nil, nil, 1); err == nil {
		t.Fatal("empty fit accepted")
	}
	if _, err := FitRidge([][]float64{{1}}, []float64{1, 2}, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestPredictDimensionPanics(t *testing.T) {
	x, y := linearData(stats.NewRNG(3), 20, 0.1)
	m, _ := FitRidge(x, y, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestBICPenalizesComplexity(t *testing.T) {
	// Same MSE, more parameters -> worse (higher) BIC.
	if BIC(0.5, 100, 2) >= BIC(0.5, 100, 10) {
		t.Fatal("BIC did not penalize parameters")
	}
	// Better MSE wins when parameters are equal.
	if BIC(0.1, 100, 3) >= BIC(0.5, 100, 3) {
		t.Fatal("BIC did not reward fit")
	}
}

// TestSelectByBICFindsTrueSupport: with targets depending on only the
// first two of six features, BIC selection should keep ~2 features rather
// than all six (the Liu et al. anti-overfitting device).
func TestSelectByBICFindsTrueSupport(t *testing.T) {
	rng := stats.NewRNG(4)
	n := 200
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, 6)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
		y[i] = 3*x[i][0] - 2*x[i][1] + rng.NormFloat64()*0.1
	}
	m, k, err := SelectByBIC(x, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("BIC selected %d features, want 2", k)
	}
	if m == nil {
		t.Fatal("nil model")
	}
}

func TestForestFitsNonlinearFunction(t *testing.T) {
	rng := stats.NewRNG(5)
	n := 400
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64() * 4, rng.Float64() * 4}
		y[i] = math.Sin(x[i][0]) + 0.5*x[i][1]
	}
	f := FitForest(rng, x, y, 40, 6, 2)
	if mse := f.MSE(x, y); mse > 0.05 {
		t.Fatalf("forest training MSE = %v", mse)
	}
	// Held-out data.
	var heldMSE float64
	const m = 100
	for i := 0; i < m; i++ {
		xs := []float64{rng.Float64() * 4, rng.Float64() * 4}
		d := f.Predict(xs) - (math.Sin(xs[0]) + 0.5*xs[1])
		heldMSE += d * d
	}
	if heldMSE/m > 0.15 {
		t.Fatalf("forest held-out MSE = %v", heldMSE/m)
	}
}

func TestForestBeatsLinearOnNonlinear(t *testing.T) {
	rng := stats.NewRNG(6)
	n := 300
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64()*6 - 3}
		y[i] = math.Sin(2 * x[i][0]) // strongly nonlinear, zero linear trend
	}
	forest := FitForest(rng, x, y, 30, 6, 2)
	ridge, err := FitRidge(x, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if forest.MSE(x, y) >= ridge.MSE(x, y) {
		t.Fatalf("forest (%v) not better than ridge (%v) on sin(2x)",
			forest.MSE(x, y), ridge.MSE(x, y))
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	mk := func(seed uint64) float64 {
		rng := stats.NewRNG(seed)
		x, y := linearData(rng, 100, 0.2)
		f := FitForest(rng, x, y, 10, 4, 2)
		return f.Predict([]float64{0.5, -0.5, 0})
	}
	if mk(7) != mk(7) {
		t.Fatal("forest not deterministic")
	}
}

func TestSingularSystemError(t *testing.T) {
	// Duplicate feature columns with zero regularization -> singular.
	x := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	y := []float64{1, 2, 3}
	if _, err := FitRidge(x, y, 0); err == nil {
		t.Fatal("singular normal equations accepted")
	}
	// Regularization rescues it.
	if _, err := FitRidge(x, y, 1e-3); err != nil {
		t.Fatalf("ridge failed on collinear data: %v", err)
	}
}
