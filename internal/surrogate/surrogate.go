// Package surrogate implements the classical machine-learning methods the
// paper's projects use alongside deep learning (§III-C, §V): ridge /
// ordinary least squares regression with Bayesian-information-criterion
// model selection (the anti-overfitting device of Liu et al.'s alloy
// workflow), and random-forest regression (the binding-affinity scoring
// function of Glaser et al.).
package surrogate

import (
	"fmt"
	"math"
	"sort"

	"summitscale/internal/stats"
)

// Ridge is a linear model fit with L2 regularization.
type Ridge struct {
	Lambda  float64
	Weights []float64 // last entry is the intercept
}

// FitRidge solves (X'X + λI)w = X'y with an intercept column, via
// Gaussian elimination. Rows of x are samples.
func FitRidge(x [][]float64, y []float64, lambda float64) (*Ridge, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("surrogate: %d samples vs %d targets", n, len(y))
	}
	d := len(x[0]) + 1 // + intercept
	// Normal equations.
	a := make([][]float64, d)
	b := make([]float64, d)
	for i := range a {
		a[i] = make([]float64, d)
	}
	row := make([]float64, d)
	for s := 0; s < n; s++ {
		copy(row, x[s])
		row[d-1] = 1
		for i := 0; i < d; i++ {
			b[i] += row[i] * y[s]
			for j := 0; j < d; j++ {
				a[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < d-1; i++ { // don't regularize the intercept
		a[i][i] += lambda
	}
	w, err := solve(a, b)
	if err != nil {
		return nil, err
	}
	return &Ridge{Lambda: lambda, Weights: w}, nil
}

// Predict evaluates the model on one sample.
func (r *Ridge) Predict(x []float64) float64 {
	d := len(r.Weights)
	if len(x) != d-1 {
		panic(fmt.Sprintf("surrogate: %d features for %d weights", len(x), d-1))
	}
	out := r.Weights[d-1]
	for i, v := range x {
		out += r.Weights[i] * v
	}
	return out
}

// solve performs Gaussian elimination with partial pivoting.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, fmt.Errorf("surrogate: singular system at column %d", col)
		}
		m[col], m[piv] = m[piv], m[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = m[i][n] / m[i][i]
	}
	return out, nil
}

// MSE returns the model's mean squared error on a dataset.
func (r *Ridge) MSE(x [][]float64, y []float64) float64 {
	var s float64
	for i := range x {
		d := r.Predict(x[i]) - y[i]
		s += d * d
	}
	return s / float64(len(x))
}

// BIC returns the Bayesian information criterion of a fit: n·ln(MSE) +
// k·ln(n). Lower is better; the k·ln(n) term penalizes complexity, the
// device Liu et al. use "to avoid overfitting while still extracting the
// maximal information".
func BIC(mse float64, nSamples, nParams int) float64 {
	if mse <= 0 {
		mse = 1e-300
	}
	return float64(nSamples)*math.Log(mse) + float64(nParams)*math.Log(float64(nSamples))
}

// SelectByBIC fits ridge models on nested feature prefixes (1..d features)
// and returns the model with the lowest BIC and its feature count.
func SelectByBIC(x [][]float64, y []float64, lambda float64) (*Ridge, int, error) {
	if len(x) == 0 {
		return nil, 0, fmt.Errorf("surrogate: empty dataset")
	}
	d := len(x[0])
	bestBIC := math.Inf(1)
	var best *Ridge
	bestK := 0
	for k := 1; k <= d; k++ {
		sub := make([][]float64, len(x))
		for i := range x {
			sub[i] = x[i][:k]
		}
		m, err := FitRidge(sub, y, lambda)
		if err != nil {
			continue
		}
		bic := BIC(m.MSE(sub, y), len(x), k+1)
		if bic < bestBIC {
			bestBIC, best, bestK = bic, m, k
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("surrogate: no model could be fit")
	}
	return best, bestK, nil
}

// treeNode is one node of a regression tree.
type treeNode struct {
	feature int
	thresh  float64
	value   float64
	lo, hi  *treeNode
}

// RandomForest is a bagged ensemble of depth-limited regression trees —
// Glaser et al.'s scoring-function family.
type RandomForest struct {
	Trees    []*treeNode
	MaxDepth int
	MinLeaf  int
}

// FitForest trains nTrees trees on bootstrap resamples with random feature
// subsetting at each split.
func FitForest(rng *stats.RNG, x [][]float64, y []float64, nTrees, maxDepth, minLeaf int) *RandomForest {
	if len(x) == 0 || len(x) != len(y) {
		panic("surrogate: bad forest dataset")
	}
	f := &RandomForest{MaxDepth: maxDepth, MinLeaf: minLeaf}
	nFeat := len(x[0])
	mtry := int(math.Max(1, math.Sqrt(float64(nFeat))))
	for t := 0; t < nTrees; t++ {
		idx := make([]int, len(x))
		for i := range idx {
			idx[i] = rng.Intn(len(x))
		}
		f.Trees = append(f.Trees, buildTree(rng, x, y, idx, maxDepth, minLeaf, mtry))
	}
	return f
}

func buildTree(rng *stats.RNG, x [][]float64, y []float64, idx []int, depth, minLeaf, mtry int) *treeNode {
	mean := 0.0
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))
	node := &treeNode{feature: -1, value: mean}
	if depth <= 0 || len(idx) < 2*minLeaf {
		return node
	}
	bestSSE := math.Inf(1)
	bestFeat, bestThresh := -1, 0.0
	nFeat := len(x[0])
	for t := 0; t < mtry; t++ {
		feat := rng.Intn(nFeat)
		vals := make([]float64, len(idx))
		for k, i := range idx {
			vals[k] = x[i][feat]
		}
		sort.Float64s(vals)
		for _, q := range []float64{0.25, 0.5, 0.75} {
			thresh := vals[int(q*float64(len(vals)-1))]
			sse, ok := splitSSE(x, y, idx, feat, thresh, minLeaf)
			if ok && sse < bestSSE {
				bestSSE, bestFeat, bestThresh = sse, feat, thresh
			}
		}
	}
	if bestFeat < 0 {
		return node
	}
	var loIdx, hiIdx []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThresh {
			loIdx = append(loIdx, i)
		} else {
			hiIdx = append(hiIdx, i)
		}
	}
	node.feature = bestFeat
	node.thresh = bestThresh
	node.lo = buildTree(rng, x, y, loIdx, depth-1, minLeaf, mtry)
	node.hi = buildTree(rng, x, y, hiIdx, depth-1, minLeaf, mtry)
	return node
}

func splitSSE(x [][]float64, y []float64, idx []int, feat int, thresh float64, minLeaf int) (float64, bool) {
	var nLo, nHi int
	var sLo, sHi float64
	for _, i := range idx {
		if x[i][feat] <= thresh {
			nLo++
			sLo += y[i]
		} else {
			nHi++
			sHi += y[i]
		}
	}
	if nLo < minLeaf || nHi < minLeaf {
		return 0, false
	}
	mLo, mHi := sLo/float64(nLo), sHi/float64(nHi)
	var sse float64
	for _, i := range idx {
		var d float64
		if x[i][feat] <= thresh {
			d = y[i] - mLo
		} else {
			d = y[i] - mHi
		}
		sse += d * d
	}
	return sse, true
}

func (n *treeNode) predict(x []float64) float64 {
	for n.feature >= 0 {
		if x[n.feature] <= n.thresh {
			n = n.lo
		} else {
			n = n.hi
		}
	}
	return n.value
}

// Predict averages the ensemble.
func (f *RandomForest) Predict(x []float64) float64 {
	var s float64
	for _, t := range f.Trees {
		s += t.predict(x)
	}
	return s / float64(len(f.Trees))
}

// MSE returns the forest's mean squared error on a dataset.
func (f *RandomForest) MSE(x [][]float64, y []float64) float64 {
	var s float64
	for i := range x {
		d := f.Predict(x[i]) - y[i]
		s += d * d
	}
	return s / float64(len(x))
}
