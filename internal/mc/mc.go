// Package mc implements the lattice alloy Monte-Carlo substrate of the
// paper's §V-A materials case study (Liu et al.): a binary alloy on a 3-D
// lattice with nearest-neighbour interactions sampled by Metropolis spin
// exchange, a pluggable energy model so a machine-learned surrogate can
// replace the "first-principles" reference, and the order parameter whose
// temperature dependence exhibits the order–disorder transition.
package mc

import (
	"math"

	"summitscale/internal/stats"
)

// EnergyModel scores a configuration's energy from its pair statistics.
type EnergyModel interface {
	// PairEnergy returns the energy contribution of a like (AA/BB) or
	// unlike (AB) nearest-neighbour bond.
	PairEnergy(like bool) float64
}

// ReferenceModel is the "first-principles" stand-in: an Ising-like
// Hamiltonian where unlike bonds are favourable (ordering alloy), with a
// deterministic many-body correction that a learned surrogate must
// capture from data.
type ReferenceModel struct {
	// J is the ordering energy scale; unlike bonds get -J, like +J.
	J float64
	// Anharmonicity perturbs the like-bond energy, standing in for the
	// beyond-pair physics of the DFT reference.
	Anharmonicity float64
}

// PairEnergy implements EnergyModel.
func (m ReferenceModel) PairEnergy(like bool) float64 {
	if like {
		return m.J + m.Anharmonicity
	}
	return -m.J
}

// LearnedModel is a surrogate fit by internal/surrogate: two learned bond
// coefficients.
type LearnedModel struct {
	LikeE, UnlikeE float64
}

// PairEnergy implements EnergyModel.
func (m LearnedModel) PairEnergy(like bool) float64 {
	if like {
		return m.LikeE
	}
	return m.UnlikeE
}

// Lattice is an L×L×L binary alloy at 50/50 composition.
type Lattice struct {
	L     int
	Spins []int8 // +1 = species A, -1 = species B
	Model EnergyModel
}

// NewLattice builds an L^3 lattice in the fully ordered (checkerboard)
// state, the ground state of an ordering alloy.
func NewLattice(l int, model EnergyModel) *Lattice {
	lat := &Lattice{L: l, Spins: make([]int8, l*l*l), Model: model}
	for x := 0; x < l; x++ {
		for y := 0; y < l; y++ {
			for z := 0; z < l; z++ {
				if (x+y+z)%2 == 0 {
					lat.Spins[lat.idx(x, y, z)] = 1
				} else {
					lat.Spins[lat.idx(x, y, z)] = -1
				}
			}
		}
	}
	return lat
}

func (l *Lattice) idx(x, y, z int) int {
	m := l.L
	x = (x%m + m) % m
	y = (y%m + m) % m
	z = (z%m + m) % m
	return (x*m+y)*m + z
}

// N returns the site count.
func (l *Lattice) N() int { return len(l.Spins) }

func (l *Lattice) neighbors(i int) [6]int {
	m := l.L
	z := i % m
	y := (i / m) % m
	x := i / (m * m)
	return [6]int{
		l.idx(x+1, y, z), l.idx(x-1, y, z),
		l.idx(x, y+1, z), l.idx(x, y-1, z),
		l.idx(x, y, z+1), l.idx(x, y, z-1),
	}
}

// siteEnergy returns the bond energy of site i with its neighbours.
func (l *Lattice) siteEnergy(i int) float64 {
	var e float64
	si := l.Spins[i]
	for _, j := range l.neighbors(i) {
		e += l.Model.PairEnergy(si == l.Spins[j])
	}
	return e
}

// TotalEnergy returns the configuration energy (each bond counted once).
func (l *Lattice) TotalEnergy() float64 {
	var e float64
	for i := range l.Spins {
		e += l.siteEnergy(i)
	}
	return e / 2
}

// BondCounts returns the number of like and unlike nearest-neighbour
// bonds — the descriptor the learned surrogate trains on.
func (l *Lattice) BondCounts() (like, unlike int) {
	for i := range l.Spins {
		si := l.Spins[i]
		for _, j := range l.neighbors(i) {
			if j > i {
				if si == l.Spins[j] {
					like++
				} else {
					unlike++
				}
			}
		}
	}
	return like, unlike
}

// OrderParameter returns the staggered magnetization in [0, 1]: 1 in the
// perfectly ordered checkerboard, ~0 in the disordered phase.
func (l *Lattice) OrderParameter() float64 {
	var s float64
	m := l.L
	for x := 0; x < m; x++ {
		for y := 0; y < m; y++ {
			for z := 0; z < m; z++ {
				sign := 1.0
				if (x+y+z)%2 == 1 {
					sign = -1
				}
				s += sign * float64(l.Spins[l.idx(x, y, z)])
			}
		}
	}
	return math.Abs(s) / float64(l.N())
}

// Sweep performs N Metropolis exchange attempts (Kawasaki dynamics: swap
// two neighbouring unlike spins, preserving composition) at temperature T
// and returns the acceptance fraction.
func (l *Lattice) Sweep(rng *stats.RNG, temperature float64) float64 {
	accepted := 0
	n := l.N()
	for t := 0; t < n; t++ {
		i := rng.Intn(n)
		nb := l.neighbors(i)
		j := nb[rng.Intn(6)]
		if l.Spins[i] == l.Spins[j] {
			continue
		}
		before := l.siteEnergy(i) + l.siteEnergy(j)
		l.Spins[i], l.Spins[j] = l.Spins[j], l.Spins[i]
		after := l.siteEnergy(i) + l.siteEnergy(j)
		dE := after - before
		if dE <= 0 || rng.Float64() < math.Exp(-dE/temperature) {
			accepted++
		} else {
			l.Spins[i], l.Spins[j] = l.Spins[j], l.Spins[i]
		}
	}
	return float64(accepted) / float64(n)
}

// Anneal runs sweeps at temperature T after equilibration and returns the
// mean order parameter and mean energy per site.
func (l *Lattice) Anneal(rng *stats.RNG, temperature float64, equil, measure int) (orderMean, energyPerSite float64) {
	for s := 0; s < equil; s++ {
		l.Sweep(rng, temperature)
	}
	var op, en float64
	for s := 0; s < measure; s++ {
		l.Sweep(rng, temperature)
		op += l.OrderParameter()
		en += l.TotalEnergy()
	}
	return op / float64(measure), en / float64(measure) / float64(l.N())
}

// TransitionCurve sweeps temperature and reports the order parameter at
// each point — the order–disorder transition curve of Liu et al.
func TransitionCurve(rng *stats.RNG, l int, model EnergyModel, temps []float64, equil, measure int) []float64 {
	out := make([]float64, len(temps))
	for i, T := range temps {
		lat := NewLattice(l, model)
		op, _ := lat.Anneal(rng.Split(), T, equil, measure)
		out[i] = op
	}
	return out
}
