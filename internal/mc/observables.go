package mc

import "summitscale/internal/stats"

// Observables are ensemble measurements at one temperature.
type Observables struct {
	Temperature    float64
	OrderParameter float64
	EnergyPerSite  float64
	// Susceptibility is the order-parameter variance scaled by N/T — it
	// peaks at the order-disorder transition, which is how Liu et al.
	// locate the transition temperature.
	Susceptibility float64
	// HeatCapacity is the energy variance scaled by 1/(N T^2).
	HeatCapacity float64
}

// Measure equilibrates the lattice and samples observables.
func Measure(rng *stats.RNG, l *Lattice, temperature float64, equil, samples int) Observables {
	for s := 0; s < equil; s++ {
		l.Sweep(rng, temperature)
	}
	n := float64(l.N())
	var opSum, op2Sum, eSum, e2Sum float64
	for s := 0; s < samples; s++ {
		l.Sweep(rng, temperature)
		op := l.OrderParameter()
		e := l.TotalEnergy()
		opSum += op
		op2Sum += op * op
		eSum += e
		e2Sum += e * e
	}
	m := float64(samples)
	opMean := opSum / m
	eMean := eSum / m
	return Observables{
		Temperature:    temperature,
		OrderParameter: opMean,
		EnergyPerSite:  eMean / n,
		Susceptibility: n / temperature * (op2Sum/m - opMean*opMean),
		HeatCapacity:   (e2Sum/m - eMean*eMean) / (n * temperature * temperature),
	}
}

// LocateTransition scans temperatures and returns the one with the
// largest susceptibility — the estimated transition temperature.
func LocateTransition(rng *stats.RNG, size int, model EnergyModel, temps []float64, equil, samples int) (tc float64, curve []Observables) {
	best := 0
	for i, T := range temps {
		lat := NewLattice(size, model)
		obs := Measure(rng.Split(), lat, T, equil, samples)
		curve = append(curve, obs)
		if obs.Susceptibility > curve[best].Susceptibility {
			best = i
		}
	}
	return curve[best].Temperature, curve
}
